package repro

// Repository-level benchmarks: one per table/figure of the paper's
// evaluation, plus ablations of the design choices called out in
// DESIGN.md. Each benchmark iteration executes complete simulation runs;
// besides wall-clock ns/op, the benchmarks report the *simulated*
// quantities the paper plots (discovery seconds, packets) via
// b.ReportMetric, so `go test -bench` output doubles as a coarse
// reproduction check.

import (
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
)

// BenchmarkTable1Topologies regenerates Table 1: building and validating
// every evaluated topology.
func BenchmarkTable1Topologies(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, s := range topo.Table1() {
			tp := s.Build()
			if err := tp.Validate(); err != nil {
				b.Fatal(err)
			}
			if tp.NumSwitches() != s.Switches || tp.NumEndpoints() != s.Endpoints {
				b.Fatalf("%s: counts drifted from Table 1", s.Name)
			}
		}
	}
}

// benchEvents accumulates Engine.Processed across discoverOnce calls so
// benchmarks can report simulator throughput (events/s). Sub-benchmarks
// run sequentially, so a plain counter suffices.
var benchEvents uint64

// reportEventsPerSec converts an event tally gathered during the timed
// section into an events/s metric. Call after StopTimer.
func reportEventsPerSec(b *testing.B, events uint64) {
	if s := b.Elapsed().Seconds(); s > 0 && events > 0 {
		b.ReportMetric(float64(events)/s, "events/s")
	}
}

// discoverOnce runs one full discovery and returns its result.
func discoverOnce(b *testing.B, topoName string, opt core.Options, devFactor float64) core.Result {
	b.Helper()
	tp, err := topo.ByName(topoName)
	if err != nil {
		b.Fatal(err)
	}
	e := sim.NewEngine()
	f, err := fabric.New(e, tp, fabric.Config{DeviceFactor: devFactor}, sim.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	m := core.NewManager(f, f.Device(tp.Endpoints()[0]), opt)
	var res core.Result
	m.OnDiscoveryComplete = func(r core.Result) { res = r }
	m.StartDiscovery()
	e.Run()
	benchEvents += e.Processed
	if res.Devices != len(tp.Nodes) {
		b.Fatalf("%s: discovered %d of %d devices", topoName, res.Devices, len(tp.Nodes))
	}
	return res
}

// BenchmarkFig4ProcessingTime regenerates Fig. 4's metric: the average FM
// processing time per PI-4 packet, per algorithm.
func BenchmarkFig4ProcessingTime(b *testing.B) {
	for _, kind := range core.PaperKinds() {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			benchEvents = 0
			var avgUS float64
			for i := 0; i < b.N; i++ {
				res := discoverOnce(b, "6x6 mesh", core.Options{Algorithm: kind}, 1)
				avgUS = res.AvgFMProcessing().Microseconds()
			}
			b.StopTimer()
			b.ReportMetric(avgUS, "fm-us/pkt")
			reportEventsPerSec(b, benchEvents)
		})
	}
}

// BenchmarkFig6DiscoveryTime regenerates Fig. 6's metric: discovery time
// after a random switch removal, per algorithm.
func BenchmarkFig6DiscoveryTime(b *testing.B) {
	for _, kind := range core.PaperKinds() {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			experiment.TakeProcessedEvents()
			var secs float64
			var pkts float64
			for i := 0; i < b.N; i++ {
				o := experiment.RunConfig(experiment.Config{
					Topology: "6x6 mesh", Algorithm: kind,
					Seed: uint64(i%4 + 1), Change: experiment.RemoveSwitch,
				})
				if o.Err != nil {
					b.Fatal(o.Err)
				}
				secs = o.Result.Duration.Seconds()
				pkts = float64(o.Result.PacketsSent)
			}
			b.StopTimer()
			b.ReportMetric(secs, "sim-s/run")
			b.ReportMetric(pkts, "pkts/run")
			reportEventsPerSec(b, experiment.TakeProcessedEvents())
		})
	}
}

// BenchmarkFig7Timeline regenerates Fig. 7(a): the full FM processing
// timeline on the 3x3 mesh.
func BenchmarkFig7Timeline(b *testing.B) {
	for _, kind := range core.PaperKinds() {
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			benchEvents = 0
			var last float64
			for i := 0; i < b.N; i++ {
				res := discoverOnce(b, "3x3 mesh", core.Options{Algorithm: kind}, 1)
				if len(res.Timeline) == 0 {
					b.Fatal("no timeline")
				}
				last = res.Timeline[len(res.Timeline)-1].At.Seconds()
			}
			b.StopTimer()
			b.ReportMetric(last, "sim-s/last-pkt")
			reportEventsPerSec(b, benchEvents)
		})
	}
}

// BenchmarkFig8Factors regenerates Fig. 8's extremes: the 8x8 mesh at the
// default factors and at the paper's fast-FM/slow-device corner.
func BenchmarkFig8Factors(b *testing.B) {
	cases := []struct {
		name      string
		fmF, devF float64
	}{
		{"fm1-dev1", 1, 1},
		{"fm4-dev1", 4, 1},
		{"fm1-dev0.2", 1, 0.2},
	}
	for _, c := range cases {
		for _, kind := range core.PaperKinds() {
			b.Run(c.name+"/"+kind.String(), func(b *testing.B) {
				b.ReportAllocs()
				benchEvents = 0
				var secs float64
				for i := 0; i < b.N; i++ {
					res := discoverOnce(b, "8x8 mesh",
						core.Options{Algorithm: kind, FMFactor: c.fmF}, c.devF)
					secs = res.Duration.Seconds()
				}
				b.StopTimer()
				b.ReportMetric(secs, "sim-s/run")
				reportEventsPerSec(b, benchEvents)
			})
		}
	}
}

// BenchmarkFig9FactorCombos regenerates Fig. 9's metric: change
// assimilation at the three factor combinations, Parallel vs Serial
// Packet on a representative topology.
func BenchmarkFig9FactorCombos(b *testing.B) {
	combos := []struct {
		name      string
		fmF, devF float64
	}{
		{"a-fm1-dev1", 1, 1},
		{"b-fm1-dev0.2", 1, 0.2},
		{"c-fm4-dev0.2", 4, 0.2},
	}
	for _, c := range combos {
		for _, kind := range []core.Kind{core.SerialPacket, core.Parallel} {
			b.Run(c.name+"/"+kind.String(), func(b *testing.B) {
				b.ReportAllocs()
				experiment.TakeProcessedEvents()
				var secs float64
				for i := 0; i < b.N; i++ {
					o := experiment.RunConfig(experiment.Config{
						Topology: "6x6 torus", Algorithm: kind,
						Seed: 1, Change: experiment.RemoveSwitch,
						FMFactor: c.fmF, DeviceFactor: c.devF,
					})
					if o.Err != nil {
						b.Fatal(o.Err)
					}
					secs = o.Result.Duration.Seconds()
				}
				b.StopTimer()
				b.ReportMetric(secs, "sim-s/run")
				reportEventsPerSec(b, experiment.TakeProcessedEvents())
			})
		}
	}
}

// BenchmarkExtensions regenerates the future-work experiments: partial
// assimilation and distributed discovery.
func BenchmarkExtensions(b *testing.B) {
	b.Run("partial-remove", func(b *testing.B) {
		var pkts float64
		for i := 0; i < b.N; i++ {
			o := experiment.RunConfig(experiment.Config{
				Topology: "6x6 mesh", Algorithm: core.Partial,
				Seed: 1, Change: experiment.RemoveSwitch,
			})
			if o.Err != nil {
				b.Fatal(o.Err)
			}
			pkts = float64(o.Result.PacketsSent)
		}
		b.ReportMetric(pkts, "pkts/run")
	})
	b.Run("traffic-loaded-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tp := topo.Mesh(4, 4)
			e := sim.NewEngine()
			rng := sim.NewRNG(uint64(i + 1))
			f, err := fabric.New(e, tp, fabric.Config{}, rng)
			if err != nil {
				b.Fatal(err)
			}
			gen := fabric.NewTrafficGen(f, rng.Split(), 5*sim.Microsecond, 1024)
			gen.Start()
			m := core.NewManager(f, f.Device(tp.Endpoints()[0]), core.Options{Algorithm: core.Parallel})
			done := false
			m.OnDiscoveryComplete = func(core.Result) { done = true }
			m.StartDiscovery()
			for !done && e.Step() {
			}
			gen.Stop()
			if !done {
				b.Fatal("discovery starved by traffic")
			}
		}
	})
}

// BenchmarkScaleDiscovery measures full discovery on fabrics far beyond
// Table 1: hundreds to a thousand switches from the extended generator
// families (grids are absent — turn-pool path depth keeps them near
// Table 1 sizes; see scaleRows). Sizes are kept at the small end of the ext-scale
// experiment so `make bench` stays minutes, not hours; run `asibench
// -exp ext-scale` for the 5k/10k-switch rows.
func BenchmarkScaleDiscovery(b *testing.B) {
	for _, name := range []string{
		"8-port 3-tree",
		"dragonfly 8x32",
		"dragonfly 16x64",
		"autofat 128x4096",
	} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			benchEvents = 0
			var secs float64
			for i := 0; i < b.N; i++ {
				res := discoverOnce(b, name, core.Options{Algorithm: core.Parallel}, 1)
				secs = res.Duration.Seconds()
			}
			b.StopTimer()
			b.ReportMetric(secs, "sim-s/run")
			reportEventsPerSec(b, benchEvents)
		})
	}
}

// BenchmarkParallelDiscovery measures the region-sharded parallel
// simulation path against the sequential referee on the same fabric and
// seed, reporting wall-clock speedup (sequential wall / parallel wall at
// R=8) and the core count it was measured on. Speedup needs parallel
// hardware: on a single-core host the conservative protocol's barrier
// rounds are pure overhead and the metric honestly lands at or below 1.
// The 10,000-switch dragonfly target (16x625) runs when ASI_BENCH_10K is
// set; the committed baseline uses the 1k-switch instance so `make
// bench` stays minutes.
func BenchmarkParallelDiscovery(b *testing.B) {
	names := []string{"dragonfly 16x64"}
	if os.Getenv("ASI_BENCH_10K") != "" {
		names = append(names, "dragonfly 16x625")
	}
	for _, name := range names {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var seqWall, parWall time.Duration
			var events uint64
			for i := 0; i < b.N; i++ {
				seq := experiment.RunConfig(experiment.MustConfig(name, core.Parallel,
					experiment.WithSeed(1)))
				if seq.Err != nil {
					b.Fatal(seq.Err)
				}
				par := experiment.RunConfig(experiment.MustConfig(name, core.Parallel,
					experiment.WithSeed(1), experiment.WithParallelRegions(8)))
				if par.Err != nil {
					b.Fatal(par.Err)
				}
				if par.Result.Devices != seq.Result.Devices || par.Result.Links != seq.Result.Links {
					b.Fatalf("parallel discovered %d/%d devices/links, sequential %d/%d",
						par.Result.Devices, par.Result.Links, seq.Result.Devices, seq.Result.Links)
				}
				seqWall += seq.Wall
				parWall += par.Wall
				events += seq.Events + par.Events
			}
			b.StopTimer()
			if parWall > 0 {
				b.ReportMetric(seqWall.Seconds()/parWall.Seconds(), "speedup")
			}
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
			reportEventsPerSec(b, events)
		})
	}
}

// BenchmarkAblationPortReadBatching measures design choice 1 from
// DESIGN.md: one port per PI-4 read (the paper's algorithms) vs the
// 4-port batching a completion could carry.
func BenchmarkAblationPortReadBatching(b *testing.B) {
	for _, batch := range []int{1, 4} {
		b.Run(map[int]string{1: "per-port", 4: "batched"}[batch], func(b *testing.B) {
			var pkts, secs float64
			for i := 0; i < b.N; i++ {
				res := discoverOnce(b, "6x6 mesh",
					core.Options{Algorithm: core.Parallel, PortReadBatch: batch}, 1)
				pkts = float64(res.PacketsSent)
				secs = res.Duration.Seconds()
			}
			b.ReportMetric(pkts, "pkts/run")
			b.ReportMetric(secs, "sim-s/run")
		})
	}
}

// BenchmarkAblationProbeMemo measures design choice 2 from DESIGN.md:
// suppressing probes over already-recorded links vs the naive flow chart
// that probes every active port.
func BenchmarkAblationProbeMemo(b *testing.B) {
	for _, noMemo := range []bool{false, true} {
		b.Run(map[bool]string{false: "memo", true: "no-memo"}[noMemo], func(b *testing.B) {
			var pkts float64
			for i := 0; i < b.N; i++ {
				res := discoverOnce(b, "6x6 torus",
					core.Options{Algorithm: core.Parallel, NoProbeMemo: noMemo}, 1)
				pkts = float64(res.PacketsSent)
			}
			b.ReportMetric(pkts, "pkts/run")
		})
	}
}

// BenchmarkAblationExplorationOrder measures design choice 3 from
// DESIGN.md: the breadth-first exploration queue (serial algorithms) vs
// the unordered pending table (parallel) on equal footing.
func BenchmarkAblationExplorationOrder(b *testing.B) {
	for _, kind := range core.PaperKinds() {
		b.Run(kind.String(), func(b *testing.B) {
			var secs float64
			for i := 0; i < b.N; i++ {
				res := discoverOnce(b, "8x8 torus", core.Options{Algorithm: kind}, 1)
				secs = res.Duration.Seconds()
			}
			b.ReportMetric(secs, "sim-s/run")
		})
	}
}
