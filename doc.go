// Package repro reproduces "Implementing the Advanced Switching Fabric
// Discovery Process" (Robles-Gómez, Bermúdez, Casado, Quiles): an ASI
// switched-fabric simulator with its management plane, the three fabric
// discovery algorithms the paper compares (Serial Packet, Serial Device,
// Parallel), and the experiment harness that regenerates every table and
// figure of its evaluation.
//
// The root package only anchors the repository-level benchmarks in
// bench_test.go; the implementation lives under internal/ (see DESIGN.md
// for the system inventory) and the executables under cmd/.
package repro
