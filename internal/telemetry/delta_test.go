package telemetry

import (
	"math"
	"testing"
)

func TestSnapshotDelta(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	v := r.CounterVec("v", 4)
	h := r.Histogram("h", "ps", []int64{10, 100})

	c.Add(5)
	g.Set(7)
	v.Add(1, 3)
	h.Observe(4)
	h.Observe(40)
	prev := r.Snapshot()

	c.Add(10)
	g.Set(2)
	v.Add(1, 1)
	v.Inc(3)
	h.Observe(50)
	h.Observe(400)
	cur := r.Snapshot()

	d := cur.Delta(prev)
	if got, _ := d.Counter("c"); got != 10 {
		t.Errorf("counter delta %d, want 10", got)
	}
	if got, _ := d.Gauge("g"); got != 2 {
		t.Errorf("gauge in delta %d, want instantaneous 2", got)
	}
	vecs := d.Vector("v")
	if len(vecs) != 2 || vecs[0].Index != 1 || vecs[0].Value != 1 || vecs[1].Index != 3 || vecs[1].Value != 1 {
		t.Errorf("vector delta %+v", vecs)
	}
	dh, ok := d.Histogram("h")
	if !ok || dh.Count != 2 || dh.Sum != 450 {
		t.Errorf("histogram delta count %d sum %d", dh.Count, dh.Sum)
	}
	if dh.Min != 0 || dh.Max != 0 {
		t.Errorf("windowed histogram extrema not zeroed: min %d max %d", dh.Min, dh.Max)
	}
	want := []uint64{0, 1, 1}
	for i, c := range dh.Counts {
		if c != want[i] {
			t.Errorf("bucket %d delta %d, want %d", i, c, want[i])
		}
	}
}

func TestSnapshotDeltaResetClamps(t *testing.T) {
	r := New()
	r.Counter("c").Add(100)
	prev := r.Snapshot()
	r.Reset()
	r.Counter("c").Add(3)
	d := r.Snapshot().Delta(prev)
	if got, _ := d.Counter("c"); got != 3 {
		t.Errorf("reset counter delta %d, want clamp to 3", got)
	}
}

func TestSnapshotDeltaNewMetricPassesThrough(t *testing.T) {
	r := New()
	prev := r.Snapshot()
	r.Counter("fresh").Add(9)
	d := r.Snapshot().Delta(prev)
	if got, ok := d.Counter("fresh"); !ok || got != 9 {
		t.Errorf("fresh counter delta %d ok=%v, want 9", got, ok)
	}
}

func TestHistogramQuantile(t *testing.T) {
	// 100 observations uniform in one bucket (10,100]: interpolation
	// should land proportionally between the bounds.
	h := HistogramSnap{
		Count:  100,
		Bounds: []int64{10, 100},
		Counts: []uint64{0, 100, 0},
	}
	if got := h.Quantile(0.5); math.Abs(got-55) > 1e-9 {
		t.Errorf("p50 %v, want 55", got)
	}
	if got := h.Quantile(1); math.Abs(got-100) > 1e-9 {
		t.Errorf("p100 %v, want 100", got)
	}

	// First bucket interpolates from zero.
	h = HistogramSnap{Count: 10, Bounds: []int64{8}, Counts: []uint64{10, 0}}
	if got := h.Quantile(0.5); math.Abs(got-4) > 1e-9 {
		t.Errorf("first-bucket p50 %v, want 4", got)
	}

	// Overflow bucket with a trustworthy Max interpolates toward it;
	// without one (windowed delta) it collapses to the last bound.
	h = HistogramSnap{Count: 4, Max: 300, Bounds: []int64{100}, Counts: []uint64{0, 4}}
	if got := h.Quantile(0.5); math.Abs(got-200) > 1e-9 {
		t.Errorf("overflow p50 with max %v, want 200", got)
	}
	h.Max = 0
	if got := h.Quantile(0.99); math.Abs(got-100) > 1e-9 {
		t.Errorf("overflow p99 without max %v, want 100", got)
	}

	// Empty and degenerate cases stay finite.
	if got := (HistogramSnap{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile %v", got)
	}
	mixed := HistogramSnap{Count: 3, Bounds: []int64{10, 20}, Counts: []uint64{1, 1, 1}, Max: 25}
	for _, q := range []float64{-1, 0, 0.25, 0.5, 0.75, 0.99, 1, 2} {
		got := mixed.Quantile(q)
		if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 || got > 25 {
			t.Errorf("q=%v -> %v out of range", q, got)
		}
	}
}

func TestCounterSetTotalAndVecSet(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.SetTotal(42)
	c.SetTotal(50)
	if c.Value() != 50 {
		t.Errorf("SetTotal value %d, want 50", c.Value())
	}
	v := r.CounterVec("v", 2)
	v.Set(1, 9)
	v.Set(1, 11)
	if v.Value(1) != 11 {
		t.Errorf("vec Set value %d, want 11", v.Value(1))
	}
	v.Set(5, 1) // out of range: ignored
	var nilC *Counter
	nilC.SetTotal(1)
	var nilV *CounterVec
	nilV.Set(0, 1)
}
