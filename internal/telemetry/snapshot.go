package telemetry

// Snapshot is the serializable view of a registry at one instant, in
// deterministic (name-sorted) order so snapshots diff and golden-test
// cleanly. Building a snapshot is a cold-path operation and allocates;
// the live metrics keep counting undisturbed.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters,omitempty"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Vectors    []VecSnap       `json:"vectors,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
}

// CounterSnap is one counter's value.
type CounterSnap struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSnap is one gauge's level.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// VecSnap is one non-zero slot of an indexed counter family. Zero slots
// are omitted: a 200-link fabric with management traffic on 30 links
// reports 30 entries, not 200.
type VecSnap struct {
	Name  string `json:"name"`
	Index int    `json:"index"`
	Value uint64 `json:"value"`
}

// HistogramSnap is one histogram's full distribution. Bounds are the
// inclusive upper bucket bounds; Counts has one more entry than Bounds
// (the overflow bucket).
type HistogramSnap struct {
	Name   string   `json:"name"`
	Unit   string   `json:"unit,omitempty"`
	Count  uint64   `json:"count"`
	Sum    int64    `json:"sum"`
	Min    int64    `json:"min"`
	Max    int64    `json:"max"`
	Bounds []int64  `json:"bounds"`
	Counts []uint64 `json:"counts"`
}

// Snapshot captures every registered metric. A nil registry snapshots to
// the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	for _, name := range sortedNames(r.counters) {
		c := r.counters[name]
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.v})
	}
	for _, name := range sortedNames(r.gauges) {
		g := r.gauges[name]
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: g.v})
	}
	for _, name := range sortedNames(r.vecs) {
		v := r.vecs[name]
		for i, val := range v.vals {
			if val != 0 {
				s.Vectors = append(s.Vectors, VecSnap{Name: name, Index: i, Value: val})
			}
		}
	}
	for _, name := range sortedNames(r.hists) {
		h := r.hists[name]
		s.Histograms = append(s.Histograms, HistogramSnap{
			Name:   name,
			Unit:   h.unit,
			Count:  h.count,
			Sum:    h.sum,
			Min:    h.min,
			Max:    h.max,
			Bounds: append([]int64(nil), h.bounds...),
			Counts: append([]uint64(nil), h.counts...),
		})
	}
	return s
}

// Counter returns the named counter's snapshot value and whether it was
// recorded.
func (s Snapshot) Counter(name string) (uint64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge returns the named gauge's snapshot value and whether it was
// recorded.
func (s Snapshot) Gauge(name string) (int64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// Vector returns every recorded (non-zero) slot of the named counter
// family, in index order.
func (s Snapshot) Vector(name string) []VecSnap {
	var out []VecSnap
	for _, v := range s.Vectors {
		if v.Name == name {
			out = append(out, v)
		}
	}
	return out
}

// Histogram returns the named histogram's snapshot and whether it was
// recorded.
func (s Snapshot) Histogram(name string) (HistogramSnap, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnap{}, false
}
