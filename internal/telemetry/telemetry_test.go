package telemetry

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := New()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("x") != c {
		t.Error("Counter did not get-or-create")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := New()
	g := r.Gauge("depth")
	g.Set(3)
	g.SetMax(2) // below: ignored
	if g.Value() != 3 {
		t.Errorf("gauge = %d after SetMax(2), want 3", g.Value())
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Errorf("gauge = %d, want 9", g.Value())
	}
	g.Add(-4)
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}
}

func TestCounterVec(t *testing.T) {
	r := New()
	v := r.CounterVec("link.tx", 4)
	v.Inc(0)
	v.Inc(3)
	v.Add(3, 9)
	v.Inc(-1) // ignored
	v.Inc(4)  // ignored
	if v.Value(0) != 1 || v.Value(3) != 10 || v.Value(1) != 0 {
		t.Errorf("vec values = %d,%d,%d", v.Value(0), v.Value(3), v.Value(1))
	}
	// Re-registration with a larger size grows, keeping counts.
	v2 := r.CounterVec("link.tx", 8)
	if v2 != v || v.Len() != 8 || v.Value(3) != 10 {
		t.Errorf("grow lost state: len=%d v[3]=%d", v.Len(), v.Value(3))
	}
}

func TestHistogramBucketsAndStats(t *testing.T) {
	r := New()
	h := r.Histogram("svc", "ps", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 99, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 5125 {
		t.Errorf("count=%d sum=%d", h.Count(), h.Sum())
	}
	snap, ok := r.Snapshot().Histogram("svc")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if want := []uint64{2, 2, 0, 1}; !reflect.DeepEqual(snap.Counts, want) {
		t.Errorf("bucket counts = %v, want %v", snap.Counts, want)
	}
	if snap.Min != 5 || snap.Max != 5000 {
		t.Errorf("min=%d max=%d", snap.Min, snap.Max)
	}
	if h.Mean() != 1025 {
		t.Errorf("mean = %v, want 1025", h.Mean())
	}
}

func TestHistogramUnsortedBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds accepted")
		}
	}()
	New().Histogram("bad", "", []int64{10, 10})
}

func TestNilRegistryAndNilMetricsAreInert(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	g := r.Gauge("b")
	v := r.CounterVec("c", 4)
	h := r.Histogram("d", "ps", []int64{1})
	if c != nil || g != nil || v != nil || h != nil {
		t.Fatal("nil registry returned non-nil metrics")
	}
	// All observations must be safe no-ops.
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.SetMax(1)
	g.Add(1)
	v.Inc(0)
	v.Add(0, 1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || v.Value(0) != 0 || h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Error("nil metrics reported non-zero values")
	}
	if v.Len() != 0 {
		t.Error("nil vec has length")
	}
	r.Reset()
	if snap := r.Snapshot(); len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

func TestSnapshotDeterministicOrderAndLookups(t *testing.T) {
	r := New()
	r.Counter("zeta").Inc()
	r.Counter("alpha").Add(2)
	r.Gauge("mid").Set(7)
	v := r.CounterVec("vec", 3)
	v.Inc(2)
	s := r.Snapshot()
	if s.Counters[0].Name != "alpha" || s.Counters[1].Name != "zeta" {
		t.Errorf("counters not name-sorted: %+v", s.Counters)
	}
	if got, ok := s.Counter("alpha"); !ok || got != 2 {
		t.Errorf("Counter lookup = %d,%v", got, ok)
	}
	if _, ok := s.Counter("missing"); ok {
		t.Error("missing counter found")
	}
	if got, ok := s.Gauge("mid"); !ok || got != 7 {
		t.Errorf("Gauge lookup = %d,%v", got, ok)
	}
	if _, ok := s.Gauge("missing"); ok {
		t.Error("missing gauge found")
	}
	// Only the non-zero vec slot appears.
	if len(s.Vectors) != 1 || s.Vectors[0].Index != 2 || s.Vectors[0].Value != 1 {
		t.Errorf("vectors = %+v", s.Vectors)
	}
}

func TestResetKeepsRegistrations(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Add(5)
	g := r.Gauge("g")
	g.Set(5)
	v := r.CounterVec("v", 2)
	v.Inc(1)
	h := r.Histogram("h", "ps", []int64{10})
	h.Observe(3)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || v.Value(1) != 0 || h.Count() != 0 {
		t.Error("reset did not zero metrics")
	}
	if r.Counter("c") != c || r.Histogram("h", "", nil) != h {
		t.Error("reset lost registrations")
	}
	h.Observe(99)
	if snap, _ := r.Snapshot().Histogram("h"); snap.Counts[1] != 1 {
		t.Errorf("post-reset observe landed wrong: %+v", snap)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("fm.retries").Add(3)
	r.Gauge("fm.queue.depth.max").Set(11)
	r.Histogram("fm.service.completion", "ps", []int64{1000, 10000}).Observe(500)
	before := r.Snapshot()
	data, err := json.Marshal(before)
	if err != nil {
		t.Fatal(err)
	}
	var after Snapshot
	if err := json.Unmarshal(data, &after); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Errorf("round trip changed snapshot:\nbefore %+v\nafter  %+v", before, after)
	}
}
