package telemetry

// Windowed views over snapshots. The continuous observability plane
// (internal/obs) scrapes a registry periodically and derives per-window
// statistics by diffing successive snapshots: counter deltas become
// rates, histogram-count deltas become windowed distributions whose
// quantiles are estimated by linear interpolation over the fixed
// buckets. All of this is cold-path arithmetic over already-frozen
// snapshots; the live registry is never touched.

// Delta returns the change from prev to s, metric by metric (matched by
// name):
//
//   - Counters and vector slots subtract; a counter that went backwards
//     (a registry reset) clamps to its current value, as a Prometheus
//     rate window would.
//   - Gauges keep s's instantaneous value — a gauge trajectory is a
//     sequence of levels, not of differences.
//   - Histograms subtract bucket counts, total count and sum. Min and
//     Max are zeroed: extrema are not derivable for a window from
//     cumulative extrema, and Quantile must not trust them on a delta.
//
// Metrics absent from prev pass through unchanged (they were registered
// inside the window); metrics absent from s are dropped.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	var d Snapshot

	prevC := make(map[string]uint64, len(prev.Counters))
	for _, c := range prev.Counters {
		prevC[c.Name] = c.Value
	}
	for _, c := range s.Counters {
		v := c.Value
		if old, ok := prevC[c.Name]; ok && old <= v {
			v -= old
		}
		d.Counters = append(d.Counters, CounterSnap{Name: c.Name, Value: v})
	}

	d.Gauges = append(d.Gauges, s.Gauges...)

	type slot struct {
		name string
		idx  int
	}
	prevV := make(map[slot]uint64, len(prev.Vectors))
	for _, v := range prev.Vectors {
		prevV[slot{v.Name, v.Index}] = v.Value
	}
	for _, v := range s.Vectors {
		val := v.Value
		if old, ok := prevV[slot{v.Name, v.Index}]; ok && old <= val {
			val -= old
		}
		if val != 0 {
			d.Vectors = append(d.Vectors, VecSnap{Name: v.Name, Index: v.Index, Value: val})
		}
	}

	prevH := make(map[string]HistogramSnap, len(prev.Histograms))
	for _, h := range prev.Histograms {
		prevH[h.Name] = h
	}
	for _, h := range s.Histograms {
		dh := HistogramSnap{
			Name:   h.Name,
			Unit:   h.Unit,
			Count:  h.Count,
			Sum:    h.Sum,
			Bounds: h.Bounds,
			Counts: append([]uint64(nil), h.Counts...),
		}
		if old, ok := prevH[h.Name]; ok && old.Count <= h.Count && len(old.Counts) == len(h.Counts) {
			dh.Count -= old.Count
			dh.Sum -= old.Sum
			for i := range dh.Counts {
				if old.Counts[i] <= dh.Counts[i] {
					dh.Counts[i] -= old.Counts[i]
				}
			}
		}
		d.Histograms = append(d.Histograms, dh)
	}
	return d
}

// Quantile estimates the q-quantile (0 < q <= 1) of the histogram by
// linear interpolation inside the bucket holding the target rank: the
// first bucket interpolates from zero (all observed quantities in this
// repository are non-negative), interior buckets between their bounds,
// and the overflow bucket between the last bound and Max when Max is
// trustworthy (cumulative snapshots), or collapses to the last bound on
// windowed deltas where Max is zeroed. An empty histogram estimates 0.
// This is the same estimator Prometheus's histogram_quantile applies to
// fixed-bucket data; its error is bounded by the bucket width.
func (h HistogramSnap) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	cum := 0.0
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank > next {
			cum = next
			continue
		}
		frac := (rank - cum) / float64(c)
		if frac < 0 {
			frac = 0
		}
		lo, hi := 0.0, 0.0
		switch {
		case i < len(h.Bounds):
			hi = float64(h.Bounds[i])
			if i > 0 {
				lo = float64(h.Bounds[i-1])
			}
		default: // overflow bucket
			lo = float64(h.Bounds[len(h.Bounds)-1])
			hi = lo
			if m := float64(h.Max); m > lo {
				hi = m
			}
		}
		return lo + frac*(hi-lo)
	}
	// Rank beyond the last non-empty bucket (rounding): the maximum
	// known edge.
	if m := float64(h.Max); m > 0 {
		return m
	}
	if len(h.Bounds) > 0 {
		return float64(h.Bounds[len(h.Bounds)-1])
	}
	return 0
}
