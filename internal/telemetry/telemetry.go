// Package telemetry is the observability layer of the simulator: a small
// metrics registry — counters, gauges, indexed counter vectors and
// fixed-bucket histograms — engineered so that *observing* a metric on a
// simulation hot path never allocates and costs a handful of instructions,
// while *registering* and *snapshotting* metrics (cold paths) may allocate
// freely.
//
// Two properties make the registry safe to wire into the packet paths:
//
//   - Every observation method is nil-receiver safe: a disabled subsystem
//     simply holds nil metric pointers and the calls collapse to a nil
//     check. Telemetry is therefore strictly opt-in and costs (almost)
//     nothing when off.
//
//   - Observations never allocate. Counters and gauges are plain integer
//     fields, vectors are pre-sized slices indexed by small integers
//     (link index, virtual channel), and histograms bucket into pre-sized
//     count arrays by linear scan over their bounds.
//
// Like the simulation engine itself, a Registry is confined to one
// simulation run and is not safe for concurrent use; parallel sweeps give
// each run its own Registry and aggregate the snapshots afterwards.
package telemetry

import (
	"fmt"
	"sort"
)

// Registry holds the metrics of one simulation run, keyed by name.
// Metric constructors get-or-create: asking twice for the same name
// returns the same metric, so independent subsystems can share one
// registry without coordination. A nil *Registry is a valid "telemetry
// off" registry: every constructor returns a nil metric, and nil metrics
// ignore observations.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	vecs     map[string]*CounterVec
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		vecs:     make(map[string]*CounterVec),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// CounterVec returns the named indexed counter family of n slots,
// creating it on first use. Asking again with a larger n grows the
// family (existing counts are kept). Returns nil on a nil registry.
func (r *Registry) CounterVec(name string, n int) *CounterVec {
	if r == nil {
		return nil
	}
	v, ok := r.vecs[name]
	if !ok {
		v = &CounterVec{name: name, vals: make([]uint64, n)}
		r.vecs[name] = v
	} else if len(v.vals) < n {
		grown := make([]uint64, n)
		copy(grown, v.vals)
		v.vals = grown
	}
	return v
}

// Histogram returns the named fixed-bucket histogram, creating it on
// first use with the given inclusive upper bounds (which must be sorted
// ascending; a final +inf bucket is implicit). unit documents the
// observed quantity for report consumers, e.g. "ps". Returns nil on a
// nil registry. Bounds are ignored when the histogram already exists.
func (r *Registry) Histogram(name, unit string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending at %d", name, i))
			}
		}
		h = &Histogram{
			name:   name,
			unit:   unit,
			bounds: append([]int64(nil), bounds...),
			counts: make([]uint64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every registered metric, keeping registrations. A no-op on
// a nil registry.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	for _, c := range r.counters {
		c.v = 0
	}
	for _, g := range r.gauges {
		g.v = 0
	}
	for _, v := range r.vecs {
		for i := range v.vals {
			v.vals[i] = 0
		}
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// Counter is a monotonically increasing event count. The zero value of a
// nil *Counter ignores every operation, which is how disabled telemetry
// stays free on hot paths.
type Counter struct {
	name string
	v    uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count, 0 on nil.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// SetTotal overwrites the count with an externally-accumulated total.
// Publishers that already keep their own cumulative tally (the engine's
// Processed count, a shard group's round counters) republish it on every
// scrape with SetTotal, so repeated publication does not double-count
// the way Add would. The counter stays semantically monotonic as long as
// the source total is.
func (c *Counter) SetTotal(v uint64) {
	if c != nil {
		c.v = v
	}
}

// Gauge is an instantaneous level, e.g. a queue depth high-water mark.
// Nil gauges ignore every operation.
type Gauge struct {
	name string
	v    int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// SetMax stores v if it exceeds the current value — the one-line
// high-water-mark update hot paths use for queue depths.
func (g *Gauge) SetMax(v int64) {
	if g != nil && v > g.v {
		g.v = v
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v += delta
	}
}

// Value returns the current level, 0 on nil.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// CounterVec is a family of counters indexed by a small dense integer —
// topology link index, virtual channel — so per-entity accounting on the
// packet path is one bounds check and an increment, with no map lookups
// or label formatting. Labels materialize only at snapshot time.
type CounterVec struct {
	name string
	vals []uint64
}

// Inc adds one to slot i. Out-of-range indices are ignored (the fabric
// never produces them; dropping beats panicking on a metrics path).
func (v *CounterVec) Inc(i int) {
	if v != nil && i >= 0 && i < len(v.vals) {
		v.vals[i]++
	}
}

// Add adds n to slot i.
func (v *CounterVec) Add(i int, n uint64) {
	if v != nil && i >= 0 && i < len(v.vals) {
		v.vals[i] += n
	}
}

// Set overwrites slot i with an externally-accumulated total; see
// Counter.SetTotal.
func (v *CounterVec) Set(i int, n uint64) {
	if v != nil && i >= 0 && i < len(v.vals) {
		v.vals[i] = n
	}
}

// Value returns slot i's count, 0 on nil or out-of-range.
func (v *CounterVec) Value(i int) uint64 {
	if v == nil || i < 0 || i >= len(v.vals) {
		return 0
	}
	return v.vals[i]
}

// Len returns the number of slots, 0 on nil.
func (v *CounterVec) Len() int {
	if v == nil {
		return 0
	}
	return len(v.vals)
}

// Histogram is a fixed-bucket distribution of int64 observations (in this
// repository: picosecond durations). Bucket i counts observations <=
// bounds[i]; the final bucket counts everything above the last bound.
// Sum, count, min and max are tracked exactly, so means survive even a
// poor bucket choice.
type Histogram struct {
	name     string
	unit     string
	bounds   []int64
	counts   []uint64
	count    uint64
	sum      int64
	min, max int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of observations, 0 on nil.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the total of all observations, 0 on nil.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the exact arithmetic mean of the observations, 0 when
// empty or nil.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

func (h *Histogram) reset() {
	h.count, h.sum, h.min, h.max = 0, 0, 0, 0
	for i := range h.counts {
		h.counts[i] = 0
	}
}

// sortedNames returns map keys in deterministic order for snapshots.
func sortedNames[T any](m map[string]T) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
