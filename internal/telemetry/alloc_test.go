package telemetry

import "testing"

// The zero-alloc contract: observing any metric — enabled or nil — must
// not allocate. The fabric and FM hot paths rely on this; a regression
// here would silently reintroduce per-packet garbage whenever telemetry
// is switched on.

func TestObservationsZeroAlloc(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	v := r.CounterVec("v", 8)
	h := r.Histogram("h", "ps", []int64{10, 100, 1000, 10000})
	allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(2)
		g.Set(5)
		g.SetMax(9)
		v.Inc(3)
		v.Add(7, 2)
		h.Observe(50)
		h.Observe(99999) // overflow bucket
	})
	if allocs != 0 {
		t.Errorf("live metric observations allocate %.1f per run, want 0", allocs)
	}
}

func TestNilObservationsZeroAlloc(t *testing.T) {
	var c *Counter
	var g *Gauge
	var v *CounterVec
	var h *Histogram
	allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		g.SetMax(1)
		v.Inc(0)
		h.Observe(1)
	})
	if allocs != 0 {
		t.Errorf("nil metric observations allocate %.1f per run, want 0", allocs)
	}
}
