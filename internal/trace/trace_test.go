package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/asi"
)

func ev(k Kind, pi asi.PI) Event {
	return Event{At: 100, Kind: k, Device: "sw0", Port: 2, PI: pi, Bytes: 30}
}

func TestBufferRecordsAndCaps(t *testing.T) {
	b := &Buffer{Max: 2}
	for i := 0; i < 5; i++ {
		b.Record(ev(Inject, 4))
	}
	if len(b.Events) != 2 || b.Dropped() != 3 {
		t.Errorf("events=%d dropped=%d", len(b.Events), b.Dropped())
	}
	unbounded := &Buffer{}
	for i := 0; i < 100; i++ {
		unbounded.Record(ev(Deliver, 4))
	}
	if len(unbounded.Events) != 100 {
		t.Errorf("unbounded kept %d", len(unbounded.Events))
	}
}

func TestWriteText(t *testing.T) {
	b := &Buffer{Max: 1}
	b.Record(ev(Transmit, 5))
	b.Record(ev(Drop, 5))
	var out bytes.Buffer
	if err := b.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "tx") || !strings.Contains(s, "sw0") {
		t.Errorf("text: %q", s)
	}
	if !strings.Contains(s, "1 further events") {
		t.Errorf("cap note missing: %q", s)
	}
}

func TestCountByKind(t *testing.T) {
	b := &Buffer{}
	b.Record(ev(Inject, 4))
	b.Record(ev(Deliver, 4))
	b.Record(ev(Deliver, 4))
	c := b.CountByKind()
	if c[Inject] != 1 || c[Deliver] != 2 || c[Drop] != 0 {
		t.Errorf("counts: %v", c)
	}
}

func TestFilters(t *testing.T) {
	b := &Buffer{}
	f := FilterPI(FilterKind(b, Deliver), asi.PI5EventReporting)
	f.Record(ev(Deliver, asi.PI5EventReporting)) // passes both
	f.Record(ev(Deliver, asi.PI4DeviceManagement))
	f.Record(ev(Inject, asi.PI5EventReporting))
	if len(b.Events) != 1 {
		t.Errorf("filtered to %d events", len(b.Events))
	}
}

// TestKindStrings is the exhaustiveness gate over numKinds: every Kind
// must have a distinct real name (not the Kind(n) fallback) and pass
// FilterKind's fixed-size set, so adding a Kind without updating the
// name table fails here instead of silently misrendering.
func TestKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "Kind(") {
			t.Errorf("Kind %d has no canonical name (got %q)", int(k), name)
		}
		if seen[name] {
			t.Errorf("Kind name %q duplicated", name)
		}
		seen[name] = true

		// Every kind must survive its own FilterKind round trip.
		b := &Buffer{}
		FilterKind(b, k).Record(Event{Kind: k})
		if len(b.Events) != 1 {
			t.Errorf("FilterKind lost kind %v", k)
		}
	}
	if Kind(99).String() == "" || ev(Drop, 4).String() == "" {
		t.Error("string rendering broken")
	}
	e := Event{Detail: "why"}
	if !strings.Contains(e.String(), "why") {
		t.Error("detail missing")
	}
}
