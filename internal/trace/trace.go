// Package trace records packet-level fabric events — injections, per-hop
// transmissions, deliveries and drops — for debugging simulations and for
// inspecting protocol behaviour (cmd/asidisc -trace). Recording is
// optional: the fabric only pays for tracing when a recorder is attached.
package trace

import (
	"fmt"
	"io"

	"repro/internal/asi"
	"repro/internal/sim"
)

// Kind classifies a traced event.
type Kind int

const (
	// Inject: an endpoint put a packet into the fabric.
	Inject Kind = iota
	// Transmit: a device started serializing a packet onto a link.
	Transmit
	// Deliver: a device consumed a packet.
	Deliver
	// Drop: the fabric discarded a packet.
	Drop
	// Fault: the installed fault plan acted (link flap window opened or
	// closed, delayed delivery).
	Fault
	// Stall: a link's head-of-line packet was starved for credits — the
	// wire sat idle for that VC solely because the receiver's buffer
	// was full.
	Stall
	numKinds
)

// kindNames indexes the canonical name of every kind. The exhaustiveness
// test walks numKinds to guarantee no Kind is ever added without a name
// (FilterKind's fixed-size set is keyed by the same constant).
var kindNames = [numKinds]string{
	Inject:   "inject",
	Transmit: "tx",
	Deliver:  "deliver",
	Drop:     "drop",
	Fault:    "fault",
	Stall:    "stall",
}

// String names the kind.
func (k Kind) String() string {
	if k >= 0 && k < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one recorded fabric occurrence.
type Event struct {
	At     sim.Time
	Kind   Kind
	Device string
	Port   int
	PI     asi.PI
	Bytes  int
	Detail string
}

// String renders one trace line.
func (e Event) String() string {
	s := fmt.Sprintf("%-12v %-8s %-12s port=%-3d pi=%d %dB", e.At, e.Kind, e.Device, e.Port, e.PI, e.Bytes)
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Recorder receives events as they happen.
type Recorder interface {
	Record(Event)
}

// Buffer is a capped in-memory recorder. The zero value is unbounded;
// with Max set it keeps the first Max events and counts the rest, so
// capping is never silent — Dropped reports the overflow and WriteText
// prints a truncation notice.
type Buffer struct {
	Max     int
	Events  []Event
	dropped int
}

// Dropped returns how many events were discarded after the buffer
// reached its cap.
func (b *Buffer) Dropped() int { return b.dropped }

// Record implements Recorder.
func (b *Buffer) Record(e Event) {
	if b.Max > 0 {
		if len(b.Events) >= b.Max {
			b.dropped++
			return
		}
		if b.Events == nil {
			// A capped buffer holds at most Max events; reserve them all
			// up front instead of regrowing on the recording hot path.
			b.Events = make([]Event, 0, b.Max)
		}
	}
	b.Events = append(b.Events, e)
}

// WriteText dumps the buffer as one line per event.
func (b *Buffer) WriteText(w io.Writer) error {
	for _, e := range b.Events {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	if b.dropped > 0 {
		if _, err := fmt.Fprintf(w, "... %d further events not recorded (buffer cap %d)\n", b.dropped, b.Max); err != nil {
			return err
		}
	}
	return nil
}

// CountByKind tallies the recorded events.
func (b *Buffer) CountByKind() map[Kind]int {
	out := make(map[Kind]int, int(numKinds))
	for _, e := range b.Events {
		out[e.Kind]++
	}
	return out
}

// FilterPI returns a recorder that forwards only events for the given
// protocol interface to next.
func FilterPI(next Recorder, pi asi.PI) Recorder {
	return filterFunc(func(e Event) {
		if e.PI == pi {
			next.Record(e)
		}
	})
}

// FilterKind returns a recorder that forwards only the given kinds.
func FilterKind(next Recorder, kinds ...Kind) Recorder {
	var set [numKinds]bool
	for _, k := range kinds {
		if k >= 0 && k < numKinds {
			set[k] = true
		}
	}
	return filterFunc(func(e Event) {
		if e.Kind >= 0 && e.Kind < numKinds && set[e.Kind] {
			next.Record(e)
		}
	})
}

type filterFunc func(Event)

// Record implements Recorder.
func (f filterFunc) Record(e Event) { f(e) }
