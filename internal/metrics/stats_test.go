package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 || s.CI95() != 0 || s.Median() != 0 {
		t.Error("empty sample not all-zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if !almostEqual(s.Mean(), 5) {
		t.Errorf("Mean = %v", s.Mean())
	}
	// Known dataset: population std 2, sample std = sqrt(32/7).
	if !almostEqual(s.Std(), math.Sqrt(32.0/7)) {
		t.Errorf("Std = %v", s.Std())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if !almostEqual(s.Median(), 4.5) {
		t.Errorf("Median = %v", s.Median())
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestSampleSingleObservation(t *testing.T) {
	var s Sample
	s.Add(42)
	if s.Mean() != 42 || s.Std() != 0 || s.CI95() != 0 || s.Median() != 42 {
		t.Errorf("single observation stats wrong: %v", s.String())
	}
}

func TestSampleMedianOdd(t *testing.T) {
	var s Sample
	for _, x := range []float64{9, 1, 5} {
		s.Add(x)
	}
	if s.Median() != 5 {
		t.Errorf("Median = %v", s.Median())
	}
}

func TestSampleStatsProperties(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(float64(v))
		}
		m := s.Mean()
		return s.Min() <= m && m <= s.Max() && s.Std() >= 0 &&
			s.Min() <= s.Median() && s.Median() <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	var small, large Sample
	for i := 0; i < 10; i++ {
		small.Add(float64(i % 5))
	}
	for i := 0; i < 1000; i++ {
		large.Add(float64(i % 5))
	}
	if large.CI95() >= small.CI95() {
		t.Errorf("CI95 did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}

func TestSeriesSortAndAggregate(t *testing.T) {
	s := Series{Label: "x"}
	s.Add(3, 30)
	s.Add(1, 10)
	s.Add(3, 50)
	s.Add(2, 20)
	agg := s.AggregateByX()
	if len(agg.Points) != 3 {
		t.Fatalf("aggregated to %d points", len(agg.Points))
	}
	if agg.Points[0].X != 1 || agg.Points[1].X != 2 || agg.Points[2].X != 3 {
		t.Errorf("not sorted: %+v", agg.Points)
	}
	if agg.Points[2].Y != 40 {
		t.Errorf("mean of duplicates = %v, want 40", agg.Points[2].Y)
	}
	if agg.Label != "x" {
		t.Error("label lost")
	}
}

func TestSeriesSortByX(t *testing.T) {
	s := Series{}
	s.Add(5, 1)
	s.Add(-1, 2)
	s.SortByX()
	if s.Points[0].X != -1 {
		t.Error("SortByX failed")
	}
}

// A streaming sample must agree with the exact sample on every statistic
// except Median, which falls back to the mean.
func TestStreamingMatchesExact(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var exact Sample
		stream := NewStreaming()
		for _, v := range raw {
			exact.Add(float64(v))
			stream.Add(float64(v))
		}
		return stream.N() == exact.N() &&
			almostEqual(stream.Mean(), exact.Mean()) &&
			math.Abs(stream.Std()-exact.Std()) < 1e-6 &&
			stream.Min() == exact.Min() && stream.Max() == exact.Max() &&
			math.Abs(stream.CI95()-exact.CI95()) < 1e-6 &&
			almostEqual(stream.Median(), stream.Mean())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Streaming mode must not retain observations — that is its point.
func TestStreamingRetainsNothing(t *testing.T) {
	s := NewStreaming()
	for i := 0; i < 10000; i++ {
		s.Add(float64(i))
	}
	if s.xs != nil {
		t.Errorf("streaming sample retained %d observations", len(s.xs))
	}
	if s.N() != 10000 || s.Min() != 0 || s.Max() != 9999 {
		t.Errorf("streaming stats wrong: %v", s.String())
	}
	if !almostEqual(s.Mean(), 4999.5) {
		t.Errorf("Mean = %v", s.Mean())
	}
}
