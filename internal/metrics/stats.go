// Package metrics provides the small statistics toolkit the experiment
// harness uses to aggregate simulation runs: samples with mean/deviation/
// confidence intervals, and labelled series for rendering the paper's
// figures as tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates scalar observations.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N returns the observation count.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Std returns the sample standard deviation (n-1 denominator), or 0 for
// fewer than two observations.
func (s *Sample) Std() float64 {
	if len(s.xs) < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s.xs)-1))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// under a normal approximation (1.96 sigma/sqrt(n)).
func (s *Sample) CI95() float64 {
	if len(s.xs) < 2 {
		return 0
	}
	return 1.96 * s.Std() / math.Sqrt(float64(len(s.xs)))
}

// Median returns the middle observation (average of the two middle ones
// for even counts).
func (s *Sample) Median() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	xs := append([]float64(nil), s.xs...)
	sort.Float64s(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// String summarizes the sample.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.3g min=%.4g max=%.4g",
		s.N(), s.Mean(), s.Std(), s.Min(), s.Max())
}

// Point is one (x, y) observation in a series.
type Point struct {
	X, Y float64
}

// Series is a labelled sequence of points, e.g. one curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// SortByX orders the points by x for rendering.
func (s *Series) SortByX() {
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
}

// AggregateByX collapses duplicate x values into their mean y — how the
// paper's Fig. 6(b) turns per-run scatter into per-topology averages.
func (s *Series) AggregateByX() Series {
	groups := map[float64]*Sample{}
	for _, p := range s.Points {
		g, ok := groups[p.X]
		if !ok {
			g = &Sample{}
			groups[p.X] = g
		}
		g.Add(p.Y)
	}
	out := Series{Label: s.Label}
	for x, g := range groups {
		out.Add(x, g.Mean())
	}
	out.SortByX()
	return out
}
