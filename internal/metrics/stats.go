// Package metrics provides the small statistics toolkit the experiment
// harness uses to aggregate simulation runs: samples with mean/deviation/
// confidence intervals, and labelled series for rendering the paper's
// figures as tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates scalar observations. Mean, variance, min and max are
// maintained incrementally (Welford's algorithm), so they cost O(1) space
// regardless of how many observations arrive. The zero value additionally
// retains every observation for exact order statistics (Median); samples
// built with NewStreaming drop them, which is what long sweeps want — a
// multi-thousand-run aggregation no longer holds every duration in memory
// for the sake of a mean.
type Sample struct {
	n         int
	mean, m2  float64
	min, max  float64
	streaming bool
	// xs retains the observations for Median; nil in streaming mode.
	xs []float64
}

// NewStreaming returns a sample that keeps only constant-size state:
// every statistic except Median stays exact, and Median degrades to the
// mean (documented there).
func NewStreaming() *Sample { return &Sample{streaming: true} }

// Add folds in an observation.
func (s *Sample) Add(x float64) {
	if s.n == 0 || x < s.min {
		s.min = x
	}
	if s.n == 0 || x > s.max {
		s.max = x
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if !s.streaming {
		s.xs = append(s.xs, x)
	}
}

// N returns the observation count.
func (s *Sample) N() int { return s.n }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Std returns the sample standard deviation (n-1 denominator), or 0 for
// fewer than two observations.
func (s *Sample) Std() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// under a normal approximation (1.96 sigma/sqrt(n)).
func (s *Sample) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.Std() / math.Sqrt(float64(s.n))
}

// Median returns the middle observation (average of the two middle ones
// for even counts). A streaming sample retains no observations to rank,
// so it falls back to the mean.
func (s *Sample) Median() float64 {
	if s.n == 0 {
		return 0
	}
	if s.streaming {
		return s.mean
	}
	xs := append([]float64(nil), s.xs...)
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// String summarizes the sample.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.3g min=%.4g max=%.4g",
		s.N(), s.Mean(), s.Std(), s.Min(), s.Max())
}

// Point is one (x, y) observation in a series.
type Point struct {
	X, Y float64
}

// Series is a labelled sequence of points, e.g. one curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// SortByX orders the points by x for rendering.
func (s *Series) SortByX() {
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
}

// AggregateByX collapses duplicate x values into their mean y — how the
// paper's Fig. 6(b) turns per-run scatter into per-topology averages.
func (s *Series) AggregateByX() Series {
	groups := map[float64]*Sample{}
	for _, p := range s.Points {
		g, ok := groups[p.X]
		if !ok {
			g = NewStreaming()
			groups[p.X] = g
		}
		g.Add(p.Y)
	}
	out := Series{Label: s.Label}
	for x, g := range groups {
		out.Add(x, g.Mean())
	}
	out.SortByX()
	return out
}
