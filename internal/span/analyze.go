package span

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Timeline analysis: reconstructing the paper's FM view from a span log.
// A run groups its request spans into Gantt rows; the critical path is
// recovered from causal containment — the FM is a serial processor, so
// FM-service intervals are disjoint, and a request issued at time t was
// necessarily issued by whichever work item the FM was servicing at t.
// That service span's parent names the enabling request (or the run
// itself for the initial kick-off), giving the dependency chain that
// determines total discovery time without any extra instrumentation.

// Analysis is the structured form of a span log, one entry per run band.
type Analysis struct {
	Runs []RunAnalysis
}

// RunAnalysis is one phase band: a discovery run or distribution round.
type RunAnalysis struct {
	Run Span
	// Requests are the run's request views sorted by start time.
	Requests []RequestView
	// Critical is the dependency chain of request spans, in issue
	// order, ending at the request that finished last in the run.
	Critical []Span
	// ByKind sums span durations and counts per kind over the run.
	ByKind [numKinds]KindTotal
}

// KindTotal aggregates one span kind within a run.
type KindTotal struct {
	Count int
	Total sim.Duration
}

// RequestView is one request span plus all spans it causally owns
// (attempts, backoffs, per-hop and FM spans), sorted by start time.
type RequestView struct {
	Span     Span
	Children []Span
}

// Analyze reconstructs the timeline from a log. The log must be valid
// (see Validate); spans from an unfinished run yield an error.
func Analyze(l Log) (*Analysis, error) {
	if err := Validate(l); err != nil {
		return nil, err
	}
	byID := make(map[ID]*Span, len(l.Spans))
	for i := range l.Spans {
		byID[l.Spans[i].ID] = &l.Spans[i]
	}

	// runOf and reqOf resolve each span's enclosing run and request
	// bands by walking the parent chain once per span (IDs ascend from
	// parent to child, so earlier answers are already memoized).
	runOf := make(map[ID]ID, len(l.Spans))
	reqOf := make(map[ID]ID, len(l.Spans))
	for i := range l.Spans {
		s := &l.Spans[i]
		switch {
		case s.Kind == KindRun:
			runOf[s.ID] = s.ID
		case s.Parent != 0:
			runOf[s.ID] = runOf[s.Parent]
		}
		switch {
		case s.Kind == KindRequest:
			reqOf[s.ID] = s.ID
		case s.Parent != 0:
			reqOf[s.ID] = reqOf[s.Parent]
		}
	}

	a := &Analysis{}
	runIdx := make(map[ID]int)
	for i := range l.Spans {
		s := l.Spans[i]
		if s.Kind != KindRun {
			continue
		}
		runIdx[s.ID] = len(a.Runs)
		a.Runs = append(a.Runs, RunAnalysis{Run: s})
	}

	reqIdx := make(map[ID]int) // request span ID -> index in its run's Requests
	for i := range l.Spans {
		s := l.Spans[i]
		run, ok := runOf[s.ID]
		if !ok {
			continue
		}
		ra := &a.Runs[runIdx[run]]
		if s.Kind != KindRun {
			ra.ByKind[s.Kind].Count++
			ra.ByKind[s.Kind].Total += s.Duration()
		}
		switch s.Kind {
		case KindRequest:
			reqIdx[s.ID] = len(ra.Requests)
			ra.Requests = append(ra.Requests, RequestView{Span: s})
		default:
			if req, ok := reqOf[s.ID]; ok && req != s.ID {
				if j, ok := reqIdx[req]; ok {
					ra.Requests[j].Children = append(ra.Requests[j].Children, s)
				}
			}
		}
	}

	// FM service intervals per run, for containment lookups. They are
	// disjoint (serial FM), so sorting by start allows binary search.
	services := make(map[ID][]Span)
	for i := range l.Spans {
		s := l.Spans[i]
		if s.Kind != KindFMService {
			continue
		}
		if run, ok := runOf[s.ID]; ok {
			services[run] = append(services[run], s)
		}
	}

	for ri := range a.Runs {
		ra := &a.Runs[ri]
		sort.SliceStable(ra.Requests, func(i, j int) bool {
			return ra.Requests[i].Span.Start < ra.Requests[j].Span.Start ||
				(ra.Requests[i].Span.Start == ra.Requests[j].Span.Start &&
					ra.Requests[i].Span.ID < ra.Requests[j].Span.ID)
		})
		svc := services[ra.Run.ID]
		sort.Slice(svc, func(i, j int) bool { return svc[i].Start < svc[j].Start })
		ra.Critical = criticalPath(byID, reqOf, ra.Requests, svc)
	}
	return a, nil
}

// enabler finds the request whose FM processing issued the request
// starting at t: the FM-service span containing t belongs to the work
// item being processed, and its parent names that request. Returns 0
// when the issue was the run's own kick-off (or predates any service).
func enabler(byID map[ID]*Span, reqOf map[ID]ID, svc []Span, t sim.Time) ID {
	i := sort.Search(len(svc), func(i int) bool { return svc[i].End >= t })
	if i == len(svc) || svc[i].Start > t {
		return 0
	}
	if req, ok := reqOf[svc[i].Parent]; ok {
		return req
	}
	return 0
}

// criticalPath walks enablers backward from the request that ended
// last, yielding the chain in issue order.
func criticalPath(byID map[ID]*Span, reqOf map[ID]ID, reqs []RequestView, svc []Span) []Span {
	var last *Span
	for i := range reqs {
		if last == nil || reqs[i].Span.End > last.End {
			last = &reqs[i].Span
		}
	}
	if last == nil {
		return nil
	}
	var chain []Span
	seen := make(map[ID]bool)
	for cur := last; cur != nil && !seen[cur.ID]; {
		seen[cur.ID] = true
		chain = append(chain, *cur)
		cur = byID[enabler(byID, reqOf, svc, cur.Start)]
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// Summary renders a one-paragraph accounting of a run: request count,
// retries, drops, span-kind totals. Used by asitrace and the tests.
func (ra *RunAnalysis) Summary() string {
	retries, drops := 0, 0
	for _, rv := range ra.Requests {
		for _, c := range rv.Children {
			if c.Kind == KindAttempt && c.Attempt > 0 {
				retries++
			}
			if c.Kind == KindDrop {
				drops++
			}
		}
	}
	return fmt.Sprintf("run %q: %v..%v (%v), %d requests, %d retries, %d drops, critical path %d deep",
		ra.Run.Name, ra.Run.Start, ra.Run.End, ra.Run.Duration(),
		len(ra.Requests), retries, drops, len(ra.Critical))
}
