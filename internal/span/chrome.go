package span

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Chrome trace-event export. The format is the JSON object form of the
// Trace Event Format that chrome://tracing and Perfetto load directly:
// a top-level object with a "traceEvents" array of phase-coded events.
// Each interval span becomes one complete event (ph "X") with ts/dur in
// microseconds; instant markers become ph "i" events; ph "M" metadata
// events name the rows. Rows (tid) group spans by their owning request
// so each PI-4's round trip reads as one horizontal lane, with runs and
// FM phases on lane 0 — the on-screen layout mirrors the paper's Fig. 5
// timeline. The original span fields ride along losslessly in "args" so
// ReadChrome can reconstruct the exact Log for asitrace.

// chromeDoc is the top-level trace object.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeEvent is one trace event. Fields follow the Trace Event Format
// field names; Args carries the lossless span record.
type chromeEvent struct {
	Name  string      `json:"name"`
	Cat   string      `json:"cat,omitempty"`
	Ph    string      `json:"ph"`
	Ts    float64     `json:"ts"`
	Dur   *float64    `json:"dur,omitempty"`
	Pid   int         `json:"pid"`
	Tid   uint64      `json:"tid"`
	Scope string      `json:"s,omitempty"`
	Args  *chromeArgs `json:"args,omitempty"`
}

// chromeArgs is the span record embedded in each event, precise where
// the µs-quantized ts/dur are lossy.
type chromeArgs struct {
	ID      ID     `json:"id"`
	Parent  ID     `json:"parent,omitempty"`
	Kind    Kind   `json:"kind"`
	Status  Status `json:"status"`
	StartPS int64  `json:"start_ps"`
	EndPS   int64  `json:"end_ps"`
	Name    string `json:"span_name,omitempty"`
	Device  string `json:"device,omitempty"`
	Port    int    `json:"port"`
	Tag     uint32 `json:"tag,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Dropped int    `json:"dropped,omitempty"`
}

// metaArgs is the payload of ph "M" thread_name metadata events.
type metaArgs struct {
	Name string `json:"name"`
}

const psPerMicro = 1e6 // trace-event ts/dur are µs; sim time is ps

// requestLane walks the parent chain to the owning request span, whose
// ID becomes the Chrome thread (row). Runs, FM phases and anything not
// under a request share lane 0.
func requestLane(byID map[ID]*Span, s *Span) uint64 {
	for cur := s; cur != nil; cur = byID[cur.Parent] {
		if cur.Kind == KindRequest {
			return uint64(cur.ID)
		}
	}
	return 0
}

// eventName renders the on-screen label for a span.
func eventName(s *Span) string {
	if s.Name != "" {
		return s.Kind.String() + " " + s.Name
	}
	return s.Kind.String()
}

// WriteChrome writes the log as a Chrome trace-event JSON document.
func WriteChrome(w io.Writer, l Log) error {
	byID := make(map[ID]*Span, len(l.Spans))
	for i := range l.Spans {
		byID[l.Spans[i].ID] = &l.Spans[i]
	}

	doc := chromeDoc{DisplayTimeUnit: "ns"}
	doc.TraceEvents = make([]chromeEvent, 0, len(l.Spans)+8)

	// Name the lanes first so viewers sort and label them correctly.
	lanes := map[uint64]string{0: "fm / runs"}
	for i := range l.Spans {
		s := &l.Spans[i]
		lane := requestLane(byID, s)
		if _, ok := lanes[lane]; !ok {
			req := byID[ID(lane)]
			label := fmt.Sprintf("req %d %s", lane, req.Name)
			if req.Device != "" {
				label += " " + req.Device
			}
			lanes[lane] = label
		}
	}
	laneIDs := make([]uint64, 0, len(lanes))
	for id := range lanes {
		laneIDs = append(laneIDs, id)
	}
	sort.Slice(laneIDs, func(i, j int) bool { return laneIDs[i] < laneIDs[j] })
	for _, id := range laneIDs {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: id,
			Args: &chromeArgs{Name: lanes[id]},
		})
	}

	for i := range l.Spans {
		s := &l.Spans[i]
		args := &chromeArgs{
			ID: s.ID, Parent: s.Parent, Kind: s.Kind, Status: s.Status,
			StartPS: int64(s.Start), EndPS: int64(s.End),
			Name: s.Name, Device: s.Device, Port: s.Port,
			Tag: s.Tag, Attempt: s.Attempt,
		}
		if i == 0 {
			args.Dropped = l.Dropped
		}
		ev := chromeEvent{
			Name: eventName(s),
			Cat:  s.Kind.String(),
			Pid:  1,
			Tid:  requestLane(byID, s),
			Ts:   float64(s.Start) / psPerMicro,
			Args: args,
		}
		if s.Status == StatusInstant {
			ev.Ph = "i"
			ev.Scope = "t"
		} else {
			ev.Ph = "X"
			dur := float64(s.Duration()) / psPerMicro
			ev.Dur = &dur
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// ReadChrome parses a Chrome trace-event document produced by
// WriteChrome back into the exact Log it came from, using the lossless
// args records. It validates the reconstructed log before returning.
func ReadChrome(r io.Reader) (Log, error) {
	var doc chromeDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return Log{}, fmt.Errorf("span: decoding chrome trace: %w", err)
	}
	var l Log
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" || ev.Args == nil || ev.Args.ID == 0 {
			continue
		}
		a := ev.Args
		l.Spans = append(l.Spans, Span{
			ID: a.ID, Parent: a.Parent, Kind: a.Kind, Status: a.Status,
			Start: sim.Time(a.StartPS), End: sim.Time(a.EndPS),
			Name: a.Name, Device: a.Device, Port: a.Port,
			Tag: a.Tag, Attempt: a.Attempt,
		})
		l.Dropped += a.Dropped
	}
	sort.Slice(l.Spans, func(i, j int) bool { return l.Spans[i].ID < l.Spans[j].ID })
	if err := Validate(l); err != nil {
		return Log{}, fmt.Errorf("span: chrome trace is not a valid span log: %w", err)
	}
	return l, nil
}
