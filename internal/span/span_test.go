package span

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

func us(n int64) sim.Time { return sim.Time(n) * sim.Time(sim.Microsecond) }

// TestTracerLifecycle covers the basic begin/annotate/end flow and the
// bookkeeping counters.
func TestTracerLifecycle(t *testing.T) {
	tr := New(0)
	run := tr.Begin(KindRun, 0, us(0))
	req := tr.Begin(KindRequest, run, us(1))
	tr.Span(req).Name = "probe"
	tr.Span(req).Device = "dsn:0000000000000001"
	att := tr.Begin(KindAttempt, req, us(1))
	tr.Span(att).Tag = 7

	if got := tr.Open(); got != 3 {
		t.Fatalf("Open() = %d, want 3", got)
	}
	tr.End(att, us(5), StatusOK)
	tr.End(req, us(6), StatusOK)
	tr.End(run, us(7), StatusOK)
	if got := tr.Open(); got != 0 {
		t.Fatalf("Open() after ending all = %d, want 0", got)
	}
	if got := tr.Len(); got != 3 {
		t.Fatalf("Len() = %d, want 3", got)
	}

	s := tr.Spans()[1]
	if s.Parent != run || s.Kind != KindRequest || s.Name != "probe" ||
		s.Start != us(1) || s.End != us(6) || s.Status != StatusOK {
		t.Fatalf("request span mangled: %v", s)
	}
	if err := Validate(tr.Log()); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// TestEndIdempotent proves double-End and unknown-ID End are no-ops, the
// property the run-supersession teardown paths rely on.
func TestEndIdempotent(t *testing.T) {
	tr := New(0)
	id := tr.Begin(KindRequest, 0, us(0))
	tr.End(id, us(2), StatusTimeout)
	tr.End(id, us(9), StatusOK) // must not overwrite
	if s := *tr.Span(id); s.End != us(2) || s.Status != StatusTimeout {
		t.Fatalf("second End overwrote the span: %v", s)
	}
	tr.End(0, us(1), StatusOK)     // ID 0: no-op
	tr.End(99, us(1), StatusOK)    // unknown: no-op
	tr.End(id, us(1), StatusError) // closed: no-op
	if tr.Open() != 0 || tr.Len() != 1 {
		t.Fatalf("no-op Ends perturbed counters: open=%d len=%d", tr.Open(), tr.Len())
	}
}

// TestTracerCap proves spans past the cap are counted, return ID 0, and
// every method tolerates that ID.
func TestTracerCap(t *testing.T) {
	tr := New(2)
	a := tr.Begin(KindRun, 0, us(0))
	b := tr.Begin(KindRequest, a, us(1))
	c := tr.Begin(KindRequest, a, us(2))
	if c != 0 {
		t.Fatalf("Begin past cap returned %d, want 0", c)
	}
	if tr.Dropped() != 1 {
		t.Fatalf("Dropped() = %d, want 1", tr.Dropped())
	}
	if tr.Span(c) != nil {
		t.Fatalf("Span(0) != nil")
	}
	tr.End(c, us(3), StatusOK)
	tr.End(b, us(3), StatusOK)
	tr.End(a, us(4), StatusOK)
	l := tr.Log()
	if len(l.Spans) != 2 || l.Dropped != 1 {
		t.Fatalf("Log = %d spans dropped %d, want 2/1", len(l.Spans), l.Dropped)
	}
}

// TestValidateRejects exercises each invariant violation.
func TestValidateRejects(t *testing.T) {
	ok := Span{ID: 1, Kind: KindRun, Status: StatusOK, Start: us(0), End: us(1)}
	cases := []struct {
		name string
		l    Log
	}{
		{"gap in IDs", Log{Spans: []Span{ok, {ID: 3, Status: StatusOK, End: us(1)}}}},
		{"parent not earlier", Log{Spans: []Span{ok, {ID: 2, Parent: 2, Status: StatusOK, Start: us(0), End: us(1)}}}},
		{"still open", Log{Spans: []Span{{ID: 1, Start: us(0), End: -1}}}},
		{"open status", Log{Spans: []Span{{ID: 1, Status: StatusOpen, Start: us(0), End: us(1)}}}},
		{"ends before start", Log{Spans: []Span{{ID: 1, Status: StatusOK, Start: us(2), End: us(1)}}}},
	}
	for _, tc := range cases {
		if err := Validate(tc.l); err == nil {
			t.Errorf("%s: Validate accepted invalid log", tc.name)
		}
	}
	if err := Validate(Log{Spans: []Span{ok}}); err != nil {
		t.Errorf("valid log rejected: %v", err)
	}
}

// TestKindStatusNames proves every enum value has a distinct canonical
// name that round-trips through JSON — the exhaustiveness guarantee the
// exporters rely on.
func TestKindStatusNames(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "Kind(") {
			t.Errorf("Kind %d has no name", k)
		}
		if seen[name] {
			t.Errorf("Kind name %q duplicated", name)
		}
		seen[name] = true
		if got, ok := KindByName(name); !ok || got != k {
			t.Errorf("KindByName(%q) = %v,%v want %v", name, got, ok, k)
		}
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("marshal kind %v: %v", k, err)
		}
		var back Kind
		if err := json.Unmarshal(b, &back); err != nil || back != k {
			t.Errorf("kind %v JSON round trip = %v, %v", k, back, err)
		}
	}
	seen = map[string]bool{}
	for s := Status(0); s < numStatuses; s++ {
		name := s.String()
		if name == "" || strings.HasPrefix(name, "Status(") {
			t.Errorf("Status %d has no name", s)
		}
		if seen[name] {
			t.Errorf("Status name %q duplicated", name)
		}
		seen[name] = true
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal status %v: %v", s, err)
		}
		var back Status
		if err := json.Unmarshal(b, &back); err != nil || back != s {
			t.Errorf("status %v JSON round trip = %v, %v", s, back, err)
		}
	}
	if _, ok := KindByName("no-such-kind"); ok {
		t.Error("KindByName accepted an unknown name")
	}
	if _, ok := StatusByName("no-such-status"); ok {
		t.Error("StatusByName accepted an unknown name")
	}
}

// sampleLog builds a small two-request log with a retry, per-hop spans
// and an FM-service chain linking request 2's issue to request 1's
// completion processing — enough structure for analysis and rendering.
func sampleLog(t *testing.T) Log {
	t.Helper()
	tr := New(0)
	run := tr.Begin(KindRun, 0, us(0))
	tr.Span(run).Name = "serial-packet"

	// Kick-off FM service issues request 1.
	tr.Complete(KindFMService, run, us(0), us(1), StatusOK)
	r1 := tr.Begin(KindRequest, run, us(1))
	tr.Span(r1).Name = "probe"
	tr.Span(r1).Device = "dsn:0000000000000001"
	a1 := tr.Begin(KindAttempt, r1, us(1))
	tr.Span(a1).Tag = 1
	tr.Complete(KindWire, r1, us(1), us(2), StatusOK)
	tr.Complete(KindDevQueue, r1, us(2), us(3), StatusOK)
	tr.Complete(KindDevService, r1, us(3), us(5), StatusOK)
	tr.Complete(KindWire, r1, us(5), us(6), StatusOK)
	tr.End(a1, us(6), StatusOK)
	tr.Complete(KindFMQueue, r1, us(6), us(6), StatusOK)
	// Completion processing of r1 (FM service) issues request 2.
	svc := tr.Complete(KindFMService, r1, us(6), us(8), StatusOK)
	_ = svc
	tr.End(r1, us(8), StatusOK)

	r2 := tr.Begin(KindRequest, run, us(7))
	tr.Span(r2).Name = "port-read"
	tr.Span(r2).Device = "dsn:0000000000000002"
	a2 := tr.Begin(KindAttempt, r2, us(7))
	tr.Span(a2).Tag = 2
	tr.Complete(KindDrop, r2, us(8), us(8), StatusInstant)
	tr.End(a2, us(12), StatusTimeout)
	tr.Complete(KindBackoff, r2, us(12), us(14), StatusOK)
	a3 := tr.Begin(KindAttempt, r2, us(14))
	tr.Span(a3).Tag = 3
	tr.Span(a3).Attempt = 1
	tr.Complete(KindWire, r2, us(14), us(15), StatusOK)
	tr.Complete(KindDevService, r2, us(15), us(16), StatusOK)
	tr.Complete(KindWire, r2, us(16), us(17), StatusOK)
	tr.End(a3, us(17), StatusOK)
	tr.Complete(KindFMService, r2, us(17), us(18), StatusOK)
	tr.End(r2, us(18), StatusOK)
	tr.End(run, us(18), StatusOK)

	l := tr.Log()
	if err := Validate(l); err != nil {
		t.Fatalf("sample log invalid: %v", err)
	}
	return l
}

// TestAnalyzeCriticalPath proves the containment-based dependency
// recovery: request 2 starts during request 1's completion service, so
// the critical path is r1 -> r2.
func TestAnalyzeCriticalPath(t *testing.T) {
	l := sampleLog(t)
	a, err := Analyze(l)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(a.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(a.Runs))
	}
	ra := a.Runs[0]
	if len(ra.Requests) != 2 {
		t.Fatalf("requests = %d, want 2", len(ra.Requests))
	}
	if len(ra.Critical) != 2 || ra.Critical[0].Name != "probe" || ra.Critical[1].Name != "port-read" {
		t.Fatalf("critical path = %v, want probe -> port-read", ra.Critical)
	}
	if ra.ByKind[KindRequest].Count != 2 || ra.ByKind[KindWire].Count != 4 {
		t.Fatalf("breakdown wrong: requests=%d wires=%d",
			ra.ByKind[KindRequest].Count, ra.ByKind[KindWire].Count)
	}
	if ra.ByKind[KindWire].Total != 4*sim.Microsecond {
		t.Fatalf("wire total = %v, want 4us", ra.ByKind[KindWire].Total)
	}
}

// TestChromeRoundTrip proves WriteChrome emits a structurally valid
// trace-event document and ReadChrome reconstructs the exact log.
func TestChromeRoundTrip(t *testing.T) {
	l := sampleLog(t)
	l.Dropped = 3
	var buf bytes.Buffer
	if err := WriteChrome(&buf, l); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}

	// Structural checks on the raw document.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome doc is not valid JSON: %v", err)
	}
	phs := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phs[ph]++
		switch ph {
		case "X":
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("complete event missing dur: %v", ev)
			}
		case "i":
			if s, _ := ev["s"].(string); s != "t" {
				t.Fatalf("instant event missing scope: %v", ev)
			}
		case "M":
		default:
			t.Fatalf("unexpected phase %q", ph)
		}
	}
	if phs["X"] == 0 || phs["i"] == 0 || phs["M"] < 3 {
		t.Fatalf("phase mix wrong: %v", phs)
	}

	back, err := ReadChrome(&buf)
	if err != nil {
		t.Fatalf("ReadChrome: %v", err)
	}
	if !reflect.DeepEqual(back, l) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, l)
	}
}

// TestGanttRender spot-checks the ASCII chart: every request gets a row,
// the critical-path rows are starred, and the legend is printed.
func TestGanttRender(t *testing.T) {
	l := sampleLog(t)
	a, err := Analyze(l)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	out := a.String()
	for _, want := range []string{
		"probe", "port-read", "*#", "legend:", "critical path", "breakdown",
		"2 requests", "1 retries", "1 drops",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Painted glyphs: wire, device service, backoff, drop must appear.
	for _, glyph := range []string{"w", "d", "b", "x", "F"} {
		if !strings.Contains(out, glyph) {
			t.Errorf("gantt missing glyph %q:\n%s", glyph, out)
		}
	}
}

// TestGanttRowCap proves elided rows are reported, not silently hidden.
func TestGanttRowCap(t *testing.T) {
	l := sampleLog(t)
	a, err := Analyze(l)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteGantt(&buf, a, GanttOptions{Width: 40, MaxRows: 1}); err != nil {
		t.Fatalf("WriteGantt: %v", err)
	}
	if !strings.Contains(buf.String(), "+1 more requests not shown") {
		t.Errorf("row cap not announced:\n%s", buf.String())
	}
}
