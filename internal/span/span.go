// Package span is a causal tracer for the discovery process: where
// internal/trace records isolated packet events and internal/telemetry
// aggregates histograms, span records the *life* of every FM-issued PI-4
// request — issue, per-hop wire time, switch queueing, device servicing,
// timeout, retry, completion — as begin/end intervals with parent links.
// From a span log the paper's FM packet-processing timeline (Figs. 5-7)
// is reconstructed per request: a Gantt row decomposing the round trip
// into FM processing, wire, queueing and device time, plus the critical
// path of dependent requests that determines total discovery time.
//
// Tracing is opt-in and non-perturbing: every hook in core and fabric is
// guarded by a single nil check, so a disabled tracer costs no
// allocations and changes no simulated metric (the fingerprint tests in
// internal/experiment prove both properties).
package span

import (
	"encoding/json"
	"fmt"

	"repro/internal/sim"
)

// ID identifies one span within a Tracer's log. IDs are assigned
// monotonically from 1 in begin order, so a parent's ID is always smaller
// than any child's. The zero ID means "no span" (disabled tracer, capped
// log, or no parent) and every Tracer method accepts it as a no-op.
type ID uint64

// Kind classifies what interval of the discovery process a span covers.
type Kind uint8

const (
	// KindRun is a phase band: one discovery run (or path-distribution
	// round) from start to finish. Request spans parent to it.
	KindRun Kind = iota
	// KindRequest is the full life of one FM-issued PI-4 request: first
	// issue to final completion processing or terminal failure. Every
	// other per-request span descends from it.
	KindRequest
	// KindAttempt is one transmission attempt of a request: issue to
	// completion arrival or timeout expiry. Retries are further Attempt
	// spans under the same request, with increasing Attempt numbers.
	KindAttempt
	// KindBackoff is the wait between a timed-out attempt and its retry.
	KindBackoff
	// KindFMQueue is a work item waiting in the FM's serial processor
	// queue before service begins.
	KindFMQueue
	// KindFMService is the FM software processing one work item (the
	// per-packet cost of the paper's Fig. 4).
	KindFMService
	// KindLinkQueue is a packet waiting in a VC ring for link
	// arbitration (serializer busy or credit-starved).
	KindLinkQueue
	// KindWire is one link traversal: serialization plus propagation
	// (plus any fault-injected delivery delay).
	KindWire
	// KindDevQueue is a PI-4 request waiting in a device's serial
	// config-space server queue.
	KindDevQueue
	// KindDevService is a device servicing one PI-4 request (T_Device in
	// the paper's Fig. 7b).
	KindDevService
	// KindStall marks an instant at which a head-of-line packet was
	// starved for credits: the wire sat idle only because the receiver's
	// buffer was full.
	KindStall
	// KindFaultDelay marks a traversal the installed fault plan
	// delivered late.
	KindFaultDelay
	// KindDrop marks the instant a packet of a traced request was
	// discarded by the fabric.
	KindDrop
	numKinds
)

// kindNames indexes the canonical name of every kind; an exhaustiveness
// test keeps it in sync with the constants.
var kindNames = [numKinds]string{
	"run", "request", "attempt", "backoff",
	"fm-queue", "fm-service", "link-queue", "wire",
	"dev-queue", "dev-service", "stall", "fault-delay", "drop",
}

// String names the kind.
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KindByName reverses String; unknown names report false.
func KindByName(s string) (Kind, bool) {
	for k, n := range kindNames {
		if n == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// MarshalJSON renders the kind by name, keeping the run-report spans
// section and the Chrome trace args human-readable.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON accepts both the name and the numeric form.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, ok := KindByName(s)
		if !ok {
			return fmt.Errorf("span: unknown kind %q", s)
		}
		*k = v
		return nil
	}
	var n uint8
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("span: kind must be a name or number: %s", b)
	}
	*k = Kind(n)
	return nil
}

// Status is the terminal state of a span.
type Status uint8

const (
	// StatusOpen: the span has begun and not yet ended. No span in a
	// finished run's log should carry it.
	StatusOpen Status = iota
	// StatusOK: the interval completed normally.
	StatusOK
	// StatusTimeout: the request or attempt expired without completion.
	StatusTimeout
	// StatusGaveUp: the request exhausted every retry and was abandoned.
	StatusGaveUp
	// StatusError: the interval ended in a protocol or routing error.
	StatusError
	// StatusDropped: the packet behind the span was discarded.
	StatusDropped
	// StatusCanceled: a superseding discovery run orphaned the span.
	StatusCanceled
	// StatusInstant: the span is a zero-length marker, not an interval.
	StatusInstant
	numStatuses
)

var statusNames = [numStatuses]string{
	"open", "ok", "timeout", "gave-up", "error", "dropped", "canceled", "instant",
}

// String names the status.
func (s Status) String() string {
	if s < numStatuses {
		return statusNames[s]
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// StatusByName reverses String; unknown names report false.
func StatusByName(n string) (Status, bool) {
	for s, name := range statusNames {
		if name == n {
			return Status(s), true
		}
	}
	return 0, false
}

// MarshalJSON renders the status by name.
func (s Status) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON accepts both the name and the numeric form.
func (s *Status) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err == nil {
		v, ok := StatusByName(str)
		if !ok {
			return fmt.Errorf("span: unknown status %q", str)
		}
		*s = v
		return nil
	}
	var n uint8
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("span: status must be a name or number: %s", b)
	}
	*s = Status(n)
	return nil
}

// openEnd is the End value of a span that has begun but not ended.
const openEnd sim.Time = -1

// Span is one recorded interval. Parent links express causal
// containment: attempts, backoffs and per-hop spans descend from their
// request; requests descend from their run; a parent's ID is always
// smaller than its children's.
type Span struct {
	ID     ID     `json:"id"`
	Parent ID     `json:"parent,omitempty"`
	Kind   Kind   `json:"kind"`
	Status Status `json:"status"`
	// Start and End bound the interval in simulated time (picoseconds).
	// They coincide for instant markers.
	Start sim.Time `json:"start"`
	End   sim.Time `json:"end"`
	// Name is a short stable label: the request kind ("probe",
	// "port-read"), the FM work phase, or the drop reason.
	Name string `json:"name,omitempty"`
	// Device locates fabric spans: the transmitting or servicing device.
	Device string `json:"device,omitempty"`
	// Port is the device port of fabric spans; -1 when not applicable.
	Port int `json:"port,omitempty"`
	// Tag is the PI-4 tag of attempt spans (each retry gets a fresh tag).
	Tag uint32 `json:"tag,omitempty"`
	// Attempt numbers retransmissions: 0 is the original transmission.
	Attempt int `json:"attempt,omitempty"`
}

// Open reports whether the span has not ended.
func (s Span) Open() bool { return s.End == openEnd }

// Duration is the span's extent; zero for instants and open spans.
func (s Span) Duration() sim.Duration {
	if s.Open() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// String renders a one-line summary, for test failures and debugging.
func (s Span) String() string {
	return fmt.Sprintf("#%d(%s %s %v..%v parent=%d %s)",
		s.ID, s.Kind, s.Name, s.Start, s.End, s.Parent, s.Status)
}

// Log is the serializable form of a finished trace: the spans in ID
// order plus how many were discarded once the cap was hit. It is the
// "spans" section of the run-report/v2 envelope.
type Log struct {
	Spans   []Span `json:"spans"`
	Dropped int    `json:"dropped,omitempty"`
}

// Tracer records spans for one simulation run. It is single-threaded,
// like the engine it observes. A nil *Tracer is the disabled state: the
// instrumented packages guard every hook with one nil check, so disabled
// tracing is allocation-free and branch-cheap.
type Tracer struct {
	spans   []Span
	max     int
	dropped int
	open    int
}

// New returns a tracer that keeps at most max spans; max <= 0 means
// unbounded. Spans begun past the cap are counted in Dropped and get
// ID 0, which every other method ignores.
func New(max int) *Tracer {
	return &Tracer{max: max}
}

// Begin opens a span and returns its ID, or 0 if the log is full.
func (t *Tracer) Begin(kind Kind, parent ID, at sim.Time) ID {
	if t.max > 0 && len(t.spans) >= t.max {
		t.dropped++
		return 0
	}
	id := ID(len(t.spans) + 1)
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Kind: kind,
		Start: at, End: openEnd, Port: -1,
	})
	t.open++
	return id
}

// Span returns a pointer to the identified span for field annotation,
// or nil for ID 0 and dropped spans. The pointer is invalidated by the
// next Begin/Complete/Instant — annotate immediately, do not hold it.
func (t *Tracer) Span(id ID) *Span {
	if id == 0 || int(id) > len(t.spans) {
		return nil
	}
	return &t.spans[id-1]
}

// End closes an open span with the given status. Ending ID 0, an
// unknown span, or a span that already ended is a no-op, which makes
// teardown paths (run supersession, orphaned retries) safe to layer.
func (t *Tracer) End(id ID, at sim.Time, status Status) {
	s := t.Span(id)
	if s == nil || !s.Open() {
		return
	}
	s.End = at
	s.Status = status
	t.open--
}

// Complete records an already-bounded span in one call and returns its
// ID for annotation.
func (t *Tracer) Complete(kind Kind, parent ID, start, end sim.Time, status Status) ID {
	id := t.Begin(kind, parent, start)
	t.End(id, end, status)
	return id
}

// Instant records a zero-length marker at the given time.
func (t *Tracer) Instant(kind Kind, parent ID, at sim.Time) ID {
	return t.Complete(kind, parent, at, at, StatusInstant)
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int { return len(t.spans) }

// Open returns the number of spans begun but not yet ended.
func (t *Tracer) Open() int { return t.open }

// Dropped returns the number of spans discarded because the cap was hit.
func (t *Tracer) Dropped() int { return t.dropped }

// Spans returns the recorded spans in ID order. The slice is the
// tracer's own storage; callers must not mutate it.
func (t *Tracer) Spans() []Span { return t.spans }

// Log snapshots the trace into its serializable form.
func (t *Tracer) Log() Log {
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return Log{Spans: out, Dropped: t.dropped}
}

// Validate checks the structural invariants every finished log must
// satisfy: IDs dense and ascending from 1, parents referencing earlier
// spans, no span still open, and End never before Start. It returns the
// first violation found.
func Validate(l Log) error {
	for i, s := range l.Spans {
		if s.ID != ID(i+1) {
			return fmt.Errorf("span %d: ID %d out of sequence", i, s.ID)
		}
		if s.Parent >= s.ID {
			return fmt.Errorf("span %v: parent %d not earlier than span", s, s.Parent)
		}
		if s.Open() || s.Status == StatusOpen {
			return fmt.Errorf("span %v: still open", s)
		}
		if s.End < s.Start {
			return fmt.Errorf("span %v: ends before it starts", s)
		}
	}
	return nil
}
