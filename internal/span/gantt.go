package span

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

// ASCII Gantt rendering: the terminal form of the paper's Fig. 5-7
// timelines. Each run prints one chart; each request is a row whose
// cells are painted by the kind of span covering that time slice, so a
// round trip reads left to right as FM queueing, FM processing, wire
// hops, device queueing/servicing, and (under faults) backoffs, drops
// and retries. Rows on the run's critical path are starred.

// GanttOptions tunes the renderer; zero values pick the defaults.
type GanttOptions struct {
	// Width is the number of timeline columns (default 96).
	Width int
	// MaxRows caps the request rows drawn per run, keeping charts for
	// big fabrics readable; 0 draws every request. Elided rows are
	// summarized in a trailing note, never silently dropped.
	MaxRows int
}

// ganttChar maps a span kind to its cell glyph. Later entries in the
// paint order overwrite earlier ones, so the most specific activity
// (device service, stalls, drops) wins when spans overlap a cell.
var ganttChar = [numKinds]byte{
	KindRun:        ' ',
	KindRequest:    '.',
	KindAttempt:    0, // extent only; the request row already shows it
	KindBackoff:    'b',
	KindFMQueue:    'f',
	KindFMService:  'F',
	KindLinkQueue:  'q',
	KindWire:       'w',
	KindDevQueue:   'u',
	KindDevService: 'd',
	KindStall:      '!',
	KindFaultDelay: '~',
	KindDrop:       'x',
}

// ganttPaint is the overwrite order, least to most specific.
var ganttPaint = []Kind{
	KindRequest, KindFMQueue, KindBackoff, KindLinkQueue, KindDevQueue,
	KindWire, KindDevService, KindFMService, KindFaultDelay, KindStall, KindDrop,
}

// GanttLegend is printed under every chart.
const GanttLegend = "legend: .=in flight f=fm-queue F=fm-service q=link-queue w=wire " +
	"u=dev-queue d=dev-service b=backoff ~=fault-delay !=stall x=drop *=critical path"

// WriteGantt renders every run of the analysis as an ASCII Gantt chart.
func WriteGantt(w io.Writer, a *Analysis, opt GanttOptions) error {
	width := opt.Width
	if width <= 0 {
		width = 96
	}
	for ri := range a.Runs {
		ra := &a.Runs[ri]
		if ri > 0 {
			fmt.Fprintln(w)
		}
		if err := writeRunGantt(w, ra, width, opt.MaxRows); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, GanttLegend)
	return err
}

func writeRunGantt(w io.Writer, ra *RunAnalysis, width, maxRows int) error {
	fmt.Fprintf(w, "%s\n", ra.Summary())
	span := ra.Run.Duration()
	if span <= 0 {
		span = 1
	}
	cell := func(t sim.Time) int {
		c := int(int64(t.Sub(ra.Run.Start)) * int64(width) / int64(span))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	critical := make(map[ID]bool, len(ra.Critical))
	for _, s := range ra.Critical {
		critical[s.ID] = true
	}

	rows := ra.Requests
	elided := 0
	if maxRows > 0 && len(rows) > maxRows {
		elided = len(rows) - maxRows
		rows = rows[:maxRows]
	}

	labelW := 0
	labels := make([]string, len(rows))
	for i, rv := range rows {
		mark := ' '
		if critical[rv.Span.ID] {
			mark = '*'
		}
		labels[i] = fmt.Sprintf("%c#%-4d %-9s %-22s", mark, rv.Span.ID, rv.Span.Name, rv.Span.Device)
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}

	// Time axis: run-relative start/end in the header line.
	fmt.Fprintf(w, "%*s|%v%*s%v|\n", labelW, "", sim.Duration(0),
		width-len(fmt.Sprint(sim.Duration(0)))-len(fmt.Sprint(span)), "", span)

	line := make([]byte, width)
	for i, rv := range rows {
		for j := range line {
			line[j] = ' '
		}
		paintSpan(line, rv.Span, cell)
		for _, k := range ganttPaint[1:] {
			for _, c := range rv.Children {
				if c.Kind == k {
					paintSpan(line, c, cell)
				}
			}
		}
		fmt.Fprintf(w, "%-*s|%s|\n", labelW, labels[i], line)
	}
	if elided > 0 {
		fmt.Fprintf(w, "%*s(+%d more requests not shown)\n", labelW, "", elided)
	}
	return nil
}

// paintSpan fills the cells a span covers with its glyph. Instants and
// sub-cell spans still mark one cell so nothing disappears at scale.
func paintSpan(line []byte, s Span, cell func(sim.Time) int) {
	ch := ganttChar[s.Kind]
	if ch == 0 || ch == ' ' {
		return
	}
	from, to := cell(s.Start), cell(s.End)
	for i := from; i <= to; i++ {
		line[i] = ch
	}
}

// WriteReport renders the full asitrace text report: per-run Gantt,
// critical path and per-kind breakdown.
func WriteReport(w io.Writer, a *Analysis, opt GanttOptions) error {
	if err := WriteGantt(w, a, opt); err != nil {
		return err
	}
	for ri := range a.Runs {
		ra := &a.Runs[ri]
		fmt.Fprintf(w, "\ncritical path of run %q (%d requests):\n", ra.Run.Name, len(ra.Critical))
		for _, s := range ra.Critical {
			fmt.Fprintf(w, "  #%-4d %-9s %-22s %v .. %v (%v, %s)\n",
				s.ID, s.Name, s.Device, s.Start, s.End, s.Duration(), s.Status)
		}
		fmt.Fprintf(w, "breakdown of run %q:\n", ra.Run.Name)
		type row struct {
			k Kind
			t KindTotal
		}
		var rowsOut []row
		for k := Kind(0); k < numKinds; k++ {
			if ra.ByKind[k].Count > 0 {
				rowsOut = append(rowsOut, row{k, ra.ByKind[k]})
			}
		}
		sort.Slice(rowsOut, func(i, j int) bool { return rowsOut[i].t.Total > rowsOut[j].t.Total })
		for _, r := range rowsOut {
			fmt.Fprintf(w, "  %-12s %6d spans  %14v total\n", r.k, r.t.Count, r.t.Total)
		}
	}
	return nil
}

// String renders the report to a string, for tests and small tools.
func (a *Analysis) String() string {
	var b strings.Builder
	_ = WriteReport(&b, a, GanttOptions{})
	return b.String()
}
