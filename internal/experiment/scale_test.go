package experiment

import (
	"strings"
	"testing"
)

// TestExtScaleTrimmed runs the ext-scale machinery over a small row set
// (the full experiment's 5k/10k-switch rows take minutes and are marked
// Heavy): one audited and one initial-only row, both of which must
// converge.
func TestExtScaleTrimmed(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-switch discovery runs")
	}
	rep := extScale([]scaleRow{
		{"dragonfly 8x32", true},
		{"autofat 32x512", false},
	}, 0)
	if len(rep.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rep.Rows))
	}
	wantVerdicts := []string{"converged (audit)", "converged (initial)"}
	for i, row := range rep.Rows {
		if len(row) != len(rep.Header) {
			t.Fatalf("row %d width %d vs header %d", i, len(row), len(rep.Header))
		}
		if verdict := row[len(row)-1]; verdict != wantVerdicts[i] {
			t.Errorf("%s: verdict %q, want %q", row[0], verdict, wantVerdicts[i])
		}
		if strings.HasPrefix(row[1], "0") {
			t.Errorf("%s: no switches discovered: %v", row[0], row)
		}
	}
}

// TestExtScaleRegistered pins the registry entry: ext-scale exists and
// is marked Heavy so `asibench -exp all` and the full-runner smoke test
// skip it.
func TestExtScaleRegistered(t *testing.T) {
	r, err := ByID("ext-scale")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Heavy {
		t.Fatal("ext-scale must be marked Heavy")
	}
}
