package experiment

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestDaemonConfigDefaultsValid(t *testing.T) {
	dc := DefaultDaemonConfig()
	if err := dc.Validate(); err != nil {
		t.Fatal(err)
	}
	if dc.Kind() != core.Parallel {
		t.Errorf("default algorithm %v", dc.Kind())
	}
}

func TestDaemonConfigRoundTrip(t *testing.T) {
	dc := DaemonConfig{
		Topology: "4x4 mesh", Algorithm: "partial", Seed: 7,
		ChurnOps: 2, Rounds: 5, AuditEvery: 3, QueueDepth: 16, Listen: ":9000",
		Regions: 2, ScrapeMS: 250,
		AssimWindowUS: 200, AssimBatchMax: 16, StaleAfterMS: 2,
	}
	back, err := DecodeDaemonConfig(bytes.NewReader(dc.EncodeJSON()))
	if err != nil {
		t.Fatal(err)
	}
	if back != dc {
		t.Errorf("round trip drifted: %+v from %+v", back, dc)
	}
	if back.Kind() != core.Partial {
		t.Errorf("algorithm resolved to %v", back.Kind())
	}
}

// A partial document inherits the documented defaults.
func TestDecodeDaemonConfigAppliesDefaults(t *testing.T) {
	dc, err := DecodeDaemonConfig(strings.NewReader(`{"topology": "3x3 mesh"}`))
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultDaemonConfig()
	if dc.Algorithm != def.Algorithm || dc.ChurnOps != def.ChurnOps || dc.Listen != def.Listen {
		t.Errorf("defaults not applied: %+v", dc)
	}
}

func TestDaemonConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*DaemonConfig)
		frag string
	}{
		{"no topology", func(c *DaemonConfig) { c.Topology = "" }, "catalogue"},
		{"bad topology", func(c *DaemonConfig) { c.Topology = "17x17 blob" }, "unknown topology"},
		{"bad algorithm", func(c *DaemonConfig) { c.Algorithm = "magic" }, "valid: serial-packet"},
		{"distributed", func(c *DaemonConfig) { c.Algorithm = "distributed" }, "valid:"},
		{"churn ops", func(c *DaemonConfig) { c.ChurnOps = -1 }, "churn_ops"},
		{"rounds", func(c *DaemonConfig) { c.Rounds = -1 }, "rounds"},
		{"audit", func(c *DaemonConfig) { c.AuditEvery = -2 }, "audit_every"},
		{"queue", func(c *DaemonConfig) { c.QueueDepth = -3 }, "queue_depth"},
		{"regions", func(c *DaemonConfig) { c.Regions = -1 }, "regions"},
		{"scrape", func(c *DaemonConfig) { c.ScrapeMS = -1 }, "scrape_ms"},
		{"assim window negative", func(c *DaemonConfig) { c.AssimWindowUS = -1 }, "assim_window_us"},
		{"assim window non-partial", func(c *DaemonConfig) { c.AssimWindowUS = 200 }, "requires algorithm"},
		{"assim batch negative", func(c *DaemonConfig) { c.AssimBatchMax = -1 }, "assim_batch_max"},
		{"assim batch without window", func(c *DaemonConfig) {
			c.Algorithm = "partial"
			c.AssimBatchMax = 8
		}, "without assim_window_us"},
		{"stale after", func(c *DaemonConfig) { c.StaleAfterMS = -1 }, "stale_after_ms"},
	}
	for _, tc := range cases {
		dc := DefaultDaemonConfig()
		tc.mut(&dc)
		err := dc.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.frag)
		}
	}
	if _, err := DecodeDaemonConfig(strings.NewReader(`{"topology":"3x3 mesh","bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}
