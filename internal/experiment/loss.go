package experiment

import (
	"fmt"

	"repro/internal/core"
)

// ExtLoss sweeps injected per-link packet loss against the three paper
// discovery algorithms and reports how the retry policy holds discovery
// together: time, retry volume, abandoned requests, and topology
// completeness (devices found relative to the lossless ground truth).
// The paper assumes a lossless fabric; this experiment quantifies what
// that assumption hides.
func ExtLoss(seeds, workers int) Report {
	const topoName = "4x4 mesh"
	losses := []float64{0, 1e-4, 1e-3, 1e-2}
	const maxRetries = 3

	var cfgs []Config
	for _, loss := range losses {
		for _, k := range core.PaperKinds() {
			for seed := 1; seed <= seeds; seed++ {
				cfgs = append(cfgs, Config{
					Topology:   topoName,
					Algorithm:  k,
					Seed:       uint64(seed),
					LossRate:   loss,
					MaxRetries: maxRetries,
				})
			}
		}
	}
	outs := RunConfigAll(cfgs, workers)

	r := Report{
		ID:     "ext-loss",
		Title:  fmt.Sprintf("Discovery under per-link packet loss (%s, MaxRetries=%d)", topoName, maxRetries),
		Header: []string{"Loss", "Algorithm", "Avg time (s)", "Avg retries", "Gave up", "Timeouts", "Completeness"},
		Notes: []string{
			"loss is the per-link-traversal drop probability; every management packet is exposed on every hop",
			"completeness = discovered devices / devices physically reachable from the FM, averaged over seeds",
			"seeded fault injection: identical seeds replay identical drop sequences",
		},
	}
	i := 0
	for _, loss := range losses {
		for _, k := range core.PaperKinds() {
			var (
				n               int
				sumTime         float64
				retries, gaveUp int
				timeouts        int
				sumComplete     float64
				failed          bool
			)
			for seed := 1; seed <= seeds; seed++ {
				out := outs[i]
				i++
				if out.Err != nil {
					failed = true
					continue
				}
				n++
				sumTime += out.Result.Duration.Seconds()
				retries += out.Result.Retries
				gaveUp += out.Result.GaveUp
				timeouts += out.Result.TimedOut
				sumComplete += float64(out.Result.Devices) / float64(out.ActiveNodes)
			}
			label := "0"
			if loss > 0 {
				label = fmt.Sprintf("%.0e", loss)
			}
			row := []string{label, k.String()}
			if n == 0 || failed {
				row = append(row, "ERR", "ERR", "ERR", "ERR", "ERR")
			} else {
				row = append(row,
					fmt.Sprintf("%.6f", sumTime/float64(n)),
					fmt.Sprintf("%.2f", float64(retries)/float64(n)),
					fmt.Sprint(gaveUp),
					fmt.Sprint(timeouts),
					fmt.Sprintf("%.2f%%", 100*sumComplete/float64(n)),
				)
			}
			r.Rows = append(r.Rows, row)
		}
	}
	return r
}
