package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Extension experiments for the paper's future-work directions (section
// 5): partial (affected-region) rediscovery and discovery distributed
// over collaborating fabric managers.

// ExtPartial compares full rediscovery (Parallel) against Partial
// assimilation for the same changes.
func ExtPartial(seeds, workers int) Report {
	topos := []string{"4x4 mesh", "6x6 mesh", "8x8 torus"}
	var cfgs []Config
	for _, tn := range topos {
		for seed := 1; seed <= seeds; seed++ {
			for _, ch := range []Change{RemoveSwitch, AddSwitch} {
				for _, k := range []core.Kind{core.Parallel, core.Partial} {
					cfgs = append(cfgs, Config{
						Topology: tn, Algorithm: k, Seed: uint64(seed), Change: ch,
					})
				}
			}
		}
	}
	outs := RunConfigAll(cfgs, workers)
	r := Report{
		ID:     "ext-partial",
		Title:  "Full rediscovery (Parallel) vs partial assimilation of the affected region",
		Header: []string{"Topology", "Change", "Seed", "Full (s)", "Partial (s)", "Full pkts", "Partial pkts", "Pkt saving"},
		Notes: []string{
			"paper section 5: \"explore only the portion of the network affected by the change, instead of the entire fabric\"",
		},
	}
	for i := 0; i+1 < len(outs); i += 2 {
		full, part := outs[i], outs[i+1]
		row := []string{full.Config.Topology, full.Config.Change.String(), fmt.Sprint(full.Config.Seed)}
		if full.Err != nil || part.Err != nil {
			row = append(row, "ERR", "ERR", "", "", "")
			r.Rows = append(r.Rows, row)
			continue
		}
		saving := "-"
		if part.Result.PacketsSent > 0 {
			saving = fmt.Sprintf("%.1fx", float64(full.Result.PacketsSent)/float64(part.Result.PacketsSent))
		}
		row = append(row,
			secs(full.Result.Duration), secs(part.Result.Duration),
			fmt.Sprint(full.Result.PacketsSent), fmt.Sprint(part.Result.PacketsSent),
			saving)
		r.Rows = append(r.Rows, row)
	}
	return r
}

// distRun measures one distributed round with k collaborating FMs on the
// named topology; it returns the merged result.
func distRun(topoName string, k int, seed uint64) (core.TeamResult, error) {
	tp, err := topo.ByName(topoName)
	if err != nil {
		return core.TeamResult{}, err
	}
	e := sim.NewEngine()
	f, err := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(seed*31+7))
	if err != nil {
		return core.TeamResult{}, err
	}
	eps := tp.Endpoints()
	members := make([]*core.Manager, k)
	for i := 0; i < k; i++ {
		members[i] = core.NewManager(f, f.Device(eps[i*len(eps)/k]), core.Options{Algorithm: core.Distributed})
	}
	team := core.NewTeam(members)
	// Bootstrap round: the primary alone discovers so Prepare can
	// compute report routes (in deployment this state carries over from
	// normal operation).
	var boot bool
	members[0].OnDiscoveryComplete = func(core.Result) { boot = true }
	members[0].StartDiscovery()
	e.Run()
	if !boot {
		return core.TeamResult{}, fmt.Errorf("experiment: distributed bootstrap failed on %s", topoName)
	}
	team.RestoreMemberCallbacks()
	team.Prepare()
	var res *core.TeamResult
	team.OnComplete = func(r core.TeamResult) { res = &r }
	team.StartDiscovery()
	e.Run()
	if res == nil {
		return core.TeamResult{}, fmt.Errorf("experiment: distributed round hung on %s", topoName)
	}
	return *res, nil
}

// ExtDistributed measures how discovery time scales with the number of
// collaborating fabric managers.
func ExtDistributed() Report {
	r := Report{
		ID:     "ext-distributed",
		Title:  "Discovery distributed over collaborating fabric managers",
		Header: []string{"Topology", "FMs", "Time (s)", "Total pkts", "Sync pkts", "Missing", "Speedup vs 1 FM"},
		Notes: []string{
			"paper section 5: \"distribute the entire process through several collaborative fabric managers, in order to increase parallelization\"",
			"regions partition dynamically via atomic ownership claims; collaborators ship their view to the primary over the fabric",
		},
	}
	for _, tn := range []string{"6x6 mesh", "8x8 torus", "10x10 torus"} {
		var base sim.Duration
		for _, k := range []int{1, 2, 4} {
			res, err := distRun(tn, k, 1)
			if err != nil {
				r.Rows = append(r.Rows, []string{tn, fmt.Sprint(k), "ERR: " + err.Error(), "", "", "", ""})
				continue
			}
			if k == 1 {
				base = res.Duration
			}
			speedup := "-"
			if base > 0 && res.Duration > 0 {
				speedup = fmt.Sprintf("%.2fx", float64(base)/float64(res.Duration))
			}
			r.Rows = append(r.Rows, []string{
				tn, fmt.Sprint(k), secs(res.Duration),
				fmt.Sprint(res.TotalPacketsSent), fmt.Sprint(res.SyncPackets),
				fmt.Sprint(res.Missing), speedup,
			})
		}
	}
	return r
}

// ExtTraffic validates the paper's methodological claim that application
// traffic scarcely influences discovery time, because management packets
// ride the highest-priority virtual channel.
func ExtTraffic() Report {
	r := Report{
		ID:     "ext-traffic",
		Title:  "Discovery time with and without background application traffic",
		Header: []string{"Topology", "Algorithm", "Idle fabric (s)", "Loaded fabric (s)", "Slowdown"},
		Notes: []string{
			"paper section 4.1: application traffic \"scarcely influences on the discovery time\" because management packets have the highest priority",
		},
	}
	for _, tn := range []string{"4x4 mesh", "6x6 torus"} {
		for _, k := range core.PaperKinds() {
			idle := RunConfig(Config{Topology: tn, Algorithm: k, Seed: 1, Change: NoChange})
			loaded, err := runLoaded(tn, k, 1)
			if idle.Err != nil || err != nil {
				r.Rows = append(r.Rows, []string{tn, k.String(), "ERR", "ERR", ""})
				continue
			}
			slow := float64(loaded) / float64(idle.Result.Duration)
			r.Rows = append(r.Rows, []string{
				tn, k.String(), secs(idle.Result.Duration), secs(loaded),
				fmt.Sprintf("%.3fx", slow),
			})
		}
	}
	return r
}

// ExtFailover measures fabric-management failover: the time from the
// primary FM's death until the secondary has taken over, rediscovered the
// fabric, and reprogrammed the event routes (i.e. the fabric is managed
// again).
func ExtFailover() Report {
	r := Report{
		ID:     "ext-failover",
		Title:  "FM failover: primary death to fabric managed by the secondary",
		Header: []string{"Topology", "HB interval (us)", "Detect (s)", "Rediscover (s)", "Reprogram (s)", "Total outage (s)"},
		Notes: []string{
			"spec / paper section 2: \"If the primary FM fails, the secondary one takes over\"",
			"outage = watchdog window + rediscovery + event-route redistribution",
		},
	}
	for _, tn := range []string{"4x4 mesh", "6x6 torus", "8x8 mesh"} {
		row, err := failoverRun(tn, 300*sim.Microsecond)
		if err != nil {
			r.Rows = append(r.Rows, []string{tn, "", "ERR: " + err.Error(), "", "", ""})
			continue
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}

func failoverRun(topoName string, hb sim.Duration) ([]string, error) {
	tp, err := topo.ByName(topoName)
	if err != nil {
		return nil, err
	}
	e := sim.NewEngine()
	f, err := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(13))
	if err != nil {
		return nil, err
	}
	eps := tp.Endpoints()
	primary := core.NewManager(f, f.Device(eps[0]), core.Options{Algorithm: core.Parallel})
	secondary := core.NewManager(f, f.Device(eps[len(eps)/2]), core.Options{Algorithm: core.Parallel})
	var ready bool
	primary.OnDiscoveryComplete = func(core.Result) {
		primary.DistributeEventRoutes(func(core.DistResult) { ready = true })
	}
	primary.StartDiscovery()
	e.Run()
	if !ready {
		return nil, fmt.Errorf("experiment: primary never configured %s", topoName)
	}
	primary.StartHeartbeats(secondary.Device().DSN, hb)
	var detectAt, rediscoverAt, reprogramAt sim.Time
	w := secondary.WatchPrimary(hb, 3, func() { detectAt = e.Now() })
	secondary.OnDiscoveryComplete = func(core.Result) {
		if rediscoverAt == 0 {
			rediscoverAt = e.Now()
		}
	}
	e.RunUntil(e.Now().Add(2 * sim.Millisecond))

	dieAt := e.Now()
	if err := f.SetDeviceDown(primary.Device().ID, true); err != nil {
		return nil, err
	}
	// Drain until the takeover's redistribution completes; the watchdog
	// wrapper redistributes, so wait for an idle fabric.
	e.Run()
	if !w.TookOver() || rediscoverAt == 0 {
		return nil, fmt.Errorf("experiment: failover did not complete on %s", topoName)
	}
	reprogramAt = e.Now()
	return []string{
		topoName,
		fmt.Sprintf("%.0f", hb.Microseconds()),
		secs(detectAt.Sub(dieAt)),
		secs(rediscoverAt.Sub(detectAt)),
		secs(reprogramAt.Sub(rediscoverAt)),
		secs(reprogramAt.Sub(dieAt)),
	}, nil
}

// runLoaded measures a full discovery while a traffic generator saturates
// the fabric with bulk application packets.
func runLoaded(topoName string, k core.Kind, seed uint64) (sim.Duration, error) {
	tp, err := topo.ByName(topoName)
	if err != nil {
		return 0, err
	}
	e := sim.NewEngine()
	rng := sim.NewRNG(seed)
	f, err := fabric.New(e, tp, fabric.Config{}, rng)
	if err != nil {
		return 0, err
	}
	gen := fabric.NewTrafficGen(f, rng.Split(), 5*sim.Microsecond, 1024)
	gen.Start()
	m := core.NewManager(f, f.Device(tp.Endpoints()[0]), core.Options{Algorithm: k})
	var res *core.Result
	m.OnDiscoveryComplete = func(r core.Result) { res = &r }
	// Let traffic build up before the discovery starts.
	e.RunUntil(e.Now().Add(200 * sim.Microsecond))
	m.StartDiscovery()
	for res == nil && e.Pending() > 0 {
		e.Step()
	}
	gen.Stop()
	if res == nil {
		return 0, fmt.Errorf("experiment: loaded discovery hung on %s", topoName)
	}
	return res.Duration, nil
}
