package experiment

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
)

// fingerprintConfigs spans the simulation's behaviour space: every paper
// algorithm, both change kinds, partial assimilation, and lossy runs with
// retries — 50 scenarios in all.
func fingerprintConfigs(t *testing.T) []Config {
	t.Helper()
	var cfgs []Config
	add := func(topology string, alg core.Kind, opts ...Option) {
		cfgs = append(cfgs, MustConfig(topology, alg, opts...))
	}
	for _, tn := range []string{"3x3 mesh", "4x4 mesh", "4x4 torus"} {
		for _, k := range core.PaperKinds() {
			for _, ch := range []Change{NoChange, RemoveSwitch} {
				for _, seed := range []uint64{1, 2} {
					add(tn, k, WithSeed(seed), WithChange(ch))
				}
			}
		}
	}
	for _, tn := range []string{"4x4 mesh", "6x6 mesh"} {
		for _, ch := range []Change{RemoveSwitch, AddSwitch} {
			for _, seed := range []uint64{1, 3} {
				add(tn, core.Partial, WithSeed(seed), WithChange(ch))
			}
		}
	}
	for _, k := range core.PaperKinds() {
		for _, seed := range []uint64{1, 2} {
			add("4x4 mesh", k, WithSeed(seed), WithLoss(0.01), WithRetries(3, 0))
		}
	}
	if len(cfgs) != 50 {
		t.Fatalf("fingerprint suite has %d scenarios, want 50", len(cfgs))
	}
	return cfgs
}

// TestTelemetryDoesNotPerturbSimulation is the tentpole's core guarantee:
// switching telemetry on changes no simulated metric. Every scenario must
// produce bit-identical results with collection enabled and disabled.
func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("50-scenario sweep")
	}
	plain := fingerprintConfigs(t)
	instrumented := make([]Config, len(plain))
	for i, cfg := range plain {
		cfg.Telemetry = true
		instrumented[i] = cfg
	}
	base := RunConfigAll(plain, 0)
	meas := RunConfigAll(instrumented, 0)
	for i := range base {
		name := fmt.Sprintf("%s/%v/%v/seed%d", plain[i].Topology,
			plain[i].Algorithm, plain[i].Change, plain[i].Seed)
		a, b := base[i], meas[i]
		if (a.Err == nil) != (b.Err == nil) {
			t.Errorf("%s: error mismatch: %v vs %v", name, a.Err, b.Err)
			continue
		}
		if !reflect.DeepEqual(a.Result, b.Result) {
			t.Errorf("%s: Result diverged:\n off %+v\n on  %+v", name, a.Result, b.Result)
		}
		if !reflect.DeepEqual(a.Initial, b.Initial) {
			t.Errorf("%s: Initial diverged", name)
		}
		if a.ActiveNodes != b.ActiveNodes || a.PhysicalNodes != b.PhysicalNodes {
			t.Errorf("%s: node counts diverged: %d/%d vs %d/%d", name,
				a.ActiveNodes, a.PhysicalNodes, b.ActiveNodes, b.PhysicalNodes)
		}
		if a.Events != b.Events {
			t.Errorf("%s: event counts diverged: %d vs %d", name, a.Events, b.Events)
		}
		if b.Err == nil && b.Telemetry == nil {
			t.Errorf("%s: instrumented run carries no snapshot", name)
		}
		if a.Telemetry != nil {
			t.Errorf("%s: plain run unexpectedly carries a snapshot", name)
		}
	}
}

// TestSpansDoNotPerturbSimulation repeats the non-perturbation guarantee
// for causal span tracing: switching spans on changes no simulated metric
// in any of the 50 fingerprint scenarios.
func TestSpansDoNotPerturbSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("50-scenario sweep")
	}
	plain := fingerprintConfigs(t)
	traced := make([]Config, len(plain))
	for i, cfg := range plain {
		cfg.Spans = true
		traced[i] = cfg
	}
	base := RunConfigAll(plain, 0)
	meas := RunConfigAll(traced, 0)
	for i := range base {
		name := fmt.Sprintf("%s/%v/%v/seed%d", plain[i].Topology,
			plain[i].Algorithm, plain[i].Change, plain[i].Seed)
		a, b := base[i], meas[i]
		if (a.Err == nil) != (b.Err == nil) {
			t.Errorf("%s: error mismatch: %v vs %v", name, a.Err, b.Err)
			continue
		}
		if !reflect.DeepEqual(a.Result, b.Result) {
			t.Errorf("%s: Result diverged:\n off %+v\n on  %+v", name, a.Result, b.Result)
		}
		if !reflect.DeepEqual(a.Initial, b.Initial) {
			t.Errorf("%s: Initial diverged", name)
		}
		if a.ActiveNodes != b.ActiveNodes || a.PhysicalNodes != b.PhysicalNodes {
			t.Errorf("%s: node counts diverged: %d/%d vs %d/%d", name,
				a.ActiveNodes, a.PhysicalNodes, b.ActiveNodes, b.PhysicalNodes)
		}
		if a.Events != b.Events {
			t.Errorf("%s: event counts diverged: %d vs %d", name, a.Events, b.Events)
		}
		if b.Spans == nil {
			t.Errorf("%s: traced run carries no span log", name)
		}
		if a.Spans != nil {
			t.Errorf("%s: plain run unexpectedly carries a span log", name)
		}
	}
}
