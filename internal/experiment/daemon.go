package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/topo"
)

// DaemonConfig describes one long-running fabric-manager daemon
// (cmd/asifmd): the fabric it manages, the discovery algorithm it runs,
// and the churn and serving knobs of its steady state. It is the
// daemon-mode analogue of Config — but where Config describes one finite
// measured run, DaemonConfig describes an open-ended process, so it is
// plain JSON data (loadable from a -config file) rather than functional
// options.
type DaemonConfig struct {
	// Topology names the managed fabric (catalogue or parametric name).
	Topology string `json:"topology"`
	// Algorithm is a core.Kind slug; empty selects "parallel".
	Algorithm string `json:"algorithm,omitempty"`
	// Seed drives every random stream: fabric build, churn schedule.
	Seed uint64 `json:"seed,omitempty"`
	// ChurnOps is the number of switch up/down toggles per churn round;
	// 0 disables churn (the daemon only serves the initial discovery).
	ChurnOps int `json:"churn_ops,omitempty"`
	// Rounds bounds the daemon's churn rounds; 0 means run until the
	// process is stopped.
	Rounds int `json:"rounds,omitempty"`
	// AuditEvery forces a full rediscovery after every N rounds (0
	// disables forced audits; change assimilation still runs on PI-5).
	AuditEvery int `json:"audit_every,omitempty"`
	// QueueDepth bounds each subscriber's batch queue; 0 selects the
	// serving layer's default.
	QueueDepth int `json:"queue_depth,omitempty"`
	// Listen is the HTTP serving address; empty selects ":8080".
	Listen string `json:"listen,omitempty"`
	// Regions selects the region-sharded parallel simulation path for
	// the daemon's fabric (0 or 1 = sequential). Sharding disables the
	// fabric's per-link telemetry; engine, shard and FM metrics remain.
	Regions int `json:"regions,omitempty"`
	// ScrapeMS is the observability plane's scrape interval in
	// milliseconds; 0 selects the default (1000).
	ScrapeMS int `json:"scrape_ms,omitempty"`
	// AssimWindowUS enables the coalescing assimilation front-end
	// (requires the "partial" algorithm): PI-5 reports debounce for this
	// many microseconds of simulated time, then one batched partial run
	// assimilates the union. 0 keeps per-event assimilation.
	AssimWindowUS int `json:"assim_window_us,omitempty"`
	// AssimBatchMax caps distinct (reporter, port) changes per coalesced
	// batch; 0 selects the core default. Requires AssimWindowUS.
	AssimBatchMax int `json:"assim_batch_max,omitempty"`
	// StaleAfterMS makes the keeper's re-audit concern fire whenever the
	// maximum per-node database staleness (simulated time since last
	// validated contact) exceeds this many milliseconds; 0 disables the
	// staleness trigger (AuditEvery still audits by round count).
	StaleAfterMS int `json:"stale_after_ms,omitempty"`
}

// DefaultDaemonConfig returns the documented defaults.
func DefaultDaemonConfig() DaemonConfig {
	return DaemonConfig{
		Topology:   "8-port 3-tree",
		Algorithm:  core.Parallel.Slug(),
		Seed:       1,
		ChurnOps:   4,
		AuditEvery: 8,
		Listen:     ":8080",
		ScrapeMS:   1000,
	}
}

// kindSlugs names every accepted algorithm slug, for error messages.
func kindSlugs() string {
	var slugs []string
	for _, k := range core.AllKinds() {
		if k == core.Distributed {
			continue // needs a multi-FM team; not a daemon algorithm
		}
		slugs = append(slugs, k.Slug())
	}
	return strings.Join(slugs, ", ")
}

// Validate checks the config and resolves nothing: call Kind and
// topo.ByName afterwards. Errors name the valid values.
func (dc DaemonConfig) Validate() error {
	if dc.Topology == "" {
		return fmt.Errorf("experiment: daemon config has no topology (catalogue: %s; or parametric like %q)",
			strings.Join(topo.Names(), ", "), "8x8 mesh")
	}
	if _, err := topo.ByName(dc.Topology); err != nil {
		return fmt.Errorf("experiment: daemon config: %w", err)
	}
	if dc.Algorithm != "" {
		k, ok := core.KindBySlug(dc.Algorithm)
		if !ok || k == core.Distributed {
			return fmt.Errorf("experiment: daemon config algorithm %q (valid: %s)", dc.Algorithm, kindSlugs())
		}
	}
	if dc.ChurnOps < 0 {
		return fmt.Errorf("experiment: daemon config churn_ops %d is negative", dc.ChurnOps)
	}
	if dc.Rounds < 0 {
		return fmt.Errorf("experiment: daemon config rounds %d is negative", dc.Rounds)
	}
	if dc.AuditEvery < 0 {
		return fmt.Errorf("experiment: daemon config audit_every %d is negative", dc.AuditEvery)
	}
	if dc.QueueDepth < 0 {
		return fmt.Errorf("experiment: daemon config queue_depth %d is negative", dc.QueueDepth)
	}
	if dc.Regions < 0 {
		return fmt.Errorf("experiment: daemon config regions %d is negative", dc.Regions)
	}
	if dc.ScrapeMS < 0 {
		return fmt.Errorf("experiment: daemon config scrape_ms %d is negative", dc.ScrapeMS)
	}
	if dc.AssimWindowUS < 0 {
		return fmt.Errorf("experiment: daemon config assim_window_us %d is negative", dc.AssimWindowUS)
	}
	if dc.AssimWindowUS > 0 && dc.Kind() != core.Partial {
		return fmt.Errorf("experiment: daemon config assim_window_us requires algorithm %q, not %q",
			core.Partial.Slug(), dc.Kind().Slug())
	}
	if dc.AssimBatchMax < 0 {
		return fmt.Errorf("experiment: daemon config assim_batch_max %d is negative", dc.AssimBatchMax)
	}
	if dc.AssimBatchMax > 0 && dc.AssimWindowUS == 0 {
		return fmt.Errorf("experiment: daemon config assim_batch_max without assim_window_us")
	}
	if dc.StaleAfterMS < 0 {
		return fmt.Errorf("experiment: daemon config stale_after_ms %d is negative", dc.StaleAfterMS)
	}
	return nil
}

// Kind resolves the algorithm slug (default parallel). Call after
// Validate.
func (dc DaemonConfig) Kind() core.Kind {
	if dc.Algorithm == "" {
		return core.Parallel
	}
	k, _ := core.KindBySlug(dc.Algorithm)
	return k
}

// DecodeDaemonConfig parses a daemon config, rejecting unknown fields so
// config files cannot silently rot, and validates it.
func DecodeDaemonConfig(r io.Reader) (DaemonConfig, error) {
	dc := DefaultDaemonConfig()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&dc); err != nil {
		return DaemonConfig{}, fmt.Errorf("experiment: decoding daemon config: %w", err)
	}
	if err := dc.Validate(); err != nil {
		return DaemonConfig{}, err
	}
	return dc, nil
}

// EncodeJSON renders the config as indented JSON with a trailing
// newline.
func (dc DaemonConfig) EncodeJSON() []byte {
	b, err := json.MarshalIndent(dc, "", "  ")
	if err != nil {
		panic(err) // plain-data struct; cannot fail
	}
	return append(b, '\n')
}
