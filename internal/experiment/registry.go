package experiment

import "fmt"

// Opts tunes experiment scale.
type Opts struct {
	// Seeds is the number of repetitions of each change scenario (the
	// paper: "this experiment has been repeated several times for each
	// topology").
	Seeds int
	// Workers bounds the simulation worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// Regions selects the region-sharded parallel simulation path for the
	// experiments that support it (currently ext-scale); <= 1 is the
	// sequential referee path.
	Regions int
}

// withDefaults fills zero options.
func (o Opts) withDefaults() Opts {
	if o.Seeds <= 0 {
		o.Seeds = 4
	}
	return o
}

// Runner is a registered experiment.
type Runner struct {
	// ID is the key used by cmd/asibench -exp.
	ID string
	// Desc summarizes what the experiment reproduces.
	Desc string
	// Heavy marks experiments that run for minutes (multi-thousand-switch
	// fabrics); cmd/asibench skips them under -exp all.
	Heavy bool
	// Run executes the experiment and returns its reports.
	Run func(o Opts) []Report
}

// Runners returns every registered experiment in presentation order.
func Runners() []Runner {
	return []Runner{
		{"table1", "Table 1: topologies evaluated", false, func(Opts) []Report {
			return []Report{Table1Report()}
		}},
		{"fig4", "Fig. 4: avg PI-4 processing time at the FM vs network size", false, func(o Opts) []Report {
			return []Report{Fig4(o.Workers)}
		}},
		{"fig6", "Fig. 6: discovery time after a change (per run and averaged)", false, func(o Opts) []Report {
			return Fig6(o.Seeds, o.Workers)
		}},
		{"fig7a", "Fig. 7(a): FM packet-processing timeline on the 3x3 mesh", false, func(Opts) []Report {
			return []Report{Fig7a()}
		}},
		{"fig7b", "Fig. 7(b): idealized serial vs parallel per-packet behaviour", false, func(Opts) []Report {
			return []Report{Fig7b()}
		}},
		{"fig8", "Fig. 8: discovery time vs FM and device processing factors", false, func(o Opts) []Report {
			return Fig8(o.Workers)
		}},
		{"fig9", "Fig. 9: discovery time vs active nodes at three factor combinations", false, func(o Opts) []Report {
			return Fig9(o.Seeds, o.Workers)
		}},
		{"ext-partial", "Extension: partial rediscovery of the affected region", false, func(o Opts) []Report {
			return []Report{ExtPartial(o.Seeds, o.Workers)}
		}},
		{"ext-distributed", "Extension: collaborative multi-FM discovery", false, func(Opts) []Report {
			return []Report{ExtDistributed()}
		}},
		{"ext-traffic", "Extension: discovery under background application traffic", false, func(Opts) []Report {
			return []Report{ExtTraffic()}
		}},
		{"ext-loss", "Extension: discovery under injected packet loss, with timeout retries", false, func(o Opts) []Report {
			return []Report{ExtLoss(o.Seeds, o.Workers)}
		}},
		{"ext-failover", "Extension: primary FM failure and secondary takeover", false, func(Opts) []Report {
			return []Report{ExtFailover()}
		}},
		{"ext-churn", "Extension: discovery under scripted churn (chaos scenarios)", false, func(o Opts) []Report {
			return []Report{ExtChurn(o.Seeds)}
		}},
		{"ext-scale", "Extension: discovery at 1k-10k switches across all topology families", true, func(o Opts) []Report {
			return []Report{ExtScale(o.Regions)}
		}},
	}
}

// ByID finds a registered experiment.
func ByID(id string) (Runner, error) {
	for _, r := range Runners() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiment: unknown id %q", id)
}

// RunByID is a convenience wrapper used by the CLI and benchmarks.
func RunByID(id string, o Opts) ([]Report, error) {
	r, err := ByID(id)
	if err != nil {
		return nil, err
	}
	return r.Run(o.withDefaults()), nil
}
