package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Report is one reproduced table or figure, rendered as text rows. The
// harness does not plot; the rows carry exactly the series a figure
// would, so the numbers can be compared against the paper directly or
// fed to a plotting tool via CSV.
type Report struct {
	// ID is the experiment identifier, e.g. "fig6a".
	ID string `json:"id"`
	// Title describes the experiment as the paper captions it.
	Title string `json:"title"`
	// Header names the columns.
	Header []string `json:"header"`
	// Rows holds the data, stringified.
	Rows [][]string `json:"rows"`
	// Notes carries methodology remarks appended after the table.
	Notes []string `json:"notes,omitempty"`
	// WallSeconds, Events and EventsPerSec record the experiment's
	// wall-clock cost and simulator throughput: total wall time spent
	// simulating, total simulation events processed, and their ratio.
	// They are filled by the CLI envelope (asibench -json), never by the
	// renderers, and omitted when zero so committed goldens are
	// undisturbed.
	WallSeconds  float64 `json:"wall_seconds,omitempty"`
	Events       uint64  `json:"events,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// Render writes an aligned text table.
func (r Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(r.Header)); err != nil {
		return err
	}
	total := len(widths) - 1
	if total < 0 {
		total = 0
	}
	for _, wd := range widths {
		total += wd + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the report as comma-separated values (cells containing
// commas or quotes are quoted).
func (r Report) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(r.Header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
