package experiment

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestNewConfigAppliesOptions(t *testing.T) {
	cfg, err := NewConfig("4x4 mesh", core.Parallel,
		WithSeed(9),
		WithChange(RemoveSwitch),
		WithFactors(2, 0.5),
		WithLoss(0.01),
		WithRetries(3, 10*sim.Microsecond),
		WithTelemetry(),
	)
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Topology: "4x4 mesh", Algorithm: core.Parallel,
		Seed: 9, Change: RemoveSwitch,
		FMFactor: 2, DeviceFactor: 0.5,
		LossRate: 0.01, MaxRetries: 3, RetryBackoff: 10 * sim.Microsecond,
		Telemetry: true,
	}
	if cfg != want {
		t.Errorf("NewConfig = %+v, want %+v", cfg, want)
	}
}

func TestNewConfigValidates(t *testing.T) {
	cases := []struct {
		name string
		topo string
		alg  core.Kind
		opts []Option
		frag string
	}{
		{"topology", "17x17 blob", core.Parallel, nil, "unknown topology"},
		{"algorithm", "3x3 mesh", core.Kind(99), nil, "unknown algorithm"},
		{"change", "3x3 mesh", core.Parallel, []Option{WithChange(Change(7))}, "unknown change"},
		{"factor", "3x3 mesh", core.Parallel, []Option{WithFactors(-1, 1)}, "negative processing factor"},
		{"loss", "3x3 mesh", core.Parallel, []Option{WithLoss(1.5)}, "loss rate"},
		{"retries", "3x3 mesh", core.Parallel, []Option{WithRetries(-1, 0)}, "negative retry limit"},
		{"backoff", "3x3 mesh", core.Parallel, []Option{WithRetries(1, -sim.Microsecond)}, "negative retry backoff"},
	}
	for _, tc := range cases {
		if _, err := NewConfig(tc.topo, tc.alg, tc.opts...); err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.frag)
		}
	}
}

// RunConfig with telemetry attaches a snapshot carrying the FM, fabric
// and engine metric families end to end.
func TestRunConfigTelemetrySnapshot(t *testing.T) {
	o := RunConfig(MustConfig("3x3 mesh", core.Parallel, WithSeed(1), WithTelemetry()))
	if o.Err != nil {
		t.Fatal(o.Err)
	}
	s := o.Telemetry
	if s == nil {
		t.Fatal("telemetry enabled but Outcome.Telemetry is nil")
	}
	if h, ok := s.Histogram(core.MetricFMServicePrefix + "completion"); !ok || h.Count == 0 {
		t.Errorf("FM completion histogram missing or empty: %+v", h)
	}
	if v, ok := s.Counter(sim.MetricEvents); !ok || v != o.Events {
		t.Errorf("sim.events = %d (ok=%v), want %d", v, ok, o.Events)
	}
	if d, ok := s.Gauge(sim.MetricHeapMax); !ok || d < 2 {
		t.Errorf("heap high-water = %d (ok=%v), want >= 2", d, ok)
	}
	var linkTx uint64
	for _, v := range s.Vectors {
		if strings.HasPrefix(v.Name, "fabric.link.tx") {
			linkTx += v.Value
		}
	}
	if linkTx == 0 {
		t.Error("no fabric link transmissions in snapshot")
	}
}

// A telemetry-less run must not carry a snapshot.
func TestRunConfigTelemetryOffByDefault(t *testing.T) {
	o := RunConfig(MustConfig("3x3 mesh", core.Parallel, WithSeed(1)))
	if o.Err != nil {
		t.Fatal(o.Err)
	}
	if o.Telemetry != nil {
		t.Fatalf("telemetry disabled but snapshot present: %+v", o.Telemetry)
	}
}
