package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Formatting helpers: the paper's axes use seconds (discovery time) and
// microseconds (FM processing time).
func secs(d sim.Duration) string  { return fmt.Sprintf("%.6f", d.Seconds()) }
func usecs(d sim.Duration) string { return fmt.Sprintf("%.2f", d.Microseconds()) }

// Table1Report reproduces Table 1: the topologies evaluated.
func Table1Report() Report {
	r := Report{
		ID:     "table1",
		Title:  "Topologies evaluated",
		Header: []string{"Topology", "Switches", "Endpoints", "Total Devices"},
	}
	for _, s := range topo.Table1() {
		tp := s.Build()
		r.Rows = append(r.Rows, []string{
			s.Name,
			fmt.Sprint(tp.NumSwitches()),
			fmt.Sprint(tp.NumEndpoints()),
			fmt.Sprint(len(tp.Nodes)),
		})
	}
	return r
}

// Fig4 reproduces Fig. 4: average time to process a PI-4 packet at the FM
// for each discovery algorithm, as a function of the network size.
func Fig4(workers int) Report {
	cfgs := make([]Config, 0, len(topo.Table1())*3)
	for _, s := range topo.Table1() {
		for _, k := range core.PaperKinds() {
			cfgs = append(cfgs, Config{Topology: s.Name, Algorithm: k, Seed: 1, Change: NoChange})
		}
	}
	outs := RunConfigAll(cfgs, workers)
	r := Report{
		ID:     "fig4",
		Title:  "Average PI-4 processing time at the FM (microseconds) vs network size",
		Header: []string{"Topology", "Switches", "Serial Packet", "Serial Device", "Parallel"},
		Notes: []string{
			"processing time model calibrated to the paper's profiling (Pentium 4, 3.0 GHz): Parallel < Serial Device < Serial Packet, growing mildly with database size",
		},
	}
	for i := 0; i < len(outs); i += 3 {
		o := outs[i]
		row := []string{o.Config.Topology, fmt.Sprint(o.Switches)}
		for j := 0; j < 3; j++ {
			if outs[i+j].Err != nil {
				row = append(row, "ERR")
				continue
			}
			row = append(row, usecs(outs[i+j].Result.AvgFMProcessing()))
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}

// changeSweep runs the paper's change experiment (random switch removal
// and addition, several seeds) for every Table 1 topology under the given
// processing factors, all three algorithms per scenario.
func changeSweep(seeds, workers int, fmFactor, devFactor float64) []Outcome {
	var cfgs []Config
	for _, s := range topo.Table1() {
		for seed := 1; seed <= seeds; seed++ {
			for _, ch := range []Change{RemoveSwitch, AddSwitch} {
				for _, k := range core.PaperKinds() {
					cfgs = append(cfgs, Config{
						Topology: s.Name, Algorithm: k,
						Seed: uint64(seed), Change: ch,
						FMFactor: fmFactor, DeviceFactor: devFactor,
					})
				}
			}
		}
	}
	return RunConfigAll(cfgs, workers)
}

// sweepReports renders a change sweep as the Fig. 6(a)-style per-run
// table and the Fig. 6(b)-style per-topology averages.
func sweepReports(outs []Outcome, idA, titleA, idB, titleB string) (perRun, averaged Report) {
	perRun = Report{
		ID:     idA,
		Title:  titleA,
		Header: []string{"Topology", "Change", "Seed", "Active Nodes", "Serial Packet (s)", "Serial Device (s)", "Parallel (s)"},
	}
	averaged = Report{
		ID:     idB,
		Title:  titleB,
		Header: []string{"Topology", "Physical Nodes", "Serial Packet (s)", "Serial Device (s)", "Parallel (s)"},
	}
	type key struct{ topoName string }
	agg := map[string][3]*metrics.Sample{}
	nodes := map[string]int{}
	order := []string{}
	for i := 0; i+2 < len(outs); i += 3 {
		o := outs[i]
		row := []string{
			o.Config.Topology, o.Config.Change.String(), fmt.Sprint(o.Config.Seed),
			fmt.Sprint(o.ActiveNodes),
		}
		if _, ok := agg[o.Config.Topology]; !ok {
			// Streaming samples: sweeps only need the mean, so there is
			// no reason to retain every run's duration.
			agg[o.Config.Topology] = [3]*metrics.Sample{
				metrics.NewStreaming(), metrics.NewStreaming(), metrics.NewStreaming(),
			}
			nodes[o.Config.Topology] = o.PhysicalNodes
			order = append(order, o.Config.Topology)
		}
		for j := 0; j < 3; j++ {
			oj := outs[i+j]
			if oj.Err != nil {
				row = append(row, "ERR")
				continue
			}
			row = append(row, secs(oj.Result.Duration))
			agg[o.Config.Topology][j].Add(oj.Result.Duration.Seconds())
		}
		perRun.Rows = append(perRun.Rows, row)
	}
	for _, name := range order {
		row := []string{name, fmt.Sprint(nodes[name])}
		for j := 0; j < 3; j++ {
			row = append(row, fmt.Sprintf("%.6f", agg[name][j].Mean()))
		}
		averaged.Rows = append(averaged.Rows, row)
	}
	return perRun, averaged
}

// Fig6 reproduces Fig. 6: discovery time after a topological change, (a)
// per run against active reachable nodes and (b) averaged per topology
// against physical nodes.
func Fig6(seeds, workers int) []Report {
	outs := changeSweep(seeds, workers, 1, 1)
	a, b := sweepReports(outs,
		"fig6a", "Discovery time vs amount of active nodes (per run)",
		"fig6b", "Discovery time vs network size (average per topology)")
	return []Report{a, b}
}

// Fig7a reproduces Fig. 7(a): the simulation time at which the FM
// finishes processing each discovery packet, for the 3x3 mesh with all
// devices active.
func Fig7a() Report {
	r := Report{
		ID:     "fig7a",
		Title:  "Time at which each discovery packet is processed at the FM (3x3 mesh)",
		Header: []string{"Packet #", "Serial Packet (s)", "Serial Device (s)", "Parallel (s)"},
		Notes: []string{
			"Serial Packet: constant slope (FM idles a full round trip per packet)",
			"Serial Device: slope alternates between serialized probes and pipelined port reads",
			"Parallel: constant minimal slope (FM pipeline always full)",
		},
	}
	var lines [3][]core.TimelinePoint
	for j, k := range core.PaperKinds() {
		o := RunConfig(Config{Topology: "3x3 mesh", Algorithm: k, Seed: 1, Change: NoChange})
		if o.Err != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("%v failed: %v", k, o.Err))
			continue
		}
		lines[j] = o.Result.Timeline
	}
	maxLen := 0
	for _, l := range lines {
		if len(l) > maxLen {
			maxLen = len(l)
		}
	}
	for i := 0; i < maxLen; i++ {
		row := []string{fmt.Sprint(i + 1)}
		for j := 0; j < 3; j++ {
			if i < len(lines[j]) {
				row = append(row, fmt.Sprintf("%.6f", lines[j][i].At.Seconds()))
			} else {
				row = append(row, "")
			}
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}

// Fig7b reproduces Fig. 7(b): the idealized serial and parallel per-packet
// behaviours in terms of T_FM, T_Device and T_Prop, evaluated with the
// model's default calibration.
func Fig7b() Report {
	cost := core.DefaultCostModel()
	cfg := fabric.DefaultConfig()
	// Representative one-hop transfer: a ~40-byte management packet.
	tProp := cfg.Propagation + cfg.SwitchLatency + sim.Nanos(40*8/cfg.LinkBandwidthGbps)
	tDev := cfg.DeviceProcessing
	const dbSize = 18 // 3x3 mesh, fully discovered
	r := Report{
		ID:     "fig7b",
		Title:  "Idealized serial vs parallel per-packet behaviour",
		Header: []string{"Quantity", "Expression", "Value"},
		Notes: []string{
			"serial: the FM idles for the full round trip after every packet",
			"parallel: round trips overlap with FM processing, so T_FM alone paces the pipeline",
		},
	}
	add := func(name, expr string, v sim.Duration) {
		r.Rows = append(r.Rows, []string{name, expr, v.String()})
	}
	add("T_Prop (per direction)", "wire + switch + serialization", tProp)
	add("T_Device", "PI-4 service at a device", tDev)
	for _, k := range core.PaperKinds() {
		add(fmt.Sprintf("T_FM (%v)", k), "processing model at 18 devices", cost.FMProcessing(k, dbSize, 1))
	}
	add("serial per-packet", "T_FM + 2*T_Prop + T_Device",
		cost.FMProcessing(core.SerialPacket, dbSize, 1)+2*tProp+tDev)
	add("parallel per-packet", "T_FM",
		cost.FMProcessing(core.Parallel, dbSize, 1))
	return r
}

// Fig8 reproduces Fig. 8: discovery time on the 8x8 mesh (all devices
// active) as the FM and device processing factors vary.
func Fig8(workers int) []Report {
	fmFactors := []float64{0.25, 0.5, 1, 1.5, 2, 3, 4}
	devFactors := []float64{0.02, 0.05, 0.1, 0.2, 1.0 / 3, 0.5, 1, 2, 4, 8}

	factorSweep := func(id, title, label string, factors []float64, vary func(f float64) (fmF, devF float64)) Report {
		var cfgs []Config
		for _, f := range factors {
			fmF, devF := vary(f)
			for _, k := range core.PaperKinds() {
				cfgs = append(cfgs, Config{
					Topology: "8x8 mesh", Algorithm: k, Seed: 1, Change: NoChange,
					FMFactor: fmF, DeviceFactor: devF,
				})
			}
		}
		outs := RunConfigAll(cfgs, workers)
		r := Report{
			ID:     id,
			Title:  title,
			Header: []string{label, "Serial Packet (s)", "Serial Device (s)", "Parallel (s)"},
		}
		for i, f := range factors {
			row := []string{fmt.Sprintf("%.3f", f)}
			for j := 0; j < 3; j++ {
				o := outs[i*3+j]
				if o.Err != nil {
					row = append(row, "ERR")
					continue
				}
				row = append(row, secs(o.Result.Duration))
			}
			r.Rows = append(r.Rows, row)
		}
		return r
	}

	a := factorSweep("fig8a",
		"Discovery time vs FM processing factor (8x8 mesh, device factor = 1)",
		"FM factor", fmFactors,
		func(f float64) (float64, float64) { return f, 1 })
	b := factorSweep("fig8b",
		"Discovery time vs device processing factor (8x8 mesh, FM factor = 1)",
		"Device factor", devFactors,
		func(f float64) (float64, float64) { return 1, f })
	return []Report{a, b}
}

// Fig9 reproduces Fig. 9: the Fig. 6(a) experiment repeated at three
// processing-factor combinations.
func Fig9(seeds, workers int) []Report {
	panels := []struct {
		id         string
		fmF, devF  float64
		titleExtra string
	}{
		{"fig9a", 1, 1, "FM factor = 1, device factor = 1"},
		{"fig9b", 1, 0.2, "FM factor = 1, device factor = 0.2"},
		{"fig9c", 4, 0.2, "FM factor = 4, device factor = 0.2"},
	}
	var reports []Report
	for _, p := range panels {
		outs := changeSweep(seeds, workers, p.fmF, p.devF)
		a, _ := sweepReports(outs,
			p.id, "Discovery time vs active nodes ("+p.titleExtra+")",
			p.id+"-avg", "")
		reports = append(reports, a)
	}
	return reports
}
