package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Config is the validated description of one simulation run. It collapses
// the knobs that accreted across RunSpec and core.Options — loss model,
// retry policy, tracing, telemetry — into one place. Build it with
// NewConfig to get validation errors at construction time; the zero
// values of the optional fields reproduce the paper's baseline (lossless
// fabric, no retries, factors of 1, no instrumentation).
type Config struct {
	// Topology is a Table 1 topology name (topo.ByName).
	Topology string
	// Algorithm selects the discovery variant under test.
	Algorithm core.Kind
	// FMFactor and DeviceFactor scale the FM and device processing-time
	// models; zero means the calibrated default of 1.
	FMFactor     float64
	DeviceFactor float64
	// Seed makes the run reproducible; equal configs replay bit-identically.
	Seed uint64
	// Change selects the topological change injected after the transient.
	Change Change
	// LossRate injects uniform per-link-traversal packet loss; zero means
	// a lossless fabric, the paper's assumption.
	LossRate float64
	// Faults, when non-nil, overrides LossRate with a full fault plan
	// (per-link rules, delays, flaps).
	Faults *fabric.FaultPlan
	// MaxRetries and RetryBackoff configure the FM's timeout-retry
	// policy; zero MaxRetries disables retries.
	MaxRetries   int
	RetryBackoff sim.Duration
	// Trace optionally records packet-level fabric events for the run.
	Trace trace.Recorder
	// Telemetry enables per-run metric collection: FM per-phase service
	// and round-trip histograms, fabric per-link/per-VC counters, and
	// engine statistics, snapshotted into Outcome.Telemetry. Enabling it
	// never changes any simulated metric.
	Telemetry bool
	// Spans enables causal span tracing: every FM-issued PI-4 request
	// gets a request span with per-attempt, per-hop, queueing and
	// device-service child spans, snapshotted into Outcome.Spans.
	// Enabling it never changes any simulated metric.
	Spans bool
	// Regions selects the conservative parallel simulation path: the
	// fabric is partitioned into up to Regions regions, each with its own
	// event queue and worker, synchronized with link-latency lookahead.
	// 0 or 1 is the sequential referee path. Regions > 1 excludes every
	// run perturbation that cannot be sharded deterministically: tracing,
	// telemetry, spans, loss and fault plans.
	Regions int
}

// Option adjusts a Config under construction in NewConfig.
type Option func(*Config)

// WithSeed sets the run's reproducibility seed.
func WithSeed(seed uint64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithChange selects the topological change to inject.
func WithChange(ch Change) Option {
	return func(c *Config) { c.Change = ch }
}

// WithFactors scales the FM and device processing-time models.
func WithFactors(fmFactor, deviceFactor float64) Option {
	return func(c *Config) { c.FMFactor, c.DeviceFactor = fmFactor, deviceFactor }
}

// WithLoss injects uniform per-link-traversal packet loss.
func WithLoss(rate float64) Option {
	return func(c *Config) { c.LossRate = rate }
}

// WithFaults installs a full fault plan, overriding WithLoss.
func WithFaults(p *fabric.FaultPlan) Option {
	return func(c *Config) { c.Faults = p }
}

// WithRetries configures the FM's timeout-retry policy.
func WithRetries(maxRetries int, backoff sim.Duration) Option {
	return func(c *Config) { c.MaxRetries, c.RetryBackoff = maxRetries, backoff }
}

// WithTrace attaches a packet-level trace recorder.
func WithTrace(rec trace.Recorder) Option {
	return func(c *Config) { c.Trace = rec }
}

// WithTelemetry enables per-run metric collection.
func WithTelemetry() Option {
	return func(c *Config) { c.Telemetry = true }
}

// WithSpans enables causal span tracing for the run.
func WithSpans() Option {
	return func(c *Config) { c.Spans = true }
}

// WithParallelRegions runs the simulation on the region-sharded parallel
// path with up to r regions (r <= 1 selects the sequential path).
func WithParallelRegions(r int) Option {
	return func(c *Config) { c.Regions = r }
}

// NewConfig builds and validates a run configuration.
func NewConfig(topology string, alg core.Kind, opts ...Option) (Config, error) {
	cfg := Config{Topology: topology, Algorithm: alg}
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// MustConfig is NewConfig for statically known-good configurations; it
// panics on a validation error.
func MustConfig(topology string, alg core.Kind, opts ...Option) Config {
	cfg, err := NewConfig(topology, alg, opts...)
	if err != nil {
		panic(err)
	}
	return cfg
}

// Validate reports the first problem that would make the run fail or be
// meaningless. RunConfig also tolerates unvalidated configs, reporting
// problems through Outcome.Err instead.
func (c Config) Validate() error {
	if _, err := topo.ByName(c.Topology); err != nil {
		return err
	}
	if !c.Algorithm.Valid() {
		return fmt.Errorf("experiment: unknown algorithm %v", c.Algorithm)
	}
	if c.Change < NoChange || c.Change > AddSwitch {
		return fmt.Errorf("experiment: unknown change %v", c.Change)
	}
	if c.FMFactor < 0 || c.DeviceFactor < 0 {
		return fmt.Errorf("experiment: negative processing factor (fm=%v, device=%v)", c.FMFactor, c.DeviceFactor)
	}
	if c.LossRate < 0 || c.LossRate > 1 {
		return fmt.Errorf("experiment: loss rate %v outside [0, 1]", c.LossRate)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("experiment: negative retry limit %d", c.MaxRetries)
	}
	if c.RetryBackoff < 0 {
		return fmt.Errorf("experiment: negative retry backoff %v", c.RetryBackoff)
	}
	if c.Regions < 0 {
		return fmt.Errorf("experiment: negative region count %d", c.Regions)
	}
	if c.Regions > 1 {
		switch {
		case c.Trace != nil:
			return fmt.Errorf("experiment: packet tracing is unsupported with parallel regions")
		case c.Telemetry:
			return fmt.Errorf("experiment: telemetry is unsupported with parallel regions")
		case c.Spans:
			return fmt.Errorf("experiment: span tracing is unsupported with parallel regions")
		case c.LossRate > 0 || c.Faults != nil:
			return fmt.Errorf("experiment: fault injection is unsupported with parallel regions")
		}
	}
	return nil
}
