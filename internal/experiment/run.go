// Package experiment reproduces the paper's evaluation: it builds
// fabrics, drives the management protocol through the paper's scenarios
// (initial discovery, event-route distribution, a topological change,
// PI-5 detection, change assimilation), and renders each table and figure
// of section 4 as a textual report. Independent simulation runs execute
// in parallel across a worker pool.
package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/telemetry"
	"repro/internal/topo"
)

// Change selects the topological change injected after the transient
// period, as in the paper: "the addition or removal of a randomly chosen
// fabric switch".
type Change int

const (
	// NoChange measures the discovery of the fully active fabric
	// (paper Figs. 4, 7 and 8: "assuming that all fabric devices are
	// active").
	NoChange Change = iota
	// RemoveSwitch hot-removes a random switch; PI-5 reports trigger
	// the measured rediscovery.
	RemoveSwitch
	// AddSwitch boots the fabric with one random switch absent and
	// hot-adds it after the transient.
	AddSwitch
)

// String names the change.
func (c Change) String() string {
	switch c {
	case NoChange:
		return "none"
	case RemoveSwitch:
		return "remove"
	case AddSwitch:
		return "add"
	default:
		return fmt.Sprintf("Change(%d)", int(c))
	}
}

// Outcome carries one run's measurements.
type Outcome struct {
	Config Config
	// PhysicalNodes is the total device count of the built topology
	// (the x-axis of Fig. 6b); Switches its switch count.
	PhysicalNodes int
	Switches      int
	// ActiveNodes counts devices alive and reachable from the FM after
	// the change (the x-axis of Fig. 6a).
	ActiveNodes int
	// Result is the measured discovery: the change-triggered run, or
	// the initial discovery for NoChange.
	Result core.Result
	// Initial is the transient-period discovery that preceded the
	// change.
	Initial core.Result
	// Err reports a failed run (e.g. no PI-5 reached the FM).
	Err error
	// Events counts the simulation events the engine processed for this
	// run (all phases: transient, change, assimilation). Together with
	// wall-clock time it yields the simulator's events/sec throughput.
	Events uint64
	// Wall is the run's wall-clock duration and EventsPerSec the derived
	// simulator throughput, measured for every run.
	Wall         time.Duration
	EventsPerSec float64
	// Regions is the number of simulation regions actually used (1 on the
	// sequential path; the requested count is clamped to the switch
	// count). RegionEvents is the per-region event split, SyncRounds the
	// number of conservative barrier rounds and LookaheadStalls the
	// region-rounds that had pending work held back by the lookahead
	// bound — all zero/nil on the sequential path.
	Regions         int
	RegionEvents    []uint64
	SyncRounds      uint64
	LookaheadStalls uint64
	// Telemetry is the run's end-of-run metric snapshot, non-nil only
	// when Config.Telemetry was set.
	Telemetry *telemetry.Snapshot
	// Spans is the run's causal span log, non-nil only when
	// Config.Spans was set.
	Spans *span.Log
}

// spanCap bounds the per-run span log. A full discovery of the largest
// Table 1 topology stays well under this; if a pathological fault plan
// exceeds it, the tracer counts the overflow in Log.Dropped instead of
// growing without bound.
const spanCap = 1 << 20

// totalEvents accumulates Engine.Processed across every Run, including
// runs executing concurrently under RunAll's worker pool.
var totalEvents atomic.Uint64

// TakeProcessedEvents returns the number of simulation events processed
// by all Runs since the previous call, and resets the tally. Reporting
// layers (asibench, benchmarks) use it to derive aggregate events/sec.
func TakeProcessedEvents() uint64 {
	return totalEvents.Swap(0)
}

// RunConfig executes one run configuration to completion.
func RunConfig(cfg Config) (out Outcome) {
	out = Outcome{Config: cfg}
	tp, err := topo.ByName(cfg.Topology)
	if err != nil {
		out.Err = err
		return out
	}
	out.PhysicalNodes = len(tp.Nodes)
	out.Switches = tp.NumSwitches()

	if cfg.Regions > 1 {
		// The parallel path is incompatible with instrumentation and fault
		// injection (Config.Validate rejects these combinations up front;
		// RunConfig tolerates unvalidated configs).
		if cfg.Trace != nil || cfg.Telemetry || cfg.Spans || cfg.LossRate > 0 || cfg.Faults != nil {
			out.Err = fmt.Errorf("experiment: instrumentation and fault injection are unsupported with parallel regions")
			return out
		}
	}

	var (
		e         = sim.NewEngine()
		group     *sim.ShardGroup
		reg       *telemetry.Registry
		wallStart = time.Now()
		f         *fabric.Fabric
		sp        *span.Tracer
	)
	if cfg.Telemetry {
		reg = telemetry.New()
	}
	if cfg.Spans {
		sp = span.New(spanCap)
	}
	defer func() {
		out.Regions = 1
		if group != nil {
			out.Events = group.Processed()
			out.Regions = group.Shards()
			out.RegionEvents = group.RegionProcessed()
			out.SyncRounds = group.Rounds
			out.LookaheadStalls = group.Stalls
		} else {
			out.Events = e.Processed
		}
		totalEvents.Add(out.Events)
		out.Wall = time.Since(wallStart)
		if s := out.Wall.Seconds(); s > 0 {
			out.EventsPerSec = float64(out.Events) / s
		}
		if sp != nil {
			l := sp.Log()
			out.Spans = &l
		}
		if reg == nil {
			return
		}
		// Cold end-of-run publication: fold the fabric and engine tallies
		// into the registry, then freeze everything into the Outcome.
		if f != nil {
			f.FinishTelemetry(reg)
		}
		e.RecordTelemetry(reg, time.Since(wallStart))
		s := reg.Snapshot()
		out.Telemetry = &s
	}()
	rng := sim.NewRNG(cfg.Seed*2654435761 + 1)
	if cfg.Regions > 1 {
		// The FM host is the first endpoint, below; pinning its region
		// with the partitioner keeps the manager's engine local.
		part, perr := tp.Partition(cfg.Regions, tp.Endpoints()[0])
		if perr != nil {
			out.Err = perr
			return out
		}
		group = sim.NewShardGroup(part.Count, 0) // lookahead set by NewSharded
		// Per-shard random streams split off a dedicated root, so the
		// fabric-level stream (switch choice, faults) stays undisturbed
		// and R=1 vs R>1 runs draw identically.
		group.SeedRNGs(sim.NewRNG(cfg.Seed*2654435761 + 2))
		f, err = fabric.NewSharded(group, part, tp, fabric.Config{DeviceFactor: cfg.DeviceFactor}, rng)
	} else {
		f, err = fabric.New(e, tp, fabric.Config{DeviceFactor: cfg.DeviceFactor}, rng)
	}
	if err != nil {
		out.Err = err
		return out
	}
	if cfg.Trace != nil {
		f.SetTracer(cfg.Trace)
	}
	if reg != nil {
		f.EnableTelemetry(reg)
	}
	if sp != nil {
		f.SetSpanTracer(sp)
	}
	plan := fabric.FaultPlan{}
	switch {
	case cfg.Faults != nil:
		plan = *cfg.Faults
	case cfg.LossRate > 0:
		plan = fabric.Uniform(cfg.LossRate)
	}
	if err := f.SetFaultPlan(plan); err != nil {
		out.Err = err
		return out
	}
	ep := f.Device(tp.Endpoints()[0])
	m := core.NewManager(f, ep, core.Options{
		Algorithm:    cfg.Algorithm,
		FMFactor:     cfg.FMFactor,
		MaxRetries:   cfg.MaxRetries,
		RetryBackoff: cfg.RetryBackoff,
		Telemetry:    reg,
		Spans:        sp,
	})

	// Pick the changed switch up front (never the FM's host switch,
	// which would cut the manager off entirely).
	var target topo.NodeID = -1
	if cfg.Change != NoChange {
		hostSwitch, _, _ := tp.Peer(ep.ID, 0)
		for {
			target = f.RandomSwitch(rng)
			if target != hostSwitch {
				break
			}
		}
	}
	if cfg.Change == AddSwitch {
		if err := f.SetDeviceDown(target, true); err != nil {
			out.Err = err
			return out
		}
	}

	// run drains the simulation to quiescence on whichever path is
	// active; after it returns all region clocks agree.
	run := func() {
		if group != nil {
			group.Run()
		} else {
			e.Run()
		}
	}

	// Transient period: initial discovery and event-route distribution.
	var results []core.Result
	m.OnDiscoveryComplete = func(r core.Result) { results = append(results, r) }
	m.StartDiscovery()
	run()
	if len(results) != 1 {
		out.Err = fmt.Errorf("experiment: initial discovery produced %d results", len(results))
		return out
	}
	out.Initial = results[0]
	var distErr error
	m.DistributeEventRoutes(func(d core.DistResult) {
		if d.Failures > 0 {
			distErr = fmt.Errorf("experiment: %d event-route failures", d.Failures)
		}
	})
	run()
	if distErr != nil {
		out.Err = distErr
		return out
	}

	if cfg.Change == NoChange {
		out.Result = out.Initial
		out.ActiveNodes = f.AliveReachableFrom(ep.ID)
		return out
	}

	// Inject the change; PI-5 reports trigger the measured assimilation.
	switch cfg.Change {
	case RemoveSwitch:
		err = f.SetDeviceDown(target, false)
	case AddSwitch:
		err = f.SetDeviceUp(target, false)
	}
	if err != nil {
		out.Err = err
		return out
	}
	run()
	if len(results) < 2 {
		out.Err = fmt.Errorf("experiment: change on %s (switch %d) triggered no discovery",
			cfg.Topology, target)
		return out
	}
	// Partial assimilation may produce several small runs (one per
	// coalesced report batch); aggregate them into one measurement.
	out.Result = results[1]
	for _, r := range results[2:] {
		out.Result.End = r.End
		out.Result.Duration += r.Duration
		out.Result.PacketsSent += r.PacketsSent
		out.Result.BytesSent += r.BytesSent
		out.Result.PacketsReceived += r.PacketsReceived
		out.Result.BytesReceived += r.BytesReceived
		out.Result.Processed += r.Processed
		out.Result.FMBusy += r.FMBusy
		out.Result.TimedOut += r.TimedOut
		out.Result.Retries += r.Retries
		out.Result.GaveUp += r.GaveUp
		out.Result.Stale += r.Stale
		out.Result.Devices = r.Devices
		out.Result.Switches = r.Switches
		out.Result.Links = r.Links
	}
	out.ActiveNodes = f.AliveReachableFrom(ep.ID)
	return out
}

// RunConfigWithRetry reruns with shifted seeds when a run fails for a
// seed-specific reason (e.g. every PI-5 reporter was stranded by the
// change), keeping sweep tables dense.
func RunConfigWithRetry(cfg Config, retries int) Outcome {
	out := RunConfig(cfg)
	for i := 0; i < retries && out.Err != nil; i++ {
		cfg.Seed += 7919
		out = RunConfig(cfg)
	}
	return out
}

// RunConfigAll executes the configurations across a worker pool,
// preserving order. workers <= 0 selects GOMAXPROCS.
func RunConfigAll(cfgs []Config, workers int) []Outcome {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]Outcome, len(cfgs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(i int, cfg Config) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i] = RunConfigWithRetry(cfg, 2)
		}(i, cfg)
	}
	wg.Wait()
	return out
}
