// Package experiment reproduces the paper's evaluation: it builds
// fabrics, drives the management protocol through the paper's scenarios
// (initial discovery, event-route distribution, a topological change,
// PI-5 detection, change assimilation), and renders each table and figure
// of section 4 as a textual report. Independent simulation runs execute
// in parallel across a worker pool.
package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Change selects the topological change injected after the transient
// period, as in the paper: "the addition or removal of a randomly chosen
// fabric switch".
type Change int

const (
	// NoChange measures the discovery of the fully active fabric
	// (paper Figs. 4, 7 and 8: "assuming that all fabric devices are
	// active").
	NoChange Change = iota
	// RemoveSwitch hot-removes a random switch; PI-5 reports trigger
	// the measured rediscovery.
	RemoveSwitch
	// AddSwitch boots the fabric with one random switch absent and
	// hot-adds it after the transient.
	AddSwitch
)

// String names the change.
func (c Change) String() string {
	switch c {
	case NoChange:
		return "none"
	case RemoveSwitch:
		return "remove"
	case AddSwitch:
		return "add"
	default:
		return fmt.Sprintf("Change(%d)", int(c))
	}
}

// RunSpec describes one simulation run.
type RunSpec struct {
	Topology     string
	Algorithm    core.Kind
	FMFactor     float64
	DeviceFactor float64
	Seed         uint64
	Change       Change
	// LossRate injects uniform per-link-traversal packet loss; zero
	// means a lossless fabric, the paper's assumption.
	LossRate float64
	// Faults, when non-nil, overrides LossRate with a full fault plan
	// (per-link rules, delays, flaps).
	Faults *fabric.FaultPlan
	// MaxRetries and RetryBackoff configure the FM's timeout-retry
	// policy (core.Options); zero MaxRetries disables retries.
	MaxRetries   int
	RetryBackoff sim.Duration
	// Trace optionally records packet-level fabric events for the run.
	Trace trace.Recorder
}

// Outcome carries one run's measurements.
type Outcome struct {
	Spec RunSpec
	// PhysicalNodes is the total device count of the built topology
	// (the x-axis of Fig. 6b); Switches its switch count.
	PhysicalNodes int
	Switches      int
	// ActiveNodes counts devices alive and reachable from the FM after
	// the change (the x-axis of Fig. 6a).
	ActiveNodes int
	// Result is the measured discovery: the change-triggered run, or
	// the initial discovery for NoChange.
	Result core.Result
	// Initial is the transient-period discovery that preceded the
	// change.
	Initial core.Result
	// Err reports a failed run (e.g. no PI-5 reached the FM).
	Err error
	// Events counts the simulation events the engine processed for this
	// run (all phases: transient, change, assimilation). Together with
	// wall-clock time it yields the simulator's events/sec throughput.
	Events uint64
}

// totalEvents accumulates Engine.Processed across every Run, including
// runs executing concurrently under RunAll's worker pool.
var totalEvents atomic.Uint64

// TakeProcessedEvents returns the number of simulation events processed
// by all Runs since the previous call, and resets the tally. Reporting
// layers (asibench, benchmarks) use it to derive aggregate events/sec.
func TakeProcessedEvents() uint64 {
	return totalEvents.Swap(0)
}

// Run executes one specification to completion.
func Run(spec RunSpec) (out Outcome) {
	out = Outcome{Spec: spec}
	tp, err := topo.ByName(spec.Topology)
	if err != nil {
		out.Err = err
		return out
	}
	out.PhysicalNodes = len(tp.Nodes)
	out.Switches = tp.NumSwitches()

	e := sim.NewEngine()
	defer func() {
		out.Events = e.Processed
		totalEvents.Add(e.Processed)
	}()
	rng := sim.NewRNG(spec.Seed*2654435761 + 1)
	f, err := fabric.New(e, tp, fabric.Config{DeviceFactor: spec.DeviceFactor}, rng)
	if err != nil {
		out.Err = err
		return out
	}
	if spec.Trace != nil {
		f.SetTracer(spec.Trace)
	}
	plan := fabric.FaultPlan{}
	switch {
	case spec.Faults != nil:
		plan = *spec.Faults
	case spec.LossRate > 0:
		plan = fabric.Uniform(spec.LossRate)
	}
	if err := f.SetFaultPlan(plan); err != nil {
		out.Err = err
		return out
	}
	ep := f.Device(tp.Endpoints()[0])
	m := core.NewManager(f, ep, core.Options{
		Algorithm:    spec.Algorithm,
		FMFactor:     spec.FMFactor,
		MaxRetries:   spec.MaxRetries,
		RetryBackoff: spec.RetryBackoff,
	})

	// Pick the changed switch up front (never the FM's host switch,
	// which would cut the manager off entirely).
	var target topo.NodeID = -1
	if spec.Change != NoChange {
		hostSwitch, _, _ := tp.Peer(ep.ID, 0)
		for {
			target = f.RandomSwitch(rng)
			if target != hostSwitch {
				break
			}
		}
	}
	if spec.Change == AddSwitch {
		if err := f.SetDeviceDown(target, true); err != nil {
			out.Err = err
			return out
		}
	}

	// Transient period: initial discovery and event-route distribution.
	var results []core.Result
	m.OnDiscoveryComplete = func(r core.Result) { results = append(results, r) }
	m.StartDiscovery()
	e.Run()
	if len(results) != 1 {
		out.Err = fmt.Errorf("experiment: initial discovery produced %d results", len(results))
		return out
	}
	out.Initial = results[0]
	var distErr error
	m.DistributeEventRoutes(func(d core.DistResult) {
		if d.Failures > 0 {
			distErr = fmt.Errorf("experiment: %d event-route failures", d.Failures)
		}
	})
	e.Run()
	if distErr != nil {
		out.Err = distErr
		return out
	}

	if spec.Change == NoChange {
		out.Result = out.Initial
		out.ActiveNodes = f.AliveReachableFrom(ep.ID)
		return out
	}

	// Inject the change; PI-5 reports trigger the measured assimilation.
	switch spec.Change {
	case RemoveSwitch:
		err = f.SetDeviceDown(target, false)
	case AddSwitch:
		err = f.SetDeviceUp(target, false)
	}
	if err != nil {
		out.Err = err
		return out
	}
	e.Run()
	if len(results) < 2 {
		out.Err = fmt.Errorf("experiment: change on %s (switch %d) triggered no discovery",
			spec.Topology, target)
		return out
	}
	// Partial assimilation may produce several small runs (one per
	// coalesced report batch); aggregate them into one measurement.
	out.Result = results[1]
	for _, r := range results[2:] {
		out.Result.End = r.End
		out.Result.Duration += r.Duration
		out.Result.PacketsSent += r.PacketsSent
		out.Result.BytesSent += r.BytesSent
		out.Result.PacketsReceived += r.PacketsReceived
		out.Result.BytesReceived += r.BytesReceived
		out.Result.Processed += r.Processed
		out.Result.FMBusy += r.FMBusy
		out.Result.TimedOut += r.TimedOut
		out.Result.Retries += r.Retries
		out.Result.GaveUp += r.GaveUp
		out.Result.Stale += r.Stale
		out.Result.Devices = r.Devices
		out.Result.Switches = r.Switches
		out.Result.Links = r.Links
	}
	out.ActiveNodes = f.AliveReachableFrom(ep.ID)
	return out
}

// RunWithRetry reruns with shifted seeds when a run fails for a
// seed-specific reason (e.g. every PI-5 reporter was stranded by the
// change), keeping sweep tables dense.
func RunWithRetry(spec RunSpec, retries int) Outcome {
	out := Run(spec)
	for i := 0; i < retries && out.Err != nil; i++ {
		spec.Seed += 7919
		out = Run(spec)
	}
	return out
}

// RunAll executes the specifications across a worker pool, preserving
// order. workers <= 0 selects GOMAXPROCS.
func RunAll(specs []RunSpec, workers int) []Outcome {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]Outcome, len(specs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec RunSpec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i] = RunWithRetry(spec, 2)
		}(i, spec)
	}
	wg.Wait()
	return out
}
