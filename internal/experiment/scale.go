package experiment

import (
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/sim"
)

// scaleRow is one ext-scale fabric: a catalogue or parametric topology
// name plus whether the run audits (a second full rediscovery after the
// first converges). The audit doubles the cost, so the largest fabrics
// verify the initial discovery against ground truth only.
type scaleRow struct {
	Topology string
	Audit    bool
}

// scaleRows lists the swept fabrics in size order, from the largest
// Table 1 grid up to the 10k-switch dragonfly. Every family is
// represented: grid, paper fat-tree, auto-designed two-layer fat-tree,
// and dragonfly. Grids stop at Table 1's 10x10: path depth grows with
// the square root of the switch count, and even the widened 64-bit
// turn pool holds only 21 of a 5-port grid switch's 3-bit turns (a
// 32x32 torus needs up to 32), so large grids are unroutable under
// ASI source routing — which is exactly why the diameter-3 families
// are the scaling path.
func scaleRows() []scaleRow {
	return []scaleRow{
		{"10x10 torus", true},
		{"16-port 3-tree", true},
		{"autofat 128x4096", true},
		{"dragonfly 8x32", true},
		{"dragonfly 16x64", true},
		{"dragonfly 16x313", false},
		{"dragonfly 16x625", false},
	}
}

// scaleHorizon bounds each phase at scale: a 10k-switch dragonfly's
// discovery takes ~540 simulated seconds, far beyond the chaos default
// of 30.
const scaleHorizon = 3600 * sim.Second

// ExtScale measures discovery at fabric sizes the paper never reaches
// (Table 1 tops out at 100 switches): up to 10k switches across every
// generator family. Each row is one chaos-executor run with an empty
// event script — pure initial discovery, convergence-checked against the
// alive-fabric ground truth by the oracle; audited rows rediscover the
// converged fabric a second time. Rows run sequentially so the
// events-per-second column is honest single-run simulator throughput.
// regions > 1 runs each row on the region-sharded parallel path.
func ExtScale(regions int) Report {
	return extScale(scaleRows(), regions)
}

// extScale runs the sweep over an explicit row set; tests use a trimmed
// one to keep the regular suite fast.
func extScale(rows []scaleRow, regions int) Report {
	r := Report{
		ID:     "ext-scale",
		Title:  "Discovery at scale: 100-10,000-switch fabrics across all generator families",
		Header: []string{"Topology", "Switches", "Devices", "Links", "Discovery (s)", "Sim events", "Events/s", "Verdict"},
		Notes: []string{
			"each row is one chaos-executor run with no scripted events; the verdict is the convergence oracle's",
			"audited rows ('converged (audit)') rediscover the settled fabric a second time; the largest rows check the initial discovery only",
			"Events/s is wall-clock simulator throughput for that row, measured sequentially",
		},
	}
	if regions > 1 {
		r.Notes = append(r.Notes,
			fmt.Sprintf("rows run on the region-sharded parallel path (up to %d regions, link-latency lookahead)", regions))
	}
	for _, row := range rows {
		sc := chaos.Scenario{
			Name:      "scale " + row.Topology,
			Seed:      1,
			Algorithm: "parallel",
		}
		sc.Topology.Catalogue = row.Topology
		opt := chaos.Options{Horizon: scaleHorizon, NoAudit: !row.Audit, Regions: regions}
		start := time.Now()
		rep, err := chaos.Execute(sc, opt)
		wall := time.Since(start)
		if rep != nil {
			// Chaos runs bypass RunConfig, so fold their event counts into
			// the package tally asibench derives events/sec from.
			totalEvents.Add(rep.Processed)
		}
		if err != nil {
			r.Rows = append(r.Rows, []string{row.Topology, "", "", "", "", "", "", "ERR " + err.Error()})
			continue
		}
		verdict := "converged (initial)"
		if row.Audit {
			verdict = "converged (audit)"
		}
		if oerr := (chaos.Oracle{}).Check(rep); oerr != nil {
			verdict = "VIOLATION: " + oerr.Error()
		}
		var discovery sim.Duration
		switches := 0
		if len(rep.Results) > 0 {
			discovery = rep.Results[0].Duration
			switches = rep.Results[0].Switches
		}
		r.Rows = append(r.Rows, []string{
			row.Topology,
			fmt.Sprint(switches),
			fmt.Sprint(rep.WantDevices),
			fmt.Sprint(rep.WantLinks),
			fmt.Sprintf("%.3f", discovery.Seconds()),
			fmt.Sprint(rep.Processed),
			fmt.Sprintf("%.0f", float64(rep.Processed)/wall.Seconds()),
			verdict,
		})
	}
	return r
}
