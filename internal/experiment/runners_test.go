package experiment

import (
	"strings"
	"testing"
)

// TestAllRunnersSmoke executes every registered experiment at minimal
// scale and checks the reports are well-formed and error-free. It runs
// hundreds of simulations; skip with -short.
func TestAllRunnersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	for _, r := range Runners() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			if r.Heavy {
				t.Skip("heavy experiment; covered by its own trimmed test")
			}
			reports := r.Run(Opts{Seeds: 1})
			if len(reports) == 0 {
				t.Fatal("runner produced no reports")
			}
			for _, rep := range reports {
				if rep.ID == "" || rep.Title == "" {
					t.Errorf("report missing id/title: %+v", rep)
				}
				if len(rep.Rows) == 0 {
					t.Errorf("%s: empty report", rep.ID)
				}
				for _, row := range rep.Rows {
					if len(row) != len(rep.Header) {
						t.Errorf("%s: row width %d vs header %d", rep.ID, len(row), len(rep.Header))
					}
					for _, cell := range row {
						if strings.Contains(cell, "ERR") {
							t.Errorf("%s: error cell in row %v", rep.ID, row)
						}
					}
				}
			}
		})
	}
}

// TestFig6AveragesConsistent cross-checks the per-run and averaged
// reports of one sweep: the average of a topology's runs must lie within
// its per-run extremes.
func TestFig6AveragesConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	reports := Fig6(2, 0)
	perRun, avg := reports[0], reports[1]
	minMax := map[string][2]float64{}
	for _, row := range perRun.Rows {
		var v float64
		if _, err := fmtSscan(row[4], &v); err != nil {
			t.Fatalf("bad cell %q", row[4])
		}
		mm, ok := minMax[row[0]]
		if !ok {
			mm = [2]float64{v, v}
		}
		if v < mm[0] {
			mm[0] = v
		}
		if v > mm[1] {
			mm[1] = v
		}
		minMax[row[0]] = mm
	}
	for _, row := range avg.Rows {
		var v float64
		if _, err := fmtSscan(row[2], &v); err != nil {
			t.Fatalf("bad avg cell %q", row[2])
		}
		mm := minMax[row[0]]
		if v < mm[0]-1e-12 || v > mm[1]+1e-12 {
			t.Errorf("%s: average %v outside per-run range %v", row[0], v, mm)
		}
	}
}
