package experiment

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
)

// fmtSscan parses a float cell.
func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }

func TestRunNoChangeMeasuresInitialDiscovery(t *testing.T) {
	o := RunConfig(Config{Topology: "3x3 mesh", Algorithm: core.Parallel, Seed: 1, Change: NoChange})
	if o.Err != nil {
		t.Fatal(o.Err)
	}
	if o.Result.Devices != 18 || o.ActiveNodes != 18 {
		t.Errorf("devices=%d active=%d", o.Result.Devices, o.ActiveNodes)
	}
	if o.PhysicalNodes != 18 || o.Switches != 9 {
		t.Errorf("physical=%d switches=%d", o.PhysicalNodes, o.Switches)
	}
	if o.Result.Duration <= 0 {
		t.Error("no duration measured")
	}
}

func TestRunRemoveSwitchMeasuresAssimilation(t *testing.T) {
	for _, k := range core.PaperKinds() {
		o := RunConfig(Config{Topology: "4x4 mesh", Algorithm: k, Seed: 3, Change: RemoveSwitch})
		if o.Err != nil {
			t.Fatalf("%v: %v", k, o.Err)
		}
		if o.ActiveNodes >= o.PhysicalNodes {
			t.Errorf("%v: removal did not reduce active nodes (%d/%d)", k, o.ActiveNodes, o.PhysicalNodes)
		}
		if o.Result.Devices != o.ActiveNodes {
			t.Errorf("%v: rediscovered %d devices, active %d", k, o.Result.Devices, o.ActiveNodes)
		}
		if o.Result.Start <= o.Initial.End {
			t.Errorf("%v: assimilation not after initial discovery", k)
		}
	}
}

func TestRunAddSwitchRestoresFullTopology(t *testing.T) {
	o := RunConfig(Config{Topology: "4x4 torus", Algorithm: core.SerialDevice, Seed: 2, Change: AddSwitch})
	if o.Err != nil {
		t.Fatal(o.Err)
	}
	if o.ActiveNodes != o.PhysicalNodes {
		t.Errorf("addition did not restore the fabric: %d/%d", o.ActiveNodes, o.PhysicalNodes)
	}
	if o.Initial.Devices >= o.Result.Devices {
		t.Errorf("initial %d devices not smaller than post-addition %d", o.Initial.Devices, o.Result.Devices)
	}
}

func TestRunSameSeedSameChangeTarget(t *testing.T) {
	a := RunConfig(Config{Topology: "6x6 mesh", Algorithm: core.SerialPacket, Seed: 5, Change: RemoveSwitch})
	b := RunConfig(Config{Topology: "6x6 mesh", Algorithm: core.Parallel, Seed: 5, Change: RemoveSwitch})
	if a.Err != nil || b.Err != nil {
		t.Fatal(a.Err, b.Err)
	}
	if a.ActiveNodes != b.ActiveNodes {
		t.Errorf("same seed removed different switches: %d vs %d active", a.ActiveNodes, b.ActiveNodes)
	}
}

func TestRunUnknownTopology(t *testing.T) {
	if o := RunConfig(Config{Topology: "nope"}); o.Err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestRunConfigAllPreservesOrder(t *testing.T) {
	cfgs := []Config{
		{Topology: "3x3 mesh", Algorithm: core.Parallel, Seed: 1, Change: NoChange},
		{Topology: "3x3 torus", Algorithm: core.SerialPacket, Seed: 2, Change: NoChange},
		{Topology: "4-port 2-tree", Algorithm: core.SerialDevice, Seed: 3, Change: NoChange},
	}
	outs := RunConfigAll(cfgs, 2)
	if len(outs) != 3 {
		t.Fatalf("got %d outcomes", len(outs))
	}
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("run %d: %v", i, o.Err)
		}
		if o.Config.Topology != cfgs[i].Topology {
			t.Errorf("order broken at %d: %s", i, o.Config.Topology)
		}
	}
}

func TestReportRendering(t *testing.T) {
	r := Report{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "bcd"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "a,bcd\n1,2\n") {
		t.Errorf("CSV output: %q", buf.String())
	}
}

func TestCSVEscaping(t *testing.T) {
	r := Report{Header: []string{`wei"rd`, "with,comma"}, Rows: [][]string{{"v", "w"}}}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"wei""rd"`) || !strings.Contains(buf.String(), `"with,comma"`) {
		t.Errorf("CSV escaping: %q", buf.String())
	}
}

func TestTable1ReportMatchesCatalogue(t *testing.T) {
	r := Table1Report()
	if len(r.Rows) != 13 {
		t.Fatalf("Table 1 has %d rows", len(r.Rows))
	}
	if r.Rows[0][0] != "3x3 mesh" || r.Rows[0][3] != "18" {
		t.Errorf("first row: %v", r.Rows[0])
	}
	if r.Rows[12][0] != "8-port 2-tree" || r.Rows[12][3] != "44" {
		t.Errorf("last row: %v", r.Rows[12])
	}
}

func TestRegistryHasAllExperiments(t *testing.T) {
	want := []string{"table1", "fig4", "fig6", "fig7a", "fig7b", "fig8", "fig9",
		"ext-partial", "ext-distributed", "ext-traffic", "ext-loss", "ext-failover",
		"ext-churn", "ext-scale"}
	got := Runners()
	if len(got) != len(want) {
		t.Fatalf("%d runners, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Errorf("runner %d = %s, want %s", i, got[i].ID, id)
		}
		if got[i].Desc == "" {
			t.Errorf("runner %s has no description", id)
		}
	}
	if _, err := ByID("fig6"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("bogus"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestChangeString(t *testing.T) {
	if NoChange.String() != "none" || RemoveSwitch.String() != "remove" || AddSwitch.String() != "add" {
		t.Error("change strings wrong")
	}
	if Change(9).String() == "" {
		t.Error("unknown change empty")
	}
}

// The figure smoke tests run reduced versions of each experiment and
// verify the paper's qualitative claims hold in the output.

func TestFig4Shape(t *testing.T) {
	r := Fig4(0)
	if len(r.Rows) != 13 {
		t.Fatalf("fig4 rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		var sp, sd, p float64
		if _, err := sscan(row[2], &sp); err != nil {
			t.Fatalf("row %v: %v", row, err)
		}
		if _, err := sscan(row[3], &sd); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(row[4], &p); err != nil {
			t.Fatal(err)
		}
		if !(p < sd && sd < sp) {
			t.Errorf("%s: Fig. 4 ordering violated: SP=%v SD=%v P=%v", row[0], sp, sd, p)
		}
	}
}

func TestFig7aSlopes(t *testing.T) {
	r := Fig7a()
	if len(r.Rows) < 20 {
		t.Fatalf("fig7a rows = %d", len(r.Rows))
	}
	// Final timestamps must order Parallel < Serial Device < Serial
	// Packet; scan last complete row per column.
	last := func(col int) float64 {
		for i := len(r.Rows) - 1; i >= 0; i-- {
			if r.Rows[i][col] != "" {
				var v float64
				if _, err := sscan(r.Rows[i][col], &v); err == nil {
					return v
				}
			}
		}
		return 0
	}
	sp, sd, p := last(1), last(2), last(3)
	if !(p < sd && sd < sp) {
		t.Errorf("timeline endpoints out of order: SP=%v SD=%v P=%v", sp, sd, p)
	}
}

func TestFig8Shape(t *testing.T) {
	reports := Fig8(0)
	if len(reports) != 2 {
		t.Fatal("fig8 must return two panels")
	}
	a := reports[0]
	// Discovery time decreases as the FM factor grows, for every
	// algorithm.
	for col := 1; col <= 3; col++ {
		var first, lastV float64
		if _, err := sscan(a.Rows[0][col], &first); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(a.Rows[len(a.Rows)-1][col], &lastV); err != nil {
			t.Fatal(err)
		}
		if lastV >= first {
			t.Errorf("fig8a col %d: time did not decrease with FM factor (%v -> %v)", col, first, lastV)
		}
	}
	// Device factor: the serial algorithms improve with faster devices;
	// Parallel barely moves between factor 1 and factor 8.
	b := reports[1]
	get := func(row, col int) float64 {
		var v float64
		if _, err := sscan(b.Rows[row][col], &v); err != nil {
			t.Fatal(err)
		}
		return v
	}
	idxOf := func(label string) int {
		for i, row := range b.Rows {
			if row[0] == label {
				return i
			}
		}
		t.Fatalf("factor %s missing", label)
		return -1
	}
	one, eight := idxOf("1.000"), idxOf("8.000")
	if !(get(eight, 1) < get(one, 1)) {
		t.Error("Serial Packet not improved by faster devices")
	}
	pRel := get(eight, 3) / get(one, 3)
	if pRel < 0.93 || pRel > 1.05 {
		t.Errorf("Parallel moved %.3fx between device factors 1 and 8; expected ~flat", pRel)
	}
}

// sscan wraps fmt.Sscan for brevity.
func sscan(s string, v *float64) (int, error) {
	return fmtSscan(s, v)
}
