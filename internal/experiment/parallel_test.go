package experiment

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestRunConfigParallelRegions pins the experiment-layer plumbing of the
// region-sharded path: the outcome reports the region count and
// per-region telemetry, the event split sums to the total, the barrier
// protocol actually ran, and the discovered fabric matches the
// sequential referee run exactly.
func TestRunConfigParallelRegions(t *testing.T) {
	seq := RunConfig(MustConfig("3x3 mesh", core.Parallel, WithSeed(5)))
	if seq.Err != nil {
		t.Fatalf("sequential: %v", seq.Err)
	}
	if seq.Regions != 1 || seq.SyncRounds != 0 || seq.RegionEvents != nil {
		t.Fatalf("sequential outcome carries parallel telemetry: %+v", seq)
	}

	out := RunConfig(MustConfig("3x3 mesh", core.Parallel, WithSeed(5), WithParallelRegions(4)))
	if out.Err != nil {
		t.Fatalf("parallel: %v", out.Err)
	}
	if out.Regions != 4 {
		t.Fatalf("ran %d regions, want 4", out.Regions)
	}
	if out.SyncRounds == 0 {
		t.Fatal("no barrier rounds recorded; the parallel path did not run")
	}
	if len(out.RegionEvents) != out.Regions {
		t.Fatalf("%d region event counts for %d regions", len(out.RegionEvents), out.Regions)
	}
	var sum uint64
	for _, n := range out.RegionEvents {
		sum += n
	}
	if sum != out.Events {
		t.Fatalf("region events sum to %d, total %d", sum, out.Events)
	}
	if out.Wall <= 0 || out.EventsPerSec <= 0 {
		t.Fatalf("wall=%v events/s=%v, want both positive", out.Wall, out.EventsPerSec)
	}

	// The discovered fabric must match the sequential referee.
	if out.Result.Devices != seq.Result.Devices ||
		out.Result.Switches != seq.Result.Switches ||
		out.Result.Links != seq.Result.Links {
		t.Fatalf("parallel discovered %d/%d/%d, sequential %d/%d/%d",
			out.Result.Devices, out.Result.Switches, out.Result.Links,
			seq.Result.Devices, seq.Result.Switches, seq.Result.Links)
	}
}

// TestParallelRegionsValidation pins the exclusion rules: the parallel
// path cannot carry per-engine instrumentation or fault injection, and
// NewConfig says so up front.
func TestParallelRegionsValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want string
	}{
		{"negative", []Option{WithParallelRegions(-1)}, "negative region count"},
		{"telemetry", []Option{WithParallelRegions(2), WithTelemetry()}, "telemetry is unsupported"},
		{"spans", []Option{WithParallelRegions(2), WithSpans()}, "span tracing is unsupported"},
		{"loss", []Option{WithParallelRegions(2), WithLoss(0.1)}, "fault injection is unsupported"},
	}
	for _, c := range cases {
		_, err := NewConfig("3x3 mesh", core.Parallel, c.opts...)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %v, want %q", c.name, err, c.want)
		}
	}
	// Sequential region counts stay valid.
	if _, err := NewConfig("3x3 mesh", core.Parallel, WithParallelRegions(1), WithTelemetry()); err != nil {
		t.Fatalf("regions=1 with telemetry rejected: %v", err)
	}
}
