package experiment

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fixtureReport exercises alignment, quoting and notes in one table.
func fixtureReport() Report {
	return Report{
		ID:     "fixture",
		Title:  "Golden fixture",
		Header: []string{"Topology", "Value", "Remark"},
		Rows: [][]string{
			{"3x3 mesh", "0.000123", "plain"},
			{"8x8 torus", "1.5", `quote " and, comma`},
			{"long-name-topology", "2", ""},
		},
		Notes: []string{"first note", "second, with comma"},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestReportRenderGolden(t *testing.T) {
	var b bytes.Buffer
	if err := fixtureReport().Render(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fixture.txt", b.Bytes())
}

func TestReportCSVGolden(t *testing.T) {
	var b bytes.Buffer
	if err := fixtureReport().CSV(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fixture.csv", b.Bytes())
}

func TestReportJSONGolden(t *testing.T) {
	var b bytes.Buffer
	if err := fixtureReport().JSON(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fixture.json", b.Bytes())
}

// A run report must survive an encode/decode round trip intact.
func TestRunReportJSONRoundTrip(t *testing.T) {
	o := RunConfig(MustConfig("3x3 mesh", core.Parallel, WithSeed(1), WithTelemetry()))
	if o.Err != nil {
		t.Fatal(o.Err)
	}
	rr := NewRunReport(o, fixtureReport())
	var b bytes.Buffer
	if err := rr.JSON(&b); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRunReport(&b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rr, back) {
		t.Errorf("round trip drifted:\n got %+v\nwant %+v", back, rr)
	}
	if back.Telemetry == nil {
		t.Fatal("telemetry snapshot lost in round trip")
	}
	if h, ok := back.Telemetry.Histogram(core.MetricFMServicePrefix + "completion"); !ok || h.Count == 0 {
		t.Error("per-phase FM service histogram lost in round trip")
	}
	if _, ok := back.Telemetry.Counter(core.MetricFMRetries); !ok {
		t.Error("retry counter lost in round trip")
	}
}

// A region-sharded run's report carries the v3 regions section and
// survives the round trip.
func TestRunReportRegionsRoundTrip(t *testing.T) {
	o := RunConfig(MustConfig("6x6 mesh", core.Parallel, WithSeed(1), WithParallelRegions(4)))
	if o.Err != nil {
		t.Fatal(o.Err)
	}
	if o.Regions < 2 {
		t.Fatalf("run used %d regions; the sharded path never engaged", o.Regions)
	}
	rr := NewRunReport(o)
	if rr.Schema != RunReportSchema {
		t.Errorf("schema %q", rr.Schema)
	}
	if rr.Regions == nil {
		t.Fatal("sharded run produced no regions section")
	}
	var b bytes.Buffer
	if err := rr.JSON(&b); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRunReport(&b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rr, back) {
		t.Errorf("round trip drifted:\n got %+v\nwant %+v", back, rr)
	}
	if back.Regions.Regions != o.Regions || back.Regions.SyncRounds != o.SyncRounds {
		t.Errorf("regions section lost data: %+v from outcome %d/%d",
			back.Regions, o.Regions, o.SyncRounds)
	}
	var sum uint64
	for _, n := range back.Regions.RegionEvents {
		sum += n
	}
	if sum != o.Events {
		t.Errorf("region event split sums to %d, run processed %d", sum, o.Events)
	}
	// A sequential run must omit the section entirely.
	seq := NewRunReport(RunConfig(MustConfig("3x3 mesh", core.Parallel, WithSeed(1))))
	if seq.Regions != nil {
		t.Errorf("sequential run carries a regions section: %+v", seq.Regions)
	}
}

// Older envelope versions still decode — minus sections they predate.
func TestDecodeRunReportBackCompat(t *testing.T) {
	for _, schema := range []string{RunReportSchemaV1, RunReportSchemaV2} {
		doc := `{"schema":"` + schema + `","error":"x"}`
		if _, err := DecodeRunReport(bytes.NewReader([]byte(doc))); err != nil {
			t.Errorf("plain %s document rejected: %v", schema, err)
		}
	}
	v2spans := `{"schema":"` + RunReportSchemaV2 + `","error":"x","spans":{"spans":null,"dropped":0}}`
	if _, err := DecodeRunReport(bytes.NewReader([]byte(v2spans))); err != nil {
		t.Errorf("v2 document with spans rejected: %v", err)
	}
}

// DecodeRunReport rejects the failure shapes the smoke tool must catch.
func TestDecodeRunReportRejects(t *testing.T) {
	cases := map[string]string{
		"empty object":  `{}`,
		"wrong schema":  `{"schema":"other/v9","error":"x"}`,
		"unknown field": `{"schema":"` + RunReportSchema + `","error":"x","bogus":1}`,
		"ragged row": `{"schema":"` + RunReportSchema + `","reports":[` +
			`{"id":"r","title":"t","header":["a","b"],"rows":[["only"]]}]}`,
		"spans in v1": `{"schema":"` + RunReportSchemaV1 + `","error":"x",` +
			`"spans":{"spans":null,"dropped":0}}`,
		"regions in v1": `{"schema":"` + RunReportSchemaV1 + `","error":"x",` +
			`"regions":{"regions":2}}`,
		"regions in v2": `{"schema":"` + RunReportSchemaV2 + `","error":"x",` +
			`"regions":{"regions":2}}`,
		"zero region count": `{"schema":"` + RunReportSchema + `","error":"x",` +
			`"regions":{"regions":0}}`,
	}
	for name, doc := range cases {
		if _, err := DecodeRunReport(bytes.NewReader([]byte(doc))); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
