package experiment

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fixtureReport exercises alignment, quoting and notes in one table.
func fixtureReport() Report {
	return Report{
		ID:     "fixture",
		Title:  "Golden fixture",
		Header: []string{"Topology", "Value", "Remark"},
		Rows: [][]string{
			{"3x3 mesh", "0.000123", "plain"},
			{"8x8 torus", "1.5", `quote " and, comma`},
			{"long-name-topology", "2", ""},
		},
		Notes: []string{"first note", "second, with comma"},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestReportRenderGolden(t *testing.T) {
	var b bytes.Buffer
	if err := fixtureReport().Render(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fixture.txt", b.Bytes())
}

func TestReportCSVGolden(t *testing.T) {
	var b bytes.Buffer
	if err := fixtureReport().CSV(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fixture.csv", b.Bytes())
}

func TestReportJSONGolden(t *testing.T) {
	var b bytes.Buffer
	if err := fixtureReport().JSON(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fixture.json", b.Bytes())
}

// A run report must survive an encode/decode round trip intact.
func TestRunReportJSONRoundTrip(t *testing.T) {
	o := RunConfig(MustConfig("3x3 mesh", core.Parallel, WithSeed(1), WithTelemetry()))
	if o.Err != nil {
		t.Fatal(o.Err)
	}
	rr := NewRunReport(o, fixtureReport())
	var b bytes.Buffer
	if err := rr.JSON(&b); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRunReport(&b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rr, back) {
		t.Errorf("round trip drifted:\n got %+v\nwant %+v", back, rr)
	}
	if back.Telemetry == nil {
		t.Fatal("telemetry snapshot lost in round trip")
	}
	if h, ok := back.Telemetry.Histogram(core.MetricFMServicePrefix + "completion"); !ok || h.Count == 0 {
		t.Error("per-phase FM service histogram lost in round trip")
	}
	if _, ok := back.Telemetry.Counter(core.MetricFMRetries); !ok {
		t.Error("retry counter lost in round trip")
	}
}

// DecodeRunReport rejects the failure shapes the smoke tool must catch.
func TestDecodeRunReportRejects(t *testing.T) {
	cases := map[string]string{
		"empty object":  `{}`,
		"wrong schema":  `{"schema":"other/v9","error":"x"}`,
		"unknown field": `{"schema":"` + RunReportSchema + `","error":"x","bogus":1}`,
		"ragged row": `{"schema":"` + RunReportSchema + `","reports":[` +
			`{"id":"r","title":"t","header":["a","b"],"rows":[["only"]]}]}`,
	}
	for name, doc := range cases {
		if _, err := DecodeRunReport(bytes.NewReader([]byte(doc))); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
