package experiment

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/span"
	"repro/internal/telemetry"
)

// RunReportSchema identifies the JSON envelope version emitted by the
// CLIs. v2 added the optional spans section, v3 the optional regions
// section; older documents (which predate those sections) still decode.
// Consumers should reject any other schema string.
const (
	RunReportSchema   = "asi-discovery/run-report/v3"
	RunReportSchemaV2 = "asi-discovery/run-report/v2"
	RunReportSchemaV1 = "asi-discovery/run-report/v1"
)

// RegionsReport is the v3 envelope's parallel-simulation section: how
// the conservative region-sharded run actually executed. Regions == 1
// means the sequential path (the section is usually omitted then).
type RegionsReport struct {
	// Regions is the region count the run used after clamping.
	Regions int `json:"regions"`
	// RegionEvents is the per-region processed-event split.
	RegionEvents []uint64 `json:"region_events,omitempty"`
	// SyncRounds counts conservative barrier rounds; LookaheadStalls the
	// region-rounds with work held back by the link-latency lookahead.
	SyncRounds      uint64 `json:"sync_rounds,omitempty"`
	LookaheadStalls uint64 `json:"lookahead_stalls,omitempty"`
	// WallMS is the run's wall-clock duration in milliseconds.
	WallMS float64 `json:"wall_ms,omitempty"`
}

// RunReport is the machine-readable envelope for simulation output: run
// identification, the measured discovery, any rendered report tables,
// and — when the run collected it — the full telemetry snapshot. It is
// what `asidisc -json` and `asibench -json` emit, and it round-trips
// through encoding/json losslessly (modulo unexported state, of which
// the fields carry none).
type RunReport struct {
	Schema string `json:"schema"`
	// Topology, Algorithm, Seed and Change identify the run.
	Topology  string `json:"topology,omitempty"`
	Algorithm string `json:"algorithm,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	Change    string `json:"change,omitempty"`
	// PhysicalNodes and ActiveNodes are the paper's two x-axes.
	PhysicalNodes int `json:"physical_nodes,omitempty"`
	ActiveNodes   int `json:"active_nodes,omitempty"`
	// Result is the measured discovery (absent for report-only output).
	Result *core.Result `json:"result,omitempty"`
	// Error reports a failed run.
	Error string `json:"error,omitempty"`
	// Reports carries rendered experiment tables.
	Reports []Report `json:"reports,omitempty"`
	// Telemetry is the run's metric snapshot when collection was enabled.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
	// Spans is the run's causal span log when span tracing was enabled
	// (v2+; a v1 document carrying spans is rejected).
	Spans *span.Log `json:"spans,omitempty"`
	// Regions describes the parallel-simulation execution when the run
	// was region-sharded (v3 only; older documents carrying it are
	// rejected).
	Regions *RegionsReport `json:"regions,omitempty"`
	// Events counts processed simulation events; EventsPerSec is the
	// simulator's wall-clock throughput where the caller measured one.
	Events       uint64  `json:"events,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// NewRunReport packages one run outcome for machine consumption.
func NewRunReport(o Outcome, reports ...Report) RunReport {
	rr := RunReport{
		Schema:        RunReportSchema,
		Topology:      o.Config.Topology,
		Algorithm:     o.Config.Algorithm.String(),
		Seed:          o.Config.Seed,
		Change:        o.Config.Change.String(),
		PhysicalNodes: o.PhysicalNodes,
		ActiveNodes:   o.ActiveNodes,
		Reports:       reports,
		Telemetry:     o.Telemetry,
		Spans:         o.Spans,
		Events:        o.Events,
	}
	if o.Regions > 1 {
		rr.Regions = &RegionsReport{
			Regions:         o.Regions,
			RegionEvents:    o.RegionEvents,
			SyncRounds:      o.SyncRounds,
			LookaheadStalls: o.LookaheadStalls,
			WallMS:          float64(o.Wall.Microseconds()) / 1000,
		}
	}
	if o.Err != nil {
		rr.Error = o.Err.Error()
	} else {
		res := o.Result
		rr.Result = &res
	}
	return rr
}

// NewReportsJSON packages report tables alone (asibench experiment mode).
func NewReportsJSON(reports []Report) RunReport {
	return RunReport{Schema: RunReportSchema, Reports: reports}
}

// JSON writes the envelope as indented JSON.
func (rr RunReport) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rr)
}

// DecodeRunReport parses and sanity-checks one envelope, the validation
// used by the `reportjson` smoke tool and by tests.
func DecodeRunReport(r io.Reader) (RunReport, error) {
	var rr RunReport
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rr); err != nil {
		return RunReport{}, fmt.Errorf("experiment: decoding run report: %w", err)
	}
	switch rr.Schema {
	case RunReportSchema:
	case RunReportSchemaV2, RunReportSchemaV1:
		if rr.Spans != nil && rr.Schema == RunReportSchemaV1 {
			return RunReport{}, fmt.Errorf("experiment: run report schema %q carries spans, which require %q or later",
				RunReportSchemaV1, RunReportSchemaV2)
		}
		if rr.Regions != nil {
			return RunReport{}, fmt.Errorf("experiment: run report schema %q carries a regions section, which requires %q",
				rr.Schema, RunReportSchema)
		}
	default:
		return RunReport{}, fmt.Errorf("experiment: run report schema %q, want %q", rr.Schema, RunReportSchema)
	}
	if rr.Regions != nil && rr.Regions.Regions < 1 {
		return RunReport{}, fmt.Errorf("experiment: run report regions section with region count %d", rr.Regions.Regions)
	}
	if rr.Result == nil && rr.Error == "" && len(rr.Reports) == 0 {
		return RunReport{}, fmt.Errorf("experiment: run report carries no result, error or reports")
	}
	if rr.Spans != nil {
		if err := span.Validate(*rr.Spans); err != nil {
			return RunReport{}, fmt.Errorf("experiment: run report spans: %w", err)
		}
	}
	for _, rep := range rr.Reports {
		for i, row := range rep.Rows {
			if len(row) != len(rep.Header) {
				return RunReport{}, fmt.Errorf("experiment: report %q row %d has %d cells, header has %d",
					rep.ID, i, len(row), len(rep.Header))
			}
		}
	}
	return rr, nil
}

// JSON writes one report table as indented JSON.
func (r Report) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
