package experiment

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/span"
)

// TestSpanLifecycleInvariants runs every paper algorithm over a clean and
// a lossy fabric and checks the causal span log's structural guarantees:
// every begun span ended exactly once with a terminal status, parents
// always reference earlier spans, attempts and per-hop spans hang off
// request spans, retries nest under the original request (not under the
// prior attempt), and failed requests end in an error status.
func TestSpanLifecycleInvariants(t *testing.T) {
	for _, k := range core.PaperKinds() {
		for _, lossy := range []bool{false, true} {
			name := fmt.Sprintf("%v/lossy=%v", k, lossy)
			t.Run(name, func(t *testing.T) {
				opts := []Option{WithSeed(1), WithSpans()}
				if lossy {
					opts = append(opts, WithLoss(0.05), WithRetries(3, 0))
				}
				cfg := MustConfig("4x4 mesh", k, opts...)
				out := RunConfig(cfg)
				if out.Err != nil {
					// A lossy run may legitimately give up on some writes;
					// the span log must still close cleanly around that.
					if !lossy {
						t.Fatalf("run failed: %v", out.Err)
					}
					t.Logf("lossy run failed as permitted: %v", out.Err)
				}
				if out.Spans == nil {
					t.Fatal("traced run carries no span log")
				}
				l := *out.Spans
				if err := span.Validate(l); err != nil {
					t.Fatalf("span log invalid: %v", err)
				}
				if l.Dropped != 0 {
					t.Errorf("span log dropped %d spans", l.Dropped)
				}
				checkSpanStructure(t, l, out)
				if _, err := span.Analyze(l); err != nil {
					t.Errorf("Analyze rejected a valid log: %v", err)
				}
			})
		}
	}
}

// checkSpanStructure verifies the parent-kind topology and terminal
// statuses of one run's span log.
func checkSpanStructure(t *testing.T, l span.Log, out Outcome) {
	t.Helper()
	byID := make(map[span.ID]span.Span, len(l.Spans))
	for _, s := range l.Spans {
		byID[s.ID] = s
	}
	attemptsOf := make(map[span.ID][]span.Span)
	for _, s := range l.Spans {
		parent, hasParent := byID[s.Parent]
		switch s.Kind {
		case span.KindRun:
			if s.Parent != 0 {
				t.Errorf("span #%d: run span has parent #%d", s.ID, s.Parent)
			}
		case span.KindRequest:
			if !hasParent || parent.Kind != span.KindRun {
				t.Errorf("span #%d: request parent #%d is not a run span", s.ID, s.Parent)
			}
			switch s.Status {
			case span.StatusOK, span.StatusTimeout, span.StatusGaveUp,
				span.StatusError, span.StatusCanceled:
			default:
				t.Errorf("span #%d: request ended with non-terminal status %v", s.ID, s.Status)
			}
		case span.KindAttempt:
			if !hasParent || parent.Kind != span.KindRequest {
				t.Errorf("span #%d: attempt parent #%d is not a request span (retries must nest under the original request)",
					s.ID, s.Parent)
			}
			attemptsOf[s.Parent] = append(attemptsOf[s.Parent], s)
		case span.KindBackoff, span.KindFMQueue, span.KindFMService,
			span.KindLinkQueue, span.KindWire, span.KindDevQueue,
			span.KindDevService, span.KindStall, span.KindFaultDelay,
			span.KindDrop:
			// FM-work spans parent to the enabling request when one exists,
			// else to the run; per-hop spans always parent to a request.
			ok := hasParent && (parent.Kind == span.KindRequest || parent.Kind == span.KindRun)
			if s.Kind != span.KindFMQueue && s.Kind != span.KindFMService {
				ok = hasParent && parent.Kind == span.KindRequest
			}
			if !ok {
				t.Errorf("span #%d (%v): parent #%d has wrong kind", s.ID, s.Kind, s.Parent)
			}
		}
		if hasParent && s.Start < parent.Start {
			t.Errorf("span #%d starts at %v before its parent #%d (%v)", s.ID, s.Start, parent.ID, parent.Start)
		}
	}

	// Attempt numbering: each request's attempts count 0, 1, 2, ... in
	// span-ID (issue) order, so a retry's span always follows the original
	// attempt under the same request parent.
	retried := 0
	for req, atts := range attemptsOf {
		for i, a := range atts {
			if a.Attempt != i {
				t.Errorf("request #%d attempt %d numbered %d", req, i, a.Attempt)
			}
			if i > 0 {
				retried++
				if prev := atts[i-1]; prev.Status == span.StatusOpen {
					t.Errorf("request #%d: attempt %d issued while attempt %d still open", req, i, i-1)
				}
			}
		}
	}
	totalRetries := out.Initial.Retries + out.Result.Retries
	if totalRetries > 0 && retried == 0 {
		t.Errorf("run counted %d retries but the log has no attempt > 0", totalRetries)
	}
	totalGaveUp := out.Initial.GaveUp + out.Result.GaveUp
	if totalGaveUp > 0 {
		gaveUp := 0
		for _, s := range l.Spans {
			if s.Kind == span.KindRequest && s.Status == span.StatusGaveUp {
				gaveUp++
			}
		}
		if gaveUp == 0 {
			t.Errorf("run counted %d give-ups but no request span ended gave-up", totalGaveUp)
		}
	}
}
