package asi

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Payload is the decoded body of an ASI packet. Concrete types: PI4, PI5,
// Election, and AppData.
type Payload interface {
	// WireSize is the encoded payload length in bytes.
	WireSize() int
	// ProtocolInterface is the PI value that selects this payload type.
	ProtocolInterface() PI
}

// ProtocolInterface implements Payload.
func (p PI4) ProtocolInterface() PI { return PI4DeviceManagement }

// ProtocolInterface implements Payload.
func (p PI5) ProtocolInterface() PI { return PI5EventReporting }

// PIElection is the protocol interface the model assigns to fabric-manager
// election traffic. The ASI spec runs election as part of fabric
// initialization over a reserved management PI; the exact code is not
// material to the paper.
const PIElection PI = 3

// Election is the payload of a fabric-manager election packet. Candidates
// flood announcements carrying their priority and DSN; the
// highest (priority, DSN) pair wins primary, the runner-up becomes
// secondary (paper section 2: "a distributed process is triggered in order
// to select primary and secondary fabric managers").
type Election struct {
	Priority  uint8
	Candidate DSN
	// TTL bounds flooding; decremented per switch hop.
	TTL uint8
	// Sequence numbers successive election rounds.
	Sequence uint32
}

const electionSize = 14

// ProtocolInterface implements Payload.
func (p Election) ProtocolInterface() PI { return PIElection }

// WireSize implements Payload.
func (p Election) WireSize() int { return electionSize }

// String summarizes the announcement.
func (p Election) String() string {
	return fmt.Sprintf("elect{prio=%d cand=%s ttl=%d seq=%d}", p.Priority, p.Candidate, p.TTL, p.Sequence)
}

// EncodeElection serializes p: prio(1) dsn(8) ttl(1) seq(4).
func EncodeElection(p Election) []byte {
	b := make([]byte, electionSize)
	b[0] = p.Priority
	binary.BigEndian.PutUint64(b[1:9], uint64(p.Candidate))
	b[9] = p.TTL
	binary.BigEndian.PutUint32(b[10:14], p.Sequence)
	return b
}

// DecodeElection parses an election payload.
func DecodeElection(b []byte) (Election, error) {
	var p Election
	if len(b) < electionSize {
		return p, fmt.Errorf("asi: election payload too short: %d bytes", len(b))
	}
	p.Priority = b[0]
	p.Candidate = DSN(binary.BigEndian.Uint64(b[1:9]))
	p.TTL = b[9]
	p.Sequence = binary.BigEndian.Uint32(b[10:14])
	return p, nil
}

// AppData models encapsulated application traffic of a given size; only
// its length matters to the fabric.
type AppData struct {
	Bytes int
}

// ProtocolInterface implements Payload.
func (p AppData) ProtocolInterface() PI { return PIApplication }

// WireSize implements Payload.
func (p AppData) WireSize() int { return p.Bytes }

// Packet is a complete ASI packet: routing header plus typed payload. The
// fabric model moves *Packet values between devices and mutates only the
// header's turn pointer in flight, exactly as switch hardware would.
type Packet struct {
	Header  RouteHeader
	Payload Payload
	// Span is the causal-trace request ID riding with the packet (zero
	// when tracing is off). It is simulator metadata, not an on-the-wire
	// field: Encode/Decode ignore it, Clone carries it, and devices copy
	// it from a PI-4 request into the completion so the return trip is
	// attributed to the same request span.
	Span uint64
}

// packetTrailerSize is the link-layer CRC appended to every packet.
const packetTrailerSize = 4

// WireSize is the total on-the-wire size of the packet in bytes: header,
// payload, and link CRC. Byte counters in the management-overhead
// measurements use this.
func (p *Packet) WireSize() int {
	n := HeaderWireSize + packetTrailerSize
	if p.Payload != nil {
		n += p.Payload.WireSize()
	}
	return n
}

// Encode serializes the full packet, including the link-layer CRC-32 over
// header and payload.
func (p *Packet) Encode() ([]byte, error) {
	var body []byte
	var err error
	switch pl := p.Payload.(type) {
	case PI4:
		body, err = EncodePI4(pl)
		if err != nil {
			return nil, err
		}
	case PI5:
		body = EncodePI5(pl)
	case Election:
		body = EncodeElection(pl)
	case FMSync:
		body = EncodeFMSync(pl)
	case Heartbeat:
		body = EncodeHeartbeat(pl)
	case AppData:
		body = make([]byte, pl.Bytes)
	case nil:
	default:
		return nil, fmt.Errorf("asi: cannot encode payload type %T", p.Payload)
	}
	hdr := p.Header
	hdr.PI = p.Payload.ProtocolInterface()
	out := append(EncodeHeader(hdr), body...)
	crc := crc32.ChecksumIEEE(out)
	var tr [packetTrailerSize]byte
	binary.BigEndian.PutUint32(tr[:], crc)
	return append(out, tr[:]...), nil
}

// Decode parses a full packet produced by Encode, verifying both CRCs and
// dispatching the payload on the header's PI field.
func Decode(b []byte) (*Packet, error) {
	if len(b) < HeaderWireSize+packetTrailerSize {
		return nil, fmt.Errorf("asi: packet too short: %d bytes", len(b))
	}
	body := b[:len(b)-packetTrailerSize]
	want := binary.BigEndian.Uint32(b[len(b)-packetTrailerSize:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("asi: packet CRC mismatch: computed %#08x, trailer says %#08x", got, want)
	}
	hdr, err := DecodeHeader(body[:HeaderWireSize])
	if err != nil {
		return nil, err
	}
	pkt := &Packet{Header: hdr}
	rest := body[HeaderWireSize:]
	switch hdr.PI {
	case PI4DeviceManagement:
		pl, err := DecodePI4(rest)
		if err != nil {
			return nil, err
		}
		pkt.Payload = pl
	case PI5EventReporting:
		pl, err := DecodePI5(rest)
		if err != nil {
			return nil, err
		}
		pkt.Payload = pl
	case PIElection:
		pl, err := DecodeElection(rest)
		if err != nil {
			return nil, err
		}
		pkt.Payload = pl
	case PIFMSync:
		pl, err := DecodeFMSync(rest)
		if err != nil {
			return nil, err
		}
		pkt.Payload = pl
	case PIHeartbeat:
		pl, err := DecodeHeartbeat(rest)
		if err != nil {
			return nil, err
		}
		pkt.Payload = pl
	case PIApplication:
		pkt.Payload = AppData{Bytes: len(rest)}
	default:
		return nil, fmt.Errorf("asi: unknown protocol interface %d", hdr.PI)
	}
	return pkt, nil
}

// Clone returns a deep copy of the packet; the fabric uses it when a
// flooded packet must leave through several ports with independent
// headers.
func (p *Packet) Clone() *Packet {
	c := *p
	if pl, ok := p.Payload.(PI4); ok && pl.Data != nil {
		d := make([]uint32, len(pl.Data))
		copy(d, pl.Data)
		pl.Data = d
		c.Payload = pl
	}
	return &c
}
