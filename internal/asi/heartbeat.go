package asi

import (
	"encoding/binary"
	"fmt"
)

// PIHeartbeat is the protocol interface for fabric-manager liveness
// heartbeats. The specification requires that "if the primary FM fails,
// the secondary one takes over" (fabric management failover); the
// heartbeat stream is how the secondary learns the primary died.
const PIHeartbeat PI = 2

// Heartbeat is a primary-FM liveness beacon sent to the secondary.
type Heartbeat struct {
	From DSN
	Seq  uint32
}

const heartbeatSize = 12

// ProtocolInterface implements Payload.
func (p Heartbeat) ProtocolInterface() PI { return PIHeartbeat }

// WireSize implements Payload.
func (p Heartbeat) WireSize() int { return heartbeatSize }

// String summarizes the beacon.
func (p Heartbeat) String() string {
	return fmt.Sprintf("heartbeat{from=%s seq=%d}", p.From, p.Seq)
}

// EncodeHeartbeat serializes p: dsn(8) seq(4).
func EncodeHeartbeat(p Heartbeat) []byte {
	b := make([]byte, heartbeatSize)
	binary.BigEndian.PutUint64(b[0:8], uint64(p.From))
	binary.BigEndian.PutUint32(b[8:12], p.Seq)
	return b
}

// DecodeHeartbeat parses a beacon.
func DecodeHeartbeat(b []byte) (Heartbeat, error) {
	var p Heartbeat
	if len(b) < heartbeatSize {
		return p, fmt.Errorf("asi: heartbeat payload too short: %d bytes", len(b))
	}
	p.From = DSN(binary.BigEndian.Uint64(b[0:8]))
	p.Seq = binary.BigEndian.Uint32(b[8:12])
	return p, nil
}
