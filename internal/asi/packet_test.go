package asi

import (
	"testing"
	"testing/quick"
)

func TestPacketEncodeDecodePI4(t *testing.T) {
	p := &Packet{
		Header: RouteHeader{TurnPool: 0xbeef, TurnPointer: 12, TC: TCManagement},
		Payload: PI4{
			Op: PI4ReadCompletionData, Tag: 4, Offset: 6, Count: 2,
			Data: []uint32{10, 20},
		},
	}
	b, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != p.WireSize() {
		t.Errorf("encoded %d bytes, WireSize says %d", len(b), p.WireSize())
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.TurnPool != p.Header.TurnPool || got.Header.PI != PI4DeviceManagement {
		t.Errorf("header mismatch: %+v", got.Header)
	}
	pl, ok := got.Payload.(PI4)
	if !ok {
		t.Fatalf("payload type %T", got.Payload)
	}
	if pl.Tag != 4 || len(pl.Data) != 2 || pl.Data[1] != 20 {
		t.Errorf("payload mismatch: %+v", pl)
	}
}

func TestPacketEncodeDecodeAllPayloadTypes(t *testing.T) {
	payloads := []Payload{
		PI4{Op: PI4ReadRequest, Tag: 1, Count: 6},
		PI5{Code: PI5PortUp, Port: 3, Reporter: 99, Sequence: 1},
		Election{Priority: 2, Candidate: 7, TTL: 16, Sequence: 1},
		AppData{Bytes: 64},
	}
	for _, pl := range payloads {
		p := &Packet{Header: RouteHeader{TurnPointer: 8}, Payload: pl}
		b, err := p.Encode()
		if err != nil {
			t.Fatalf("%T: %v", pl, err)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("%T: decode: %v", pl, err)
		}
		if got.Header.PI != pl.ProtocolInterface() {
			t.Errorf("%T: PI %d, want %d", pl, got.Header.PI, pl.ProtocolInterface())
		}
	}
}

func TestPacketCRCDetectsCorruption(t *testing.T) {
	p := &Packet{Header: RouteHeader{}, Payload: PI5{Code: PI5PortUp, Reporter: 1}}
	b, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b[HeaderWireSize] ^= 0xff // flip payload byte
	if _, err := Decode(b); err == nil {
		t.Error("corrupted payload accepted")
	}
}

func TestPacketDecodeRejectsUnknownPI(t *testing.T) {
	p := &Packet{Header: RouteHeader{}, Payload: AppData{Bytes: 4}}
	b, _ := p.Encode()
	// Forge a bogus PI and fix both CRCs by re-encoding the header.
	hdr, _ := DecodeHeader(b[:HeaderWireSize])
	hdr.PI = 99
	// Packet-level CRC will no longer match, so expect an error either way.
	copy(b, EncodeHeader(hdr))
	if _, err := Decode(b); err == nil {
		t.Error("unknown PI accepted")
	}
}

func TestPacketDecodeShort(t *testing.T) {
	if _, err := Decode(make([]byte, 3)); err == nil {
		t.Error("short packet accepted")
	}
}

func TestPacketWireSizesMatchPaperScale(t *testing.T) {
	// A general-information read request must be a few tens of bytes and
	// its completion with six blocks somewhat larger; byte accounting in
	// the experiments relies on these magnitudes.
	req := &Packet{Payload: PI4{Op: PI4ReadRequest, Count: GeneralInfoBlocks}}
	resp := &Packet{Payload: PI4{Op: PI4ReadCompletionData, Data: make([]uint32, GeneralInfoBlocks)}}
	if req.WireSize() <= HeaderWireSize || req.WireSize() > 64 {
		t.Errorf("request wire size %d implausible", req.WireSize())
	}
	if resp.WireSize() <= req.WireSize() {
		t.Errorf("completion (%dB) not larger than request (%dB)", resp.WireSize(), req.WireSize())
	}
}

func TestPacketCloneIsDeep(t *testing.T) {
	p := &Packet{
		Header:  RouteHeader{TurnPool: 5},
		Payload: PI4{Op: PI4ReadCompletionData, Data: []uint32{1, 2}},
	}
	c := p.Clone()
	c.Header.TurnPool = 9
	cp := c.Payload.(PI4)
	cp.Data[0] = 42
	if p.Header.TurnPool != 5 {
		t.Error("clone shares header")
	}
	if p.Payload.(PI4).Data[0] != 1 {
		t.Error("clone shares PI-4 data slice")
	}
}

func TestPacketRoundTripProperty(t *testing.T) {
	f := func(pool uint64, ptr uint8, tag uint32, offset uint16, nData uint8) bool {
		n := int(nData % (MaxReadBlocks + 1))
		data := make([]uint32, n)
		for i := range data {
			data[i] = uint32(i) * 7
		}
		p := &Packet{
			Header: RouteHeader{TurnPool: pool, TurnPointer: ptr % (TurnPoolBits + 1), TC: TCManagement},
			Payload: PI4{
				Op: PI4ReadCompletionData, Tag: tag, Offset: offset,
				Count: uint8(n)%MaxReadBlocks + 1, Data: data,
			},
		}
		b, err := p.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(b)
		if err != nil {
			return false
		}
		gp := got.Payload.(PI4)
		return got.Header.TurnPool == p.Header.TurnPool && gp.Tag == tag && len(gp.Data) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
