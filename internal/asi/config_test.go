package asi

import (
	"testing"
	"testing/quick"
)

func mustConfig(t *testing.T, typ DeviceType, dsn DSN, ports int, fm bool) *ConfigSpace {
	t.Helper()
	c, err := NewConfigSpace(typ, dsn, ports, 2176, fm)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigGeneralInfoRoundTrip(t *testing.T) {
	c := mustConfig(t, DeviceSwitch, 0xdeadbeef12345678, 16, false)
	blocks, err := c.Read(GeneralInfoOffset, GeneralInfoBlocks)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ParseGeneralInfo(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if g.Type != DeviceSwitch || g.Ports != 16 || g.DSN != 0xdeadbeef12345678 ||
		g.MaxPacket != 2176 || g.FMCapable || !g.Multicast {
		t.Errorf("general info mismatch: %+v", g)
	}
}

func TestConfigEndpointGeneralInfo(t *testing.T) {
	c := mustConfig(t, DeviceEndpoint, 7, 1, true)
	blocks, _ := c.Read(GeneralInfoOffset, GeneralInfoBlocks)
	g, err := ParseGeneralInfo(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if g.Type != DeviceEndpoint || g.Ports != 1 || !g.FMCapable || g.Multicast {
		t.Errorf("general info mismatch: %+v", g)
	}
}

func TestConfigPortStateRoundTrip(t *testing.T) {
	c := mustConfig(t, DeviceSwitch, 1, 16, false)
	want := PortInfo{Active: true, SpeedGbps: 2.0, Width: 1}
	if err := c.SetPortState(5, want); err != nil {
		t.Fatal(err)
	}
	blocks, err := c.Read(PortInfoOffset(5), PortInfoBlocks)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParsePortInfo(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("port info = %+v, want %+v", got, want)
	}
	// Other ports remain inactive.
	blocks, _ = c.Read(PortInfoOffset(6), PortInfoBlocks)
	if got, _ := ParsePortInfo(blocks); got.Active {
		t.Error("unset port reads active")
	}
}

func TestConfigPortStateRoundTripProperty(t *testing.T) {
	f := func(port uint8, active bool, width uint8) bool {
		c, err := NewConfigSpace(DeviceSwitch, 1, 16, 2176, false)
		if err != nil {
			return false
		}
		p := int(port % 16)
		want := PortInfo{Active: active, SpeedGbps: 2.0, Width: int(width%4) + 1}
		if err := c.SetPortState(p, want); err != nil {
			return false
		}
		blocks, err := c.Read(PortInfoOffset(p), PortInfoBlocks)
		if err != nil {
			return false
		}
		got, err := ParsePortInfo(blocks)
		return err == nil && got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConfigReadBounds(t *testing.T) {
	c := mustConfig(t, DeviceEndpoint, 1, 1, false)
	if _, err := c.Read(0, 0); err == nil {
		t.Error("zero-count read accepted")
	}
	if _, err := c.Read(0, MaxReadBlocks+1); err == nil {
		t.Error("oversize read accepted")
	}
	if _, err := c.Read(uint16(c.NumBlocks()), 1); err == nil {
		t.Error("out-of-range read accepted")
	}
	// Read of the final blocks succeeds.
	if _, err := c.Read(uint16(c.NumBlocks()-1), 1); err != nil {
		t.Errorf("final-block read failed: %v", err)
	}
}

func TestConfigWriteOnlyEventRouteRegion(t *testing.T) {
	c := mustConfig(t, DeviceSwitch, 1, 4, false)
	off := EventRouteOffset(4)
	route := EncodeEventRoute(0xabcdef, 24)
	if err := c.Write(off, route); err != nil {
		t.Fatalf("event-route write failed: %v", err)
	}
	blocks, err := c.Read(off, EventRouteBlocks)
	if err != nil {
		t.Fatal(err)
	}
	pool, ptr, valid := DecodeEventRoute(blocks)
	if !valid || pool != 0xabcdef || ptr != 24 {
		t.Errorf("event route = (%#x,%d,%v)", pool, ptr, valid)
	}
	// General info and port info are read-only.
	if err := c.Write(0, []uint32{1}); err == nil {
		t.Error("write to general info accepted")
	}
	if err := c.Write(PortInfoOffset(0), []uint32{1}); err == nil {
		t.Error("write to port info accepted")
	}
	if err := c.Write(off, nil); err == nil {
		t.Error("empty write accepted")
	}
	if err := c.Write(uint16(c.NumBlocks()-1), route); err == nil {
		t.Error("write past capability end accepted")
	}
	// The owner region after the event route is writable too.
	if err := c.Write(OwnerOffset(4), []uint32{1, 2}); err != nil {
		t.Errorf("owner-region write failed: %v", err)
	}
}

func TestEventRouteInvalidUntilWritten(t *testing.T) {
	c := mustConfig(t, DeviceEndpoint, 1, 1, false)
	blocks, err := c.Read(EventRouteOffset(1), EventRouteBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, valid := DecodeEventRoute(blocks); valid {
		t.Error("unwritten event route reads valid")
	}
	if _, _, valid := DecodeEventRoute(nil); valid {
		t.Error("nil event route reads valid")
	}
}

func TestEventRouteRoundTripProperty(t *testing.T) {
	f := func(pool uint64, ptr uint8) bool {
		p, q, valid := DecodeEventRoute(EncodeEventRoute(pool, ptr%(TurnPoolBits+1)))
		return valid && p == pool && q == ptr%(TurnPoolBits+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewConfigSpaceValidation(t *testing.T) {
	cases := []struct {
		typ   DeviceType
		ports int
	}{
		{DeviceSwitch, 1},
		{DeviceSwitch, MaxSwitchPorts + 1},
		{DeviceEndpoint, 0},
		{DeviceEndpoint, MaxEndpointPorts + 1},
		{DeviceType(0), 4},
	}
	for _, c := range cases {
		if _, err := NewConfigSpace(c.typ, 1, c.ports, 2176, false); err == nil {
			t.Errorf("NewConfigSpace(%v, ports=%d) accepted", c.typ, c.ports)
		}
	}
}

func TestSetPortStateBounds(t *testing.T) {
	c := mustConfig(t, DeviceSwitch, 1, 4, false)
	if err := c.SetPortState(-1, PortInfo{}); err == nil {
		t.Error("negative port accepted")
	}
	if err := c.SetPortState(4, PortInfo{}); err == nil {
		t.Error("out-of-range port accepted")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := ParseGeneralInfo(nil); err == nil {
		t.Error("nil general info accepted")
	}
	if _, err := ParseGeneralInfo(make([]uint32, GeneralInfoBlocks)); err == nil {
		t.Error("zeroed general info accepted (invalid type)")
	}
	bad := []uint32{uint32(DeviceSwitch)<<24 | 99<<16 | 4, 0, 0, 0, 0, 0}
	if _, err := ParseGeneralInfo(bad); err == nil {
		t.Error("wrong capability version accepted")
	}
	if _, err := ParsePortInfo(nil); err == nil {
		t.Error("nil port info accepted")
	}
}

func TestDefaultTCtoVCMapsManagementHighest(t *testing.T) {
	m := DefaultTCtoVC()
	if m[TCManagement] != 2 {
		t.Errorf("management TC maps to VC %d, want 2", m[TCManagement])
	}
	for tc := TrafficClass(0); tc <= 6; tc++ {
		if m[tc] != VCBulk {
			t.Errorf("bulk TC%d maps to VC %d, want %d", tc, m[tc], VCBulk)
		}
	}
	if KindOfVC(VCBulk) != BVC || KindOfVC(VCMulticast) != MVC || KindOfVC(VCManagement) != OVC {
		t.Error("VC kinds wrong")
	}
}
