package asi

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPI4RoundTrip(t *testing.T) {
	cases := []PI4{
		{Op: PI4ReadRequest, Tag: 1, Offset: 0, Count: 6},
		{Op: PI4ReadCompletionData, Tag: 1, Offset: 0, Count: 6, ArrivalPort: 11, Data: []uint32{1, 2, 3, 4, 5, 6}},
		{Op: PI4ReadCompletionError, Tag: 9, Offset: 100, Count: 2, ArrivalPort: 3},
		{Op: PI4WriteRequest, Tag: 3, Offset: 38, Data: []uint32{0xdead, 0xbeef, 0x80000010}},
		{Op: PI4WriteCompletion, Tag: 3},
	}
	for _, c := range cases {
		b, err := EncodePI4(c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if len(b) != c.WireSize() {
			t.Errorf("%v: encoded %d bytes, WireSize says %d", c, len(b), c.WireSize())
		}
		got, err := DecodePI4(b)
		if err != nil {
			t.Fatalf("%v: decode: %v", c, err)
		}
		if got.Op != c.Op || got.Tag != c.Tag || got.Offset != c.Offset ||
			got.Count != c.Count || got.ArrivalPort != c.ArrivalPort {
			t.Errorf("round trip changed fields: got %+v want %+v", got, c)
		}
		if len(got.Data) != len(c.Data) {
			t.Fatalf("round trip changed data length: got %d want %d", len(got.Data), len(c.Data))
		}
		for i := range c.Data {
			if got.Data[i] != c.Data[i] {
				t.Errorf("data[%d] = %#x, want %#x", i, got.Data[i], c.Data[i])
			}
		}
	}
}

func TestPI4RoundTripProperty(t *testing.T) {
	f := func(op uint8, tag uint32, offset uint16, count uint8, arrival uint8, data []uint32) bool {
		if len(data) > MaxReadBlocks {
			data = data[:MaxReadBlocks]
		}
		p := PI4{
			Op:          PI4Op(op%6) + 1,
			Tag:         tag,
			Offset:      offset,
			Count:       count%MaxReadBlocks + 1,
			ArrivalPort: arrival,
			Data:        data,
		}
		b, err := EncodePI4(p)
		if err != nil {
			return false
		}
		got, err := DecodePI4(b)
		if err != nil || got.Op != p.Op || got.Tag != p.Tag || got.Offset != p.Offset ||
			got.Count != p.Count || got.ArrivalPort != p.ArrivalPort || len(got.Data) != len(p.Data) {
			return false
		}
		for i := range p.Data {
			if got.Data[i] != p.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPI4EncodeRejectsInvalid(t *testing.T) {
	if _, err := EncodePI4(PI4{Op: PI4ReadCompletionData, Data: make([]uint32, MaxReadBlocks+1)}); err == nil {
		t.Error("oversize data accepted")
	}
	if _, err := EncodePI4(PI4{Op: PI4ReadRequest, Count: 0}); err == nil {
		t.Error("zero-count read request accepted")
	}
	if _, err := EncodePI4(PI4{Op: PI4ReadRequest, Count: MaxReadBlocks + 1}); err == nil {
		t.Error("oversize read request accepted")
	}
}

func TestPI4DecodeRejectsMalformed(t *testing.T) {
	if _, err := DecodePI4(make([]byte, pi4FixedSize-1)); err == nil {
		t.Error("short payload accepted")
	}
	b, _ := EncodePI4(PI4{Op: PI4ReadRequest, Count: 1})
	b[9] = MaxReadBlocks + 1
	if _, err := DecodePI4(b); err == nil {
		t.Error("over-declared block count accepted")
	}
	b[9] = 4 // declares 4 blocks but buffer has none
	if _, err := DecodePI4(b); err == nil {
		t.Error("truncated data accepted")
	}
}

func TestPI4OpClassification(t *testing.T) {
	if PI4ReadRequest.IsCompletion() || PI4WriteRequest.IsCompletion() {
		t.Error("request classified as completion")
	}
	for _, op := range []PI4Op{PI4ReadCompletionData, PI4ReadCompletionError, PI4WriteCompletion, PI4WriteCompletionError} {
		if !op.IsCompletion() {
			t.Errorf("%v not classified as completion", op)
		}
	}
}

func TestPI5RoundTrip(t *testing.T) {
	p := PI5{Code: PI5PortDown, Port: 13, Reporter: 0xfeedface, Sequence: 77}
	got, err := DecodePI5(EncodePI5(p))
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Errorf("round trip changed payload: got %+v want %+v", got, p)
	}
	if p.WireSize() != pi5Size {
		t.Errorf("WireSize = %d, want %d", p.WireSize(), pi5Size)
	}
}

func TestPI5RoundTripProperty(t *testing.T) {
	f := func(code uint8, port uint8, dsn uint64, seq uint32) bool {
		p := PI5{Code: PI5EventCode(code%2) + 1, Port: port, Reporter: DSN(dsn), Sequence: seq}
		got, err := DecodePI5(EncodePI5(p))
		return err == nil && got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPI5DecodeShort(t *testing.T) {
	if _, err := DecodePI5(make([]byte, pi5Size-1)); err == nil {
		t.Error("short PI-5 payload accepted")
	}
}

func TestElectionRoundTrip(t *testing.T) {
	p := Election{Priority: 9, Candidate: 0xabc, TTL: 31, Sequence: 5}
	got, err := DecodeElection(EncodeElection(p))
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Errorf("round trip changed payload: got %+v want %+v", got, p)
	}
	if _, err := DecodeElection(nil); err == nil {
		t.Error("nil election payload accepted")
	}
}

func TestStringerCoverage(t *testing.T) {
	for _, s := range []string{
		DeviceSwitch.String(), DeviceEndpoint.String(), DeviceType(99).String(),
		BVC.String(), OVC.String(), MVC.String(), VCKind(9).String(),
		PI4ReadRequest.String(), PI4Op(99).String(),
		PI5PortUp.String(), PI5PortDown.String(), PI5EventCode(9).String(),
		PI4{}.String(), PI5{}.String(), Election{}.String(), DSN(1).String(),
	} {
		if s == "" {
			t.Error("empty Stringer output")
		}
	}
	if !strings.Contains(PI4{Op: PI4ReadRequest}.String(), "read-request") {
		t.Error("PI4 String misses op name")
	}
}
