package asi

import (
	"encoding/binary"
	"fmt"
)

// TurnPoolBits is the width of the turn pool in this model. The ASI
// specification defines a 31-bit pool, which limits a path to 7 hops of
// 16-port switches; the paper's 8x8 mesh needs up to 14 hops from a corner
// fabric manager, so (like the authors' OPNET model must have) we widen the
// pool. 64 bits admit 16 hops of 16-port switches, enough for every
// topology in Table 1. The substitution is behaviour-preserving: no
// algorithm in the paper depends on the pool width, only on per-hop turn
// consumption.
const TurnPoolBits = 64

// RouteHeader is the ASI packet routing header (paper Fig. 1). Unicast ASI
// packets are source routed: the sending endpoint fills TurnPool with one
// turn value per switch on the path, and each switch consumes bits at
// TurnPointer to select its output port. Dir (the D bit) selects forward or
// backward interpretation, which lets a device answer a request by echoing
// the header with D flipped — the response retraces the request path
// without the device knowing any topology.
type RouteHeader struct {
	// TurnPool holds the packed turn values. The first switch on the
	// forward path consumes the most significant used bits.
	TurnPool uint64
	// TurnPointer is the bit index one past the next turn to consume in
	// the forward direction (i.e. the number of unconsumed pool bits).
	// In the backward direction it is the number of already-reconsumed
	// bits, so it grows from 0 back toward the original fill.
	TurnPointer uint8
	// Dir is the D bit: false = forward, true = backward.
	Dir bool
	// Multicast marks a multicast packet: instead of turn-pool source
	// routing, switches replicate it along the group's forwarding-table
	// ports. MGID selects the group.
	Multicast bool
	MGID      uint16
	// PI identifies the encapsulated protocol.
	PI PI
	// TC is the traffic class stamped by the source endpoint.
	TC TrafficClass
	// OO (ordered-only) and TS (type-specific) mark bypassable packets
	// on BVCs. Management packets leave them clear.
	OO bool
	TS bool
	// CreditsRequired is the number of flow-control credit units the
	// packet consumes at each hop.
	CreditsRequired uint8
}

// HeaderWireSize is the encoded size of a route header in bytes. The spec
// uses two 32-bit words plus header CRC; widening the turn pool to 64 bits
// grows the header to 12 bytes of fields plus a 2-byte header CRC and 2
// bytes of framing.
const HeaderWireSize = 16

// flag bit positions within the packed flags byte.
const (
	flagDir = 1 << 0
	flagOO  = 1 << 1
	flagTS  = 1 << 2
	flagMC  = 1 << 3
)

// EncodeHeader packs h into a fresh HeaderWireSize-byte slice, including
// the header CRC over the preceding bytes.
func EncodeHeader(h RouteHeader) []byte {
	b := make([]byte, HeaderWireSize)
	if h.Multicast {
		// Multicast reuses the turn-pool bytes for the group id; the
		// pool and pointer are meaningless for replicated forwarding.
		binary.BigEndian.PutUint16(b[6:8], h.MGID)
	} else {
		binary.BigEndian.PutUint64(b[0:8], h.TurnPool)
		b[8] = h.TurnPointer
	}
	var flags byte
	if h.Dir {
		flags |= flagDir
	}
	if h.Multicast {
		flags |= flagMC
	}
	if h.OO {
		flags |= flagOO
	}
	if h.TS {
		flags |= flagTS
	}
	b[9] = flags
	b[10] = byte(h.PI)
	b[11] = byte(h.TC&MaxTrafficClass) | h.CreditsRequired<<3
	// b[12:14] reserved framing (sequence/ack in the real link layer).
	binary.BigEndian.PutUint16(b[14:16], crc16(b[:14]))
	return b
}

// DecodeHeader unpacks a route header, verifying length and header CRC.
func DecodeHeader(b []byte) (RouteHeader, error) {
	var h RouteHeader
	if len(b) < HeaderWireSize {
		return h, fmt.Errorf("asi: header too short: %d bytes", len(b))
	}
	if got, want := crc16(b[:14]), binary.BigEndian.Uint16(b[14:16]); got != want {
		return h, fmt.Errorf("asi: header CRC mismatch: computed %#04x, header says %#04x", got, want)
	}
	flags := b[9]
	h.Multicast = flags&flagMC != 0
	if h.Multicast {
		h.MGID = binary.BigEndian.Uint16(b[6:8])
	} else {
		h.TurnPool = binary.BigEndian.Uint64(b[0:8])
		h.TurnPointer = b[8]
	}
	h.Dir = flags&flagDir != 0
	h.OO = flags&flagOO != 0
	h.TS = flags&flagTS != 0
	h.PI = PI(b[10])
	h.TC = TrafficClass(b[11]) & MaxTrafficClass
	h.CreditsRequired = b[11] >> 3
	if h.TurnPointer > TurnPoolBits {
		return h, fmt.Errorf("asi: turn pointer %d exceeds pool width %d", h.TurnPointer, TurnPoolBits)
	}
	return h, nil
}

// crc16 computes CRC-16/CCITT-FALSE, the polynomial family ASI and PCI
// Express use for link-layer CRCs.
func crc16(data []byte) uint16 {
	crc := uint16(0xffff)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// Reverse returns the header of a response that retraces this packet's
// path: the D bit flips and everything else (including the pool and
// pointer, which the fabric has been mutating in flight) carries over. Call
// it on the header as received at the destination.
func (h RouteHeader) Reverse() RouteHeader {
	r := h
	r.Dir = !h.Dir
	return r
}

// String summarizes the header for traces.
func (h RouteHeader) String() string {
	dir := "fwd"
	if h.Dir {
		dir = "bwd"
	}
	return fmt.Sprintf("hdr{pool=%#016x ptr=%d %s pi=%d tc=%d}",
		h.TurnPool, h.TurnPointer, dir, h.PI, h.TC)
}
