package asi

import (
	"testing"
	"testing/quick"
)

func TestFMSyncRoundTrip(t *testing.T) {
	p := FMSync{From: 0xA5, Seq: 3, Entries: 150, Final: true}
	got, err := DecodeFMSync(EncodeFMSync(p))
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Errorf("round trip: %+v vs %+v", got, p)
	}
	if p.WireSize() != fmSyncFixedSize+150*FMSyncEntryBytes {
		t.Errorf("WireSize = %d", p.WireSize())
	}
	if p.ProtocolInterface() != PIFMSync || p.String() == "" {
		t.Error("metadata broken")
	}
}

func TestFMSyncRoundTripProperty(t *testing.T) {
	f := func(from uint64, seq uint16, entries uint16, final bool) bool {
		p := FMSync{From: DSN(from), Seq: seq, Entries: entries % 200, Final: final}
		got, err := DecodeFMSync(EncodeFMSync(p))
		return err == nil && got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFMSyncDecodeErrors(t *testing.T) {
	if _, err := DecodeFMSync(make([]byte, fmSyncFixedSize-1)); err == nil {
		t.Error("short payload accepted")
	}
	// Declared entries beyond the buffer.
	b := EncodeFMSync(FMSync{Entries: 10})
	if _, err := DecodeFMSync(b[:fmSyncFixedSize]); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	p := Heartbeat{From: 0xBEEF, Seq: 42}
	got, err := DecodeHeartbeat(EncodeHeartbeat(p))
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Errorf("round trip: %+v vs %+v", got, p)
	}
	if p.ProtocolInterface() != PIHeartbeat || p.WireSize() != heartbeatSize || p.String() == "" {
		t.Error("metadata broken")
	}
	if _, err := DecodeHeartbeat(nil); err == nil {
		t.Error("nil payload accepted")
	}
}

func TestFMSyncAndHeartbeatThroughPacket(t *testing.T) {
	for _, pl := range []Payload{
		FMSync{From: 7, Seq: 1, Entries: 5, Final: true},
		Heartbeat{From: 9, Seq: 2},
	} {
		pkt := &Packet{Header: RouteHeader{TurnPointer: 4, TurnPool: 1, TC: TCManagement}, Payload: pl}
		b, err := pkt.Encode()
		if err != nil {
			t.Fatalf("%T: %v", pl, err)
		}
		if len(b) != pkt.WireSize() {
			t.Errorf("%T: wire size mismatch", pl)
		}
		dec, err := Decode(b)
		if err != nil {
			t.Fatalf("%T: %v", pl, err)
		}
		if dec.Payload.ProtocolInterface() != pl.ProtocolInterface() {
			t.Errorf("%T: PI mismatch", pl)
		}
	}
}

func TestConfigSpaceOffsetsDisjoint(t *testing.T) {
	// The writable regions of switches and endpoints must be laid out
	// without overlap: event route, owner, then MFT (switch) or path
	// table (endpoint).
	for _, ports := range []int{2, 4, 16} {
		er := EventRouteOffset(ports)
		ow := OwnerOffset(ports)
		if int(ow) != int(er)+int(EventRouteBlocks) {
			t.Errorf("ports=%d: owner region misplaced", ports)
		}
		if MFTOffset(ports) != ow+uint16(OwnerBlocks) {
			t.Errorf("ports=%d: MFT region misplaced", ports)
		}
		if PathTableOffset(ports) != ow+uint16(OwnerBlocks) {
			t.Errorf("ports=%d: path table misplaced", ports)
		}
		if MFTEntryOffset(ports, 3) != MFTOffset(ports)+3 {
			t.Errorf("ports=%d: MFT entry stride wrong", ports)
		}
		if PathEntryOffset(ports, 2) != PathTableOffset(ports)+2*uint16(PathTableEntryBlocks) {
			t.Errorf("ports=%d: path entry stride wrong", ports)
		}
	}
	// Capability sizes include the regions.
	sw, err := NewConfigSpace(DeviceSwitch, 1, 16, 2176, false)
	if err != nil {
		t.Fatal(err)
	}
	if sw.NumBlocks() != int(MFTOffset(16))+MFTGroups {
		t.Errorf("switch capability size %d", sw.NumBlocks())
	}
	if sw.Ports() != 16 {
		t.Errorf("Ports() = %d", sw.Ports())
	}
	ep, err := NewConfigSpace(DeviceEndpoint, 1, 1, 2176, true)
	if err != nil {
		t.Fatal(err)
	}
	if ep.NumBlocks() != int(PathTableOffset(1))+PathTableEntries*int(PathTableEntryBlocks) {
		t.Errorf("endpoint capability size %d", ep.NumBlocks())
	}
}

func TestPI4OpStringsAll(t *testing.T) {
	ops := []PI4Op{
		PI4ReadRequest, PI4ReadCompletionData, PI4ReadCompletionError,
		PI4WriteRequest, PI4WriteCompletion, PI4WriteCompletionError,
		PI4ClaimRequest, PI4ClaimCompletion,
	}
	for _, op := range ops {
		s := op.String()
		if s == "" || s[0:2] == "PI" {
			t.Errorf("op %d renders as %q (expected a named op)", op, s)
		}
	}
}
