// Package asi defines the Advanced Switching Interconnect (ASI) wire-level
// vocabulary used throughout this repository: routing headers with turn-pool
// source routing, the PI-4 device configuration/control protocol, the PI-5
// event-reporting protocol, virtual-channel and traffic-class types, and the
// per-device configuration space (capability structures) that the fabric
// manager reads during discovery.
//
// The structures follow the ASI Core Architecture Specification rev 1.0 at
// the level of detail the discovery process exercises. One deliberate
// deviation is documented on RouteHeader: the turn pool is widened from the
// spec's 31 bits to 64 bits so that the paper's largest topologies (8x8
// mesh, 10x10 torus) remain source-routable from any fabric-manager
// placement.
package asi

import "fmt"

// DeviceType distinguishes the two kinds of ASI fabric devices.
type DeviceType uint8

const (
	// DeviceSwitch is a multi-port ASI switch element.
	DeviceSwitch DeviceType = iota + 1
	// DeviceEndpoint is a fabric endpoint (up to 4 ports; this model,
	// like the paper's, uses 1-port endpoints).
	DeviceEndpoint
)

// String returns "switch" or "endpoint".
func (t DeviceType) String() string {
	switch t {
	case DeviceSwitch:
		return "switch"
	case DeviceEndpoint:
		return "endpoint"
	default:
		return fmt.Sprintf("DeviceType(%d)", uint8(t))
	}
}

// DSN is a device serial number: the fabric-unique identity the FM uses to
// recognize a device reached through alternate paths.
type DSN uint64

// String renders the DSN in the conventional hex form.
func (d DSN) String() string { return fmt.Sprintf("dsn:%016x", uint64(d)) }

// PI identifies the Protocol Interface of an encapsulated packet: the field
// in the ASI route header that says what kind of payload follows.
type PI uint8

// Protocol interfaces used by the management plane. ASI reserves PI 0-7 for
// fabric management; PI-4 is device configuration, PI-5 is event reporting.
const (
	PI4DeviceManagement PI = 4
	PI5EventReporting   PI = 5
	// PIApplication marks encapsulated application data (any PI >= 8 in
	// the spec; a single representative value suffices for the model).
	PIApplication PI = 8
)

// TrafficClass groups flows for similar treatment; 3 bits on the wire.
type TrafficClass uint8

// MaxTrafficClass is the largest encodable traffic class (3-bit field).
const MaxTrafficClass TrafficClass = 7

// TCManagement is the traffic class used by management and notification
// packets. Per the paper (section 4.1), management packets have the highest
// priority in the fabric, which is why application traffic scarcely
// influences discovery time.
const TCManagement TrafficClass = 7

// VCKind is one of the three ASI virtual channel types.
type VCKind uint8

const (
	// BVC is a unicast bypassable VC: an ordered queue plus a bypass
	// queue that OO/TS-marked packets may jump to.
	BVC VCKind = iota
	// OVC is a unicast ordered VC.
	OVC
	// MVC is a multicast VC.
	MVC
)

// String names the VC kind as in the specification.
func (k VCKind) String() string {
	switch k {
	case BVC:
		return "BVC"
	case OVC:
		return "OVC"
	case MVC:
		return "MVC"
	default:
		return fmt.Sprintf("VCKind(%d)", uint8(k))
	}
}

// VCID addresses a virtual channel within a port.
type VCID uint8

// TCtoVC is a fixed traffic-class to virtual-channel mapping table, one per
// port direction as in the spec. Index by TrafficClass.
type TCtoVC [MaxTrafficClass + 1]VCID

// DefaultTCtoVC returns the unicast mapping used by the model: TC0-6
// share VC0 (bulk BVC) and TC7 (management) maps to the dedicated
// highest-priority VC2, so management packets never queue behind data.
// Multicast packets always ride VC1, the MVC, regardless of TC.
func DefaultTCtoVC() TCtoVC {
	var m TCtoVC
	for tc := range m {
		if TrafficClass(tc) == TCManagement {
			m[tc] = VCManagement
		} else {
			m[tc] = VCBulk
		}
	}
	return m
}

// The model instantiates three virtual channels per port.
const (
	// VCBulk is the unicast bypassable channel for application data.
	VCBulk VCID = 0
	// VCMulticast is the MVC carrying replicated traffic.
	VCMulticast VCID = 1
	// VCManagement is the highest-priority ordered channel for PI-4/5
	// and other management packets.
	VCManagement VCID = 2
	// NumVCs is the per-port channel count.
	NumVCs = 3
)

// KindOfVC reports the channel type backing each VCID in the model.
func KindOfVC(vc VCID) VCKind {
	switch vc {
	case VCBulk:
		return BVC
	case VCMulticast:
		return MVC
	default:
		return OVC
	}
}

// Link-layer constants from the specification for an ASI x1 link.
const (
	// LinkRawGbps is the signalling rate of an x1 lane in Gbit/s.
	LinkRawGbps = 2.5
	// LinkEffectiveGbps is the usable bandwidth after 8b/10b encoding.
	LinkEffectiveGbps = 2.0
	// MaxSwitchPorts is the spec's limit on switch ports.
	MaxSwitchPorts = 256
	// MaxEndpointPorts is the spec's limit on endpoint ports.
	MaxEndpointPorts = 4
	// MaxReadBlocks is the PI-4 limit on 32-bit blocks per read
	// completion.
	MaxReadBlocks = 8
)

// SourceVirtualIngress is the ingress port a switch assumes when it
// originates (rather than forwards) a source-routed packet, e.g. a PI-5
// event along its programmed event route. The fabric manager computes
// switch event routes against the same convention.
const SourceVirtualIngress = 0
