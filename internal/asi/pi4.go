package asi

import (
	"encoding/binary"
	"fmt"
)

// PI4Op is the operation code of a PI-4 (device management) packet.
type PI4Op uint8

const (
	// PI4ReadRequest asks a device to return Count 32-bit blocks of its
	// configuration space starting at Offset.
	PI4ReadRequest PI4Op = iota + 1
	// PI4ReadCompletionData carries the requested blocks back.
	PI4ReadCompletionData
	// PI4ReadCompletionError reports a failed read.
	PI4ReadCompletionError
	// PI4WriteRequest asks a device to store Data into its configuration
	// space at Offset (used for event-route and path-table programming).
	PI4WriteRequest
	// PI4WriteCompletion acknowledges a write.
	PI4WriteCompletion
	// PI4WriteCompletionError reports a failed write.
	PI4WriteCompletionError
	// PI4ClaimRequest atomically claims the device's discovery
	// ownership region for distributed discovery: Data carries
	// [generation, claimant]; the device grants the claim if the
	// generation is newer than the stored one, and always answers with
	// the stored [generation, owner] after the operation. This is an
	// extension beyond the base spec, used by the paper's future-work
	// collaborative discovery.
	PI4ClaimRequest
	// PI4ClaimCompletion answers a claim with the resulting owner.
	PI4ClaimCompletion
)

// String names the operation.
func (op PI4Op) String() string {
	switch op {
	case PI4ReadRequest:
		return "read-request"
	case PI4ReadCompletionData:
		return "read-completion-data"
	case PI4ReadCompletionError:
		return "read-completion-error"
	case PI4WriteRequest:
		return "write-request"
	case PI4WriteCompletion:
		return "write-completion"
	case PI4WriteCompletionError:
		return "write-completion-error"
	case PI4ClaimRequest:
		return "claim-request"
	case PI4ClaimCompletion:
		return "claim-completion"
	default:
		return fmt.Sprintf("PI4Op(%d)", uint8(op))
	}
}

// IsCompletion reports whether the op is any kind of response.
func (op PI4Op) IsCompletion() bool {
	switch op {
	case PI4ReadCompletionData, PI4ReadCompletionError,
		PI4WriteCompletion, PI4WriteCompletionError, PI4ClaimCompletion:
		return true
	}
	return false
}

// PI4 is the payload of a PI-4 packet. A request carries Offset/Count (and
// Data for writes); a completion echoes the Tag and carries Data for
// successful reads. The Tag lets the FM match completions to outstanding
// requests when many are in flight (the Parallel algorithm's pending
// table is keyed by it).
type PI4 struct {
	Op     PI4Op
	Tag    uint32
	Offset uint16 // in 32-bit blocks
	Count  uint8  // blocks to read; 1..MaxReadBlocks
	// ArrivalPort is stamped by the responding device on completions: the
	// local port index the request arrived on. It is how the FM learns
	// the far-end port of a link it has just crossed for the first time,
	// which it needs to extend turn-pool paths beyond the new device.
	ArrivalPort uint8
	Data        []uint32
}

// pi4FixedSize is the encoded size of the fixed portion of a PI-4 payload.
const pi4FixedSize = 10

// EncodePI4 serializes p. Encoded layout: op(1) tag(4) offset(2) count(1)
// arrivalPort(1) ndata(1) data(4*ndata).
func EncodePI4(p PI4) ([]byte, error) {
	if len(p.Data) > MaxReadBlocks {
		return nil, fmt.Errorf("asi: PI-4 payload of %d blocks exceeds limit %d", len(p.Data), MaxReadBlocks)
	}
	if p.Op == PI4ReadRequest && (p.Count == 0 || p.Count > MaxReadBlocks) {
		return nil, fmt.Errorf("asi: PI-4 read request count %d out of range 1..%d", p.Count, MaxReadBlocks)
	}
	b := make([]byte, pi4FixedSize+4*len(p.Data))
	b[0] = byte(p.Op)
	binary.BigEndian.PutUint32(b[1:5], p.Tag)
	binary.BigEndian.PutUint16(b[5:7], p.Offset)
	b[7] = p.Count
	b[8] = p.ArrivalPort
	b[9] = byte(len(p.Data))
	for i, w := range p.Data {
		binary.BigEndian.PutUint32(b[pi4FixedSize+4*i:], w)
	}
	return b, nil
}

// DecodePI4 parses a PI-4 payload.
func DecodePI4(b []byte) (PI4, error) {
	var p PI4
	if len(b) < pi4FixedSize {
		return p, fmt.Errorf("asi: PI-4 payload too short: %d bytes", len(b))
	}
	p.Op = PI4Op(b[0])
	p.Tag = binary.BigEndian.Uint32(b[1:5])
	p.Offset = binary.BigEndian.Uint16(b[5:7])
	p.Count = b[7]
	p.ArrivalPort = b[8]
	n := int(b[9])
	if n > MaxReadBlocks {
		return p, fmt.Errorf("asi: PI-4 payload declares %d blocks, limit %d", n, MaxReadBlocks)
	}
	if len(b) < pi4FixedSize+4*n {
		return p, fmt.Errorf("asi: PI-4 payload truncated: have %d bytes, need %d", len(b), pi4FixedSize+4*n)
	}
	if n > 0 {
		p.Data = make([]uint32, n)
		for i := range p.Data {
			p.Data[i] = binary.BigEndian.Uint32(b[pi4FixedSize+4*i:])
		}
	}
	return p, nil
}

// WireSize returns the encoded payload size in bytes without allocating.
func (p PI4) WireSize() int { return pi4FixedSize + 4*len(p.Data) }

// String summarizes the payload for traces.
func (p PI4) String() string {
	return fmt.Sprintf("pi4{%s tag=%d off=%d count=%d data=%d blocks}",
		p.Op, p.Tag, p.Offset, p.Count, len(p.Data))
}
