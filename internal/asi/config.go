package asi

import "fmt"

// The configuration space of an ASI device is a storage area of 32-bit
// blocks organized into capability structures. The fabric manager learns
// everything it knows about a device by PI-4 reads of this space (paper
// section 2). This model implements the baseline capability:
//
//	block 0          device type | capability version | port count
//	blocks 1-2       device serial number (DSN), high and low words
//	block 3          maximum packet size in bytes
//	block 4          device status (FM-capable, multicast-capable)
//	block 5          vendor/part identification
//	blocks 6..6+2P   two blocks per port: state/speed/width, reserved
//	then 3 blocks    event route: the turn pool toward the FM that the
//	                 device stamps on PI-5 packets (written by the FM)
//
// The first six blocks are the "general information" the discovery
// algorithms read first; the per-port blocks are the "additional
// attributes" read afterwards (paper section 3).
const (
	// GeneralInfoOffset and GeneralInfoBlocks delimit the device general
	// information region.
	GeneralInfoOffset uint16 = 0
	GeneralInfoBlocks uint8  = 6
	// portInfoBase is the first per-port block.
	portInfoBase uint16 = 6
	// PortInfoBlocks is the number of blocks describing one port.
	PortInfoBlocks uint8 = 2
	// EventRouteBlocks is the size of the writable event-route region.
	EventRouteBlocks uint8 = 3
	// OwnerBlocks is the size of the writable discovery-ownership
	// region used by distributed discovery: a generation counter and
	// the claiming FM's identity. Devices update it atomically while
	// servicing a PI-4 claim request.
	OwnerBlocks uint8 = 2
	// PathTableEntryBlocks is the size of one endpoint path-table
	// entry: destination DSN (2), turn pool (2), pointer + valid (1).
	PathTableEntryBlocks uint8 = 5
	// PathTableEntries is the capacity of an endpoint's path table,
	// sized for the largest evaluated fabric (10x10 torus: 99 remote
	// endpoints).
	PathTableEntries = 128
	// MFTGroups is the number of multicast groups a switch's forwarding
	// table supports; each entry is one block holding the output-port
	// bitmask (the model supports switches up to 32 ports, within the
	// spec's 256-port limit).
	MFTGroups = 16
	// capabilityVersion identifies this layout.
	capabilityVersion = 1
)

// Device status bits in block 4.
const (
	statusFMCapable = 1 << 0
	statusMulticast = 1 << 1
)

// PortInfoOffset returns the block offset of port p's information.
func PortInfoOffset(p int) uint16 {
	return portInfoBase + uint16(p)*uint16(PortInfoBlocks)
}

// EventRouteOffset returns the block offset of the event-route region for
// a device with the given port count.
func EventRouteOffset(ports int) uint16 {
	return PortInfoOffset(ports)
}

// OwnerOffset returns the block offset of the discovery-ownership region.
func OwnerOffset(ports int) uint16 {
	return EventRouteOffset(ports) + uint16(EventRouteBlocks)
}

// PathTableOffset returns the block offset of an endpoint's path table.
// Only endpoints carry one; the FM writes it during path distribution so
// the endpoint can source-route traffic to its peers ("path determination
// between endpoints", paper section 2).
func PathTableOffset(ports int) uint16 {
	return OwnerOffset(ports) + uint16(OwnerBlocks)
}

// PathEntryOffset returns the block offset of path-table entry i.
func PathEntryOffset(ports, i int) uint16 {
	return PathTableOffset(ports) + uint16(i)*uint16(PathTableEntryBlocks)
}

// MFTOffset returns the block offset of a switch's multicast forwarding
// table. Multicast packets look their group up here to find the
// replication port mask (one block per group). Only switches carry one.
func MFTOffset(ports int) uint16 {
	return OwnerOffset(ports) + uint16(OwnerBlocks)
}

// MFTEntryOffset returns the block offset of group mgid's port mask.
func MFTEntryOffset(ports int, mgid uint16) uint16 {
	return MFTOffset(ports) + mgid
}

// EncodePathEntry packs one path-table entry.
func EncodePathEntry(dst DSN, pool uint64, ptr uint8) []uint32 {
	return []uint32{
		uint32(dst >> 32), uint32(dst),
		uint32(pool >> 32), uint32(pool),
		uint32(ptr) | 1<<31,
	}
}

// DecodePathEntry unpacks one path-table entry; valid is false for an
// unwritten slot.
func DecodePathEntry(blocks []uint32) (dst DSN, pool uint64, ptr uint8, valid bool) {
	if len(blocks) < int(PathTableEntryBlocks) {
		return 0, 0, 0, false
	}
	valid = blocks[4]&(1<<31) != 0
	dst = DSN(uint64(blocks[0])<<32 | uint64(blocks[1]))
	pool = uint64(blocks[2])<<32 | uint64(blocks[3])
	ptr = uint8(blocks[4] & 0x7f)
	return dst, pool, ptr, valid
}

// GeneralInfo is the decoded form of the first six capability blocks.
type GeneralInfo struct {
	Type      DeviceType
	Version   uint8
	Ports     int
	DSN       DSN
	MaxPacket int
	FMCapable bool
	Multicast bool
	VendorID  uint32
}

// PortInfo is the decoded form of one port's capability blocks.
type PortInfo struct {
	// Active indicates a live device is attached at the other end
	// of this port's link.
	Active bool
	// SpeedGbps is the negotiated link speed (2.0 for x1 after 8b/10b).
	SpeedGbps float64
	// Width is the negotiated lane count.
	Width int
}

// ConfigSpace is a device's capability storage, served to PI-4 reads.
type ConfigSpace struct {
	blocks []uint32
	ports  int
}

// NewConfigSpace builds the capability structure for a device.
func NewConfigSpace(t DeviceType, dsn DSN, ports, maxPacket int, fmCapable bool) (*ConfigSpace, error) {
	switch t {
	case DeviceSwitch:
		if ports < 2 || ports > MaxSwitchPorts {
			return nil, fmt.Errorf("asi: switch port count %d out of range 2..%d", ports, MaxSwitchPorts)
		}
	case DeviceEndpoint:
		if ports < 1 || ports > MaxEndpointPorts {
			return nil, fmt.Errorf("asi: endpoint port count %d out of range 1..%d", ports, MaxEndpointPorts)
		}
	default:
		return nil, fmt.Errorf("asi: unknown device type %v", t)
	}
	n := int(OwnerOffset(ports)) + int(OwnerBlocks)
	switch t {
	case DeviceEndpoint:
		n += PathTableEntries * int(PathTableEntryBlocks)
	case DeviceSwitch:
		n += MFTGroups
	}
	c := &ConfigSpace{blocks: make([]uint32, n), ports: ports}
	c.blocks[0] = uint32(t)<<24 | capabilityVersion<<16 | uint32(ports)&0xffff
	c.blocks[1] = uint32(dsn >> 32)
	c.blocks[2] = uint32(dsn)
	c.blocks[3] = uint32(maxPacket)
	if fmCapable {
		c.blocks[4] |= statusFMCapable
	}
	if t == DeviceSwitch {
		c.blocks[4] |= statusMulticast
	}
	c.blocks[5] = 0x1A51_0001 // vendor/part id of the model
	return c, nil
}

// Ports returns the device's port count.
func (c *ConfigSpace) Ports() int { return c.ports }

// NumBlocks returns the total capability size in 32-bit blocks.
func (c *ConfigSpace) NumBlocks() int { return len(c.blocks) }

// Read returns count blocks starting at offset, as a PI-4 read would. It
// fails for out-of-range accesses or reads wider than MaxReadBlocks; the
// device then answers with a read completion with error.
func (c *ConfigSpace) Read(offset uint16, count uint8) ([]uint32, error) {
	if count == 0 || count > MaxReadBlocks {
		return nil, fmt.Errorf("asi: read count %d out of range 1..%d", count, MaxReadBlocks)
	}
	end := int(offset) + int(count)
	if end > len(c.blocks) {
		return nil, fmt.Errorf("asi: read [%d,%d) beyond capability end %d", offset, end, len(c.blocks))
	}
	out := make([]uint32, count)
	copy(out, c.blocks[offset:end])
	return out, nil
}

// Write stores data at offset. Only the event-route region is writable;
// everything else is device-owned and a write there fails, producing a
// write completion with error.
func (c *ConfigSpace) Write(offset uint16, data []uint32) error {
	if len(data) == 0 || len(data) > MaxReadBlocks {
		return fmt.Errorf("asi: write of %d blocks out of range 1..%d", len(data), MaxReadBlocks)
	}
	lo := int(EventRouteOffset(c.ports))
	end := int(offset) + len(data)
	if int(offset) < lo || end > len(c.blocks) {
		return fmt.Errorf("asi: write [%d,%d) outside writable region [%d,%d)", offset, end, lo, len(c.blocks))
	}
	copy(c.blocks[offset:], data)
	return nil
}

// SetPortState updates a port's capability blocks; the device model calls
// this when a link trains or drops.
func (c *ConfigSpace) SetPortState(port int, info PortInfo) error {
	if port < 0 || port >= c.ports {
		return fmt.Errorf("asi: port %d out of range 0..%d", port, c.ports-1)
	}
	var w uint32
	if info.Active {
		w |= 1
	}
	w |= (uint32(info.SpeedGbps*10) & 0xff) << 8
	w |= (uint32(info.Width) & 0xf) << 4
	c.blocks[PortInfoOffset(port)] = w
	return nil
}

// ParseGeneralInfo decodes the general-information region as returned by a
// PI-4 read of GeneralInfoBlocks blocks at GeneralInfoOffset.
func ParseGeneralInfo(blocks []uint32) (GeneralInfo, error) {
	var g GeneralInfo
	if len(blocks) < int(GeneralInfoBlocks) {
		return g, fmt.Errorf("asi: general info needs %d blocks, got %d", GeneralInfoBlocks, len(blocks))
	}
	g.Type = DeviceType(blocks[0] >> 24)
	g.Version = uint8(blocks[0] >> 16)
	g.Ports = int(blocks[0] & 0xffff)
	g.DSN = DSN(uint64(blocks[1])<<32 | uint64(blocks[2]))
	g.MaxPacket = int(blocks[3])
	g.FMCapable = blocks[4]&statusFMCapable != 0
	g.Multicast = blocks[4]&statusMulticast != 0
	g.VendorID = blocks[5]
	if g.Type != DeviceSwitch && g.Type != DeviceEndpoint {
		return g, fmt.Errorf("asi: general info has invalid device type %d", g.Type)
	}
	if g.Version != capabilityVersion {
		return g, fmt.Errorf("asi: unsupported capability version %d", g.Version)
	}
	return g, nil
}

// ParsePortInfo decodes one port's blocks as returned by a PI-4 read of
// PortInfoBlocks blocks at PortInfoOffset(port).
func ParsePortInfo(blocks []uint32) (PortInfo, error) {
	var p PortInfo
	if len(blocks) < int(PortInfoBlocks) {
		return p, fmt.Errorf("asi: port info needs %d blocks, got %d", PortInfoBlocks, len(blocks))
	}
	w := blocks[0]
	p.Active = w&1 != 0
	p.SpeedGbps = float64((w>>8)&0xff) / 10
	p.Width = int((w >> 4) & 0xf)
	return p, nil
}

// EncodeEventRoute packs a turn pool and pointer into the writable
// event-route blocks. The FM writes this during path distribution so that
// devices can source PI-5 packets toward it.
func EncodeEventRoute(pool uint64, ptr uint8) []uint32 {
	return []uint32{uint32(pool >> 32), uint32(pool), uint32(ptr) | 1<<31}
}

// DecodeEventRoute unpacks the event-route blocks. valid is false until
// the FM has programmed the route.
func DecodeEventRoute(blocks []uint32) (pool uint64, ptr uint8, valid bool) {
	if len(blocks) < int(EventRouteBlocks) {
		return 0, 0, false
	}
	valid = blocks[2]&(1<<31) != 0
	pool = uint64(blocks[0])<<32 | uint64(blocks[1])
	ptr = uint8(blocks[2] & 0x7f)
	return pool, ptr, valid
}
