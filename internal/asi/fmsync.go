package asi

import (
	"encoding/binary"
	"fmt"
)

// PIFMSync is the protocol interface used by collaborating fabric
// managers to ship topology reports to the primary — the inter-FM
// synchronization channel of the paper's future-work distributed
// discovery. Like PIElection, the concrete PI code is a model choice
// within the management range.
const PIFMSync PI = 6

// FMSync is one chunk of a collaborator's topology report. Entries counts
// the database records carried in this chunk; each record costs
// FMSyncEntryBytes on the wire, so a large region is shipped as several
// chunks bounded by the fabric's maximum packet size. Final marks the
// last chunk of a report.
type FMSync struct {
	From    DSN
	Seq     uint16
	Entries uint16
	Final   bool
}

// FMSyncEntryBytes is the wire cost of one serialized database record
// (DSN, type/ports word, and link tuple, delta-compressed).
const FMSyncEntryBytes = 12

const fmSyncFixedSize = 13

// ProtocolInterface implements Payload.
func (p FMSync) ProtocolInterface() PI { return PIFMSync }

// WireSize implements Payload.
func (p FMSync) WireSize() int { return fmSyncFixedSize + int(p.Entries)*FMSyncEntryBytes }

// String summarizes the chunk.
func (p FMSync) String() string {
	return fmt.Sprintf("fmsync{from=%s seq=%d entries=%d final=%v}", p.From, p.Seq, p.Entries, p.Final)
}

// EncodeFMSync serializes the chunk header followed by an opaque body of
// Entries records (zero-filled here; the simulation transfers database
// content out of band and only the wire size matters to the fabric).
func EncodeFMSync(p FMSync) []byte {
	b := make([]byte, p.WireSize())
	binary.BigEndian.PutUint64(b[0:8], uint64(p.From))
	binary.BigEndian.PutUint16(b[8:10], p.Seq)
	binary.BigEndian.PutUint16(b[10:12], p.Entries)
	if p.Final {
		b[12] = 1
	}
	return b
}

// DecodeFMSync parses a chunk.
func DecodeFMSync(b []byte) (FMSync, error) {
	var p FMSync
	if len(b) < fmSyncFixedSize {
		return p, fmt.Errorf("asi: FM-sync payload too short: %d bytes", len(b))
	}
	p.From = DSN(binary.BigEndian.Uint64(b[0:8]))
	p.Seq = binary.BigEndian.Uint16(b[8:10])
	p.Entries = binary.BigEndian.Uint16(b[10:12])
	p.Final = b[12] == 1
	if len(b) < p.WireSize() {
		return p, fmt.Errorf("asi: FM-sync payload truncated: %d of %d bytes", len(b), p.WireSize())
	}
	return p, nil
}
