package asi

import (
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := RouteHeader{
		TurnPool:        0x0123456789abcdef,
		TurnPointer:     37,
		Dir:             true,
		PI:              PI4DeviceManagement,
		TC:              TCManagement,
		OO:              true,
		TS:              false,
		CreditsRequired: 3,
	}
	b := EncodeHeader(h)
	if len(b) != HeaderWireSize {
		t.Fatalf("encoded header is %d bytes, want %d", len(b), HeaderWireSize)
	}
	got, err := DecodeHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip changed header:\n got %+v\nwant %+v", got, h)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(pool uint64, ptr uint8, dir, oo, ts bool, pi uint8, tc uint8, credits uint8) bool {
		h := RouteHeader{
			TurnPool:        pool,
			TurnPointer:     ptr % (TurnPoolBits + 1),
			Dir:             dir,
			OO:              oo,
			TS:              ts,
			PI:              PI(pi),
			TC:              TrafficClass(tc) & MaxTrafficClass,
			CreditsRequired: credits & 0x1f,
		}
		got, err := DecodeHeader(EncodeHeader(h))
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulticastHeaderRoundTrip(t *testing.T) {
	h := RouteHeader{Multicast: true, MGID: 0x1234, PI: PIApplication, TC: 2}
	got, err := DecodeHeader(EncodeHeader(h))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Multicast || got.MGID != 0x1234 {
		t.Errorf("round trip: %+v", got)
	}
	if got.TurnPool != 0 || got.TurnPointer != 0 {
		t.Errorf("multicast header leaked turn fields: %+v", got)
	}
}

func TestMulticastHeaderRoundTripProperty(t *testing.T) {
	f := func(mgid uint16, tc uint8) bool {
		h := RouteHeader{Multicast: true, MGID: mgid, PI: PIApplication, TC: TrafficClass(tc) & MaxTrafficClass}
		got, err := DecodeHeader(EncodeHeader(h))
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeaderCRCDetectsCorruption(t *testing.T) {
	b := EncodeHeader(RouteHeader{TurnPool: 42, TurnPointer: 8})
	for i := range b {
		b[i] ^= 0x40
		if _, err := DecodeHeader(b); err == nil {
			t.Errorf("corruption at byte %d went undetected", i)
		}
		b[i] ^= 0x40
	}
}

func TestHeaderTooShort(t *testing.T) {
	if _, err := DecodeHeader(make([]byte, HeaderWireSize-1)); err == nil {
		t.Error("short header decoded without error")
	}
}

func TestHeaderRejectsOversizePointer(t *testing.T) {
	b := EncodeHeader(RouteHeader{TurnPointer: 30})
	b[8] = TurnPoolBits + 1
	// Recompute CRC so only the pointer check can reject.
	copy(b[14:16], EncodeHeader(RouteHeader{})[14:16])
	b2 := make([]byte, HeaderWireSize)
	copy(b2, b)
	// Easiest: rebuild from a raw header with bad pointer via crc16 on mutated bytes.
	b2[14] = byte(crc16(b2[:14]) >> 8)
	b2[15] = byte(crc16(b2[:14]))
	if _, err := DecodeHeader(b2); err == nil {
		t.Error("turn pointer beyond pool width accepted")
	}
}

func TestHeaderReverseFlipsOnlyDir(t *testing.T) {
	h := RouteHeader{TurnPool: 7, TurnPointer: 4, PI: PI5EventReporting, TC: 2}
	r := h.Reverse()
	if !r.Dir {
		t.Error("Reverse did not set Dir")
	}
	r.Dir = h.Dir
	if r != h {
		t.Errorf("Reverse changed fields beyond Dir: %+v vs %+v", r, h)
	}
	rr := h.Reverse().Reverse()
	if rr != h {
		t.Error("double Reverse is not identity")
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
	if got := crc16([]byte("123456789")); got != 0x29b1 {
		t.Errorf("crc16 check vector = %#04x, want 0x29b1", got)
	}
}

func TestHeaderString(t *testing.T) {
	h := RouteHeader{TurnPool: 1, TurnPointer: 4, Dir: true, PI: 4, TC: 7}
	if s := h.String(); s == "" {
		t.Error("empty String()")
	}
}
