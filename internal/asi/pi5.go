package asi

import (
	"encoding/binary"
	"fmt"
)

// PI5EventCode classifies a PI-5 event report.
type PI5EventCode uint8

const (
	// PI5PortUp reports that a local port transitioned to active (a live
	// device appeared at the other end of the link).
	PI5PortUp PI5EventCode = iota + 1
	// PI5PortDown reports that a local port lost its link partner.
	PI5PortDown
)

// String names the event code.
func (c PI5EventCode) String() string {
	switch c {
	case PI5PortUp:
		return "port-up"
	case PI5PortDown:
		return "port-down"
	default:
		return fmt.Sprintf("PI5EventCode(%d)", uint8(c))
	}
}

// PI5 is the payload of a PI-5 event-reporting packet: a device noticed a
// state change on one of its local ports and notifies the fabric manager,
// which then starts the change assimilation process (paper section 2). The
// reporting device identifies itself by DSN because the FM may not yet have
// a current path to it.
type PI5 struct {
	Code     PI5EventCode
	Port     uint8
	Reporter DSN
	// Sequence disambiguates bursts of events from the same device so
	// the FM can ignore stale reports that arrive after a rediscovery.
	Sequence uint32
}

// pi5Size is the encoded size of a PI-5 payload.
const pi5Size = 14

// EncodePI5 serializes p: code(1) port(1) dsn(8) seq(4).
func EncodePI5(p PI5) []byte {
	b := make([]byte, pi5Size)
	b[0] = byte(p.Code)
	b[1] = p.Port
	binary.BigEndian.PutUint64(b[2:10], uint64(p.Reporter))
	binary.BigEndian.PutUint32(b[10:14], p.Sequence)
	return b
}

// DecodePI5 parses a PI-5 payload.
func DecodePI5(b []byte) (PI5, error) {
	var p PI5
	if len(b) < pi5Size {
		return p, fmt.Errorf("asi: PI-5 payload too short: %d bytes", len(b))
	}
	p.Code = PI5EventCode(b[0])
	p.Port = b[1]
	p.Reporter = DSN(binary.BigEndian.Uint64(b[2:10]))
	p.Sequence = binary.BigEndian.Uint32(b[10:14])
	return p, nil
}

// WireSize returns the encoded payload size in bytes.
func (p PI5) WireSize() int { return pi5Size }

// String summarizes the event for traces.
func (p PI5) String() string {
	return fmt.Sprintf("pi5{%s port=%d from=%s seq=%d}", p.Code, p.Port, p.Reporter, p.Sequence)
}
