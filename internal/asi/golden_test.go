package asi

import (
	"bytes"
	"encoding/hex"
	"testing"
)

// Golden wire-format vectors: pin the exact encodings so that the format
// can never drift silently (recorded traces, documented examples and any
// future interop depend on byte-stable output).

func TestGoldenHeaderEncoding(t *testing.T) {
	h := RouteHeader{
		TurnPool:    0x0000000000000A5B,
		TurnPointer: 12,
		Dir:         false,
		PI:          PI4DeviceManagement,
		TC:          TCManagement,
	}
	got := EncodeHeader(h)
	want, _ := hex.DecodeString("0000000000000a5b0c0004070000dd2c")
	if !bytes.Equal(got, want) {
		t.Errorf("header encoding drifted:\n got  %x\n want %x", got, want)
	}
}

func TestGoldenMulticastHeaderEncoding(t *testing.T) {
	h := RouteHeader{Multicast: true, MGID: 0x0102, PI: PIApplication, TC: 0}
	got := EncodeHeader(h)
	want, _ := hex.DecodeString("000000000000010200080800000009b4")
	if !bytes.Equal(got, want) {
		t.Errorf("multicast header encoding drifted:\n got  %x\n want %x", got, want)
	}
}

func TestGoldenPI4Encoding(t *testing.T) {
	p := PI4{Op: PI4ReadRequest, Tag: 0x01020304, Offset: 6, Count: 2}
	got, err := EncodePI4(p)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := hex.DecodeString("01010203040006020000")
	if !bytes.Equal(got, want) {
		t.Errorf("PI-4 encoding drifted:\n got  %x\n want %x", got, want)
	}
}

func TestGoldenPI5Encoding(t *testing.T) {
	p := PI5{Code: PI5PortDown, Port: 3, Reporter: 0xA5100001, Sequence: 7}
	got := EncodePI5(p)
	want, _ := hex.DecodeString("020300000000a510000100000007")
	if !bytes.Equal(got, want) {
		t.Errorf("PI-5 encoding drifted:\n got  %x\n want %x", got, want)
	}
}

func TestGoldenFullPacket(t *testing.T) {
	pkt := &Packet{
		Header:  RouteHeader{TurnPool: 0x0B, TurnPointer: 4, TC: TCManagement},
		Payload: PI5{Code: PI5PortUp, Port: 1, Reporter: 0x42, Sequence: 1},
	}
	got, err := pkt.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != pkt.WireSize() {
		t.Fatalf("wire size mismatch: %d vs %d", len(got), pkt.WireSize())
	}
	// Round trip must reproduce the identical bytes.
	dec, err := Decode(got)
	if err != nil {
		t.Fatal(err)
	}
	again, err := dec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, again) {
		t.Errorf("re-encoding differs:\n %x\n %x", got, again)
	}
}

func TestGoldenCRCValues(t *testing.T) {
	// Pin both checksum algorithms against independent vectors.
	if crc16([]byte{}) != 0xffff {
		t.Errorf("crc16 of empty = %#x", crc16(nil))
	}
	if got := crc16([]byte{0x00}); got != 0xe1f0 {
		t.Errorf("crc16 of 0x00 = %#04x, want 0xe1f0", got)
	}
}
