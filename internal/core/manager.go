package core

import (
	"fmt"

	"repro/internal/asi"
	"repro/internal/fabric"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/telemetry"
)

// Options configures a fabric manager.
type Options struct {
	// Algorithm selects the discovery implementation.
	Algorithm Kind
	// FMFactor is the FM processing-speed multiplier (paper Figs. 8-9);
	// processing time = model time / factor. Zero means 1.
	FMFactor float64
	// Cost is the FM processing-time model; zero value means defaults.
	Cost *CostModel
	// RequestTimeout expires outstanding PI-4 requests; a timed-out
	// probe is treated like a completion with error.
	RequestTimeout sim.Duration
	// VerifyTimeout expires partial-rediscovery validation reads. It is
	// shorter than RequestTimeout because a verify targets a device the
	// FM suspects may be gone; waiting the full window would make
	// localized assimilation slower than a full rediscovery.
	VerifyTimeout sim.Duration
	// CoalesceDelay batches a burst of PI-5 reports for the same change
	// into one discovery run.
	CoalesceDelay sim.Duration
	// ElectionPriority weighs this manager in FM election; ties break
	// on DSN.
	ElectionPriority uint8
	// PortReadBatch is the number of ports fetched per PI-4 read
	// (ablation: the paper's algorithms read one port per request; a
	// PI-4 completion can carry up to MaxReadBlocks blocks, i.e. 4
	// ports). Values are clamped to [1, 4].
	PortReadBatch int
	// NoProbeMemo disables the link-memo optimization that suppresses
	// probes over links the FM has already recorded (ablation: every
	// active port is probed, duplicates resolved by DSN as in the
	// ASI-SIG flow chart).
	NoProbeMemo bool
	// MaxRetries is how many times a timed-out PI-4 request is re-issued
	// along the same path before the timeout becomes a terminal failure.
	// Zero (the default) preserves the paper's lossless-fabric behaviour:
	// the first timeout is final.
	MaxRetries int
	// RetryBackoff is the wait before the first re-issue; each further
	// attempt doubles it, capped at 8x. Zero means 100us.
	RetryBackoff sim.Duration
	// AssimWindow enables the Partial algorithm's coalescing front-end:
	// accepted PI-5 reports debounce for this long (the window slides
	// with each arrival) before one batched partial run assimilates
	// them; reports for the same (reporter, port) collapse to the final
	// state. Zero (the default) keeps per-event assimilation. Only the
	// Partial algorithm consults it.
	AssimWindow sim.Duration
	// AssimBatchMax caps the distinct (reporter, port) entries a batch
	// holds before flushing immediately — the bound that keeps a
	// sustained event stream from sliding the debounce window forever.
	// Zero selects 64 when AssimWindow is set.
	AssimBatchMax int
	// Telemetry, when non-nil, records the FM's operational metrics —
	// per-phase service-time and round-trip histograms, work-queue depth,
	// timeout/retry counters — into the given registry. Nil (the default)
	// disables recording entirely; enabling it never alters simulated
	// behaviour.
	Telemetry *telemetry.Registry
	// Spans, when non-nil, records the causal life of every FM-issued
	// PI-4 request — run bands, request/attempt/backoff spans and FM
	// queue/service intervals — into the given tracer. Attach the same
	// tracer to the fabric (Fabric.SetSpanTracer) to also capture
	// per-hop wire, queueing and device-service spans. Nil (the
	// default) disables recording entirely; enabling it never alters
	// simulated behaviour.
	Spans *span.Tracer
}

func (o Options) withDefaults() Options {
	if o.FMFactor <= 0 {
		o.FMFactor = 1
	}
	if o.Cost == nil {
		c := DefaultCostModel()
		o.Cost = &c
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * sim.Millisecond
	}
	if o.VerifyTimeout <= 0 {
		o.VerifyTimeout = 1 * sim.Millisecond
	}
	if o.CoalesceDelay <= 0 {
		o.CoalesceDelay = 25 * sim.Microsecond
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 100 * sim.Microsecond
	}
	if o.AssimWindow > 0 && o.AssimBatchMax <= 0 {
		o.AssimBatchMax = 64
	}
	return o
}

// reqKind classifies outstanding PI-4 requests.
type reqKind int

const (
	reqProbeGeneral reqKind = iota // general-info read through a port
	reqReadPort                    // port-attribute read of a known device
	reqWrite                       // event-route / path programming write
	reqVerify                      // partial rediscovery route validation
	reqClaim                       // distributed discovery ownership claim
	numReqKinds
)

// request is one outstanding PI-4 request and the context to interpret
// its completion.
type request struct {
	tag  uint32
	kind reqKind
	path route.Path
	// For probes: the device and port the request crosses last (the
	// near side of the link being explored). Zero srcDSN for the very
	// first probe from the host endpoint... which uses the host DSN.
	srcDSN  asi.DSN
	srcPort int
	// For port reads and writes: the target device and port index;
	// nports > 1 for batched port reads.
	dsn    asi.DSN
	port   int
	nports int
	// timeout fires if no completion arrives.
	timeout sim.EventID
	// sentAt stamps the latest issue, for round-trip telemetry.
	sentAt sim.Time
	// payload is the request payload, kept so a timed-out request can be
	// re-issued verbatim (with a fresh tag) along the same path.
	payload asi.PI4
	// attempt counts re-issues: 0 for the original transmission.
	attempt int
	// retryGen snapshots the run generation when a retry backoff is
	// armed, so backoffs from a superseded run recognize themselves.
	retryGen uint64
	// span/attemptSpan are the causal-trace handles for this request and
	// its in-flight attempt; zero unless Options.Spans is set.
	span        span.ID
	attemptSpan span.ID
}

// workKind classifies FM processing work items.
type workKind int

const (
	wStart workKind = iota
	wCompletion
	wTimeout
	wEvent
	wSync
	wFlush // coalesced-assimilation batch flush (Options.AssimWindow)
	numWorkKinds
)

type work struct {
	kind workKind
	req  *request
	pi4  asi.PI4
	pi5  asi.PI5
	sync asi.FMSync
	// enqAt stamps when the item entered the FM queue, for the
	// fm-queue span; populated only when span tracing is on.
	enqAt sim.Time
}

// driver is a discovery algorithm plugged into the Manager. The Manager
// owns packet mechanics (tags, timeouts, the FM processing queue, the
// database); the driver decides what to send next.
type driver interface {
	// start fires once per discovery run, after the FM has read its own
	// endpoint's configuration space.
	start()
	// onGeneral is called after a probe completion was processed into
	// the database. n is nil when ok is false (error or timeout);
	// isNew reports whether the device entered the database just now.
	onGeneral(req *request, n *Node, isNew, ok bool)
	// onPort is called after a port-attribute read was processed.
	onPort(req *request, n *Node, ok bool)
	// finished reports whether the driver has no more work to issue.
	finished() bool
}

// Manager is an ASI fabric manager: a software management entity hosted
// on a fabric endpoint.
type Manager struct {
	f   *fabric.Fabric
	dev *fabric.Device
	e   *sim.Engine
	opt Options

	db *DB
	// prevDB is the database of the previous full run, kept to report
	// what a change-triggered rediscovery actually changed.
	prevDB  *DB
	pending map[uint32]*request
	nextTag uint32

	// The FM software is a single serial processor: work items queue in
	// a ring, the item in service parks in curWork, and its completion
	// fires through the reusable workTimer — no closure per packet.
	busy      bool
	queue     sim.Ring[work]
	curWork   work
	curCost   sim.Duration
	workTimer *sim.Timer
	// timeoutFn/retryFn are the pre-bound callbacks for request timeout
	// and retry-backoff events; the request itself rides as the event arg.
	timeoutFn sim.ArgHandler
	retryFn   sim.ArgHandler

	discovering bool
	partialRun  bool
	dirty       bool
	coalesced   bool

	drv driver

	res  Result
	last *Result

	// OnDiscoveryComplete fires when a discovery run finishes, with its
	// measurements.
	OnDiscoveryComplete func(Result)

	elect *Elector
	// preElection buffers announcements that arrive before this
	// candidate calls StartElection.
	preElection []asi.Election
	dist        *distState

	// team wires this manager into a distributed-discovery team;
	// teamGen is the claim generation of the current round.
	team    *Team
	teamGen uint32

	// beats/watchdog implement FM failover.
	beats    *Heartbeater
	watchdog *Watchdog

	// partialSeq tracks the last PI-5 sequence seen per reporter, so
	// stale reports do not re-trigger partial assimilation. Cursors are
	// pruned with their device (removeNode, ExpireReporters) so the map
	// stays bounded under steady-state churn.
	partialSeq map[asi.DSN]uint32

	// assimPending is the coalescing front-end's debounce batch, keyed
	// by (reporter, port) with the latest report winning; non-nil only
	// when Options.AssimWindow selects coalesced assimilation.
	// assimEvents counts reports absorbed into the open batch (including
	// superseded ones); assimQueued marks a wFlush item already in the
	// work queue.
	assimPending map[assimKey]asi.PI5
	assimEvents  int
	assimTimer   *sim.Timer
	assimQueued  bool

	// stale counts completions whose request had already timed out.
	stale int

	// tel holds the pre-registered telemetry handles, nil unless
	// Options.Telemetry was set.
	tel *fmTelemetry

	// sp is the causal span tracer, nil unless Options.Spans was set;
	// runSpan is the open phase band of the current run, and retryReqs
	// tracks requests parked in backoff windows so a superseding run can
	// close their spans (populated only when sp is non-nil).
	sp        *span.Tracer
	runSpan   span.ID
	retryReqs map[*request]struct{}

	// runGen identifies the current discovery run; retry timers armed in
	// an earlier run recognize themselves as orphaned and do nothing.
	runGen uint64
	// retryPending counts requests sitting in a backoff window: they are
	// in neither pending nor queue, but the run must not finish under
	// them.
	retryPending int
}

// NewManager attaches a fabric manager to an endpoint device.
func NewManager(f *fabric.Fabric, dev *fabric.Device, opt Options) *Manager {
	if dev.Type != asi.DeviceEndpoint {
		panic("core: fabric managers run on endpoints")
	}
	m := &Manager{
		f:       f,
		dev:     dev,
		e:       f.Engine,
		opt:     opt.withDefaults(),
		pending: make(map[uint32]*request),
		db:      NewDB(dev.DSN),
	}
	if opt.Telemetry != nil {
		m.tel = newFMTelemetry(opt.Telemetry)
	}
	if opt.Spans != nil {
		m.sp = opt.Spans
		m.retryReqs = make(map[*request]struct{})
	}
	m.workTimer = m.e.NewTimer(m.completeWork)
	m.timeoutFn = func(_ *sim.Engine, arg any) { m.onTimeout(arg.(*request)) }
	m.retryFn = func(_ *sim.Engine, arg any) { m.onRetryBackoff(arg.(*request)) }
	if m.opt.Algorithm == Partial && m.opt.AssimWindow > 0 {
		m.initAssim()
	}
	m.drv = m.newDriver()
	dev.SetHandler(m)
	return m
}

// newDriver instantiates the configured algorithm.
func (m *Manager) newDriver() driver {
	switch m.opt.Algorithm {
	case SerialPacket:
		return &serialDriver{m: m, perDeviceParallel: false}
	case SerialDevice:
		return &serialDriver{m: m, perDeviceParallel: true}
	case Parallel, Partial:
		return &parallelDriver{m: m}
	case Distributed:
		gen := m.teamGen
		if gen == 0 {
			gen = 1 // standalone distributed manager
		}
		return &distributedDriver{m: m, gen: gen}
	default:
		panic(fmt.Sprintf("core: unknown algorithm %v", m.opt.Algorithm))
	}
}

// DB returns the manager's current topology database.
func (m *Manager) DB() *DB { return m.db }

// Device returns the hosting endpoint.
func (m *Manager) Device() *fabric.Device { return m.dev }

// Options returns the effective options.
func (m *Manager) Options() Options { return m.opt }

// Discovering reports whether a discovery run is in progress.
func (m *Manager) Discovering() bool { return m.discovering }

// LastResult returns the most recent completed discovery's measurements.
func (m *Manager) LastResult() (Result, bool) {
	if m.last == nil {
		return Result{}, false
	}
	return *m.last, true
}

// HandlePacket implements fabric.Handler: every management packet
// delivered to the FM's endpoint lands here and is queued for the FM's
// serial packet processor.
func (m *Manager) HandlePacket(port int, pkt *asi.Packet) {
	switch pl := pkt.Payload.(type) {
	case asi.PI4:
		m.res.PacketsReceived++
		m.res.BytesReceived += uint64(pkt.WireSize())
		req, ok := m.pending[pl.Tag]
		if !ok {
			// A completion for a request that already timed out (and was
			// possibly re-issued under a fresh tag). The retransmission's
			// own completion is the one that counts; this one is dropped
			// so the database never folds a response in twice.
			m.stale++
			if m.discovering {
				m.res.Stale++
			}
			if m.tel != nil {
				m.tel.stale.Inc()
			}
			return
		}
		delete(m.pending, pl.Tag)
		m.e.Cancel(req.timeout)
		if m.tel != nil {
			m.tel.rtt[req.kind].Observe(int64(m.e.Now().Sub(req.sentAt)))
		}
		if m.sp != nil {
			m.sp.End(req.attemptSpan, m.e.Now(), span.StatusOK)
		}
		m.enqueue(work{kind: wCompletion, req: req, pi4: pl})
	case asi.PI5:
		m.res.PacketsReceived++
		m.res.BytesReceived += uint64(pkt.WireSize())
		m.enqueue(work{kind: wEvent, pi5: pl})
	case asi.FMSync:
		m.enqueue(work{kind: wSync, sync: pl})
	case asi.Heartbeat:
		if m.watchdog != nil {
			m.watchdog.feed()
		}
	case asi.Election:
		if m.elect != nil {
			m.elect.handle(pl)
		} else {
			// Announcements can land before this candidate enters the
			// election (power-up skew); buffer them for replay.
			m.preElection = append(m.preElection, pl)
		}
	}
}

// enqueue adds a work item to the FM's serial processor.
func (m *Manager) enqueue(w work) {
	if m.sp != nil {
		w.enqAt = m.e.Now()
	}
	m.queue.Push(w)
	if m.tel != nil {
		m.tel.queueDepth.SetMax(int64(m.queue.Len()))
	}
	if !m.busy {
		m.processNext()
	}
}

// processNext models the FM software: one packet at a time, each costing
// the algorithm's processing time at the current database size.
func (m *Manager) processNext() {
	if m.queue.Len() == 0 {
		m.busy = false
		return
	}
	m.busy = true
	m.curWork = m.queue.Pop()
	switch m.curWork.kind {
	case wEvent:
		m.curCost = m.opt.Cost.EventProcessing(m.opt.FMFactor)
	default:
		m.curCost = m.opt.Cost.FMProcessing(m.opt.Algorithm, m.db.NumNodes(), m.opt.FMFactor)
	}
	m.workTimer.ScheduleAfter(m.curCost)
}

// completeWork finishes the work item in service when the FM processing
// time elapses.
func (m *Manager) completeWork(*sim.Engine) {
	w := m.curWork
	m.curWork = work{}
	if m.tel != nil {
		m.tel.service[w.kind].Observe(int64(m.curCost))
	}
	if m.sp != nil {
		m.recordWorkSpans(w)
	}
	if m.discovering {
		m.res.Processed++
		m.res.FMBusy += m.curCost
		m.res.Timeline = append(m.res.Timeline, TimelinePoint{Index: m.res.Processed, At: m.e.Now()})
	}
	m.handleWork(w)
	m.checkDone()
	m.processNext()
}

// handleWork interprets a processed work item.
func (m *Manager) handleWork(w work) {
	switch w.kind {
	case wStart:
		m.discoverSelf()
		m.drv.start()
	case wCompletion:
		m.applyCompletion(w.req, w.pi4)
		if m.sp != nil {
			m.sp.End(w.req.span, m.e.Now(), span.StatusOK)
		}
	case wTimeout:
		m.res.TimedOut++
		if m.tel != nil {
			m.tel.timeouts.Inc()
		}
		if !m.retryRequest(w.req) {
			m.applyFailure(w.req)
		}
	case wEvent:
		m.handleEvent(w.pi5)
	case wSync:
		if m.team != nil {
			m.team.onSync(m, w.sync)
		}
	case wFlush:
		m.applyAssimBatch()
	}
}

// discoverSelf reads the host endpoint's own configuration space — a
// local operation, the first step of every variant in the paper's
// flow charts ("Discovery starts on the host endpoint").
func (m *Manager) discoverSelf() {
	blocks, err := m.dev.Config.Read(asi.GeneralInfoOffset, asi.GeneralInfoBlocks)
	if err != nil {
		panic("core: host endpoint config space unreadable: " + err.Error())
	}
	gi, err := asi.ParseGeneralInfo(blocks)
	if err != nil {
		panic("core: host endpoint general info invalid: " + err.Error())
	}
	host := &Node{
		DSN:         m.dev.DSN,
		Type:        gi.Type,
		Ports:       gi.Ports,
		Path:        route.Path{},
		ArrivalPort: 0,
		PortKnown:   make([]bool, gi.Ports),
		PortActive:  make([]bool, gi.Ports),
		General:     gi,
	}
	for p := 0; p < gi.Ports; p++ {
		host.PortKnown[p] = true
		host.PortActive[p] = m.dev.PortActive(p)
	}
	host.Validated = m.e.Now()
	m.db.AddNode(host)
}

// applyCompletion folds a PI-4 completion into the database and notifies
// the driver.
func (m *Manager) applyCompletion(req *request, resp asi.PI4) {
	switch req.kind {
	case reqProbeGeneral:
		if resp.Op != asi.PI4ReadCompletionData {
			m.drv.onGeneral(req, nil, false, false)
			return
		}
		gi, err := asi.ParseGeneralInfo(resp.Data)
		if err != nil {
			m.drv.onGeneral(req, nil, false, false)
			return
		}
		n := &Node{
			DSN:         gi.DSN,
			Type:        gi.Type,
			Ports:       gi.Ports,
			Path:        req.path,
			ArrivalPort: int(resp.ArrivalPort),
			PortKnown:   make([]bool, gi.Ports),
			PortActive:  make([]bool, gi.Ports),
			General:     gi,
		}
		isNew := m.db.AddNode(n)
		if !isNew {
			n = m.db.Node(gi.DSN)
		}
		n.Validated = m.e.Now()
		m.db.AddLink(Link{A: req.srcDSN, APort: req.srcPort, B: gi.DSN, BPort: int(resp.ArrivalPort)})
		m.drv.onGeneral(req, n, isNew, true)
	case reqReadPort:
		n := m.db.Node(req.dsn)
		if n == nil {
			// The device left the database between request and completion
			// (partial-run pruning). The driver still must hear about the
			// request, or the serial variants wait on it forever.
			m.drv.onPort(req, nil, false)
			return
		}
		count := req.nports
		if count < 1 {
			count = 1
		}
		ok := resp.Op == asi.PI4ReadCompletionData
		if ok {
			n.Validated = m.e.Now()
		}
		for k := 0; k < count && req.port+k < n.Ports; k++ {
			port := req.port + k
			n.PortKnown[port] = true
			n.PortActive[port] = false
			if ok {
				lo := k * int(asi.PortInfoBlocks)
				hi := lo + int(asi.PortInfoBlocks)
				if hi <= len(resp.Data) {
					if info, err := asi.ParsePortInfo(resp.Data[lo:hi]); err == nil {
						n.PortActive[port] = info.Active
					}
				}
			}
		}
		m.drv.onPort(req, n, ok)
	case reqWrite:
		m.onWriteDone(req, resp.Op == asi.PI4WriteCompletion)
	case reqVerify:
		m.onVerify(req, resp, true)
	case reqClaim:
		if ch, ok := m.drv.(claimHandler); ok {
			won := resp.Op == asi.PI4ClaimCompletion && len(resp.Data) >= 2
			var owner uint32
			if won {
				owner = resp.Data[1]
			}
			ch.onClaim(req, owner, won)
		}
	}
}

// applyFailure handles a timed-out request like an error completion.
func (m *Manager) applyFailure(req *request) {
	if m.sp != nil {
		st := span.StatusTimeout
		if m.opt.MaxRetries > 0 {
			st = span.StatusGaveUp
		}
		m.sp.End(req.span, m.e.Now(), st)
	}
	switch req.kind {
	case reqProbeGeneral:
		m.drv.onGeneral(req, nil, false, false)
	case reqReadPort:
		n := m.db.Node(req.dsn)
		if n != nil {
			count := req.nports
			if count < 1 {
				count = 1
			}
			for k := 0; k < count && req.port+k < n.Ports; k++ {
				n.PortKnown[req.port+k] = true
				n.PortActive[req.port+k] = false
			}
		}
		// Notify even with a nil node: the driver accounts outstanding
		// port reads and would otherwise never finish.
		m.drv.onPort(req, n, false)
	case reqWrite:
		m.onWriteDone(req, false)
	case reqVerify:
		m.onVerify(req, asi.PI4{}, false)
	case reqClaim:
		if ch, ok := m.drv.(claimHandler); ok {
			ch.onClaim(req, 0, false)
		}
	}
}

// send transmits a PI-4 request along path and registers it as pending.
// It returns false when the path cannot be encoded (turn pool overflow) —
// the device is unreachable by source routing from this FM.
func (m *Manager) send(req *request, payload asi.PI4) bool {
	req.payload = payload
	if m.sp != nil {
		m.beginRequestSpan(req)
	}
	if !m.issue(req) {
		if m.sp != nil {
			m.sp.End(req.span, m.e.Now(), span.StatusError)
		}
		return false
	}
	return true
}

// issue puts one attempt of req on the wire: fresh tag, pending-table
// entry, timeout, inject. Retransmissions re-enter here with the stored
// payload and the same path.
func (m *Manager) issue(req *request) bool {
	hdr, err := route.Header(req.path, asi.PI4DeviceManagement)
	if err != nil {
		return false
	}
	req.tag = m.nextTag
	m.nextTag++
	payload := req.payload
	payload.Tag = req.tag
	pkt := &asi.Packet{Header: hdr, Payload: payload}
	m.pending[req.tag] = req
	m.res.PacketsSent++
	m.res.BytesSent += uint64(pkt.WireSize())
	window := m.opt.RequestTimeout
	if req.kind == reqVerify {
		window = m.opt.VerifyTimeout
	}
	req.timeout = m.e.AfterArg(window, m.timeoutFn, req)
	req.sentAt = m.e.Now()
	if m.sp != nil {
		m.beginAttemptSpan(req)
		// Stamp the request span into the packet so the fabric's
		// per-hop spans parent to it; completions carry it back.
		pkt.Span = uint64(req.span)
	}
	m.dev.Inject(pkt)
	return true
}

// onTimeout expires an outstanding request. A completion that arrived
// first cancels the timeout event outright, so firing here means the
// request is genuinely still pending (the tag lookup guards the final
// race: a completion processed in this very instant).
func (m *Manager) onTimeout(req *request) {
	r, ok := m.pending[req.tag]
	if !ok || r != req {
		return
	}
	delete(m.pending, req.tag)
	if m.sp != nil {
		m.sp.End(req.attemptSpan, m.e.Now(), span.StatusTimeout)
	}
	m.enqueue(work{kind: wTimeout, req: r})
}

// retryRequest decides what a timeout means for req: another attempt with
// backoff, or (attempts exhausted / retries disabled) a terminal failure.
// It reports whether a retry was armed.
func (m *Manager) retryRequest(req *request) bool {
	if req.attempt >= m.opt.MaxRetries {
		if m.opt.MaxRetries > 0 {
			m.res.GaveUp++
			if m.tel != nil {
				m.tel.giveups.Inc()
			}
		}
		return false
	}
	req.attempt++
	m.res.Retries++
	if m.tel != nil {
		m.tel.retries.Inc()
	}
	backoff := m.opt.RetryBackoff << (req.attempt - 1)
	if max := m.opt.RetryBackoff * 8; backoff > max {
		backoff = max
	}
	req.retryGen = m.runGen
	m.retryPending++
	if m.sp != nil {
		now := m.e.Now()
		m.sp.Complete(span.KindBackoff, req.span, now, now.Add(backoff), span.StatusOK)
		m.retryReqs[req] = struct{}{}
	}
	m.e.AfterArg(backoff, m.retryFn, req)
	return true
}

// onRetryBackoff re-issues a timed-out request once its backoff window
// elapses.
func (m *Manager) onRetryBackoff(req *request) {
	if m.runGen != req.retryGen {
		return // a new run started; this request belongs to the old one
	}
	m.retryPending--
	if m.sp != nil {
		delete(m.retryReqs, req)
	}
	if !m.issue(req) {
		// The path stopped encoding (cannot normally happen: the
		// original attempt encoded the same path); fail terminally.
		m.applyFailure(req)
	}
	m.checkDone()
}

// probe sends a general-information read through srcDSN's srcPort along
// path, to identify whatever device is attached there.
func (m *Manager) probe(path route.Path, srcDSN asi.DSN, srcPort int) bool {
	req := &request{kind: reqProbeGeneral, path: path, srcDSN: srcDSN, srcPort: srcPort}
	return m.send(req, asi.PI4{
		Op:     asi.PI4ReadRequest,
		Offset: asi.GeneralInfoOffset,
		Count:  asi.GeneralInfoBlocks,
	})
}

// portBatch returns the configured ports-per-read, clamped to what one
// PI-4 completion can carry.
func (m *Manager) portBatch() int {
	b := m.opt.PortReadBatch
	if b < 1 {
		b = 1
	}
	if max := asi.MaxReadBlocks / int(asi.PortInfoBlocks); b > max {
		b = max
	}
	return b
}

// readPortRange sends one (possibly batched) port read starting at port
// start. It reports whether a request went out and the first unread port.
func (m *Manager) readPortRange(n *Node, start int) (sent bool, next int) {
	count := m.portBatch()
	if start+count > n.Ports {
		count = n.Ports - start
	}
	req := &request{kind: reqReadPort, path: n.Path, dsn: n.DSN, port: start, nports: count}
	ok := m.send(req, asi.PI4{
		Op:     asi.PI4ReadRequest,
		Offset: asi.PortInfoOffset(start),
		Count:  uint8(count) * asi.PortInfoBlocks,
	})
	return ok, start + count
}

// readAllPorts issues attribute reads covering every port of n, batched
// per the options, and returns the number of requests sent.
func (m *Manager) readAllPorts(n *Node) int {
	sent := 0
	for start := 0; start < n.Ports; {
		var ok bool
		ok, start = m.readPortRange(n, start)
		if ok {
			sent++
		}
	}
	return sent
}

// probeSpec describes an exploration step: what lies beyond a discovered
// switch port.
type probeSpec struct {
	path    route.Path
	srcDSN  asi.DSN
	srcPort int
}

// probesFrom enumerates the exploration steps a fully port-read device
// enables: one probe per active port whose link the FM has not yet
// recorded. Endpoints never forward, so only switches (and the host
// endpoint at start) spawn probes.
func (m *Manager) probesFrom(n *Node) []probeSpec {
	if n.Type != asi.DeviceSwitch {
		return nil
	}
	var out []probeSpec
	for p := 0; p < n.Ports; p++ {
		out = append(out, m.probesFromPort(n, p)...)
	}
	return out
}

// probesFromPort is the single-port variant of probesFrom, used by the
// parallel driver to expand each active port the moment its attribute
// read returns.
func (m *Manager) probesFromPort(n *Node, port int) []probeSpec {
	if n.Type != asi.DeviceSwitch {
		return nil
	}
	if !n.PortKnown[port] || !n.PortActive[port] {
		return nil
	}
	if !m.opt.NoProbeMemo {
		if _, known := m.db.LinkAt(n.DSN, port); known {
			return nil // arrival link, or a cycle link already crossed
		}
	}
	return []probeSpec{{
		path:    route.Extend(n.Path, route.Hop{Ports: n.Ports, In: n.ArrivalPort, Out: port}),
		srcDSN:  n.DSN,
		srcPort: port,
	}}
}

// initialProbe explores the host endpoint's single port.
func (m *Manager) initialProbe() bool {
	host := m.db.Node(m.dev.DSN)
	if host == nil || !host.PortActive[0] {
		return false
	}
	return m.probe(route.Path{}, m.dev.DSN, 0)
}

// StartDiscovery begins a full discovery run: the database is discarded
// and rebuilt, per the paper's assumption. If a run is already in
// progress the request is absorbed (the running discovery will already
// observe the fabric's current state or be re-armed by PI-5 dirtiness).
func (m *Manager) StartDiscovery() {
	if m.discovering {
		m.dirty = true
		return
	}
	m.beginRun()
	m.enqueue(work{kind: wStart})
}

// beginRun resets per-run state.
func (m *Manager) beginRun() {
	m.discovering = true
	m.partialRun = false
	m.dirty = false
	m.dropAssimPending()
	m.prevDB = m.db
	m.db = NewDB(m.dev.DSN)
	m.drv = m.newDriver()
	for _, r := range m.pending {
		m.e.Cancel(r.timeout)
	}
	if m.sp != nil {
		m.cancelRequestSpans()
		m.sp.End(m.runSpan, m.e.Now(), span.StatusCanceled)
		m.runSpan = m.beginRunSpan(m.opt.Algorithm.String())
	}
	m.pending = make(map[uint32]*request)
	// Orphan any armed retry timers: their closures check runGen.
	m.runGen++
	m.retryPending = 0
	m.res = Result{Algorithm: m.opt.Algorithm, Start: m.e.Now()}
}

// checkDone finishes the run when the driver is idle and nothing is in
// flight or queued.
func (m *Manager) checkDone() {
	if !m.discovering || !m.drv.finished() || len(m.pending) != 0 || m.retryPending > 0 {
		return
	}
	for i := 0; i < m.queue.Len(); i++ {
		if m.queue.At(i).kind != wEvent {
			return
		}
	}
	m.finishRun()
}

// finishRun closes out measurements and fires the completion callback.
func (m *Manager) finishRun() {
	m.discovering = false
	m.partialRun = false
	if m.sp != nil {
		m.sp.End(m.runSpan, m.e.Now(), span.StatusOK)
		m.runSpan = 0
	}
	m.res.End = m.e.Now()
	m.res.Duration = m.res.End.Sub(m.res.Start)
	m.res.Devices = m.db.NumNodes()
	m.res.Switches = m.db.NumSwitches()
	m.res.Links = m.db.NumLinks()
	if m.prevDB != nil && m.prevDB.NumNodes() > 0 {
		d := DiffDBs(m.prevDB, m.db)
		m.res.Changes = &d
	}
	r := m.res
	m.last = &r
	if m.OnDiscoveryComplete != nil {
		m.OnDiscoveryComplete(r)
	}
	if m.dirty {
		m.dirty = false
		m.scheduleDiscovery()
	}
}

// handleEvent implements change assimilation: a PI-5 report triggers a
// (coalesced) rediscovery, or a localized update under the Partial
// algorithm.
func (m *Manager) handleEvent(ev asi.PI5) {
	if m.opt.Algorithm == Partial {
		m.handleEventPartial(ev)
		return
	}
	if m.discovering {
		// Reports arriving mid-run belong to the change being
		// assimilated (or force one more run via the dirty flag).
		m.dirty = true
		return
	}
	m.scheduleDiscovery()
}

// scheduleDiscovery arms a coalesced discovery start so a burst of PI-5
// reports for one change triggers a single run.
func (m *Manager) scheduleDiscovery() {
	if m.coalesced {
		return
	}
	m.coalesced = true
	m.e.After(m.opt.CoalesceDelay, func(*sim.Engine) {
		m.coalesced = false
		m.StartDiscovery()
	})
}
