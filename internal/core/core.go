package core
