package core

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
)

// setupOpts is setup with full manager options.
func setupOpts(t *testing.T, tp *topo.Topology, opt Options) (*sim.Engine, *fabric.Fabric, *Manager) {
	t.Helper()
	e := sim.NewEngine()
	f, err := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(f, f.Device(tp.Endpoints()[0]), opt)
	return e, f, m
}

func TestBatchedPortReadsStillCorrect(t *testing.T) {
	for _, batch := range []int{1, 2, 4, 9 /* clamped to 4 */} {
		for _, kind := range PaperKinds() {
			tp := topo.Torus(4, 4)
			e, f, m := setupOpts(t, tp, Options{Algorithm: kind, PortReadBatch: batch})
			res := runDiscovery(t, e, m)
			wantDev, wantLinks := groundTruth(f, m.Device().ID)
			if res.Devices != wantDev || res.Links != wantLinks {
				t.Errorf("%v batch=%d: %d devices / %d links, want %d / %d",
					kind, batch, res.Devices, res.Links, wantDev, wantLinks)
			}
		}
	}
}

func TestBatchedPortReadsSaveRequests(t *testing.T) {
	run := func(batch int) uint64 {
		tp := topo.Mesh(6, 6)
		e, _, m := setupOpts(t, tp, Options{Algorithm: Parallel, PortReadBatch: batch})
		return runDiscovery(t, e, m).PacketsSent
	}
	single, batched := run(1), run(4)
	if batched >= single {
		t.Errorf("batch=4 sent %d packets, batch=1 sent %d — no saving", batched, single)
	}
	// Port reads dominate: expect well under 2/3 of the single-read count.
	if float64(batched) > 0.67*float64(single) {
		t.Errorf("batch=4 saved too little: %d vs %d", batched, single)
	}
}

func TestBatchedPortReadsFasterDiscovery(t *testing.T) {
	run := func(batch int) sim.Duration {
		tp := topo.Mesh(6, 6)
		e, _, m := setupOpts(t, tp, Options{Algorithm: SerialPacket, PortReadBatch: batch})
		return runDiscovery(t, e, m).Duration
	}
	if run(4) >= run(1) {
		t.Error("batched reads did not speed up Serial Packet discovery")
	}
}

func TestNoProbeMemoStillCorrect(t *testing.T) {
	for _, kind := range PaperKinds() {
		tp := topo.Torus(4, 4)
		e, f, m := setupOpts(t, tp, Options{Algorithm: kind, NoProbeMemo: true})
		res := runDiscovery(t, e, m)
		wantDev, wantLinks := groundTruth(f, m.Device().ID)
		if res.Devices != wantDev || res.Links != wantLinks {
			t.Errorf("%v no-memo: %d devices / %d links, want %d / %d",
				kind, res.Devices, res.Links, wantDev, wantLinks)
		}
	}
}

func TestNoProbeMemoCostsExtraProbes(t *testing.T) {
	run := func(noMemo bool) uint64 {
		tp := topo.Torus(6, 6) // cycles everywhere: the memo matters
		e, _, m := setupOpts(t, tp, Options{Algorithm: Parallel, NoProbeMemo: noMemo})
		return runDiscovery(t, e, m).PacketsSent
	}
	withMemo, without := run(false), run(true)
	if without <= withMemo {
		t.Errorf("no-memo sent %d packets, memo sent %d — expected extra duplicates", without, withMemo)
	}
}

func TestBatchedReadsWithChangeAssimilation(t *testing.T) {
	tp := topo.Mesh(4, 4)
	e, f, m := setupOpts(t, tp, Options{Algorithm: Parallel, PortReadBatch: 4})
	runDiscovery(t, e, m)
	m.DistributeEventRoutes(nil)
	e.Run()
	var res *Result
	m.OnDiscoveryComplete = func(r Result) { res = &r }
	if err := f.SetDeviceDown(5, false); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if res == nil {
		t.Fatal("assimilation did not run")
	}
	wantDev, wantLinks := groundTruth(f, m.Device().ID)
	if res.Devices != wantDev || res.Links != wantLinks {
		t.Errorf("batched assimilation: %d/%d, want %d/%d", res.Devices, res.Links, wantDev, wantLinks)
	}
}
