package core

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
)

// partialSetup boots a fabric, runs the initial full discovery under the
// Partial manager, and programs event routes so devices can report.
func partialSetup(t *testing.T, tp *topo.Topology) (*sim.Engine, *fabric.Fabric, *Manager) {
	t.Helper()
	e := sim.NewEngine()
	f, err := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(f, f.Device(tp.Endpoints()[0]), Options{Algorithm: Partial})
	runDiscovery(t, e, m)
	m.DistributeEventRoutes(func(d DistResult) {
		if d.Failures != 0 {
			t.Fatalf("event-route distribution failures: %d", d.Failures)
		}
	})
	e.Run()
	return e, f, m
}

// dbMatchesGroundTruth checks the database against the live fabric.
func dbMatchesGroundTruth(t *testing.T, f *fabric.Fabric, m *Manager, context string) {
	t.Helper()
	wantDev, wantLinks := groundTruth(f, m.Device().ID)
	if m.DB().NumNodes() != wantDev {
		t.Errorf("%s: database has %d devices, fabric has %d", context, m.DB().NumNodes(), wantDev)
	}
	if m.DB().NumLinks() != wantLinks {
		t.Errorf("%s: database has %d links, fabric has %d", context, m.DB().NumLinks(), wantLinks)
	}
}

func TestPartialAssimilatesCornerRemoval(t *testing.T) {
	e, f, m := partialSetup(t, topo.Mesh(3, 3))
	var results []Result
	m.OnDiscoveryComplete = func(r Result) { results = append(results, r) }

	if err := f.SetDeviceDown(8, false); err != nil { // sw(2,2), corner
		t.Fatal(err)
	}
	e.Run()

	dbMatchesGroundTruth(t, f, m, "after corner removal")
	// The corner switch and its endpoint must be gone.
	if m.DB().NumNodes() != 16 {
		t.Errorf("database has %d devices, want 16", m.DB().NumNodes())
	}
	if len(results) == 0 {
		t.Error("partial assimilation produced no result")
	}
}

func TestPartialAssimilatesCentreRemovalWithReroutes(t *testing.T) {
	e, f, m := partialSetup(t, topo.Mesh(3, 3))
	if err := f.SetDeviceDown(4, false); err != nil { // sw(1,1): paths through it must reroute
		t.Fatal(err)
	}
	e.Run()
	dbMatchesGroundTruth(t, f, m, "after centre removal")
	// Every surviving device's stored path must still be BFS-reachable.
	for _, n := range m.DB().Nodes() {
		if n.DSN == m.Device().DSN {
			continue
		}
		if p, _ := m.DB().PathTo(n.DSN); p == nil {
			t.Errorf("device %v unreachable in repaired database", n.DSN)
		}
	}
}

func TestPartialAssimilatesAddition(t *testing.T) {
	tp := topo.Mesh(3, 3)
	e := sim.NewEngine()
	f, err := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	// Boot with a corner switch down.
	if err := f.SetDeviceDown(8, true); err != nil {
		t.Fatal(err)
	}
	m := NewManager(f, f.Device(tp.Endpoints()[0]), Options{Algorithm: Partial})
	runDiscovery(t, e, m)
	m.DistributeEventRoutes(nil)
	e.Run()
	if m.DB().NumNodes() != 16 {
		t.Fatalf("baseline has %d devices", m.DB().NumNodes())
	}

	if err := f.SetDeviceUp(8, false); err != nil {
		t.Fatal(err)
	}
	e.Run()
	dbMatchesGroundTruth(t, f, m, "after addition")
	if m.DB().NumNodes() != 18 {
		t.Errorf("database has %d devices after addition, want 18", m.DB().NumNodes())
	}
}

func TestPartialCheaperThanFullRediscovery(t *testing.T) {
	// The point of the extension: assimilating a local change costs far
	// fewer packets than a full rediscovery.
	fullPackets := func() uint64 {
		tp := topo.Mesh(6, 6)
		e, f, m := setup(t, tp, Parallel)
		runDiscovery(t, e, m)
		m.DistributeEventRoutes(nil)
		e.Run()
		var res *Result
		m.OnDiscoveryComplete = func(r Result) { res = &r }
		if err := f.SetDeviceDown(35, false); err != nil { // corner sw(5,5)
			t.Fatal(err)
		}
		e.Run()
		if res == nil {
			t.Fatal("full rediscovery did not run")
		}
		return res.PacketsSent
	}()

	partialPackets := func() uint64 {
		e, f, m := partialSetup(t, topo.Mesh(6, 6))
		var res *Result
		m.OnDiscoveryComplete = func(r Result) { res = &r }
		if err := f.SetDeviceDown(35, false); err != nil {
			t.Fatal(err)
		}
		e.Run()
		if res == nil {
			t.Fatal("partial assimilation did not run")
		}
		return res.PacketsSent
	}()

	if partialPackets*5 > fullPackets {
		t.Errorf("partial used %d packets vs full %d — expected at least 5x saving",
			partialPackets, fullPackets)
	}
}

func TestPartialStaleSequenceIgnored(t *testing.T) {
	e, f, m := partialSetup(t, topo.Mesh(3, 3))
	if err := f.SetDeviceDown(8, false); err != nil {
		t.Fatal(err)
	}
	e.Run()
	before := m.DB().NumNodes()
	// Replay the same event sequence numbers: nothing should change.
	runs := 0
	m.OnDiscoveryComplete = func(Result) { runs++ }
	for _, d := range f.Devices() {
		_ = d
	}
	e.Run()
	if m.DB().NumNodes() != before || runs != 0 {
		t.Errorf("stale events changed state: %d devices, %d runs", m.DB().NumNodes(), runs)
	}
}

func TestPartialFallsBackToFullWithoutBaseline(t *testing.T) {
	// A Partial manager that never ran a discovery must fall back to a
	// full run when the first event arrives.
	tp := topo.Mesh(3, 3)
	e := sim.NewEngine()
	f, err := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(f, f.Device(tp.Endpoints()[0]), Options{Algorithm: Partial})
	// Hand-program one switch's event route so it can report without
	// prior discovery.
	runDiscovery(t, e, m) // bootstrap: discover
	m.DistributeEventRoutes(nil)
	e.Run()
	// Wipe the manager's database to simulate a cold standby taking over.
	m.db = NewDB(m.dev.DSN)
	m.partialSeq = nil
	var res *Result
	m.OnDiscoveryComplete = func(r Result) { res = &r }
	if err := f.SetDeviceDown(4, false); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if res == nil {
		t.Fatal("no fallback discovery ran")
	}
	dbMatchesGroundTruth(t, f, m, "after fallback full discovery")
}
