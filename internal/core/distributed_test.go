package core

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
)

// teamSetup builds a fabric with k distributed managers on spread-out
// endpoints, runs one single-FM bootstrap discovery on the primary's
// fabric position (to prepare report routes), and returns the team.
func teamSetup(t *testing.T, tp *topo.Topology, k int) (*sim.Engine, *fabric.Fabric, *Team) {
	t.Helper()
	e := sim.NewEngine()
	f, err := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	eps := tp.Endpoints()
	if k > len(eps) {
		t.Fatal("team larger than endpoint count")
	}
	members := make([]*Manager, k)
	for i := 0; i < k; i++ {
		// Spread members across the fabric.
		ep := eps[i*len(eps)/k]
		members[i] = NewManager(f, f.Device(ep), Options{Algorithm: Distributed})
	}
	team := NewTeam(members)
	// Bootstrap: one round with only the primary effectively discovering
	// (standalone distributed run) to obtain the paths for Prepare.
	var boot *Result
	members[0].OnDiscoveryComplete = func(r Result) { boot = &r }
	members[0].StartDiscovery()
	e.Run()
	if boot == nil {
		t.Fatal("bootstrap discovery did not finish")
	}
	team.RestoreMemberCallbacks()
	team.Prepare()
	return e, f, team
}

func TestDistributedDiscoversFullTopology(t *testing.T) {
	tp := topo.Mesh(6, 6)
	e, _, team := teamSetup(t, tp, 3)
	var res *TeamResult
	team.OnComplete = func(r TeamResult) { res = &r }
	team.StartDiscovery()
	e.Run()
	if res == nil {
		t.Fatal("distributed round did not complete")
	}
	if res.Devices != 72 {
		t.Errorf("merged %d devices, want 72", res.Devices)
	}
	if res.Links != len(tp.Links) {
		t.Errorf("merged %d links, want %d", res.Links, len(tp.Links))
	}
	if res.Missing != 0 {
		t.Errorf("%d reports missing", res.Missing)
	}
	if res.SyncPackets == 0 {
		t.Error("no sync traffic recorded")
	}
	if len(res.PerMember) != 3 {
		t.Errorf("%d member results", len(res.PerMember))
	}
}

func TestDistributedRegionsPartitionPortReads(t *testing.T) {
	// Each member's local packet count must be well under a full solo
	// run: claims partition the port reads.
	tp := topo.Mesh(6, 6)
	e, _, soloM := setup(t, tp, Parallel)
	solo := runDiscovery(t, e, soloM)

	e2, _, team := teamSetup(t, tp, 3)
	var res *TeamResult
	team.OnComplete = func(r TeamResult) { res = &r }
	team.StartDiscovery()
	e2.Run()
	if res == nil {
		t.Fatal("no result")
	}
	for i, r := range res.PerMember {
		if r.PacketsSent >= solo.PacketsSent {
			t.Errorf("member %d sent %d packets, solo run sent %d — no partitioning",
				i, r.PacketsSent, solo.PacketsSent)
		}
	}
}

func TestDistributedFasterThanSoloParallel(t *testing.T) {
	tp := topo.Torus(8, 8)
	e, _, soloM := setup(t, tp, Parallel)
	solo := runDiscovery(t, e, soloM)

	e2, _, team := teamSetup(t, tp, 4)
	var res *TeamResult
	team.OnComplete = func(r TeamResult) { res = &r }
	team.StartDiscovery()
	e2.Run()
	if res == nil {
		t.Fatal("no result")
	}
	if res.Duration >= solo.Duration {
		t.Errorf("distributed (%v) not faster than solo Parallel (%v)", res.Duration, solo.Duration)
	}
}

func TestDistributedSingleMemberDegeneratesToParallel(t *testing.T) {
	tp := topo.Mesh(3, 3)
	e, _, team := teamSetup(t, tp, 1)
	var res *TeamResult
	team.OnComplete = func(r TeamResult) { res = &r }
	team.StartDiscovery()
	e.Run()
	if res == nil || res.Devices != 18 || res.SyncPackets != 0 {
		t.Fatalf("single-member round: %+v", res)
	}
}

func TestDistributedAfterChange(t *testing.T) {
	tp := topo.Mesh(4, 4)
	e, f, team := teamSetup(t, tp, 2)
	// First full round.
	ran := 0
	team.OnComplete = func(r TeamResult) { ran++ }
	team.StartDiscovery()
	e.Run()
	// Remove a switch quietly (not the report path's anchor) and re-run.
	if err := f.SetDeviceDown(10, true); err != nil {
		t.Fatal(err)
	}
	var res *TeamResult
	team.OnComplete = func(r TeamResult) { res = &r }
	team.StartDiscovery()
	e.Run()
	if res == nil {
		t.Fatal("second round did not finish")
	}
	primary := team.Primary()
	wantDev, wantLinks := groundTruth(f, primary.Device().ID)
	if res.Devices != wantDev || res.Links != wantLinks {
		t.Errorf("merged %d devices / %d links, want %d / %d",
			res.Devices, res.Links, wantDev, wantLinks)
	}
}

func TestDistributedSurvivesLostReportRoute(t *testing.T) {
	// Cut a member's report path mid-round: the primary must complete
	// after the sync timeout with the report counted missing (or the
	// member unreachable entirely).
	tp := topo.Mesh(4, 4)
	e, f, team := teamSetup(t, tp, 2)
	// Member 1 sits at the far corner; removing its host switch strands
	// it entirely.
	member := team.members[1]
	host, _, _ := f.Topo.Peer(member.Device().ID, 0)
	if err := f.SetDeviceDown(host, true); err != nil {
		t.Fatal(err)
	}
	var res *TeamResult
	team.OnComplete = func(r TeamResult) { res = &r }
	team.StartDiscovery()
	e.Run()
	if res == nil {
		t.Fatal("round hung on missing report")
	}
	if res.Missing != 1 {
		t.Errorf("Missing = %d, want 1", res.Missing)
	}
	// The primary still discovered its own region.
	if res.Devices == 0 {
		t.Error("primary discovered nothing")
	}
}

func TestMergedPathsValid(t *testing.T) {
	tp := topo.Torus(4, 4)
	e, _, team := teamSetup(t, tp, 2)
	var res *TeamResult
	team.OnComplete = func(r TeamResult) { res = &r }
	team.StartDiscovery()
	e.Run()
	if res == nil {
		t.Fatal("no result")
	}
	p := team.Primary()
	for _, n := range p.DB().Nodes() {
		if n.DSN == p.Device().DSN {
			continue
		}
		if got, _ := p.DB().PathTo(n.DSN); got == nil {
			t.Errorf("merged node %v has no primary-relative path", n.DSN)
		}
		if n.Path == nil {
			t.Errorf("merged node %v kept a nil path", n.DSN)
		}
	}
}

func TestNewTeamValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty team did not panic")
		}
	}()
	NewTeam(nil)
}

func TestTeamRejectsWrongAlgorithm(t *testing.T) {
	tp := topo.Mesh(3, 3)
	e := sim.NewEngine()
	f, _ := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(1))
	m := NewManager(f, f.Device(tp.Endpoints()[0]), Options{Algorithm: Parallel})
	defer func() {
		if recover() == nil {
			t.Error("non-distributed member did not panic")
		}
	}()
	NewTeam([]*Manager{m})
}
