package core

import (
	"repro/internal/asi"
	"repro/internal/route"
	"repro/internal/sim"
)

// Fabric management failover (paper section 2): "If the primary FM fails,
// the secondary one takes over." The primary streams heartbeat packets to
// the secondary along a source route from its topology database; the
// secondary arms a watchdog and, after a configurable number of missed
// beats, promotes itself — rediscovering the fabric and reprogramming the
// event routes so devices report to it from then on.

// Heartbeater is the primary-side beacon generator.
type Heartbeater struct {
	m        *Manager
	peer     asi.DSN
	interval sim.Duration
	seq      uint32
	stopped  bool
	// lastPath caches the most recent resolvable route: during a
	// rediscovery the database is partial, and dropping beats for its
	// whole duration would trip the secondary's watchdog spuriously.
	lastPath route.Path
	// Sent counts transmitted beacons.
	Sent uint64
}

// StartHeartbeats begins streaming liveness beacons to the secondary FM.
// The path to the peer is resolved from the topology database on every
// beat, so heartbeats survive reroutes as long as the peer stays
// reachable. interval <= 0 selects 500us.
func (m *Manager) StartHeartbeats(peer asi.DSN, interval sim.Duration) *Heartbeater {
	if interval <= 0 {
		interval = 500 * sim.Microsecond
	}
	h := &Heartbeater{m: m, peer: peer, interval: interval}
	m.beats = h
	h.tick()
	return h
}

// Stop ends the beacon stream.
func (h *Heartbeater) Stop() { h.stopped = true }

func (h *Heartbeater) tick() {
	// A dead endpoint's management software is gone with it; the beacon
	// stream must not keep the event queue alive either.
	if h.stopped || !h.m.dev.Alive() {
		return
	}
	h.send()
	h.m.e.After(h.interval, func(*sim.Engine) { h.tick() })
}

func (h *Heartbeater) send() {
	path := h.m.db.PathBetween(h.m.dev.DSN, h.peer)
	if path == nil {
		path = h.lastPath
	} else {
		h.lastPath = path
	}
	if path == nil {
		return // peer never reachable yet; keep trying
	}
	hdr, err := route.Header(path, asi.PIHeartbeat)
	if err != nil {
		return
	}
	h.seq++
	h.Sent++
	h.m.dev.Inject(&asi.Packet{Header: hdr, Payload: asi.Heartbeat{From: h.m.dev.DSN, Seq: h.seq}})
}

// Watchdog is the secondary-side failure detector.
type Watchdog struct {
	m       *Manager
	window  sim.Duration
	timer   sim.EventID
	armed   bool
	fired   bool
	stopped bool
	// Received counts beacons observed.
	Received uint64
	// OnTakeover runs when the watchdog declares the primary dead,
	// before the automatic rediscovery starts.
	OnTakeover func()
}

// WatchPrimary arms the secondary's failure detector: if no heartbeat
// arrives for misses*interval, the secondary takes over — it runs a
// discovery and redistributes event routes so the fabric reports to it.
// interval <= 0 selects 500us; misses <= 0 selects 3.
func (m *Manager) WatchPrimary(interval sim.Duration, misses int, onTakeover func()) *Watchdog {
	if interval <= 0 {
		interval = 500 * sim.Microsecond
	}
	if misses <= 0 {
		misses = 3
	}
	w := &Watchdog{
		m:          m,
		window:     interval * sim.Duration(misses),
		OnTakeover: onTakeover,
	}
	m.watchdog = w
	w.rearm()
	return w
}

// Stop disarms the watchdog (e.g. on an orderly primary shutdown).
func (w *Watchdog) Stop() {
	w.stopped = true
	if w.armed {
		w.m.e.Cancel(w.timer)
		w.armed = false
	}
}

// TookOver reports whether the watchdog has promoted its manager.
func (w *Watchdog) TookOver() bool { return w.fired }

// feed resets the failure window; called for every received heartbeat.
func (w *Watchdog) feed() {
	if w.stopped || w.fired {
		return
	}
	w.Received++
	w.rearm()
}

func (w *Watchdog) rearm() {
	if w.armed {
		w.m.e.Cancel(w.timer)
	}
	w.armed = true
	w.timer = w.m.e.After(w.window, func(*sim.Engine) {
		w.armed = false
		w.takeover()
	})
}

// takeover promotes the secondary: it assumes the primary role,
// rediscovers the fabric, and reprograms every device's event route
// toward itself.
func (w *Watchdog) takeover() {
	if w.stopped || w.fired || !w.m.dev.Alive() {
		return
	}
	w.fired = true
	if w.OnTakeover != nil {
		w.OnTakeover()
	}
	m := w.m
	prev := m.OnDiscoveryComplete
	m.OnDiscoveryComplete = func(r Result) {
		m.OnDiscoveryComplete = prev
		m.DistributeEventRoutes(nil)
		if prev != nil {
			prev(r)
		}
	}
	m.StartDiscovery()
}
