package core

import "repro/internal/asi"

// serialDriver implements both serialized discovery variants of the
// paper's section 3 (Fig. 2 flow chart):
//
//   - Serial Packet (perDeviceParallel = false): the ASI-SIG proposal.
//     There is exactly one PI-4 request in the fabric at any moment; the
//     FM explores devices breadth-first from an exploration queue and
//     reads the current device's ports one at a time.
//
//   - Serial Device (perDeviceParallel = true): the paper's improvement.
//     Devices are still discovered serially from the queue, but once a
//     device's general information is known, all of its port-attribute
//     reads are injected concurrently. While those completions stream
//     back, the FM pipeline stays busy — the varying slope of the
//     Serial Device series in Fig. 7(a).
type serialDriver struct {
	m                 *Manager
	perDeviceParallel bool

	// queue is the breadth-first device exploration queue: probes to
	// send, one at a time.
	queue []probeSpec

	// cur is the device whose ports are being read, with the ports left
	// to read (Serial Packet) or outstanding (Serial Device).
	cur       *Node
	nextPort  int
	portsLeft int

	idle bool // true when no probe or port read is outstanding
}

func (d *serialDriver) start() {
	d.idle = true
	host := d.m.db.Node(d.m.dev.DSN)
	if host == nil || !host.PortActive[0] {
		return // isolated FM: discovery is just the host endpoint
	}
	d.queue = append(d.queue, probeSpec{path: nil, srcDSN: host.DSN, srcPort: 0})
	d.advance()
}

// advance pops the next device probe off the exploration queue.
func (d *serialDriver) advance() {
	d.idle = true
	for len(d.queue) > 0 {
		p := d.queue[0]
		d.queue = d.queue[1:]
		// The link may have been recorded since this probe was queued
		// (alternate path through a cycle); re-check to avoid a
		// redundant read. The ASI-SIG flow chart performs the
		// equivalent "already discovered?" test on the DSN response;
		// skipping here only drops probes whose answer is already
		// recorded link-for-link.
		if !d.m.opt.NoProbeMemo {
			if _, known := d.m.db.LinkAt(p.srcDSN, p.srcPort); known {
				continue
			}
		}
		if d.m.probe(p.path, p.srcDSN, p.srcPort) {
			d.idle = false
			return
		}
	}
}

func (d *serialDriver) onGeneral(req *request, n *Node, isNew, ok bool) {
	if !ok || !isNew {
		// Error, timeout, or a device already discovered through an
		// alternate path: update topology (done by the Manager) and
		// proceed to the next device in the queue (Fig. 2).
		d.advance()
		return
	}
	d.cur = n
	d.nextPort = 0
	if d.perDeviceParallel {
		// Serial Device: all port reads at once.
		d.portsLeft = d.m.readAllPorts(n)
		if d.portsLeft == 0 {
			d.deviceDone()
		}
		return
	}
	// Serial Packet: one port read (batch) at a time.
	d.sendNextPortRead()
}

func (d *serialDriver) sendNextPortRead() {
	for d.nextPort < d.cur.Ports {
		var sent bool
		sent, d.nextPort = d.m.readPortRange(d.cur, d.nextPort)
		if sent {
			return
		}
	}
	d.deviceDone()
}

func (d *serialDriver) onPort(req *request, n *Node, ok bool) {
	if !d.perDeviceParallel {
		// Serial Packet never tracks outstanding reads in portsLeft (it
		// has exactly one in flight); decrementing here would drive the
		// counter negative.
		d.sendNextPortRead()
		return
	}
	if d.portsLeft > 0 {
		d.portsLeft--
	}
	if d.portsLeft == 0 {
		d.deviceDone()
	}
}

// deviceDone finishes the current device: enqueue exploration of every
// active port and move on.
func (d *serialDriver) deviceDone() {
	if d.cur != nil && d.cur.Type == asi.DeviceSwitch {
		d.queue = append(d.queue, d.m.probesFrom(d.cur)...)
	}
	d.cur = nil
	d.advance()
}

func (d *serialDriver) finished() bool {
	return d.idle && len(d.queue) == 0
}
