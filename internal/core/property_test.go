// Property tests live in package core_test (not core) so they can use
// the chaos harness's exported oracle: chaos imports core, so an
// internal test file could not import chaos back without a cycle.
package core_test

import (
	"testing"
	"testing/quick"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
)

// The central correctness property of the whole system: over arbitrary
// connected topologies, every discovery algorithm reconstructs exactly
// the alive reachable fabric — same devices, same links — regardless of
// cycles, parallel links, or irregular degree. The ground-truth
// comparison itself is chaos.CheckConverged, shared with the chaos
// harness's executor so there is exactly one definition of "correct".

func discoveryMatchesGroundTruth(t *testing.T, tp *topo.Topology, kind core.Kind, opt core.Options) bool {
	t.Helper()
	e := sim.NewEngine()
	f, err := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(99))
	if err != nil {
		return false
	}
	opt.Algorithm = kind
	m := core.NewManager(f, f.Device(tp.Endpoints()[0]), opt)
	done := false
	var res core.Result
	m.OnDiscoveryComplete = func(r core.Result) { res, done = r, true }
	m.StartDiscovery()
	e.Run()
	if !done {
		t.Logf("%s/%v: discovery hung", tp.Name, kind)
		return false
	}
	if err := chaos.CheckConverged(f, m, res); err != nil {
		t.Logf("%s/%v: %v", tp.Name, kind, err)
		return false
	}
	return true
}

func TestDiscoveryCorrectOnRandomTopologies(t *testing.T) {
	f := func(seed uint64, n, extra uint8) bool {
		nsw := int(n%18) + 2
		tp := topo.Random(nsw, int(extra%24), sim.NewRNG(seed))
		for _, kind := range core.PaperKinds() {
			if !discoveryMatchesGroundTruth(t, tp, kind, core.Options{}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDiscoveryCorrectOnRandomTopologiesWithAblations(t *testing.T) {
	f := func(seed uint64, n uint8, batch uint8, noMemo bool) bool {
		nsw := int(n%12) + 2
		tp := topo.Random(nsw, int(seed%16), sim.NewRNG(seed))
		opt := core.Options{PortReadBatch: int(batch%4) + 1, NoProbeMemo: noMemo}
		return discoveryMatchesGroundTruth(t, tp, core.Parallel, opt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestAssimilationCorrectOnRandomTopologies(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		nsw := int(n%10) + 3
		tp := topo.Random(nsw, int(seed%8), sim.NewRNG(seed))
		e := sim.NewEngine()
		fab, err := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(seed))
		if err != nil {
			return false
		}
		m := core.NewManager(fab, fab.Device(tp.Endpoints()[0]), core.Options{Algorithm: core.Parallel})
		done := 0
		m.OnDiscoveryComplete = func(core.Result) { done++ }
		m.StartDiscovery()
		e.Run()
		if done != 1 {
			return false
		}
		m.DistributeEventRoutes(nil)
		e.Run()
		// Remove a random non-host switch loudly.
		hostSwitch, _, _ := tp.Peer(tp.Endpoints()[0], 0)
		rng := sim.NewRNG(seed + 1)
		var victim topo.NodeID
		for {
			victim = fab.RandomSwitch(rng)
			if victim != hostSwitch {
				break
			}
		}
		if err := fab.SetDeviceDown(victim, false); err != nil {
			return false
		}
		e.Run()
		// Either the change was assimilated (usual case) or every
		// reporter was stranded (possible in sparse random graphs); in
		// the latter case the old DB is legitimately stale and the run
		// is vacuous.
		if done < 2 {
			return true
		}
		wantDev, wantLinks := chaos.GroundTruth(fab, m.Device().ID)
		return m.DB().NumNodes() == wantDev && m.DB().NumLinks() == wantLinks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
