package core

import (
	"testing"

	"repro/internal/asi"
	"repro/internal/fabric"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/topo"
)

func TestDistributePathTablesWritesAllEntries(t *testing.T) {
	tp := topo.Mesh(3, 3)
	e, f, m := setup(t, tp, Parallel)
	runDiscovery(t, e, m)
	var d *DistResult
	m.DistributePathTables(func(r DistResult) { d = &r })
	e.Run()
	if d == nil {
		t.Fatal("distribution did not complete")
	}
	if d.Failures != 0 {
		t.Errorf("failures: %d", d.Failures)
	}
	// 8 remote endpoints each get 8 entries over the fabric; the host's
	// 8 entries are written locally (not counted as writes).
	if d.Writes != 64 {
		t.Errorf("writes = %d, want 64", d.Writes)
	}

	// Every endpoint's table must now resolve every other endpoint.
	for _, id := range tp.Endpoints() {
		src := f.Device(id)
		for _, id2 := range tp.Endpoints() {
			if id == id2 {
				continue
			}
			dst := f.Device(id2)
			if _, _, ok := src.LookupPath(dst.DSN); !ok {
				t.Errorf("%s has no table entry for %s", src.Label, dst.Label)
			}
		}
		if _, _, ok := src.LookupPath(0xdead); ok {
			t.Errorf("%s resolved a bogus DSN", src.Label)
		}
	}
}

func TestPathTableRoutesDeliverTraffic(t *testing.T) {
	tp := topo.Torus(4, 4)
	e, f, m := setup(t, tp, Parallel)
	runDiscovery(t, e, m)
	m.DistributePathTables(nil)
	e.Run()

	rng := sim.NewRNG(5)
	gen := fabric.NewTrafficGen(f, rng, 20*sim.Microsecond, 256)
	gen.UseTables = true
	gen.Start()
	e.RunUntil(e.Now().Add(3 * sim.Millisecond))
	gen.Stop()
	e.Run()

	if gen.Injected == 0 {
		t.Fatal("no packets injected from tables")
	}
	if gen.NoRoute != 0 {
		t.Errorf("%d injections had no table route", gen.NoRoute)
	}
	if f.Counters().Drops[fabric.DropRouteError] != 0 {
		t.Errorf("table routes misrouted: %+v", f.Counters().Drops)
	}
	var rx uint64
	for _, d := range f.Devices() {
		if d.Type == asi.DeviceEndpoint && d.DSN != m.Device().DSN {
			rx += d.RxPackets
		}
	}
	if rx == 0 {
		t.Error("no application packets delivered via tables")
	}
}

func TestPathTablesRefreshAfterChange(t *testing.T) {
	tp := topo.Torus(4, 4)
	e, f, m := setup(t, tp, Parallel)
	runDiscovery(t, e, m)
	m.DistributeEventRoutes(nil)
	e.Run()
	m.DistributePathTables(nil)
	e.Run()

	// Remove a switch; assimilate; redistribute tables. Traffic between
	// surviving endpoints must flow on the new routes.
	redistributed := false
	m.OnDiscoveryComplete = func(Result) {
		m.DistributePathTables(func(DistResult) { redistributed = true })
	}
	if err := f.SetDeviceDown(5, false); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !redistributed {
		t.Fatal("tables not redistributed after assimilation")
	}
	// Stranded endpoint (the removed switch's host) must be absent from
	// the surviving tables; everyone else resolvable.
	stranded := f.Device(21) // ep(1,1) attaches to sw(1,1)=node 5
	for _, n := range m.DB().Nodes() {
		if n.Type != asi.DeviceEndpoint {
			continue
		}
		src := f.Device(tp.Endpoints()[0])
		_ = src
		dev, ok := f.DeviceByDSN(n.DSN)
		if !ok {
			t.Fatalf("db node %v not in fabric", n.DSN)
		}
		if _, _, ok := dev.LookupPath(stranded.DSN); ok && dev.DSN != stranded.DSN {
			t.Errorf("%s still has a route to the stranded endpoint", dev.Label)
		}
	}
}

func TestPathEntryRoundTrip(t *testing.T) {
	p := route.Path{{Ports: 16, In: 4, Out: 0}, {Ports: 16, In: 1, Out: 4}}
	pool, ptr, err := route.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	dst, gotPool, gotPtr, valid := asi.DecodePathEntry(asi.EncodePathEntry(0xabcdef01, pool, ptr))
	if !valid || dst != 0xabcdef01 || gotPool != pool || gotPtr != ptr {
		t.Errorf("round trip: dst=%v pool=%#x ptr=%d valid=%v", dst, gotPool, gotPtr, valid)
	}
	if _, _, _, valid := asi.DecodePathEntry(make([]uint32, asi.PathTableEntryBlocks)); valid {
		t.Error("zero entry reads valid")
	}
	if _, _, _, valid := asi.DecodePathEntry(nil); valid {
		t.Error("nil entry reads valid")
	}
}

func TestLookupPathOnSwitchFails(t *testing.T) {
	_, f, _ := setup(t, topo.Mesh(3, 3), Parallel)
	if _, _, ok := f.Device(0).LookupPath(1); ok {
		t.Error("switch resolved a path table entry")
	}
}
