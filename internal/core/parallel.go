package core

// parallelDriver implements the paper's Parallel discovery (section 3.3,
// Fig. 3 flow chart): a propagation-order exploration in which the FM
// sends new PI-4 packets as soon as it receives the responses that enable
// them. The exploration queue of the serial variants is replaced by the
// Manager's table of pending packets; the order in which devices are
// discovered is not deterministic (it depends on response arrival order).
// Discovery is complete when the pending table drains.
type parallelDriver struct {
	m *Manager
}

func (d *parallelDriver) start() {
	d.m.initialProbe()
}

func (d *parallelDriver) onGeneral(req *request, n *Node, isNew, ok bool) {
	if !ok || !isNew {
		// Already discovered through an alternate path (the link was
		// recorded by the Manager), or unreachable: nothing to expand.
		return
	}
	// New device: immediately inject reads for all of its ports.
	d.m.readAllPorts(n)
}

func (d *parallelDriver) onPort(req *request, n *Node, ok bool) {
	if !ok {
		return
	}
	if n == d.m.db.Node(d.m.dev.DSN) {
		// Host endpoint port; handled by the initial probe.
		return
	}
	// Each newly known active port immediately probes the device at the
	// other end of its link (one request covers req.nports ports when
	// reads are batched).
	count := req.nports
	if count < 1 {
		count = 1
	}
	for k := 0; k < count && req.port+k < n.Ports; k++ {
		for _, p := range d.m.probesFromPort(n, req.port+k) {
			d.m.probe(p.path, p.srcDSN, p.srcPort)
		}
	}
}

// finished is always true for the parallel driver: every enabled request
// is issued synchronously while processing the enabling completion, so
// the Manager's pending table alone decides completion.
func (d *parallelDriver) finished() bool { return true }
