package core

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topo"
)

// A discovery run with telemetry enabled must populate the per-phase
// service-time histograms, the per-kind round-trip histograms and the
// queue-depth gauge, with totals consistent with the Result counters.
func TestManagerTelemetryRecordsPhases(t *testing.T) {
	tp := topo.Mesh(3, 3)
	e := sim.NewEngine()
	f, err := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	f.EnableTelemetry(reg)
	m := NewManager(f, f.Device(tp.Endpoints()[0]), Options{Algorithm: Parallel, Telemetry: reg})
	res := runDiscovery(t, e, m)

	s := reg.Snapshot()
	svc, ok := s.Histogram(MetricFMServicePrefix + "completion")
	if !ok || svc.Count == 0 {
		t.Fatalf("completion service histogram missing or empty: %+v", svc)
	}
	start, _ := s.Histogram(MetricFMServicePrefix + "start")
	if start.Count != 1 {
		t.Errorf("start phase processed %d times, want 1", start.Count)
	}
	// Every processed work item was observed exactly once across the
	// service phases.
	var phases uint64
	for k := workKind(0); k < numWorkKinds; k++ {
		h, _ := s.Histogram(MetricFMServicePrefix + k.label())
		phases += h.Count
	}
	if phases != uint64(res.Processed) {
		t.Errorf("service observations %d != processed %d", phases, res.Processed)
	}
	// Round trips: one per completion that reached the FM (probes and
	// port reads on a lossless fabric — every request completes).
	var rtts uint64
	for k := reqKind(0); k < numReqKinds; k++ {
		h, _ := s.Histogram(MetricFMRTTPrefix + k.label())
		rtts += h.Count
		if h.Count > 0 && h.Min <= 0 {
			t.Errorf("%s: non-positive round trip %d", MetricFMRTTPrefix+k.label(), h.Min)
		}
	}
	if rtts == 0 {
		t.Error("no round trips recorded")
	}
	if depth, ok := s.Gauge(MetricFMQueueDepth); !ok || depth < 1 {
		t.Errorf("queue depth high-water = %d, %v", depth, ok)
	}
	// The fabric side recorded management traffic per link and VC.
	var vcTx uint64
	for _, v := range s.Vectors {
		if v.Name == fabric.MetricVCTx {
			vcTx += v.Value
		}
	}
	if vcTx == 0 {
		t.Error("no per-VC transmissions recorded")
	}
}

// Timeouts, retries and giveups must mirror the Result counters when the
// fabric loses packets.
func TestManagerTelemetryRetryCounters(t *testing.T) {
	tp := topo.Mesh(4, 4)
	e := sim.NewEngine()
	f, err := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetFaultPlan(fabric.Uniform(0.05)); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	m := NewManager(f, f.Device(tp.Endpoints()[0]), Options{
		Algorithm: Parallel, MaxRetries: 2, Telemetry: reg,
	})
	res := runDiscovery(t, e, m)
	if res.TimedOut == 0 {
		t.Skip("seed produced no timeouts; counters trivially zero")
	}
	s := reg.Snapshot()
	check := func(name string, want int) {
		got, _ := s.Counter(name)
		if got != uint64(want) {
			t.Errorf("%s = %d, want %d (Result mirror)", name, got, want)
		}
	}
	check(MetricFMTimeouts, res.TimedOut)
	check(MetricFMRetries, res.Retries)
	check(MetricFMGiveups, res.GaveUp)
}

// A telemetry-less manager must carry no telemetry state at all.
func TestManagerTelemetryOffByDefault(t *testing.T) {
	tp := topo.Mesh(3, 3)
	e := sim.NewEngine()
	f, err := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(f, f.Device(tp.Endpoints()[0]), Options{Algorithm: Parallel})
	if m.tel != nil {
		t.Fatal("telemetry handles allocated without a registry")
	}
	runDiscovery(t, e, m)
}
