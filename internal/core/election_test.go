package core

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
)

// electionSetup attaches managers with the given priorities to the first
// len(prios) endpoints and runs the election to completion.
func electionSetup(t *testing.T, tp *topo.Topology, prios []uint8) []ElectionOutcome {
	t.Helper()
	e := sim.NewEngine()
	f, err := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	eps := tp.Endpoints()
	if len(prios) > len(eps) {
		t.Fatal("more priorities than endpoints")
	}
	outcomes := make([]ElectionOutcome, len(prios))
	decided := make([]bool, len(prios))
	for i, prio := range prios {
		m := NewManager(f, f.Device(eps[i]), Options{Algorithm: Parallel, ElectionPriority: prio})
		i := i
		// Stagger starts slightly, as independent power-ups would.
		e.After(sim.Duration(i)*10*sim.Microsecond, func(*sim.Engine) {
			m.StartElection(0, func(o ElectionOutcome) {
				outcomes[i] = o
				decided[i] = true
			})
		})
	}
	e.Run()
	for i, d := range decided {
		if !d {
			t.Fatalf("candidate %d never decided", i)
		}
	}
	return outcomes
}

func TestElectionPicksHighestPriority(t *testing.T) {
	tp := topo.Mesh(3, 3)
	outs := electionSetup(t, tp, []uint8{1, 9, 5})
	// Candidate 1 (priority 9) must be primary, candidate 2 secondary.
	if outs[1].Role != RolePrimary {
		t.Errorf("high-priority candidate got role %v", outs[1].Role)
	}
	if outs[2].Role != RoleSecondary {
		t.Errorf("mid-priority candidate got role %v", outs[2].Role)
	}
	if outs[0].Role != RoleNone {
		t.Errorf("low-priority candidate got role %v", outs[0].Role)
	}
}

func TestElectionOutcomeConsistentAcrossCandidates(t *testing.T) {
	outs := electionSetup(t, topo.Torus(4, 4), []uint8{3, 3, 3, 7})
	for i := 1; i < len(outs); i++ {
		if outs[i].Primary != outs[0].Primary || outs[i].Secondary != outs[0].Secondary {
			t.Errorf("candidate %d disagrees: %+v vs %+v", i, outs[i], outs[0])
		}
	}
	if outs[0].Candidates != 4 {
		t.Errorf("saw %d candidates, want 4", outs[0].Candidates)
	}
	// Equal priorities: the tie breaks on DSN, still exactly one primary.
	primaries := 0
	for _, o := range outs {
		if o.Role == RolePrimary {
			primaries++
		}
	}
	if primaries != 1 {
		t.Errorf("%d primaries elected", primaries)
	}
}

func TestSingleCandidateBecomesPrimary(t *testing.T) {
	outs := electionSetup(t, topo.Mesh(3, 3), []uint8{4})
	if outs[0].Role != RolePrimary || outs[0].Candidates != 1 {
		t.Errorf("lone candidate outcome: %+v", outs[0])
	}
	if outs[0].Secondary != 0 {
		t.Errorf("lone candidate has secondary %v", outs[0].Secondary)
	}
}

func TestElectionThenDiscovery(t *testing.T) {
	// The full startup sequence of the paper's section 2: power up,
	// elect, primary discovers the fabric.
	tp := topo.Mesh(3, 3)
	e := sim.NewEngine()
	f, err := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	eps := tp.Endpoints()
	var winner *Manager
	var discovered *Result
	for i, prio := range []uint8{2, 8} {
		m := NewManager(f, f.Device(eps[i]), Options{Algorithm: Parallel, ElectionPriority: prio})
		m.OnDiscoveryComplete = func(r Result) { discovered = &r }
		mm := m
		m.StartElection(0, func(o ElectionOutcome) {
			if o.Role == RolePrimary {
				winner = mm
				mm.StartDiscovery()
			}
		})
	}
	e.Run()
	if winner == nil {
		t.Fatal("no primary elected")
	}
	if discovered == nil || discovered.Devices != 18 {
		t.Fatalf("primary discovery incomplete: %+v", discovered)
	}
	if winner.Options().ElectionPriority != 8 {
		t.Error("wrong candidate won")
	}
}

func TestRoleStrings(t *testing.T) {
	if RolePrimary.String() != "primary" || RoleSecondary.String() != "secondary" || RoleNone.String() != "none" {
		t.Error("role strings wrong")
	}
}
