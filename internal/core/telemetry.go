package core

import (
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Telemetry metric names exported by the fabric manager. The per-phase
// families append a phase label: "fm.service.<phase>" histograms the FM
// processing time spent per work phase (start, completion, timeout,
// event, sync), and "fm.rtt.<kind>" histograms the request round-trip
// time — issue to completion arrival — per PI-4 request kind (probe,
// port-read, write, verify, claim). Round trips are the per-request
// latency a production FM would alarm on; the loss-discovery literature
// (CDP, OFDP) shows that is the signal operators actually watch.
// Unlike Result, whose counters cover one discovery run, these metrics
// accumulate over the manager's whole lifetime — they also see phases no
// Result covers, such as event-route distribution, so in a full
// experiment run fm.timeouts may exceed the measured Result.TimedOut.
const (
	MetricFMServicePrefix = "fm.service."
	MetricFMRTTPrefix     = "fm.rtt."
	MetricFMQueueDepth    = "fm.queue.depth.max"
	MetricFMTimeouts      = "fm.timeouts"
	MetricFMRetries       = "fm.retries"
	MetricFMGiveups       = "fm.giveups"
	MetricFMStale         = "fm.stale"
)

// Continuous-assimilation metric names. fm.assim.events counts PI-5
// reports accepted into the coalescing front-end (its windowed rate is
// the sustained PI-5s/s assimilated); fm.assim.events.coalesced the
// subset absorbed into an already-open batch (saved runs);
// fm.assim.superseded reports replaced by a later report for the same
// (reporter, port); fm.assim.flushes the batched partial runs and
// fm.assim.batch.size their size distribution. The fm.db.staleness.*
// gauges publish the per-node last-validated age percentiles
// (picoseconds) the daemon's keeper ages its re-audits on.
const (
	MetricFMAssimEvents     = "fm.assim.events"
	MetricFMAssimCoalesced  = "fm.assim.events.coalesced"
	MetricFMAssimSuperseded = "fm.assim.superseded"
	MetricFMAssimFlushes    = "fm.assim.flushes"
	MetricFMAssimBatch      = "fm.assim.batch.size"
	MetricFMDBStaleP50      = "fm.db.staleness.p50"
	MetricFMDBStaleP99      = "fm.db.staleness.p99"
	MetricFMDBStaleMax      = "fm.db.staleness.max"
)

// label names a work phase for metric naming.
func (k workKind) label() string {
	switch k {
	case wStart:
		return "start"
	case wCompletion:
		return "completion"
	case wTimeout:
		return "timeout"
	case wEvent:
		return "event"
	case wFlush:
		return "flush"
	default:
		return "sync"
	}
}

// label names a request kind for metric naming.
func (k reqKind) label() string {
	switch k {
	case reqProbeGeneral:
		return "probe"
	case reqReadPort:
		return "port-read"
	case reqWrite:
		return "write"
	case reqVerify:
		return "verify"
	default:
		return "claim"
	}
}

// durationBounds are the shared histogram bucket bounds for FM timing
// metrics, in picoseconds: 500ns up to 5ms, roughly logarithmic. FM
// processing times sit in the low microseconds; request round trips
// stretch into the tens and hundreds of microseconds on large fabrics
// under slow-device factors.
var durationBounds = []int64{
	int64(500 * sim.Nanosecond),
	int64(1 * sim.Microsecond),
	int64(2 * sim.Microsecond),
	int64(5 * sim.Microsecond),
	int64(10 * sim.Microsecond),
	int64(20 * sim.Microsecond),
	int64(50 * sim.Microsecond),
	int64(100 * sim.Microsecond),
	int64(200 * sim.Microsecond),
	int64(500 * sim.Microsecond),
	int64(1 * sim.Millisecond),
	int64(5 * sim.Millisecond),
}

// fmTelemetry is the manager's bundle of pre-registered metric handles,
// non-nil only when Options.Telemetry is set. Hot paths guard on the one
// pointer; every observation is an array-indexed histogram bump or an
// integer increment, allocation-free either way.
type fmTelemetry struct {
	service    [numWorkKinds]*telemetry.Histogram
	rtt        [numReqKinds]*telemetry.Histogram
	queueDepth *telemetry.Gauge
	timeouts   *telemetry.Counter
	retries    *telemetry.Counter
	giveups    *telemetry.Counter
	stale      *telemetry.Counter

	assimEvents     *telemetry.Counter
	assimCoalesced  *telemetry.Counter
	assimSuperseded *telemetry.Counter
	assimFlushes    *telemetry.Counter
	assimBatch      *telemetry.Histogram
	stalenessP50    *telemetry.Gauge
	stalenessP99    *telemetry.Gauge
	stalenessMax    *telemetry.Gauge
}

// batchBounds buckets coalesced-batch sizes (events per flush); powers
// of two up to the largest AssimBatchMax a config would plausibly set.
var batchBounds = []int64{1, 2, 4, 8, 16, 32, 64, 128}

// newFMTelemetry registers the FM metric set with reg.
func newFMTelemetry(reg *telemetry.Registry) *fmTelemetry {
	t := &fmTelemetry{
		queueDepth:      reg.Gauge(MetricFMQueueDepth),
		timeouts:        reg.Counter(MetricFMTimeouts),
		retries:         reg.Counter(MetricFMRetries),
		giveups:         reg.Counter(MetricFMGiveups),
		stale:           reg.Counter(MetricFMStale),
		assimEvents:     reg.Counter(MetricFMAssimEvents),
		assimCoalesced:  reg.Counter(MetricFMAssimCoalesced),
		assimSuperseded: reg.Counter(MetricFMAssimSuperseded),
		assimFlushes:    reg.Counter(MetricFMAssimFlushes),
		assimBatch:      reg.Histogram(MetricFMAssimBatch, "events", batchBounds),
		stalenessP50:    reg.Gauge(MetricFMDBStaleP50),
		stalenessP99:    reg.Gauge(MetricFMDBStaleP99),
		stalenessMax:    reg.Gauge(MetricFMDBStaleMax),
	}
	for k := workKind(0); k < numWorkKinds; k++ {
		t.service[k] = reg.Histogram(MetricFMServicePrefix+k.label(), "ps", durationBounds)
	}
	for k := reqKind(0); k < numReqKinds; k++ {
		t.rtt[k] = reg.Histogram(MetricFMRTTPrefix+k.label(), "ps", durationBounds)
	}
	return t
}
