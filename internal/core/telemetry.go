package core

import (
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Telemetry metric names exported by the fabric manager. The per-phase
// families append a phase label: "fm.service.<phase>" histograms the FM
// processing time spent per work phase (start, completion, timeout,
// event, sync), and "fm.rtt.<kind>" histograms the request round-trip
// time — issue to completion arrival — per PI-4 request kind (probe,
// port-read, write, verify, claim). Round trips are the per-request
// latency a production FM would alarm on; the loss-discovery literature
// (CDP, OFDP) shows that is the signal operators actually watch.
// Unlike Result, whose counters cover one discovery run, these metrics
// accumulate over the manager's whole lifetime — they also see phases no
// Result covers, such as event-route distribution, so in a full
// experiment run fm.timeouts may exceed the measured Result.TimedOut.
const (
	MetricFMServicePrefix = "fm.service."
	MetricFMRTTPrefix     = "fm.rtt."
	MetricFMQueueDepth    = "fm.queue.depth.max"
	MetricFMTimeouts      = "fm.timeouts"
	MetricFMRetries       = "fm.retries"
	MetricFMGiveups       = "fm.giveups"
	MetricFMStale         = "fm.stale"
)

// label names a work phase for metric naming.
func (k workKind) label() string {
	switch k {
	case wStart:
		return "start"
	case wCompletion:
		return "completion"
	case wTimeout:
		return "timeout"
	case wEvent:
		return "event"
	default:
		return "sync"
	}
}

// label names a request kind for metric naming.
func (k reqKind) label() string {
	switch k {
	case reqProbeGeneral:
		return "probe"
	case reqReadPort:
		return "port-read"
	case reqWrite:
		return "write"
	case reqVerify:
		return "verify"
	default:
		return "claim"
	}
}

// durationBounds are the shared histogram bucket bounds for FM timing
// metrics, in picoseconds: 500ns up to 5ms, roughly logarithmic. FM
// processing times sit in the low microseconds; request round trips
// stretch into the tens and hundreds of microseconds on large fabrics
// under slow-device factors.
var durationBounds = []int64{
	int64(500 * sim.Nanosecond),
	int64(1 * sim.Microsecond),
	int64(2 * sim.Microsecond),
	int64(5 * sim.Microsecond),
	int64(10 * sim.Microsecond),
	int64(20 * sim.Microsecond),
	int64(50 * sim.Microsecond),
	int64(100 * sim.Microsecond),
	int64(200 * sim.Microsecond),
	int64(500 * sim.Microsecond),
	int64(1 * sim.Millisecond),
	int64(5 * sim.Millisecond),
}

// fmTelemetry is the manager's bundle of pre-registered metric handles,
// non-nil only when Options.Telemetry is set. Hot paths guard on the one
// pointer; every observation is an array-indexed histogram bump or an
// integer increment, allocation-free either way.
type fmTelemetry struct {
	service    [numWorkKinds]*telemetry.Histogram
	rtt        [numReqKinds]*telemetry.Histogram
	queueDepth *telemetry.Gauge
	timeouts   *telemetry.Counter
	retries    *telemetry.Counter
	giveups    *telemetry.Counter
	stale      *telemetry.Counter
}

// newFMTelemetry registers the FM metric set with reg.
func newFMTelemetry(reg *telemetry.Registry) *fmTelemetry {
	t := &fmTelemetry{
		queueDepth: reg.Gauge(MetricFMQueueDepth),
		timeouts:   reg.Counter(MetricFMTimeouts),
		retries:    reg.Counter(MetricFMRetries),
		giveups:    reg.Counter(MetricFMGiveups),
		stale:      reg.Counter(MetricFMStale),
	}
	for k := workKind(0); k < numWorkKinds; k++ {
		t.service[k] = reg.Histogram(MetricFMServicePrefix+k.label(), "ps", durationBounds)
	}
	for k := reqKind(0); k < numReqKinds; k++ {
		t.rtt[k] = reg.Histogram(MetricFMRTTPrefix+k.label(), "ps", durationBounds)
	}
	return t
}
