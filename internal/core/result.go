package core

import (
	"fmt"

	"repro/internal/sim"
)

// TimelinePoint records that the FM finished processing its n-th
// management packet at a given simulation time — the data behind the
// paper's Fig. 7(a).
type TimelinePoint struct {
	Index int
	At    sim.Time
}

// Result captures one discovery run's measurements: the paper records the
// topology discovery time, the amount of management packets and bytes
// generated and received by the FM, and the FM processing timeline
// (section 4.1).
type Result struct {
	Algorithm Kind
	// Start and End bound the discovery process; Duration = End - Start.
	Start, End sim.Time
	Duration   sim.Duration
	// PacketsSent/BytesSent count management packets the FM injected;
	// PacketsReceived/BytesReceived count management packets delivered
	// to it.
	PacketsSent, BytesSent         uint64
	PacketsReceived, BytesReceived uint64
	// Processed counts FM work items (packet processings) and FMBusy
	// their total cost; FMBusy/Processed is the paper's Fig. 4 metric.
	Processed int
	FMBusy    sim.Duration
	// TimedOut counts request attempts that expired without completion.
	TimedOut int
	// Retries counts timed-out attempts that were re-issued under the
	// retry policy (Options.MaxRetries).
	Retries int
	// GaveUp counts requests abandoned after exhausting every retry —
	// each one is a potentially truncated subtree. Always zero when
	// retries are disabled.
	GaveUp int
	// Stale counts completions that arrived after their request had timed
	// out; under retries these are the originals outrun by their own
	// retransmission.
	Stale int
	// Coalesced counts PI-5 reports this run assimilated through the
	// coalescing front-end's batched flushes (Options.AssimWindow);
	// always zero under per-event assimilation.
	Coalesced int
	// Devices/Switches/Links summarize the resulting topology database.
	Devices, Switches, Links int
	// Timeline is the per-packet FM processing trace (Fig. 7a).
	Timeline []TimelinePoint
	// Changes summarizes what this run's topology differs from the
	// previous full discovery's (nil on the very first run).
	Changes *Diff
}

// AvgFMProcessing returns the mean FM processing time per packet — the
// quantity plotted in the paper's Fig. 4.
func (r Result) AvgFMProcessing() sim.Duration {
	if r.Processed == 0 {
		return 0
	}
	return r.FMBusy / sim.Duration(r.Processed)
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%s: %v, %d devices (%d switches, %d links), %d pkts sent / %d received, avg FM proc %v",
		r.Algorithm, r.Duration, r.Devices, r.Switches, r.Links,
		r.PacketsSent, r.PacketsReceived, r.AvgFMProcessing())
}
