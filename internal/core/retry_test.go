package core

import (
	"reflect"
	"testing"

	"repro/internal/asi"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
)

// setupFaulty builds a fabric with the given fault plan and seed, and
// attaches a manager with retry options to the first endpoint.
func setupFaulty(t *testing.T, tp *topo.Topology, kind Kind, seed uint64, plan fabric.FaultPlan, opt Options) (*sim.Engine, *fabric.Fabric, *Manager) {
	t.Helper()
	e := sim.NewEngine()
	f, err := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	opt.Algorithm = kind
	m := NewManager(f, f.Device(tp.Endpoints()[0]), opt)
	return e, f, m
}

// epLink returns the topology link index cabling the n-th endpoint.
func epLink(t *testing.T, tp *topo.Topology, f *fabric.Fabric, n int) int {
	t.Helper()
	idx, ok := f.LinkAt(tp.Endpoints()[n], 0)
	if !ok {
		t.Fatal("endpoint uncabled")
	}
	return idx
}

func TestTimeoutRetrySucceedsAllAlgorithms(t *testing.T) {
	for _, kind := range PaperKinds() {
		tp := topo.Mesh(4, 4)
		// Losslessly discovered reference database.
		e0, _, m0 := setup(t, tp, kind)
		res0 := runDiscovery(t, e0, m0)

		// Drop the very first traversal of the FM's own host link: the
		// initial probe dies, times out, and must be retried.
		tp2 := topo.Mesh(4, 4)
		e := sim.NewEngine()
		f, err := fabric.New(e, tp2, fabric.Config{}, sim.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		m := NewManager(f, f.Device(tp2.Endpoints()[0]), Options{Algorithm: kind, MaxRetries: 3})
		if err := f.SetFaultPlan(fabric.FaultPlan{
			PerLink: map[int]fabric.LinkFaults{epLink(t, tp2, f, 0): {DropFirst: 1}},
		}); err != nil {
			t.Fatal(err)
		}
		res := runDiscovery(t, e, m)

		if res.TimedOut < 1 || res.Retries < 1 {
			t.Errorf("%s: TimedOut=%d Retries=%d, want >= 1 each", kind, res.TimedOut, res.Retries)
		}
		if res.GaveUp != 0 {
			t.Errorf("%s: GaveUp=%d after a recoverable loss", kind, res.GaveUp)
		}
		if d := DiffDBs(m0.DB(), m.DB()); !d.Empty() {
			t.Errorf("%s: lossy database differs from lossless: %v", kind, d)
		}
		if res.Duration <= res0.Duration {
			t.Errorf("%s: retried run (%v) not slower than lossless (%v)",
				kind, res.Duration, res0.Duration)
		}
	}
}

func TestRetriesExhaustedGiveUpAllAlgorithms(t *testing.T) {
	for _, kind := range PaperKinds() {
		tp := topo.Mesh(4, 4)
		e := sim.NewEngine()
		f, err := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		m := NewManager(f, f.Device(tp.Endpoints()[0]), Options{Algorithm: kind, MaxRetries: 2})
		// Black-hole the cable of a far endpoint: every probe toward it
		// dies, so the FM must exhaust its attempts and move on.
		if err := f.SetFaultPlan(fabric.FaultPlan{
			PerLink: map[int]fabric.LinkFaults{epLink(t, tp, f, 5): {DropFirst: 1 << 30}},
		}); err != nil {
			t.Fatal(err)
		}
		res := runDiscovery(t, e, m)

		if res.GaveUp != 1 {
			t.Errorf("%s: GaveUp=%d, want 1 (the black-holed probe)", kind, res.GaveUp)
		}
		if res.Retries != 2 {
			t.Errorf("%s: Retries=%d, want 2 (MaxRetries exhausted)", kind, res.Retries)
		}
		if res.TimedOut != 3 {
			t.Errorf("%s: TimedOut=%d, want 3 (original + 2 retries)", kind, res.TimedOut)
		}
		if res.Devices != 31 {
			t.Errorf("%s: discovered %d devices, want 31 (one endpoint unreachable)", kind, res.Devices)
		}
	}
}

// TestLossConvergence is the headline robustness property: with per-link
// loss up to 1e-3 and MaxRetries=3, every paper algorithm converges to the
// same database a lossless run produces on mesh, torus and fat-tree, with
// retries observed and nothing given up.
func TestLossConvergence(t *testing.T) {
	topos := []string{"4x4 mesh", "4x4 torus", "4-port 2-tree"}
	totalRetries := 0
	for _, tn := range topos {
		for _, kind := range PaperKinds() {
			for seed := uint64(1); seed <= 3; seed++ {
				tp, err := topo.ByName(tn)
				if err != nil {
					t.Fatal(err)
				}
				e0, _, m0 := setup(t, tp, kind)
				runDiscovery(t, e0, m0)

				tp2, _ := topo.ByName(tn)
				e, _, m := setupFaulty(t, tp2, kind, seed, fabric.Uniform(1e-3),
					Options{MaxRetries: 3})
				res := runDiscovery(t, e, m)

				if res.GaveUp != 0 {
					t.Errorf("%s/%s seed %d: GaveUp=%d under 1e-3 loss", tn, kind, seed, res.GaveUp)
				}
				if d := DiffDBs(m0.DB(), m.DB()); !d.Empty() {
					t.Errorf("%s/%s seed %d: lossy database differs: %v", tn, kind, seed, d)
				}
				totalRetries += res.Retries
			}
		}
	}
	if totalRetries == 0 {
		t.Error("no retries observed across the whole sweep; loss injection ineffective")
	}
}

func TestRetryRunsAreDeterministic(t *testing.T) {
	for _, kind := range PaperKinds() {
		var prev Result
		for trial := 0; trial < 2; trial++ {
			tp := topo.Mesh(4, 4)
			e, _, m := setupFaulty(t, tp, kind, 99, fabric.Uniform(5e-3),
				Options{MaxRetries: 3})
			res := runDiscovery(t, e, m)
			if trial == 1 && !reflect.DeepEqual(res, prev) {
				t.Errorf("%s: identical seeds diverged:\n%+v\nvs\n%+v", kind, res, prev)
			}
			prev = res
		}
	}
}

func TestStaleCompletionCounted(t *testing.T) {
	// Delay one endpoint's link so its completions regularly lose the
	// race against the request timeout and arrive while the FM is still
	// retrying: each such arrival is a stale completion the run must
	// count without folding into the database twice.
	tp := topo.Mesh(4, 4)
	e := sim.NewEngine()
	f, err := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(f, f.Device(tp.Endpoints()[0]),
		Options{Algorithm: Parallel, MaxRetries: 10, RequestTimeout: sim.Millisecond})
	if err := f.SetFaultPlan(fabric.FaultPlan{
		PerLink: map[int]fabric.LinkFaults{
			epLink(t, tp, f, 5): {DelayProb: 1, Delay: 2 * sim.Millisecond},
		},
	}); err != nil {
		t.Fatal(err)
	}
	res := runDiscovery(t, e, m)
	if res.TimedOut == 0 {
		t.Error("delayed link produced no timeouts")
	}
	if res.Stale == 0 {
		t.Error("delayed completions produced no stale count")
	}
}

// recordingDriver is a stub driver capturing onPort notifications.
type recordingDriver struct {
	onPortCalls int
	lastNil     bool
	lastOK      bool
}

func (r *recordingDriver) start()                                {}
func (r *recordingDriver) onGeneral(*request, *Node, bool, bool) {}
func (r *recordingDriver) onPort(req *request, n *Node, ok bool) {
	r.onPortCalls++
	r.lastNil = n == nil
	r.lastOK = ok
}
func (r *recordingDriver) finished() bool { return true }

// Regression: a port-read completion (or failure) for a device no longer
// in the database must still notify the driver, or the serial drivers
// wait on it forever.
func TestReadPortForUnknownNodeNotifiesDriver(t *testing.T) {
	e, _, m := setup(t, topo.Mesh(3, 3), SerialDevice)
	_ = e
	rec := &recordingDriver{}
	m.drv = rec
	req := &request{kind: reqReadPort, dsn: asi.DSN(0xDEAD), port: 0, nports: 1}

	m.applyCompletion(req, asi.PI4{Op: asi.PI4ReadCompletionData})
	if rec.onPortCalls != 1 || !rec.lastNil || rec.lastOK {
		t.Errorf("completion: onPort calls=%d nil=%v ok=%v, want 1/true/false",
			rec.onPortCalls, rec.lastNil, rec.lastOK)
	}
	m.applyFailure(req)
	if rec.onPortCalls != 2 || !rec.lastNil || rec.lastOK {
		t.Errorf("failure: onPort calls=%d nil=%v ok=%v, want 2/true/false",
			rec.onPortCalls, rec.lastNil, rec.lastOK)
	}
}

// Regression: Serial Packet mode never accounts reads in portsLeft, so the
// counter must stay at zero (it used to go negative on every port read).
func TestSerialPortsLeftNeverNegative(t *testing.T) {
	for _, kind := range []Kind{SerialPacket, SerialDevice} {
		e, _, m := setup(t, topo.Mesh(4, 4), kind)
		m.StartDiscovery()
		for e.Step() {
			if pl := m.drv.(*serialDriver).portsLeft; pl < 0 {
				t.Fatalf("%s: portsLeft went negative (%d)", kind, pl)
			}
		}
	}
}
