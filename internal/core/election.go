package core

import (
	"sort"

	"repro/internal/asi"
	"repro/internal/sim"
)

// FM election. After the fabric powers up, a distributed process selects
// the primary and secondary fabric managers; only those two endpoints may
// configure the fabric, and the secondary takes over if the primary fails
// (paper section 2). The protocol here is flooding-based: every candidate
// announces (priority, DSN) fabric-wide; after a quiet period with no new
// information each candidate independently ranks the announcements it has
// seen. The highest (priority, DSN) pair is primary, the runner-up
// secondary — consistent across candidates once the floods complete.

// Role is the outcome of an election for one candidate.
type Role int

const (
	// RoleNone: not elected.
	RoleNone Role = iota
	// RoleSecondary: standby manager, takes over on primary failure.
	RoleSecondary
	// RolePrimary: the acting fabric manager.
	RolePrimary
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleSecondary:
		return "secondary"
	default:
		return "none"
	}
}

// ElectionOutcome reports the fabric-wide result as computed by one
// candidate.
type ElectionOutcome struct {
	Role      Role
	Primary   asi.DSN
	Secondary asi.DSN // zero when there is a single candidate
	// Candidates is the number of announcements seen (including self).
	Candidates int
	// DecidedAt is when the quiet period expired.
	DecidedAt sim.Time
}

// Elector runs the election protocol for one FM-capable endpoint.
type Elector struct {
	m        *Manager
	priority uint8
	quiet    sim.Duration
	ttl      uint8

	seen     map[asi.DSN]uint8
	timer    sim.EventID
	armed    bool
	decided  bool
	onResult func(ElectionOutcome)
}

// StartElection begins participating in FM election with the manager's
// configured priority. onResult fires once, when this candidate's quiet
// period expires. quiet <= 0 selects a default sized for the paper's
// topologies.
func (m *Manager) StartElection(quiet sim.Duration, onResult func(ElectionOutcome)) *Elector {
	if quiet <= 0 {
		quiet = 300 * sim.Microsecond
	}
	el := &Elector{
		m:        m,
		priority: m.opt.ElectionPriority,
		quiet:    quiet,
		ttl:      64,
		seen:     map[asi.DSN]uint8{m.dev.DSN: m.opt.ElectionPriority},
		onResult: onResult,
	}
	m.elect = el
	for _, an := range m.preElection {
		el.handle(an)
	}
	m.preElection = nil
	el.announce()
	el.rearm()
	return el
}

// announce floods this candidate's claim.
func (el *Elector) announce() {
	pkt := &asi.Packet{
		Header: asi.RouteHeader{PI: asi.PIElection, TC: asi.TCManagement},
		Payload: asi.Election{
			Priority:  el.priority,
			Candidate: el.m.dev.DSN,
			TTL:       el.ttl,
			Sequence:  1,
		},
	}
	el.m.dev.Inject(pkt)
}

// handle processes a received announcement.
func (el *Elector) handle(an asi.Election) {
	if el.decided {
		return
	}
	if prio, ok := el.seen[an.Candidate]; ok && prio >= an.Priority {
		return // nothing new
	}
	el.seen[an.Candidate] = an.Priority
	el.rearm()
}

// rearm restarts the quiet timer.
func (el *Elector) rearm() {
	if el.armed {
		el.m.e.Cancel(el.timer)
	}
	el.armed = true
	el.timer = el.m.e.After(el.quiet, func(*sim.Engine) {
		el.armed = false
		el.decide()
	})
}

// decide ranks the candidates and reports the outcome.
func (el *Elector) decide() {
	if el.decided {
		return
	}
	el.decided = true
	type cand struct {
		dsn  asi.DSN
		prio uint8
	}
	cands := make([]cand, 0, len(el.seen))
	for dsn, prio := range el.seen {
		cands = append(cands, cand{dsn, prio})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].prio != cands[j].prio {
			return cands[i].prio > cands[j].prio
		}
		return cands[i].dsn > cands[j].dsn
	})
	out := ElectionOutcome{
		Primary:    cands[0].dsn,
		Candidates: len(cands),
		DecidedAt:  el.m.e.Now(),
	}
	if len(cands) > 1 {
		out.Secondary = cands[1].dsn
	}
	switch el.m.dev.DSN {
	case out.Primary:
		out.Role = RolePrimary
	case out.Secondary:
		out.Role = RoleSecondary
	default:
		out.Role = RoleNone
	}
	if el.onResult != nil {
		el.onResult(out)
	}
}
