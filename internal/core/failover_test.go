package core

import (
	"testing"

	"repro/internal/asi"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
)

// failoverSetup elects two managers, runs the primary's discovery and
// distribution, and wires heartbeats/watchdog.
func failoverSetup(t *testing.T) (*sim.Engine, *fabric.Fabric, *Manager, *Manager, *Watchdog) {
	t.Helper()
	tp := topo.Torus(4, 4)
	e := sim.NewEngine()
	f, err := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	eps := tp.Endpoints()
	primary := NewManager(f, f.Device(eps[0]), Options{Algorithm: Parallel, ElectionPriority: 9})
	secondary := NewManager(f, f.Device(eps[8]), Options{Algorithm: Parallel, ElectionPriority: 5})

	runDiscovery(t, e, primary)
	primary.DistributeEventRoutes(nil)
	e.Run()

	primary.StartHeartbeats(secondary.Device().DSN, 200*sim.Microsecond)
	w := secondary.WatchPrimary(200*sim.Microsecond, 3, nil)
	return e, f, primary, secondary, w
}

func TestHeartbeatsKeepWatchdogQuiet(t *testing.T) {
	e, _, primary, _, w := failoverSetup(t)
	e.RunUntil(e.Now().Add(10 * sim.Millisecond))
	if w.TookOver() {
		t.Fatal("watchdog fired with a healthy primary")
	}
	if w.Received < 40 {
		t.Errorf("only %d heartbeats received in 10ms at 200us interval", w.Received)
	}
	_ = primary
}

func TestSecondaryTakesOverWhenPrimaryDies(t *testing.T) {
	e, f, primary, secondary, w := failoverSetup(t)
	tookOver := false
	w.OnTakeover = func() { tookOver = true }
	var secRes *Result
	secondary.OnDiscoveryComplete = func(r Result) { secRes = &r }

	// Kill the primary's endpoint outright.
	if err := f.SetDeviceDown(primary.Device().ID, true); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(e.Now().Add(20 * sim.Millisecond))
	e.Run()

	if !tookOver || !w.TookOver() {
		t.Fatal("secondary did not take over")
	}
	if secRes == nil {
		t.Fatal("secondary did not rediscover after takeover")
	}
	// The dead primary endpoint is not in the new topology.
	if secondary.DB().Node(primary.Device().DSN) != nil {
		t.Error("dead primary still in secondary's database")
	}
	if secRes.Devices != 31 { // 32 minus the dead endpoint
		t.Errorf("secondary discovered %d devices, want 31", secRes.Devices)
	}
}

func TestTakeoverReprogramsEventRoutes(t *testing.T) {
	e, f, primary, secondary, _ := failoverSetup(t)
	if err := f.SetDeviceDown(primary.Device().ID, true); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(e.Now().Add(20 * sim.Millisecond))
	e.Run()

	// After takeover + redistribution, a change must reach the NEW
	// primary via PI-5 and trigger its assimilation.
	var res *Result
	secondary.OnDiscoveryComplete = func(r Result) { res = &r }
	if err := f.SetDeviceDown(3, false); err != nil { // some switch
		t.Fatal(err)
	}
	e.Run()
	if res == nil {
		t.Fatal("change after failover not assimilated by the new primary")
	}
}

func TestWatchdogStopPreventsTakeover(t *testing.T) {
	e, f, primary, _, w := failoverSetup(t)
	w.Stop()
	if err := f.SetDeviceDown(primary.Device().ID, true); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(e.Now().Add(20 * sim.Millisecond))
	if w.TookOver() {
		t.Error("stopped watchdog fired")
	}
}

func TestHeartbeaterStop(t *testing.T) {
	e, _, primary, _, w := failoverSetup(t)
	primary.beats.Stop()
	before := w.Received
	e.RunUntil(e.Now().Add(5 * sim.Millisecond))
	// A beat already in flight may land, but the stream must stop.
	if w.Received > before+1 {
		t.Errorf("heartbeats continued after Stop: %d -> %d", before, w.Received)
	}
}

func TestHeartbeatsSurviveReroute(t *testing.T) {
	// Remove a switch loudly: assimilation rebuilds the DB while beats
	// keep flowing (cached path, then the recomputed one). The watchdog
	// window is sized to cover the assimilation, as a deployment would
	// configure it; beats must recover and no takeover may fire.
	tp := topo.Torus(4, 4)
	e := sim.NewEngine()
	f, err := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	eps := tp.Endpoints()
	primary := NewManager(f, f.Device(eps[0]), Options{Algorithm: Parallel})
	secondary := NewManager(f, f.Device(eps[8]), Options{Algorithm: Parallel})
	runDiscovery(t, e, primary)
	primary.DistributeEventRoutes(nil)
	e.Run()
	primary.StartHeartbeats(secondary.Device().DSN, 200*sim.Microsecond)
	// Window 6ms > the ~4ms torus rediscovery.
	w := secondary.WatchPrimary(200*sim.Microsecond, 30, nil)

	e.RunUntil(e.Now().Add(1 * sim.Millisecond))
	received := w.Received
	if received == 0 {
		t.Fatal("no heartbeats before the cut")
	}
	host, _, _ := f.Topo.Peer(primary.Device().ID, 0)
	var victim topo.NodeID = -1
	for _, d := range f.Devices() {
		if d.Type == asi.DeviceSwitch && d.ID != host {
			victim = d.ID
			break
		}
	}
	if err := f.SetDeviceDown(victim, false); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(e.Now().Add(20 * sim.Millisecond))
	if w.Received <= received+10 {
		t.Errorf("heartbeats did not recover after reroute: %d -> %d", received, w.Received)
	}
	if w.TookOver() {
		t.Error("false takeover during reroute")
	}
}

func TestShortWatchdogWindowTripsOnAssimilation(t *testing.T) {
	// The converse property: a watchdog window shorter than a full
	// rediscovery plus on-path beat loss can fire spuriously — this is
	// the deployment constraint the window default documents.
	e, f, primary, _, w := failoverSetup(t) // 600us window
	e.RunUntil(e.Now().Add(1 * sim.Millisecond))
	// Remove the secondary-adjacent region's cut vertex loudly... any
	// on-path switch works; sweep until one trips the watchdog or we
	// run out (the property is existential).
	host, _, _ := f.Topo.Peer(primary.Device().ID, 0)
	_ = host
	if err := f.SetDeviceDown(5, false); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(e.Now().Add(30 * sim.Millisecond))
	// Either beats survived (victim off-path, cached route valid) or a
	// takeover happened; both are legal — the test asserts the system
	// stays live and consistent either way.
	if !w.TookOver() && w.Received == 0 {
		t.Error("watchdog neither fed nor fired")
	}
}
