package core

import (
	"repro/internal/asi"
	"repro/internal/route"
)

// Partial discovery — the paper's second future-work direction (section
// 5, citing the authors' earlier InfiniBand work): instead of discarding
// the topology database and rediscovering the entire fabric on every
// change, the FM explores only the portion of the network affected by the
// change.
//
//   - On a port-down report the FM removes the link from its database,
//     prunes whatever became unreachable, recomputes the source routes
//     that crossed the lost region, and validates each rerouted device
//     with a single general-information read.
//
//   - On a port-up report the FM probes through the newly active port and
//     lets the propagation-order engine expand from there; exploration
//     stops wherever it meets already-known devices, so only the new
//     region costs packets.

// partialRun distinguishes a localized assimilation run from a full
// discovery run (both set m.discovering).
func (m *Manager) beginPartialRun() {
	m.discovering = true
	m.partialRun = true
	if m.sp != nil {
		m.runSpan = m.beginRunSpan("partial")
	}
	m.res = Result{Algorithm: Partial, Start: m.e.Now()}
}

// handleEventPartial processes one PI-5 report under the Partial
// algorithm.
func (m *Manager) handleEventPartial(ev asi.PI5) {
	if m.partialSeq == nil {
		m.partialSeq = make(map[asi.DSN]uint32)
	}
	if last, ok := m.partialSeq[ev.Reporter]; ok && ev.Sequence <= last {
		return // stale duplicate
	}
	m.partialSeq[ev.Reporter] = ev.Sequence

	if m.assimEnabled() {
		// Coalesced mode: accepted reports debounce into one batched
		// partial run (assim.go) instead of each paying its own.
		m.coalesce(ev)
		return
	}

	if m.discovering && !m.partialRun {
		// A full (initial) discovery is running; fold the change into a
		// rerun.
		m.dirty = true
		return
	}
	rep := m.db.Node(ev.Reporter)
	if rep == nil || m.db.Node(m.dev.DSN) == nil {
		// Unknown reporter or no baseline topology: a localized update
		// is impossible, fall back to a full run.
		m.scheduleDiscovery()
		return
	}
	if !m.discovering {
		m.beginPartialRun()
	}
	switch ev.Code {
	case asi.PI5PortDown:
		m.partialDown(rep, int(ev.Port))
	case asi.PI5PortUp:
		m.partialUp(rep, int(ev.Port))
	}
}

// partialDown removes the lost link and repairs the database.
func (m *Manager) partialDown(rep *Node, port int) {
	if m.dropLink(rep, port) {
		m.refreshPaths()
	}
}

// dropLink applies a port-down report to the database — port flags and
// link removal — without repairing paths, so a coalesced batch can fold
// several losses into one refreshPaths pass. It reports whether a link
// was actually removed.
func (m *Manager) dropLink(rep *Node, port int) bool {
	if port < rep.Ports {
		rep.PortActive[port] = false
	}
	l, ok := m.db.LinkAt(rep.DSN, port)
	if !ok {
		return false // other side reported first; already handled
	}
	m.db.RemoveLink(l)
	// Mark the far side's port inactive too, if that device survives.
	otherDSN, otherPort := l.A, l.APort
	if otherDSN == rep.DSN && otherPort == port {
		otherDSN, otherPort = l.B, l.BPort
	}
	if other := m.db.Node(otherDSN); other != nil && otherPort < other.Ports {
		other.PortActive[otherPort] = false
	}
	return true
}

// partialUp probes through the newly active port.
func (m *Manager) partialUp(rep *Node, port int) {
	if port < rep.Ports {
		rep.PortKnown[port] = true
		rep.PortActive[port] = true
	}
	if _, known := m.db.LinkAt(rep.DSN, port); known {
		return
	}
	if rep.DSN == m.dev.DSN {
		m.initialProbe()
		return
	}
	if rep.Type != asi.DeviceSwitch {
		return
	}
	path := route.Extend(rep.Path, route.Hop{Ports: rep.Ports, In: rep.ArrivalPort, Out: port})
	m.probe(path, rep.DSN, port)
}

// refreshPaths recomputes every device's source route over the repaired
// database, prunes unreachable devices, and validates each rerouted
// device with one verification read.
func (m *Manager) refreshPaths() {
	for _, n := range m.db.Nodes() {
		if n.DSN == m.dev.DSN {
			continue
		}
		p, arrive := m.db.PathTo(n.DSN)
		if p == nil {
			m.removeNode(n.DSN)
			continue
		}
		if pathEqual(p, n.Path) {
			continue
		}
		n.Path = p
		n.ArrivalPort = arrive
		m.sendVerify(n)
	}
}

// sendVerify issues a general-information read along a device's new path
// to confirm it still answers there.
func (m *Manager) sendVerify(n *Node) {
	req := &request{kind: reqVerify, path: n.Path, dsn: n.DSN}
	m.send(req, asi.PI4{
		Op:     asi.PI4ReadRequest,
		Offset: asi.GeneralInfoOffset,
		Count:  asi.GeneralInfoBlocks,
	})
}

// onVerify folds a verification completion (or failure) back in: a device
// that does not answer on its recomputed route is dropped, which may
// cascade into further reroutes.
func (m *Manager) onVerify(req *request, resp asi.PI4, ok bool) {
	n := m.db.Node(req.dsn)
	if n == nil {
		return
	}
	if ok && resp.Op == asi.PI4ReadCompletionData {
		if gi, err := asi.ParseGeneralInfo(resp.Data); err == nil && gi.DSN == req.dsn {
			n.Validated = m.e.Now()
			return // confirmed
		}
	}
	m.removeNode(req.dsn)
	m.refreshPaths()
}

// pathEqual compares two source routes hop by hop.
func pathEqual(a, b route.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
