// Package core implements ASI fabric management: primary/secondary fabric
// manager election, the topology discovery process in the three variants
// the paper compares (Serial Packet, Serial Device, Parallel), PI-5 driven
// change assimilation, and the paper's future-work extensions (discovery
// distributed over collaborating fabric managers, and partial rediscovery
// of only the region affected by a change).
//
// The fabric manager is a software entity running on an ASI endpoint
// (paper section 1). It learns the fabric exclusively through PI-4 reads
// of device configuration spaces and reacts to PI-5 event reports; all of
// that traffic crosses the simulated fabric in internal/fabric.
package core

import "fmt"

// Kind selects a discovery algorithm implementation.
type Kind int

const (
	// SerialPacket is the ASI-SIG serialized proposal: a single PI-4
	// request in flight at any moment, breadth-first over devices.
	SerialPacket Kind = iota
	// SerialDevice is the paper's first proposal: devices discovered
	// serially, but the port-attribute reads of the device under
	// discovery issued concurrently.
	SerialDevice
	// Parallel is the paper's propagation-order exploration: every
	// completion immediately triggers all requests it enables, with no
	// global ordering.
	Parallel
	// Distributed is the paper's future-work variant: several
	// collaborating fabric managers run Parallel discovery and the
	// primary merges their views.
	Distributed
	// Partial is the paper's future-work variant that explores only the
	// portion of the fabric affected by a topological change instead of
	// rediscovering everything.
	Partial
	numKinds
)

// PaperKinds returns the three algorithms evaluated in the paper, in the
// order of its figures.
func PaperKinds() []Kind { return []Kind{SerialPacket, SerialDevice, Parallel} }

// AllKinds returns every implemented algorithm, paper order first.
func AllKinds() []Kind {
	return []Kind{SerialPacket, SerialDevice, Parallel, Distributed, Partial}
}

// Valid reports whether k names an implemented algorithm.
func (k Kind) Valid() bool { return k >= 0 && k < numKinds }

// Slug returns the canonical machine-readable algorithm name, used by
// command-line flags and JSON encodings (scenario files, run reports).
func (k Kind) Slug() string {
	switch k {
	case SerialPacket:
		return "serial-packet"
	case SerialDevice:
		return "serial-device"
	case Parallel:
		return "parallel"
	case Distributed:
		return "distributed"
	case Partial:
		return "partial"
	default:
		return fmt.Sprintf("kind-%d", int(k))
	}
}

// KindBySlug resolves a canonical machine-readable algorithm name.
func KindBySlug(s string) (Kind, bool) {
	for k := Kind(0); k < numKinds; k++ {
		if k.Slug() == s {
			return k, true
		}
	}
	return 0, false
}

// String names the algorithm as the paper does.
func (k Kind) String() string {
	switch k {
	case SerialPacket:
		return "Serial Packet"
	case SerialDevice:
		return "Serial Device"
	case Parallel:
		return "Parallel"
	case Distributed:
		return "Distributed"
	case Partial:
		return "Partial"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}
