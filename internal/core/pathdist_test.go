package core

import (
	"testing"

	"repro/internal/asi"
	"repro/internal/fabric"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/topo"
)

func TestEventRoutesActuallyWork(t *testing.T) {
	// After distribution, every device must be able to deliver a PI-5
	// to the FM — the property the whole change-detection chain rests on.
	tp := topo.Torus(4, 4)
	e, f, m := setup(t, tp, Parallel)
	runDiscovery(t, e, m)
	m.DistributeEventRoutes(func(d DistResult) {
		if d.Failures != 0 {
			t.Fatalf("distribution failures: %d", d.Failures)
		}
	})
	e.Run()

	// Bypass the manager: count raw PI-5 deliveries at the FM endpoint.
	received := map[asi.DSN]bool{}
	m.Device().SetHandler(fabric.HandlerFunc(func(port int, pkt *asi.Packet) {
		if ev, ok := pkt.Payload.(asi.PI5); ok {
			received[ev.Reporter] = true
		}
	}))
	for _, d := range f.Devices() {
		if d.DSN == m.Device().DSN {
			continue
		}
		d.EmitPI5(asi.PI5PortUp, 0)
	}
	e.Run()
	for _, d := range f.Devices() {
		if d.DSN == m.Device().DSN {
			continue
		}
		if !received[d.DSN] {
			t.Errorf("PI-5 from %s never reached the FM", d.Label)
		}
	}
}

func TestEventRouteForSelfTurnCase(t *testing.T) {
	// A switch whose arrival port equals the virtual ingress needs the
	// maximal self-turn; ensure encoding succeeds and the route works.
	tp := topo.Mesh(3, 3)
	e, f, m := setup(t, tp, Parallel)
	runDiscovery(t, e, m)
	for _, n := range m.DB().Nodes() {
		if n.DSN == m.Device().DSN {
			continue
		}
		if _, _, err := m.EventRouteFor(n); err != nil {
			t.Errorf("EventRouteFor(%v): %v", n.DSN, err)
		}
	}
	_ = f
}

func TestEndpointPathTableComplete(t *testing.T) {
	tp := topo.Mesh(3, 3)
	e, _, m := setup(t, tp, Parallel)
	runDiscovery(t, e, m)
	table := m.EndpointPathTable()
	if len(table) != 9 {
		t.Fatalf("table has %d sources, want 9", len(table))
	}
	for src, row := range table {
		if len(row) != 8 {
			t.Errorf("source %v has %d destinations, want 8", src, len(row))
		}
		for dst, p := range row {
			if p == nil {
				t.Errorf("nil path %v -> %v", src, dst)
			}
			if _, _, err := route.Encode(p); err != nil {
				t.Errorf("unencodable path %v -> %v: %v", src, dst, err)
			}
		}
	}
}

func TestEndpointPathTablePathsDeliver(t *testing.T) {
	// Inject application data along every table path and confirm the
	// right endpoint receives it — the table is real, not just decorative.
	tp := topo.Torus(3, 3)
	e, f, m := setup(t, tp, Parallel)
	runDiscovery(t, e, m)
	table := m.EndpointPathTable()

	counts := map[asi.DSN]int{}
	for _, id := range tp.Endpoints() {
		d := f.Device(id)
		if d.DSN == m.Device().DSN {
			continue
		}
		dsn := d.DSN
		d.SetHandler(fabric.HandlerFunc(func(port int, pkt *asi.Packet) {
			if _, ok := pkt.Payload.(asi.AppData); ok {
				counts[dsn]++
			}
		}))
	}

	src := m.Device()
	for dst, p := range table[src.DSN] {
		hdr, err := route.Header(p, asi.PIApplication)
		if err != nil {
			t.Fatalf("path to %v: %v", dst, err)
		}
		hdr.TC = 0
		src.Inject(&asi.Packet{Header: hdr, Payload: asi.AppData{Bytes: 64}})
	}
	e.Run()
	for dst := range table[src.DSN] {
		if counts[dst] != 1 {
			t.Errorf("endpoint %v received %d packets, want 1", dst, counts[dst])
		}
	}
}

func TestDistributionAfterChangeStillWorks(t *testing.T) {
	// Rediscover after a removal, redistribute, and confirm reporting
	// still functions — the full maintenance loop.
	tp := topo.Mesh(4, 4)
	e, f, m := setup(t, tp, Parallel)
	runDiscovery(t, e, m)
	m.DistributeEventRoutes(nil)
	e.Run()

	var rediscovered bool
	m.OnDiscoveryComplete = func(Result) { rediscovered = true }
	if err := f.SetDeviceDown(10, false); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !rediscovered {
		t.Fatal("change assimilation did not run")
	}

	var dist *DistResult
	m.DistributeEventRoutes(func(d DistResult) { dist = &d })
	e.Run()
	if dist == nil {
		t.Fatal("redistribution did not complete")
	}
	if dist.Failures != 0 {
		t.Errorf("redistribution failures: %d", dist.Failures)
	}
	if dist.Writes != m.DB().NumNodes()-1 {
		t.Errorf("wrote %d routes for %d devices", dist.Writes, m.DB().NumNodes())
	}
}

func TestDistributeDuringDiscoveryPanics(t *testing.T) {
	e, _, m := setup(t, topo.Mesh(3, 3), Parallel)
	m.StartDiscovery()
	defer func() {
		if recover() == nil {
			t.Error("distribution during discovery did not panic")
		}
	}()
	m.DistributeEventRoutes(nil)
	e.Run()
}

func TestDistResultTiming(t *testing.T) {
	e, _, m := setup(t, topo.Mesh(3, 3), Parallel)
	runDiscovery(t, e, m)
	var d DistResult
	m.DistributeEventRoutes(func(r DistResult) { d = r })
	e.Run()
	if d.Duration <= 0 {
		t.Errorf("distribution duration = %v", d.Duration)
	}
	if d.BytesSent == 0 {
		t.Error("no bytes accounted")
	}
	if d.End.Sub(d.Start) != d.Duration {
		t.Error("duration inconsistent")
	}
	_ = sim.Time(0)
}
