package core

import (
	"testing"

	"repro/internal/asi"
	"repro/internal/fabric"
	"repro/internal/topo"
)

// multicastSetup discovers the fabric and programs one group over it.
func multicastSetup(t *testing.T, tp *topo.Topology, mgid uint16, memberIdx []int) (*Manager, *fabric.Fabric, []asi.DSN, func()) {
	t.Helper()
	e, f, m := setup(t, tp, Parallel)
	runDiscovery(t, e, m)
	eps := tp.Endpoints()
	members := make([]asi.DSN, len(memberIdx))
	for i, idx := range memberIdx {
		members[i] = f.Device(eps[idx]).DSN
	}
	var dist *DistResult
	if err := m.ProgramMulticastGroup(mgid, members, func(d DistResult) { dist = &d }); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if dist == nil {
		t.Fatal("multicast programming did not complete")
	}
	if dist.Failures != 0 {
		t.Fatalf("MFT write failures: %d", dist.Failures)
	}
	return m, f, members, func() { e.Run() }
}

// countMulticastDeliveries sends one group packet from the given member
// and returns per-endpoint delivery counts.
func countMulticastDeliveries(t *testing.T, f *fabric.Fabric, from asi.DSN, mgid uint16, run func()) map[asi.DSN]int {
	t.Helper()
	counts := map[asi.DSN]int{}
	for _, d := range f.Devices() {
		if d.Type != asi.DeviceEndpoint {
			continue
		}
		d := d
		d.SetHandler(fabric.HandlerFunc(func(port int, pkt *asi.Packet) {
			if pkt.Header.Multicast {
				counts[d.DSN]++
			}
		}))
	}
	src, ok := f.DeviceByDSN(from)
	if !ok {
		t.Fatal("unknown source")
	}
	src.Inject(&asi.Packet{
		Header:  asi.RouteHeader{Multicast: true, MGID: mgid, PI: asi.PIApplication},
		Payload: asi.AppData{Bytes: 128},
	})
	run()
	return counts
}

func TestMulticastReachesAllMembersExactlyOnce(t *testing.T) {
	tp := topo.Mesh(4, 4)
	_, f, members, run := multicastSetup(t, tp, 3, []int{0, 5, 10, 15})
	for _, sender := range members {
		counts := countMulticastDeliveries(t, f, sender, 3, run)
		for _, member := range members {
			want := 1
			if member == sender {
				want = 0
			}
			if counts[member] != want {
				t.Errorf("sender %v: member %v received %d, want %d", sender, member, counts[member], want)
			}
		}
		// Non-members must receive nothing.
		for dsn, c := range counts {
			isMember := false
			for _, m := range members {
				if m == dsn {
					isMember = true
				}
			}
			if !isMember && c != 0 {
				t.Errorf("non-member %v received %d multicast packets", dsn, c)
			}
		}
	}
}

func TestMulticastNoLoopsOnTorus(t *testing.T) {
	// A torus is full of cycles; the tree must still deliver exactly
	// once and the packet storm must terminate.
	tp := topo.Torus(4, 4)
	_, f, members, run := multicastSetup(t, tp, 0, []int{0, 3, 12, 15})
	counts := countMulticastDeliveries(t, f, members[0], 0, run)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(members)-1 {
		t.Errorf("delivered %d packets for %d receivers", total, len(members)-1)
	}
}

func TestMulticastUnknownGroupDropped(t *testing.T) {
	tp := topo.Mesh(3, 3)
	_, f, members, run := multicastSetup(t, tp, 1, []int{0, 4})
	before := f.Counters().Drops[fabric.DropRouteError]
	counts := countMulticastDeliveries(t, f, members[0], 9 /* unprogrammed */, run)
	for dsn, c := range counts {
		if c != 0 {
			t.Errorf("endpoint %v received packets for an unprogrammed group", dsn)
		}
	}
	if f.Counters().Drops[fabric.DropRouteError] <= before {
		t.Error("no drop recorded for unknown group")
	}
}

func TestMulticastValidation(t *testing.T) {
	tp := topo.Mesh(3, 3)
	e, f, m := setup(t, tp, Parallel)
	runDiscovery(t, e, m)
	epDSN := f.Device(tp.Endpoints()[1]).DSN
	swDSN := f.Device(0).DSN
	cases := []struct {
		mgid    uint16
		members []asi.DSN
	}{
		{asi.MFTGroups, []asi.DSN{m.Device().DSN, epDSN}}, // group out of range
		{0, []asi.DSN{epDSN}},                             // too few members
		{0, []asi.DSN{epDSN, 0xdead}},                     // unknown member
		{0, []asi.DSN{epDSN, swDSN}},                      // switch member
	}
	for _, c := range cases {
		if _, err := m.ComputeMulticastTree(c.mgid, c.members); err == nil {
			t.Errorf("ComputeMulticastTree(%d, %v) accepted", c.mgid, c.members)
		}
	}
}

func TestMulticastTreeMasksSaneOnMesh(t *testing.T) {
	tp := topo.Mesh(3, 3)
	e, f, m := setup(t, tp, Parallel)
	runDiscovery(t, e, m)
	eps := tp.Endpoints()
	members := []asi.DSN{f.Device(eps[0]).DSN, f.Device(eps[8]).DSN}
	tree, err := m.ComputeMulticastTree(2, members)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.SwitchMasks) == 0 {
		t.Fatal("empty tree")
	}
	// Corner-to-corner in a 3x3 mesh spans 5 switches on a shortest path.
	if len(tree.SwitchMasks) != 5 {
		t.Errorf("tree spans %d switches, want 5", len(tree.SwitchMasks))
	}
	for dsn, mask := range tree.SwitchMasks {
		bits := 0
		for i := 0; i < 32; i++ {
			if mask&(1<<uint(i)) != 0 {
				bits++
			}
		}
		if bits < 2 {
			t.Errorf("switch %v has %d tree ports; a relay needs at least 2", dsn, bits)
		}
	}
	_ = e
}
