package core

import "repro/internal/sim"

// CostModel is the FM packet-processing time model. The paper measured
// these times by profiling a software FM on an Intel Pentium 4 (3.00 GHz)
// and found (Fig. 4) that processing a PI-4 packet at the FM
//
//   - is slightly cheaper for the Parallel implementation than for the
//     serial ones, because the serial algorithms' bookkeeping (exploration
//     queue, per-device phase tracking) is more complex, and
//   - grows mildly with network size, because the FM's topology database
//     grows.
//
// We reproduce that surface with a per-algorithm affine model in the
// number of devices currently in the FM's database. The absolute
// calibration (tens of microseconds) matches the paper's Fig. 4 range;
// the experiments scale it with the FM processing factor exactly as the
// paper's Figs. 8-9 do.
type CostModel struct {
	// Base is the per-algorithm fixed cost of processing one packet.
	Base [numKinds]sim.Duration
	// PerDevice is the additional cost per device already present in
	// the topology database.
	PerDevice [numKinds]sim.Duration
	// Event is the cost of processing a PI-5 event report.
	Event sim.Duration
}

// DefaultCostModel returns the calibration used by the experiments.
// Distributed and Partial reuse the Parallel profile: they run the same
// propagation-order engine.
func DefaultCostModel() CostModel {
	var c CostModel
	c.Base[SerialPacket] = 18 * sim.Microsecond
	c.Base[SerialDevice] = 16 * sim.Microsecond
	c.Base[Parallel] = 12 * sim.Microsecond
	c.Base[Distributed] = c.Base[Parallel]
	c.Base[Partial] = c.Base[Parallel]
	c.PerDevice[SerialPacket] = 60 * sim.Nanosecond
	c.PerDevice[SerialDevice] = 50 * sim.Nanosecond
	c.PerDevice[Parallel] = 40 * sim.Nanosecond
	c.PerDevice[Distributed] = c.PerDevice[Parallel]
	c.PerDevice[Partial] = c.PerDevice[Parallel]
	c.Event = 8 * sim.Microsecond
	return c
}

// FMProcessing returns the time the FM spends processing one management
// packet under algorithm k with dbSize devices discovered so far, scaled
// by the FM processing-speed factor (time = base/factor, so factor 4 is a
// 4x faster manager, as in the paper's Fig. 9c).
func (c CostModel) FMProcessing(k Kind, dbSize int, factor float64) sim.Duration {
	d := c.Base[k] + sim.Duration(dbSize)*c.PerDevice[k]
	if factor > 0 && factor != 1 {
		d = d.Scale(1 / factor)
	}
	return d
}

// EventProcessing returns the scaled cost of a PI-5 report at the FM.
func (c CostModel) EventProcessing(factor float64) sim.Duration {
	if factor > 0 && factor != 1 {
		return c.Event.Scale(1 / factor)
	}
	return c.Event
}
