package core

import (
	"sort"

	"repro/internal/asi"
	"repro/internal/sim"
)

// Continuous assimilation: the coalescing front-end to the Partial path.
//
// Per-event assimilation (handleEventPartial) pays one localized run per
// PI-5 report, which collapses under churn storms — N flaps on one link
// cost N runs even though only the final state matters. With
// Options.AssimWindow set, reports instead accumulate in a sim-timer
// debounce window: duplicate or superseded reports for the same
// (reporter, port) collapse to the final state, and one batched partial
// run walks the union of affected subtrees. The window slides with each
// arrival; Options.AssimBatchMax bounds it so a sustained event stream
// cannot postpone the flush forever.

// assimKey identifies the port a PI-5 report is about; later reports for
// the same key supersede earlier ones.
type assimKey struct {
	rep  asi.DSN
	port uint8
}

// assimEnabled reports whether the coalescing front-end is active.
func (m *Manager) assimEnabled() bool { return m.assimPending != nil }

// initAssim arms the coalescing state; called from NewManager when the
// options select it.
func (m *Manager) initAssim() {
	m.assimPending = make(map[assimKey]asi.PI5)
	m.assimTimer = m.e.NewTimer(func(*sim.Engine) { m.queueAssimFlush() })
}

// coalesce absorbs one accepted (non-stale) PI-5 report into the pending
// batch and re-arms the debounce window.
func (m *Manager) coalesce(ev asi.PI5) {
	k := assimKey{rep: ev.Reporter, port: ev.Port}
	if m.tel != nil {
		m.tel.assimEvents.Inc()
		if m.assimEvents > 0 {
			m.tel.assimCoalesced.Inc()
		}
		if _, dup := m.assimPending[k]; dup {
			m.tel.assimSuperseded.Inc()
		}
	}
	m.assimPending[k] = ev
	m.assimEvents++
	if len(m.assimPending) >= m.opt.AssimBatchMax {
		m.queueAssimFlush()
		return
	}
	m.assimTimer.ScheduleAfter(m.opt.AssimWindow)
}

// queueAssimFlush moves the pending batch into the FM's serial work queue
// (the flush pays FM processing time like any other work item). The
// debounce timer and the batch cap both land here; the assimQueued flag
// keeps them from enqueueing the flush twice.
func (m *Manager) queueAssimFlush() {
	m.assimTimer.Stop()
	if m.assimQueued || len(m.assimPending) == 0 {
		return
	}
	m.assimQueued = true
	m.enqueue(work{kind: wFlush})
}

// dropAssimPending discards the pending batch because a full rediscovery
// is about to rebuild the database: the run observes the fabric's current
// state, which already reflects every batched change. Dirtying the run
// preserves the per-event guarantee that no accepted report is ever
// silently absorbed without a run covering it.
func (m *Manager) dropAssimPending() {
	if !m.assimEnabled() || len(m.assimPending) == 0 {
		return
	}
	for k := range m.assimPending {
		delete(m.assimPending, k)
	}
	m.assimEvents = 0
	m.assimTimer.Stop()
	m.dirty = true
}

// applyAssimBatch drains the pending batch through one batched partial
// run: every down is applied first (link removals and port flags), the
// source routes are repaired once over the union of lost links, and the
// ups are probed last over the repaired database. Reporters the FM does
// not know (pruned meanwhile, or no baseline) fall back to a coalesced
// full rediscovery, exactly as a per-event report from them would.
func (m *Manager) applyAssimBatch() {
	m.assimQueued = false
	if len(m.assimPending) == 0 {
		return
	}
	events := m.assimEvents
	m.assimEvents = 0
	if m.tel != nil {
		m.tel.assimFlushes.Inc()
		m.tel.assimBatch.Observe(int64(events))
	}
	keys := make([]assimKey, 0, len(m.assimPending))
	for k := range m.assimPending {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].rep != keys[j].rep {
			return keys[i].rep < keys[j].rep
		}
		return keys[i].port < keys[j].port
	})
	batch := make([]asi.PI5, 0, len(keys))
	for _, k := range keys {
		batch = append(batch, m.assimPending[k])
		delete(m.assimPending, k)
	}

	if m.discovering && !m.partialRun {
		// A full (initial) discovery is mid-flight; fold the whole batch
		// into a rerun.
		m.dirty = true
		return
	}
	if m.db.Node(m.dev.DSN) == nil {
		m.scheduleDiscovery() // no baseline topology
		return
	}
	if !m.discovering {
		m.beginPartialRun()
	}
	m.res.Coalesced += events

	// Downs first: remove every lost link, then repair paths once.
	repaired := false
	for _, ev := range batch {
		if ev.Code != asi.PI5PortDown {
			continue
		}
		rep := m.db.Node(ev.Reporter)
		if rep == nil {
			m.scheduleDiscovery()
			continue
		}
		if m.dropLink(rep, int(ev.Port)) {
			repaired = true
		}
	}
	if repaired {
		m.refreshPaths()
	}
	// Ups last, over the repaired database: exploration expands from the
	// re-activated ports and stops wherever it meets known devices.
	for _, ev := range batch {
		if ev.Code != asi.PI5PortUp {
			continue
		}
		rep := m.db.Node(ev.Reporter)
		if rep == nil {
			m.scheduleDiscovery()
			continue
		}
		m.partialUp(rep, int(ev.Port))
	}
}

// AssimPending reports how many distinct (reporter, port) changes wait in
// the debounce window. The daemon's keeper uses it as the debounce-flush
// concern: a non-empty batch at a deadline is drained by running the
// simulation (the armed debounce timer fires inside).
func (m *Manager) AssimPending() int { return len(m.assimPending) }

// ExpireReporters prunes PI-5 sequence cursors for devices no longer in
// the database — the dead-device expiry the daemon's keeper runs so the
// cursor map cannot grow without bound under steady-state churn (full
// rediscoveries rebuild the database but never touched the cursors).
// Call it at quiescence; a device that later rejoins kept its monotonic
// sequence counter, so accepting its next report fresh is safe.
func (m *Manager) ExpireReporters() int {
	n := 0
	for dsn := range m.partialSeq {
		if m.db.Node(dsn) == nil {
			delete(m.partialSeq, dsn)
			n++
		}
	}
	return n
}

// DBStaleness computes percentiles of per-node database staleness: the
// simulated time since each node's entry was last validated by contact
// with the device (probe, port read, or verify completion). The daemon
// keys its stale-region re-audit concern off the max and publishes the
// percentiles next to the RIB generation-lag SLO.
func (m *Manager) DBStaleness() (p50, p99, max sim.Duration) {
	nodes := m.db.Nodes()
	if len(nodes) == 0 {
		return 0, 0, 0
	}
	now := m.e.Now()
	ages := make([]sim.Duration, 0, len(nodes))
	for _, n := range nodes {
		ages = append(ages, now.Sub(n.Validated))
	}
	sort.Slice(ages, func(i, j int) bool { return ages[i] < ages[j] })
	return ages[len(ages)/2], ages[len(ages)*99/100], ages[len(ages)-1]
}

// RecordDBStaleness publishes the staleness percentiles as gauges; a
// no-op without telemetry.
func (m *Manager) RecordDBStaleness() {
	if m.tel == nil {
		return
	}
	p50, p99, max := m.DBStaleness()
	m.tel.stalenessP50.Set(int64(p50))
	m.tel.stalenessP99.Set(int64(p99))
	m.tel.stalenessMax.Set(int64(max))
}

// removeNode drops a device from the database and forgets its PI-5
// sequence cursor with it — the partial path's half of the unbounded-map
// fix (ExpireReporters covers devices dropped by full-run rebuilds). The
// cursor is safe to forget: sequence numbers are monotonic for the
// device's lifetime, so a rejoining device's next genuine report would
// have been accepted either way.
func (m *Manager) removeNode(dsn asi.DSN) {
	m.db.RemoveNode(dsn)
	delete(m.partialSeq, dsn)
}
