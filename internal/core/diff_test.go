package core

import (
	"strings"
	"testing"

	"repro/internal/asi"
	"repro/internal/topo"
)

func TestDiffDBsBasics(t *testing.T) {
	old := buildTestDB()
	new := buildTestDB()
	d := DiffDBs(old, new)
	if !d.Empty() || d.String() != "no change" {
		t.Errorf("identical DBs diff: %v", d)
	}
	new.RemoveNode(11) // drops switch B and its 3 links
	d = DiffDBs(old, new)
	if len(d.RemovedDevices) != 1 || d.RemovedDevices[0] != 11 {
		t.Errorf("removed devices: %v", d.RemovedDevices)
	}
	if len(d.RemovedLinks) != 3 {
		t.Errorf("removed links: %v", d.RemovedLinks)
	}
	if len(d.AddedDevices) != 0 || len(d.AddedLinks) != 0 {
		t.Errorf("spurious additions: %v", d)
	}
	if !strings.Contains(d.String(), "-1 devices") || !strings.Contains(d.String(), "-3 links") {
		t.Errorf("summary: %q", d.String())
	}
	// Reverse direction.
	d = DiffDBs(new, old)
	if len(d.AddedDevices) != 1 || len(d.AddedLinks) != 3 {
		t.Errorf("reverse diff: %v", d)
	}
}

func TestDiffDBsNilSafe(t *testing.T) {
	db := buildTestDB()
	d := DiffDBs(nil, db)
	if len(d.AddedDevices) != 4 || len(d.AddedLinks) != 4 {
		t.Errorf("nil-old diff: %v", d)
	}
	d = DiffDBs(db, nil)
	if len(d.RemovedDevices) != 4 || len(d.RemovedLinks) != 4 {
		t.Errorf("nil-new diff: %v", d)
	}
	if !DiffDBs(nil, nil).Empty() {
		t.Error("nil-nil diff not empty")
	}
}

func TestAssimilationReportsExactChange(t *testing.T) {
	tp := topo.Mesh(3, 3)
	e, f, m := setup(t, tp, Parallel)
	first := runDiscovery(t, e, m)
	if first.Changes != nil {
		t.Error("first discovery carries a change report")
	}
	m.DistributeEventRoutes(nil)
	e.Run()

	var res *Result
	m.OnDiscoveryComplete = func(r Result) { res = &r }
	if err := f.SetDeviceDown(8, false); err != nil { // corner sw(2,2)
		t.Fatal(err)
	}
	e.Run()
	if res == nil || res.Changes == nil {
		t.Fatal("assimilation produced no change report")
	}
	d := *res.Changes
	// Corner removal strands the switch and its endpoint; 3 links die
	// (2 mesh links + host link).
	if len(d.RemovedDevices) != 2 {
		t.Errorf("removed devices: %v", d.RemovedDevices)
	}
	if len(d.RemovedLinks) != 3 {
		t.Errorf("removed links: %v", d.RemovedLinks)
	}
	if len(d.AddedDevices) != 0 || len(d.AddedLinks) != 0 {
		t.Errorf("spurious additions: %+v", d)
	}
	sw := f.Device(8).DSN
	found := false
	for _, dsn := range d.RemovedDevices {
		if dsn == sw {
			found = true
		}
	}
	if !found {
		t.Error("removed switch not named in the report")
	}

	// Restore: the next report shows exactly the additions.
	res = nil
	if err := f.SetDeviceUp(8, false); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if res == nil || res.Changes == nil {
		t.Fatal("re-addition produced no change report")
	}
	if len(res.Changes.AddedDevices) != 2 || len(res.Changes.AddedLinks) != 3 {
		t.Errorf("addition report: %+v", *res.Changes)
	}
	if len(res.Changes.RemovedDevices) != 0 {
		t.Errorf("spurious removals: %v", res.Changes.RemovedDevices)
	}
	_ = asi.DSN(0)
}
