package core

import (
	"fmt"

	"repro/internal/asi"
)

// Multicast group management — one of the FM tasks the specification
// lists (paper section 2). The FM computes a shared distribution tree
// spanning the group's member endpoints over its topology database and
// programs the per-switch multicast forwarding tables (port masks) with
// PI-4 writes. Any member can then source packets to the group: switches
// replicate along all tree ports except the arrival port, so the tree
// structure itself prevents loops.

// MulticastTree describes a programmed group.
type MulticastTree struct {
	MGID    uint16
	Members []asi.DSN
	// SwitchMasks holds the replication port mask per tree switch.
	SwitchMasks map[asi.DSN]uint32
}

// ComputeMulticastTree builds the shared tree for a member set: the union
// of database shortest paths from the first member to every other. All
// members must be discovered endpoints reachable in the database.
func (m *Manager) ComputeMulticastTree(mgid uint16, members []asi.DSN) (*MulticastTree, error) {
	if int(mgid) >= asi.MFTGroups {
		return nil, fmt.Errorf("core: multicast group %d out of range 0..%d", mgid, asi.MFTGroups-1)
	}
	if len(members) < 2 {
		return nil, fmt.Errorf("core: multicast group needs at least 2 members, got %d", len(members))
	}
	for _, dsn := range members {
		n := m.db.Node(dsn)
		if n == nil {
			return nil, fmt.Errorf("core: multicast member %v not in topology database", dsn)
		}
		if n.Type != asi.DeviceEndpoint {
			return nil, fmt.Errorf("core: multicast member %v is not an endpoint", dsn)
		}
	}
	tree := &MulticastTree{
		MGID:        mgid,
		Members:     append([]asi.DSN(nil), members...),
		SwitchMasks: map[asi.DSN]uint32{},
	}
	root := members[0]
	for _, dst := range members[1:] {
		chain := m.db.Chain(root, dst)
		if chain == nil {
			return nil, fmt.Errorf("core: multicast member %v unreachable from %v", dst, root)
		}
		for _, l := range chain {
			if from := m.db.Node(l.From); from != nil && from.Type == asi.DeviceSwitch {
				if l.FromPort >= 32 {
					return nil, fmt.Errorf("core: port %d exceeds the 32-port MFT mask", l.FromPort)
				}
				tree.SwitchMasks[l.From] |= 1 << uint(l.FromPort)
			}
			if to := m.db.Node(l.To); to != nil && to.Type == asi.DeviceSwitch {
				if l.ToPort >= 32 {
					return nil, fmt.Errorf("core: port %d exceeds the 32-port MFT mask", l.ToPort)
				}
				tree.SwitchMasks[l.To] |= 1 << uint(l.ToPort)
			}
		}
	}
	return tree, nil
}

// ProgramMulticastGroup computes the group's tree and writes every tree
// switch's forwarding-table entry over the fabric, reusing the parallel
// distribution engine. onDone fires when the last write completes.
func (m *Manager) ProgramMulticastGroup(mgid uint16, members []asi.DSN, onDone func(DistResult)) error {
	if m.discovering {
		return fmt.Errorf("core: cannot program multicast during discovery")
	}
	tree, err := m.ComputeMulticastTree(mgid, members)
	if err != nil {
		return err
	}
	m.dist = &distState{res: DistResult{Start: m.e.Now()}, onDone: onDone}
	for _, n := range m.db.Nodes() {
		mask, ok := tree.SwitchMasks[n.DSN]
		if !ok {
			continue
		}
		req := &request{kind: reqWrite, path: n.Path, dsn: n.DSN}
		payload := asi.PI4{
			Op:     asi.PI4WriteRequest,
			Offset: asi.MFTEntryOffset(n.Ports, mgid),
			Data:   []uint32{mask},
		}
		sz := (&asi.Packet{Payload: payload}).WireSize()
		if !m.send(req, payload) {
			m.dist.res.Failures++
			continue
		}
		m.dist.res.Writes++
		m.dist.res.BytesSent += uint64(sz)
		m.dist.outstanding++
	}
	if m.dist.outstanding == 0 {
		m.finishDist()
	}
	return nil
}
