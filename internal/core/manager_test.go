package core

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
)

// setup builds a fabric over tp and attaches a manager with the given
// algorithm to the first endpoint.
func setup(t *testing.T, tp *topo.Topology, kind Kind) (*sim.Engine, *fabric.Fabric, *Manager) {
	t.Helper()
	e := sim.NewEngine()
	f, err := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	ep := f.Device(tp.Endpoints()[0])
	m := NewManager(f, ep, Options{Algorithm: kind})
	return e, f, m
}

// groundTruth walks the live fabric from the manager's endpoint and
// returns the expected device and link counts. The exported definition
// lives in chaos.GroundTruth; this internal-test copy exists because
// chaos imports core, so package-core test files cannot import chaos
// without a cycle (property_test.go moved to core_test for that reason).
func groundTruth(f *fabric.Fabric, start topo.NodeID) (devices, links int) {
	alive := map[topo.NodeID]bool{}
	if !f.Device(start).Alive() {
		return 0, 0
	}
	seen := map[topo.NodeID]bool{start: true}
	queue := []topo.NodeID{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		alive[n] = true
		for p := 0; p < f.Device(n).Ports(); p++ {
			peer, _, ok := f.Topo.Peer(n, p)
			if !ok || !f.Device(peer).Alive() || seen[peer] {
				continue
			}
			if !f.Device(n).PortActive(p) {
				continue
			}
			seen[peer] = true
			queue = append(queue, peer)
		}
	}
	for _, l := range f.Topo.Links {
		if alive[l.A] && alive[l.B] {
			links++
		}
	}
	return len(alive), links
}

// runDiscovery starts a discovery and returns the result.
func runDiscovery(t *testing.T, e *sim.Engine, m *Manager) Result {
	t.Helper()
	var res Result
	done := false
	m.OnDiscoveryComplete = func(r Result) { res = r; done = true }
	m.StartDiscovery()
	e.Run()
	if !done {
		t.Fatal("discovery did not complete")
	}
	return res
}

func TestDiscoveryFindsEverythingAllAlgorithmsAllTopologies(t *testing.T) {
	for _, spec := range topo.Table1() {
		for _, kind := range PaperKinds() {
			tp := spec.Build()
			e, f, m := setup(t, tp, kind)
			res := runDiscovery(t, e, m)
			wantDev, wantLinks := groundTruth(f, m.Device().ID)
			if res.Devices != wantDev {
				t.Errorf("%s / %s: discovered %d devices, want %d", spec.Name, kind, res.Devices, wantDev)
			}
			if res.Links != wantLinks {
				t.Errorf("%s / %s: discovered %d links, want %d", spec.Name, kind, res.Links, wantLinks)
			}
			if res.Switches != spec.Switches {
				t.Errorf("%s / %s: discovered %d switches, want %d", spec.Name, kind, res.Switches, spec.Switches)
			}
			if res.TimedOut != 0 {
				t.Errorf("%s / %s: %d timeouts on a healthy fabric", spec.Name, kind, res.TimedOut)
			}
		}
	}
}

func TestAlgorithmOrderingParallelFastest(t *testing.T) {
	durations := map[Kind]sim.Duration{}
	for _, kind := range PaperKinds() {
		e, _, m := setup(t, topo.Mesh(6, 6), kind)
		durations[kind] = runDiscovery(t, e, m).Duration
	}
	if !(durations[Parallel] < durations[SerialDevice]) {
		t.Errorf("Parallel (%v) not faster than Serial Device (%v)",
			durations[Parallel], durations[SerialDevice])
	}
	if !(durations[SerialDevice] < durations[SerialPacket]) {
		t.Errorf("Serial Device (%v) not faster than Serial Packet (%v)",
			durations[SerialDevice], durations[SerialPacket])
	}
}

func TestPacketCountsSimilarAcrossAlgorithms(t *testing.T) {
	// Paper section 4.1: "the amount of discovery packets employed by
	// the serial and parallel discovery algorithms is very similar".
	sent := map[Kind]uint64{}
	for _, kind := range PaperKinds() {
		e, _, m := setup(t, topo.Torus(6, 6), kind)
		sent[kind] = runDiscovery(t, e, m).PacketsSent
	}
	base := sent[SerialPacket]
	for _, kind := range PaperKinds() {
		ratio := float64(sent[kind]) / float64(base)
		if ratio < 0.9 || ratio > 1.15 {
			t.Errorf("%s sent %d packets vs Serial Packet's %d (ratio %.2f)",
				kind, sent[kind], base, ratio)
		}
	}
}

func TestDiscoveryAfterSwitchRemoval(t *testing.T) {
	for _, kind := range PaperKinds() {
		tp := topo.Mesh(4, 4)
		e, f, m := setup(t, tp, kind)
		runDiscovery(t, e, m)
		// Remove a switch quietly and rediscover explicitly.
		if err := f.SetDeviceDown(5, true); err != nil { // sw(1,1)
			t.Fatal(err)
		}
		e.Run()
		res := runDiscovery(t, e, m)
		wantDev, wantLinks := groundTruth(f, m.Device().ID)
		if res.Devices != wantDev || res.Links != wantLinks {
			t.Errorf("%s: rediscovered %d devices / %d links, want %d / %d",
				kind, res.Devices, res.Links, wantDev, wantLinks)
		}
		if res.Devices >= 32 {
			t.Errorf("%s: removal did not shrink the topology (%d devices)", kind, res.Devices)
		}
	}
}

func TestChangeAssimilationEndToEnd(t *testing.T) {
	for _, kind := range PaperKinds() {
		tp := topo.Mesh(3, 3)
		e, f, m := setup(t, tp, kind)
		runDiscovery(t, e, m)

		distDone := false
		m.DistributeEventRoutes(func(d DistResult) {
			distDone = true
			if d.Failures != 0 {
				t.Errorf("%s: %d event-route write failures", kind, d.Failures)
			}
			if d.Writes != 17 { // all devices except the host endpoint
				t.Errorf("%s: %d event-route writes, want 17", kind, d.Writes)
			}
		})
		e.Run()
		if !distDone {
			t.Fatalf("%s: distribution did not complete", kind)
		}

		// Now remove a switch loudly: PI-5 reports must trigger exactly
		// one rediscovery.
		var results []Result
		m.OnDiscoveryComplete = func(r Result) { results = append(results, r) }
		if err := f.SetDeviceDown(4, false); err != nil { // centre switch
			t.Fatal(err)
		}
		e.Run()

		if len(results) != 1 {
			t.Fatalf("%s: change triggered %d discoveries, want 1", kind, len(results))
		}
		wantDev, wantLinks := groundTruth(f, m.Device().ID)
		if results[0].Devices != wantDev || results[0].Links != wantLinks {
			t.Errorf("%s: assimilated %d devices / %d links, want %d / %d",
				kind, results[0].Devices, results[0].Links, wantDev, wantLinks)
		}
	}
}

func TestHotAdditionAssimilation(t *testing.T) {
	tp := topo.Mesh(3, 3)
	e, f, m := setup(t, tp, Parallel)
	// Boot with sw(2,2) absent, then add it after initial discovery.
	if err := f.SetDeviceDown(8, true); err != nil {
		t.Fatal(err)
	}
	runDiscovery(t, e, m)
	if m.DB().NumNodes() != 16 {
		t.Fatalf("baseline discovery found %d devices, want 16", m.DB().NumNodes())
	}
	m.DistributeEventRoutes(nil)
	e.Run()

	var results []Result
	m.OnDiscoveryComplete = func(r Result) { results = append(results, r) }
	if err := f.SetDeviceUp(8, false); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if len(results) != 1 {
		t.Fatalf("addition triggered %d discoveries, want 1", len(results))
	}
	if results[0].Devices != 18 {
		t.Errorf("post-addition topology has %d devices, want 18", results[0].Devices)
	}
}

func TestTimelineMonotonicAndComplete(t *testing.T) {
	for _, kind := range PaperKinds() {
		e, _, m := setup(t, topo.Mesh(3, 3), kind)
		res := runDiscovery(t, e, m)
		if len(res.Timeline) != res.Processed {
			t.Errorf("%s: timeline has %d points, processed %d", kind, len(res.Timeline), res.Processed)
		}
		for i := 1; i < len(res.Timeline); i++ {
			if res.Timeline[i].At < res.Timeline[i-1].At {
				t.Errorf("%s: timeline goes backwards at %d", kind, i)
			}
			if res.Timeline[i].Index != res.Timeline[i-1].Index+1 {
				t.Errorf("%s: timeline indices not dense at %d", kind, i)
			}
		}
	}
}

func TestSerialPacketHasOneRequestInFlight(t *testing.T) {
	// White-box: watch the pending table during a Serial Packet run.
	e, _, m := setup(t, topo.Mesh(3, 3), SerialPacket)
	maxPending := 0
	m.OnDiscoveryComplete = func(Result) {}
	m.StartDiscovery()
	for e.Step() {
		if n := len(m.pending); n > maxPending {
			maxPending = n
		}
	}
	if maxPending != 1 {
		t.Errorf("Serial Packet had up to %d requests in flight, want exactly 1", maxPending)
	}
}

func TestSerialDeviceParallelizesPortReadsOnly(t *testing.T) {
	e, _, m := setup(t, topo.Mesh(3, 3), SerialDevice)
	maxPending := 0
	m.StartDiscovery()
	for e.Step() {
		if n := len(m.pending); n > maxPending {
			maxPending = n
		}
	}
	// A 16-port switch's reads go out together; more than one but never
	// more than one device's worth.
	if maxPending <= 1 || maxPending > topo.GridPorts {
		t.Errorf("Serial Device max in-flight = %d, want in (1, %d]", maxPending, topo.GridPorts)
	}
}

func TestParallelHasManyRequestsInFlight(t *testing.T) {
	// Outstanding work = requests in the fabric plus completions queued
	// at the FM processor (the FM is the pipeline bottleneck, so the
	// backlog accumulates in its queue).
	e, _, m := setup(t, topo.Mesh(4, 4), Parallel)
	maxOutstanding := 0
	m.StartDiscovery()
	for e.Step() {
		if n := len(m.pending) + m.queue.Len(); n > maxOutstanding {
			maxOutstanding = n
		}
	}
	if maxOutstanding <= topo.GridPorts {
		t.Errorf("Parallel max outstanding = %d, want > one device's port reads", maxOutstanding)
	}
}

func TestDiscoveryDeterministic(t *testing.T) {
	for _, kind := range PaperKinds() {
		var prev Result
		for trial := 0; trial < 2; trial++ {
			e, _, m := setup(t, topo.Torus(4, 4), kind)
			res := runDiscovery(t, e, m)
			if trial == 1 {
				if res.Duration != prev.Duration || res.PacketsSent != prev.PacketsSent {
					t.Errorf("%s: nondeterministic: %v/%d vs %v/%d",
						kind, res.Duration, res.PacketsSent, prev.Duration, prev.PacketsSent)
				}
			}
			prev = res
		}
	}
}

func TestRemovalMidDiscoveryTimesOutAndCompletes(t *testing.T) {
	tp := topo.Mesh(4, 4)
	e, f, m := setup(t, tp, Parallel)
	var res *Result
	m.OnDiscoveryComplete = func(r Result) { res = &r }
	m.StartDiscovery()
	// Kill a far switch shortly after discovery starts, while probes are
	// in flight.
	e.After(30*sim.Microsecond, func(*sim.Engine) {
		_ = f.SetDeviceDown(15, true) // sw(3,3)
	})
	e.Run()
	if res == nil {
		t.Fatal("discovery hung after mid-flight removal")
	}
	// Requests addressed to the dead device expire rather than complete.
	if res.Devices == 32 {
		t.Error("dead device still in topology")
	}
}

func TestIsolatedManagerDiscoversOnlyItself(t *testing.T) {
	tp := topo.Mesh(3, 3)
	e := sim.NewEngine()
	f, err := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	ep := f.Device(tp.Endpoints()[0])
	m := NewManager(f, ep, Options{Algorithm: SerialPacket})
	// Cut the endpoint off by killing its host switch.
	if err := f.SetDeviceDown(0, true); err != nil {
		t.Fatal(err)
	}
	res := runDiscovery(t, e, m)
	if res.Devices != 1 || res.Links != 0 {
		t.Errorf("isolated FM discovered %d devices / %d links, want 1 / 0", res.Devices, res.Links)
	}
}

func TestAvgFMProcessingMatchesCostModelOrder(t *testing.T) {
	avg := map[Kind]sim.Duration{}
	for _, kind := range PaperKinds() {
		e, _, m := setup(t, topo.Mesh(6, 6), kind)
		avg[kind] = runDiscovery(t, e, m).AvgFMProcessing()
	}
	if !(avg[Parallel] < avg[SerialDevice] && avg[SerialDevice] < avg[SerialPacket]) {
		t.Errorf("Fig. 4 ordering violated: %v", avg)
	}
}

func TestFMFactorSpeedsUpDiscovery(t *testing.T) {
	run := func(factor float64) sim.Duration {
		tp := topo.Mesh(4, 4)
		e := sim.NewEngine()
		f, err := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		m := NewManager(f, f.Device(tp.Endpoints()[0]), Options{Algorithm: Parallel, FMFactor: factor})
		return runDiscovery(t, e, m).Duration
	}
	slow, fast := run(0.5), run(4)
	if fast >= slow {
		t.Errorf("FM factor 4 (%v) not faster than factor 0.5 (%v)", fast, slow)
	}
	// The Parallel algorithm is FM-bound, so speedup should be roughly
	// proportional.
	if ratio := float64(slow) / float64(fast); ratio < 4 {
		t.Errorf("FM-bound speedup only %.1fx between factors 0.5 and 4", ratio)
	}
}

func TestNewManagerOnSwitchPanics(t *testing.T) {
	tp := topo.Mesh(3, 3)
	e := sim.NewEngine()
	f, _ := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(1))
	defer func() {
		if recover() == nil {
			t.Error("manager on switch did not panic")
		}
	}()
	NewManager(f, f.Device(0), Options{})
}

func TestLastResult(t *testing.T) {
	e, _, m := setup(t, topo.Mesh(3, 3), Parallel)
	if _, ok := m.LastResult(); ok {
		t.Error("LastResult before any run")
	}
	want := runDiscovery(t, e, m)
	got, ok := m.LastResult()
	if !ok || got.Duration != want.Duration {
		t.Error("LastResult mismatch")
	}
	if m.Discovering() {
		t.Error("still discovering after completion")
	}
}

func TestResultStringNonEmpty(t *testing.T) {
	e, _, m := setup(t, topo.Mesh(3, 3), Parallel)
	res := runDiscovery(t, e, m)
	if res.String() == "" || res.AvgFMProcessing() == 0 {
		t.Error("result rendering broken")
	}
}
