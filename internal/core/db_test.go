package core

import (
	"testing"
	"testing/quick"

	"repro/internal/asi"
	"repro/internal/route"
)

// buildTestDB constructs a small known database by hand:
//
//	host ep (dsn 1) -- sw A (dsn 10, 4 ports) -- sw B (dsn 11, 4 ports) -- ep (dsn 2)
//	                       \______________________/
//	                        second parallel link
func buildTestDB() *DB {
	db := NewDB(1)
	db.AddNode(&Node{DSN: 1, Type: asi.DeviceEndpoint, Ports: 1, Path: route.Path{},
		PortKnown: []bool{true}, PortActive: []bool{true}})
	db.AddNode(&Node{DSN: 10, Type: asi.DeviceSwitch, Ports: 4, Path: route.Path{}, ArrivalPort: 0,
		PortKnown: []bool{true, true, true, true}, PortActive: []bool{true, true, true, false}})
	db.AddNode(&Node{DSN: 11, Type: asi.DeviceSwitch, Ports: 4, ArrivalPort: 0,
		Path:      route.Path{{Ports: 4, In: 0, Out: 1}},
		PortKnown: []bool{true, true, true, true}, PortActive: []bool{true, true, true, true}})
	db.AddNode(&Node{DSN: 2, Type: asi.DeviceEndpoint, Ports: 1, ArrivalPort: 0,
		Path:      route.Path{{Ports: 4, In: 0, Out: 1}, {Ports: 4, In: 0, Out: 3}},
		PortKnown: []bool{true}, PortActive: []bool{true}})
	db.AddLink(Link{A: 1, APort: 0, B: 10, BPort: 0})
	db.AddLink(Link{A: 10, APort: 1, B: 11, BPort: 0})
	db.AddLink(Link{A: 10, APort: 2, B: 11, BPort: 2}) // parallel link
	db.AddLink(Link{A: 11, APort: 3, B: 2, BPort: 0})
	return db
}

func TestDBAddNodeDedup(t *testing.T) {
	db := NewDB(1)
	if !db.AddNode(&Node{DSN: 5, Type: asi.DeviceSwitch, Ports: 4}) {
		t.Error("first insert rejected")
	}
	if db.AddNode(&Node{DSN: 5, Type: asi.DeviceSwitch, Ports: 4}) {
		t.Error("duplicate insert accepted")
	}
	if db.NumNodes() != 1 {
		t.Errorf("NumNodes = %d", db.NumNodes())
	}
}

func TestDBLinkNormalization(t *testing.T) {
	db := NewDB(1)
	db.AddLink(Link{A: 7, APort: 2, B: 3, BPort: 5})
	db.AddLink(Link{A: 3, APort: 5, B: 7, BPort: 2}) // same cable, other side
	if db.NumLinks() != 1 {
		t.Errorf("NumLinks = %d, want 1", db.NumLinks())
	}
	if !db.HasLink(Link{A: 7, APort: 2, B: 3, BPort: 5}) {
		t.Error("HasLink false for recorded link")
	}
	if !db.HasLink(Link{A: 3, APort: 5, B: 7, BPort: 2}) {
		t.Error("HasLink false for flipped orientation")
	}
	if l, ok := db.LinkAt(7, 2); !ok || l.normalize() != (Link{A: 3, APort: 5, B: 7, BPort: 2}).normalize() {
		t.Errorf("LinkAt = %+v, %v", l, ok)
	}
	if _, ok := db.LinkAt(7, 9); ok {
		t.Error("LinkAt found a link on an uncabled port")
	}
}

func TestDBLinkNormalizeProperty(t *testing.T) {
	f := func(a, b uint32, ap, bp uint8) bool {
		l1 := Link{A: asi.DSN(a), APort: int(ap), B: asi.DSN(b), BPort: int(bp)}
		l2 := Link{A: asi.DSN(b), APort: int(bp), B: asi.DSN(a), BPort: int(ap)}
		return l1.normalize() == l2.normalize()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDBPathToAdjacent(t *testing.T) {
	db := buildTestDB()
	p, arrive := db.PathTo(10)
	if p == nil || len(p) != 0 {
		t.Fatalf("path to adjacent switch = %v", p)
	}
	if arrive != 0 {
		t.Errorf("arrival port = %d, want 0", arrive)
	}
}

func TestDBPathToMultiHop(t *testing.T) {
	db := buildTestDB()
	p, arrive := db.PathTo(2)
	if len(p) != 2 {
		t.Fatalf("path to far endpoint = %v", p)
	}
	// First hop crosses switch A from its arrival port 0 to port 1 or 2
	// (parallel links; BFS picks the lowest local port).
	if p[0].In != 0 || (p[0].Out != 1 && p[0].Out != 2) {
		t.Errorf("hop 0 = %+v", p[0])
	}
	if p[1].Out != 3 {
		t.Errorf("hop 1 = %+v", p[1])
	}
	if arrive != 0 {
		t.Errorf("arrival port = %d", arrive)
	}
}

func TestDBPathToUnreachable(t *testing.T) {
	db := buildTestDB()
	db.RemoveLink(Link{A: 10, APort: 1, B: 11, BPort: 0})
	// Still reachable over the parallel link.
	if p, _ := db.PathTo(2); p == nil {
		t.Fatal("redundant link not used")
	}
	db.RemoveLink(Link{A: 10, APort: 2, B: 11, BPort: 2})
	if p, _ := db.PathTo(2); p != nil {
		t.Fatalf("unreachable endpoint got path %v", p)
	}
	if p, _ := db.PathTo(999); p != nil {
		t.Error("unknown DSN got a path")
	}
}

func TestDBEndpointsDoNotForward(t *testing.T) {
	// host -- epX -- sw: a path "through" an endpoint must not exist.
	db := NewDB(1)
	db.AddNode(&Node{DSN: 1, Type: asi.DeviceEndpoint, Ports: 1, PortKnown: []bool{true}, PortActive: []bool{true}})
	db.AddNode(&Node{DSN: 2, Type: asi.DeviceEndpoint, Ports: 2, PortKnown: []bool{true, true}, PortActive: []bool{true, true}})
	db.AddNode(&Node{DSN: 10, Type: asi.DeviceSwitch, Ports: 4, PortKnown: make([]bool, 4), PortActive: make([]bool, 4)})
	db.AddLink(Link{A: 1, APort: 0, B: 2, BPort: 0})
	db.AddLink(Link{A: 2, APort: 1, B: 10, BPort: 0})
	if p, _ := db.PathTo(10); p != nil {
		t.Errorf("path through endpoint: %v", p)
	}
}

func TestDBRemoveNodeDropsLinks(t *testing.T) {
	db := buildTestDB()
	db.RemoveNode(11)
	if db.Node(11) != nil {
		t.Error("node still present")
	}
	if db.NumLinks() != 1 { // only host--swA remains
		t.Errorf("NumLinks = %d, want 1", db.NumLinks())
	}
	if p, _ := db.PathTo(2); p != nil {
		t.Error("path survives through removed node")
	}
}

func TestDBReachableFromHost(t *testing.T) {
	db := buildTestDB()
	seen := db.ReachableFromHost()
	if len(seen) != 4 {
		t.Errorf("reachable = %d, want 4", len(seen))
	}
	db.RemoveNode(10)
	seen = db.ReachableFromHost()
	if len(seen) != 1 {
		t.Errorf("reachable after cut = %d, want 1", len(seen))
	}
	empty := NewDB(42)
	if len(empty.ReachableFromHost()) != 0 {
		t.Error("empty DB reachable nonzero")
	}
}

func TestDBNeighborsSorted(t *testing.T) {
	db := buildTestDB()
	nbs := db.NeighborsOf(10)
	if len(nbs) != 3 {
		t.Fatalf("NeighborsOf(10) = %v", nbs)
	}
	for i := 1; i < len(nbs); i++ {
		if nbs[i].LocalPort < nbs[i-1].LocalPort {
			t.Error("neighbors not sorted by local port")
		}
	}
}

func TestDBNodesAndLinksSorted(t *testing.T) {
	db := buildTestDB()
	nodes := db.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i].DSN < nodes[i-1].DSN {
			t.Error("nodes not sorted")
		}
	}
	links := db.Links()
	if len(links) != 4 {
		t.Errorf("Links() = %d entries", len(links))
	}
	if db.String() == "" {
		t.Error("empty String")
	}
}

func TestDBPathBetweenEndpoints(t *testing.T) {
	db := buildTestDB()
	p := db.PathBetween(2, 1)
	if len(p) != 2 {
		t.Fatalf("PathBetween(2,1) = %v", p)
	}
	// Reverse direction exists too and has the same length.
	q := db.PathBetween(1, 2)
	if len(q) != len(p) {
		t.Errorf("asymmetric path lengths %d vs %d", len(p), len(q))
	}
	if db.PathBetween(99, 1) != nil {
		t.Error("unknown source got a path")
	}
}

func TestNodePortsRead(t *testing.T) {
	n := &Node{PortKnown: []bool{true, false}}
	if n.PortsRead() {
		t.Error("incomplete ports reported read")
	}
	n.PortKnown[1] = true
	if !n.PortsRead() {
		t.Error("complete ports reported unread")
	}
}
