package core

import (
	"fmt"
	"sort"

	"repro/internal/asi"
	"repro/internal/route"
	"repro/internal/sim"
)

// Node is one discovered device in the FM's topology database.
type Node struct {
	DSN  asi.DSN
	Type asi.DeviceType
	// Ports is the device's port count from its general information.
	Ports int
	// Path is the source route from the FM's endpoint to this device.
	Path route.Path
	// ArrivalPort is the device port on which FM requests arrive along
	// Path — the far end of the link the FM crossed to reach it.
	ArrivalPort int
	// PortKnown and PortActive record per-port attribute reads.
	PortKnown  []bool
	PortActive []bool
	// General keeps the raw decoded general information.
	General asi.GeneralInfo
	// Validated stamps the last simulated instant the FM heard from the
	// device itself (probe, port read, or verify completion) — the
	// per-node staleness the daemon's keeper ages re-audits on. It is
	// bookkeeping, not topology: Fingerprint ignores it.
	Validated sim.Time
}

// PortsRead reports whether every port's attributes have been read.
func (n *Node) PortsRead() bool {
	for _, k := range n.PortKnown {
		if !k {
			return false
		}
	}
	return true
}

// Link records a discovered cable between two device ports.
type Link struct {
	A     asi.DSN
	APort int
	B     asi.DSN
	BPort int
}

// normalize orders the endpoints so a link has one canonical key.
func (l Link) normalize() Link {
	if l.B < l.A || (l.B == l.A && l.BPort < l.APort) {
		return Link{A: l.B, APort: l.BPort, B: l.A, BPort: l.APort}
	}
	return l
}

// DB is the fabric manager's topology database, rebuilt from scratch on
// every (full) discovery, as the paper assumes: "the FM obtains the
// complete fabric topology, discarding all the previously collected
// information".
type DB struct {
	// HostDSN is the endpoint hosting the FM.
	HostDSN asi.DSN
	nodes   map[asi.DSN]*Node
	links   map[Link]bool
}

// NewDB returns an empty database for an FM hosted on the given endpoint.
func NewDB(host asi.DSN) *DB {
	return &DB{HostDSN: host, nodes: make(map[asi.DSN]*Node), links: make(map[Link]bool)}
}

// Node returns the database entry for a DSN, or nil.
func (db *DB) Node(dsn asi.DSN) *Node { return db.nodes[dsn] }

// NumNodes returns the number of discovered devices (including the host).
func (db *DB) NumNodes() int { return len(db.nodes) }

// NumSwitches counts discovered switches.
func (db *DB) NumSwitches() int {
	c := 0
	for _, n := range db.nodes {
		if n.Type == asi.DeviceSwitch {
			c++
		}
	}
	return c
}

// NumLinks returns the number of discovered links.
func (db *DB) NumLinks() int { return len(db.links) }

// Nodes returns all entries sorted by DSN for deterministic iteration.
func (db *DB) Nodes() []*Node {
	out := make([]*Node, 0, len(db.nodes))
	for _, n := range db.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DSN < out[j].DSN })
	return out
}

// Links returns all discovered links sorted canonically.
func (db *DB) Links() []Link {
	out := make([]Link, 0, len(db.links))
	for l := range db.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.A != b.A {
			return a.A < b.A
		}
		if a.APort != b.APort {
			return a.APort < b.APort
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return a.BPort < b.BPort
	})
	return out
}

// Clone deep-copies the database: node entries (including their paths
// and per-port attribute slices) and the link set share nothing with the
// original. The serving layer uses it to freeze a discovery result into
// an immutable RIB snapshot while the manager keeps mutating its live
// database (partial assimilation edits entries in place).
func (db *DB) Clone() *DB {
	out := &DB{
		HostDSN: db.HostDSN,
		nodes:   make(map[asi.DSN]*Node, len(db.nodes)),
		links:   make(map[Link]bool, len(db.links)),
	}
	for dsn, n := range db.nodes {
		c := *n
		c.Path = append(route.Path(nil), n.Path...)
		c.PortKnown = append([]bool(nil), n.PortKnown...)
		c.PortActive = append([]bool(nil), n.PortActive...)
		out.nodes[dsn] = &c
	}
	for l := range db.links {
		out.links[l] = true
	}
	return out
}

// Fingerprint hashes the database's topology content — the node set
// (DSN, type, port count) and the canonical link set — into one FNV-1a
// value. Two databases fingerprint equally iff they describe the same
// topology, regardless of discovery order or algorithm, so runs of
// different algorithms over the same fabric can be compared in O(1).
func (db *DB) Fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	mix(uint64(len(db.nodes)))
	for _, n := range db.Nodes() {
		mix(uint64(n.DSN))
		mix(uint64(n.Type))
		mix(uint64(n.Ports))
	}
	mix(uint64(len(db.links)))
	for _, l := range db.Links() {
		mix(uint64(l.A))
		mix(uint64(l.APort))
		mix(uint64(l.B))
		mix(uint64(l.BPort))
	}
	return h
}

// AddNode inserts a newly discovered device. It reports whether the device
// was new; a device reached through an alternate path keeps its original
// entry (and path).
func (db *DB) AddNode(n *Node) bool {
	if _, ok := db.nodes[n.DSN]; ok {
		return false
	}
	db.nodes[n.DSN] = n
	return true
}

// RemoveNode deletes a device and all links touching it (used by partial
// rediscovery when pruning an unreachable region).
func (db *DB) RemoveNode(dsn asi.DSN) {
	delete(db.nodes, dsn)
	for l := range db.links {
		if l.A == dsn || l.B == dsn {
			delete(db.links, l)
		}
	}
}

// AddLink records a link; duplicates (the same cable crossed from either
// side) collapse onto one entry.
func (db *DB) AddLink(l Link) {
	db.links[l.normalize()] = true
}

// RemoveLink deletes a link.
func (db *DB) RemoveLink(l Link) {
	delete(db.links, l.normalize())
}

// HasLink reports whether a link is recorded, in either orientation.
func (db *DB) HasLink(l Link) bool { return db.links[l.normalize()] }

// LinkAt returns the link attached to a device port, if recorded.
func (db *DB) LinkAt(dsn asi.DSN, port int) (Link, bool) {
	for l := range db.links {
		if (l.A == dsn && l.APort == port) || (l.B == dsn && l.BPort == port) {
			return l, true
		}
	}
	return Link{}, false
}

// Neighbors returns the (dsn, port, remotePort) triples adjacent to a
// device, sorted for determinism.
type Neighbor struct {
	DSN        asi.DSN
	LocalPort  int
	RemotePort int
}

// NeighborsOf lists the recorded neighbours of a device.
func (db *DB) NeighborsOf(dsn asi.DSN) []Neighbor {
	var out []Neighbor
	for l := range db.links {
		switch dsn {
		case l.A:
			out = append(out, Neighbor{DSN: l.B, LocalPort: l.APort, RemotePort: l.BPort})
		case l.B:
			out = append(out, Neighbor{DSN: l.A, LocalPort: l.BPort, RemotePort: l.APort})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LocalPort != out[j].LocalPort {
			return out[i].LocalPort < out[j].LocalPort
		}
		return out[i].DSN < out[j].DSN
	})
	return out
}

// ReachableFromHost walks the recorded links from the host endpoint and
// returns the set of reachable DSNs.
func (db *DB) ReachableFromHost() map[asi.DSN]bool {
	seen := map[asi.DSN]bool{}
	if _, ok := db.nodes[db.HostDSN]; !ok {
		return seen
	}
	seen[db.HostDSN] = true
	queue := []asi.DSN{db.HostDSN}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range db.NeighborsOf(cur) {
			if _, known := db.nodes[nb.DSN]; !known || seen[nb.DSN] {
				continue
			}
			seen[nb.DSN] = true
			queue = append(queue, nb.DSN)
		}
	}
	return seen
}

// PathTo computes a shortest source route from the host endpoint to the
// target over the recorded links, breadth-first, and the target's arrival
// port along it. It returns a nil path when the target is not reachable
// in the database. The first hop leaves the host endpoint; every switch
// traversal contributes one hop, the target itself none.
func (db *DB) PathTo(target asi.DSN) (route.Path, int) {
	return db.pathFrom(db.HostDSN, target)
}

// PathBetween computes a shortest source route from one discovered device
// to another over the recorded links. Only endpoints and switches known
// to the database are usable; nil means unreachable.
func (db *DB) PathBetween(src, dst asi.DSN) route.Path {
	p, _ := db.pathFrom(src, dst)
	return p
}

// pred records how BFS reached a node.
type pred struct {
	from       asi.DSN
	fromPort   int
	arrivePort int
}

// bfsFrom explores the database graph from src (only src and switches
// forward) and returns the predecessor map.
func (db *DB) bfsFrom(src asi.DSN) map[asi.DSN]pred {
	prev := map[asi.DSN]pred{}
	if _, ok := db.nodes[src]; !ok {
		return prev
	}
	seen := map[asi.DSN]bool{src: true}
	queue := []asi.DSN{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur != src && db.nodes[cur].Type != asi.DeviceSwitch {
			continue
		}
		for _, nb := range db.NeighborsOf(cur) {
			if _, known := db.nodes[nb.DSN]; !known || seen[nb.DSN] {
				continue
			}
			seen[nb.DSN] = true
			prev[nb.DSN] = pred{from: cur, fromPort: nb.LocalPort, arrivePort: nb.RemotePort}
			queue = append(queue, nb.DSN)
		}
	}
	return prev
}

// ChainLink is one cable traversal on a database path.
type ChainLink struct {
	From     asi.DSN
	FromPort int
	To       asi.DSN
	ToPort   int
}

// Chain returns the cable-level walk of a shortest path from src to dst
// over the database graph, or nil if unreachable. Multicast tree
// construction uses it to mark the ports a group spans.
func (db *DB) Chain(src, dst asi.DSN) []ChainLink {
	if src == dst {
		return []ChainLink{}
	}
	prev := db.bfsFrom(src)
	if _, ok := prev[dst]; !ok {
		return nil
	}
	var out []ChainLink
	at := dst
	for at != src {
		p := prev[at]
		out = append(out, ChainLink{From: p.from, FromPort: p.fromPort, To: at, ToPort: p.arrivePort})
		at = p.from
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

func (db *DB) pathFrom(src, target asi.DSN) (route.Path, int) {
	if _, ok := db.nodes[src]; !ok {
		return nil, 0
	}
	if target == src {
		return route.Path{}, 0
	}
	prev := db.bfsFrom(src)
	if _, ok := prev[target]; !ok {
		return nil, 0
	}
	// hops must be non-nil even for adjacent targets: nil is the
	// unreachable sentinel, a zero-hop path is a valid route.
	hops := route.Path{}
	at := target
	for at != src {
		p := prev[at]
		if p.from != src {
			n := db.nodes[p.from]
			hops = append(hops, route.Hop{Ports: n.Ports, In: prev[p.from].arrivePort, Out: p.fromPort})
		}
		at = p.from
	}
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	return hops, prev[target].arrivePort
}

// String summarizes the database.
func (db *DB) String() string {
	return fmt.Sprintf("db{%d devices (%d switches), %d links}",
		db.NumNodes(), db.NumSwitches(), db.NumLinks())
}
