package core

import (
	"repro/internal/asi"
	"repro/internal/route"
	"repro/internal/sim"
)

// Distributed discovery — the paper's first future-work direction
// (section 5): "distribute the entire process through several
// collaborative fabric managers, in order to increase parallelization".
//
// The implementation here partitions the fabric dynamically by ownership
// claims: every collaborating FM runs the propagation-order engine from
// its own endpoint, but before expanding a newly found device it must win
// an atomic PI-4 claim on that device's ownership region. A lost claim
// marks a region boundary: the links are still recorded, but the port
// reads (the dominant packet cost) and the onward probes belong to the
// winning FM. Regions therefore grow outward from each FM until they
// meet, roughly a Voronoi partition by discovery speed.
//
// When a collaborator's pending table drains it ships its partial
// database to the primary as a sequence of FM-sync packets over the
// fabric; the primary merges the views, recomputes its own source routes
// for foreign-region devices, and completes.

// distributedDriver is the claim-gated variant of the parallel driver.
type distributedDriver struct {
	m   *Manager
	gen uint32
}

func (d *distributedDriver) start() {
	d.m.initialProbe()
}

func (d *distributedDriver) onGeneral(req *request, n *Node, isNew, ok bool) {
	if !ok || !isNew {
		return
	}
	d.m.sendClaim(n, d.gen)
}

func (d *distributedDriver) onClaim(req *request, owner uint32, ok bool) {
	if !ok || owner != uint32(d.m.dev.DSN) {
		return // lost the claim: region boundary, the winner expands
	}
	n := d.m.db.Node(req.dsn)
	if n == nil {
		return
	}
	d.m.readAllPorts(n)
}

func (d *distributedDriver) onPort(req *request, n *Node, ok bool) {
	if !ok {
		return
	}
	count := req.nports
	if count < 1 {
		count = 1
	}
	for k := 0; k < count && req.port+k < n.Ports; k++ {
		for _, p := range d.m.probesFromPort(n, req.port+k) {
			d.m.probe(p.path, p.srcDSN, p.srcPort)
		}
	}
}

func (d *distributedDriver) finished() bool { return true }

// claimHandler is implemented by drivers that use ownership claims.
type claimHandler interface {
	onClaim(req *request, owner uint32, ok bool)
}

// sendClaim issues an atomic ownership claim for a discovered device.
func (m *Manager) sendClaim(n *Node, gen uint32) bool {
	req := &request{kind: reqClaim, path: n.Path, dsn: n.DSN}
	return m.send(req, asi.PI4{
		Op:     asi.PI4ClaimRequest,
		Offset: asi.OwnerOffset(n.Ports),
		Count:  asi.OwnerBlocks,
		Data:   []uint32{gen, uint32(m.dev.DSN)},
	})
}

// TeamResult measures one distributed discovery round.
type TeamResult struct {
	Start, End sim.Time
	Duration   sim.Duration
	// Devices/Links of the merged primary database.
	Devices, Links int
	// PerMember holds each collaborator's local run result, primary
	// first.
	PerMember []Result
	// SyncPackets/SyncBytes count the inter-FM report traffic.
	SyncPackets int
	SyncBytes   uint64
	// TotalPacketsSent sums member discovery packets and sync packets.
	TotalPacketsSent uint64
	// Missing counts members whose report never reached the primary.
	Missing int
}

// Team coordinates collaborating fabric managers. All members must use
// Kind Distributed. The first member acts as primary.
type Team struct {
	e       *sim.Engine
	members []*Manager
	gen     uint32

	// OnComplete fires after every round with the merged result.
	OnComplete func(TeamResult)

	// SyncTimeout bounds how long the primary waits for reports after
	// all members finished locally.
	SyncTimeout sim.Duration

	pathToPrimary map[asi.DSN]route.Path

	running     bool
	start       sim.Time
	localDone   int
	results     []Result
	reports     map[asi.DSN]*DB
	finalSeen   map[asi.DSN]bool
	syncPackets int
	syncBytes   uint64
	deadline    sim.EventID
	armed       bool
}

// NewTeam wires the managers into a team; members[0] is the primary.
// Member completion callbacks are owned by the team from here on.
func NewTeam(members []*Manager) *Team {
	if len(members) == 0 {
		panic("core: empty team")
	}
	t := &Team{
		e:       members[0].e,
		members: members,
		// Claim generations must outrun any standalone (bootstrap) run,
		// which uses generation 1.
		gen:         1,
		SyncTimeout: 2 * sim.Millisecond,
	}
	for _, m := range members {
		if m.opt.Algorithm != Distributed {
			panic("core: team members must use the Distributed algorithm")
		}
		m.team = t
		mm := m
		m.OnDiscoveryComplete = func(r Result) { t.onMemberDone(mm, r) }
	}
	return t
}

// Primary returns the coordinating manager.
func (t *Team) Primary() *Manager { return t.members[0] }

// RestoreMemberCallbacks re-arms team ownership of the members'
// completion callbacks after a caller temporarily hooked one (e.g. for a
// bootstrap discovery before Prepare).
func (t *Team) RestoreMemberCallbacks() {
	for _, m := range t.members {
		mm := m
		m.OnDiscoveryComplete = func(r Result) { t.onMemberDone(mm, r) }
	}
}

// Prepare computes each member's report route to the primary from the
// primary's current database. In a deployment this happens during idle
// time: the primary distributes collaborator paths exactly as it
// distributes event routes. It must be called after the primary has a
// topology (e.g. one initial discovery).
func (t *Team) Prepare() {
	p := t.Primary()
	t.pathToPrimary = make(map[asi.DSN]route.Path, len(t.members)-1)
	for _, m := range t.members[1:] {
		if path := p.db.PathBetween(m.dev.DSN, p.dev.DSN); path != nil {
			t.pathToPrimary[m.dev.DSN] = path
		}
	}
}

// StartDiscovery launches one distributed round on all members.
func (t *Team) StartDiscovery() {
	if t.running {
		return
	}
	t.running = true
	t.gen++
	t.start = t.e.Now()
	t.localDone = 0
	t.results = nil
	t.reports = make(map[asi.DSN]*DB)
	t.finalSeen = make(map[asi.DSN]bool)
	t.syncPackets = 0
	t.syncBytes = 0
	for _, m := range t.members {
		m.teamGen = t.gen
		m.StartDiscovery()
	}
}

// onMemberDone collects a member's local completion; non-primary members
// ship their report.
func (t *Team) onMemberDone(m *Manager, r Result) {
	if !t.running {
		return
	}
	t.results = append(t.results, r)
	t.localDone++
	if m != t.Primary() {
		t.sendReport(m)
	}
	if t.localDone == len(t.members) && !t.armed {
		t.armed = true
		t.deadline = t.e.After(t.SyncTimeout, func(*sim.Engine) {
			t.armed = false
			t.merge()
		})
		t.checkMerge()
	}
}

// sendReport ships a member's database to the primary as FM-sync chunks.
// The database content rides out of band; the packets carry its wire
// cost.
func (t *Team) sendReport(m *Manager) {
	path, ok := t.pathToPrimary[m.dev.DSN]
	if !ok {
		return // unreachable primary: the round will count it missing
	}
	hdr, err := route.Header(path, asi.PIFMSync)
	if err != nil {
		return
	}
	t.reports[m.dev.DSN] = m.db
	entries := m.db.NumNodes() + m.db.NumLinks()
	const maxPerChunk = 150 // bounded by the 2176-byte max packet
	seq := uint16(0)
	for entries > 0 || seq == 0 {
		n := entries
		if n > maxPerChunk {
			n = maxPerChunk
		}
		entries -= n
		sync := asi.FMSync{From: m.dev.DSN, Seq: seq, Entries: uint16(n), Final: entries == 0}
		pkt := &asi.Packet{Header: hdr, Payload: sync}
		t.syncPackets++
		t.syncBytes += uint64(pkt.WireSize())
		m.dev.Inject(pkt)
		seq++
	}
}

// onSync is called by the primary manager when a processed FM-sync chunk
// reaches it.
func (t *Team) onSync(m *Manager, sync asi.FMSync) {
	if !t.running || m != t.Primary() {
		return
	}
	if sync.Final {
		t.finalSeen[sync.From] = true
	}
	t.checkMerge()
}

// checkMerge completes the round once every expected report landed.
func (t *Team) checkMerge() {
	if !t.running || t.localDone != len(t.members) {
		return
	}
	for _, m := range t.members[1:] {
		if !t.finalSeen[m.dev.DSN] {
			return
		}
	}
	if t.armed {
		t.e.Cancel(t.deadline)
		t.armed = false
	}
	t.merge()
}

// merge unions the received reports into the primary's database,
// recomputes primary-relative source routes, and reports the round.
func (t *Team) merge() {
	if !t.running {
		return
	}
	t.running = false
	p := t.Primary()
	missing := 0
	for _, m := range t.members[1:] {
		if !t.finalSeen[m.dev.DSN] {
			missing++
			continue
		}
		db := t.reports[m.dev.DSN]
		for _, n := range db.Nodes() {
			c := *n
			p.db.AddNode(&c)
		}
		for _, l := range db.Links() {
			p.db.AddLink(l)
		}
	}
	// Foreign-region nodes carry member-relative paths; recompute from
	// the primary's endpoint over the merged graph.
	for _, n := range p.db.Nodes() {
		if n.DSN == p.dev.DSN {
			continue
		}
		path, arrive := p.db.PathTo(n.DSN)
		if path == nil {
			p.db.RemoveNode(n.DSN)
			continue
		}
		n.Path = path
		n.ArrivalPort = arrive
	}
	res := TeamResult{
		Start:       t.start,
		End:         t.e.Now(),
		Duration:    t.e.Now().Sub(t.start),
		Devices:     p.db.NumNodes(),
		Links:       p.db.NumLinks(),
		PerMember:   t.results,
		SyncPackets: t.syncPackets,
		SyncBytes:   t.syncBytes,
		Missing:     missing,
	}
	for _, r := range t.results {
		res.TotalPacketsSent += r.PacketsSent
	}
	res.TotalPacketsSent += uint64(t.syncPackets)
	if t.OnComplete != nil {
		t.OnComplete(res)
	}
}
