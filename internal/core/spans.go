package core

import (
	"fmt"

	"repro/internal/span"
)

// Span instrumentation for the fabric manager. Every hook below is
// reached only behind a single `m.sp != nil` guard in the hot path, so
// disabled tracing costs one pointer compare and zero allocations — the
// same contract the telemetry hooks honor. The span topology mirrors
// the paper's FM timeline:
//
//	run (discovery run, partial assimilation, or distribution round)
//	└── request (one PI-4, issue to terminal completion/failure)
//	    ├── attempt (per transmission; retries nest under the SAME
//	    │            request with increasing Attempt numbers)
//	    ├── backoff (retry wait windows)
//	    ├── fm-queue / fm-service (FM serial-processor phases; the
//	    │            service span that *issued* a request carries the
//	    │            issuing request as parent, which is what lets the
//	    │            analyzer recover the causal dependency chain)
//	    └── per-hop fabric spans recorded by internal/fabric via the
//	        request ID stamped into the packet header
//
// The FM is a serial processor, so its service spans are disjoint; a
// request that begins at time t was issued by whichever work item was
// in service at t. span.Analyze exploits exactly that containment to
// extract the critical path without any extra bookkeeping here.

// beginRequestSpan opens the request span for a fresh (never-issued)
// request and parents it to the active phase band.
func (m *Manager) beginRequestSpan(req *request) {
	parent := m.runSpan
	if m.dist != nil {
		parent = m.dist.span
	}
	id := m.sp.Begin(span.KindRequest, parent, m.e.Now())
	if s := m.sp.Span(id); s != nil {
		s.Name = req.kind.label()
		if req.dsn != 0 {
			s.Device = req.dsn.String()
		} else {
			// Probes target whatever answers beyond srcDSN's srcPort;
			// name the near side of the link being explored.
			s.Device = fmt.Sprintf("%s:%d", req.srcDSN, req.srcPort)
		}
	}
	req.span = id
}

// beginAttemptSpan opens one transmission attempt under its request.
func (m *Manager) beginAttemptSpan(req *request) {
	id := m.sp.Begin(span.KindAttempt, req.span, m.e.Now())
	if s := m.sp.Span(id); s != nil {
		s.Name = req.kind.label()
		s.Tag = req.tag
		s.Attempt = req.attempt
	}
	req.attemptSpan = id
}

// workSpanParent resolves which span owns a work item's FM processing:
// the request it completes, else the active phase band.
func (m *Manager) workSpanParent(w work) span.ID {
	if w.req != nil && w.req.span != 0 {
		return w.req.span
	}
	if m.dist != nil {
		return m.dist.span
	}
	return m.runSpan
}

// recordWorkSpans records the FM queue-wait and service intervals of
// the work item that just finished processing. Called from completeWork
// before the item's side effects run, so the service span's ID precedes
// any request it issues.
func (m *Manager) recordWorkSpans(w work) {
	now := m.e.Now()
	start := now.Add(-m.curCost)
	parent := m.workSpanParent(w)
	if w.enqAt < start {
		m.sp.Complete(span.KindFMQueue, parent, w.enqAt, start, span.StatusOK)
	}
	id := m.sp.Complete(span.KindFMService, parent, start, now, span.StatusOK)
	if s := m.sp.Span(id); s != nil {
		s.Name = w.kind.label()
	}
}

// beginRunSpan opens a phase band and returns its ID.
func (m *Manager) beginRunSpan(name string) span.ID {
	id := m.sp.Begin(span.KindRun, 0, m.e.Now())
	if s := m.sp.Span(id); s != nil {
		s.Name = name
	}
	return id
}

// cancelRequestSpans force-ends the spans of every request a
// superseding run orphans: still-pending requests and requests parked
// in retry-backoff windows. End is idempotent, so requests that already
// resolved are untouched.
func (m *Manager) cancelRequestSpans() {
	now := m.e.Now()
	for _, r := range m.pending {
		m.sp.End(r.attemptSpan, now, span.StatusCanceled)
		m.sp.End(r.span, now, span.StatusCanceled)
	}
	for r := range m.retryReqs {
		m.sp.End(r.span, now, span.StatusCanceled)
	}
	if len(m.retryReqs) > 0 {
		m.retryReqs = make(map[*request]struct{})
	}
}
