package core

import (
	"sort"

	"repro/internal/asi"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/span"
)

// Path distribution: after discovery the FM derives source routes from its
// topology database and programs the fabric. The paper lists "path
// determination between endpoints" among the FM's tasks (section 2) and
// names "dynamically distributing new paths to fabric endpoints after the
// occurrence of a topological change" as future work (section 5). This
// file implements both: event-route programming into every device (so
// PI-5 reports can reach the FM) and endpoint-pair path computation.

// DistResult measures one path-distribution round.
type DistResult struct {
	Start, End sim.Time
	Duration   sim.Duration
	// Writes is the number of PI-4 write requests issued, Failures how
	// many failed or timed out.
	Writes, Failures int
	BytesSent        uint64
}

// EventRouteFor computes the turn-pool route a device must use to source
// PI-5 packets toward the FM, from the FM's own path to that device. For
// switches the route is prefixed with the switch's own traversal from the
// virtual ingress, matching the hardware convention in internal/fabric.
// It is a free function so the serving layer (internal/fib) can derive
// event-route tables from a database snapshot without a Manager.
func EventRouteFor(n *Node) (pool uint64, ptr uint8, err error) {
	rev := route.Reverse(n.Path)
	if n.Type == asi.DeviceSwitch {
		// The switch consumes its own first turn when originating; the
		// virtual-ingress convention matches the hardware model. When
		// the arrival port equals the virtual ingress this encodes the
		// legal maximal self-turn.
		first := route.Hop{Ports: n.Ports, In: asi.SourceVirtualIngress, Out: n.ArrivalPort}
		rev = append(route.Path{first}, rev...)
	}
	return route.Encode(rev)
}

// EventRouteFor is the method form of the package-level EventRouteFor.
func (m *Manager) EventRouteFor(n *Node) (pool uint64, ptr uint8, err error) {
	return EventRouteFor(n)
}

// DistributeEventRoutes writes the event route into every discovered
// device except the host, with all writes in flight concurrently (the FM
// is past discovery; programming is parallel like the Parallel
// algorithm). onDone fires once every write completed or failed.
func (m *Manager) DistributeEventRoutes(onDone func(DistResult)) {
	if m.discovering {
		panic("core: DistributeEventRoutes during discovery")
	}
	m.dist = &distState{res: DistResult{Start: m.e.Now()}, onDone: onDone}
	if m.sp != nil {
		m.dist.span = m.beginRunSpan("event-routes")
	}
	for _, n := range m.db.Nodes() {
		if n.DSN == m.dev.DSN {
			continue
		}
		pool, ptr, err := m.EventRouteFor(n)
		if err != nil {
			m.dist.res.Failures++
			continue
		}
		req := &request{kind: reqWrite, path: n.Path, dsn: n.DSN}
		payload := asi.PI4{
			Op:     asi.PI4WriteRequest,
			Offset: asi.EventRouteOffset(n.Ports),
			Data:   asi.EncodeEventRoute(pool, ptr),
		}
		sz := (&asi.Packet{Payload: payload}).WireSize()
		if !m.send(req, payload) {
			m.dist.res.Failures++
			continue
		}
		m.dist.res.Writes++
		m.dist.res.BytesSent += uint64(sz)
		m.dist.outstanding++
	}
	if m.dist.outstanding == 0 {
		m.finishDist()
	}
}

// distState tracks an in-progress distribution round.
type distState struct {
	res         DistResult
	outstanding int
	onDone      func(DistResult)
	// span is the distribution round's phase band, zero unless span
	// tracing is on; the round's write requests parent to it.
	span span.ID
}

// onWriteDone is called by the Manager when a reqWrite completion (or
// timeout) has been processed.
func (m *Manager) onWriteDone(req *request, ok bool) {
	if m.dist == nil {
		return
	}
	if !ok {
		m.dist.res.Failures++
	}
	m.dist.outstanding--
	if m.dist.outstanding == 0 {
		m.finishDist()
	}
}

func (m *Manager) finishDist() {
	d := m.dist
	m.dist = nil
	if m.sp != nil {
		m.sp.End(d.span, m.e.Now(), span.StatusOK)
	}
	d.res.End = m.e.Now()
	d.res.Duration = d.res.End.Sub(d.res.Start)
	if d.onDone != nil {
		d.onDone(d.res)
	}
}

// PathBetween computes a shortest source route between two discovered
// endpoints over the database graph, from src's point of view. It returns
// nil when either endpoint is unknown or unreachable.
func (m *Manager) PathBetween(src, dst asi.DSN) route.Path {
	return m.db.PathBetween(src, dst)
}

// DistributePathTables writes every endpoint's source-route table (one
// entry per remote endpoint) into its configuration space, one PI-4 write
// per entry, all in flight concurrently. The host endpoint's own table is
// written locally. onDone fires when the last write completes. Entries
// beyond an endpoint's table capacity are counted as failures.
func (m *Manager) DistributePathTables(onDone func(DistResult)) {
	if m.discovering {
		panic("core: DistributePathTables during discovery")
	}
	m.dist = &distState{res: DistResult{Start: m.e.Now()}, onDone: onDone}
	if m.sp != nil {
		m.dist.span = m.beginRunSpan("path-tables")
	}
	table := m.EndpointPathTable()
	for _, n := range m.db.Nodes() {
		if n.Type != asi.DeviceEndpoint {
			continue
		}
		row := table[n.DSN]
		// Deterministic entry order: destination DSN ascending (the
		// Nodes iteration of EndpointPathTable is already sorted, but
		// map rows are not).
		idx := 0
		for _, dst := range sortedDSNs(row) {
			p := row[dst]
			pool, ptr, err := route.Encode(p)
			if err != nil || idx >= asi.PathTableEntries {
				m.dist.res.Failures++
				continue
			}
			data := asi.EncodePathEntry(dst, pool, ptr)
			off := asi.PathEntryOffset(n.Ports, idx)
			idx++
			if n.DSN == m.dev.DSN {
				// Local table: written directly, no packets.
				if werr := m.dev.Config.Write(off, data); werr != nil {
					m.dist.res.Failures++
				}
				continue
			}
			req := &request{kind: reqWrite, path: n.Path, dsn: n.DSN}
			payload := asi.PI4{Op: asi.PI4WriteRequest, Offset: off, Data: data}
			sz := (&asi.Packet{Payload: payload}).WireSize()
			if !m.send(req, payload) {
				m.dist.res.Failures++
				continue
			}
			m.dist.res.Writes++
			m.dist.res.BytesSent += uint64(sz)
			m.dist.outstanding++
		}
	}
	if m.dist.outstanding == 0 {
		m.finishDist()
	}
}

// sortedDSNs returns a path-table row's destinations in ascending order.
func sortedDSNs(row map[asi.DSN]route.Path) []asi.DSN {
	out := make([]asi.DSN, 0, len(row))
	for dsn := range row {
		out = append(out, dsn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EndpointPathTable computes the all-pairs endpoint path table the FM
// would distribute to fabric endpoints: for every discovered endpoint,
// the source route to every other endpoint.
func (m *Manager) EndpointPathTable() map[asi.DSN]map[asi.DSN]route.Path {
	var eps []asi.DSN
	for _, n := range m.db.Nodes() {
		if n.Type == asi.DeviceEndpoint {
			eps = append(eps, n.DSN)
		}
	}
	table := make(map[asi.DSN]map[asi.DSN]route.Path, len(eps))
	for _, src := range eps {
		row := make(map[asi.DSN]route.Path, len(eps)-1)
		for _, dst := range eps {
			if src == dst {
				continue
			}
			if p := m.db.PathBetween(src, dst); p != nil {
				row[dst] = p
			}
		}
		table[src] = row
	}
	return table
}
