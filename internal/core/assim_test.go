package core

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
)

// assimSetup is partialSetup with the coalescing front-end enabled.
func assimSetup(t *testing.T, tp *topo.Topology, opt Options) (*sim.Engine, *fabric.Fabric, *Manager) {
	t.Helper()
	opt.Algorithm = Partial
	e := sim.NewEngine()
	f, err := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(f, f.Device(tp.Endpoints()[0]), opt)
	runDiscovery(t, e, m)
	m.DistributeEventRoutes(func(d DistResult) {
		if d.Failures != 0 {
			t.Fatalf("event-route distribution failures: %d", d.Failures)
		}
	})
	e.Run()
	return e, f, m
}

// flapDevice schedules n down/up cycles of one device: down at base+i*spacing,
// up again outage later. Each transition makes the live neighbours emit
// PI-5 reports (link flaps are silent transients in this model, so churn
// storms are expressed as device toggles).
func flapDevice(t *testing.T, e *sim.Engine, f *fabric.Fabric, id topo.NodeID, n int, spacing, outage sim.Duration) {
	t.Helper()
	base := e.Now().Add(10 * sim.Microsecond)
	for i := 0; i < n; i++ {
		at := base.Add(sim.Duration(i) * spacing)
		e.At(at, func(*sim.Engine) {
			if err := f.SetDeviceDown(id, false); err != nil {
				t.Error(err)
			}
		})
		e.At(at.Add(outage), func(*sim.Engine) {
			if err := f.SetDeviceUp(id, false); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestCoalescedStormFewerRuns is the churn-storm microbenchmark behind
// the acceptance criterion: N flaps of one device must cost the
// coalescing front-end at least 5x fewer partial runs than per-event
// assimilation, at equal ground-truth convergence.
func TestCoalescedStormFewerRuns(t *testing.T) {
	const flaps = 10
	storm := func(opt Options) (runs, coalesced int) {
		var e *sim.Engine
		var f *fabric.Fabric
		var m *Manager
		if opt.AssimWindow > 0 {
			e, f, m = assimSetup(t, topo.Mesh(4, 4), opt)
		} else {
			e, f, m = partialSetup(t, topo.Mesh(4, 4))
		}
		m.OnDiscoveryComplete = func(r Result) {
			runs++
			coalesced += r.Coalesced
		}
		// 8ms apart with a 4ms outage: wider than the 5ms request
		// timeout, so per-event assimilation fully settles one localized
		// run per transition, while the 5ms debounce window (longer than
		// the largest inter-report gap) slides across the whole storm.
		// Node 15 is the far-corner switch, away from the host on
		// sw(0,0).
		flapDevice(t, e, f, 15, flaps, 8*sim.Millisecond, 4*sim.Millisecond)
		e.Run()
		dbMatchesGroundTruth(t, f, m, "after storm")
		if m.Discovering() {
			t.Error("manager still discovering after drain")
		}
		if m.AssimPending() != 0 {
			t.Errorf("%d reports left pending after drain", m.AssimPending())
		}
		return runs, coalesced
	}

	perEvent, _ := storm(Options{})
	batched, coalesced := storm(Options{AssimWindow: 5 * sim.Millisecond})
	t.Logf("storm of %d flaps: %d per-event runs, %d coalesced runs (%d reports batched)",
		flaps, perEvent, batched, coalesced)
	if batched == 0 {
		t.Fatal("coalesced storm produced no runs")
	}
	if batched*5 > perEvent {
		t.Errorf("coalesced storm took %d runs vs %d per-event; want at least 5x fewer", batched, perEvent)
	}
	if coalesced < 2*flaps {
		t.Errorf("batched runs assimilated %d reports, want at least %d", coalesced, 2*flaps)
	}
}

// TestCoalescedBatchCapForcesFlush checks that AssimBatchMax bounds the
// debounce window: with a cap of 2 distinct keys and a window far longer
// than the storm, the sustained event stream still flushes mid-storm
// instead of postponing assimilation to the window's end.
func TestCoalescedBatchCapForcesFlush(t *testing.T) {
	run := func(opt Options) int {
		e, f, m := assimSetup(t, topo.Mesh(3, 3), opt)
		runs := 0
		m.OnDiscoveryComplete = func(Result) { runs++ }
		flapDevice(t, e, f, 8, 4, 60*sim.Microsecond, 30*sim.Microsecond)
		e.Run()
		dbMatchesGroundTruth(t, f, m, "after capped storm")
		return runs
	}
	uncapped := run(Options{AssimWindow: 10 * sim.Millisecond})
	capped := run(Options{AssimWindow: 10 * sim.Millisecond, AssimBatchMax: 2})
	if uncapped != 1 {
		t.Errorf("10ms window over the whole storm: %d runs, want 1", uncapped)
	}
	if capped < 2 {
		t.Errorf("batch cap 2: %d runs, want at least 2 (cap must force mid-storm flushes)", capped)
	}
}

// TestFullRunDropsPendingBatchButStaysDirty: when a full rediscovery
// begins with reports still waiting in the debounce window, the batch is
// discarded (the full run observes the fabric's current state anyway) but
// the run must be marked dirty so no accepted report goes uncovered.
func TestFullRunDropsPendingBatchButStaysDirty(t *testing.T) {
	e, f, m := assimSetup(t, topo.Mesh(3, 3), Options{AssimWindow: 500 * sim.Microsecond})
	runs := 0
	m.OnDiscoveryComplete = func(Result) { runs++ }

	// Take a non-host corner switch down; its neighbours' reports land in
	// the debounce window. Before the window expires, start a full run.
	e.After(sim.Microsecond, func(*sim.Engine) {
		if err := f.SetDeviceDown(8, false); err != nil {
			t.Error(err)
		}
	})
	e.After(50*sim.Microsecond, func(*sim.Engine) {
		if m.AssimPending() == 0 {
			t.Error("no reports pending when full run starts")
		}
		m.StartDiscovery()
	})
	e.Run()

	if m.AssimPending() != 0 {
		t.Errorf("%d reports still pending after drain", m.AssimPending())
	}
	if runs < 2 {
		t.Errorf("%d runs completed, want at least 2 (dropped batch must dirty the full run)", runs)
	}
	dbMatchesGroundTruth(t, f, m, "after full run over pending batch")
}

// TestPartialSeqPrunedOnRemoval is the regression test for the unbounded
// cursor map: when the partial path prunes a device from the database,
// its PI-5 sequence cursor must go with it.
func TestPartialSeqPrunedOnRemoval(t *testing.T) {
	e, f, m := partialSetup(t, topo.Mesh(3, 3))
	victim := topo.NodeID(8) // sw(2,2), corner, away from the host
	dsn := f.Device(victim).DSN

	// Make the victim report once so it owns a cursor: cycle one of its
	// neighbours (sw(1,2), which does not disconnect the victim) so the
	// victim reports that port going down and up.
	flapDevice(t, e, f, 5, 1, 60*sim.Microsecond, 30*sim.Microsecond)
	e.Run()
	if _, ok := m.partialSeq[dsn]; !ok {
		t.Fatal("setup: victim never reported, no cursor to prune")
	}

	if err := f.SetDeviceDown(victim, false); err != nil {
		t.Fatal(err)
	}
	e.Run()
	dbMatchesGroundTruth(t, f, m, "after victim removal")
	if m.DB().Node(dsn) != nil {
		t.Fatal("victim still in database")
	}
	if _, ok := m.partialSeq[dsn]; ok {
		t.Error("PI-5 sequence cursor survived the victim's removal from the database")
	}
}

// TestExpireReportersPrunesAfterFullRebuild covers the other leak path:
// a full rediscovery rebuilds the database from scratch and never touches
// the cursor map, so the keeper's expiry sweep must reclaim cursors of
// devices the rebuild no longer found.
func TestExpireReportersPrunesAfterFullRebuild(t *testing.T) {
	e, f, m := partialSetup(t, topo.Mesh(3, 3))
	victim := topo.NodeID(8)
	dsn := f.Device(victim).DSN

	flapDevice(t, e, f, 5, 1, 60*sim.Microsecond, 30*sim.Microsecond)
	e.Run()
	if _, ok := m.partialSeq[dsn]; !ok {
		t.Fatal("setup: victim never reported")
	}

	// Quiet removal: no PI-5s, so the partial path never prunes. A full
	// audit rebuilds the database without the victim; the cursor leaks
	// until ExpireReporters sweeps it.
	if err := f.SetDeviceDown(victim, true); err != nil {
		t.Fatal(err)
	}
	m.StartDiscovery()
	e.Run()
	if m.DB().Node(dsn) != nil {
		t.Fatal("victim still in database after full rebuild")
	}
	if _, ok := m.partialSeq[dsn]; !ok {
		t.Fatal("cursor missing before the sweep; leak path not exercised")
	}
	if n := m.ExpireReporters(); n != 1 {
		t.Errorf("ExpireReporters reclaimed %d cursors, want 1", n)
	}
	if _, ok := m.partialSeq[dsn]; ok {
		t.Error("cursor survived the expiry sweep")
	}
	// Nothing left to reclaim on a second sweep.
	if n := m.ExpireReporters(); n != 0 {
		t.Errorf("second sweep reclaimed %d cursors, want 0", n)
	}
}

// TestDBStalenessAges checks the staleness percentiles: immediately after
// discovery every node was just validated, and letting simulated time
// pass without contact ages the whole distribution together.
func TestDBStalenessAges(t *testing.T) {
	e, _, m := partialSetup(t, topo.Mesh(3, 3))
	_, _, max := m.DBStaleness()
	// Validation stamps are set during the run, so the max age is bounded
	// by the discovery duration.
	res, _ := m.LastResult()
	if max > res.Duration+sim.Millisecond {
		t.Errorf("max staleness %v right after discovery, want at most the run duration %v", max, res.Duration)
	}

	e.RunUntil(e.Now().Add(10 * sim.Millisecond))
	p50, p99, max2 := m.DBStaleness()
	if max2 < 10*sim.Millisecond {
		t.Errorf("max staleness %v after 10ms idle, want at least 10ms", max2)
	}
	if p50 > p99 || p99 > max2 {
		t.Errorf("percentiles out of order: p50=%v p99=%v max=%v", p50, p99, max2)
	}
}
