package core

import (
	"fmt"
	"strings"

	"repro/internal/asi"
)

// Diff summarizes what changed between two topology databases — the
// assimilation report an operator (or the path-distribution stage) reads
// after a change-triggered rediscovery.
type Diff struct {
	AddedDevices   []asi.DSN
	RemovedDevices []asi.DSN
	AddedLinks     []Link
	RemovedLinks   []Link
}

// Empty reports whether nothing changed.
func (d Diff) Empty() bool {
	return len(d.AddedDevices) == 0 && len(d.RemovedDevices) == 0 &&
		len(d.AddedLinks) == 0 && len(d.RemovedLinks) == 0
}

// String renders a compact human-readable summary.
func (d Diff) String() string {
	if d.Empty() {
		return "no change"
	}
	var parts []string
	if n := len(d.AddedDevices); n > 0 {
		parts = append(parts, fmt.Sprintf("+%d devices", n))
	}
	if n := len(d.RemovedDevices); n > 0 {
		parts = append(parts, fmt.Sprintf("-%d devices", n))
	}
	if n := len(d.AddedLinks); n > 0 {
		parts = append(parts, fmt.Sprintf("+%d links", n))
	}
	if n := len(d.RemovedLinks); n > 0 {
		parts = append(parts, fmt.Sprintf("-%d links", n))
	}
	return strings.Join(parts, ", ")
}

// DiffDBs compares two databases. Devices compare by DSN, links by their
// normalized form; old or new may be nil (treated as empty).
func DiffDBs(old, new *DB) Diff {
	var d Diff
	oldHas := func(dsn asi.DSN) bool { return old != nil && old.Node(dsn) != nil }
	newHas := func(dsn asi.DSN) bool { return new != nil && new.Node(dsn) != nil }
	if new != nil {
		for _, n := range new.Nodes() {
			if !oldHas(n.DSN) {
				d.AddedDevices = append(d.AddedDevices, n.DSN)
			}
		}
		for _, l := range new.Links() {
			if old == nil || !old.HasLink(l) {
				d.AddedLinks = append(d.AddedLinks, l)
			}
		}
	}
	if old != nil {
		for _, n := range old.Nodes() {
			if !newHas(n.DSN) {
				d.RemovedDevices = append(d.RemovedDevices, n.DSN)
			}
		}
		for _, l := range old.Links() {
			if new == nil || !new.HasLink(l) {
				d.RemovedLinks = append(d.RemovedLinks, l)
			}
		}
	}
	return d
}
