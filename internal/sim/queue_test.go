package sim

import (
	"sort"
	"testing"
)

// Differential tests: the specialized 4-ary arena heap must fire events in
// exactly the order a naive reference queue (a sorted slice over (at, seq))
// produces, under randomized schedule/cancel/reschedule workloads. This
// pins the determinism contract the simulated metrics depend on.

// refQueue is the obviously-correct reference: a slice kept sorted by
// (at, seq), with physical removal on cancel.
type refQueue struct {
	events []refEvent
}

type refEvent struct {
	at  Time
	seq uint64
	id  int
}

func (q *refQueue) schedule(at Time, seq uint64, id int) {
	q.events = append(q.events, refEvent{at: at, seq: seq, id: id})
	sort.Slice(q.events, func(i, j int) bool {
		if q.events[i].at != q.events[j].at {
			return q.events[i].at < q.events[j].at
		}
		return q.events[i].seq < q.events[j].seq
	})
}

func (q *refQueue) cancel(id int) bool {
	for i, ev := range q.events {
		if ev.id == id {
			q.events = append(q.events[:i], q.events[i+1:]...)
			return true
		}
	}
	return false
}

func (q *refQueue) drainOrder() []int {
	var order []int
	for _, ev := range q.events {
		order = append(order, ev.id)
	}
	q.events = nil
	return order
}

// popThrough removes and returns the ids of all events with at <= deadline.
func (q *refQueue) popThrough(deadline Time) []int {
	var order []int
	i := 0
	for ; i < len(q.events) && q.events[i].at <= deadline; i++ {
		order = append(order, q.events[i].id)
	}
	q.events = q.events[i:]
	return order
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQueueDifferentialDrain drives random schedule/cancel workloads into
// the engine and the reference queue, then drains both and compares the
// exact firing order.
func TestQueueDifferentialDrain(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		rng := NewRNG(seed)
		e := NewEngine()
		ref := &refQueue{}

		var got []int
		ids := make(map[int]EventID) // live engine events by test id
		var live []int
		nextID := 0

		ops := 200 + rng.Intn(300)
		for op := 0; op < ops; op++ {
			switch {
			case len(live) > 0 && rng.Intn(4) == 0: // cancel a live event
				k := rng.Intn(len(live))
				id := live[k]
				live = append(live[:k], live[k+1:]...)
				engOK := e.Cancel(ids[id])
				refOK := ref.cancel(id)
				if engOK != refOK {
					t.Fatalf("seed %d: cancel(%d) engine=%v ref=%v", seed, id, engOK, refOK)
				}
				delete(ids, id)
			default: // schedule; deliberate tie-heavy time distribution
				at := Time(rng.Intn(50))
				id := nextID
				nextID++
				seq := e.nextSeq
				id2 := id
				ids[id] = e.At(at, func(*Engine) { got = append(got, id2) })
				ref.schedule(at, seq, id)
				live = append(live, id)
			}
		}
		e.Run()
		want := ref.drainOrder()
		if !intsEqual(got, want) {
			t.Fatalf("seed %d: firing order diverged\n got %v\nwant %v", seed, got, want)
		}
	}
}

// TestQueueDifferentialInterleaved interleaves partial draining (RunUntil
// at increasing deadlines) with further scheduling and cancellation, so
// removal and refill churn the heap mid-run.
func TestQueueDifferentialInterleaved(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		rng := NewRNG(seed ^ 0xa5a5)
		e := NewEngine()
		ref := &refQueue{}

		var got []int
		ids := make(map[int]EventID)
		var live []int
		nextID := 0
		now := Time(0)

		for round := 0; round < 20; round++ {
			n := 1 + rng.Intn(30)
			for i := 0; i < n; i++ {
				switch {
				case len(live) > 0 && rng.Intn(3) == 0:
					k := rng.Intn(len(live))
					id := live[k]
					live = append(live[:k], live[k+1:]...)
					if e.Cancel(ids[id]) != ref.cancel(id) {
						t.Fatalf("seed %d: cancel(%d) diverged", seed, id)
					}
					delete(ids, id)
				default:
					at := now + Time(rng.Intn(40))
					id := nextID
					nextID++
					seq := e.nextSeq
					id2 := id
					ids[id] = e.At(at, func(*Engine) { got = append(got, id2) })
					ref.schedule(at, seq, id)
					live = append(live, id)
				}
			}
			now += Time(10 + rng.Intn(20))
			got = got[:0]
			e.RunUntil(now)
			want := ref.popThrough(now)
			if !intsEqual(got, want) {
				t.Fatalf("seed %d round %d: firing order diverged\n got %v\nwant %v", seed, round, got, want)
			}
			for _, id := range want {
				delete(ids, id)
				for k, v := range live {
					if v == id {
						live = append(live[:k], live[k+1:]...)
						break
					}
				}
			}
		}
	}
}

// TestTimerRescheduleMatchesCancelPlusSchedule pins the Timer equivalence:
// rescheduling an armed timer behaves exactly like canceling the pending
// firing and scheduling anew (fresh seq, so it loses ties against events
// scheduled before the reschedule).
func TestTimerRescheduleMatchesCancelPlusSchedule(t *testing.T) {
	var order []string
	e := NewEngine()
	tm := e.NewTimer(func(*Engine) { order = append(order, "timer") })
	tm.ScheduleAt(10)
	e.At(20, func(*Engine) { order = append(order, "a") })
	tm.ScheduleAt(20) // cancels the firing at 10; new seq after "a"
	e.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "timer" {
		t.Fatalf("order = %v, want [a timer]", order)
	}
	if tm.Armed() {
		t.Error("timer still armed after firing")
	}
}

func TestTimerStopAndRearm(t *testing.T) {
	fired := 0
	e := NewEngine()
	tm := e.NewTimer(func(*Engine) { fired++ })
	tm.ScheduleAfter(5)
	if !tm.Armed() {
		t.Fatal("timer not armed after schedule")
	}
	if !tm.Stop() {
		t.Fatal("Stop of armed timer reported nothing to do")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported descheduling")
	}
	e.Run()
	if fired != 0 {
		t.Fatalf("stopped timer fired %d times", fired)
	}
	tm.ScheduleAfter(5)
	e.Run()
	if fired != 1 {
		t.Fatalf("rearmed timer fired %d times, want 1", fired)
	}
}

// TestEventIDStaleAcrossSlotReuse pins the generation stamping: an ID for
// a fired event must stay inert even after its arena slot is recycled by
// a new event.
func TestEventIDStaleAcrossSlotReuse(t *testing.T) {
	e := NewEngine()
	stale := e.At(1, func(*Engine) {})
	e.Run()
	fired := false
	e.At(2, func(*Engine) { fired = true }) // recycles the freed slot
	if e.Cancel(stale) {
		t.Fatal("stale EventID canceled a recycled slot's event")
	}
	e.Run()
	if !fired {
		t.Fatal("second event did not fire")
	}
}

// TestMassCancelShrinksQueue pins the tombstone-free property: canceling
// physically removes, so Pending drops immediately (the FM retry layer
// cancels timeouts en masse between runs).
func TestMassCancelShrinksQueue(t *testing.T) {
	e := NewEngine()
	var ids []EventID
	for i := 0; i < 1000; i++ {
		ids = append(ids, e.At(Time(i+1), func(*Engine) {}))
	}
	for _, id := range ids[:900] {
		if !e.Cancel(id) {
			t.Fatal("cancel of live event failed")
		}
	}
	if got := e.Pending(); got != 100 {
		t.Fatalf("Pending after mass cancel = %d, want 100", got)
	}
	fired := 0
	e.At(2000, func(*Engine) { fired++ })
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending after drain = %d", e.Pending())
	}
	if fired != 1 {
		t.Fatal("post-cancel scheduling broken")
	}
}
