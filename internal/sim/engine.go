package sim

import (
	"container/heap"
	"fmt"
)

// Handler is a callback run when an event fires. It receives the engine so
// that it can schedule follow-up events.
type Handler func(e *Engine)

// event is a scheduled callback. seq breaks ties between events scheduled
// for the same instant: earlier-scheduled events run first, which makes
// runs deterministic regardless of heap internals.
type event struct {
	at       Time
	seq      uint64
	fn       Handler
	canceled bool
	index    int // position in the heap, maintained by eventQueue
}

// EventID identifies a scheduled event so it can be canceled. The zero
// value is not a valid ID.
type EventID struct{ ev *event }

// eventQueue is a binary min-heap of events ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a sequential discrete-event simulator. It is not safe for
// concurrent use; parallelism in this repository is achieved by running
// many independent Engine instances (one per simulation run) across a
// worker pool — see internal/experiment.
type Engine struct {
	now     Time
	queue   eventQueue
	nextSeq uint64
	stopped bool

	// Processed counts events that have fired.
	Processed uint64
	// Scheduled counts events that have been scheduled (including later
	// canceled ones).
	Scheduled uint64
}

// NewEngine returns an engine at time zero with an empty event queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of events still queued (including canceled
// events not yet discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at the absolute instant t. Scheduling in the past
// panics: it would silently reorder causality, which in a network
// simulator always indicates a modelling bug.
func (e *Engine) At(t Time, fn Handler) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event handler")
	}
	ev := &event{at: t, seq: e.nextSeq, fn: fn}
	e.nextSeq++
	e.Scheduled++
	heap.Push(&e.queue, ev)
	return EventID{ev}
}

// After schedules fn to run d after the current instant. Negative d panics.
func (e *Engine) After(d Duration, fn Handler) EventID {
	return e.At(e.now.Add(d), fn)
}

// Cancel prevents a scheduled event from firing. Canceling an event that
// already fired, or the zero EventID, is a no-op. Cancel reports whether
// the event was actually descheduled by this call.
func (e *Engine) Cancel(id EventID) bool {
	ev := id.ev
	if ev == nil || ev.canceled || ev.index < 0 {
		return false
	}
	ev.canceled = true
	return true
}

// Stop makes the current Run return after the in-flight event handler
// completes. Pending events remain queued, so Run may be called again to
// resume.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events in timestamp order until the queue drains or Stop
// is called. It returns the simulation time after the last processed
// event.
func (e *Engine) Run() Time {
	return e.RunUntil(Never)
}

// RunUntil processes events with timestamps <= deadline, in order, until
// the queue drains, the deadline passes, or Stop is called. If the queue
// still holds events beyond the deadline, the clock is advanced to the
// deadline. It returns the current simulation time.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		ev := e.queue[0]
		if ev.at > deadline {
			e.now = deadline
			return e.now
		}
		heap.Pop(&e.queue)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.Processed++
		ev.fn(e)
	}
	if len(e.queue) == 0 && deadline != Never && e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Step processes exactly one non-canceled event, if any, and reports
// whether one fired.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.Processed++
		ev.fn(e)
		return true
	}
	return false
}
