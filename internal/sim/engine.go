package sim

import "fmt"

// Handler is a callback run when an event fires. It receives the engine so
// that it can schedule follow-up events.
type Handler func(e *Engine)

// ArgHandler is a callback run when an event scheduled with AtArg/AfterArg
// fires. The arg is whatever the scheduler passed; a pointer-shaped arg
// boxes into the interface without allocating, so one pre-bound ArgHandler
// can serve many concurrent events (e.g. one per in-flight packet) with
// zero per-event allocations.
type ArgHandler func(e *Engine, arg any)

// event is a scheduled callback, stored in the engine's arena. seq breaks
// ties between events scheduled for the same instant: earlier-scheduled
// events run first, which makes runs deterministic regardless of heap
// internals. gen distinguishes reuses of the same arena slot so stale
// EventIDs never cancel an unrelated event.
type event struct {
	at      Time
	seq     uint64
	fn      Handler
	afn     ArgHandler
	arg     any
	gen     uint32
	heapPos int32 // position in the heap; -1 while the slot is free
}

// EventID identifies a scheduled event so it can be canceled. The zero
// value is not a valid ID. IDs are generation-stamped: after the event
// fires or is canceled, the ID goes stale and further Cancels are no-ops
// even if the underlying arena slot has been recycled.
type EventID struct {
	slot int32 // arena index + 1; 0 marks the invalid zero value
	gen  uint32
}

// Engine is a sequential discrete-event simulator. It is not safe for
// concurrent use; parallelism in this repository is achieved by running
// many independent Engine instances (one per simulation run) across a
// worker pool — see internal/experiment.
//
// The event queue is a hand-specialized 4-ary min-heap of indices into an
// arena of event slots with a free list: scheduling, firing and canceling
// recycle slots instead of allocating, so the steady-state hot path is
// allocation-free (see bench_test.go and the zero-alloc regression tests).
// Cancel physically removes the event from the heap via its maintained
// position — mass cancellation (e.g. the FM retry layer descheduling
// timeouts) never leaves tombstones behind to bloat the queue.
type Engine struct {
	now     Time
	arena   []event
	free    []int32
	heap    []int32
	nextSeq uint64
	stopped bool

	// Processed counts events that have fired.
	Processed uint64
	// Scheduled counts events that have been scheduled (including later
	// canceled ones).
	Scheduled uint64
	// MaxPending is the high-water mark of the event queue — the deepest
	// the heap has ever been. Telemetry snapshots read it after a run to
	// report how much simultaneity the scenario actually generated.
	MaxPending int
}

// NewEngine returns an engine at time zero with an empty event queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of events currently scheduled. Canceled
// events are physically removed, so they never count.
func (e *Engine) Pending() int { return len(e.heap) }

// alloc takes a free arena slot (or grows the arena) and initializes it.
func (e *Engine) alloc(t Time, fn Handler, afn ArgHandler, arg any) EventID {
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.arena = append(e.arena, event{})
		idx = int32(len(e.arena) - 1)
	}
	ev := &e.arena[idx]
	ev.at = t
	ev.seq = e.nextSeq
	ev.fn = fn
	ev.afn = afn
	ev.arg = arg
	e.nextSeq++
	e.Scheduled++
	e.heap = append(e.heap, idx)
	if len(e.heap) > e.MaxPending {
		e.MaxPending = len(e.heap)
	}
	e.siftUp(len(e.heap) - 1)
	return EventID{slot: idx + 1, gen: ev.gen}
}

// release recycles a fired or canceled slot. Bumping the generation makes
// every outstanding EventID for the slot stale; clearing the callbacks
// drops references so closures and args become collectable.
func (e *Engine) release(idx int32) {
	ev := &e.arena[idx]
	ev.gen++
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	ev.heapPos = -1
	e.free = append(e.free, idx)
}

// At schedules fn to run at the absolute instant t. Scheduling in the past
// panics: it would silently reorder causality, which in a network
// simulator always indicates a modelling bug.
func (e *Engine) At(t Time, fn Handler) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event handler")
	}
	return e.alloc(t, fn, nil, nil)
}

// After schedules fn to run d after the current instant. Negative d panics.
func (e *Engine) After(d Duration, fn Handler) EventID {
	return e.At(e.now.Add(d), fn)
}

// AtArg schedules fn(engine, arg) at the absolute instant t. It is the
// allocation-free alternative to capturing per-event state in a closure:
// the callback is pre-bound once and the varying state rides in arg.
func (e *Engine) AtArg(t Time, fn ArgHandler, arg any) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event handler")
	}
	return e.alloc(t, nil, fn, arg)
}

// AfterArg schedules fn(engine, arg) to run d after the current instant.
func (e *Engine) AfterArg(d Duration, fn ArgHandler, arg any) EventID {
	return e.AtArg(e.now.Add(d), fn, arg)
}

// Cancel prevents a scheduled event from firing, physically removing it
// from the queue. Canceling an event that already fired, or the zero
// EventID, is a no-op. Cancel reports whether the event was actually
// descheduled by this call.
func (e *Engine) Cancel(id EventID) bool {
	if id.slot == 0 {
		return false
	}
	idx := id.slot - 1
	ev := &e.arena[idx]
	if ev.gen != id.gen || ev.heapPos < 0 {
		return false
	}
	e.removeAt(int(ev.heapPos))
	e.release(idx)
	return true
}

// armed reports whether the identified event is still scheduled.
func (e *Engine) armed(id EventID) bool {
	if id.slot == 0 {
		return false
	}
	ev := &e.arena[id.slot-1]
	return ev.gen == id.gen && ev.heapPos >= 0
}

// Stop makes the current Run return after the in-flight event handler
// completes. Pending events remain queued, so Run may be called again to
// resume.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events in timestamp order until the queue drains or Stop
// is called. It returns the simulation time after the last processed
// event.
func (e *Engine) Run() Time {
	return e.RunUntil(Never)
}

// RunUntil processes events with timestamps <= deadline, in order, until
// the queue drains, the deadline passes, or Stop is called. If the queue
// still holds events beyond the deadline, the clock is advanced to the
// deadline. It returns the current simulation time.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		top := e.heap[0]
		at := e.arena[top].at
		if at > deadline {
			e.now = deadline
			return e.now
		}
		e.fire(e.popMin())
	}
	if len(e.heap) == 0 && deadline != Never && e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// NextEventTime returns the timestamp of the earliest pending event, and
// whether one exists. The shard-group coordinator polls it to compute
// conservative execution horizons; it never modifies the queue.
func (e *Engine) NextEventTime() (Time, bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.arena[e.heap[0]].at, true
}

// RunBefore processes events with timestamps strictly below limit, in
// order, until none remain or Stop is called. Unlike RunUntil it never
// advances the clock past the last processed event: in the sharded
// parallel path the clock of a quiet region is owned by the ShardGroup
// coordinator, which advances it only once every region has agreed the
// span is safe.
func (e *Engine) RunBefore(limit Time) Time {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		if e.arena[e.heap[0]].at >= limit {
			break
		}
		e.fire(e.popMin())
	}
	return e.now
}

// Step processes exactly one event, if any, and reports whether one fired.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	e.fire(e.popMin())
	return true
}

// fire advances the clock to the event and runs its callback. The slot is
// released before the callback runs, so a reusable timer's handler can
// immediately rearm (possibly reusing the very slot it fired from).
func (e *Engine) fire(idx int32) {
	ev := &e.arena[idx]
	at, fn, afn, arg := ev.at, ev.fn, ev.afn, ev.arg
	e.release(idx)
	e.now = at
	e.Processed++
	if afn != nil {
		afn(e, arg)
		return
	}
	fn(e)
}

// less orders arena slots by (at, seq): time first, schedule order second.
func (e *Engine) less(a, b int32) bool {
	ea, eb := &e.arena[a], &e.arena[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// The heap is 4-ary: children of position i are 4i+1..4i+4. A wider node
// trades slightly more comparisons per level for half the levels and much
// better cache behaviour than a binary heap on the index slice.

// siftUp restores heap order by moving the element at pos toward the root.
func (e *Engine) siftUp(pos int) {
	idx := e.heap[pos]
	for pos > 0 {
		parent := (pos - 1) >> 2
		pidx := e.heap[parent]
		if e.less(pidx, idx) {
			break
		}
		e.heap[pos] = pidx
		e.arena[pidx].heapPos = int32(pos)
		pos = parent
	}
	e.heap[pos] = idx
	e.arena[idx].heapPos = int32(pos)
}

// siftDown restores heap order by moving the element at pos toward the
// leaves.
func (e *Engine) siftDown(pos int) {
	n := len(e.heap)
	idx := e.heap[pos]
	for {
		first := pos<<2 + 1
		if first >= n {
			break
		}
		best := first
		bidx := e.heap[first]
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if cidx := e.heap[c]; e.less(cidx, bidx) {
				best, bidx = c, cidx
			}
		}
		if e.less(idx, bidx) {
			break
		}
		e.heap[pos] = bidx
		e.arena[bidx].heapPos = int32(pos)
		pos = best
	}
	e.heap[pos] = idx
	e.arena[idx].heapPos = int32(pos)
}

// popMin removes and returns the arena index of the earliest event.
func (e *Engine) popMin() int32 {
	idx := e.heap[0]
	last := len(e.heap) - 1
	lidx := e.heap[last]
	e.heap = e.heap[:last]
	if last > 0 {
		e.heap[0] = lidx
		e.arena[lidx].heapPos = 0
		e.siftDown(0)
	}
	e.arena[idx].heapPos = -1
	return idx
}

// removeAt deletes the heap entry at pos, restoring order around it.
func (e *Engine) removeAt(pos int) {
	last := len(e.heap) - 1
	idx := e.heap[pos]
	e.arena[idx].heapPos = -1
	if pos == last {
		e.heap = e.heap[:last]
		return
	}
	lidx := e.heap[last]
	e.heap = e.heap[:last]
	e.heap[pos] = lidx
	e.arena[lidx].heapPos = int32(pos)
	e.siftDown(pos)
	if e.arena[lidx].heapPos == int32(pos) {
		e.siftUp(pos)
	}
}

// Timer is a reusable scheduled event with a pre-bound handler. It is the
// allocation-free replacement for the schedule-a-fresh-closure pattern on
// recurring events (link serializer kicks, serial work queues, timeouts):
// the callback is bound once at construction and every (re)schedule just
// takes an arena slot.
//
// A Timer tracks at most one pending firing: scheduling while armed
// cancels the pending one first. Like the Engine itself, a Timer is not
// safe for concurrent use.
type Timer struct {
	e  *Engine
	fn Handler
	id EventID
}

// NewTimer returns an unarmed timer that runs fn when it fires.
func (e *Engine) NewTimer(fn Handler) *Timer {
	if fn == nil {
		panic("sim: nil timer handler")
	}
	return &Timer{e: e, fn: fn}
}

// Armed reports whether the timer has a pending firing.
func (t *Timer) Armed() bool { return t.e.armed(t.id) }

// ScheduleAt (re)schedules the timer to fire at the absolute instant at,
// canceling any pending firing first.
func (t *Timer) ScheduleAt(at Time) {
	t.e.Cancel(t.id)
	t.id = t.e.At(at, t.fn)
}

// ScheduleAfter (re)schedules the timer to fire d after the current
// instant, canceling any pending firing first.
func (t *Timer) ScheduleAfter(d Duration) { t.ScheduleAt(t.e.now.Add(d)) }

// Stop cancels the pending firing, if any, and reports whether one was
// descheduled.
func (t *Timer) Stop() bool { return t.e.Cancel(t.id) }
