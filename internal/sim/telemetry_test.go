package sim

import (
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestEngineRecordTelemetryRepublishes(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.After(Duration(i+1)*Microsecond, func(*Engine) {})
	}
	e.Run()

	reg := telemetry.New()
	e.RecordTelemetry(reg, time.Millisecond)
	// A second publication (a daemon scrape) must not double-count.
	e.RecordTelemetry(reg, 0)
	s := reg.Snapshot()
	if got, _ := s.Counter(MetricEvents); got != e.Processed {
		t.Errorf("sim.events %d, want %d after republication", got, e.Processed)
	}
	if got, _ := s.Gauge(MetricHeapMax); got != int64(e.MaxPending) {
		t.Errorf("heap max %d, want %d", got, e.MaxPending)
	}
}

func TestShardGroupRecordTelemetry(t *testing.T) {
	g := NewShardGroup(2, Duration(Microsecond))
	// Region 0 pings region 1, which pongs back: forces at least one
	// multi-region interaction through the barrier machinery.
	g.Engine(0).At(Time(Microsecond), func(*Engine) {
		g.Post(0, 1, Time(2*Microsecond), func(*Engine, any) {}, nil)
	})
	g.Engine(1).At(Time(Microsecond), func(*Engine) {})
	g.Run()

	reg := telemetry.New()
	g.RecordTelemetry(reg)
	g.RecordTelemetry(reg) // republication is idempotent
	s := reg.Snapshot()

	if got, _ := s.Counter(MetricEvents); got != g.Processed() {
		t.Errorf("sim.events %d, want %d", got, g.Processed())
	}
	if got, _ := s.Counter(MetricShardRounds); got != g.Rounds {
		t.Errorf("rounds %d, want %d", got, g.Rounds)
	}
	if got, _ := s.Counter(MetricShardCross); got != g.Cross || g.Cross == 0 {
		t.Errorf("cross %d, want non-zero %d", got, g.Cross)
	}
	split := s.Vector(MetricRegionEvents)
	var sum uint64
	for _, v := range split {
		sum += v.Value
	}
	if sum != g.Processed() {
		t.Errorf("region split sums to %d, want %d", sum, g.Processed())
	}
	// Nil registry is a no-op.
	g.RecordTelemetry(nil)
}
