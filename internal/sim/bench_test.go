package sim

import "testing"

// Microbenchmarks for the event-queue hot path. Each reports events/sec so
// BENCH_sim.json captures engine throughput directly, alongside the ns/op
// and allocs/op the acceptance gates track.

// BenchmarkScheduleFire measures the steady-state schedule-then-drain
// cycle: the dominant pattern in packet simulations.
func BenchmarkScheduleFire(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	fn := func(*Engine) {}
	const batch = 1024
	for i := 0; i < batch; i++ { // warm the arena
		e.After(Duration(i%97), fn)
	}
	e.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			e.After(Duration(j%97), fn)
		}
		e.Run()
	}
	b.StopTimer()
	reportEventsPerSec(b, batch)
}

// BenchmarkScheduleCancel measures schedule immediately followed by
// physical cancellation — the FM retry layer's pattern.
func BenchmarkScheduleCancel(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	fn := func(*Engine) {}
	const batch = 1024
	ids := make([]EventID, batch)
	for i := 0; i < batch; i++ {
		e.After(Duration(i%97+1), fn)
	}
	e.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			ids[j] = e.After(Duration(j%97+1), fn)
		}
		for j := batch - 1; j >= 0; j-- {
			e.Cancel(ids[j])
		}
	}
	b.StopTimer()
	reportEventsPerSec(b, batch)
}

// BenchmarkTimerReschedule measures the reusable-timer rearm cycle used by
// link serializers and the FM work queue.
func BenchmarkTimerReschedule(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	tm := e.NewTimer(func(*Engine) {})
	tm.ScheduleAfter(1)
	e.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.ScheduleAfter(1)
		tm.ScheduleAfter(2)
		e.Run()
	}
	b.StopTimer()
	reportEventsPerSec(b, 1)
}

// BenchmarkChurn mixes scheduling, cancellation and firing with handlers
// that schedule follow-ups, approximating a live fabric's queue dynamics.
func BenchmarkChurn(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	rng := NewRNG(1)
	var chain Handler
	depth := 0
	chain = func(e *Engine) {
		if depth++; depth%3 != 0 {
			e.After(Duration(rng.Intn(50)+1), chain)
		}
	}
	const batch = 512
	ids := make([]EventID, 0, batch)
	for i := 0; i < batch; i++ {
		e.After(Duration(rng.Intn(100)+1), chain)
	}
	e.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids = ids[:0]
		for j := 0; j < batch; j++ {
			ids = append(ids, e.After(Duration(rng.Intn(100)+1), chain))
		}
		for j := 0; j < batch/4; j++ {
			e.Cancel(ids[rng.Intn(batch)])
		}
		e.Run()
	}
	b.StopTimer()
	reportEventsPerSec(b, 0)
}

// reportEventsPerSec derives throughput from the engine-independent
// counters: perOp > 0 means a fixed number of scheduled events per
// iteration; 0 derives the count from b.N-scaled elapsed totals via the
// benchmark's own processed tally being unavailable, so callers pass the
// per-iteration event count whenever it is static.
func reportEventsPerSec(b *testing.B, perOp int) {
	if perOp <= 0 {
		return
	}
	secs := b.Elapsed().Seconds()
	if secs <= 0 {
		return
	}
	b.ReportMetric(float64(b.N)*float64(perOp)/secs, "events/s")
}

// BenchmarkEngineScheduleRun is the historical whole-engine benchmark:
// cold engine, 1000 events, drain. Kept for baseline comparability.
func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.At(Time(j%97), func(*Engine) {})
		}
		e.Run()
	}
}
