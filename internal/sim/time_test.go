package sim

import (
	"testing"
	"testing/quick"
)

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ps"},
		{1500, "1.500ns"},
		{2 * Microsecond, "2.000us"},
		{3500 * Microsecond, "3.500ms"},
		{2 * Second, "2.000000s"},
		{-1500, "-1.500ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(100)
	t1 := t0.Add(50)
	if t1 != 150 {
		t.Errorf("Add: got %v", t1)
	}
	if d := t1.Sub(t0); d != 50 {
		t.Errorf("Sub: got %v", d)
	}
}

func TestUnitConstructors(t *testing.T) {
	if Micros(2.5) != 2500*Nanosecond {
		t.Errorf("Micros(2.5) = %v", Micros(2.5))
	}
	if Nanos(1.5) != 1500*Picosecond {
		t.Errorf("Nanos(1.5) = %v", Nanos(1.5))
	}
	if Seconds(0.001) != Millisecond {
		t.Errorf("Seconds(0.001) = %v", Seconds(0.001))
	}
}

func TestScale(t *testing.T) {
	d := 10 * Microsecond
	if got := d.Scale(0.5); got != 5*Microsecond {
		t.Errorf("Scale(0.5) = %v", got)
	}
	if got := d.Scale(1); got != d {
		t.Errorf("Scale(1) = %v", got)
	}
	if got := d.Scale(4); got != 40*Microsecond {
		t.Errorf("Scale(4) = %v", got)
	}
	if got := Duration(-1000).Scale(2); got != -2000 {
		t.Errorf("negative Scale = %v", got)
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	f := func(ps int32) bool {
		d := Duration(ps)
		return Seconds(d.Seconds()) == d || ps < 0 // Seconds() rounds; negatives excluded
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
