package sim

// RNG is a small deterministic pseudo-random generator (SplitMix64 for
// seeding, xoshiro256** for the stream). The standard library's
// math/rand/v2 would also do, but owning the generator pins the exact
// stream across Go releases, which keeps recorded experiment outputs
// reproducible forever.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, which
// guarantees a well-mixed internal state even for small seeds.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// xoshiro256** requires a nonzero state; SplitMix64 output of four
	// consecutive values is never all-zero, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and branch-light.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Jitter returns d scaled by a uniform factor in [1-frac, 1+frac]. It is
// used to desynchronize otherwise-identical device timers (e.g. power-up
// and election backoffs) the way real oscillator skew would.
func (r *RNG) Jitter(d Duration, frac float64) Duration {
	if frac <= 0 {
		return d
	}
	f := 1 + frac*(2*r.Float64()-1)
	return d.Scale(f)
}

// Split returns a new generator seeded from this one's stream, for giving
// independent components their own reproducible randomness.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}
