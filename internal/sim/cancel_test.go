package sim

import "testing"

// TestCancelAfterFireIsNoOp pins the property the Manager's retry path
// leans on: a completion that arrives after its request timed out cancels
// a timeout event that has already fired, and that cancel must change
// nothing — not the engine state, not other scheduled events.
func TestCancelAfterFireIsNoOp(t *testing.T) {
	e := NewEngine()
	fired := 0
	id := e.After(5*Microsecond, func(*Engine) { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("event fired %d times, want 1", fired)
	}
	if e.Cancel(id) {
		t.Error("Cancel after fire reported descheduling")
	}
	if e.Cancel(id) {
		t.Error("second Cancel after fire reported descheduling")
	}

	// The retry pattern: a timeout fires and arms a retry; the stale
	// completion then cancels the (already fired) timeout. The retry
	// event must be untouched.
	var seq []string
	timeout := e.After(10*Microsecond, func(*Engine) { seq = append(seq, "timeout") })
	e.After(20*Microsecond, func(*Engine) { seq = append(seq, "retry") })
	e.RunUntil(e.Now().Add(15 * Microsecond))
	if e.Cancel(timeout) {
		t.Error("cancel of fired timeout reported descheduling")
	}
	e.Run()
	if len(seq) != 2 || seq[0] != "timeout" || seq[1] != "retry" {
		t.Errorf("sequence = %v, want [timeout retry]", seq)
	}

	// The zero EventID is likewise inert.
	if e.Cancel(EventID{}) {
		t.Error("zero EventID cancel reported descheduling")
	}
}

// TestCancelBeforeFireStillWorks is the control: canceling a pending
// event does deschedule it exactly once.
func TestCancelBeforeFireStillWorks(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.After(Microsecond, func(*Engine) { fired = true })
	if !e.Cancel(id) {
		t.Error("cancel of pending event reported nothing to do")
	}
	if e.Cancel(id) {
		t.Error("double cancel reported descheduling twice")
	}
	e.Run()
	if fired {
		t.Error("canceled event fired")
	}
}
