package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimestampOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{500, 100, 300, 200, 400} {
		at := at
		e.At(at, func(e *Engine) {
			if e.Now() != at {
				t.Errorf("handler at %v ran at %v", at, e.Now())
			}
			got = append(got, e.Now())
		})
	}
	e.Run()
	want := []Time{100, 200, 300, 400, 500}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d ran at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(42, func(*Engine) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events ran out of schedule order: %v", order)
		}
	}
}

func TestEngineAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.At(100, func(e *Engine) {
		e.After(50, func(e *Engine) { fired = e.Now() })
	})
	e.Run()
	if fired != 150 {
		t.Fatalf("After fired at %v, want 150", fired)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func(e *Engine) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func(*Engine) {})
	})
	e.Run()
}

func TestEngineNilHandlerPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("nil handler did not panic")
		}
	}()
	e.At(1, nil)
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.At(10, func(*Engine) { fired = true })
	if !e.Cancel(id) {
		t.Error("first Cancel returned false")
	}
	if e.Cancel(id) {
		t.Error("second Cancel returned true")
	}
	e.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if e.Cancel(EventID{}) {
		t.Error("Cancel of zero EventID returned true")
	}
}

func TestEngineCancelAfterFireIsNoop(t *testing.T) {
	e := NewEngine()
	id := e.At(10, func(*Engine) {})
	e.Run()
	if e.Cancel(id) {
		t.Error("Cancel after fire returned true")
	}
}

func TestEngineStopSuspendsAndResumes(t *testing.T) {
	e := NewEngine()
	var ran []Time
	e.At(10, func(e *Engine) { ran = append(ran, e.Now()); e.Stop() })
	e.At(20, func(e *Engine) { ran = append(ran, e.Now()) })
	e.Run()
	if len(ran) != 1 || ran[0] != 10 {
		t.Fatalf("after Stop ran %v, want [10]", ran)
	}
	e.Run()
	if len(ran) != 2 || ran[1] != 20 {
		t.Fatalf("after resume ran %v, want [10 20]", ran)
	}
}

func TestEngineRunUntilDeadline(t *testing.T) {
	e := NewEngine()
	var ran []Time
	for _, at := range []Time{10, 20, 30} {
		e.At(at, func(e *Engine) { ran = append(ran, e.Now()) })
	}
	now := e.RunUntil(25)
	if now != 25 {
		t.Errorf("RunUntil returned %v, want 25", now)
	}
	if len(ran) != 2 {
		t.Errorf("processed %d events before deadline, want 2", len(ran))
	}
	now = e.RunUntil(Never)
	if now != 30 || len(ran) != 3 {
		t.Errorf("resume: now=%v ran=%v", now, ran)
	}
}

func TestEngineRunUntilAdvancesClockOnEmptyQueue(t *testing.T) {
	e := NewEngine()
	if now := e.RunUntil(1000); now != 1000 {
		t.Fatalf("RunUntil on empty queue returned %v, want 1000", now)
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(5, func(*Engine) { count++ })
	e.At(6, func(*Engine) { count++ })
	if !e.Step() || count != 1 {
		t.Fatalf("first Step: count=%d", count)
	}
	if !e.Step() || count != 2 {
		t.Fatalf("second Step: count=%d", count)
	}
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestEngineCounters(t *testing.T) {
	e := NewEngine()
	id := e.At(1, func(*Engine) {})
	e.At(2, func(*Engine) {})
	e.Cancel(id)
	e.Run()
	if e.Scheduled != 2 {
		t.Errorf("Scheduled=%d, want 2", e.Scheduled)
	}
	if e.Processed != 1 {
		t.Errorf("Processed=%d, want 1", e.Processed)
	}
}

// Property: for any set of non-negative offsets, the engine fires events
// in nondecreasing time order and processes all of them.
func TestEngineOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, off := range offsets {
			e.At(Time(off), func(e *Engine) { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: handlers scheduling follow-ups never observe time running
// backwards.
func TestEngineCausalityProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := NewRNG(seed)
		e := NewEngine()
		ok := true
		var prev Time
		var spawn func(depth int) Handler
		spawn = func(depth int) Handler {
			return func(e *Engine) {
				if e.Now() < prev {
					ok = false
				}
				prev = e.Now()
				if depth > 0 {
					e.After(Duration(rng.Intn(100)), spawn(depth-1))
				}
			}
		}
		for i := 0; i < int(n%16)+1; i++ {
			e.At(Time(rng.Intn(50)), spawn(3))
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// MaxPending tracks the queue's high-water mark: it grows to the deepest
// simultaneous backlog and never shrinks as events drain.
func TestEngineMaxPendingHighWaterMark(t *testing.T) {
	e := NewEngine()
	fn := func(*Engine) {}
	for i := 0; i < 10; i++ {
		e.After(Duration(i+1), fn)
	}
	if e.MaxPending != 10 {
		t.Errorf("MaxPending = %d after 10 schedules, want 10", e.MaxPending)
	}
	e.Run()
	if e.MaxPending != 10 {
		t.Errorf("MaxPending = %d after drain, want 10 (must not shrink)", e.MaxPending)
	}
	// A shallower second wave leaves the mark untouched; a deeper one
	// raises it. Cancellations do not lower it either.
	for i := 0; i < 4; i++ {
		e.After(Duration(i+1), fn)
	}
	id := e.After(99, fn)
	e.Cancel(id)
	if e.MaxPending != 10 {
		t.Errorf("MaxPending = %d after shallow wave, want 10", e.MaxPending)
	}
	for i := 0; i < 20; i++ {
		e.After(Duration(i+1), fn)
	}
	if e.MaxPending != 24 {
		t.Errorf("MaxPending = %d, want 24", e.MaxPending)
	}
}
