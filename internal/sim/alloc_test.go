package sim

import "testing"

// Zero-allocation regression tests: the engine's steady-state hot path —
// scheduling into a warmed arena, firing, canceling, timer reuse — must
// not allocate. A regression here silently reintroduces per-event garbage
// across every simulation in the repository.

func TestSteadyStateScheduleFireZeroAlloc(t *testing.T) {
	e := NewEngine()
	fn := func(*Engine) {}
	// Warm the arena and heap past their steady-state size.
	for i := 0; i < 256; i++ {
		e.After(Duration(i%17), fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			e.After(Duration(i%7), fn)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Errorf("steady-state schedule/fire allocates %.1f per run, want 0", allocs)
	}
}

func TestSteadyStateCancelZeroAlloc(t *testing.T) {
	e := NewEngine()
	fn := func(*Engine) {}
	for i := 0; i < 256; i++ {
		e.After(Duration(i%17), fn)
	}
	e.Run()
	var ids [64]EventID
	allocs := testing.AllocsPerRun(200, func() {
		for i := range ids {
			ids[i] = e.After(Duration(i%13+1), fn)
		}
		for _, id := range ids {
			e.Cancel(id)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state schedule/cancel allocates %.1f per run, want 0", allocs)
	}
}

func TestTimerRescheduleZeroAlloc(t *testing.T) {
	e := NewEngine()
	tm := e.NewTimer(func(*Engine) {})
	tm.ScheduleAfter(1)
	e.Run()
	allocs := testing.AllocsPerRun(200, func() {
		tm.ScheduleAfter(1)
		tm.ScheduleAfter(2) // reschedule while armed
		e.Run()
	})
	if allocs != 0 {
		t.Errorf("timer reuse allocates %.1f per run, want 0", allocs)
	}
}

func TestAfterArgZeroAlloc(t *testing.T) {
	type payload struct{ n int }
	e := NewEngine()
	sink := 0
	fn := func(_ *Engine, arg any) { sink += arg.(*payload).n }
	p := &payload{n: 1}
	e.AfterArg(1, fn, p)
	e.Run()
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 16; i++ {
			e.AfterArg(Duration(i+1), fn, p)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Errorf("AfterArg with pointer arg allocates %.1f per run, want 0", allocs)
	}
}
