package sim

// Ring is a growable FIFO queue backed by a power-of-two circular buffer.
// It replaces the append/reslice queue idiom (q = q[1:]), which under
// sustained traffic keeps regrowing and leaking backing arrays: a Ring
// reuses its buffer and only grows when the queue is genuinely deeper
// than ever before. The zero value is an empty ring.
type Ring[T any] struct {
	buf  []T
	head int
	n    int
}

// Len returns the number of queued elements.
func (r *Ring[T]) Len() int { return r.n }

// Push appends v at the tail.
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// Pop removes and returns the head element. It panics on an empty ring.
func (r *Ring[T]) Pop() T {
	if r.n == 0 {
		panic("sim: Pop of empty Ring")
	}
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// At returns the i-th queued element, counting from the head.
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.n {
		panic("sim: Ring.At out of range")
	}
	return r.buf[(r.head+i)&(len(r.buf)-1)]
}

// Clear empties the ring, zeroing stored elements so references are
// released, but keeps the backing buffer for reuse.
func (r *Ring[T]) Clear() {
	var zero T
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)&(len(r.buf)-1)] = zero
	}
	r.head, r.n = 0, 0
}

// grow doubles the buffer (minimum 8) and re-linearizes the contents.
func (r *Ring[T]) grow() {
	size := len(r.buf) * 2
	if size < 8 {
		size = 8
	}
	nb := make([]T, size)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nb
	r.head = 0
}
