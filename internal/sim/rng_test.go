package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical values", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnRoughlyUniform(t *testing.T) {
	r := NewRNG(99)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		// Expected 10000 per bucket; allow +-10%, far beyond 5-sigma.
		if c < 9000 || c > 11000 {
			t.Errorf("bucket %d has %d hits, expected ~%d", i, c, trials/n)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n % 64)
		p := NewRNG(seed).Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRNG(5)
	base := 100 * Microsecond
	for i := 0; i < 1000; i++ {
		j := r.Jitter(base, 0.1)
		if j < base.Scale(0.9) || j > base.Scale(1.1) {
			t.Fatalf("Jitter out of bounds: %v", j)
		}
	}
	if r.Jitter(base, 0) != base {
		t.Error("Jitter with frac=0 modified duration")
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(11)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Error("split generators produced identical streams")
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{1 << 32, 1 << 32, 1, 0},
		{^uint64(0), ^uint64(0), ^uint64(0) - 1, 1},
		{0xdeadbeefcafebabe, 2, 1, 0xbd5b7ddf95fd757c},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%#x, %#x) = (%#x, %#x), want (%#x, %#x)",
				c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
