package sim

import "testing"

func TestRingFIFO(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 100; i++ {
		r.Push(i)
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d, want 100", r.Len())
	}
	for i := 0; i < 100; i++ {
		if got := r.At(0); got != i {
			t.Fatalf("At(0) = %d, want %d", got, i)
		}
		if got := r.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len after drain = %d", r.Len())
	}
}

func TestRingWrapAround(t *testing.T) {
	var r Ring[int]
	next, expect := 0, 0
	// Interleave pushes and pops so head walks around the buffer many
	// times at a depth that never forces a regrow after warmup.
	for i := 0; i < 1000; i++ {
		for j := 0; j < 3; j++ {
			r.Push(next)
			next++
		}
		for j := 0; j < 3; j++ {
			if got := r.Pop(); got != expect {
				t.Fatalf("Pop = %d, want %d", got, expect)
			}
			expect++
		}
	}
	if len(r.buf) > 8 {
		t.Errorf("buffer grew to %d for depth-3 traffic, want <= 8", len(r.buf))
	}
}

func TestRingSteadyStateZeroAlloc(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 16; i++ {
		r.Push(i)
	}
	r.Clear()
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 8; i++ {
			r.Push(i)
		}
		for i := 0; i < 8; i++ {
			r.Pop()
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state ring traffic allocates %.1f per run, want 0", allocs)
	}
}

func TestRingClearReleasesAndReuses(t *testing.T) {
	var r Ring[*int]
	v := 7
	for i := 0; i < 5; i++ {
		r.Push(&v)
	}
	r.Clear()
	if r.Len() != 0 {
		t.Fatalf("Len after Clear = %d", r.Len())
	}
	for _, p := range r.buf {
		if p != nil {
			t.Fatal("Clear left a stored reference behind")
		}
	}
	r.Push(&v)
	if r.Len() != 1 || r.Pop() != &v {
		t.Fatal("ring unusable after Clear")
	}
}

func TestRingAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At out of range did not panic")
		}
	}()
	var r Ring[int]
	r.Push(1)
	r.At(1)
}

func TestRingPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pop of empty ring did not panic")
		}
	}()
	var r Ring[int]
	r.Pop()
}
