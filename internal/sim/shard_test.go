package sim

import (
	"testing"
)

// The shard tests drive a synthetic ping-chain workload: `wlChains`
// chains of events, where every event of chain c fires at a time
// congruent to c modulo wlChains. Distinct residues mean no two events
// anywhere share a timestamp, so the single-engine firing order and the
// merged-by-time multi-engine order are directly comparable — the fixed
// interleave rule is simply "ascending event time". Every third step a
// chain hops to the next region (via Post when sharded), so the
// workload exercises the conservative machinery, not just independent
// queues. Step deltas never depend on the region count, so the 1-region
// and 2-region runs describe the identical event stream.
const (
	wlChains = 8
	wlSteps  = 40
	wlL      = Duration(wlChains) // lookahead; hop deltas stay >= this
)

type wlEntry struct {
	at    Time
	chain int
	step  int
}

// wlArg carries one step's identity through AtArg/Post.
type wlArg struct {
	chain, step, region int
}

// runWorkload executes the ping-chain on nRegions engines (1 = plain
// sequential engine) and returns the time-merged event log.
func runWorkload(t *testing.T, nRegions int) ([]wlEntry, *ShardGroup) {
	t.Helper()
	g := NewShardGroup(nRegions, wlL)
	logs := make([][]wlEntry, nRegions)

	var fire ArgHandler
	fire = func(e *Engine, arg any) {
		a := arg.(wlArg)
		logs[a.region] = append(logs[a.region], wlEntry{at: e.Now(), chain: a.chain, step: a.step})
		if a.step+1 >= wlSteps {
			return
		}
		if (a.step+1)%3 == 0 {
			// Hop to the next region. The delta is a residue-preserving
			// multiple of wlChains that clears the lookahead.
			dst := (a.region + 1) % nRegions
			next := wlArg{chain: a.chain, step: a.step + 1, region: dst}
			if dst == a.region {
				e.AfterArg(2*wlChains, fire, next)
			} else {
				g.Post(a.region, dst, e.Now().Add(2*wlChains), fire, next)
			}
			return
		}
		delta := Duration(wlChains * (1 + (a.chain*7+a.step)%5))
		e.AfterArg(delta, fire, wlArg{chain: a.chain, step: a.step + 1, region: a.region})
	}

	for c := 0; c < wlChains; c++ {
		r := c % nRegions
		g.Engine(r).AtArg(Time(1000+c), fire, wlArg{chain: c, step: 0, region: r})
	}
	g.Run()

	// Merge per-region logs by event time. Residues are distinct by
	// construction, so the merge order is total and unambiguous.
	var merged []wlEntry
	idx := make([]int, nRegions)
	for {
		best := -1
		for r := 0; r < nRegions; r++ {
			if idx[r] >= len(logs[r]) {
				continue
			}
			if best < 0 || logs[r][idx[r]].at < logs[best][idx[best]].at {
				best = r
			}
		}
		if best < 0 {
			break
		}
		merged = append(merged, logs[best][idx[best]])
		idx[best]++
	}
	return merged, g
}

// TestShardSplitStreamMatchesSingleEngine is the cross-engine
// determinism property: splitting one event stream across two engines
// and merging their logs by the fixed interleave rule (ascending event
// time) replays exactly the order a single engine produces.
func TestShardSplitStreamMatchesSingleEngine(t *testing.T) {
	single, _ := runWorkload(t, 1)
	split, g := runWorkload(t, 2)
	if len(single) != wlChains*wlSteps {
		t.Fatalf("single engine fired %d events, want %d", len(single), wlChains*wlSteps)
	}
	if g.Cross == 0 {
		t.Fatal("two-region run posted no cross-region messages; the workload is not exercising the protocol")
	}
	if len(split) != len(single) {
		t.Fatalf("split run fired %d events, single %d", len(split), len(single))
	}
	for i := range single {
		if single[i] != split[i] {
			t.Fatalf("event %d: single %+v, split %+v", i, single[i], split[i])
		}
	}
}

// TestShardGroupDeterministic pins run-to-run stability: two identical
// two-region runs must produce identical logs and identical protocol
// statistics.
func TestShardGroupDeterministic(t *testing.T) {
	log1, g1 := runWorkload(t, 2)
	log2, g2 := runWorkload(t, 2)
	if len(log1) != len(log2) {
		t.Fatalf("reruns fired %d vs %d events", len(log1), len(log2))
	}
	for i := range log1 {
		if log1[i] != log2[i] {
			t.Fatalf("event %d: %+v vs %+v", i, log1[i], log2[i])
		}
	}
	if g1.Rounds != g2.Rounds || g1.Inline != g2.Inline || g1.Stalls != g2.Stalls || g1.Cross != g2.Cross {
		t.Fatalf("protocol stats differ across reruns: %+v vs %+v",
			[4]uint64{g1.Rounds, g1.Inline, g1.Stalls, g1.Cross},
			[4]uint64{g2.Rounds, g2.Inline, g2.Stalls, g2.Cross})
	}
}

// TestShardGroupRunUntil pins the horizon contract: events at the
// deadline fire, later ones stay queued, and all region clocks agree on
// the deadline afterwards (matching Engine.RunUntil).
func TestShardGroupRunUntil(t *testing.T) {
	g := NewShardGroup(2, 10)
	var fired []Time
	rec := func(e *Engine, _ any) { fired = append(fired, e.Now()) }
	g.Engine(0).AtArg(100, rec, nil)
	g.Engine(1).AtArg(200, rec, nil)
	g.Engine(0).AtArg(300, rec, nil)
	end := g.RunUntil(200)
	if end != 200 || g.Now() != 200 {
		t.Fatalf("RunUntil(200) = %v, Now() = %v", end, g.Now())
	}
	if len(fired) != 2 || fired[0] != 100 || fired[1] != 200 {
		t.Fatalf("fired %v, want [100 200]", fired)
	}
	if g.Pending() != 1 {
		t.Fatalf("%d events pending, want 1", g.Pending())
	}
	for i := 0; i < 2; i++ {
		if got := g.Engine(i).Now(); got != 200 {
			t.Fatalf("region %d clock %v, want 200", i, got)
		}
	}
	if end := g.Run(); end != 300 {
		t.Fatalf("drain ended at %v, want 300", end)
	}
	if g.Pending() != 0 {
		t.Fatalf("%d events pending after drain", g.Pending())
	}
}

// TestShardGroupValidation covers the constructor and setter contracts:
// region counts, lookahead clamping, and distance-matrix shape checks.
func TestShardGroupValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewShardGroup(0)", func() { NewShardGroup(0, 1) })

	g := NewShardGroup(2, 0)
	if g.Lookahead() != 1 {
		t.Fatalf("zero lookahead clamped to %v, want 1", g.Lookahead())
	}
	mustPanic("ragged matrix", func() { g.SetDistances([][]int32{{0, 1}}) })
	mustPanic("nonzero diagonal", func() { g.SetDistances([][]int32{{1, 1}, {1, 0}}) })
	mustPanic("zero off-diagonal", func() { g.SetDistances([][]int32{{0, 0}, {1, 0}}) })
	g.SetDistances([][]int32{{0, 3}, {3, 0}})

	// RNG seeding: per-region streams exist and are distinct objects.
	g.SeedRNGs(NewRNG(7))
	if g.RNG(0) == nil || g.RNG(1) == nil || g.RNG(0) == g.RNG(1) {
		t.Fatal("SeedRNGs did not derive distinct per-region streams")
	}
}

// TestShardGroupSingleRegion pins the degenerate case: one region
// delegates straight to the engine with no barrier overhead.
func TestShardGroupSingleRegion(t *testing.T) {
	g := NewShardGroup(1, 5)
	n := 0
	g.Engine(0).AtArg(50, func(*Engine, any) { n++ }, nil)
	if end := g.Run(); end != 50 {
		t.Fatalf("Run() = %v, want 50", end)
	}
	if n != 1 || g.Rounds != 0 {
		t.Fatalf("n=%d rounds=%d, want 1 event and 0 barrier rounds", n, g.Rounds)
	}
}
