package sim

import (
	"time"

	"repro/internal/telemetry"
)

// Engine telemetry metric names. The engine itself stays free of
// telemetry branching — its hot path maintains only the Processed count
// and the MaxPending high-water mark it already tracks — and this
// end-of-run publisher copies them out.
const (
	// MetricEvents counts simulation events processed.
	MetricEvents = "sim.events"
	// MetricHeapMax is the event-heap depth high-water mark.
	MetricHeapMax = "sim.heap.depth.max"
	// MetricEventsPerSec is the wall-clock event throughput of the run.
	MetricEventsPerSec = "sim.events.per.sec"
)

// RecordTelemetry publishes the engine's run statistics to reg: events
// processed, the pending-heap high-water mark, and — when the caller
// supplies the run's wall-clock duration — the simulator's events/sec
// throughput. Call it once the run is complete; a nil registry ignores
// everything.
func (e *Engine) RecordTelemetry(reg *telemetry.Registry, wall time.Duration) {
	reg.Counter(MetricEvents).Add(e.Processed)
	reg.Gauge(MetricHeapMax).SetMax(int64(e.MaxPending))
	if wall > 0 {
		reg.Gauge(MetricEventsPerSec).Set(int64(float64(e.Processed) / wall.Seconds()))
	}
}
