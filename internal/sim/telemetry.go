package sim

import (
	"time"

	"repro/internal/telemetry"
)

// Engine telemetry metric names. The engine itself stays free of
// telemetry branching — its hot path maintains only the Processed count
// and the MaxPending high-water mark it already tracks — and the
// publishers below copy them out on cold paths.
const (
	// MetricEvents counts simulation events processed.
	MetricEvents = "sim.events"
	// MetricHeapMax is the event-heap depth high-water mark.
	MetricHeapMax = "sim.heap.depth.max"
	// MetricEventsPerSec is the wall-clock event throughput of the run.
	MetricEventsPerSec = "sim.events.per.sec"
)

// ShardGroup telemetry metric names, published by
// ShardGroup.RecordTelemetry so parallel-DES health (barrier rounds,
// inline fast-path hits, lookahead stalls, cross-region traffic, and the
// per-region event split) is visible to the observability plane.
const (
	// MetricShardRounds counts conservative barrier rounds executed.
	MetricShardRounds = "sim.shard.rounds"
	// MetricShardInline counts rounds with exactly one active region,
	// run inline on the coordinator at full speed.
	MetricShardInline = "sim.shard.inline.rounds"
	// MetricShardStalls counts region-rounds where pending work was held
	// back by the lookahead bound.
	MetricShardStalls = "sim.shard.lookahead.stalls"
	// MetricShardCross counts cross-region message deliveries.
	MetricShardCross = "sim.shard.cross.msgs"
	// MetricRegionEvents is the per-region fired-event split (CounterVec
	// indexed by region).
	MetricRegionEvents = "sim.region.events"
)

// RecordTelemetry publishes the engine's run statistics to reg: events
// processed, the pending-heap high-water mark, and — when the caller
// supplies the run's wall-clock duration — the simulator's events/sec
// throughput. The totals are republished with SetTotal semantics, so a
// long-running daemon may call this on every telemetry scrape without
// double-counting; a nil registry ignores everything.
func (e *Engine) RecordTelemetry(reg *telemetry.Registry, wall time.Duration) {
	reg.Counter(MetricEvents).SetTotal(e.Processed)
	reg.Gauge(MetricHeapMax).SetMax(int64(e.MaxPending))
	if wall > 0 {
		reg.Gauge(MetricEventsPerSec).Set(int64(float64(e.Processed) / wall.Seconds()))
	}
}

// RecordTelemetry publishes the group's cumulative parallel-simulation
// statistics to reg: the shared sim.events total and heap high-water
// across all regions, the barrier/inline/stall/cross counters, and the
// per-region event split. Like the engine publisher it uses SetTotal
// semantics, so periodic scrapes see monotonic counters instead of
// compounding ones. Call it only between rounds (or after Run returns):
// the coordinator owns every region's counters at those points.
func (g *ShardGroup) RecordTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	var events uint64
	var heapMax int
	for _, e := range g.engines {
		events += e.Processed
		if e.MaxPending > heapMax {
			heapMax = e.MaxPending
		}
	}
	reg.Counter(MetricEvents).SetTotal(events)
	reg.Gauge(MetricHeapMax).SetMax(int64(heapMax))
	reg.Counter(MetricShardRounds).SetTotal(g.Rounds)
	reg.Counter(MetricShardInline).SetTotal(g.Inline)
	reg.Counter(MetricShardStalls).SetTotal(g.Stalls)
	reg.Counter(MetricShardCross).SetTotal(g.Cross)
	regions := reg.CounterVec(MetricRegionEvents, len(g.engines))
	for i, e := range g.engines {
		regions.Set(i, e.Processed)
	}
}
