package sim

import (
	"fmt"
	"sync"
)

// ShardGroup coordinates several Engines as one conservative parallel
// simulation. Each engine owns a disjoint region of the model; the only
// inter-region interaction is a message handoff with a known minimum
// latency (the lookahead), posted through Post and delivered at barrier
// points between rounds.
//
// The protocol is barrier-round conservative synchronization (in the
// bounded-lag family). Each round the coordinator reads every region's
// earliest pending event time N_i and computes a safe execution horizon
// per region:
//
//	limit_i = min over regions r != i of  N_r + dist(r,i)*L
//
// capped at the caller's deadline, where L is the lookahead and dist is
// the region-graph hop distance (every hop costs at least L). Any message
// a region r emits this round is sent while executing an event at some
// time t >= N_r, and reaches region i — directly or relayed — no earlier
// than t + dist(r,i)*L >= limit_i, so deliveries at the barrier are
// always in the receiver's future. Regions that could also be bitten by
// their *own* messages reflecting off a neighbour are additionally capped
// at N_i + 2*dmin_i*L when several regions run concurrently; when exactly
// one region is active it runs inline on the coordinator and its horizon
// tightens dynamically as it posts (to posted-arrival + return distance),
// which lets long serial stretches execute at full speed instead of
// being chopped into lookahead-sized windows.
//
// Deadlock-freedom: every round the region holding the globally earliest
// event is active (its limit is at least min2 + L > N_argmin, and its
// reflexive bound N + 2*dmin*L is strictly above N because L >= 1), so
// at least one event fires per round and simulated time advances.
//
// Determinism: each engine is sequentially deterministic, horizons are
// computed from queue state alone, and outboxes drain in a fixed
// (destination, source, FIFO) order at each barrier — so a run's results
// depend only on the region count, never on goroutine scheduling.
//
// The coordinator (the goroutine calling Run/RunUntil) and the per-region
// workers it spawns are the only goroutines that touch the group; Stop on
// a member engine mid-round is not supported.
type ShardGroup struct {
	engines   []*Engine
	lookahead Duration
	dist      [][]int32 // region-graph hop distance, dist[i][i] = 0
	dmin      []int32   // nearest-neighbour distance per region
	outbox    [][][]crossMsg
	rngs      []*RNG

	// single-active-round state: while region dynIdx runs inline, each
	// Post it makes may pull dynLimit in.
	dynIdx   int
	dynLimit Time

	next   []Time
	limits []Time
	active []int32

	Rounds uint64 // barrier rounds executed
	Inline uint64 // rounds with exactly one active region, run inline
	Stalls uint64 // region-rounds where pending work waited on lookahead
	Cross  uint64 // cross-region messages delivered
}

// crossMsg is one cross-region event handoff, buffered in a per-(src,dst)
// outbox until the barrier ending the round that produced it.
type crossMsg struct {
	at  Time
	fn  ArgHandler
	arg any
}

// NewShardGroup builds a group of n fresh engines with the given
// lookahead. Lookahead is clamped to at least one picosecond: a
// zero-lookahead model admits no conservative parallelism.
func NewShardGroup(n int, lookahead Duration) *ShardGroup {
	if n < 1 {
		panic(fmt.Sprintf("sim: NewShardGroup with %d regions", n))
	}
	g := &ShardGroup{
		engines: make([]*Engine, n),
		dist:    make([][]int32, n),
		dmin:    make([]int32, n),
		outbox:  make([][][]crossMsg, n),
		rngs:    make([]*RNG, n),
		dynIdx:  -1,
		next:    make([]Time, n),
		limits:  make([]Time, n),
		active:  make([]int32, 0, n),
	}
	g.SetLookahead(lookahead)
	for i := range g.engines {
		g.engines[i] = NewEngine()
		g.outbox[i] = make([][]crossMsg, n)
		g.dist[i] = make([]int32, n)
		for j := range g.dist[i] {
			if j != i {
				g.dist[i][j] = 1
			}
		}
		g.dmin[i] = 1
	}
	return g
}

// Shards returns the number of regions.
func (g *ShardGroup) Shards() int { return len(g.engines) }

// Engine returns region i's engine. All model state belonging to region i
// must schedule exclusively on it.
func (g *ShardGroup) Engine(i int) *Engine { return g.engines[i] }

// SetLookahead sets the minimum cross-region message latency, clamped to
// at least one picosecond.
func (g *ShardGroup) SetLookahead(d Duration) {
	if d < 1 {
		d = 1
	}
	g.lookahead = d
}

// Lookahead reports the group's cross-region lookahead.
func (g *ShardGroup) Lookahead() Duration { return g.lookahead }

// SetDistances installs the region-graph hop-distance matrix: d[i][j] is
// the minimum number of cross-region link traversals on any path from
// region i to region j, each of which costs at least the lookahead.
// Larger (honest) distances widen execution horizons. The matrix must be
// square with zero diagonal and positive, finite off-diagonal entries.
func (g *ShardGroup) SetDistances(d [][]int32) {
	n := len(g.engines)
	if len(d) != n {
		panic(fmt.Sprintf("sim: distance matrix has %d rows for %d regions", len(d), n))
	}
	for i := 0; i < n; i++ {
		if len(d[i]) != n {
			panic(fmt.Sprintf("sim: distance row %d has %d entries for %d regions", i, len(d[i]), n))
		}
		if d[i][i] != 0 {
			panic(fmt.Sprintf("sim: distance diagonal [%d][%d] = %d", i, i, d[i][i]))
		}
		min := int32(0)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if d[i][j] < 1 {
				panic(fmt.Sprintf("sim: distance [%d][%d] = %d", i, j, d[i][j]))
			}
			if min == 0 || d[i][j] < min {
				min = d[i][j]
			}
		}
		g.dist[i] = d[i]
		g.dmin[i] = min
	}
}

// SeedRNGs derives one RNG per region by splitting the given root stream
// in region order. The root must be dedicated to the group: splitting
// advances it.
func (g *ShardGroup) SeedRNGs(root *RNG) {
	for i := range g.rngs {
		g.rngs[i] = root.Split()
	}
}

// RNG returns region i's random stream (nil before SeedRNGs).
func (g *ShardGroup) RNG(i int) *RNG { return g.rngs[i] }

// Post hands an event from region src to region dst, to fire at time at.
// It must be called only from region src's executing event handlers (or
// from the coordinator between rounds), with at no earlier than the
// emitting event's time plus dist(src,dst) lookaheads. The message is
// buffered and scheduled on dst's engine at the next barrier; scheduling
// panics there if the protocol's safety bound was violated.
func (g *ShardGroup) Post(src, dst int, at Time, fn ArgHandler, arg any) {
	g.outbox[src][dst] = append(g.outbox[src][dst], crossMsg{at: at, fn: fn, arg: arg})
	if g.dynIdx == src {
		// A lone active region must stop before the earliest instant a
		// consequence of this message could reflect back to it.
		if t := at + Time(g.dist[dst][src])*Time(g.lookahead); t < g.dynLimit {
			g.dynLimit = t
		}
	}
}

// Run executes rounds until every region drains, then returns the final
// common simulation time.
func (g *ShardGroup) Run() Time { return g.RunUntil(Never) }

// RunUntil executes rounds until every region's next event lies beyond
// deadline (events at exactly deadline still fire, matching
// Engine.RunUntil), then advances every region's clock to the common stop
// time and returns it.
func (g *ShardGroup) RunUntil(deadline Time) Time {
	n := len(g.engines)
	if n == 1 {
		return g.engines[0].RunUntil(deadline)
	}
	hardCap := Never
	if deadline != Never {
		hardCap = deadline + 1
	}
	L := Time(g.lookahead)
	for {
		min1 := Never
		have := 0
		for i, e := range g.engines {
			t, ok := e.NextEventTime()
			if !ok {
				t = Never
			} else {
				have++
			}
			g.next[i] = t
			if t < min1 {
				min1 = t
			}
		}
		if have == 0 || min1 > deadline {
			break
		}
		active := g.active[:0]
		for i := 0; i < n; i++ {
			lim := hardCap
			for r := 0; r < n; r++ {
				if r == i || g.next[r] == Never {
					continue
				}
				if t := g.next[r] + Time(g.dist[r][i])*L; t < lim {
					lim = t
				}
			}
			g.limits[i] = lim
			if g.next[i] < lim {
				active = append(active, int32(i))
			}
		}
		g.active = active
		g.Rounds++
		g.Stalls += uint64(have - len(active))
		if len(active) == 1 {
			g.Inline++
			i := active[0]
			g.runInline(int(i), g.limits[i])
		} else {
			var wg sync.WaitGroup
			for _, i := range active {
				lim := g.limits[i]
				if refl := g.next[i] + 2*Time(g.dmin[i])*L; refl < lim {
					lim = refl
				}
				wg.Add(1)
				go func(e *Engine, lim Time) {
					defer wg.Done()
					e.RunBefore(lim)
				}(g.engines[i], lim)
			}
			wg.Wait()
		}
		g.flush()
	}
	// Quiet epilogue: every remaining event (if any) is beyond the
	// deadline, so advancing all clocks to the common stop time cannot
	// skip work.
	end := Time(0)
	for _, e := range g.engines {
		if e.now > end {
			end = e.now
		}
	}
	if deadline != Never && deadline > end {
		end = deadline
	}
	for _, e := range g.engines {
		if e.now < end {
			e.now = end
		}
	}
	return end
}

// runInline executes one single-active-region round on the coordinator
// goroutine. The region's horizon starts at its static limit and tightens
// as it posts cross-region messages (see Post), so a region that never
// talks to its neighbours runs unthrottled.
func (g *ShardGroup) runInline(i int, limit Time) {
	e := g.engines[i]
	e.stopped = false
	g.dynIdx, g.dynLimit = i, limit
	for len(e.heap) > 0 && !e.stopped {
		if e.arena[e.heap[0]].at >= g.dynLimit {
			break
		}
		e.fire(e.popMin())
	}
	g.dynIdx = -1
}

// flush delivers every buffered cross-region message, in (destination,
// source, FIFO) order so scheduling sequence numbers — and therefore
// same-timestamp tie-breaks — are independent of goroutine scheduling.
func (g *ShardGroup) flush() {
	for dst := range g.engines {
		e := g.engines[dst]
		for src := range g.engines {
			q := g.outbox[src][dst]
			if len(q) == 0 {
				continue
			}
			for k := range q {
				e.AtArg(q[k].at, q[k].fn, q[k].arg)
				q[k].arg = nil
			}
			g.Cross += uint64(len(q))
			g.outbox[src][dst] = q[:0]
		}
	}
}

// Now returns the latest region clock. After Run/RunUntil all regions
// agree and this is the common simulation time.
func (g *ShardGroup) Now() Time {
	t := Time(0)
	for _, e := range g.engines {
		if e.now > t {
			t = e.now
		}
	}
	return t
}

// Pending counts events still queued across all regions and outboxes.
func (g *ShardGroup) Pending() int {
	p := 0
	for _, e := range g.engines {
		p += e.Pending()
	}
	for _, row := range g.outbox {
		for _, q := range row {
			p += len(q)
		}
	}
	return p
}

// Processed sums events fired across all regions.
func (g *ShardGroup) Processed() uint64 {
	var total uint64
	for _, e := range g.engines {
		total += e.Processed
	}
	return total
}

// RegionProcessed returns per-region fired-event counts.
func (g *ShardGroup) RegionProcessed() []uint64 {
	counts := make([]uint64, len(g.engines))
	for i, e := range g.engines {
		counts[i] = e.Processed
	}
	return counts
}
