// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate every other package in this repository runs
// on: fabric devices schedule packet transmissions, propagation delays and
// processing completions as events, and the fabric manager's discovery
// algorithms advance by reacting to delivered packets. Simulated time is an
// integer number of picoseconds, which keeps link serialization times for
// multi-gigabit links exact and makes runs bit-for-bit reproducible.
package sim

import "fmt"

// Time is a point in simulated time, measured in picoseconds since the
// start of the simulation. Picosecond resolution keeps the serialization
// time of a single byte on a 2.0 Gbps ASI link (4000 ps) exactly
// representable, so event ordering never depends on floating-point
// rounding.
type Time int64

// Duration is a span of simulated time in picoseconds. It is a distinct
// type from Time so that the compiler rejects accidental point/span mixes
// beyond the arithmetic defined here.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Never is a sentinel Time later than any reachable simulation instant.
const Never Time = 1<<63 - 1

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Microseconds converts t to floating-point microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// String renders t with an adaptive unit, e.g. "1.500us" or "2.300ms".
func (t Time) String() string { return Duration(t).String() }

// Seconds converts d to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds converts d to floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Scale multiplies d by factor f, rounding to the nearest picosecond.
// Scaling by 1/f is how FM and device processing-speed factors from the
// paper's Figs. 8-9 are applied.
func (d Duration) Scale(f float64) Duration {
	if f == 1 {
		return d
	}
	v := float64(d) * f
	if v >= 0 {
		return Duration(v + 0.5)
	}
	return Duration(v - 0.5)
}

// String renders d with an adaptive unit.
func (d Duration) String() string {
	neg := ""
	if d < 0 {
		neg = "-"
		d = -d
	}
	switch {
	case d >= Second:
		return fmt.Sprintf("%s%.6fs", neg, d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%s%.3fms", neg, float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%s%.3fus", neg, float64(d)/float64(Microsecond))
	case d >= Nanosecond:
		return fmt.Sprintf("%s%.3fns", neg, float64(d)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%s%dps", neg, int64(d))
	}
}

// Micros builds a Duration from floating-point microseconds, rounding to
// the nearest picosecond.
func Micros(us float64) Duration {
	return Duration(us*float64(Microsecond) + 0.5)
}

// Nanos builds a Duration from floating-point nanoseconds, rounding to the
// nearest picosecond.
func Nanos(ns float64) Duration {
	return Duration(ns*float64(Nanosecond) + 0.5)
}

// Seconds builds a Duration from floating-point seconds.
func Seconds(s float64) Duration {
	return Duration(s*float64(Second) + 0.5)
}
