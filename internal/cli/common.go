package cli

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiment"
)

// Common is the typed parser for the flag surface the long-running and
// sweep tools share (-regions, -workers, -json, -config). Each tool
// registers only the subset it supports on its FlagSet, parses, then
// calls Validate — one definition of each flag's meaning, defaults and
// error wording instead of three drifting copies across asibench,
// asichaos and asifmd.
type Common struct {
	// Regions selects the region-sharded parallel simulation path
	// (0 or 1 = sequential).
	Regions int
	// Workers sizes the tool's worker pool (0 = GOMAXPROCS).
	Workers int
	// JSON switches stdout to one machine-readable document.
	JSON bool
	// ConfigPath names a JSON daemon-config file ("" = defaults).
	ConfigPath string
}

// RegisterRegions adds the -regions flag.
func (c *Common) RegisterRegions(fs *flag.FlagSet) {
	fs.IntVar(&c.Regions, "regions", 0,
		"region-sharded parallel simulation regions (0 or 1 = sequential)")
}

// RegisterWorkers adds the -workers flag.
func (c *Common) RegisterWorkers(fs *flag.FlagSet) {
	fs.IntVar(&c.Workers, "workers", 0,
		"worker pool size (0 = GOMAXPROCS); output is identical at any setting")
}

// RegisterJSON adds the -json flag.
func (c *Common) RegisterJSON(fs *flag.FlagSet) {
	fs.BoolVar(&c.JSON, "json", false,
		"emit one machine-readable JSON document on stdout")
}

// RegisterConfig adds the -config flag.
func (c *Common) RegisterConfig(fs *flag.FlagSet) {
	fs.StringVar(&c.ConfigPath, "config", "",
		"JSON daemon-config file (unset fields inherit the documented defaults)")
}

// Validate checks the parsed values; errors name the valid range.
func (c *Common) Validate() error {
	if c.Regions < 0 {
		return fmt.Errorf("bad -regions %d (valid: 0 or 1 for sequential, or a region count >= 2)", c.Regions)
	}
	if c.Workers < 0 {
		return fmt.Errorf("bad -workers %d (valid: 0 for GOMAXPROCS, or a positive pool size)", c.Workers)
	}
	return nil
}

// LoadDaemonConfig resolves -config: the strictly-decoded, validated
// file when one was named, the documented defaults otherwise.
func (c *Common) LoadDaemonConfig() (experiment.DaemonConfig, error) {
	if c.ConfigPath == "" {
		return experiment.DefaultDaemonConfig(), nil
	}
	f, err := os.Open(c.ConfigPath)
	if err != nil {
		return experiment.DaemonConfig{}, err
	}
	defer f.Close()
	dc, err := experiment.DecodeDaemonConfig(f)
	if err != nil {
		return experiment.DaemonConfig{}, fmt.Errorf("%s: %w", c.ConfigPath, err)
	}
	return dc, nil
}
