package cli

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/sim"
)

func TestAlgorithm(t *testing.T) {
	cases := map[string]core.Kind{
		"serial-packet": core.SerialPacket,
		"SP":            core.SerialPacket,
		"serial-device": core.SerialDevice,
		"sd":            core.SerialDevice,
		"parallel":      core.Parallel,
		"p":             core.Parallel,
		"Partial":       core.Partial,
	}
	for in, want := range cases {
		got, err := Algorithm(in)
		if err != nil || got != want {
			t.Errorf("Algorithm(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := Algorithm("quantum"); err == nil {
		t.Error("bad algorithm accepted")
	} else if !strings.Contains(err.Error(), "serial-packet") {
		t.Errorf("error %q does not name valid values", err)
	}
}

func TestChange(t *testing.T) {
	cases := map[string]experiment.Change{
		"none": experiment.NoChange, "remove": experiment.RemoveSwitch, "Add": experiment.AddSwitch,
	}
	for in, want := range cases {
		if got, err := Change(in); err != nil || got != want {
			t.Errorf("Change(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := Change("explode"); err == nil {
		t.Error("bad change accepted")
	} else if !strings.Contains(err.Error(), "remove") {
		t.Errorf("error %q does not name valid values", err)
	}
}

func TestTopology(t *testing.T) {
	if got, err := Topology("3x3 mesh"); err != nil || got != "3x3 mesh" {
		t.Errorf("Topology = %q, %v", got, err)
	}
	if _, err := Topology("5d hypercube"); err == nil {
		t.Error("bad topology accepted")
	} else if !strings.Contains(err.Error(), "3x3 mesh") {
		t.Errorf("error %q does not name valid values", err)
	}
}

func TestFlap(t *testing.T) {
	f, err := Flap("3,50,100")
	if err != nil {
		t.Fatal(err)
	}
	if f.Link != 3 || f.At != sim.Time(sim.Micros(50)) || f.Duration != sim.Micros(100) {
		t.Errorf("Flap = %+v", f)
	}
	if _, err := Flap("nope"); err == nil {
		t.Error("bad flap accepted")
	}
}
