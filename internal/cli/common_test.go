package cli

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func parseCommon(t *testing.T, args ...string) (*Common, error) {
	t.Helper()
	var c Common
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	c.RegisterRegions(fs)
	c.RegisterWorkers(fs)
	c.RegisterJSON(fs)
	c.RegisterConfig(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return &c, c.Validate()
}

func TestCommonParsesSharedFlags(t *testing.T) {
	c, err := parseCommon(t, "-regions", "4", "-workers", "2", "-json", "-config", "x.json")
	if err != nil {
		t.Fatal(err)
	}
	if c.Regions != 4 || c.Workers != 2 || !c.JSON || c.ConfigPath != "x.json" {
		t.Errorf("parsed %+v", c)
	}
	if c, err := parseCommon(t); err != nil || c.Regions != 0 || c.Workers != 0 || c.JSON {
		t.Errorf("defaults: %+v, %v", c, err)
	}
}

func TestCommonValidateNamesValidValues(t *testing.T) {
	if _, err := parseCommon(t, "-regions", "-2"); err == nil {
		t.Error("negative regions accepted")
	} else if !strings.Contains(err.Error(), "sequential") {
		t.Errorf("regions error %q does not explain valid values", err)
	}
	if _, err := parseCommon(t, "-workers", "-1"); err == nil {
		t.Error("negative workers accepted")
	} else if !strings.Contains(err.Error(), "GOMAXPROCS") {
		t.Errorf("workers error %q does not explain valid values", err)
	}
}

func TestCommonLoadDaemonConfig(t *testing.T) {
	c, err := parseCommon(t)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := c.LoadDaemonConfig()
	if err != nil {
		t.Fatal(err)
	}
	if dc.Topology == "" || dc.Listen == "" {
		t.Errorf("defaults not loaded: %+v", dc)
	}

	path := filepath.Join(t.TempDir(), "daemon.json")
	if err := os.WriteFile(path, []byte(`{"topology":"4x4 mesh","churn_ops":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c.ConfigPath = path
	dc, err = c.LoadDaemonConfig()
	if err != nil {
		t.Fatal(err)
	}
	if dc.Topology != "4x4 mesh" || dc.ChurnOps != 2 {
		t.Errorf("file not applied: %+v", dc)
	}

	if err := os.WriteFile(path, []byte(`{"topology":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadDaemonConfig(); err == nil {
		t.Error("invalid config file accepted")
	} else if !strings.Contains(err.Error(), path) {
		t.Errorf("error %q does not name the file", err)
	}
	c.ConfigPath = filepath.Join(t.TempDir(), "missing.json")
	if _, err := c.LoadDaemonConfig(); err == nil {
		t.Error("missing config file accepted")
	}
}
