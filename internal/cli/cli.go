// Package cli holds the flag-value parsers shared by the command-line
// tools (asidisc, asibench, asitopo). Each parser maps the stringly-typed
// flag surface onto the typed simulation API and, on failure, returns an
// error that names every valid value — the duplicated ad-hoc switches the
// tools used to carry drifted out of sync with each other.
package cli

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
)

// AlgorithmNames returns the canonical algorithm spellings for help text
// (the core.Kind slugs of every algorithm a standalone tool can run).
func AlgorithmNames() []string {
	return []string{
		core.SerialPacket.Slug(), core.SerialDevice.Slug(),
		core.Parallel.Slug(), core.Partial.Slug(),
	}
}

// Algorithm parses a discovery-algorithm name (aliases: sp, sd, p).
// Distributed is rejected: it needs a multi-FM team the single-manager
// tools cannot assemble.
func Algorithm(s string) (core.Kind, error) {
	want := strings.ToLower(s)
	switch want {
	case "sp":
		return core.SerialPacket, nil
	case "sd":
		return core.SerialDevice, nil
	case "p":
		return core.Parallel, nil
	}
	if k, ok := core.KindBySlug(want); ok && k != core.Distributed {
		return k, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q (valid: %s)", s, strings.Join(AlgorithmNames(), ", "))
}

// ChangeNames returns the topological-change spellings for help text.
func ChangeNames() []string { return []string{"none", "remove", "add"} }

// Change parses a topological-change name.
func Change(s string) (experiment.Change, error) {
	switch strings.ToLower(s) {
	case "none":
		return experiment.NoChange, nil
	case "remove":
		return experiment.RemoveSwitch, nil
	case "add":
		return experiment.AddSwitch, nil
	default:
		return 0, fmt.Errorf("unknown change %q (valid: %s)", s, strings.Join(ChangeNames(), ", "))
	}
}

// Topology validates a Table 1 topology name and returns it unchanged.
func Topology(s string) (string, error) {
	if _, err := topo.ByName(s); err != nil {
		return "", fmt.Errorf("unknown topology %q (valid: %s)", s, strings.Join(topo.Names(), ", "))
	}
	return s, nil
}

// Flap parses "link,at_us,dur_us" into a scheduled link flap.
func Flap(s string) (fabric.Flap, error) {
	var link int
	var atUS, durUS float64
	if _, err := fmt.Sscanf(s, "%d,%g,%g", &link, &atUS, &durUS); err != nil {
		return fabric.Flap{}, fmt.Errorf("bad flap %q (want link,at_us,dur_us): %v", s, err)
	}
	return fabric.Flap{
		Link:     link,
		At:       sim.Time(sim.Micros(atUS)),
		Duration: sim.Micros(durUS),
	}, nil
}
