// Package cli holds the flag-value parsers shared by the command-line
// tools (asidisc, asibench, asitopo). Each parser maps the stringly-typed
// flag surface onto the typed simulation API and, on failure, returns an
// error that names every valid value — the duplicated ad-hoc switches the
// tools used to carry drifted out of sync with each other.
package cli

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
)

// algNames maps every accepted spelling to its algorithm, long names
// first so help text lists them canonically.
var algNames = []struct {
	name string
	kind core.Kind
}{
	{"serial-packet", core.SerialPacket},
	{"serial-device", core.SerialDevice},
	{"parallel", core.Parallel},
	{"partial", core.Partial},
	{"sp", core.SerialPacket},
	{"sd", core.SerialDevice},
	{"p", core.Parallel},
}

// AlgorithmNames returns the canonical algorithm spellings for help text.
func AlgorithmNames() []string {
	return []string{"serial-packet", "serial-device", "parallel", "partial"}
}

// Algorithm parses a discovery-algorithm name (aliases: sp, sd, p).
func Algorithm(s string) (core.Kind, error) {
	want := strings.ToLower(s)
	for _, a := range algNames {
		if a.name == want {
			return a.kind, nil
		}
	}
	return 0, fmt.Errorf("unknown algorithm %q (valid: %s)", s, strings.Join(AlgorithmNames(), ", "))
}

// ChangeNames returns the topological-change spellings for help text.
func ChangeNames() []string { return []string{"none", "remove", "add"} }

// Change parses a topological-change name.
func Change(s string) (experiment.Change, error) {
	switch strings.ToLower(s) {
	case "none":
		return experiment.NoChange, nil
	case "remove":
		return experiment.RemoveSwitch, nil
	case "add":
		return experiment.AddSwitch, nil
	default:
		return 0, fmt.Errorf("unknown change %q (valid: %s)", s, strings.Join(ChangeNames(), ", "))
	}
}

// Topology validates a Table 1 topology name and returns it unchanged.
func Topology(s string) (string, error) {
	if _, err := topo.ByName(s); err != nil {
		return "", fmt.Errorf("unknown topology %q (valid: %s)", s, strings.Join(topo.Names(), ", "))
	}
	return s, nil
}

// Flap parses "link,at_us,dur_us" into a scheduled link flap.
func Flap(s string) (fabric.Flap, error) {
	var link int
	var atUS, durUS float64
	if _, err := fmt.Sscanf(s, "%d,%g,%g", &link, &atUS, &durUS); err != nil {
		return fabric.Flap{}, fmt.Errorf("bad flap %q (want link,at_us,dur_us): %v", s, err)
	}
	return fabric.Flap{
		Link:     link,
		At:       sim.Time(sim.Micros(atUS)),
		Duration: sim.Micros(durUS),
	}, nil
}
