package fabric

import (
	"testing"
	"testing/quick"

	"repro/internal/asi"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Packet conservation: after the event queue drains, every application
// packet the traffic generator injected was either delivered to an
// endpoint or accounted as a drop — the fabric never loses packets
// silently, under any topology, credit depth, or load.
func TestPacketConservationProperty(t *testing.T) {
	f := func(seed uint64, credits uint8, gapUS uint8, sizeSel uint8) bool {
		rng := sim.NewRNG(seed)
		tp := topo.Random(int(seed%8)+3, int(seed%10), rng.Split())
		e := sim.NewEngine()
		cfg := Config{CreditsPerVC: int(credits%8) + 1}
		fab, err := New(e, tp, cfg, rng.Split())
		if err != nil {
			return false
		}
		gen := NewTrafficGen(fab, rng.Split(), sim.Duration(int(gapUS%40)+2)*sim.Microsecond,
			[]int{64, 256, 1024}[sizeSel%3])
		gen.Start()
		e.RunUntil(sim.Time(1 * sim.Millisecond))
		gen.Stop()
		e.Run()

		var delivered uint64
		for _, d := range fab.Devices() {
			if d.Type == asi.DeviceEndpoint {
				delivered += d.RxPackets
			}
		}
		var dropped uint64
		for _, n := range fab.Counters().Drops {
			dropped += n
		}
		return delivered+dropped == gen.Injected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Byte conservation under hot removal: packets in flight toward a dead
// device are dropped and counted, never stranded in a queue forever.
func TestConservationAcrossRemoval(t *testing.T) {
	rng := sim.NewRNG(77)
	tp := topo.Torus(4, 4)
	e := sim.NewEngine()
	fab, err := New(e, tp, Config{}, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	gen := NewTrafficGen(fab, rng.Split(), 5*sim.Microsecond, 512)
	gen.Start()
	e.RunUntil(sim.Time(500 * sim.Microsecond))
	if err := fab.SetDeviceDown(5, true); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(sim.Time(1 * sim.Millisecond))
	gen.Stop()
	e.Run()

	var delivered uint64
	for _, d := range fab.Devices() {
		if d.Type == asi.DeviceEndpoint {
			delivered += d.RxPackets
		}
	}
	var dropped uint64
	for _, n := range fab.Counters().Drops {
		dropped += n
	}
	// The dead switch itself consumed any packet that had fully arrived
	// before it died; those count as its RxPackets.
	delivered += fab.Device(5).RxPackets
	if delivered+dropped != gen.Injected {
		t.Errorf("injected %d != delivered %d + dropped %d",
			gen.Injected, delivered, dropped)
	}
	if dropped == 0 {
		t.Error("expected some drops toward the removed switch")
	}
}
