package fabric

import (
	"errors"
	"testing"

	"repro/internal/asi"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/topo"
)

// TestHotplugLifecycleErrors drives SetDeviceDown/SetDeviceUp through
// op sequences and checks the typed sentinel errors: redundant
// transitions must be distinguishable (errors.Is) from real failures,
// and the Alive accessor must track the state exactly.
func TestHotplugLifecycleErrors(t *testing.T) {
	const victim = topo.NodeID(4) // centre switch of the 3x3 mesh
	type op struct {
		down    bool
		wantErr error // nil = must succeed
	}
	cases := []struct {
		name string
		ops  []op
	}{
		{"down then down", []op{
			{down: true},
			{down: true, wantErr: ErrAlreadyDown},
		}},
		{"up while up", []op{
			{down: false, wantErr: ErrAlreadyUp},
		}},
		{"full cycle twice", []op{
			{down: true},
			{down: false},
			{down: true},
			{down: false},
		}},
		{"double up after cycle", []op{
			{down: true},
			{down: false},
			{down: false, wantErr: ErrAlreadyUp},
		}},
		{"recover after misuse", []op{
			{down: true},
			{down: true, wantErr: ErrAlreadyDown},
			{down: false},
			{down: false, wantErr: ErrAlreadyUp},
			{down: true},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, f := testFabric(t, topo.Mesh(3, 3))
			alive := true
			for i, o := range tc.ops {
				var err error
				if o.down {
					err = f.SetDeviceDown(victim, true)
				} else {
					err = f.SetDeviceUp(victim, true)
				}
				if o.wantErr == nil {
					if err != nil {
						t.Fatalf("op %d: %v", i, err)
					}
					alive = !o.down
				} else if !errors.Is(err, o.wantErr) {
					t.Fatalf("op %d: err = %v, want %v", i, err, o.wantErr)
				}
				if f.Alive(victim) != alive {
					t.Fatalf("op %d: Alive = %v, want %v", i, f.Alive(victim), alive)
				}
			}
		})
	}
}

// TestHotplugPI5Suppression table-drives the quiet flag: loud
// transitions deliver PI-5 reports over the programmed event routes,
// quiet ones deliver nothing at all.
func TestHotplugPI5Suppression(t *testing.T) {
	const victim = topo.NodeID(4)
	cases := []struct {
		name     string
		quiet    bool
		code     asi.PI5EventCode
		minCount int
	}{
		{"loud removal reports", false, asi.PI5PortDown, 1},
		{"quiet removal silent", true, asi.PI5PortDown, 0},
		{"loud addition reports", false, asi.PI5PortUp, 1},
		{"quiet addition silent", true, asi.PI5PortUp, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, f := testFabric(t, topo.Mesh(3, 3))
			ep := firstEndpoint(f)
			got := attachCapture(e, ep)
			programEventRoutes(t, f, ep)
			if tc.code == asi.PI5PortUp {
				// Prepare: the device must be down to come up.
				if err := f.SetDeviceDown(victim, true); err != nil {
					t.Fatal(err)
				}
				if err := f.SetDeviceUp(victim, tc.quiet); err != nil {
					t.Fatal(err)
				}
			} else if err := f.SetDeviceDown(victim, tc.quiet); err != nil {
				t.Fatal(err)
			}
			e.Run()
			count := 0
			for _, r := range *got {
				if ev, ok := r.pkt.Payload.(asi.PI5); ok && ev.Code == tc.code {
					count++
				}
			}
			if tc.quiet && count != 0 {
				t.Errorf("quiet transition delivered %d PI-5 reports", count)
			}
			if !tc.quiet && count < tc.minCount {
				t.Errorf("loud transition delivered %d PI-5 reports, want >= %d", count, tc.minCount)
			}
			if delivered := f.Counters().Delivered[asi.PI5EventReporting]; int(delivered) != count {
				t.Errorf("fabric counted %d PI-5 deliveries, capture saw %d", delivered, count)
			}
		})
	}
}

// TestInFlightPacketsDieAtDeadDevice removes a switch at precisely
// computed instants while a PI-4 read addressed to it is in progress.
// Whether the packet is on the final wire, inside the cut-through
// routing latency, or already being serviced (so only the completion is
// pending), the traffic must die at the dead device — DropDeadDevice —
// and no completion may reach the requester.
func TestInFlightPacketsDieAtDeadDevice(t *testing.T) {
	// ep(0,0) -> sw(0,0) -> sw(0,1) on the 3x3 mesh, as in
	// TestPI4ReadAcrossMultipleHops.
	toMid := route.Path{
		{Ports: 16, In: topo.PortHost, Out: topo.PortEast},
	}
	const victim = topo.NodeID(1) // sw(0,1)
	cases := []struct {
		name string
		// killAt computes the removal time from the request's arrival
		// time at the victim.
		killAt func(f *Fabric, arrive sim.Duration) sim.Duration
		// wantDrop is the expected DropDeadDevice count: a packet still
		// travelling is dropped and accounted; a request already inside
		// the config-space server just never completes (the requester
		// sees a timeout), so nothing is counted.
		wantDrop uint64
	}{
		{"dies on the wire", func(f *Fabric, arrive sim.Duration) sim.Duration {
			return arrive - f.cfg.Propagation/2
		}, 1},
		{"dies in cut-through routing", func(f *Fabric, arrive sim.Duration) sim.Duration {
			return arrive + f.cfg.SwitchLatency/2
		}, 1},
		{"completion dies mid-service", func(f *Fabric, arrive sim.Duration) sim.Duration {
			return arrive + f.cfg.SwitchLatency + f.deviceService()/2
		}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, f := testFabric(t, topo.Mesh(3, 3))
			ep := firstEndpoint(f)
			got := attachCapture(e, ep)

			pkt := readReq(t, toMid, 9, asi.GeneralInfoOffset, asi.GeneralInfoBlocks)
			// Two serialize+propagate hops plus one routing decision put
			// the request at the victim's input.
			hop := f.serialization(pkt.WireSize()) + f.cfg.Propagation
			arrive := hop + f.cfg.SwitchLatency + hop
			kill := tc.killAt(f, arrive)

			ep.Inject(pkt)
			e.At(sim.Time(0).Add(kill), func(*sim.Engine) {
				if err := f.SetDeviceDown(victim, true); err != nil {
					t.Errorf("SetDeviceDown: %v", err)
				}
			})
			e.Run()

			if len(*got) != 0 {
				t.Errorf("received %d completions for a request that died at a dead device", len(*got))
			}
			if n := f.Counters().Drops[DropDeadDevice]; n != tc.wantDrop {
				t.Errorf("DropDeadDevice = %d, want %d", n, tc.wantDrop)
			}
		})
	}
}
