package fabric

import (
	"repro/internal/asi"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/topo"
)

// TrafficGen injects background application traffic between random
// endpoint pairs. The paper's headline results are measured without
// application traffic; the generator exists to validate the claim that
// such traffic "scarcely influences the discovery time" because management
// packets own the highest-priority virtual channel (section 4.1).
type TrafficGen struct {
	f   *Fabric
	rng *sim.RNG
	// MeanGap is the average inter-injection gap per source endpoint.
	MeanGap sim.Duration
	// PacketBytes is the application payload size.
	PacketBytes int
	// UseTables makes sources route via their FM-programmed path tables
	// instead of the generator's own BFS — the production data path
	// once the FM has distributed endpoint paths. Destinations absent
	// from a source's table are skipped (counted in NoRoute).
	UseTables bool

	paths   map[[2]topo.NodeID]route.Path
	eps     []topo.NodeID
	running bool
	// Injected counts generated packets; NoRoute counts skipped
	// injections for lack of a table entry.
	Injected uint64
	NoRoute  uint64
}

// NewTrafficGen prepares a generator over all alive endpoints, with
// shortest paths precomputed from the static topology.
func NewTrafficGen(f *Fabric, rng *sim.RNG, meanGap sim.Duration, packetBytes int) *TrafficGen {
	g := &TrafficGen{
		f: f, rng: rng, MeanGap: meanGap, PacketBytes: packetBytes,
		paths: make(map[[2]topo.NodeID]route.Path),
		eps:   f.Topo.Endpoints(),
	}
	return g
}

// Start begins injection on every endpoint and keeps going until Stop.
func (g *TrafficGen) Start() {
	if g.f.group != nil {
		// The generator schedules on one engine and draws one RNG stream;
		// neither survives region sharding.
		panic("fabric: traffic generation is unsupported with parallel regions")
	}
	g.running = true
	for _, ep := range g.eps {
		g.scheduleNext(ep)
	}
}

// Stop halts further injections; queued packets drain normally.
func (g *TrafficGen) Stop() { g.running = false }

func (g *TrafficGen) scheduleNext(src topo.NodeID) {
	if !g.running {
		return
	}
	gap := g.rng.Jitter(g.MeanGap, 0.5)
	g.f.Engine.After(gap, func(*sim.Engine) {
		g.injectOne(src)
		g.scheduleNext(src)
	})
}

func (g *TrafficGen) injectOne(src topo.NodeID) {
	if !g.running {
		return
	}
	dev := g.f.Device(src)
	if !dev.Alive() || !dev.PortActive(0) {
		return
	}
	dst := g.eps[g.rng.Intn(len(g.eps))]
	if dst == src || !g.f.Device(dst).Alive() {
		return
	}
	var hdr asi.RouteHeader
	if g.UseTables {
		pool, ptr, ok := dev.LookupPath(g.f.Device(dst).DSN)
		if !ok {
			g.NoRoute++
			return
		}
		hdr = asi.RouteHeader{TurnPool: pool, TurnPointer: ptr, PI: asi.PIApplication}
	} else {
		p, ok := g.path(src, dst)
		if !ok {
			return
		}
		var err error
		hdr, err = route.Header(p, asi.PIApplication)
		if err != nil {
			return
		}
	}
	hdr.TC = 0 // bulk traffic class, lowest-priority VC
	dev.Inject(&asi.Packet{Header: hdr, Payload: asi.AppData{Bytes: g.PacketBytes}})
	g.Injected++
}

// path returns (and caches) a shortest source-route between endpoints,
// computed by BFS over the static topology.
func (g *TrafficGen) path(src, dst topo.NodeID) (route.Path, bool) {
	key := [2]topo.NodeID{src, dst}
	if p, ok := g.paths[key]; ok {
		return p, p != nil
	}
	p := bfsPath(g.f.Topo, src, dst)
	g.paths[key] = p
	return p, p != nil
}

// bfsPath finds a shortest path from endpoint src to node dst and encodes
// it as switch hops. Returns nil if unreachable.
func bfsPath(t *topo.Topology, src, dst topo.NodeID) route.Path {
	type pred struct {
		from    topo.NodeID
		outPort int // egress port at from
		inPort  int // ingress port at the reached node
	}
	prev := map[topo.NodeID]pred{}
	visited := map[topo.NodeID]bool{src: true}
	queue := []topo.NodeID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == dst {
			break
		}
		n := t.Nodes[cur]
		for p := 0; p < n.Ports; p++ {
			peer, peerPort, ok := t.Peer(cur, p)
			if !ok || visited[peer] {
				continue
			}
			visited[peer] = true
			prev[peer] = pred{from: cur, outPort: p, inPort: peerPort}
			queue = append(queue, peer)
		}
	}
	if !visited[dst] {
		return nil
	}
	// Walk back from dst collecting switch traversals: each predecessor
	// that is a switch was entered at its own recorded inPort and left
	// through the outPort that led onward.
	var hops route.Path
	at := dst
	for at != src {
		step := prev[at]
		from := step.from
		if from != src && t.Nodes[from].Type == asi.DeviceSwitch {
			hops = append(hops, route.Hop{
				Ports: t.Nodes[from].Ports,
				In:    prev[from].inPort,
				Out:   step.outPort,
			})
		}
		at = from
	}
	// hops were collected destination-first; reverse in place.
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	return hops
}
