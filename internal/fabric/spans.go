package fabric

import (
	"repro/internal/asi"
	"repro/internal/sim"
	"repro/internal/span"
)

// Span instrumentation for the fabric. The FM stamps each PI-4 request's
// span ID into the packet (asi.Packet.Span); devices copy it into the
// completion, so both directions of a round trip attribute their per-hop
// spans — link queueing, wire traversal, device queueing and servicing,
// credit stalls, fault delays and drops — to the owning request. Every
// hook is behind a single `f.spans != nil` guard (and most additionally
// skip untagged packets), so disabled tracing costs one nil check and
// zero allocations on the forwarding hot path.

// SetSpanTracer attaches a causal span tracer; nil detaches it. Attach
// the same tracer the Manager was built with (core.Options.Spans) so
// fabric spans land under the FM's request spans.
func (f *Fabric) SetSpanTracer(t *span.Tracer) {
	if t != nil && f.group != nil {
		panic("fabric: span tracing is unsupported with parallel regions")
	}
	f.spans = t
	if t != nil {
		f.linkQueued = make(map[*asi.Packet]sim.Time)
	} else {
		f.linkQueued = nil
	}
}

// spanComplete records one bounded fabric span under a packet's request.
func (f *Fabric) spanComplete(kind span.Kind, pkt *asi.Packet, start, end sim.Time, d *Device, port int) {
	id := f.spans.Complete(kind, span.ID(pkt.Span), start, end, span.StatusOK)
	if s := f.spans.Span(id); s != nil {
		s.Device = d.Label
		s.Port = port
	}
}

// spanInstant records a zero-length marker under a packet's request.
func (f *Fabric) spanInstant(kind span.Kind, pkt *asi.Packet, d *Device, port int, name string) {
	id := f.spans.Instant(kind, span.ID(pkt.Span), f.Engine.Now())
	if s := f.spans.Span(id); s != nil {
		s.Name = name
		if d != nil {
			s.Device = d.Label
		}
		s.Port = port
	}
}

// spanDrop marks a traced packet as discarded. Any pending link-queue
// stamp dies with the packet.
func (f *Fabric) spanDrop(r DropReason, d *Device, port int, pkt *asi.Packet) {
	if f.spans == nil || pkt == nil || pkt.Span == 0 {
		return
	}
	delete(f.linkQueued, pkt)
	f.spanInstant(span.KindDrop, pkt, d, port, r.String())
}

// spanQueueStamp remembers when a traced packet entered a VC queue, so
// the pop side can emit a link-queue span for the time it waited.
func (f *Fabric) spanQueueStamp(pkt *asi.Packet) {
	if f.spans == nil || pkt.Span == 0 {
		return
	}
	f.linkQueued[pkt] = f.Engine.Now()
}

// spanWire records the transmit-side spans of one link traversal: the
// queue wait (if any), the wire span covering serialization plus
// propagation plus any injected delay, and a fault-delay marker when the
// plan delivered the packet late.
func (f *Fabric) spanWire(pkt *asi.Packet, d *Device, port int, arrive, extra sim.Duration) {
	if f.spans == nil || pkt.Span == 0 {
		return
	}
	now := f.Engine.Now()
	if q, ok := f.linkQueued[pkt]; ok {
		delete(f.linkQueued, pkt)
		if now > q {
			f.spanComplete(span.KindLinkQueue, pkt, q, now, d, port)
		}
	}
	f.spanComplete(span.KindWire, pkt, now, now.Add(arrive), d, port)
	if extra > 0 {
		f.spanInstant(span.KindFaultDelay, pkt, d, port, "delayed")
	}
}

// spanFlushQueue marks every traced packet still waiting in a VC queue
// as dropped — a link going down discards its queues, and the spans must
// say so rather than dangle.
func (f *Fabric) spanFlushQueue(q *sim.Ring[*asi.Packet], d *Device, port int) {
	if f.spans == nil {
		return
	}
	for i := 0; i < q.Len(); i++ {
		f.spanDrop(DropInactivePort, d, port, q.At(i))
	}
}
