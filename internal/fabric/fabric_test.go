package fabric

import (
	"testing"

	"repro/internal/asi"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/topo"
)

// testFabric builds a fabric over the given topology with default config.
func testFabric(t *testing.T, tp *topo.Topology) (*sim.Engine, *Fabric) {
	t.Helper()
	e := sim.NewEngine()
	f, err := New(e, tp, Config{}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return e, f
}

// firstEndpoint returns the lowest-ID endpoint device.
func firstEndpoint(f *Fabric) *Device {
	for _, d := range f.Devices() {
		if d.Type == asi.DeviceEndpoint {
			return d
		}
	}
	panic("no endpoint")
}

type rx struct {
	at   sim.Time
	port int
	pkt  *asi.Packet
}

// attachCapture collects every management packet delivered to ep.
func attachCapture(e *sim.Engine, ep *Device) *[]rx {
	var got []rx
	ep.SetHandler(HandlerFunc(func(port int, pkt *asi.Packet) {
		got = append(got, rx{e.Now(), port, pkt})
	}))
	return &got
}

// readReq builds a PI-4 read request packet along the given path.
func readReq(t *testing.T, p route.Path, tag uint32, offset uint16, count uint8) *asi.Packet {
	t.Helper()
	hdr, err := route.Header(p, asi.PI4DeviceManagement)
	if err != nil {
		t.Fatal(err)
	}
	return &asi.Packet{Header: hdr, Payload: asi.PI4{
		Op: asi.PI4ReadRequest, Tag: tag, Offset: offset, Count: count,
	}}
}

func TestPI4ReadAdjacentSwitch(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	ep := firstEndpoint(f)
	got := attachCapture(e, ep)

	// The host switch is adjacent: an empty path delivers there.
	ep.Inject(readReq(t, nil, 7, asi.GeneralInfoOffset, asi.GeneralInfoBlocks))
	e.Run()

	if len(*got) != 1 {
		t.Fatalf("received %d packets, want 1", len(*got))
	}
	resp := (*got)[0].pkt.Payload.(asi.PI4)
	if resp.Op != asi.PI4ReadCompletionData || resp.Tag != 7 {
		t.Fatalf("unexpected completion: %+v", resp)
	}
	g, err := asi.ParseGeneralInfo(resp.Data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Type != asi.DeviceSwitch || g.Ports != topo.GridPorts {
		t.Errorf("general info: %+v", g)
	}
	if int(resp.ArrivalPort) != topo.PortHost {
		t.Errorf("ArrivalPort = %d, want %d", resp.ArrivalPort, topo.PortHost)
	}
	// Timing sanity: request serialization + propagation + switch
	// latency + device service + response, so strictly more than the
	// 2us service time and well under 10us.
	at := (*got)[0].at
	if at < sim.Time(2*sim.Microsecond) || at > sim.Time(10*sim.Microsecond) {
		t.Errorf("completion arrived at %v", at)
	}
}

func TestPI4ReadAcrossMultipleHops(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	ep := firstEndpoint(f) // ep(0,0), node 9, host switch sw(0,0)=node 0
	got := attachCapture(e, ep)

	// Path to sw(0,2): enter sw(0,0) at host port, go east; enter
	// sw(0,1) at west, go east; deliver at sw(0,2).
	p := route.Path{
		{Ports: 16, In: topo.PortHost, Out: topo.PortEast},
		{Ports: 16, In: topo.PortWest, Out: topo.PortEast},
	}
	ep.Inject(readReq(t, p, 1, asi.GeneralInfoOffset, asi.GeneralInfoBlocks))
	e.Run()

	if len(*got) != 1 {
		t.Fatalf("received %d packets, want 1", len(*got))
	}
	resp := (*got)[0].pkt.Payload.(asi.PI4)
	g, _ := asi.ParseGeneralInfo(resp.Data)
	sw02 := f.Device(topo.NodeID(2))
	if g.DSN != sw02.DSN {
		t.Errorf("read DSN %v, want %v (sw(0,2))", g.DSN, sw02.DSN)
	}
	if int(resp.ArrivalPort) != topo.PortWest {
		t.Errorf("ArrivalPort = %d, want %d", resp.ArrivalPort, topo.PortWest)
	}
}

func TestPI4ReadRemoteEndpoint(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	ep := firstEndpoint(f)
	got := attachCapture(e, ep)

	// Path to ep(0,1): through sw(0,0) east, then sw(0,1) to its host.
	p := route.Path{
		{Ports: 16, In: topo.PortHost, Out: topo.PortEast},
		{Ports: 16, In: topo.PortWest, Out: topo.PortHost},
	}
	ep.Inject(readReq(t, p, 2, asi.GeneralInfoOffset, asi.GeneralInfoBlocks))
	e.Run()

	if len(*got) != 1 {
		t.Fatalf("received %d packets, want 1", len(*got))
	}
	g, err := asi.ParseGeneralInfo((*got)[0].pkt.Payload.(asi.PI4).Data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Type != asi.DeviceEndpoint || g.Ports != 1 {
		t.Errorf("general info: %+v", g)
	}
}

func TestPI4ReadErrorCompletion(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	ep := firstEndpoint(f)
	got := attachCapture(e, ep)

	ep.Inject(readReq(t, nil, 3, 60000, 4)) // far beyond capability end
	e.Run()

	if len(*got) != 1 {
		t.Fatalf("received %d packets, want 1", len(*got))
	}
	resp := (*got)[0].pkt.Payload.(asi.PI4)
	if resp.Op != asi.PI4ReadCompletionError || resp.Tag != 3 {
		t.Errorf("expected error completion, got %+v", resp)
	}
}

func TestPI4WriteEventRouteAndEmitPI5(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	ep := firstEndpoint(f)
	got := attachCapture(e, ep)

	// Program the adjacent switch's event route: from sw(0,0), a packet
	// to ep(0,0) goes out the host port; the switch originates with
	// virtual ingress asi.SourceVirtualIngress.
	sw := f.Device(0)
	evPath := route.Path{{Ports: 16, In: asi.SourceVirtualIngress, Out: topo.PortHost}}
	pool, ptr, err := route.Encode(evPath)
	if err != nil {
		t.Fatal(err)
	}
	hdr, _ := route.Header(nil, asi.PI4DeviceManagement)
	ep.Inject(&asi.Packet{Header: hdr, Payload: asi.PI4{
		Op: asi.PI4WriteRequest, Tag: 5,
		Offset: asi.EventRouteOffset(16),
		Data:   asi.EncodeEventRoute(pool, ptr),
	}})
	e.Run()

	if len(*got) != 1 || (*got)[0].pkt.Payload.(asi.PI4).Op != asi.PI4WriteCompletion {
		t.Fatalf("write completion missing: %+v", got)
	}

	// Now the switch can report events.
	sw.EmitPI5(asi.PI5PortDown, 2)
	e.Run()
	if len(*got) != 2 {
		t.Fatalf("PI-5 not delivered: %d packets", len(*got))
	}
	ev := (*got)[1].pkt.Payload.(asi.PI5)
	if ev.Code != asi.PI5PortDown || ev.Port != 2 || ev.Reporter != sw.DSN {
		t.Errorf("PI-5 = %+v", ev)
	}
}

func TestEmitPI5WithoutRouteIsSilent(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	ep := firstEndpoint(f)
	got := attachCapture(e, ep)
	f.Device(0).EmitPI5(asi.PI5PortDown, 1)
	e.Run()
	if len(*got) != 0 {
		t.Errorf("PI-5 delivered without event route: %+v", got)
	}
}

// programEventRoutes writes a valid event route toward ep into every alive
// device, using BFS paths (test shortcut for what the FM does after
// discovery).
func programEventRoutes(t *testing.T, f *Fabric, ep *Device) {
	t.Helper()
	for _, d := range f.Devices() {
		if d == ep || !d.Alive() {
			continue
		}
		p := bfsPath(f.Topo, ep.ID, d.ID) // FM -> device
		if p == nil {
			continue
		}
		var evPath route.Path
		rev := route.Reverse(p)
		if d.Type == asi.DeviceSwitch {
			// The FM->device path ends with a hop whose egress faces
			// the device; the device's first hop when originating
			// retraces it from the virtual ingress.
			arrival := arrivalPortOf(f, ep.ID, d.ID)
			evPath = append(route.Path{{Ports: d.Ports(), In: asi.SourceVirtualIngress, Out: arrival}}, rev...)
		} else {
			evPath = rev
		}
		pool, ptr, err := route.Encode(evPath)
		if err != nil {
			t.Fatalf("%s: %v", d.Label, err)
		}
		if err := d.Config.Write(asi.EventRouteOffset(d.Ports()), asi.EncodeEventRoute(pool, ptr)); err != nil {
			t.Fatalf("%s: %v", d.Label, err)
		}
	}
}

// arrivalPortOf finds the port of dst on which packets from src arrive
// (last hop of the BFS path).
func arrivalPortOf(f *Fabric, src, dst topo.NodeID) int {
	// The BFS path's final hop egress lands on dst; find dst's port by
	// checking the peer of the last switch's egress.
	p := bfsPath(f.Topo, src, dst)
	if len(p) == 0 {
		// Adjacent to src endpoint: dst port is the peer of src port 0.
		_, port, _ := f.Topo.Peer(src, 0)
		return port
	}
	// Reconstruct: walk the path from src.
	node := src
	inPort := -1
	_ = inPort
	// First hop: src endpoint port 0 to first switch.
	peer, peerPort, _ := f.Topo.Peer(node, 0)
	node, inPort = peer, peerPort
	for _, h := range p {
		peer, peerPort, _ = f.Topo.Peer(node, h.Out)
		node, inPort = peer, peerPort
	}
	return inPort
}

func TestHotRemovalTriggersNeighbourPI5(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	ep := firstEndpoint(f)
	got := attachCapture(e, ep)
	programEventRoutes(t, f, ep)

	// Remove the centre switch sw(1,1), node 4. Five peers notice (four
	// switches and the stranded endpoint ep(1,1)), but ep(1,1)'s only
	// link just died and switch sw(2,1)'s BFS event route runs through
	// the removed switch, so exactly 3 reports reach the FM — a real
	// property of event routing after a failure, not a model artefact.
	if err := f.SetDeviceDown(4, false); err != nil {
		t.Fatal(err)
	}
	e.Run()

	var downs int
	for _, r := range *got {
		if ev, ok := r.pkt.Payload.(asi.PI5); ok && ev.Code == asi.PI5PortDown {
			downs++
		}
	}
	if downs != 3 {
		t.Errorf("received %d port-down events, want 3 (one route dies with the switch, one reporter is stranded)", downs)
	}

	// Restore: all five peers report, and every event route works again.
	*got = (*got)[:0]
	if err := f.SetDeviceUp(4, false); err != nil {
		t.Fatal(err)
	}
	e.Run()
	var ups int
	for _, r := range *got {
		if ev, ok := r.pkt.Payload.(asi.PI5); ok && ev.Code == asi.PI5PortUp {
			ups++
		}
	}
	if ups != 5 {
		t.Errorf("received %d port-up events, want 5", ups)
	}
}

func TestQuietRemovalEmitsNothing(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	ep := firstEndpoint(f)
	got := attachCapture(e, ep)
	programEventRoutes(t, f, ep)

	if err := f.SetDeviceDown(4, true); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if len(*got) != 0 {
		t.Errorf("quiet removal delivered %d packets", len(*got))
	}
	if err := f.SetDeviceDown(4, true); err == nil {
		t.Error("double removal accepted")
	}
	if err := f.SetDeviceUp(4, true); err != nil {
		t.Fatal(err)
	}
	if err := f.SetDeviceUp(4, true); err == nil {
		t.Error("double restore accepted")
	}
}

func TestAliveReachableAfterRemoval(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	ep := firstEndpoint(f)
	if got := f.AliveReachableFrom(ep.ID); got != 18 {
		t.Fatalf("initial reachable = %d, want 18", got)
	}
	// Removing a corner switch strands it and its endpoint.
	if err := f.SetDeviceDown(8, true); err != nil { // sw(2,2)
		t.Fatal(err)
	}
	e.Run()
	if got := f.AliveReachableFrom(ep.ID); got != 16 {
		t.Errorf("reachable after corner removal = %d, want 16", got)
	}
}

func TestPacketToDeadDeviceIsDropped(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	ep := firstEndpoint(f)
	got := attachCapture(e, ep)
	if err := f.SetDeviceDown(1, true); err != nil { // sw(0,1)
		t.Fatal(err)
	}
	p := route.Path{{Ports: 16, In: topo.PortHost, Out: topo.PortEast}}
	ep.Inject(readReq(t, p, 9, 0, 1))
	e.Run()
	if len(*got) != 0 {
		t.Errorf("completion from dead device: %+v", got)
	}
	c := f.Counters()
	if c.Drops[DropInactivePort]+c.Drops[DropDeadDevice] == 0 {
		t.Error("no drop recorded")
	}
}

func TestRouteErrorDrops(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	ep := firstEndpoint(f)
	// Header with 2 leftover bits: not enough for a 16-port switch turn.
	pkt := &asi.Packet{
		Header:  asi.RouteHeader{TurnPool: 3, TurnPointer: 2, PI: asi.PI4DeviceManagement, TC: asi.TCManagement},
		Payload: asi.PI4{Op: asi.PI4ReadRequest, Tag: 1, Count: 1},
	}
	ep.Inject(pkt)
	e.Run()
	if f.Counters().Drops[DropRouteError] != 1 {
		t.Errorf("route-error drops = %d, want 1", f.Counters().Drops[DropRouteError])
	}
}

func TestElectionFloodReachesAllEndpointsOnce(t *testing.T) {
	e, f := testFabric(t, topo.Torus(4, 4))
	ep := firstEndpoint(f)

	type hit struct{ n int }
	hits := make(map[topo.NodeID]*hit)
	for _, d := range f.Devices() {
		if d.Type != asi.DeviceEndpoint || d == ep {
			continue
		}
		d := d
		h := &hit{}
		hits[d.ID] = h
		d.SetHandler(HandlerFunc(func(port int, pkt *asi.Packet) {
			if _, ok := pkt.Payload.(asi.Election); ok {
				h.n++
			}
		}))
	}

	ep.Inject(&asi.Packet{
		Header:  asi.RouteHeader{PI: asi.PIElection, TC: asi.TCManagement},
		Payload: asi.Election{Priority: 3, Candidate: ep.DSN, TTL: 32, Sequence: 1},
	})
	e.Run()

	for id, h := range hits {
		if h.n != 1 {
			t.Errorf("endpoint %d received %d announcements, want exactly 1", id, h.n)
		}
	}
}

func TestElectionTTLBoundsFlood(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	ep := firstEndpoint(f) // at corner (0,0)
	reached := 0
	for _, d := range f.Devices() {
		if d.Type != asi.DeviceEndpoint || d == ep {
			continue
		}
		d.SetHandler(HandlerFunc(func(port int, pkt *asi.Packet) {
			if _, ok := pkt.Payload.(asi.Election); ok {
				reached++
			}
		}))
	}
	// TTL 2: first switch consumes one (reaching sw(0,0)=TTL1 at
	// neighbours), so only endpoints within 2 switch hops hear it.
	ep.Inject(&asi.Packet{
		Header:  asi.RouteHeader{PI: asi.PIElection, TC: asi.TCManagement},
		Payload: asi.Election{Priority: 1, Candidate: ep.DSN, TTL: 2, Sequence: 2},
	})
	e.Run()
	if reached == 0 || reached == 8 {
		t.Errorf("TTL-2 flood reached %d endpoints, expected a strict subset > 0", reached)
	}
}

func TestManagementPriorityOverBulkTraffic(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	ep := firstEndpoint(f)
	got := attachCapture(e, ep)

	// Saturate the ep->switch link with large bulk packets, then send a
	// management read. The management packet must not wait behind the
	// whole bulk queue.
	p := route.Path{
		{Ports: 16, In: topo.PortHost, Out: topo.PortEast},
		{Ports: 16, In: topo.PortWest, Out: topo.PortHost},
	}
	hdr, err := route.Header(p, asi.PIApplication)
	if err != nil {
		t.Fatal(err)
	}
	hdr.TC = 0
	const bulkBytes = 2000
	for i := 0; i < 50; i++ {
		ep.Inject(&asi.Packet{Header: hdr, Payload: asi.AppData{Bytes: bulkBytes}})
	}
	ep.Inject(readReq(t, nil, 11, asi.GeneralInfoOffset, asi.GeneralInfoBlocks))
	e.Run()

	if len(*got) != 1 {
		t.Fatalf("received %d management packets, want 1", len(*got))
	}
	// 50 bulk packets of ~2KB at 2Gbps are ~400us of serialization; the
	// management completion must arrive far sooner because VC2 wins
	// arbitration after at most one bulk packet's residual time.
	if at := (*got)[0].at; at > sim.Time(40*sim.Microsecond) {
		t.Errorf("management completion delayed to %v by bulk traffic", at)
	}
}

func TestCreditBackpressureDeliversEverything(t *testing.T) {
	e := sim.NewEngine()
	cfg := Config{CreditsPerVC: 2}
	f, err := New(e, topo.Mesh(3, 3), cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	ep := firstEndpoint(f)
	dst := f.Device(10) // ep(0,1)
	received := 0
	dst.SetHandler(HandlerFunc(func(port int, pkt *asi.Packet) {}))
	// Count deliveries at the raw counter level: AppData to an endpoint
	// is consumed silently, so use RxPackets.
	p := route.Path{
		{Ports: 16, In: topo.PortHost, Out: topo.PortEast},
		{Ports: 16, In: topo.PortWest, Out: topo.PortHost},
	}
	hdr, err := route.Header(p, asi.PIApplication)
	if err != nil {
		t.Fatal(err)
	}
	hdr.TC = 0
	const n = 200
	for i := 0; i < n; i++ {
		ep.Inject(&asi.Packet{Header: hdr, Payload: asi.AppData{Bytes: 256}})
	}
	e.Run()
	received = int(dst.RxPackets)
	if received != n {
		t.Errorf("delivered %d of %d packets under tight credits", received, n)
	}
	var drops uint64
	for _, d := range f.Counters().Drops {
		drops += d
	}
	if drops != 0 {
		t.Errorf("unexpected drops: %+v", f.Counters().Drops)
	}
}

func TestSerializationTiming(t *testing.T) {
	_, f := testFabric(t, topo.Mesh(3, 3))
	// 250 bytes at 2 Gbps = 1000 ns.
	if got := f.serialization(250); got != 1000*sim.Nanosecond {
		t.Errorf("serialization(250B) = %v, want 1us", got)
	}
}

func TestCountersAccumulate(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	ep := firstEndpoint(f)
	attachCapture(e, ep)
	ep.Inject(readReq(t, nil, 1, asi.GeneralInfoOffset, asi.GeneralInfoBlocks))
	e.Run()
	c := f.Counters()
	if c.TxPackets < 2 { // request + completion
		t.Errorf("TxPackets = %d", c.TxPackets)
	}
	if c.TxBytes == 0 {
		t.Error("TxBytes = 0")
	}
	if c.Delivered[asi.PI4DeviceManagement] < 2 {
		t.Errorf("Delivered[PI4] = %d", c.Delivered[asi.PI4DeviceManagement])
	}
}

func TestTrafficGenRuns(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	g := NewTrafficGen(f, sim.NewRNG(7), 10*sim.Microsecond, 512)
	g.Start()
	e.RunUntil(sim.Time(2 * sim.Millisecond))
	g.Stop()
	e.Run()
	if g.Injected == 0 {
		t.Fatal("traffic generator injected nothing")
	}
	if f.Counters().Drops[DropRouteError] != 0 {
		t.Errorf("traffic misrouted: %+v", f.Counters().Drops)
	}
	// All injected packets eventually arrive somewhere.
	var rx uint64
	for _, d := range f.Devices() {
		if d.Type == asi.DeviceEndpoint {
			rx += d.RxPackets
		}
	}
	if rx == 0 {
		t.Error("no application packets delivered")
	}
}

func TestBFSPathMatchesFabricRouting(t *testing.T) {
	e, f := testFabric(t, topo.Torus(4, 4))
	ep := firstEndpoint(f)
	// Route to every other endpoint via the computed path and verify the
	// right device answers (its DSN comes back in the read).
	for _, dstID := range f.Topo.Endpoints() {
		if dstID == ep.ID {
			continue
		}
		dst := f.Device(dstID)
		p := bfsPath(f.Topo, ep.ID, dstID)
		if p == nil {
			t.Fatalf("no path to %s", dst.Label)
		}
		var answer asi.DSN
		ep.SetHandler(HandlerFunc(func(port int, pkt *asi.Packet) {
			if p4, ok := pkt.Payload.(asi.PI4); ok && p4.Op == asi.PI4ReadCompletionData {
				if g, err := asi.ParseGeneralInfo(p4.Data); err == nil {
					answer = g.DSN
				}
			}
		}))
		ep.Inject(readReq(t, p, 1, asi.GeneralInfoOffset, asi.GeneralInfoBlocks))
		e.Run()
		if answer != dst.DSN {
			t.Errorf("path to %s answered by %v", dst.Label, answer)
		}
	}
}

func TestNewRejectsInvalidTopology(t *testing.T) {
	bad := topo.New("bad")
	bad.AddSwitch(4, "a")
	bad.AddSwitch(4, "b")
	if _, err := New(sim.NewEngine(), bad, Config{}, nil); err == nil {
		t.Error("disconnected topology accepted")
	}
}

func TestDeviceByDSNAndAccessors(t *testing.T) {
	_, f := testFabric(t, topo.Mesh(3, 3))
	d := f.Device(0)
	got, ok := f.DeviceByDSN(d.DSN)
	if !ok || got != d {
		t.Error("DeviceByDSN lookup failed")
	}
	if _, ok := f.DeviceByDSN(0); ok {
		t.Error("bogus DSN found")
	}
	if d.Ports() != topo.GridPorts {
		t.Errorf("Ports() = %d", d.Ports())
	}
	if !d.PortActive(topo.PortHost) {
		t.Error("host port inactive")
	}
	if d.PortActive(15) {
		t.Error("uncabled port active")
	}
	if d.PortActive(-1) || d.PortActive(99) {
		t.Error("out-of-range PortActive true")
	}
}

func TestRandomSwitchPicksSwitches(t *testing.T) {
	_, f := testFabric(t, topo.Mesh(3, 3))
	rng := sim.NewRNG(3)
	for i := 0; i < 50; i++ {
		id := f.RandomSwitch(rng)
		if f.Device(id).Type != asi.DeviceSwitch {
			t.Fatalf("RandomSwitch returned %v", f.Device(id).Type)
		}
	}
}

func TestInjectFromSwitchPanics(t *testing.T) {
	_, f := testFabric(t, topo.Mesh(3, 3))
	defer func() {
		if recover() == nil {
			t.Error("switch Inject did not panic")
		}
	}()
	f.Device(0).Inject(&asi.Packet{})
}

func TestSetHandlerOnSwitchPanics(t *testing.T) {
	_, f := testFabric(t, topo.Mesh(3, 3))
	defer func() {
		if recover() == nil {
			t.Error("switch SetHandler did not panic")
		}
	}()
	f.Device(0).SetHandler(HandlerFunc(func(int, *asi.Packet) {}))
}

func TestDropReasonStrings(t *testing.T) {
	for r := DropReason(0); r < numDropReasons; r++ {
		if r.String() == "" {
			t.Error("empty DropReason string")
		}
	}
	if DropReason(99).String() == "" {
		t.Error("unknown DropReason empty")
	}
}
