package fabric

import (
	"fmt"

	"repro/internal/asi"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Fault injection. The paper's discovery algorithms assume a lossless
// fabric; real fabrics lose, delay and flap. A FaultPlan attached to a
// Fabric perturbs link behaviour in three ways — probabilistic packet
// loss, deterministic loss of the first N traversals (for reproducing an
// exact failure in tests), and jittered extra delivery delay — plus
// scheduled link flaps (a link trains down for a bounded window and back
// up). All randomness comes from a generator split off the fabric's own
// seeded RNG, so a given (seed, plan) pair replays bit-identically.

// LinkFaults describes the perturbations applied to one link. The zero
// value injects nothing.
type LinkFaults struct {
	// Loss is the probability that any one traversal of the link (either
	// direction) silently discards the packet.
	Loss float64
	// DropFirst deterministically discards the first N traversals of the
	// link, independent of Loss. It makes single-packet loss scenarios
	// exactly reproducible without tuning probabilities.
	DropFirst int
	// DelayProb is the probability that a traversal is delivered late.
	DelayProb float64
	// Delay is the maximum extra delivery latency of a late traversal;
	// the actual amount is uniformly jittered in (0, Delay].
	Delay sim.Duration
}

// active reports whether the rule can ever inject anything.
func (lf LinkFaults) active() bool {
	return lf.Loss > 0 || lf.DropFirst > 0 || (lf.DelayProb > 0 && lf.Delay > 0)
}

// Flap schedules one bounded link outage: the link trains down at At and
// back up Duration later. Packets queued or sent during the window are
// discarded, as a physical retrain would.
type Flap struct {
	// Link is the topology link index (the order of Topology.Links).
	Link     int
	At       sim.Time
	Duration sim.Duration
}

// FaultPlan is a reproducible description of every fault to inject into a
// fabric run.
type FaultPlan struct {
	// Default applies to every link without a PerLink override.
	Default LinkFaults
	// PerLink overrides Default for specific topology link indices.
	PerLink map[int]LinkFaults
	// Flaps are scheduled link outages.
	Flaps []Flap
}

// Empty reports whether the plan injects nothing at all.
func (p FaultPlan) Empty() bool {
	if p.Default.active() || len(p.Flaps) > 0 {
		return false
	}
	for _, lf := range p.PerLink {
		if lf.active() {
			return false
		}
	}
	return true
}

// Uniform returns a plan that drops every link traversal with the given
// probability — the loss model of the experiment sweeps.
func Uniform(loss float64) FaultPlan {
	return FaultPlan{Default: LinkFaults{Loss: loss}}
}

// faultState is the per-fabric runtime of an installed plan.
type faultState struct {
	plan FaultPlan
	rng  *sim.RNG
	// sent counts traversals per link (both directions), for DropFirst.
	sent []int
}

// rule returns the effective faults for a link index.
func (fs *faultState) rule(idx int) LinkFaults {
	if lf, ok := fs.plan.PerLink[idx]; ok {
		return lf
	}
	return fs.plan.Default
}

// NumLinks returns the number of instantiated links, in topology order.
func (f *Fabric) NumLinks() int { return len(f.links) }

// LinkAt returns the topology link index of the link cabled to the given
// device port, or false if the port is uncabled.
func (f *Fabric) LinkAt(id topo.NodeID, port int) (int, bool) {
	d := f.devices[id]
	if port < 0 || port >= len(d.ports) || d.ports[port].link == nil {
		return 0, false
	}
	return d.ports[port].link.idx, true
}

// SetFaultPlan installs a fault plan, scheduling its flaps on the engine.
// Passing an empty plan removes a previously installed one. The plan's
// randomness is split off the fabric's RNG at installation time, so the
// call itself is part of the reproducible run description.
func (f *Fabric) SetFaultPlan(p FaultPlan) error {
	if f.group != nil && !p.Empty() {
		return fmt.Errorf("fabric: fault plans are unsupported with parallel regions")
	}
	for _, fl := range p.Flaps {
		if fl.Link < 0 || fl.Link >= len(f.links) {
			return fmt.Errorf("fabric: flap references link %d of %d", fl.Link, len(f.links))
		}
		if fl.Duration <= 0 {
			return fmt.Errorf("fabric: flap on link %d has non-positive duration", fl.Link)
		}
	}
	if p.Empty() {
		f.faults = nil
		return nil
	}
	f.faults = &faultState{plan: p, rng: f.rng.Split(), sent: make([]int, len(f.links))}
	for _, fl := range p.Flaps {
		f.scheduleFlap(fl)
	}
	return nil
}

// FlapLink schedules one bounded outage of a topology link at an absolute
// simulation time, independently of any installed fault plan. Event
// scripts (the chaos harness) use it to flap links mid-run once the
// transient period's length is known; the flap semantics are identical to
// a FaultPlan flap.
func (f *Fabric) FlapLink(link int, at sim.Time, d sim.Duration) error {
	if f.group != nil {
		return fmt.Errorf("fabric: link flaps are unsupported with parallel regions")
	}
	if link < 0 || link >= len(f.links) {
		return fmt.Errorf("fabric: flap references link %d of %d", link, len(f.links))
	}
	if d <= 0 {
		return fmt.Errorf("fabric: flap on link %d has non-positive duration", link)
	}
	f.scheduleFlap(Flap{Link: link, At: at, Duration: d})
	return nil
}

// scheduleFlap arms the down/up event pair of one validated flap.
func (f *Fabric) scheduleFlap(fl Flap) {
	lk := f.links[fl.Link]
	f.Engine.At(fl.At, func(*sim.Engine) {
		if !lk.up {
			return // already down (e.g. hot removal); nothing to flap
		}
		f.counters[0].LinkFlaps++
		if f.tracing() {
			f.traceEvent(trace.Fault, lk.a, lk.aPort, nil, fmt.Sprintf("flap-down link=%d for=%v", fl.Link, fl.Duration))
		}
		lk.setUp(false)
	})
	f.Engine.At(fl.At.Add(fl.Duration), func(*sim.Engine) {
		if lk.up {
			return
		}
		if f.tracing() {
			f.traceEvent(trace.Fault, lk.a, lk.aPort, nil, fmt.Sprintf("flap-up link=%d", fl.Link))
		}
		lk.setUp(true)
	})
}

// faultDrop decides whether the plan discards this traversal of l, and
// accounts for it if so.
func (f *Fabric) faultDrop(l *link, d *Device, pkt *asi.Packet) bool {
	fs := f.faults
	if fs == nil {
		return false
	}
	lf := fs.rule(l.idx)
	if !lf.active() {
		return false
	}
	n := fs.sent[l.idx]
	fs.sent[l.idx]++
	drop := n < lf.DropFirst
	if !drop && lf.Loss > 0 {
		drop = fs.rng.Float64() < lf.Loss
	}
	if drop {
		f.drop(DropFaultInjected)
		if f.tel != nil {
			f.tel.linkFault.Inc(l.idx)
		}
		f.traceEvent(trace.Drop, d, l.portOf(d), pkt, DropFaultInjected.String())
		f.spanDrop(DropFaultInjected, d, l.portOf(d), pkt)
	}
	return drop
}

// faultDelay returns the extra delivery latency the plan injects into this
// traversal of l, zero for most.
func (f *Fabric) faultDelay(l *link) sim.Duration {
	fs := f.faults
	if fs == nil {
		return 0
	}
	lf := fs.rule(l.idx)
	if lf.DelayProb <= 0 || lf.Delay <= 0 {
		return 0
	}
	if fs.rng.Float64() >= lf.DelayProb {
		return 0
	}
	extra := sim.Duration(float64(lf.Delay) * fs.rng.Float64())
	if extra <= 0 {
		extra = 1 // at least one picosecond late
	}
	f.counters[0].FaultDelays++
	if f.tel != nil {
		f.tel.faultDelays.Inc()
	}
	return extra
}
