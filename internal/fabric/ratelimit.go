package fabric

import (
	"repro/internal/asi"
	"repro/internal/sim"
)

// Endpoint source injection rate limiting — one of the optional
// congestion-management mechanisms the ASI specification defines (paper
// section 2). A token bucket meters application traffic at the injection
// point; management packets (the highest traffic class) are exempt, so
// fabric control never competes with the limiter.

type rateLimiter struct {
	bytesPerSec float64
	burst       float64
	tokens      float64
	last        sim.Time
	queue       []*asi.Packet
	armed       bool
	// Delayed counts packets that had to wait for tokens.
	Delayed uint64
}

// SetInjectionRate installs (or, with gbps <= 0, removes) a token-bucket
// injection limiter on an endpoint. burstBytes is the bucket depth; it is
// clamped to at least one maximum-size packet so forward progress is
// always possible.
func (d *Device) SetInjectionRate(gbps float64, burstBytes int) {
	if d.Type != asi.DeviceEndpoint {
		panic("fabric: injection rate limiting applies to endpoints")
	}
	if gbps <= 0 {
		d.limiter = nil
		return
	}
	if burstBytes < 2176 {
		burstBytes = 2176
	}
	d.limiter = &rateLimiter{
		bytesPerSec: gbps * 1e9 / 8,
		burst:       float64(burstBytes),
		tokens:      float64(burstBytes),
		last:        d.eng.Now(),
	}
}

// limited reports whether the packet is subject to rate limiting:
// management-class traffic always bypasses the limiter.
func limited(pkt *asi.Packet) bool {
	return pkt.Header.TC != asi.TCManagement
}

// injectLimited meters a packet through the bucket, transmitting
// immediately when tokens allow and queueing otherwise.
func (d *Device) injectLimited(pkt *asi.Packet) {
	l := d.limiter
	l.refillAt(d.eng.Now())
	size := float64(pkt.WireSize())
	if len(l.queue) == 0 && l.tokens >= size {
		l.tokens -= size
		d.transmit(0, pkt)
		return
	}
	l.Delayed++
	l.queue = append(l.queue, pkt)
	d.armDrain()
}

// refillAt accrues tokens up to now.
func (l *rateLimiter) refillAt(now sim.Time) {
	dt := now.Sub(l.last).Seconds()
	l.last = now
	l.tokens += dt * l.bytesPerSec
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
}

// armDrain schedules the next queued transmission for when its tokens
// will have accrued.
func (d *Device) armDrain() {
	l := d.limiter
	if l == nil || l.armed || len(l.queue) == 0 {
		return
	}
	need := float64(l.queue[0].WireSize()) - l.tokens
	var wait sim.Duration
	if need > 0 {
		wait = sim.Seconds(need / l.bytesPerSec)
		if wait < sim.Nanosecond {
			wait = sim.Nanosecond
		}
	}
	l.armed = true
	d.eng.After(wait, func(*sim.Engine) {
		l.armed = false
		if d.limiter != l || !d.alive {
			return
		}
		l.refillAt(d.eng.Now())
		for len(l.queue) > 0 {
			pkt := l.queue[0]
			size := float64(pkt.WireSize())
			if l.tokens < size {
				break
			}
			l.tokens -= size
			l.queue = l.queue[1:]
			d.transmit(0, pkt)
		}
		d.armDrain()
	})
}
