package fabric

import (
	"repro/internal/asi"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/trace"
)

// link is a full-duplex cable between two device ports, modelled as two
// independent half links, each with its own serializer occupancy and
// credit state.
type link struct {
	f     *Fabric
	idx   int // topology link index, keys per-link fault rules
	a, b  *Device
	aPort int
	bPort int
	up    bool
	// cut marks a link whose ends live in different regions of a sharded
	// fabric: deliveries and credit returns cross via the shard group's
	// mailboxes instead of the local engine.
	cut  bool
	half [2]halfLink // [0]: a->b, [1]: b->a
}

// halfLink is one direction of a link. Credits track the free receive
// buffer slots per VC at the far end; the sender consumes one per packet
// and the receiver returns it once the packet has left its input buffer.
//
// The transmit path is allocation-free in steady state: the VC queues are
// rings, the two kick handlers are bound once at link construction, and
// in-flight packets ride pooled flight records instead of per-packet
// closures.
type halfLink struct {
	busyUntil sim.Time
	queues    [asi.NumVCs]sim.Ring[*asi.Packet]
	credits   [asi.NumVCs]int

	// kickTimer re-runs the transmit scheduler when the serializer frees
	// while packets wait; kickFn is the unconditional post-transmit kick.
	// Both live on the sender's engine.
	kickTimer *sim.Timer
	kickFn    sim.Handler
	// deliverFn hands an arrived flight to the receiver; freeFlights is
	// the pool it recycles through. Cut links instead use
	// crossDeliverFn/crossCreditFn, which run on the receiving region's
	// engine with freshly allocated flights (the pool is single-region
	// state).
	deliverFn    sim.ArgHandler
	crossDeliver sim.ArgHandler
	crossCredit  sim.ArgHandler
	freeFlights  *flight
}

// flight is one packet in transit on a half link: the per-packet state an
// arrival event needs, pooled so sustained traffic schedules arrivals
// without allocating.
type flight struct {
	pkt  *asi.Packet
	vc   asi.VCID
	next *flight
}

func newLink(f *Fabric, a *Device, aPort int, b *Device, bPort int) *link {
	l := &link{f: f, a: a, aPort: aPort, b: b, bPort: bPort}
	for i := range l.half {
		h := &l.half[i]
		for vc := range h.credits {
			h.credits[vc] = f.cfg.CreditsPerVC
		}
		dirIdx := i
		sender := a
		if dirIdx == 1 {
			sender = b
		}
		h.kickFn = func(*sim.Engine) { l.kick(sender) }
		h.kickTimer = sender.eng.NewTimer(h.kickFn)
		h.deliverFn = func(_ *sim.Engine, arg any) { l.deliver(dirIdx, arg.(*flight)) }
	}
	return l
}

// markCut binds the cross-region handoff handlers of a link that
// straddles a shard boundary. Deliveries arrive as fresh flight records
// (never pooled: the pool belongs to the sending region) and credits
// return as posted VC values; both run on the engine of the region they
// land in.
func (l *link) markCut() {
	l.cut = true
	for i := range l.half {
		dirIdx := i
		l.half[i].crossDeliver = func(_ *sim.Engine, arg any) {
			fl := arg.(*flight)
			receiver, rxPort := l.b, l.bPort
			if dirIdx == 1 {
				receiver, rxPort = l.a, l.aPort
			}
			receiver.arrive(rxPort, fl.vc, fl.pkt, l, dirIdx)
		}
		l.half[i].crossCredit = func(_ *sim.Engine, arg any) {
			l.applyCredit(dirIdx, arg.(asi.VCID))
		}
	}
}

// halfFrom returns the transmit direction index for the given sender.
func (l *link) halfFrom(d *Device) int {
	if d == l.a {
		return 0
	}
	return 1
}

// otherEnd returns the device and port at the opposite end from d.
func (l *link) otherEnd(d *Device) (*Device, int) {
	if d == l.a {
		return l.b, l.bPort
	}
	return l.a, l.aPort
}

// portOf returns d's own port number on this link.
func (l *link) portOf(d *Device) int {
	if d == l.a {
		return l.aPort
	}
	return l.bPort
}

// setUp trains or drops the link, updating port activity and config
// spaces at both ends. Dropping the link discards queued packets and
// resets credits, as a retrain would.
func (l *link) setUp(up bool) {
	l.up = up
	for _, d := range []*Device{l.a, l.b} {
		port := l.portOf(d)
		peer, _ := l.otherEnd(d)
		active := up && d.Alive() && peer.Alive()
		d.setPortActive(port, active)
	}
	if !up {
		for i := range l.half {
			h := &l.half[i]
			sender := l.a
			if i == 1 {
				sender = l.b
			}
			for vc := range h.queues {
				l.f.spanFlushQueue(&h.queues[vc], sender, l.portOf(sender))
				h.queues[vc].Clear()
				h.credits[vc] = l.f.cfg.CreditsPerVC
			}
		}
	}
}

// send enqueues pkt for transmission from d over this link and starts the
// serializer if idle.
func (l *link) send(d *Device, pkt *asi.Packet) {
	if !l.up {
		l.f.dropIn(d.ctr, DropInactivePort)
		l.f.spanDrop(DropInactivePort, d, l.portOf(d), pkt)
		return
	}
	if l.f.faultDrop(l, d, pkt) {
		return
	}
	h := &l.half[l.halfFrom(d)]
	vc := l.f.vcOf(pkt)
	if l.f.spans != nil {
		l.f.spanQueueStamp(pkt)
	}
	h.queues[vc].Push(pkt)
	l.kick(d)
}

// vcDetails are the preformatted trace details for each virtual channel,
// so tracing a transmit never formats on the fly.
var vcDetails = [asi.NumVCs]string{"vc=0", "vc=1", "vc=2"}

// kick runs the transmit scheduler for d's direction: while the serializer
// is idle, pick the highest-priority VC with both a queued packet and a
// credit, and put it on the wire. Management traffic (highest VC) always
// wins arbitration, which is the property the paper relies on when it
// states application traffic scarcely influences discovery time.
func (l *link) kick(d *Device) {
	e := d.eng
	dirIdx := l.halfFrom(d)
	h := &l.half[dirIdx]
	if h.busyUntil > e.Now() {
		if !h.kickTimer.Armed() {
			h.kickTimer.ScheduleAt(h.busyUntil)
		}
		return
	}
	if !l.up || !d.Alive() {
		return
	}
	// Highest VC index first: VC2 is the management channel.
	for vc := asi.NumVCs - 1; vc >= 0; vc-- {
		if h.queues[vc].Len() == 0 {
			continue
		}
		if h.credits[vc] <= 0 {
			// Head-of-line packet starved for credits: the wire sits idle
			// (for this VC) solely because the receiver's buffer is full.
			if l.f.tel != nil {
				l.f.tel.linkStall.Inc(l.idx)
			}
			if l.f.tracing() {
				l.f.traceEvent(trace.Stall, d, l.portOf(d), h.queues[vc].At(0), vcDetails[vc])
			}
			if l.f.spans != nil {
				if head := h.queues[vc].At(0); head.Span != 0 {
					l.f.spanInstant(span.KindStall, head, d, l.portOf(d), vcDetails[vc])
				}
			}
			continue
		}
		pkt := h.queues[vc].Pop()
		h.credits[vc]--
		if l.f.tel != nil {
			l.f.tel.linkTx.Inc(l.idx)
			l.f.tel.vcTx.Inc(vc)
		}
		if l.f.tracing() {
			l.f.traceEvent(trace.Transmit, d, l.portOf(d), pkt, vcDetails[vc])
		}
		ser := l.f.serialization(pkt.WireSize())
		h.busyUntil = e.Now().Add(ser)
		d.ctr.TxPackets++
		d.ctr.TxBytes += uint64(pkt.WireSize())
		extra := l.f.faultDelay(l)
		arrive := ser + l.f.cfg.Propagation + extra
		if l.f.spans != nil {
			l.f.spanWire(pkt, d, l.portOf(d), arrive, extra)
		}
		if l.cut {
			// Cross-region hop: the arrival is at least Propagation (the
			// group lookahead) in the future, so posting it through the
			// mailbox is always conservative-safe.
			receiver, _ := l.otherEnd(d)
			l.f.group.Post(d.region, receiver.region, e.Now().Add(arrive),
				h.crossDeliver, &flight{pkt: pkt, vc: asi.VCID(vc)})
		} else {
			fl := h.freeFlights
			if fl == nil {
				fl = &flight{}
			} else {
				h.freeFlights = fl.next
			}
			fl.pkt = pkt
			fl.vc = asi.VCID(vc)
			e.AfterArg(arrive, h.deliverFn, fl)
		}
		// Serializer free again at busyUntil; try the next packet.
		e.At(h.busyUntil, h.kickFn)
		return
	}
}

// deliver completes a flight: the record returns to the pool and the
// packet arrives at the receiving device.
func (l *link) deliver(dirIdx int, fl *flight) {
	h := &l.half[dirIdx]
	pkt, vc := fl.pkt, fl.vc
	fl.pkt = nil
	fl.next = h.freeFlights
	h.freeFlights = fl
	receiver, rxPort := l.b, l.bPort
	if dirIdx == 1 {
		receiver, rxPort = l.a, l.aPort
	}
	receiver.arrive(rxPort, vc, pkt, l, dirIdx)
}

// returnCredit hands a buffer slot back to the sender of the given
// direction and re-runs its transmit scheduler, since a packet may have
// been blocked on credits alone. On a cut link the credit rides back
// across the shard boundary with the cable propagation delay — the
// physical latency of the credit DLLP, and exactly the lookahead the
// conservative protocol needs; sequential links return it instantly, as
// before, so R=1 semantics are untouched.
func (l *link) returnCredit(dirIdx int, vc asi.VCID) {
	if !l.up {
		return
	}
	if l.cut {
		sender, receiver := l.a, l.b
		if dirIdx == 1 {
			sender, receiver = l.b, l.a
		}
		l.f.group.Post(receiver.region, sender.region,
			receiver.eng.Now().Add(l.f.cfg.Propagation), l.half[dirIdx].crossCredit, vc)
		return
	}
	l.applyCredit(dirIdx, vc)
}

// applyCredit restores a buffer slot on the sender side and re-kicks it.
func (l *link) applyCredit(dirIdx int, vc asi.VCID) {
	if !l.up {
		return
	}
	h := &l.half[dirIdx]
	if h.credits[vc] < l.f.cfg.CreditsPerVC {
		h.credits[vc]++
	}
	sender := l.a
	if dirIdx == 1 {
		sender = l.b
	}
	l.kick(sender)
}
