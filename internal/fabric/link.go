package fabric

import (
	"fmt"

	"repro/internal/asi"
	"repro/internal/sim"
	"repro/internal/trace"
)

// link is a full-duplex cable between two device ports, modelled as two
// independent half links, each with its own serializer occupancy and
// credit state.
type link struct {
	f     *Fabric
	idx   int // topology link index, keys per-link fault rules
	a, b  *Device
	aPort int
	bPort int
	up    bool
	half  [2]halfLink // [0]: a->b, [1]: b->a
}

// halfLink is one direction of a link. Credits track the free receive
// buffer slots per VC at the far end; the sender consumes one per packet
// and the receiver returns it once the packet has left its input buffer.
type halfLink struct {
	busyUntil sim.Time
	kickArmed bool
	queues    [asi.NumVCs][]*asi.Packet
	credits   [asi.NumVCs]int
}

func newLink(f *Fabric, a *Device, aPort int, b *Device, bPort int) *link {
	l := &link{f: f, a: a, aPort: aPort, b: b, bPort: bPort}
	for i := range l.half {
		for vc := range l.half[i].credits {
			l.half[i].credits[vc] = f.cfg.CreditsPerVC
		}
	}
	return l
}

// halfFrom returns the transmit direction index for the given sender.
func (l *link) halfFrom(d *Device) int {
	if d == l.a {
		return 0
	}
	return 1
}

// otherEnd returns the device and port at the opposite end from d.
func (l *link) otherEnd(d *Device) (*Device, int) {
	if d == l.a {
		return l.b, l.bPort
	}
	return l.a, l.aPort
}

// portOf returns d's own port number on this link.
func (l *link) portOf(d *Device) int {
	if d == l.a {
		return l.aPort
	}
	return l.bPort
}

// setUp trains or drops the link, updating port activity and config
// spaces at both ends. Dropping the link discards queued packets and
// resets credits, as a retrain would.
func (l *link) setUp(up bool) {
	l.up = up
	for _, d := range []*Device{l.a, l.b} {
		port := l.portOf(d)
		peer, _ := l.otherEnd(d)
		active := up && d.Alive() && peer.Alive()
		d.setPortActive(port, active)
	}
	if !up {
		for i := range l.half {
			h := &l.half[i]
			for vc := range h.queues {
				h.queues[vc] = nil
				h.credits[vc] = l.f.cfg.CreditsPerVC
			}
		}
	}
}

// send enqueues pkt for transmission from d over this link and starts the
// serializer if idle.
func (l *link) send(d *Device, pkt *asi.Packet) {
	if !l.up {
		l.f.drop(DropInactivePort)
		return
	}
	if l.f.faultDrop(l, d, pkt) {
		return
	}
	h := &l.half[l.halfFrom(d)]
	vc := l.f.vcOf(pkt)
	h.queues[vc] = append(h.queues[vc], pkt)
	l.kick(d)
}

// kick runs the transmit scheduler for d's direction: while the serializer
// is idle, pick the highest-priority VC with both a queued packet and a
// credit, and put it on the wire. Management traffic (highest VC) always
// wins arbitration, which is the property the paper relies on when it
// states application traffic scarcely influences discovery time.
func (l *link) kick(d *Device) {
	e := l.f.Engine
	dirIdx := l.halfFrom(d)
	h := &l.half[dirIdx]
	if h.busyUntil > e.Now() {
		if !h.kickArmed {
			h.kickArmed = true
			e.At(h.busyUntil, func(*sim.Engine) {
				h.kickArmed = false
				l.kick(d)
			})
		}
		return
	}
	if !l.up || !d.Alive() {
		return
	}
	// Highest VC index first: VC2 is the management channel.
	for vc := asi.NumVCs - 1; vc >= 0; vc-- {
		if len(h.queues[vc]) == 0 || h.credits[vc] <= 0 {
			continue
		}
		pkt := h.queues[vc][0]
		h.queues[vc] = h.queues[vc][1:]
		h.credits[vc]--
		l.f.traceEvent(trace.Transmit, d, l.portOf(d), pkt, fmt.Sprintf("vc=%d", vc))
		ser := l.f.serialization(pkt.WireSize())
		h.busyUntil = e.Now().Add(ser)
		l.f.counters.TxPackets++
		l.f.counters.TxBytes += uint64(pkt.WireSize())
		receiver, rxPort := l.otherEnd(d)
		arrive := ser + l.f.cfg.Propagation + l.f.faultDelay(l)
		vcCopy := asi.VCID(vc)
		e.After(arrive, func(*sim.Engine) {
			receiver.arrive(rxPort, vcCopy, pkt, l, dirIdx)
		})
		// Serializer free again at busyUntil; try the next packet.
		e.At(h.busyUntil, func(*sim.Engine) { l.kick(d) })
		return
	}
}

// returnCredit hands a buffer slot back to the sender of the given
// direction and re-runs its transmit scheduler, since a packet may have
// been blocked on credits alone.
func (l *link) returnCredit(dirIdx int, vc asi.VCID) {
	if !l.up {
		return
	}
	h := &l.half[dirIdx]
	if h.credits[vc] < l.f.cfg.CreditsPerVC {
		h.credits[vc]++
	}
	sender := l.a
	if dirIdx == 1 {
		sender = l.b
	}
	l.kick(sender)
}
