package fabric

import (
	"testing"

	"repro/internal/asi"
	"repro/internal/topo"
	"repro/internal/trace"
)

func TestFabricTracingRecordsLifecycle(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	buf := &trace.Buffer{}
	f.SetTracer(buf)
	ep := firstEndpoint(f)
	attachCapture(e, ep)
	ep.Inject(readReq(t, nil, 1, asi.GeneralInfoOffset, asi.GeneralInfoBlocks))
	e.Run()

	c := buf.CountByKind()
	if c[trace.Inject] != 1 {
		t.Errorf("injects = %d, want 1", c[trace.Inject])
	}
	// Request + completion each cross one link.
	if c[trace.Transmit] != 2 {
		t.Errorf("transmits = %d, want 2", c[trace.Transmit])
	}
	// Delivered at the switch (request) and at the endpoint (completion).
	if c[trace.Deliver] != 2 {
		t.Errorf("delivers = %d, want 2", c[trace.Deliver])
	}
	if c[trace.Drop] != 0 {
		t.Errorf("drops = %d, want 0", c[trace.Drop])
	}
	// Events are time-ordered.
	for i := 1; i < len(buf.Events); i++ {
		if buf.Events[i].At < buf.Events[i-1].At {
			t.Fatal("trace not time-ordered")
		}
	}
}

func TestFabricTracingRecordsDrops(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	buf := &trace.Buffer{}
	f.SetTracer(buf)
	ep := firstEndpoint(f)
	// Route error: 2 leftover turn bits at a 16-port switch.
	ep.Inject(&asi.Packet{
		Header:  asi.RouteHeader{TurnPool: 3, TurnPointer: 2, PI: asi.PI4DeviceManagement, TC: asi.TCManagement},
		Payload: asi.PI4{Op: asi.PI4ReadRequest, Tag: 1, Count: 1},
	})
	e.Run()
	found := false
	for _, ev := range buf.Events {
		if ev.Kind == trace.Drop && ev.Detail == DropRouteError.String() {
			found = true
		}
	}
	if !found {
		t.Errorf("no route-error drop in trace: %+v", buf.Events)
	}
}

func TestTracerDetachStopsRecording(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	buf := &trace.Buffer{}
	f.SetTracer(buf)
	ep := firstEndpoint(f)
	attachCapture(e, ep)
	ep.Inject(readReq(t, nil, 1, asi.GeneralInfoOffset, asi.GeneralInfoBlocks))
	e.Run()
	n := len(buf.Events)
	f.SetTracer(nil)
	ep.Inject(readReq(t, nil, 2, asi.GeneralInfoOffset, asi.GeneralInfoBlocks))
	e.Run()
	if len(buf.Events) != n {
		t.Errorf("recording continued after detach: %d -> %d", n, len(buf.Events))
	}
}
