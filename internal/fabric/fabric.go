// Package fabric is the executable model of an ASI switched fabric: x1
// links with credit-based flow control, multiplexed virtual cut-through
// switches, endpoints, per-device configuration spaces served over PI-4,
// PI-5 event reporting on port state changes, and device hot addition and
// removal. It corresponds to the physical/link-layer OPNET model of the
// paper (section 4.1), rebuilt on the deterministic event engine in
// internal/sim.
package fabric

import (
	"fmt"

	"repro/internal/asi"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Config sets the physical and timing parameters of the fabric model.
type Config struct {
	// LinkBandwidthGbps is the usable link bandwidth. The ASI x1 default
	// is 2.0 Gbps (2.5 Gbps raw minus 8b/10b overhead).
	LinkBandwidthGbps float64
	// Propagation is the cable flight time per link.
	Propagation sim.Duration
	// SwitchLatency is the header routing time of a cut-through switch.
	SwitchLatency sim.Duration
	// DeviceProcessing is the base time a fabric device needs to service
	// one PI-4 request (T_Device in the paper's Fig. 7b); the paper
	// observes it is small and independent of algorithm and fabric size.
	DeviceProcessing sim.Duration
	// DeviceFactor is the device processing-speed multiplier from the
	// paper's Figs. 8-9: service time = DeviceProcessing / DeviceFactor.
	DeviceFactor float64
	// CreditsPerVC is the per-VC receive buffer capacity, in packets, a
	// port advertises to its link partner.
	CreditsPerVC int
	// DetectDelay is the time a device needs to notice a local port
	// state change before it can emit a PI-5 event.
	DetectDelay sim.Duration
}

// DefaultConfig returns the parameters used throughout the paper's
// experiments (factors 1).
func DefaultConfig() Config {
	return Config{
		LinkBandwidthGbps: asi.LinkEffectiveGbps,
		Propagation:       25 * sim.Nanosecond,
		SwitchLatency:     100 * sim.Nanosecond,
		DeviceProcessing:  2 * sim.Microsecond,
		DeviceFactor:      1,
		CreditsPerVC:      8,
		DetectDelay:       1 * sim.Microsecond,
	}
}

// withDefaults fills zero fields with defaults so partially specified
// configs behave.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.LinkBandwidthGbps <= 0 {
		c.LinkBandwidthGbps = d.LinkBandwidthGbps
	}
	if c.Propagation <= 0 {
		c.Propagation = d.Propagation
	}
	if c.SwitchLatency <= 0 {
		c.SwitchLatency = d.SwitchLatency
	}
	if c.DeviceProcessing <= 0 {
		c.DeviceProcessing = d.DeviceProcessing
	}
	if c.DeviceFactor <= 0 {
		c.DeviceFactor = d.DeviceFactor
	}
	if c.CreditsPerVC <= 0 {
		c.CreditsPerVC = d.CreditsPerVC
	}
	if c.DetectDelay <= 0 {
		c.DetectDelay = d.DetectDelay
	}
	return c
}

// DropReason classifies discarded packets.
type DropReason int

const (
	// DropDeadDevice: the packet arrived at or was sent by a removed
	// device.
	DropDeadDevice DropReason = iota
	// DropInactivePort: the egress port has no live link partner.
	DropInactivePort
	// DropRouteError: the turn pool was exhausted or encoded an invalid
	// turn.
	DropRouteError
	// DropNoHandler: a management packet reached an endpoint with no
	// attached management entity.
	DropNoHandler
	// DropFaultInjected: the installed FaultPlan discarded the packet.
	DropFaultInjected
	numDropReasons
)

// String names the drop reason.
func (r DropReason) String() string {
	switch r {
	case DropDeadDevice:
		return "dead-device"
	case DropInactivePort:
		return "inactive-port"
	case DropRouteError:
		return "route-error"
	case DropNoHandler:
		return "no-handler"
	case DropFaultInjected:
		return "fault-injected"
	default:
		return fmt.Sprintf("DropReason(%d)", int(r))
	}
}

// Counters aggregates fabric-wide accounting.
type Counters struct {
	// TxPackets/TxBytes count link transmissions (per hop).
	TxPackets, TxBytes uint64
	// Delivered counts packets consumed by a device, per PI.
	Delivered map[asi.PI]uint64
	// Drops counts discarded packets by reason.
	Drops [numDropReasons]uint64
	// FaultDelays counts traversals the installed FaultPlan delivered
	// late; LinkFlaps counts flap windows that actually took a link down.
	FaultDelays uint64
	LinkFlaps   uint64
}

// Handler is a management entity attached to an endpoint (a fabric
// manager). The fabric calls it for every management packet delivered to
// the endpoint that the endpoint's own PI-4 configuration servicing does
// not consume: PI-4 completions, PI-5 events, and election traffic.
type Handler interface {
	HandlePacket(arrivalPort int, pkt *asi.Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(arrivalPort int, pkt *asi.Packet)

// HandlePacket implements Handler.
func (h HandlerFunc) HandlePacket(arrivalPort int, pkt *asi.Packet) { h(arrivalPort, pkt) }

// Fabric is an instantiated ASI network bound to a simulation engine —
// or, on the parallel path, to one engine per fabric region coordinated
// by a sim.ShardGroup.
type Fabric struct {
	// Engine is the engine sequential fabrics run on. On a sharded fabric
	// it aliases region 0's engine (the FM host's region), so management
	// entities attached to the host schedule on the right queue either
	// way.
	Engine *sim.Engine
	Topo   *topo.Topology
	cfg    Config
	rng    *sim.RNG

	devices []*Device
	links   []*link
	byDSN   map[asi.DSN]*Device

	// group coordinates the per-region engines on the parallel path; nil
	// on the sequential path. regionOf maps NodeID to region (nil when
	// sequential).
	group    *sim.ShardGroup
	regionOf []int

	// counters holds one accounting block per region so hot-path
	// increments never cross a shard boundary; sequential fabrics use a
	// single block. Counters() merges them.
	counters []Counters
	tracer   trace.Recorder
	faults   *faultState
	tel      *fabricTelemetry

	// spans is the causal span tracer (SetSpanTracer), nil when
	// detached; linkQueued stamps when traced packets entered a VC
	// queue, allocated only while spans is set.
	spans      *span.Tracer
	linkQueued map[*asi.Packet]sim.Time
}

// New instantiates the fabric described by t on the given engine. All
// devices power up alive with their cabled ports active. The topology must
// validate.
func New(e *sim.Engine, t *topo.Topology, cfg Config, rng *sim.RNG) (*Fabric, error) {
	return build(e, nil, nil, t, cfg, rng)
}

// NewSharded instantiates the fabric across the regions of a partition,
// one shard-group engine per region, for conservative parallel
// simulation. Each device schedules exclusively on its region's engine;
// links whose ends straddle regions hand packets (and credits) over
// through the group's barrier-synchronized mailboxes, with the cable
// propagation delay as the lookahead. The group's lookahead and region
// distances are configured here from the partition.
//
// The sharded path trades instrumentation for parallelism: packet
// tracing, telemetry, span tracing, fault plans and the traffic
// generator are unsupported (the respective setters reject them), so the
// simulated discovery behaviour — and the resulting FM database — is
// bit-identical to the sequential path.
func NewSharded(g *sim.ShardGroup, part *topo.Partition, t *topo.Topology, cfg Config, rng *sim.RNG) (*Fabric, error) {
	if part.Count != g.Shards() {
		return nil, fmt.Errorf("fabric: partition has %d regions, shard group %d", part.Count, g.Shards())
	}
	if len(part.Region) != len(t.Nodes) {
		return nil, fmt.Errorf("fabric: partition covers %d nodes, topology has %d", len(part.Region), len(t.Nodes))
	}
	f, err := build(g.Engine(0), g, part.Region, t, cfg, rng)
	if err != nil {
		return nil, err
	}
	g.SetLookahead(f.cfg.Propagation)
	g.SetDistances(part.RegionDistances(t))
	for _, li := range part.CutLinks {
		f.links[li].markCut()
	}
	return f, nil
}

// build is the shared constructor; group and regionOf are nil on the
// sequential path.
func build(e *sim.Engine, group *sim.ShardGroup, regionOf []int, t *topo.Topology, cfg Config, rng *sim.RNG) (*Fabric, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		rng = sim.NewRNG(1)
	}
	f := &Fabric{
		Engine:   e,
		Topo:     t,
		cfg:      cfg.withDefaults(),
		rng:      rng,
		group:    group,
		regionOf: regionOf,
		byDSN:    make(map[asi.DSN]*Device),
	}
	regions := 1
	if group != nil {
		regions = group.Shards()
	}
	f.counters = make([]Counters, regions)
	for i := range f.counters {
		f.counters[i].Delivered = make(map[asi.PI]uint64)
	}
	for _, n := range t.Nodes {
		d, err := newDevice(f, n)
		if err != nil {
			return nil, err
		}
		f.devices = append(f.devices, d)
		f.byDSN[d.DSN] = d
	}
	for _, l := range t.Links {
		lk := newLink(f, f.devices[l.A], l.APort, f.devices[l.B], l.BPort)
		lk.idx = len(f.links)
		f.links = append(f.links, lk)
		f.devices[l.A].ports[l.APort].link = lk
		f.devices[l.B].ports[l.BPort].link = lk
	}
	// Train every cabled link: ports become active, config spaces updated.
	for _, lk := range f.links {
		lk.setUp(true)
	}
	return f, nil
}

// Sharded reports whether the fabric runs on the parallel region-sharded
// path.
func (f *Fabric) Sharded() bool { return f.group != nil }

// Group returns the shard group a sharded fabric runs on (nil when
// sequential).
func (f *Fabric) Group() *sim.ShardGroup { return f.group }

// Region returns the region a node was partitioned into (0 when
// sequential).
func (f *Fabric) Region(id topo.NodeID) int {
	if f.regionOf == nil {
		return 0
	}
	return f.regionOf[id]
}

// Config returns the fabric's effective configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Device returns the device instantiated for a topology node.
func (f *Fabric) Device(id topo.NodeID) *Device { return f.devices[id] }

// Devices returns all devices in node-ID order.
func (f *Fabric) Devices() []*Device { return f.devices }

// DeviceByDSN looks a device up by serial number.
func (f *Fabric) DeviceByDSN(dsn asi.DSN) (*Device, bool) {
	d, ok := f.byDSN[dsn]
	return d, ok
}

// Counters returns a snapshot of fabric-wide accounting, merged across
// regions on the sharded path. Every field is a sum, so the merge is
// independent of region count.
func (f *Fabric) Counters() Counters {
	var c Counters
	c.Delivered = make(map[asi.PI]uint64, len(f.counters[0].Delivered))
	for i := range f.counters {
		r := &f.counters[i]
		c.TxPackets += r.TxPackets
		c.TxBytes += r.TxBytes
		c.FaultDelays += r.FaultDelays
		c.LinkFlaps += r.LinkFlaps
		for k, v := range r.Delivered {
			c.Delivered[k] += v
		}
		for j := range r.Drops {
			c.Drops[j] += r.Drops[j]
		}
	}
	return c
}

// AliveReachableFrom counts devices currently alive and reachable from the
// given endpoint over live links — the "active and reachable devices"
// x-axis of the paper's Fig. 6(a).
func (f *Fabric) AliveReachableFrom(id topo.NodeID) int {
	start := f.devices[id]
	if !start.Alive() {
		return 0
	}
	seen := map[*Device]bool{start: true}
	queue := []*Device{start}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		for p := range d.ports {
			pt := &d.ports[p]
			if pt.link == nil || !pt.link.up {
				continue
			}
			peer, _ := pt.link.otherEnd(d)
			if peer.Alive() && !seen[peer] {
				seen[peer] = true
				queue = append(queue, peer)
			}
		}
	}
	return len(seen)
}

// serialization returns the wire time of size bytes on a link.
func (f *Fabric) serialization(size int) sim.Duration {
	bits := float64(size * 8)
	ns := bits / f.cfg.LinkBandwidthGbps // Gbps: bits/ns
	return sim.Nanos(ns)
}

// deviceService returns the effective PI-4 service time at a fabric
// device under the configured speed factor.
func (f *Fabric) deviceService() sim.Duration {
	return f.cfg.DeviceProcessing.Scale(1 / f.cfg.DeviceFactor)
}

// SetTracer attaches a packet-event recorder; nil detaches it. Tracing
// costs nothing when detached. Sharded fabrics reject tracers: trace
// order would depend on region interleaving.
func (f *Fabric) SetTracer(t trace.Recorder) {
	if t != nil && f.group != nil {
		panic("fabric: packet tracing is unsupported with parallel regions")
	}
	f.tracer = t
}

// tracing reports whether a recorder is attached. Hot paths check it
// before building event details, so detached tracing never formats.
func (f *Fabric) tracing() bool { return f.tracer != nil }

// traceEvent records a packet event if a tracer is attached.
func (f *Fabric) traceEvent(kind trace.Kind, d *Device, port int, pkt *asi.Packet, detail string) {
	if f.tracer == nil {
		return
	}
	ev := trace.Event{
		At:     f.Engine.Now(),
		Kind:   kind,
		Port:   port,
		Detail: detail,
	}
	if d != nil {
		ev.Device = d.Label
	}
	if pkt != nil {
		ev.PI = pkt.Header.PI
		ev.Bytes = pkt.WireSize()
		if pkt.Payload != nil && ev.PI == 0 {
			ev.PI = pkt.Payload.ProtocolInterface()
		}
	}
	f.tracer.Record(ev)
}

// drop accounts a discarded packet with no device context (region 0;
// only reachable on the sequential path).
func (f *Fabric) drop(r DropReason) { f.dropIn(&f.counters[0], r) }

// dropIn accounts a discarded packet against a specific region's block.
func (f *Fabric) dropIn(c *Counters, r DropReason) {
	c.Drops[r]++
	if f.tel != nil {
		f.tel.drops.Inc(int(r))
	}
}

// dropTraced accounts and traces a discarded packet with context.
func (f *Fabric) dropTraced(r DropReason, d *Device, port int, pkt *asi.Packet) {
	f.dropIn(d.ctr, r)
	f.traceEvent(trace.Drop, d, port, pkt, r.String())
	f.spanDrop(r, d, port, pkt)
}

// vcOf maps a packet to its virtual channel: multicast always rides the
// MVC, unicast follows the TC/VC mapping table.
func (f *Fabric) vcOf(pkt *asi.Packet) asi.VCID {
	if pkt.Header.Multicast {
		return asi.VCMulticast
	}
	m := asi.DefaultTCtoVC()
	return m[pkt.Header.TC&asi.MaxTrafficClass]
}
