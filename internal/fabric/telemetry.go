package fabric

import (
	"repro/internal/asi"
	"repro/internal/telemetry"
)

// Telemetry metric names exported by the fabric. Per-link families are
// indexed by the topology link index (Topology.Links order, the same ids
// -trace and -flap use); the per-VC family is indexed by virtual channel.
const (
	MetricLinkTx       = "fabric.link.tx.packets"    // transmissions per link
	MetricLinkStall    = "fabric.link.credit.stalls" // credit-starved tx attempts per link
	MetricLinkFault    = "fabric.link.fault.drops"   // fault-injected drops per link
	MetricVCTx         = "fabric.vc.tx.packets"      // transmissions per virtual channel
	MetricFaultDelays  = "fabric.fault.delays"       // traversals delivered late by the plan
	MetricLinkFlaps    = "fabric.link.flaps"         // flap windows that took a link down
	MetricDropsByCause = "fabric.drops"              // discarded packets per DropReason
)

// fabricTelemetry is the fabric's bundle of pre-registered metric
// handles. It exists (non-nil) only while telemetry is enabled; every
// hot-path site guards on that one pointer, so disabled telemetry costs
// a single predictable branch per site and enabled telemetry costs an
// indexed increment — neither allocates.
type fabricTelemetry struct {
	linkTx      *telemetry.CounterVec
	linkStall   *telemetry.CounterVec
	linkFault   *telemetry.CounterVec
	vcTx        *telemetry.CounterVec
	drops       *telemetry.CounterVec
	faultDelays *telemetry.Counter
}

// EnableTelemetry registers the fabric's per-link, per-VC and fault
// metrics with reg and starts recording into them. A nil reg disables
// recording again. Enabling telemetry never changes simulated behaviour:
// no events are scheduled and no packet is touched.
func (f *Fabric) EnableTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		f.tel = nil
		return
	}
	if f.group != nil {
		panic("fabric: telemetry is unsupported with parallel regions")
	}
	f.tel = &fabricTelemetry{
		linkTx:      reg.CounterVec(MetricLinkTx, len(f.links)),
		linkStall:   reg.CounterVec(MetricLinkStall, len(f.links)),
		linkFault:   reg.CounterVec(MetricLinkFault, len(f.links)),
		vcTx:        reg.CounterVec(MetricVCTx, int(asi.NumVCs)),
		drops:       reg.CounterVec(MetricDropsByCause, int(numDropReasons)),
		faultDelays: reg.Counter(MetricFaultDelays),
	}
}

// FinishTelemetry folds the end-of-run fabric totals (flap count) into
// the registry. Cold path; call once when a run completes.
func (f *Fabric) FinishTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Counter(MetricLinkFlaps).Add(f.Counters().LinkFlaps)
}
