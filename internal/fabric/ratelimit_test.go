package fabric

import (
	"testing"

	"repro/internal/asi"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/topo"
)

// appPacketTo builds a bulk application packet to the 2-hop endpoint
// ep(0,1) in a 3x3 mesh.
func appPacketTo01(t *testing.T, bytes int) *asi.Packet {
	t.Helper()
	p := route.Path{
		{Ports: 16, In: topo.PortHost, Out: topo.PortEast},
		{Ports: 16, In: topo.PortWest, Out: topo.PortHost},
	}
	hdr, err := route.Header(p, asi.PIApplication)
	if err != nil {
		t.Fatal(err)
	}
	hdr.TC = 0
	return &asi.Packet{Header: hdr, Payload: asi.AppData{Bytes: bytes}}
}

func TestInjectionRateLimiterPacesTraffic(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	ep := firstEndpoint(f)
	dst := f.Device(10) // ep(0,1)
	var arrivals []sim.Time
	dst.SetHandler(HandlerFunc(func(port int, pkt *asi.Packet) {
		arrivals = append(arrivals, e.Now())
	}))

	// 0.08 Gbps = 10 MB/s; a ~1020B packet needs ~102us of tokens.
	ep.SetInjectionRate(0.08, 2176)
	const n = 10
	for i := 0; i < n; i++ {
		ep.Inject(appPacketTo01(t, 1000))
	}
	e.Run()
	if len(arrivals) != n {
		t.Fatalf("delivered %d of %d", len(arrivals), n)
	}
	// Steady-state spacing ~= wire size / rate. Wire size = 1000 + 20
	// overhead = 1020B -> 102us. Allow generous slack for the first
	// burst-funded packets.
	total := arrivals[len(arrivals)-1].Sub(arrivals[0])
	perPkt := total / sim.Duration(n-1)
	if perPkt < 80*sim.Microsecond || perPkt > 130*sim.Microsecond {
		t.Errorf("paced spacing = %v per packet, want ~102us", perPkt)
	}
}

func TestInjectionRateLimiterUnlimitedByDefault(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	ep := firstEndpoint(f)
	dst := f.Device(10)
	var last sim.Time
	dst.SetHandler(HandlerFunc(func(port int, pkt *asi.Packet) { last = e.Now() }))
	for i := 0; i < 10; i++ {
		ep.Inject(appPacketTo01(t, 1000))
	}
	e.Run()
	// At full 2 Gbps, 10x ~1KB packets drain in ~50us.
	if last > sim.Time(100*sim.Microsecond) {
		t.Errorf("unlimited injection took %v", last)
	}
}

func TestManagementBypassesLimiter(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	ep := firstEndpoint(f)
	got := attachCapture(e, ep)
	ep.SetInjectionRate(0.01, 2176) // extremely slow bucket
	// Saturate the bucket with bulk, then issue a management read.
	for i := 0; i < 5; i++ {
		ep.Inject(appPacketTo01(t, 2000))
	}
	ep.Inject(readReq(t, nil, 1, asi.GeneralInfoOffset, asi.GeneralInfoBlocks))
	e.RunUntil(sim.Time(1 * sim.Millisecond))
	if len(*got) != 1 {
		t.Fatalf("management completion not received despite limiter: %d", len(*got))
	}
	if at := (*got)[0].at; at > sim.Time(50*sim.Microsecond) {
		t.Errorf("management packet delayed to %v by the limiter", at)
	}
	if ep.limiter.Delayed == 0 {
		t.Error("no bulk packet was delayed")
	}
	e.Run()
}

func TestSetInjectionRateValidation(t *testing.T) {
	_, f := testFabric(t, topo.Mesh(3, 3))
	ep := firstEndpoint(f)
	ep.SetInjectionRate(1, 0) // burst clamped up
	if ep.limiter.burst < 2176 {
		t.Errorf("burst = %v", ep.limiter.burst)
	}
	ep.SetInjectionRate(0, 0) // removal
	if ep.limiter != nil {
		t.Error("limiter not removed")
	}
	defer func() {
		if recover() == nil {
			t.Error("switch limiter did not panic")
		}
	}()
	f.Device(0).SetInjectionRate(1, 0)
}

func TestLimiterTokensNeverExceedBurst(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	ep := firstEndpoint(f)
	ep.SetInjectionRate(2, 4000)
	// Long idle, then a burst: only bucket-depth bytes go out instantly.
	e.RunUntil(sim.Time(10 * sim.Millisecond))
	for i := 0; i < 8; i++ {
		ep.Inject(appPacketTo01(t, 1000))
	}
	l := ep.limiter
	l.refillAt(e.Now())
	if l.tokens > l.burst {
		t.Errorf("tokens %v exceed burst %v", l.tokens, l.burst)
	}
	e.Run()
}
