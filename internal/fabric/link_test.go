package fabric

import (
	"testing"

	"repro/internal/asi"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/topo"
)

// twoNode builds the smallest fabric: one switch, one endpoint.
func twoNode(t *testing.T, cfg Config) (*sim.Engine, *Fabric, *Device, *Device) {
	t.Helper()
	tp := topo.New("pair")
	sw := tp.AddSwitch(4, "sw")
	ep := tp.AddEndpoint("ep")
	if err := tp.Connect(sw, 0, ep, 0); err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	f, err := New(e, tp, cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return e, f, f.Device(sw), f.Device(ep)
}

func TestLinkSerializationOccupancy(t *testing.T) {
	e, f, sw, ep := twoNode(t, Config{})
	_ = f
	// Two back-to-back 1000B app packets addressed to the switch itself
	// (empty pool delivers there): the second arrival is one full
	// serialization later.
	var arrivals []sim.Time
	hdr := asi.RouteHeader{PI: asi.PIApplication}
	_ = hdr
	// Use management reads so delivery is observable via PI-4 service:
	// instead, simply watch switch RxPackets after each event.
	ep.Inject(&asi.Packet{Header: asi.RouteHeader{PI: asi.PIApplication}, Payload: asi.AppData{Bytes: 1000}})
	ep.Inject(&asi.Packet{Header: asi.RouteHeader{PI: asi.PIApplication}, Payload: asi.AppData{Bytes: 1000}})
	prev := uint64(0)
	for e.Step() {
		if sw.RxPackets > prev {
			prev = sw.RxPackets
			arrivals = append(arrivals, e.Now())
		}
	}
	if len(arrivals) != 2 {
		t.Fatalf("arrivals: %v", arrivals)
	}
	// Wire size = 1000 + 20 overhead = 1020B at 2 Gbps = 4.08us.
	gap := arrivals[1].Sub(arrivals[0])
	want := f.serialization(1020)
	if gap != want {
		t.Errorf("serialization gap = %v, want %v", gap, want)
	}
}

func TestVCArbitrationStrictPriority(t *testing.T) {
	e, f, sw, ep := twoNode(t, Config{})
	_ = f
	// Queue several bulk packets, then one management packet, while the
	// link is busy with the first bulk transfer. The management packet
	// must be the second to arrive.
	order := []asi.PI{}
	prev := uint64(0)
	ep.Inject(&asi.Packet{Header: asi.RouteHeader{PI: asi.PIApplication}, Payload: asi.AppData{Bytes: 2000}})
	ep.Inject(&asi.Packet{Header: asi.RouteHeader{PI: asi.PIApplication}, Payload: asi.AppData{Bytes: 2000}})
	ep.Inject(&asi.Packet{Header: asi.RouteHeader{PI: asi.PIApplication, TC: asi.TCManagement},
		Payload: asi.AppData{Bytes: 64}})
	for e.Step() {
		if sw.RxPackets > prev {
			prev = sw.RxPackets
			// Track the last consumed PI via counters: infer by size
			// is brittle; use Delivered map deltas instead.
		}
	}
	c := f.Counters()
	if c.Delivered[asi.PIApplication] != 3 {
		t.Fatalf("delivered %d", c.Delivered[asi.PIApplication])
	}
	_ = order
	// Strict priority is asserted behaviourally in
	// TestManagementPriorityOverBulkTraffic; here assert no drops and
	// full delivery under mixed VCs.
	for r, n := range c.Drops {
		if n != 0 {
			t.Errorf("drops[%v] = %d", DropReason(r), n)
		}
	}
}

func TestCreditsExhaustAndRecover(t *testing.T) {
	e, f, sw, ep := twoNode(t, Config{CreditsPerVC: 1})
	// With one credit, the second packet must wait for the first's
	// credit return (after the switch's routing latency).
	ep.Inject(&asi.Packet{Header: asi.RouteHeader{PI: asi.PIApplication}, Payload: asi.AppData{Bytes: 100}})
	ep.Inject(&asi.Packet{Header: asi.RouteHeader{PI: asi.PIApplication}, Payload: asi.AppData{Bytes: 100}})
	e.Run()
	if sw.RxPackets != 2 {
		t.Fatalf("delivered %d of 2 under 1 credit", sw.RxPackets)
	}
	var drops uint64
	for _, n := range f.Counters().Drops {
		drops += n
	}
	if drops != 0 {
		t.Errorf("drops under credit pressure: %+v", f.Counters().Drops)
	}
}

func TestCreditsArePerVC(t *testing.T) {
	// Exhausting bulk credits must not block the management VC.
	e, f, sw, ep := twoNode(t, Config{CreditsPerVC: 1})
	_ = f
	// First bulk packet consumes the only VC0 credit and parks in the
	// switch for SwitchLatency; a management packet right behind it must
	// not wait for the credit return.
	ep.Inject(&asi.Packet{Header: asi.RouteHeader{PI: asi.PIApplication}, Payload: asi.AppData{Bytes: 2000}})
	ep.Inject(&asi.Packet{Header: asi.RouteHeader{PI: asi.PIApplication}, Payload: asi.AppData{Bytes: 2000}})
	ep.Inject(&asi.Packet{Header: asi.RouteHeader{PI: asi.PIApplication, TC: asi.TCManagement},
		Payload: asi.AppData{Bytes: 64}})
	mgmtAt := sim.Time(0)
	prevMgmt := uint64(0)
	for e.Step() {
		if got := f.Counters().Delivered[asi.PIApplication]; got > 0 && mgmtAt == 0 {
			// Track when the small (management-class) packet lands by
			// watching the switch's byte counter jump by its size.
			_ = got
		}
		if sw.RxBytes >= 84 && prevMgmt == 0 && sw.RxBytes%2020 != 0 {
			prevMgmt = 1
			mgmtAt = e.Now()
		}
	}
	if sw.RxPackets != 3 {
		t.Fatalf("delivered %d of 3", sw.RxPackets)
	}
	// The two bulk packets take ~8.1us + ~8.1us of serialization plus a
	// credit-gated wait; the management packet (84B, ~0.34us) on its own
	// VC must land well before the second bulk packet could.
	if mgmtAt == 0 || mgmtAt > sim.Time(12*sim.Microsecond) {
		t.Errorf("management packet landed at %v despite per-VC credits", mgmtAt)
	}
}

func TestLinkDownFlushesQueues(t *testing.T) {
	e, f, sw, ep := twoNode(t, Config{CreditsPerVC: 1})
	// Park packets in the ep->sw queue, then kill the switch: queued
	// packets must not be delivered after the link drops.
	for i := 0; i < 5; i++ {
		ep.Inject(&asi.Packet{Header: asi.RouteHeader{PI: asi.PIApplication}, Payload: asi.AppData{Bytes: 2000}})
	}
	if err := f.SetDeviceDown(sw.ID, true); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if sw.RxPackets > 1 {
		t.Errorf("dead switch consumed %d packets", sw.RxPackets)
	}
	// Bring it back: the fabric must be usable again.
	if err := f.SetDeviceUp(sw.ID, true); err != nil {
		t.Fatal(err)
	}
	ep.Inject(&asi.Packet{Header: asi.RouteHeader{PI: asi.PIApplication}, Payload: asi.AppData{Bytes: 100}})
	before := sw.RxPackets
	e.Run()
	if sw.RxPackets != before+1 {
		t.Error("fabric unusable after link retrain")
	}
}

func TestBackwardPacketToNowhereIsDropped(t *testing.T) {
	// A response whose backward pool overruns is a route error.
	e, f, _, ep := twoNode(t, Config{})
	pkt := &asi.Packet{
		Header: asi.RouteHeader{
			Dir: true, TurnPointer: asi.TurnPoolBits,
			PI: asi.PI4DeviceManagement, TC: asi.TCManagement,
		},
		Payload: asi.PI4{Op: asi.PI4ReadCompletionData, Tag: 1},
	}
	ep.Inject(pkt)
	e.Run()
	if f.Counters().Drops[DropRouteError] != 1 {
		t.Errorf("drops: %+v", f.Counters().Drops)
	}
}

func TestEndpointPathToSwitchSelf(t *testing.T) {
	// Empty-pool forward packets terminate at the first switch: the
	// canonical "talk to my neighbour" route used by discovery's very
	// first probe.
	e, f, sw, ep := twoNode(t, Config{})
	got := 0
	_ = f
	hdr, err := route.Header(nil, asi.PI4DeviceManagement)
	if err != nil {
		t.Fatal(err)
	}
	ep.Inject(&asi.Packet{Header: hdr, Payload: asi.PI4{Op: asi.PI4ReadRequest, Tag: 9, Count: 1}})
	ep.SetHandler(HandlerFunc(func(port int, pkt *asi.Packet) { got++ }))
	e.Run()
	if sw.RxPackets != 1 || got != 1 {
		t.Errorf("request/response flow broken: sw=%d ep=%d", sw.RxPackets, got)
	}
}
