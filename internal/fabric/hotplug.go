package fabric

import (
	"errors"
	"fmt"

	"repro/internal/asi"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Hot addition and removal of fabric devices (paper sections 1-2: "device
// hot addition and removal" and the topological change programmed in every
// experiment). Removing a switch drops all its links; each live neighbour
// notices the state change on its local port after the detection delay and
// reports it to the FM with a PI-5 packet — if the FM has programmed an
// event route into it. Restoring the switch reverses the process with
// port-up events.

// Typed hotplug errors. Scripted churn (the chaos harness, tests) must
// distinguish "the event was redundant" from any other failure, so both
// misuses are sentinel errors matchable with errors.Is.
var (
	// ErrAlreadyDown reports a SetDeviceDown on a device that is down.
	ErrAlreadyDown = errors.New("device already down")
	// ErrAlreadyUp reports a SetDeviceUp on a device that is up.
	ErrAlreadyUp = errors.New("device already up")
)

// Alive reports whether the device instantiated for a topology node is
// currently powered and part of the fabric.
func (f *Fabric) Alive(id topo.NodeID) bool { return f.devices[id].alive }

// SetDeviceDown removes a device from the fabric. With quiet set the
// neighbours do not emit PI-5 events; experiments use this to prepare an
// "addition" transient without tripping change assimilation. It returns
// ErrAlreadyDown if the device is already down.
func (f *Fabric) SetDeviceDown(id topo.NodeID, quiet bool) error {
	d := f.devices[id]
	if !d.alive {
		return fmt.Errorf("fabric: device %s: %w", d.Label, ErrAlreadyDown)
	}
	d.alive = false
	d.pi4Queue.Clear()
	// Flush the dead device's own transmit queues; packets already on
	// the wire stay in flight and die at arrival.
	for p := range d.ports {
		if lk := d.ports[p].link; lk != nil {
			h := &lk.half[lk.halfFrom(d)]
			for vc := range h.queues {
				h.queues[vc].Clear()
			}
		}
	}
	f.portsChanged(d, quiet, asi.PI5PortDown)
	return nil
}

// SetDeviceUp restores a previously removed device. Neighbours emit
// PI-5 port-up events unless quiet is set. It returns ErrAlreadyUp if the
// device is already up.
func (f *Fabric) SetDeviceUp(id topo.NodeID, quiet bool) error {
	d := f.devices[id]
	if d.alive {
		return fmt.Errorf("fabric: device %s: %w", d.Label, ErrAlreadyUp)
	}
	d.alive = true
	f.portsChanged(d, quiet, asi.PI5PortUp)
	return nil
}

// portsChanged retrains all of d's links and lets live neighbours report
// the transition.
func (f *Fabric) portsChanged(d *Device, quiet bool, code asi.PI5EventCode) {
	for p := range d.ports {
		lk := d.ports[p].link
		if lk == nil {
			continue
		}
		peer, peerPort := lk.otherEnd(d)
		lk.setUp(lk.up) // recompute activity from both ends' liveness
		if quiet || !peer.Alive() {
			continue
		}
		port := peerPort
		// The detection timer belongs to the neighbour doing the
		// detecting, so on a sharded fabric it fires on that region's
		// engine.
		peer.eng.After(f.cfg.DetectDelay, func(*sim.Engine) {
			if peer.Alive() {
				peer.EmitPI5(code, port)
			}
		})
	}
}

// RandomSwitch picks a uniformly random switch node, for the paper's
// "addition or removal of a randomly chosen fabric switch".
func (f *Fabric) RandomSwitch(rng *sim.RNG) topo.NodeID {
	var switches []topo.NodeID
	for _, d := range f.devices {
		if d.Type == asi.DeviceSwitch {
			switches = append(switches, d.ID)
		}
	}
	return switches[rng.Intn(len(switches))]
}
