package fabric

import (
	"testing"

	"repro/internal/asi"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// hostLink returns the topology link index of ep's port-0 cable.
func hostLink(t *testing.T, f *Fabric, ep *Device) int {
	t.Helper()
	idx, ok := f.LinkAt(ep.ID, 0)
	if !ok {
		t.Fatal("endpoint port 0 uncabled")
	}
	return idx
}

// injectReads sends n PI-4 reads from ep to its adjacent switch, spaced
// apart so each round trip finishes before the next starts.
func injectReads(e *sim.Engine, ep *Device, n int) {
	for i := 0; i < n; i++ {
		tag := uint32(i)
		e.After(sim.Duration(i)*10*sim.Microsecond, func(*sim.Engine) {
			hdr, err := route.Header(nil, asi.PI4DeviceManagement)
			if err != nil {
				panic(err)
			}
			ep.Inject(&asi.Packet{Header: hdr, Payload: asi.PI4{
				Op: asi.PI4ReadRequest, Tag: tag,
				Offset: asi.GeneralInfoOffset, Count: asi.GeneralInfoBlocks,
			}})
		})
	}
}

func TestFaultDropFirstIsExact(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	ep := firstEndpoint(f)
	got := attachCapture(e, ep)
	if err := f.SetFaultPlan(FaultPlan{
		PerLink: map[int]LinkFaults{hostLink(t, f, ep): {DropFirst: 2}},
	}); err != nil {
		t.Fatal(err)
	}

	injectReads(e, ep, 5)
	e.Run()

	// The first two requests die on the host link; the remaining three
	// complete (their completions are traversals 3..5 and onward).
	if len(*got) != 3 {
		t.Fatalf("received %d completions, want 3", len(*got))
	}
	if d := f.Counters().Drops[DropFaultInjected]; d != 2 {
		t.Errorf("fault drops = %d, want 2", d)
	}
}

func TestFaultLossOneDropsEverything(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	ep := firstEndpoint(f)
	got := attachCapture(e, ep)
	if err := f.SetFaultPlan(Uniform(1.0)); err != nil {
		t.Fatal(err)
	}
	injectReads(e, ep, 4)
	e.Run()
	if len(*got) != 0 {
		t.Fatalf("received %d completions under total loss, want 0", len(*got))
	}
	if d := f.Counters().Drops[DropFaultInjected]; d != 4 {
		t.Errorf("fault drops = %d, want 4 (one per injected request)", d)
	}
}

func TestFaultLossDeterministicAcrossRuns(t *testing.T) {
	run := func() (uint64, int) {
		e := sim.NewEngine()
		f, err := New(e, topo.Mesh(3, 3), Config{}, sim.NewRNG(42))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.SetFaultPlan(Uniform(0.5)); err != nil {
			t.Fatal(err)
		}
		ep := firstEndpoint(f)
		got := attachCapture(e, ep)
		injectReads(e, ep, 20)
		e.Run()
		return f.Counters().Drops[DropFaultInjected], len(*got)
	}
	d1, c1 := run()
	d2, c2 := run()
	if d1 != d2 || c1 != c2 {
		t.Errorf("same seed diverged: drops %d vs %d, completions %d vs %d", d1, d2, c1, c2)
	}
	if d1 == 0 {
		t.Error("loss 0.5 over 20 round trips dropped nothing")
	}
}

func TestFaultDelaySlowsDeliveryAndCounts(t *testing.T) {
	arrival := func(plan FaultPlan) (sim.Time, uint64) {
		e := sim.NewEngine()
		f, err := New(e, topo.Mesh(3, 3), Config{}, sim.NewRNG(7))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.SetFaultPlan(plan); err != nil {
			t.Fatal(err)
		}
		ep := firstEndpoint(f)
		got := attachCapture(e, ep)
		injectReads(e, ep, 1)
		e.Run()
		if len(*got) != 1 {
			t.Fatalf("received %d completions, want 1", len(*got))
		}
		return (*got)[0].at, f.Counters().FaultDelays
	}
	base, baseDelays := arrival(FaultPlan{})
	slow, slowDelays := arrival(FaultPlan{Default: LinkFaults{DelayProb: 1, Delay: sim.Millisecond}})
	if baseDelays != 0 {
		t.Errorf("empty plan injected %d delays", baseDelays)
	}
	if slowDelays == 0 {
		t.Error("DelayProb=1 injected no delays")
	}
	if slow <= base {
		t.Errorf("delayed completion at %v not later than baseline %v", slow, base)
	}
}

func TestFaultFlapWindowDropsThenRecovers(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	ep := firstEndpoint(f)
	got := attachCapture(e, ep)
	lk := hostLink(t, f, ep)
	// Reads at 0, 10us, ..., 40us; the link is down during [5us, 25us),
	// killing the reads injected at 10us and 20us.
	if err := f.SetFaultPlan(FaultPlan{Flaps: []Flap{
		{Link: lk, At: sim.Time(5 * sim.Microsecond), Duration: 20 * sim.Microsecond},
	}}); err != nil {
		t.Fatal(err)
	}
	injectReads(e, ep, 5)
	e.Run()

	if len(*got) != 3 {
		t.Fatalf("received %d completions across a flap, want 3", len(*got))
	}
	c := f.Counters()
	if c.LinkFlaps != 1 {
		t.Errorf("LinkFlaps = %d, want 1", c.LinkFlaps)
	}
	if c.Drops[DropInactivePort] != 2 {
		t.Errorf("inactive-port drops = %d, want 2", c.Drops[DropInactivePort])
	}
}

func TestFaultFlapTraced(t *testing.T) {
	e, f := testFabric(t, topo.Mesh(3, 3))
	buf := &trace.Buffer{}
	f.SetTracer(trace.FilterKind(buf, trace.Fault))
	ep := firstEndpoint(f)
	if err := f.SetFaultPlan(FaultPlan{Flaps: []Flap{
		{Link: hostLink(t, f, ep), At: sim.Time(sim.Microsecond), Duration: sim.Microsecond},
	}}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if n := len(buf.Events); n != 2 {
		t.Fatalf("traced %d fault events, want 2 (down + up)", n)
	}
}

func TestSetFaultPlanValidation(t *testing.T) {
	_, f := testFabric(t, topo.Mesh(3, 3))
	if err := f.SetFaultPlan(FaultPlan{Flaps: []Flap{{Link: f.NumLinks(), At: 0, Duration: 1}}}); err == nil {
		t.Error("out-of-range flap link accepted")
	}
	if err := f.SetFaultPlan(FaultPlan{Flaps: []Flap{{Link: 0, At: 0, Duration: 0}}}); err == nil {
		t.Error("zero-duration flap accepted")
	}
	// Installing then clearing restores lossless behaviour.
	if err := f.SetFaultPlan(Uniform(1.0)); err != nil {
		t.Fatal(err)
	}
	if err := f.SetFaultPlan(FaultPlan{}); err != nil {
		t.Fatal(err)
	}
	if f.faults != nil {
		t.Error("empty plan did not uninstall fault state")
	}
}
