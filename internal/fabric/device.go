package fabric

import (
	"fmt"

	"repro/internal/asi"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Device is an instantiated fabric device: a switch or an endpoint with
// its configuration space, ports and management-plane behaviour.
type Device struct {
	f     *Fabric
	ID    topo.NodeID
	Type  asi.DeviceType
	Label string
	DSN   asi.DSN
	// Config is the device's capability storage served over PI-4.
	Config *asi.ConfigSpace

	// eng is the engine this device schedules on: the fabric's single
	// engine sequentially, its region's engine on the sharded path.
	// region and ctr are the matching partition index and per-region
	// counter block (0 and &f.counters[0] sequentially).
	eng    *sim.Engine
	region int
	ctr    *Counters

	ports   []devPort
	alive   bool
	handler Handler

	// PI-4 servicing is a single serial server per device, as profiled
	// in the paper: requests queue and are serviced one at a time in
	// T_Device each. The in-service request parks in pi4Cur and the
	// completion fires through the reusable pi4Timer, so servicing never
	// allocates a closure per request.
	pi4Queue sim.Ring[pendingPI4]
	pi4Busy  bool
	pi4Cur   pendingPI4
	pi4Timer *sim.Timer

	// routeFn is the pre-bound cut-through routing callback; freeJobs
	// pools the per-packet state it needs, so switch forwarding never
	// allocates a closure per hop.
	routeFn  sim.ArgHandler
	freeJobs *routeJob

	// electSeen deduplicates flooded election announcements.
	electSeen map[electKey]bool
	pi5Seq    uint32

	// limiter optionally meters application-traffic injection.
	limiter *rateLimiter

	// RxPackets/RxBytes count packets delivered to (consumed by) this
	// device.
	RxPackets, RxBytes uint64
}

type devPort struct {
	link   *link
	active bool
}

type pendingPI4 struct {
	req  asi.PI4
	hdr  asi.RouteHeader
	port int
	// span is the causal-trace request ID carried by the request packet
	// (copied into the completion); queuedAt stamps when the request
	// entered the service queue. Both zero unless span tracing is on.
	span     uint64
	queuedAt sim.Time
}

// routeJob is the per-packet state of one deferred cut-through routing
// decision, pooled on the device.
type routeJob struct {
	l      *link
	dirIdx int
	vc     asi.VCID
	pkt    *asi.Packet
	port   int
	next   *routeJob
}

type electKey struct {
	cand asi.DSN
	seq  uint32
}

// dsnBase offsets device serial numbers so they never collide with node
// IDs in logs.
const dsnBase asi.DSN = 0xA510_0000

func newDevice(f *Fabric, n topo.Node) (*Device, error) {
	dsn := dsnBase + asi.DSN(n.ID)
	// Endpoints are FM-capable; in this model any endpoint can host a
	// fabric manager, and election picks the winners.
	cs, err := asi.NewConfigSpace(n.Type, dsn, n.Ports, 2176, n.Type == asi.DeviceEndpoint)
	if err != nil {
		return nil, fmt.Errorf("fabric: node %s: %w", n.Label, err)
	}
	region := 0
	if f.regionOf != nil {
		region = f.regionOf[n.ID]
	}
	d := &Device{
		f:         f,
		ID:        n.ID,
		Type:      n.Type,
		Label:     n.Label,
		DSN:       dsn,
		Config:    cs,
		eng:       f.Engine,
		region:    region,
		ctr:       &f.counters[region],
		ports:     make([]devPort, n.Ports),
		alive:     true,
		electSeen: make(map[electKey]bool),
	}
	if f.group != nil {
		d.eng = f.group.Engine(region)
	}
	d.pi4Timer = d.eng.NewTimer(func(*sim.Engine) {
		if d.alive {
			d.completePI4(d.pi4Cur)
		}
		d.startNextPI4()
	})
	d.routeFn = func(_ *sim.Engine, arg any) { d.routePending(arg.(*routeJob)) }
	return d, nil
}

// Alive reports whether the device is powered and present in the fabric.
func (d *Device) Alive() bool { return d.alive }

// Ports returns the device's port count.
func (d *Device) Ports() int { return len(d.ports) }

// PortActive reports whether a port currently has a live link partner.
func (d *Device) PortActive(port int) bool {
	return port >= 0 && port < len(d.ports) && d.ports[port].active
}

// SetHandler attaches a management entity (fabric manager) to an endpoint.
func (d *Device) SetHandler(h Handler) {
	if d.Type != asi.DeviceEndpoint {
		panic("fabric: handlers attach to endpoints only")
	}
	d.handler = h
}

// setPortActive updates port state and the port-info capability blocks.
func (d *Device) setPortActive(port int, active bool) {
	if d.ports[port].active == active {
		return
	}
	d.ports[port].active = active
	info := asi.PortInfo{}
	if active {
		info = asi.PortInfo{Active: true, SpeedGbps: d.f.cfg.LinkBandwidthGbps, Width: 1}
	}
	if err := d.Config.SetPortState(port, info); err != nil {
		panic(err) // port index is internally generated
	}
}

// Inject transmits a packet from an endpoint into the fabric. Management
// entities use it to source PI-4 requests, PI-5 events and election
// announcements. Endpoints have a single port (port 0 in this model).
func (d *Device) Inject(pkt *asi.Packet) {
	if d.Type != asi.DeviceEndpoint {
		panic("fabric: Inject is for endpoints; switches forward only")
	}
	d.f.traceEvent(trace.Inject, d, 0, pkt, "")
	if d.limiter != nil && limited(pkt) {
		d.injectLimited(pkt)
		return
	}
	d.transmit(0, pkt)
}

// transmit puts pkt on the wire out the given port.
func (d *Device) transmit(port int, pkt *asi.Packet) {
	if !d.alive {
		d.f.dropTraced(DropDeadDevice, d, port, pkt)
		return
	}
	p := &d.ports[port]
	if p.link == nil || !p.active {
		d.f.dropTraced(DropInactivePort, d, port, pkt)
		return
	}
	p.link.send(d, pkt)
}

// arrive is called by the link when a packet has fully arrived at this
// device's port. The input buffer slot is returned to the sender once the
// device has routed the packet onward or consumed it.
func (d *Device) arrive(port int, vc asi.VCID, pkt *asi.Packet, l *link, dirIdx int) {
	e := d.eng
	if !d.alive || !l.up {
		d.f.dropTraced(DropDeadDevice, d, port, pkt)
		l.returnCredit(dirIdx, vc)
		return
	}
	switch d.Type {
	case asi.DeviceEndpoint:
		// Endpoints sink everything addressed to them.
		l.returnCredit(dirIdx, vc)
		d.consume(port, pkt)
	case asi.DeviceSwitch:
		// Cut-through routing decision after the header latency.
		j := d.freeJobs
		if j == nil {
			j = &routeJob{}
		} else {
			d.freeJobs = j.next
		}
		j.l, j.dirIdx, j.vc, j.pkt, j.port = l, dirIdx, vc, pkt, port
		e.AfterArg(d.f.cfg.SwitchLatency, d.routeFn, j)
	}
}

// routePending completes a deferred cut-through routing decision: the
// input buffer slot goes back to the sender and the packet is routed (or
// dropped, if the switch died while the header was in flight).
func (d *Device) routePending(j *routeJob) {
	l, dirIdx, vc, pkt, port := j.l, j.dirIdx, j.vc, j.pkt, j.port
	j.l, j.pkt = nil, nil
	j.next = d.freeJobs
	d.freeJobs = j
	l.returnCredit(dirIdx, vc)
	if !d.alive {
		d.f.dropTraced(DropDeadDevice, d, port, pkt)
		return
	}
	d.routeAtSwitch(port, pkt)
}

// routeAtSwitch applies turn-pool routing (or election flooding) to a
// packet at a switch.
func (d *Device) routeAtSwitch(port int, pkt *asi.Packet) {
	if pkt.Header.PI == asi.PIElection {
		d.floodElection(port, pkt)
		return
	}
	if pkt.Header.Multicast {
		d.multicastForward(port, pkt)
		return
	}
	dec, err := route.SwitchRoute(&pkt.Header, len(d.ports), port)
	if err != nil {
		d.f.dropTraced(DropRouteError, d, port, pkt)
		return
	}
	if dec.Deliver {
		d.consume(port, pkt)
		return
	}
	d.transmit(dec.Out, pkt)
}

// floodElection forwards an election announcement on every active port
// except the arrival port, once per (candidate, sequence).
func (d *Device) floodElection(port int, pkt *asi.Packet) {
	el, ok := pkt.Payload.(asi.Election)
	if !ok {
		d.f.dropTraced(DropRouteError, d, port, pkt)
		return
	}
	key := electKey{el.Candidate, el.Sequence}
	if d.electSeen[key] || el.TTL == 0 {
		return
	}
	d.electSeen[key] = true
	el.TTL--
	for p := range d.ports {
		if p == port || !d.ports[p].active {
			continue
		}
		out := pkt.Clone()
		out.Payload = el
		d.transmit(p, out)
	}
}

// multicastForward replicates a multicast packet along the group's
// forwarding-table ports, excluding the arrival port. The table is part
// of the configuration space, programmed by the FM; an unknown group
// drops the packet, as hardware with an empty MFT entry must.
func (d *Device) multicastForward(port int, pkt *asi.Packet) {
	if int(pkt.Header.MGID) >= asi.MFTGroups {
		d.f.dropTraced(DropRouteError, d, port, pkt)
		return
	}
	blocks, err := d.Config.Read(asi.MFTEntryOffset(len(d.ports), pkt.Header.MGID), 1)
	if err != nil || blocks[0] == 0 {
		d.f.dropTraced(DropRouteError, d, port, pkt)
		return
	}
	mask := blocks[0]
	for p := 0; p < len(d.ports) && p < 32; p++ {
		if p == port || mask&(1<<uint(p)) == 0 {
			continue
		}
		d.transmit(p, pkt.Clone())
	}
}

// consume delivers a packet to this device: PI-4 requests enter the
// config-space service queue; everything else goes to the attached
// management entity (on endpoints) or is discarded.
func (d *Device) consume(port int, pkt *asi.Packet) {
	d.RxPackets++
	d.RxBytes += uint64(pkt.WireSize())
	d.ctr.Delivered[pkt.Header.PI]++
	d.f.traceEvent(trace.Deliver, d, port, pkt, "")
	if p4, ok := pkt.Payload.(asi.PI4); ok && !p4.Op.IsCompletion() {
		pend := pendingPI4{req: p4, hdr: pkt.Header, port: port}
		if d.f.spans != nil {
			pend.span = pkt.Span
			pend.queuedAt = d.eng.Now()
		}
		d.servicePI4(pend)
		return
	}
	if d.handler != nil {
		d.handler.HandlePacket(port, pkt)
		return
	}
	switch pkt.Payload.(type) {
	case asi.AppData:
		// Plain data sink.
	case asi.Election:
		// Non-candidate endpoint; announcement dies here.
	default:
		d.f.dropTraced(DropNoHandler, d, port, pkt)
	}
}

// servicePI4 queues a PI-4 request on the device's serial config-space
// server and starts it if idle.
func (d *Device) servicePI4(p pendingPI4) {
	d.pi4Queue.Push(p)
	if !d.pi4Busy {
		d.startNextPI4()
	}
}

func (d *Device) startNextPI4() {
	if d.pi4Queue.Len() == 0 {
		d.pi4Busy = false
		return
	}
	d.pi4Busy = true
	d.pi4Cur = d.pi4Queue.Pop()
	d.pi4Timer.ScheduleAfter(d.f.deviceService())
}

// completePI4 executes the request against the config space and sends the
// completion back the way the request came (header reversed, same port).
func (d *Device) completePI4(p pendingPI4) {
	resp := asi.PI4{Tag: p.req.Tag, Offset: p.req.Offset, Count: p.req.Count, ArrivalPort: uint8(p.port)}
	switch p.req.Op {
	case asi.PI4ReadRequest:
		data, err := d.Config.Read(p.req.Offset, p.req.Count)
		if err != nil {
			resp.Op = asi.PI4ReadCompletionError
		} else {
			resp.Op = asi.PI4ReadCompletionData
			resp.Data = data
		}
	case asi.PI4WriteRequest:
		if err := d.Config.Write(p.req.Offset, p.req.Data); err != nil {
			resp.Op = asi.PI4WriteCompletionError
		} else {
			resp.Op = asi.PI4WriteCompletion
		}
	case asi.PI4ClaimRequest:
		resp.Op, resp.Data = d.serviceClaim(p.req)
	default:
		resp.Op = asi.PI4ReadCompletionError
	}
	out := &asi.Packet{Header: p.hdr.Reverse(), Payload: resp}
	out.Header.PI = asi.PI4DeviceManagement
	if d.f.spans != nil && p.span != 0 {
		// Device-side timeline: queue wait (if any) then the T_Device
		// service interval, both under the owning request; the completion
		// carries the span ID back so the return hops attribute too.
		out.Span = p.span
		now := d.eng.Now()
		start := now.Add(-d.f.deviceService())
		if p.queuedAt < start {
			d.f.spanComplete(span.KindDevQueue, out, p.queuedAt, start, d, p.port)
		}
		d.f.spanComplete(span.KindDevService, out, start, now, d, p.port)
	}
	d.transmit(p.port, out)
}

// serviceClaim atomically resolves a distributed-discovery ownership
// claim: Data = [generation, claimant]. A newer generation overwrites the
// stored owner; the completion always carries the resulting
// [generation, owner], so the requester learns whether it won.
func (d *Device) serviceClaim(req asi.PI4) (asi.PI4Op, []uint32) {
	if len(req.Data) < int(asi.OwnerBlocks) {
		return asi.PI4ReadCompletionError, nil
	}
	off := asi.OwnerOffset(len(d.ports))
	cur, err := d.Config.Read(off, asi.OwnerBlocks)
	if err != nil {
		return asi.PI4ReadCompletionError, nil
	}
	if req.Data[0] > cur[0] {
		if err := d.Config.Write(off, req.Data[:asi.OwnerBlocks]); err != nil {
			return asi.PI4ReadCompletionError, nil
		}
		cur = req.Data[:asi.OwnerBlocks]
	}
	out := make([]uint32, asi.OwnerBlocks)
	copy(out, cur)
	return asi.PI4ClaimCompletion, out
}

// LookupPath scans an endpoint's FM-programmed path table for the route
// to a destination endpoint. It models the local table consultation an
// ASI endpoint performs when sourcing unicast traffic.
func (d *Device) LookupPath(dst asi.DSN) (pool uint64, ptr uint8, ok bool) {
	if d.Type != asi.DeviceEndpoint {
		return 0, 0, false
	}
	for i := 0; i < asi.PathTableEntries; i++ {
		blocks, err := d.Config.Read(asi.PathEntryOffset(len(d.ports), i), asi.PathTableEntryBlocks)
		if err != nil {
			return 0, 0, false
		}
		entryDst, pool, ptr, valid := asi.DecodePathEntry(blocks)
		if !valid {
			return 0, 0, false // table is dense; first invalid slot ends it
		}
		if entryDst == dst {
			return pool, ptr, true
		}
	}
	return 0, 0, false
}

// EmitPI5 sends a PI-5 event toward the FM using the event route the FM
// programmed into this device's config space. Without a valid route the
// event is silently unreportable (the state before first discovery).
func (d *Device) EmitPI5(code asi.PI5EventCode, port int) {
	blocks, err := d.Config.Read(asi.EventRouteOffset(len(d.ports)), asi.EventRouteBlocks)
	if err != nil {
		return
	}
	pool, ptr, valid := asi.DecodeEventRoute(blocks)
	if !valid {
		return
	}
	d.pi5Seq++
	pkt := &asi.Packet{
		Header: asi.RouteHeader{
			TurnPool:    pool,
			TurnPointer: ptr,
			PI:          asi.PI5EventReporting,
			TC:          asi.TCManagement,
		},
		Payload: asi.PI5{Code: code, Port: uint8(port), Reporter: d.DSN, Sequence: d.pi5Seq},
	}
	// The event leaves through any active port along its source route.
	// For endpoints that is port 0; switches source the packet at the
	// first hop of the encoded route, which by construction starts at
	// this device, so transmit out the port the route's first turn
	// selects. Switch-sourced PI-5 uses the same turn consumption as a
	// forwarded packet would, with an assumed virtual ingress port.
	if d.Type == asi.DeviceEndpoint {
		d.transmit(0, pkt)
		return
	}
	dec, err := route.SwitchRoute(&pkt.Header, len(d.ports), asi.SourceVirtualIngress)
	if err != nil || dec.Deliver {
		d.f.dropTraced(DropRouteError, d, asi.SourceVirtualIngress, pkt)
		return
	}
	d.transmit(dec.Out, pkt)
}
