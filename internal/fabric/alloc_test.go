package fabric

import (
	"testing"

	"repro/internal/asi"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topo"
)

// Zero-allocation regression tests for the packet hot path: with no
// tracer attached, steady-state injection, per-hop transmit (link.kick),
// switch forwarding and delivery must not allocate. The pools involved —
// the engine's event arena, the per-half-link flight pool, the per-device
// route-job pool and the VC rings — all recycle after warmup.

func TestLinkKickSteadyStateZeroAlloc(t *testing.T) {
	tp := topo.Mesh(3, 3)
	e := sim.NewEngine()
	f, err := New(e, tp, Config{}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	eps := tp.Endpoints()
	src := f.Device(eps[0])
	dst := f.Device(eps[len(eps)-1])
	p := mustPath(t, tp, eps[0], eps[len(eps)-1])
	hdr, err := route.Header(p, asi.PIApplication)
	if err != nil {
		t.Fatal(err)
	}
	// Box the payload once: interface conversion of a fresh AppData value
	// is the test's allocation, not the fabric's.
	payload := asi.Payload(asi.AppData{Bytes: 256})

	// Warm every pool on the path: arena, flights, route jobs, rings.
	before := dst.RxPackets
	for i := 0; i < 32; i++ {
		src.Inject(&asi.Packet{Header: hdr, Payload: payload})
		e.Run()
	}
	if dst.RxPackets != before+32 {
		t.Fatalf("delivered %d of 32 warmup packets", dst.RxPackets-before)
	}

	allocs := testing.AllocsPerRun(200, func() {
		src.Inject(&asi.Packet{Header: hdr, Payload: payload})
		e.Run()
	})
	// The packet built inside the measured loop is the only permitted
	// allocation: the fabric itself must add nothing.
	if allocs > 1 {
		t.Errorf("steady-state inject/forward/deliver allocates %.1f per run, want <= 1 (the test's own packet)", allocs)
	}
}

// TestLinkKickReusedPacketZeroAlloc is the stricter variant: re-injecting
// a caller-owned packet moves zero bytes to the heap.
func TestLinkKickReusedPacketZeroAlloc(t *testing.T) {
	tp := topo.Mesh(3, 3)
	e := sim.NewEngine()
	f, err := New(e, tp, Config{}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	eps := tp.Endpoints()
	src := f.Device(eps[0])
	p := mustPath(t, tp, eps[0], eps[len(eps)-1])
	hdr, err := route.Header(p, asi.PIApplication)
	if err != nil {
		t.Fatal(err)
	}
	pkt := &asi.Packet{Header: hdr, Payload: asi.AppData{Bytes: 256}}
	for i := 0; i < 32; i++ {
		reinject(src, pkt, hdr)
		e.Run()
	}
	allocs := testing.AllocsPerRun(200, func() {
		reinject(src, pkt, hdr)
		e.Run()
	})
	if allocs != 0 {
		t.Errorf("steady-state kick with tracing off allocates %.1f per run, want 0", allocs)
	}
}

// reinject restores the header consumed by turn-pool routing and puts the
// packet back on the wire.
func reinject(src *Device, pkt *asi.Packet, hdr asi.RouteHeader) {
	pkt.Header = hdr
	src.Inject(pkt)
}

// mustPath computes a source route between two endpoints over the static
// topology.
func mustPath(t *testing.T, tp *topo.Topology, src, dst topo.NodeID) route.Path {
	t.Helper()
	p := bfsPath(tp, src, dst)
	if p == nil {
		t.Fatalf("no path %d -> %d", src, dst)
	}
	return p
}

// TestLinkKickSpanTaggedZeroAlloc pins the span tracer's disabled cost at
// zero: a packet carrying a causal-trace request ID (pkt.Span != 0)
// crosses the fabric with no span tracer attached, and every hook —
// queue stamping, wire spans, stall instants, drop instants — must
// vanish behind the nil guard without a single allocation.
func TestLinkKickSpanTaggedZeroAlloc(t *testing.T) {
	tp := topo.Mesh(3, 3)
	e := sim.NewEngine()
	f, err := New(e, tp, Config{}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	eps := tp.Endpoints()
	src := f.Device(eps[0])
	p := mustPath(t, tp, eps[0], eps[len(eps)-1])
	hdr, err := route.Header(p, asi.PIApplication)
	if err != nil {
		t.Fatal(err)
	}
	pkt := &asi.Packet{Header: hdr, Payload: asi.AppData{Bytes: 256}, Span: 7}
	for i := 0; i < 32; i++ {
		reinject(src, pkt, hdr)
		e.Run()
	}
	allocs := testing.AllocsPerRun(200, func() {
		reinject(src, pkt, hdr)
		e.Run()
	})
	if allocs != 0 {
		t.Errorf("steady-state kick of a span-tagged packet with spans off allocates %.1f per run, want 0", allocs)
	}
}

// TestLinkKickTelemetryEnabledZeroAlloc repeats the strict reused-packet
// hot-path check with telemetry recording ON: per-link/per-VC counters
// are indexed increments into pre-sized slices, so enabling them must
// not cost a single allocation either.
func TestLinkKickTelemetryEnabledZeroAlloc(t *testing.T) {
	tp := topo.Mesh(3, 3)
	e := sim.NewEngine()
	f, err := New(e, tp, Config{}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	f.EnableTelemetry(reg)
	eps := tp.Endpoints()
	src := f.Device(eps[0])
	p := mustPath(t, tp, eps[0], eps[len(eps)-1])
	hdr, err := route.Header(p, asi.PIApplication)
	if err != nil {
		t.Fatal(err)
	}
	pkt := &asi.Packet{Header: hdr, Payload: asi.AppData{Bytes: 256}}
	for i := 0; i < 32; i++ {
		reinject(src, pkt, hdr)
		e.Run()
	}
	allocs := testing.AllocsPerRun(200, func() {
		reinject(src, pkt, hdr)
		e.Run()
	})
	if allocs != 0 {
		t.Errorf("steady-state kick with telemetry on allocates %.1f per run, want 0", allocs)
	}
	// The counters actually counted: every hop of every injection.
	s := reg.Snapshot()
	var linkTx uint64
	for _, v := range s.Vectors {
		if v.Name == MetricLinkTx {
			linkTx += v.Value
		}
	}
	if linkTx == 0 {
		t.Error("telemetry enabled but no link transmissions recorded")
	}
}
