// Package route implements ASI turn-pool source routing: the arithmetic a
// switch performs on the routing header to select an output port, and the
// path representation the fabric manager uses to build turn pools as its
// view of the topology grows.
//
// ASI unicast routing is relative: each switch on the path consumes a
// "turn" from the packet's turn pool, where the turn is the clockwise
// distance from the ingress port to the egress port, minus one. The same
// pool read in the opposite direction (D bit set) retraces the path, which
// is how PI-4 completions return without the responding device knowing any
// topology.
package route

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/asi"
)

// Hop is one switch traversal on a source-routed path, in forward
// direction. Ports is the switch's port count (which fixes the turn width),
// In the ingress port and Out the egress port.
type Hop struct {
	Ports int
	In    int
	Out   int
}

// Path is a sequence of switch traversals from source endpoint to
// destination device. The destination itself contributes no hop: a packet
// arriving at a device with an exhausted pool is delivered locally.
type Path []Hop

// TurnWidth returns the number of turn-pool bits a switch with the given
// port count consumes: ceil(log2(ports)), minimum 1.
func TurnWidth(ports int) int {
	if ports <= 2 {
		return 1
	}
	return bits.Len(uint(ports - 1))
}

// Turn computes the turn value encoding the in->out traversal of a switch
// with the given port count: (out - in - 1) mod ports.
func Turn(ports, in, out int) int {
	t := out - in - 1
	return ((t % ports) + ports) % ports
}

// OutPort inverts Turn in the forward direction.
func OutPort(ports, in, turn int) int {
	return (in + 1 + turn) % ports
}

// backPort inverts Turn in the backward direction: a response entering the
// port the request left through exits the port the request entered.
func backPort(ports, in, turn int) int {
	t := in - 1 - turn
	return ((t % ports) + ports) % ports
}

// Encode packs the path into a turn pool. The first hop occupies the most
// significant used bits so that forward traversal consumes the pool top
// down. It returns the pool and the initial turn pointer (the number of
// used bits). Paths whose turns exceed the pool width are rejected — the
// caller (the FM) must then discover the device through a shorter path.
func Encode(p Path) (pool uint64, ptr uint8, err error) {
	total := 0
	for i, h := range p {
		// In == Out is permitted: it encodes the maximal turn (ports-1),
		// which sends a packet back out its ingress port — used by
		// switch-sourced event routes whose virtual ingress happens to
		// coincide with the first egress.
		if h.Ports < 2 || h.In < 0 || h.In >= h.Ports || h.Out < 0 || h.Out >= h.Ports {
			return 0, 0, fmt.Errorf("route: hop %d invalid: %+v", i, h)
		}
		total += TurnWidth(h.Ports)
	}
	if total > asi.TurnPoolBits {
		return 0, 0, fmt.Errorf("route: path needs %d turn bits, pool holds %d", total, asi.TurnPoolBits)
	}
	for _, h := range p {
		w := TurnWidth(h.Ports)
		pool = pool<<w | uint64(Turn(h.Ports, h.In, h.Out))
	}
	return pool, uint8(total), nil
}

// Header builds a forward route header for the path with the given PI and
// management traffic class already applied.
func Header(p Path, pi asi.PI) (asi.RouteHeader, error) {
	pool, ptr, err := Encode(p)
	if err != nil {
		return asi.RouteHeader{}, err
	}
	return asi.RouteHeader{
		TurnPool:    pool,
		TurnPointer: ptr,
		PI:          pi,
		TC:          asi.TCManagement,
	}, nil
}

// Reverse returns the path a response travels: the hops in opposite order
// with ingress and egress swapped. The FM uses this to program event routes
// (device -> FM) from its own FM -> device paths.
func Reverse(p Path) Path {
	r := make(Path, len(p))
	for i, h := range p {
		r[len(p)-1-i] = Hop{Ports: h.Ports, In: h.Out, Out: h.In}
	}
	return r
}

// Extend returns a new path that continues p through one more switch. It
// does not mutate p, so sibling extensions of a shared prefix are safe —
// exactly the access pattern of parallel discovery.
func Extend(p Path, hop Hop) Path {
	out := make(Path, len(p)+1)
	copy(out, p)
	out[len(p)] = hop
	return out
}

// Bits returns the total number of turn-pool bits the path consumes.
func (p Path) Bits() int {
	n := 0
	for _, h := range p {
		n += TurnWidth(h.Ports)
	}
	return n
}

// String renders the path as "in->out" per hop for traces.
func (p Path) String() string {
	if len(p) == 0 {
		return "<direct>"
	}
	var b strings.Builder
	for i, h := range p {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d->%d", h.In, h.Out)
	}
	return b.String()
}

// Decision is the outcome of routing a packet at a switch.
type Decision struct {
	// Deliver means the packet terminates at this switch.
	Deliver bool
	// Out is the egress port when Deliver is false.
	Out int
}

// SwitchRoute performs the routing-header processing of an ASI switch: it
// examines (and on forwarding, advances) the turn pointer and returns
// either a local-delivery decision or the egress port. ports is the
// switch's port count and in the packet's ingress port. Malformed headers
// (exhausted pool mid-path, turn values outside the port range) yield an
// error; the switch then drops the packet, as cut-through hardware with no
// route to the originator must.
func SwitchRoute(h *asi.RouteHeader, ports, in int) (Decision, error) {
	w := uint8(TurnWidth(ports))
	mask := uint64(1)<<w - 1
	if !h.Dir {
		if h.TurnPointer == 0 {
			return Decision{Deliver: true}, nil
		}
		if h.TurnPointer < w {
			return Decision{}, fmt.Errorf("route: forward pool exhausted: %d bits left, need %d", h.TurnPointer, w)
		}
		h.TurnPointer -= w
		turn := int(h.TurnPool >> h.TurnPointer & mask)
		if turn >= ports {
			h.TurnPointer += w // restore for diagnostics
			return Decision{}, fmt.Errorf("route: turn %d out of range for %d-port switch", turn, ports)
		}
		return Decision{Out: OutPort(ports, in, turn)}, nil
	}
	if int(h.TurnPointer)+int(w) > asi.TurnPoolBits {
		return Decision{}, fmt.Errorf("route: backward pool exhausted at bit %d", h.TurnPointer)
	}
	turn := int(h.TurnPool >> h.TurnPointer & mask)
	if turn >= ports {
		return Decision{}, fmt.Errorf("route: backward turn %d out of range for %d-port switch", turn, ports)
	}
	h.TurnPointer += w
	return Decision{Out: backPort(ports, in, turn)}, nil
}
