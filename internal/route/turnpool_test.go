package route

import (
	"testing"
	"testing/quick"

	"repro/internal/asi"
	"repro/internal/sim"
)

func TestTurnWidth(t *testing.T) {
	cases := []struct{ ports, want int }{
		{2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4}, {17, 5}, {32, 5}, {256, 8},
	}
	for _, c := range cases {
		if got := TurnWidth(c.ports); got != c.want {
			t.Errorf("TurnWidth(%d) = %d, want %d", c.ports, got, c.want)
		}
	}
}

func TestTurnOutPortInverse(t *testing.T) {
	for ports := 2; ports <= 32; ports++ {
		for in := 0; in < ports; in++ {
			for out := 0; out < ports; out++ {
				if in == out {
					continue
				}
				turn := Turn(ports, in, out)
				if turn < 0 || turn >= ports {
					t.Fatalf("Turn(%d,%d,%d) = %d out of range", ports, in, out, turn)
				}
				if got := OutPort(ports, in, turn); got != out {
					t.Fatalf("OutPort(%d,%d,%d) = %d, want %d", ports, in, turn, got, out)
				}
				if got := backPort(ports, out, turn); got != in {
					t.Fatalf("backPort(%d,%d,%d) = %d, want %d", ports, out, turn, got, in)
				}
			}
		}
	}
}

// randomPath builds a valid random path of the given length over 16-port
// switches.
func randomPath(rng *sim.RNG, hops int) Path {
	p := make(Path, hops)
	for i := range p {
		ports := []int{4, 8, 16}[rng.Intn(3)]
		in := rng.Intn(ports)
		out := rng.Intn(ports)
		for out == in {
			out = rng.Intn(ports)
		}
		p[i] = Hop{Ports: ports, In: in, Out: out}
	}
	return p
}

// walkForward simulates forward traversal through the path's switches and
// reports whether the packet is delivered exactly at the end with the
// expected egress ports, returning the header as the destination sees it.
func walkForward(t *testing.T, p Path, h asi.RouteHeader) asi.RouteHeader {
	t.Helper()
	for i, hop := range p {
		d, err := SwitchRoute(&h, hop.Ports, hop.In)
		if err != nil {
			t.Fatalf("hop %d: %v", i, err)
		}
		if d.Deliver {
			t.Fatalf("hop %d: premature delivery", i)
		}
		if d.Out != hop.Out {
			t.Fatalf("hop %d: routed to port %d, want %d", i, d.Out, hop.Out)
		}
	}
	if h.TurnPointer != 0 {
		t.Fatalf("pool not exhausted at destination: %d bits left", h.TurnPointer)
	}
	return h
}

func TestForwardTraversalFollowsPath(t *testing.T) {
	rng := sim.NewRNG(1)
	for trial := 0; trial < 200; trial++ {
		p := randomPath(rng, 1+rng.Intn(10))
		if p.Bits() > asi.TurnPoolBits {
			continue
		}
		h, err := Header(p, asi.PI4DeviceManagement)
		if err != nil {
			t.Fatal(err)
		}
		walkForward(t, p, h)
	}
}

func TestBackwardTraversalRetracesPath(t *testing.T) {
	rng := sim.NewRNG(2)
	for trial := 0; trial < 200; trial++ {
		p := randomPath(rng, 1+rng.Intn(10))
		if p.Bits() > asi.TurnPoolBits {
			continue
		}
		h, err := Header(p, asi.PI4DeviceManagement)
		if err != nil {
			t.Fatal(err)
		}
		arrived := walkForward(t, p, h)
		// The destination reverses the header and sends the response out
		// the port it arrived on; switches are visited in reverse order.
		back := arrived.Reverse()
		for i := len(p) - 1; i >= 0; i-- {
			hop := p[i]
			d, err := SwitchRoute(&back, hop.Ports, hop.Out)
			if err != nil {
				t.Fatalf("reverse hop %d: %v", i, err)
			}
			if d.Deliver {
				t.Fatalf("reverse hop %d: premature delivery", i)
			}
			if d.Out != hop.In {
				t.Fatalf("reverse hop %d: routed to port %d, want %d", i, d.Out, hop.In)
			}
		}
		if int(back.TurnPointer) != p.Bits() {
			t.Fatalf("backward pointer ended at %d, want %d", back.TurnPointer, p.Bits())
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, hops uint8) bool {
		rng := sim.NewRNG(seed)
		p := randomPath(rng, int(hops%12)+1)
		if p.Bits() > asi.TurnPoolBits {
			return true // vacuous: encoding correctly refuses below
		}
		h, err := Header(p, asi.PI5EventReporting)
		if err != nil {
			return false
		}
		// Forward walk.
		for _, hop := range p {
			d, err := SwitchRoute(&h, hop.Ports, hop.In)
			if err != nil || d.Deliver || d.Out != hop.Out {
				return false
			}
		}
		if h.TurnPointer != 0 {
			return false
		}
		// Backward walk.
		back := h.Reverse()
		for i := len(p) - 1; i >= 0; i-- {
			hop := p[i]
			d, err := SwitchRoute(&back, hop.Ports, hop.Out)
			if err != nil || d.Deliver || d.Out != hop.In {
				return false
			}
		}
		return int(back.TurnPointer) == p.Bits()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEncodeRejectsInvalidHops(t *testing.T) {
	bad := []Path{
		{{Ports: 1, In: 0, Out: 0}},
		{{Ports: 4, In: -1, Out: 2}},
		{{Ports: 4, In: 0, Out: 4}},
	}
	for _, p := range bad {
		if _, _, err := Encode(p); err == nil {
			t.Errorf("Encode(%v) accepted", p)
		}
	}
	// In == Out encodes the maximal turn and is legal (virtual-source
	// hops in event routes).
	if _, _, err := Encode(Path{{Ports: 4, In: 2, Out: 2}}); err != nil {
		t.Errorf("self-turn hop rejected: %v", err)
	}
}

func TestEncodeRejectsOverlongPath(t *testing.T) {
	// 17 hops of 16-port switches need 68 bits > 64.
	p := make(Path, 17)
	for i := range p {
		p[i] = Hop{Ports: 16, In: 0, Out: 1}
	}
	if _, _, err := Encode(p); err == nil {
		t.Error("overlong path accepted")
	}
	// 16 hops exactly fit.
	if _, _, err := Encode(p[:16]); err != nil {
		t.Errorf("16-hop path rejected: %v", err)
	}
}

func TestEmptyPathDeliversImmediately(t *testing.T) {
	h, err := Header(nil, asi.PI4DeviceManagement)
	if err != nil {
		t.Fatal(err)
	}
	if h.TurnPointer != 0 {
		t.Fatalf("empty path pointer = %d", h.TurnPointer)
	}
	d, err := SwitchRoute(&h, 16, 3)
	if err != nil || !d.Deliver {
		t.Errorf("empty-pool forward packet not delivered at first switch: %+v %v", d, err)
	}
}

func TestSwitchRouteErrors(t *testing.T) {
	// Forward with too few bits for this switch's width.
	h := asi.RouteHeader{TurnPool: 1, TurnPointer: 2}
	if _, err := SwitchRoute(&h, 16, 0); err == nil {
		t.Error("underflowing forward pool accepted")
	}
	// Forward turn out of range: 10-port switch, width 4, turn 15.
	h = asi.RouteHeader{TurnPool: 0xf, TurnPointer: 4}
	if _, err := SwitchRoute(&h, 10, 0); err == nil {
		t.Error("out-of-range forward turn accepted")
	}
	if h.TurnPointer != 4 {
		t.Errorf("failed route mutated pointer to %d", h.TurnPointer)
	}
	// Backward overflow.
	h = asi.RouteHeader{Dir: true, TurnPointer: asi.TurnPoolBits}
	if _, err := SwitchRoute(&h, 16, 0); err == nil {
		t.Error("overflowing backward pool accepted")
	}
	// Backward turn out of range.
	h = asi.RouteHeader{Dir: true, TurnPool: 0xf, TurnPointer: 0}
	if _, err := SwitchRoute(&h, 10, 0); err == nil {
		t.Error("out-of-range backward turn accepted")
	}
}

func TestReverse(t *testing.T) {
	p := Path{{Ports: 16, In: 2, Out: 7}, {Ports: 4, In: 1, Out: 3}}
	r := Reverse(p)
	want := Path{{Ports: 4, In: 3, Out: 1}, {Ports: 16, In: 7, Out: 2}}
	if len(r) != len(want) {
		t.Fatalf("Reverse length %d", len(r))
	}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("Reverse[%d] = %+v, want %+v", i, r[i], want[i])
		}
	}
	if rr := Reverse(r); rr[0] != p[0] || rr[1] != p[1] {
		t.Error("double Reverse is not identity")
	}
}

func TestReverseRoundTripProperty(t *testing.T) {
	f := func(seed uint64, hops uint8) bool {
		p := randomPath(sim.NewRNG(seed), int(hops%8)+1)
		rr := Reverse(Reverse(p))
		for i := range p {
			if rr[i] != p[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExtendDoesNotAliasPrefix(t *testing.T) {
	base := Path{{Ports: 16, In: 0, Out: 1}}
	a := Extend(base, Hop{Ports: 16, In: 2, Out: 3})
	b := Extend(base, Hop{Ports: 16, In: 4, Out: 5})
	if a[1] == b[1] {
		t.Fatal("test setup: extensions identical")
	}
	if a[0] != base[0] || b[0] != base[0] {
		t.Error("Extend corrupted shared prefix")
	}
	if len(base) != 1 {
		t.Error("Extend mutated base length")
	}
}

func TestPathString(t *testing.T) {
	if Path(nil).String() != "<direct>" {
		t.Error("empty path String")
	}
	p := Path{{Ports: 16, In: 0, Out: 3}, {Ports: 16, In: 1, Out: 2}}
	if p.String() != "0->3 1->2" {
		t.Errorf("String() = %q", p.String())
	}
}

func TestBits(t *testing.T) {
	p := Path{{Ports: 16, In: 0, Out: 1}, {Ports: 4, In: 0, Out: 1}, {Ports: 2, In: 0, Out: 1}}
	if p.Bits() != 4+2+1 {
		t.Errorf("Bits() = %d, want 7", p.Bits())
	}
}
