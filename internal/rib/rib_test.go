package rib

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/asi"
	"repro/internal/core"
)

// lineDB builds a synthetic discovery database: a chain of n switches
// (DSN 2..n+1, 4 ports) hanging off host endpoint DSN 1, with the last
// `tail` switches omitted — the shape of a fabric mid-churn.
func lineDB(n, tail int) *core.DB {
	db := core.NewDB(1)
	db.AddNode(&core.Node{DSN: 1, Type: asi.DeviceEndpoint, Ports: 1})
	for i := 0; i < n-tail; i++ {
		dsn := asi.DSN(2 + i)
		db.AddNode(&core.Node{DSN: dsn, Type: asi.DeviceSwitch, Ports: 4})
		if i == 0 {
			db.AddLink(core.Link{A: 1, APort: 0, B: dsn, BPort: 0})
		} else {
			db.AddLink(core.Link{A: dsn - 1, APort: 1, B: dsn, BPort: 0})
		}
	}
	return db
}

func TestInstallAdvancesGenerations(t *testing.T) {
	r := New(Config{})
	if got := r.Current().Gen; got != 0 {
		t.Fatalf("fresh RIB at generation %d", got)
	}
	gen, d := r.Install(lineDB(3, 0))
	if gen != 1 {
		t.Errorf("first install produced generation %d", gen)
	}
	if len(d.AddedDevices) != 4 || len(d.AddedLinks) != 3 {
		t.Errorf("install diff %v, want +4 devices +3 links", d)
	}
	// Shrink the chain by one switch: one device and one link vanish.
	gen, d = r.Install(lineDB(3, 1))
	if gen != 2 {
		t.Errorf("second install produced generation %d", gen)
	}
	if len(d.RemovedDevices) != 1 || len(d.RemovedLinks) != 1 {
		t.Errorf("shrink diff %v, want -1 device -1 link", d)
	}
	if s := r.Stats(); s.Gen != 2 || s.Installs != 2 {
		t.Errorf("stats %+v", s)
	}
}

// The installed snapshot is isolated from the caller's database: mutating
// the source after Install must not change the served state.
func TestInstallSnapshotIsolation(t *testing.T) {
	r := New(Config{})
	db := lineDB(4, 0)
	r.Install(db)
	before := r.Current().Canonical("/")
	db.RemoveNode(3)
	db.AddNode(&core.Node{DSN: 99, Type: asi.DeviceSwitch, Ports: 8})
	if got := r.Current().Canonical("/"); !bytes.Equal(got, before) {
		t.Error("mutating the installed database changed the published snapshot")
	}
}

// Unchanged leaves share their encoded bytes across generations (the
// copy-on-write contract that makes serving thousands of readers cheap).
func TestSnapshotLeafSharing(t *testing.T) {
	r := New(Config{})
	r.Install(lineDB(4, 0))
	prev := r.Current()
	r.Install(lineDB(4, 1))
	cur := r.Current()
	path := fmt.Sprintf("%s%d", PathSwitches, 2)
	a, ok1 := prev.leaves[path]
	b, ok2 := cur.leaves[path]
	if !ok1 || !ok2 {
		t.Fatalf("leaf %s missing (prev %v, cur %v)", path, ok1, ok2)
	}
	if &a[0] != &b[0] {
		t.Error("unchanged leaf was re-encoded instead of shared")
	}
}

// A subscriber that consumes its stream sees initial sync then one delta
// per install, and its replayed state is byte-identical to the live
// snapshot at every generation boundary.
func TestSubscribeSyncThenDeltas(t *testing.T) {
	r := New(Config{})
	r.Install(lineDB(5, 2))
	sub := r.Subscribe("/")
	defer sub.Close()
	rep := NewReplayer()

	first := <-sub.Updates()
	if first.Type != SyncBatch || first.Gen != 1 {
		t.Fatalf("first batch %s gen %d, want sync gen 1", first.Type, first.Gen)
	}
	if err := rep.Apply(first); err != nil {
		t.Fatal(err)
	}
	for tail := 1; tail >= 0; tail-- {
		r.Install(lineDB(5, tail))
		b := <-sub.Updates()
		if b.Type != DeltaBatch {
			t.Fatalf("batch type %s, want delta", b.Type)
		}
		if err := rep.Apply(b); err != nil {
			t.Fatal(err)
		}
		if got, want := rep.Canonical("/"), r.Current().Canonical("/"); !bytes.Equal(got, want) {
			t.Fatalf("replayed state diverged at generation %d:\n%s\nwant:\n%s", b.Gen, got, want)
		}
	}
	fp, err := rep.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if want := r.Current().Fingerprint; fp != want {
		t.Errorf("replayed fingerprint %#x, live %#x", fp, want)
	}
}

// A /fib-prefixed subscriber sees only FIB leaves but still observes
// every generation, and reconstructs the filtered canonical form.
func TestSubscribePrefixFilter(t *testing.T) {
	r := New(Config{})
	r.Install(lineDB(4, 0))
	sub := r.Subscribe(PathFIB)
	defer sub.Close()
	rep := NewReplayer()
	if err := rep.Apply(<-sub.Updates()); err != nil {
		t.Fatal(err)
	}
	r.Install(lineDB(4, 2))
	if err := rep.Apply(<-sub.Updates()); err != nil {
		t.Fatal(err)
	}
	if got, want := rep.Canonical("/"), r.Current().Canonical(PathFIB); !bytes.Equal(got, want) {
		t.Errorf("filtered replay diverged:\n%s\nwant:\n%s", got, want)
	}
	if _, err := rep.Fingerprint(); err == nil {
		t.Error("fingerprint of a topology-less stream should fail")
	}
	// /fib must not leak /fibx-style siblings or topology leaves.
	for path := range rep.leaves {
		if !underPrefix(path, PathFIB) {
			t.Errorf("leaf %s leaked past prefix %s", path, PathFIB)
		}
	}
}

// A stalled subscriber's queue overflows: installs keep completing
// without blocking, and once the reader drains it receives a resync
// marker whose full state matches the live snapshot.
func TestStalledSubscriberResyncs(t *testing.T) {
	r := New(Config{QueueDepth: 2})
	r.Install(lineDB(6, 0))
	sub := r.Subscribe("/")
	defer sub.Close()

	// Do not read. The pump takes the sync batch and blocks delivering
	// it; every install after the queue fills must drop, not block.
	for i := 0; i < 20; i++ {
		r.Install(lineDB(6, i%5))
	}
	if got := r.Current().Gen; got != 21 {
		t.Fatalf("installer blocked by stalled reader: at generation %d, want 21", got)
	}

	rep := NewReplayer()
	sawResync := false
	for b := range sub.Updates() {
		if err := rep.Apply(b); err != nil {
			t.Fatal(err)
		}
		if b.Type == ResyncBatch {
			sawResync = true
		}
		if rep.Gen() == r.Current().Gen {
			break
		}
	}
	if !sawResync {
		t.Error("overflowed subscriber never saw a resync marker")
	}
	if got, want := rep.Canonical("/"), r.Current().Canonical("/"); !bytes.Equal(got, want) {
		t.Errorf("post-resync state diverged:\n%s\nwant:\n%s", got, want)
	}
	if s := r.Stats(); s.Resyncs == 0 {
		t.Error("stats recorded no resync")
	}
}

// The acceptance bar: >= 1000 concurrent subscribers served from COW
// snapshots while continuous installs churn the fabric, every one of
// them reconstructing the exact final state.
func TestThousandSubscribersUnderChurn(t *testing.T) {
	const (
		subscribers = 1000
		installs    = 40
		fabricSize  = 12
	)
	r := New(Config{QueueDepth: 8})
	r.Install(lineDB(fabricSize, 0))
	finalDB := lineDB(fabricSize, 0)
	finalGen := uint64(1 + installs)

	var wg sync.WaitGroup
	errs := make(chan error, subscribers)
	for i := 0; i < subscribers; i++ {
		sub := r.Subscribe("/")
		wg.Add(1)
		go func(i int, sub *Subscription) {
			defer wg.Done()
			defer sub.Close()
			rep := NewReplayer()
			for b := range sub.Updates() {
				if err := rep.Apply(b); err != nil {
					errs <- fmt.Errorf("subscriber %d: %w", i, err)
					return
				}
				if rep.Gen() == finalGen {
					break
				}
			}
			if got, want := rep.Canonical("/"), r.Current().Canonical("/"); !bytes.Equal(got, want) {
				errs <- fmt.Errorf("subscriber %d: state diverged at generation %d", i, rep.Gen())
				return
			}
			fp, err := rep.Fingerprint()
			if err != nil {
				errs <- fmt.Errorf("subscriber %d: %w", i, err)
				return
			}
			if want := finalDB.Fingerprint(); fp != want {
				errs <- fmt.Errorf("subscriber %d: fingerprint %#x, want %#x", i, fp, want)
			}
		}(i, sub)
	}

	// Continuous churn: vary the tail every install, ending on the full
	// fabric so the expected final state is known.
	for i := 1; i <= installs; i++ {
		tail := i % 4
		if i == installs {
			tail = 0
		}
		r.Install(lineDB(fabricSize, tail))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if s := r.Stats(); s.Gen != finalGen {
		t.Errorf("final generation %d, want %d", s.Gen, finalGen)
	}
}

// Replayer rejects malformed streams instead of silently diverging.
func TestReplayerRejects(t *testing.T) {
	rep := NewReplayer()
	if err := rep.Apply(Batch{Gen: 1, Type: DeltaBatch}); err == nil {
		t.Error("delta before sync accepted")
	}
	if err := rep.Apply(Batch{Gen: 1, Type: SyncBatch}); err != nil {
		t.Fatal(err)
	}
	if err := rep.Apply(Batch{Gen: 1, Type: DeltaBatch}); err == nil {
		t.Error("non-advancing generation accepted")
	}
	if err := rep.Apply(Batch{Gen: 2, Type: "weird"}); err == nil {
		t.Error("unknown batch type accepted")
	}
	if err := rep.Apply(Batch{Gen: 2, Type: DeltaBatch,
		Updates: []Update{{Op: OpDelete, Path: "/topology/switches/9"}}}); err == nil {
		t.Error("delete of unknown leaf accepted")
	}
}
