package rib

import (
	"sync"
	"sync/atomic"
)

// Subscription is one streaming reader of the RIB. The installer side
// appends published batches to a bounded queue (offer, bounded work,
// never blocking); a per-subscription pump goroutine drains the queue
// onto the Updates channel at whatever pace the reader consumes. When
// the reader stalls long enough for the queue to overflow, the backlog
// is discarded and the pump delivers a ResyncBatch built from the then-
// current snapshot instead — the stream stays correct (the resync
// supersedes every dropped delta), only its granularity degrades.
type Subscription struct {
	rib    *RIB
	prefix string

	// delivered is the generation of the last batch the reader actually
	// consumed — the per-subscriber freshness the staleness SLO is
	// computed from (RIB.Stats reads it concurrently).
	delivered atomic.Uint64

	mu       sync.Mutex
	queue    []Batch
	overflow bool
	closed   bool

	// notify wakes the pump (capacity 1: a single token covers any
	// number of pending batches); done tears the pump down.
	notify chan struct{}
	done   chan struct{}
	out    chan Batch
}

// Updates is the subscription's delivery channel: an initial SyncBatch,
// then one DeltaBatch per install (or a ResyncBatch after an overflow).
// Batches whose filtered update set is empty are still delivered (with
// no updates) so readers observe every generation; the channel closes
// after Close.
func (s *Subscription) Updates() <-chan Batch { return s.out }

// Close unregisters the subscription and stops its pump. Safe to call
// more than once and concurrently with delivery.
func (s *Subscription) Close() {
	s.rib.unsubscribe(s)
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		close(s.done)
	}
}

// offer appends one published batch, called by Install with rib.mu held.
// Bounded work: append or drop, one channel poke, no waiting. The
// returned flag reports a queue overflow (Install fires the OnEvent hook
// for it after releasing the RIB lock).
func (s *Subscription) offer(b Batch) (overflowed bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	if len(s.queue) >= s.rib.depth {
		// The reader is stalled. Drop the whole backlog — the resync
		// that replaces it carries the full state anyway.
		s.queue = nil
		s.overflow = true
		overflowed = true
	} else {
		s.queue = append(s.queue, b)
	}
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
	return overflowed
}

// pump drains the queue onto the out channel. It keeps the delivered
// stream monotonic in generation: a resync is built from the current
// snapshot, which may already cover deltas still sitting in the queue
// (enqueued between the overflow and the resync) — those are skipped,
// since the resync supersedes them.
func (s *Subscription) pump() {
	defer close(s.out)
	var last uint64
	for {
		s.mu.Lock()
		if s.overflow {
			s.overflow = false
			s.queue = nil
			s.mu.Unlock()
			s.rib.resyncs.Add(1)
			b := s.rib.Current().sync(ResyncBatch, s.prefix)
			last = b.Gen
			if s.rib.onEvent != nil {
				s.rib.onEvent(EventResync, b.Gen)
			}
			if !s.deliver(b) {
				return
			}
			continue
		}
		if len(s.queue) > 0 {
			b := s.queue[0]
			s.queue = s.queue[1:]
			s.mu.Unlock()
			if b.Type == DeltaBatch && b.Gen <= last {
				continue // already covered by a resync
			}
			last = b.Gen
			if !s.deliver(s.filter(b)) {
				return
			}
			continue
		}
		s.mu.Unlock()
		select {
		case <-s.notify:
		case <-s.done:
			return
		}
	}
}

// deliver blocks on the reader (only the pump ever does) until the batch
// is consumed or the subscription closes; false means stop pumping. A
// consumed batch advances the subscriber's delivered generation and
// feeds the install→deliver latency histogram.
func (s *Subscription) deliver(b Batch) bool {
	select {
	case s.out <- b:
		s.delivered.Store(b.Gen)
		s.rib.observeDelivery(b.Gen)
		return true
	case <-s.done:
		return false
	}
}

// filter restricts a shared batch to the subscription's path prefix.
// Sync and resync batches are built pre-filtered; deltas are shared by
// every subscriber and filtered here, on the subscription's own
// goroutine.
func (s *Subscription) filter(b Batch) Batch {
	if s.prefix == "/" {
		return b
	}
	out := b
	out.Updates = nil
	for _, u := range b.Updates {
		if underPrefix(u.Path, s.prefix) {
			out.Updates = append(out.Updates, u)
		}
	}
	return out
}
