// Package rib is the fabric manager's serving layer: a versioned,
// copy-on-write topology RIB with streaming subscribers.
//
// The discovery engine *installs* each completed run's database into the
// RIB; every install freezes an immutable generation-stamped Snapshot
// (topology plus the FIB derived from it) and fans the JSON diff against
// the previous generation out to subscribers. Subscribers get gNMI-style
// initial-sync-then-deltas semantics over path prefixes
// (/topology/switches/..., /fib/routes/...) with bounded per-subscriber
// queues: a reader that stalls long enough to overflow its queue has its
// backlog dropped and receives a resync marker followed by a fresh full
// snapshot — the installer never blocks on a slow reader, which is what
// keeps the serving layer off the simulation hot path entirely.
package rib

import (
	"encoding/json"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Update ops.
const (
	// OpSet creates or replaces one leaf.
	OpSet = "set"
	// OpDelete removes one leaf.
	OpDelete = "delete"
)

// Batch types.
const (
	// SyncBatch carries a subscription's initial full state.
	SyncBatch = "sync"
	// DeltaBatch carries one generation's changes.
	DeltaBatch = "delta"
	// ResyncBatch replaces a stalled subscriber's entire state: the
	// reader must drop what it has and apply the batch as a fresh sync.
	ResyncBatch = "resync"
)

// Update is one leaf mutation.
type Update struct {
	Op    string          `json:"op"`
	Path  string          `json:"path"`
	Value json.RawMessage `json:"value,omitempty"`
}

// Batch is the unit of delivery: all updates of one generation (delta),
// or a full state transfer (sync/resync). Batches are immutable once
// published — they are shared by every subscriber.
type Batch struct {
	Gen  uint64 `json:"gen"`
	Type string `json:"type"`
	// Fingerprint is the generation's topology fingerprint
	// (core.DB.Fingerprint, hex) on sync/resync/delta batches, a
	// cross-check for subscribers that reconstruct state.
	Fingerprint string   `json:"fingerprint,omitempty"`
	Updates     []Update `json:"updates,omitempty"`
}

// Config sizes the RIB.
type Config struct {
	// QueueDepth bounds each subscriber's pending-batch queue; a
	// subscriber that falls further behind is resynced. 0 selects
	// DefaultQueueDepth.
	QueueDepth int
}

// DefaultQueueDepth absorbs normal install bursts; chaos-rate churn
// against a deliberately stalled reader overflows it in tests.
const DefaultQueueDepth = 64

// RIB is the versioned topology store. One installer side (Install) and
// any number of reader sides (Current, Subscribe) may run concurrently.
type RIB struct {
	depth int

	// installMu serializes installers; mu guards the published snapshot
	// and subscriber set and is held only for pointer swaps and queue
	// appends, never for snapshot construction.
	installMu sync.Mutex
	mu        sync.Mutex
	cur       *Snapshot
	subs      map[*Subscription]struct{}

	installs atomic.Uint64
	resyncs  atomic.Uint64
}

// New returns an empty RIB at generation 0.
func New(cfg Config) *RIB {
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	return &RIB{
		depth: depth,
		cur:   emptySnapshot(),
		subs:  make(map[*Subscription]struct{}),
	}
}

// Install publishes a new generation built from the discovery database.
// The database is cloned before the RIB touches it, so the caller's copy
// stays live and mutable (the manager keeps assimilating into it).
// Install returns the new generation number and the topology-level diff
// against the previous generation; it does bounded work per subscriber
// and never blocks on any of them.
func (r *RIB) Install(db *core.DB) (uint64, core.Diff) {
	r.installMu.Lock()
	defer r.installMu.Unlock()

	prev := r.Current()
	clone := db.Clone()
	next := buildSnapshot(prev, clone, prev.Gen+1)
	d := core.DiffDBs(prev.DB, clone)
	batch := Batch{
		Gen:         next.Gen,
		Type:        DeltaBatch,
		Fingerprint: fpHex(next.Fingerprint),
		Updates:     next.diff(prev),
	}

	r.mu.Lock()
	r.cur = next
	for s := range r.subs {
		s.offer(batch)
	}
	r.mu.Unlock()
	r.installs.Add(1)
	return next.Gen, d
}

// Current returns the latest published snapshot. Snapshots are immutable;
// the caller may hold it indefinitely.
func (r *RIB) Current() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur
}

// Subscribe registers a subscriber for the given path prefix ("/",
// "/topology", "/fib/routes", ...). The first batch delivered is a full
// sync of the current generation; every later install delivers a delta
// (or, after an overflow, a resync). Close the subscription to release
// its queue and pump goroutine.
func (r *RIB) Subscribe(prefix string) *Subscription {
	if prefix == "" {
		prefix = "/"
	}
	s := &Subscription{
		rib:    r,
		prefix: prefix,
		notify: make(chan struct{}, 1),
		out:    make(chan Batch),
		done:   make(chan struct{}),
	}
	r.mu.Lock()
	s.queue = []Batch{r.cur.sync(SyncBatch, prefix)}
	r.subs[s] = struct{}{}
	r.mu.Unlock()
	go s.pump()
	return s
}

// Stats is a point-in-time view of the serving layer.
type Stats struct {
	// Gen is the current generation, Installs the number of installs
	// (equal unless the RIB was constructed around an existing DB).
	Gen      uint64 `json:"gen"`
	Installs uint64 `json:"installs"`
	// Leaves counts the current generation's served leaves.
	Leaves int `json:"leaves"`
	// Subscribers is the live subscription count; Resyncs the total
	// full-state retransmissions forced by subscriber queue overflows.
	Subscribers int    `json:"subscribers"`
	Resyncs     uint64 `json:"resyncs"`
	// Fingerprint is the current generation's topology fingerprint, hex.
	Fingerprint string `json:"fingerprint"`
}

// Stats snapshots the serving-layer counters.
func (r *RIB) Stats() Stats {
	r.mu.Lock()
	cur, subs := r.cur, len(r.subs)
	r.mu.Unlock()
	return Stats{
		Gen:         cur.Gen,
		Installs:    r.installs.Load(),
		Leaves:      cur.NumLeaves(),
		Subscribers: subs,
		Resyncs:     r.resyncs.Load(),
		Fingerprint: fpHex(cur.Fingerprint),
	}
}

// unsubscribe removes a closed subscription from the fanout set.
func (r *RIB) unsubscribe(s *Subscription) {
	r.mu.Lock()
	delete(r.subs, s)
	r.mu.Unlock()
}
