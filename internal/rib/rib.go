// Package rib is the fabric manager's serving layer: a versioned,
// copy-on-write topology RIB with streaming subscribers.
//
// The discovery engine *installs* each completed run's database into the
// RIB; every install freezes an immutable generation-stamped Snapshot
// (topology plus the FIB derived from it) and fans the JSON diff against
// the previous generation out to subscribers. Subscribers get gNMI-style
// initial-sync-then-deltas semantics over path prefixes
// (/topology/switches/..., /fib/routes/...) with bounded per-subscriber
// queues: a reader that stalls long enough to overflow its queue has its
// backlog dropped and receives a resync marker followed by a fresh full
// snapshot — the installer never blocks on a slow reader, which is what
// keeps the serving layer off the simulation hot path entirely.
package rib

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Update ops.
const (
	// OpSet creates or replaces one leaf.
	OpSet = "set"
	// OpDelete removes one leaf.
	OpDelete = "delete"
)

// Batch types.
const (
	// SyncBatch carries a subscription's initial full state.
	SyncBatch = "sync"
	// DeltaBatch carries one generation's changes.
	DeltaBatch = "delta"
	// ResyncBatch replaces a stalled subscriber's entire state: the
	// reader must drop what it has and apply the batch as a fresh sync.
	ResyncBatch = "resync"
)

// Update is one leaf mutation.
type Update struct {
	Op    string          `json:"op"`
	Path  string          `json:"path"`
	Value json.RawMessage `json:"value,omitempty"`
}

// Batch is the unit of delivery: all updates of one generation (delta),
// or a full state transfer (sync/resync). Batches are immutable once
// published — they are shared by every subscriber.
type Batch struct {
	Gen  uint64 `json:"gen"`
	Type string `json:"type"`
	// Fingerprint is the generation's topology fingerprint
	// (core.DB.Fingerprint, hex) on sync/resync/delta batches, a
	// cross-check for subscribers that reconstruct state.
	Fingerprint string   `json:"fingerprint,omitempty"`
	Updates     []Update `json:"updates,omitempty"`
}

// Serving-layer event kinds reported through Config.OnEvent.
const (
	// EventOverflow fires when a stalled subscriber's queue overflows
	// and its backlog is discarded.
	EventOverflow = "subscriber.overflow"
	// EventResync fires when the pump replaces a stalled subscriber's
	// state with a full current-snapshot resync.
	EventResync = "subscriber.resync"
)

// Config sizes the RIB.
type Config struct {
	// QueueDepth bounds each subscriber's pending-batch queue; a
	// subscriber that falls further behind is resynced. 0 selects
	// DefaultQueueDepth.
	QueueDepth int
	// OnEvent, when non-nil, observes serving-layer events (EventOverflow,
	// EventResync) with the generation current when they happened. It is
	// called from installer and pump goroutines without RIB locks held;
	// it must be cheap and must not call back into the RIB.
	OnEvent func(kind string, gen uint64)
}

// DefaultQueueDepth absorbs normal install bursts; chaos-rate churn
// against a deliberately stalled reader overflows it in tests.
const DefaultQueueDepth = 64

// installStampRing bounds the install-time memory the deliver-latency
// accounting keeps: the wall-clock install instants of the last 256
// generations, indexed by generation number. Deliveries of generations
// older than that (a reader 256+ generations behind has long since been
// resynced) simply skip the latency observation.
const installStampRing = 256

// RIB is the versioned topology store. One installer side (Install) and
// any number of reader sides (Current, Subscribe) may run concurrently.
type RIB struct {
	depth   int
	onEvent func(kind string, gen uint64)

	// installMu serializes installers; mu guards the published snapshot
	// and subscriber set and is held only for pointer swaps and queue
	// appends, never for snapshot construction.
	installMu sync.Mutex
	mu        sync.Mutex
	cur       *Snapshot
	subs      map[*Subscription]struct{}

	installs atomic.Uint64
	resyncs  atomic.Uint64

	// latMu guards the staleness-SLO accounting: the per-generation
	// install stamps and the install→deliver latency histogram. Both are
	// touched per delivered batch (pump goroutines) and per install —
	// cold paths by construction, far from the simulation hot path.
	latMu      sync.Mutex
	stamps     [installStampRing]installStamp
	latReg     *telemetry.Registry
	latency    *telemetry.Histogram
	deliveries uint64
}

// installStamp records when one generation was published.
type installStamp struct {
	gen uint64
	at  time.Time
}

// MetricDeliverLatency names the install→deliver wall-clock latency
// histogram: the time from Install publishing a generation to a
// subscriber's reader actually receiving a batch of that generation.
const MetricDeliverLatency = "rib.deliver.latency.ns"

// deliverLatencyBounds are the histogram's inclusive upper bounds in
// nanoseconds: 50µs up to 2.5s, roughly logarithmic. In-process readers
// sit at the bottom; an HTTP subscriber catching up after an overflow
// resync can reach the top.
var deliverLatencyBounds = []int64{
	50e3, 100e3, 250e3, 500e3,
	1e6, 2.5e6, 5e6, 10e6, 25e6, 50e6, 100e6, 250e6, 500e6,
	1e9, 2.5e9,
}

// New returns an empty RIB at generation 0.
func New(cfg Config) *RIB {
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	r := &RIB{
		depth:   depth,
		onEvent: cfg.OnEvent,
		cur:     emptySnapshot(),
		subs:    make(map[*Subscription]struct{}),
		latReg:  telemetry.New(),
	}
	r.latency = r.latReg.Histogram(MetricDeliverLatency, "ns", deliverLatencyBounds)
	return r
}

// Install publishes a new generation built from the discovery database.
// The database is cloned before the RIB touches it, so the caller's copy
// stays live and mutable (the manager keeps assimilating into it).
// Install returns the new generation number and the topology-level diff
// against the previous generation; it does bounded work per subscriber
// and never blocks on any of them.
func (r *RIB) Install(db *core.DB) (uint64, core.Diff) {
	r.installMu.Lock()
	defer r.installMu.Unlock()

	prev := r.Current()
	clone := db.Clone()
	next := buildSnapshot(prev, clone, prev.Gen+1)
	d := core.DiffDBs(prev.DB, clone)
	batch := Batch{
		Gen:         next.Gen,
		Type:        DeltaBatch,
		Fingerprint: fpHex(next.Fingerprint),
		Updates:     next.diff(prev),
	}

	r.latMu.Lock()
	r.stamps[next.Gen%installStampRing] = installStamp{gen: next.Gen, at: time.Now()}
	r.latMu.Unlock()

	overflows := 0
	r.mu.Lock()
	r.cur = next
	for s := range r.subs {
		if s.offer(batch) {
			overflows++
		}
	}
	r.mu.Unlock()
	r.installs.Add(1)
	if r.onEvent != nil {
		for i := 0; i < overflows; i++ {
			r.onEvent(EventOverflow, next.Gen)
		}
	}
	return next.Gen, d
}

// observeDelivery folds one delivered batch into the staleness-SLO
// accounting: the install→deliver wall latency of the batch's
// generation, when its install stamp is still in the ring.
func (r *RIB) observeDelivery(gen uint64) {
	now := time.Now()
	r.latMu.Lock()
	defer r.latMu.Unlock()
	r.deliveries++
	if st := r.stamps[gen%installStampRing]; st.gen == gen && !st.at.IsZero() {
		r.latency.Observe(now.Sub(st.at).Nanoseconds())
	}
}

// Current returns the latest published snapshot. Snapshots are immutable;
// the caller may hold it indefinitely.
func (r *RIB) Current() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur
}

// Subscribe registers a subscriber for the given path prefix ("/",
// "/topology", "/fib/routes", ...). The first batch delivered is a full
// sync of the current generation; every later install delivers a delta
// (or, after an overflow, a resync). Close the subscription to release
// its queue and pump goroutine.
func (r *RIB) Subscribe(prefix string) *Subscription {
	if prefix == "" {
		prefix = "/"
	}
	s := &Subscription{
		rib:    r,
		prefix: prefix,
		notify: make(chan struct{}, 1),
		out:    make(chan Batch),
		done:   make(chan struct{}),
	}
	r.mu.Lock()
	s.queue = []Batch{r.cur.sync(SyncBatch, prefix)}
	r.subs[s] = struct{}{}
	r.mu.Unlock()
	go s.pump()
	return s
}

// Staleness is the serving layer's freshness SLO view: how far behind
// the current generation the live subscribers' *delivered* state sits.
// Lag is measured in generations — a subscriber whose reader has
// consumed the latest batch lags 0; one that has not yet consumed its
// initial sync lags the full current generation.
type Staleness struct {
	// Subscribers is the population the percentiles are computed over.
	Subscribers int `json:"subscribers"`
	// P50, P99 and Max are generation-lag percentiles across the live
	// subscribers (nearest-rank).
	P50 uint64 `json:"p50"`
	P99 uint64 `json:"p99"`
	Max uint64 `json:"max"`
}

// Stats is a point-in-time view of the serving layer.
type Stats struct {
	// Gen is the current generation, Installs the number of installs
	// (equal unless the RIB was constructed around an existing DB).
	Gen      uint64 `json:"gen"`
	Installs uint64 `json:"installs"`
	// Leaves counts the current generation's served leaves.
	Leaves int `json:"leaves"`
	// Subscribers is the live subscription count; Resyncs the total
	// full-state retransmissions forced by subscriber queue overflows.
	Subscribers int    `json:"subscribers"`
	Resyncs     uint64 `json:"resyncs"`
	// Deliveries counts batches actually consumed by readers.
	Deliveries uint64 `json:"deliveries"`
	// Staleness is the generation-lag SLO across live subscribers.
	Staleness Staleness `json:"staleness"`
	// DeliverLatency is the install→deliver wall-latency histogram
	// (nanoseconds); DeliverP50NS / DeliverP99NS are its interpolated
	// quantiles.
	DeliverLatency telemetry.HistogramSnap `json:"deliver_latency"`
	DeliverP50NS   float64                 `json:"deliver_p50_ns"`
	DeliverP99NS   float64                 `json:"deliver_p99_ns"`
	// Fingerprint is the current generation's topology fingerprint, hex.
	Fingerprint string `json:"fingerprint"`
}

// Stats snapshots the serving-layer counters, including the staleness
// SLO percentiles across the live subscriber set. Safe to call
// concurrently with installs and deliveries.
func (r *RIB) Stats() Stats {
	r.mu.Lock()
	cur := r.cur
	lags := make([]uint64, 0, len(r.subs))
	for s := range r.subs {
		d := s.delivered.Load()
		if d > cur.Gen {
			// The subscriber consumed a batch published after cur was
			// read; it is as fresh as it gets.
			d = cur.Gen
		}
		lags = append(lags, cur.Gen-d)
	}
	r.mu.Unlock()

	st := Stats{
		Gen:         cur.Gen,
		Installs:    r.installs.Load(),
		Leaves:      cur.NumLeaves(),
		Subscribers: len(lags),
		Resyncs:     r.resyncs.Load(),
		Fingerprint: fpHex(cur.Fingerprint),
		Staleness:   lagPercentiles(lags),
	}
	r.latMu.Lock()
	st.Deliveries = r.deliveries
	snap := r.latReg.Snapshot()
	r.latMu.Unlock()
	if h, ok := snap.Histogram(MetricDeliverLatency); ok {
		st.DeliverLatency = h
		st.DeliverP50NS = h.Quantile(0.50)
		st.DeliverP99NS = h.Quantile(0.99)
	}
	return st
}

// lagPercentiles computes the nearest-rank staleness percentiles.
func lagPercentiles(lags []uint64) Staleness {
	st := Staleness{Subscribers: len(lags)}
	if len(lags) == 0 {
		return st
	}
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	rank := func(q float64) uint64 {
		i := int(q*float64(len(lags))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lags) {
			i = len(lags) - 1
		}
		return lags[i]
	}
	st.P50 = rank(0.50)
	st.P99 = rank(0.99)
	st.Max = lags[len(lags)-1]
	return st
}

// unsubscribe removes a closed subscription from the fanout set.
func (r *RIB) unsubscribe(s *Subscription) {
	r.mu.Lock()
	delete(r.subs, s)
	r.mu.Unlock()
}
