package rib

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/asi"
	"repro/internal/core"
	"repro/internal/fib"
)

// Leaf paths follow the gNMI convention: every piece of served state
// lives at a slash-separated path, and a subscription names a prefix.
//
//	/topology/switches/<dsn>      {"dsn":N,"type":"switch","ports":P}
//	/topology/endpoints/<dsn>     {"dsn":N,"type":"endpoint","ports":P}
//	/topology/links/<a>:<ap>-<b>:<bp>
//	/fib/routes/<dsn>             fib.Route
//	/fib/event-routes/<dsn>       fib.EventRoute
const (
	PathTopology    = "/topology"
	PathSwitches    = "/topology/switches/"
	PathEndpoints   = "/topology/endpoints/"
	PathLinks       = "/topology/links/"
	PathFIB         = "/fib"
	PathRoutes      = "/fib/routes/"
	PathEventRoutes = "/fib/event-routes/"
)

// Snapshot is one immutable generation of the served state: the cloned
// topology database it was installed from, the FIB derived from it, and
// the flattened leaf map the streaming layer diffs and serves. Snapshots
// are copy-on-write: leaves unchanged since the previous generation
// share their encoded bytes, so a thousand subscribers reading old
// generations cost no more than one.
type Snapshot struct {
	// Gen is the monotonic generation number; 0 is the empty pre-install
	// snapshot every RIB starts from.
	Gen uint64
	// Fingerprint is core.DB.Fingerprint of the installed database
	// (zero for generation 0).
	Fingerprint uint64
	// DB is the installed database clone. Read-only by contract: the
	// RIB and every subscriber may hold it concurrently.
	DB *core.DB
	// FIB is the forwarding state derived from DB.
	FIB *fib.Table

	leaves map[string]json.RawMessage
}

// emptySnapshot is generation 0: no topology, no leaves.
func emptySnapshot() *Snapshot {
	return &Snapshot{leaves: map[string]json.RawMessage{}}
}

// nodeLeaf is the encoded value of a topology node leaf.
type nodeLeaf struct {
	DSN   asi.DSN `json:"dsn"`
	Type  string  `json:"type"`
	Ports int     `json:"ports"`
}

// linkLeaf is the encoded value of a topology link leaf.
type linkLeaf struct {
	A     asi.DSN `json:"a"`
	APort int     `json:"a_port"`
	B     asi.DSN `json:"b"`
	BPort int     `json:"b_port"`
}

// linkKey renders a link's canonical path segment.
func linkKey(l core.Link) string {
	return fmt.Sprintf("%d:%d-%d:%d", l.A, l.APort, l.B, l.BPort)
}

// buildSnapshot flattens an installed database (already cloned) and its
// derived FIB into the next generation's leaf map, sharing encoded bytes
// with the previous snapshot wherever a leaf is unchanged.
func buildSnapshot(prev *Snapshot, db *core.DB, gen uint64) *Snapshot {
	t := fib.Derive(db)
	s := &Snapshot{
		Gen:         gen,
		Fingerprint: db.Fingerprint(),
		DB:          db,
		FIB:         t,
		leaves:      make(map[string]json.RawMessage, len(prev.leaves)),
	}
	put := func(path string, v any) {
		b, err := json.Marshal(v)
		if err != nil {
			panic(fmt.Sprintf("rib: leaf %s does not marshal: %v", path, err)) // plain-data values
		}
		if old, ok := prev.leaves[path]; ok && bytes.Equal(old, b) {
			b = old // COW: share the previous generation's bytes
		}
		s.leaves[path] = b
	}
	for _, n := range db.Nodes() {
		switch n.Type {
		case asi.DeviceSwitch:
			put(fmt.Sprintf("%s%d", PathSwitches, n.DSN), nodeLeaf{DSN: n.DSN, Type: "switch", Ports: n.Ports})
		default:
			put(fmt.Sprintf("%s%d", PathEndpoints, n.DSN), nodeLeaf{DSN: n.DSN, Type: "endpoint", Ports: n.Ports})
		}
	}
	for _, l := range db.Links() {
		put(PathLinks+linkKey(l), linkLeaf{A: l.A, APort: l.APort, B: l.B, BPort: l.BPort})
	}
	for _, dsn := range t.DSNs() {
		put(fmt.Sprintf("%s%d", PathRoutes, dsn), t.Routes[dsn])
		if ev, ok := t.EventRoutes[dsn]; ok {
			put(fmt.Sprintf("%s%d", PathEventRoutes, dsn), ev)
		}
	}
	return s
}

// diff computes the update list transforming prev's leaves into s's:
// changed or new leaves as "set" ops, vanished leaves as "delete" ops,
// each group in sorted path order.
func (s *Snapshot) diff(prev *Snapshot) []Update {
	var ups []Update
	for path, v := range s.leaves {
		if old, ok := prev.leaves[path]; !ok || !bytes.Equal(old, v) {
			ups = append(ups, Update{Op: OpSet, Path: path, Value: v})
		}
	}
	for path := range prev.leaves {
		if _, ok := s.leaves[path]; !ok {
			ups = append(ups, Update{Op: OpDelete, Path: path})
		}
	}
	sortUpdates(ups)
	return ups
}

// sortUpdates orders sets before deletes, each by path.
func sortUpdates(ups []Update) {
	sort.Slice(ups, func(i, j int) bool {
		if ups[i].Op != ups[j].Op {
			return ups[i].Op == OpSet
		}
		return ups[i].Path < ups[j].Path
	})
}

// sync renders the snapshot as one full-state batch of the given type
// ("sync" for an initial subscription, "resync" after an overflow),
// filtered to the subscriber's path prefix.
func (s *Snapshot) sync(typ string, prefix string) Batch {
	b := Batch{Gen: s.Gen, Type: typ, Fingerprint: fpHex(s.Fingerprint)}
	for _, path := range s.sortedPaths(prefix) {
		b.Updates = append(b.Updates, Update{Op: OpSet, Path: path, Value: s.leaves[path]})
	}
	return b
}

// sortedPaths lists the snapshot's leaf paths under a prefix, sorted.
func (s *Snapshot) sortedPaths(prefix string) []string {
	out := make([]string, 0, len(s.leaves))
	for path := range s.leaves {
		if underPrefix(path, prefix) {
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}

// NumLeaves returns the number of served leaves.
func (s *Snapshot) NumLeaves() int { return len(s.leaves) }

// Canonical renders the snapshot's leaves under a prefix in the canonical
// byte form replayed subscribers are compared against: a JSON object with
// the generation and the sorted leaf map, indented, trailing newline.
func (s *Snapshot) Canonical(prefix string) []byte {
	return canonicalBytes(s.Gen, s.leaves, prefix)
}

// canonicalBytes is the shared canonical encoder (Snapshot and Replayer
// must agree byte for byte; encoding/json sorts the map keys).
func canonicalBytes(gen uint64, leaves map[string]json.RawMessage, prefix string) []byte {
	filtered := make(map[string]json.RawMessage, len(leaves))
	for path, v := range leaves {
		if underPrefix(path, prefix) {
			filtered[path] = v
		}
	}
	doc := struct {
		Gen    uint64                     `json:"gen"`
		Leaves map[string]json.RawMessage `json:"leaves"`
	}{gen, filtered}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("rib: canonical encoding failed: %v", err)) // RawMessage leaves cannot fail
	}
	return append(b, '\n')
}

// fpHex renders a topology fingerprint in its wire form.
func fpHex(fp uint64) string { return fmt.Sprintf("%#016x", fp) }

// underPrefix reports whether a leaf path falls under a subscription
// prefix: "/" matches everything, otherwise the prefix must end at a
// path-segment boundary ("/fib" matches "/fib/routes/3", not "/fibx").
func underPrefix(path, prefix string) bool {
	if prefix == "" || prefix == "/" {
		return true
	}
	prefix = strings.TrimSuffix(prefix, "/")
	return strings.HasPrefix(path, prefix) &&
		(len(path) == len(prefix) || path[len(prefix)] == '/')
}
