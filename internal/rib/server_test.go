package rib

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestServerSubscribeStream(t *testing.T) {
	r := New(Config{})
	r.Install(lineDB(5, 2))
	ts := httptest.NewServer(NewServer(r).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/subscribe?path=/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	next := func() Batch {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("stream ended early: %v", sc.Err())
		}
		var b Batch
		if err := json.Unmarshal(sc.Bytes(), &b); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		return b
	}

	rep := NewReplayer()
	first := next()
	if first.Type != SyncBatch {
		t.Fatalf("first batch %s, want sync", first.Type)
	}
	if err := rep.Apply(first); err != nil {
		t.Fatal(err)
	}
	r.Install(lineDB(5, 0))
	if err := rep.Apply(next()); err != nil {
		t.Fatal(err)
	}
	if got, want := rep.Canonical("/"), r.Current().Canonical("/"); !bytes.Equal(got, want) {
		t.Errorf("HTTP-replayed state diverged:\n%s\nwant:\n%s", got, want)
	}
}

func TestServerSnapshotStatsHealth(t *testing.T) {
	r := New(Config{})
	r.Install(lineDB(4, 0))
	ts := httptest.NewServer(NewServer(r).Handler())
	defer ts.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b
	}

	code, body := get("/snapshot?path=" + PathFIB)
	if code != http.StatusOK || !bytes.Equal(body, r.Current().Canonical(PathFIB)) {
		t.Errorf("snapshot endpoint: code %d, body mismatch %v", code,
			!bytes.Equal(body, r.Current().Canonical(PathFIB)))
	}

	code, body = get("/stats")
	var st Stats
	if code != http.StatusOK {
		t.Fatalf("stats code %d", code)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Gen != 1 || st.Installs != 1 {
		t.Errorf("stats %+v", st)
	}

	code, body = get("/healthz")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Errorf("healthz code %d body %s", code, body)
	}

	if code, _ := get("/subscribe?path=oops"); code != http.StatusBadRequest {
		t.Errorf("relative path accepted with code %d", code)
	}
	if code, _ := get("/snapshot?path=oops"); code != http.StatusBadRequest {
		t.Errorf("relative snapshot path accepted with code %d", code)
	}
}
