package rib

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Server exposes a RIB over HTTP in the gNMI subscribe spirit with
// plain-JSON mechanics, so any HTTP client (curl, gnmic-style tooling,
// the daemon smoke test) can consume it:
//
//	GET /subscribe?path=/topology   NDJSON batch stream: one initial
//	                                sync line, then one line per install
//	GET /snapshot?path=/fib         canonical snapshot document
//	GET /stats                      serving-layer counters
//	GET /healthz                    liveness + current generation
//
// Streams are flushed per batch and end when the client disconnects.
// Additional handlers (the observability plane's /metrics, /events and
// /obs.json) mount onto the same mux through Handle.
type Server struct {
	rib   *RIB
	extra map[string]http.Handler
}

// NewServer wraps a RIB for HTTP serving.
func NewServer(r *RIB) *Server { return &Server{rib: r} }

// Handle mounts an extra handler on the server's mux under the given
// ServeMux pattern (e.g. "GET /metrics"). Call before Handler; later
// calls with the same pattern replace the handler.
func (s *Server) Handle(pattern string, h http.Handler) {
	if s.extra == nil {
		s.extra = make(map[string]http.Handler)
	}
	s.extra[pattern] = h
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /subscribe", s.subscribe)
	mux.HandleFunc("GET /snapshot", s.snapshot)
	mux.HandleFunc("GET /stats", s.stats)
	mux.HandleFunc("GET /healthz", s.healthz)
	for pattern, h := range s.extra {
		mux.Handle(pattern, h)
	}
	return mux
}

// pathParam extracts and validates the ?path= prefix (default "/").
func pathParam(req *http.Request) (string, error) {
	p := req.URL.Query().Get("path")
	if p == "" {
		return "/", nil
	}
	if p[0] != '/' {
		return "", fmt.Errorf("path %q must start with /", p)
	}
	return p, nil
}

func (s *Server) subscribe(w http.ResponseWriter, req *http.Request) {
	prefix, err := pathParam(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	sub := s.rib.Subscribe(prefix)
	defer sub.Close()
	enc := json.NewEncoder(w)
	for {
		select {
		case b, ok := <-sub.Updates():
			if !ok {
				return
			}
			if err := enc.Encode(b); err != nil {
				return // client went away
			}
			flusher.Flush()
		case <-req.Context().Done():
			return
		}
	}
}

func (s *Server) snapshot(w http.ResponseWriter, req *http.Request) {
	prefix, err := pathParam(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.rib.Current().Canonical(prefix))
}

func (s *Server) stats(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.rib.Stats())
}

func (s *Server) healthz(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"gen\":%d}\n", s.rib.Current().Gen)
}
