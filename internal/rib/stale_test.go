package rib

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

// A reader that consumes promptly lags zero generations; one that never
// reads its stream lags the full distance to the current generation.
func TestStalenessLagAccounting(t *testing.T) {
	r := New(Config{})
	r.Install(lineDB(4, 0))

	fresh := r.Subscribe("/")
	defer fresh.Close()
	<-fresh.Updates() // consume the initial sync

	stalled := r.Subscribe("/") // never read
	defer stalled.Close()

	for i := 1; i <= 3; i++ {
		r.Install(lineDB(4, i))
		// Keep the fresh reader fresh.
		<-fresh.Updates()
	}

	s := r.Stats()
	if s.Staleness.Subscribers != 2 {
		t.Fatalf("staleness population %d, want 2", s.Staleness.Subscribers)
	}
	if s.Staleness.P50 != 0 {
		t.Errorf("p50 lag %d, want 0 (fresh reader consumed gen %d)", s.Staleness.P50, s.Gen)
	}
	// The stalled reader consumed nothing: max lag is the full current
	// generation. (Its pump holds the sync batch it cannot deliver.)
	if s.Staleness.Max != s.Gen {
		t.Errorf("max lag %d, want %d", s.Staleness.Max, s.Gen)
	}
	if s.Staleness.P99 != s.Staleness.Max {
		t.Errorf("p99 lag %d, want %d with 2 subscribers", s.Staleness.P99, s.Staleness.Max)
	}
	if s.Deliveries == 0 || s.DeliverLatency.Count == 0 {
		t.Errorf("deliver accounting empty: %d deliveries, %d latency observations",
			s.Deliveries, s.DeliverLatency.Count)
	}
	if s.DeliverP99NS < s.DeliverP50NS || s.DeliverP50NS < 0 {
		t.Errorf("latency quantiles inconsistent: p50 %v p99 %v", s.DeliverP50NS, s.DeliverP99NS)
	}
}

// Across the overflow→resync path the lag accounting must recover: once
// the stalled reader drains to the resync'd current state its lag
// returns to zero, and the overflow/resync events fire with generations.
func TestStalenessAcrossOverflowResync(t *testing.T) {
	var overflows, resyncs atomic.Uint64
	r := New(Config{QueueDepth: 2, OnEvent: func(kind string, gen uint64) {
		switch kind {
		case EventOverflow:
			overflows.Add(1)
		case EventResync:
			resyncs.Add(1)
		default:
			t.Errorf("unknown event kind %q", kind)
		}
		if gen == 0 {
			t.Errorf("event %q carried generation 0", kind)
		}
	}})
	r.Install(lineDB(6, 0))
	sub := r.Subscribe("/")
	defer sub.Close()

	for i := 0; i < 20; i++ {
		r.Install(lineDB(6, i%5))
	}
	if s := r.Stats(); s.Staleness.Max == 0 {
		t.Errorf("stalled subscriber shows zero lag at gen %d", s.Gen)
	}
	if overflows.Load() == 0 {
		t.Error("no overflow event fired")
	}

	// Drain to the current generation: the resync supersedes the backlog.
	for b := range sub.Updates() {
		if b.Gen == r.Current().Gen {
			break
		}
	}
	if resyncs.Load() == 0 {
		t.Error("no resync event fired")
	}
	if s := r.Stats(); s.Staleness.Max != 0 {
		t.Errorf("drained subscriber still lags %d generations", s.Staleness.Max)
	}
}

// /stats and /healthz must stay consistent and race-free while installs
// and subscribers churn concurrently (the race detector is the judge).
func TestServerStatsHealthUnderConcurrentInstalls(t *testing.T) {
	r := New(Config{QueueDepth: 4})
	r.Install(lineDB(8, 0))
	ts := httptest.NewServer(NewServer(r).Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Installer: continuous churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			r.Install(lineDB(8, i%6))
		}
		close(stop)
	}()

	// Subscribers that consume at different paces, plus one that stalls.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(consume bool) {
			defer wg.Done()
			sub := r.Subscribe("/")
			defer sub.Close()
			if !consume {
				<-stop
				return
			}
			for {
				select {
				case <-sub.Updates():
				case <-stop:
					return
				}
			}
		}(i%2 == 0)
	}

	// Readers hammering the observability endpoints throughout.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/stats")
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				var s Stats
				if err := json.Unmarshal(body, &s); err != nil {
					t.Errorf("stats did not parse: %v", err)
					return
				}
				if s.Staleness.Max < s.Staleness.P99 || s.Staleness.P99 < s.Staleness.P50 {
					t.Errorf("staleness percentiles out of order: %+v", s.Staleness)
					return
				}
				if resp, err = http.Get(ts.URL + "/healthz"); err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	if s := r.Stats(); s.Gen != 51 {
		t.Errorf("final generation %d, want 51", s.Gen)
	}
}

// Extra handlers mount onto the server mux without disturbing the
// built-in routes.
func TestServerHandleExtraMount(t *testing.T) {
	r := New(Config{})
	r.Install(lineDB(3, 0))
	srv := NewServer(r)
	srv.Handle("GET /metrics", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("metrics here\n"))
	}))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "metrics here\n" {
		t.Errorf("extra mount served %q", body)
	}
	if resp, err = http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("built-in route broken: %v %v", err, resp)
	}
	resp.Body.Close()
}
