package rib

import (
	"bytes"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
)

// Scripted churn through the real executor: every completed discovery
// installs the live FM database into the RIB, a subscriber replays the
// diff stream from its initial sync, and the reconstructed state must be
// byte-identical to the final snapshot — with a fingerprint equal to the
// executor's own hash of the final database.
func TestChurnDiffStreamReplay(t *testing.T) {
	sc := chaos.Scenario{
		Name:      "rib churn replay",
		Seed:      7,
		Topology:  chaos.TopologySpec{Switches: 6, ExtraLinks: 2, Seed: 7},
		Algorithm: "parallel",
	}
	tp, err := sc.Topology.Build()
	if err != nil {
		t.Fatal(err)
	}
	ch, err := chaos.NewChurner(tp, sc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	var events []chaos.Event
	for round := 0; round < 2; round++ {
		events = append(events, ch.Round(4)...)
	}
	events = append(events, ch.Quiesce()...)
	// Churner rounds restart their clocks; respace the concatenated
	// script so event times stay strictly increasing.
	for i := range events {
		events[i].AtUS = float64(i * 400)
	}
	sc.Events = events
	if err := sc.Validate(); err != nil {
		t.Fatalf("churner produced an invalid script: %v", err)
	}

	r := New(Config{QueueDepth: 256})
	sub := r.Subscribe("/")
	defer sub.Close()

	installs := 0
	rep, err := chaos.Execute(sc, chaos.Options{
		OnDiscovery: func(db *core.DB, _ core.Result) {
			r.Install(db)
			installs++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hung != "" || !rep.InitialOK {
		t.Fatalf("scenario did not run cleanly: hung=%q initialOK=%v", rep.Hung, rep.InitialOK)
	}
	if installs < 3 {
		t.Fatalf("churn produced only %d installs; the stream never exercised deltas", installs)
	}
	if got := r.Current().Gen; got != uint64(installs) {
		t.Fatalf("RIB at generation %d after %d installs", got, installs)
	}

	replay := NewReplayer()
	for replay.Gen() != r.Current().Gen {
		if err := replay.Apply(<-sub.Updates()); err != nil {
			t.Fatal(err)
		}
	}
	if replay.Resyncs != 0 {
		t.Errorf("replay needed %d resyncs; the diff stream itself was lossy", replay.Resyncs)
	}
	if got, want := replay.Canonical("/"), r.Current().Canonical("/"); !bytes.Equal(got, want) {
		t.Errorf("replayed state diverged from final snapshot:\n%s\nwant:\n%s", got, want)
	}
	fp, err := replay.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp != rep.DBFingerprint {
		t.Errorf("replayed fingerprint %#x, executor's database fingerprint %#x", fp, rep.DBFingerprint)
	}
}
