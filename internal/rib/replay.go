package rib

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/asi"
	"repro/internal/core"
)

// Replayer reconstructs served state from a subscription's batch stream.
// It is both the reference client (the daemon's smoke test and the HTTP
// examples use it) and the verification tool: after any quiescent point,
// Canonical must be byte-identical to the live snapshot's Canonical and
// Fingerprint must equal the live core.DB.Fingerprint.
type Replayer struct {
	gen    uint64
	leaves map[string]json.RawMessage
	synced bool
	// Resyncs counts full-state replacements observed (stalled-reader
	// recoveries); Batches every batch applied.
	Resyncs int
	Batches int
}

// NewReplayer returns an empty replayer awaiting its initial sync.
func NewReplayer() *Replayer {
	return &Replayer{leaves: map[string]json.RawMessage{}}
}

// Apply folds one batch into the reconstructed state.
func (r *Replayer) Apply(b Batch) error {
	switch b.Type {
	case SyncBatch, ResyncBatch:
		// Full state transfer: drop everything and start over.
		r.leaves = make(map[string]json.RawMessage, len(b.Updates))
		r.synced = true
		if b.Type == ResyncBatch {
			r.Resyncs++
		}
	case DeltaBatch:
		if !r.synced {
			return fmt.Errorf("rib: delta for generation %d before any sync", b.Gen)
		}
		if b.Gen <= r.gen {
			return fmt.Errorf("rib: generation went backwards: %d after %d", b.Gen, r.gen)
		}
	default:
		return fmt.Errorf("rib: unknown batch type %q", b.Type)
	}
	for _, u := range b.Updates {
		switch u.Op {
		case OpSet:
			r.leaves[u.Path] = u.Value
		case OpDelete:
			if _, ok := r.leaves[u.Path]; !ok {
				return fmt.Errorf("rib: delete of unknown leaf %s in generation %d", u.Path, b.Gen)
			}
			delete(r.leaves, u.Path)
		default:
			return fmt.Errorf("rib: unknown update op %q", u.Op)
		}
	}
	r.gen = b.Gen
	r.Batches++
	return nil
}

// Gen returns the last applied generation.
func (r *Replayer) Gen() uint64 { return r.gen }

// NumLeaves returns the reconstructed leaf count.
func (r *Replayer) NumLeaves() int { return len(r.leaves) }

// Canonical renders the reconstructed state in the canonical byte form,
// comparable against Snapshot.Canonical of the same prefix.
func (r *Replayer) Canonical(prefix string) []byte {
	return canonicalBytes(r.gen, r.leaves, prefix)
}

// Fingerprint rebuilds a topology database from the reconstructed
// /topology leaves and returns its core fingerprint — the end-to-end
// check that a diff stream reproduces exactly what the FM's database
// holds. It fails when the stream carried no topology (e.g. a /fib-only
// subscription) or a leaf does not parse.
func (r *Replayer) Fingerprint() (uint64, error) {
	if !r.synced {
		return 0, fmt.Errorf("rib: no sync applied")
	}
	db := core.NewDB(0)
	for path, v := range r.leaves {
		switch {
		case strings.HasPrefix(path, PathSwitches), strings.HasPrefix(path, PathEndpoints):
			var n nodeLeaf
			if err := json.Unmarshal(v, &n); err != nil {
				return 0, fmt.Errorf("rib: leaf %s: %w", path, err)
			}
			typ := asi.DeviceEndpoint
			if n.Type == "switch" {
				typ = asi.DeviceSwitch
			}
			db.AddNode(&core.Node{DSN: n.DSN, Type: typ, Ports: n.Ports})
		case strings.HasPrefix(path, PathLinks):
			var l linkLeaf
			if err := json.Unmarshal(v, &l); err != nil {
				return 0, fmt.Errorf("rib: leaf %s: %w", path, err)
			}
			db.AddLink(core.Link{A: l.A, APort: l.APort, B: l.B, BPort: l.BPort})
		}
	}
	if db.NumNodes() == 0 {
		return 0, fmt.Errorf("rib: reconstructed state carries no topology leaves")
	}
	return db.Fingerprint(), nil
}
