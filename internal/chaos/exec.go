package chaos

import (
	"fmt"
	"time"

	"repro/internal/asi"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/span"
	"repro/internal/telemetry"
	"repro/internal/topo"
)

// Options configures how a scenario is executed (none of it is part of
// the scenario itself: the same scenario replays identically under any
// observation options).
type Options struct {
	// Horizon bounds each phase's simulated time. The event queue of a
	// healthy run always drains long before it; hitting the horizon with
	// events still pending is the oracle's "engine hung" signal. Zero
	// selects DefaultHorizon.
	Horizon sim.Duration
	// Telemetry and Spans attach the respective observers; both add
	// oracle coverage (conservation laws, span validation) at some
	// execution cost.
	Telemetry bool
	Spans     bool
	// NoAudit skips the forced post-quiescence rediscovery.
	NoAudit bool
	// SkipPI5 makes the FM's packet handler silently swallow the first N
	// PI-5 event reports. It exists to break the system on purpose: the
	// oracle must notice (delivered-but-unassimilated reports), which is
	// how the harness tests itself.
	SkipPI5 int
	// Regions > 1 selects the conservative region-sharded parallel
	// simulation path. Scenarios the sharded fabric cannot execute —
	// scripted events, fault plans, telemetry, spans — silently fall back
	// to the sequential path; Report.Regions records what actually ran.
	Regions int
	// OnDiscovery, when non-nil, observes every completed discovery run
	// with the manager's live database — the hook a RIB installer uses
	// to turn scripted churn into a continuous stream of generations
	// instead of one run per change. Pure observation: the callback
	// must not mutate the database, and it runs outside simulated time,
	// so scenario fingerprints are unaffected.
	OnDiscovery func(db *core.DB, r core.Result)
	// Coalesce enables the manager's continuous-assimilation front-end
	// (core.Options.AssimWindow): PI-5 reports debounce in a window of
	// CoalesceWindowUS microseconds (default 200) bounded by
	// CoalesceBatchMax distinct ports, and flush as one batched partial
	// run. Only the Partial algorithm assimilates events localizedly, so
	// the options are inert for the other kinds.
	Coalesce         bool
	CoalesceWindowUS float64
	CoalesceBatchMax int
	// Continuous > 0 appends a steady-state churn phase after the
	// scripted events settle: that many rounds, each a Churner storm of
	// ContinuousOps toggles (default 4) followed by full restoration,
	// run to quiescence with the database checked against ground truth
	// at every quiescent point. Continuous scenarios always run on the
	// sequential path.
	Continuous    int
	ContinuousOps int
}

// DefaultHorizon is far beyond any legitimate phase: the worst Table 1
// fabric under maximum loss and retries quiesces in well under a second
// of simulated time.
const DefaultHorizon = 30 * sim.Second

// spanCap bounds the span log like the experiment layer does.
const spanCap = 1 << 20

// Report is everything the oracle (and a human debugging a failure)
// needs to know about one executed scenario.
type Report struct {
	Scenario Scenario

	// Results lists every completed discovery run in completion order:
	// the initial discovery, any churn-triggered assimilations, and the
	// audit rediscovery last (when it ran).
	Results []core.Result

	// InitialOK records that the initial discovery completed; InitialErr
	// its ground-truth comparison (only performed when trustworthy).
	InitialOK  bool
	InitialErr error
	// DistFailures counts failed event-route writes during distribution.
	DistFailures int
	// EventErrs records scripted events the fabric rejected.
	EventErrs []string

	// Hung names the phase that exhausted the horizon ("" = none);
	// StillDiscovering reports a manager mid-run after the script
	// quiesced with a drained event queue.
	Hung             string
	StillDiscovering bool

	// T0 is when the transient period (initial discovery + event-route
	// distribution) ended and the event script's clock started;
	// LastChange is when the script's final perturbation was fully
	// applied (for a flap, when the link came back up).
	T0, LastChange sim.Time
	// PI5AfterLast counts PI-5 event reports the fabric delivered at or
	// after LastChange; ChurnRun indexes the last completed run covering
	// LastChange — started at or after it, or a partial-assimilation run
	// still open at it (-1 = none).
	PI5AfterLast uint64
	ChurnRun     int

	// WantDevices/WantLinks is the alive-fabric ground truth after the
	// script quiesced; PostChurnDevices/Links the FM database then, and
	// PostChurnFP its topology fingerprint — the quiescent-state value
	// the coalesced/per-event equivalence suite compares across
	// assimilation modes.
	WantDevices, WantLinks           int
	PostChurnDevices, PostChurnLinks int
	PostChurnFP                      uint64

	// ContinuousRounds counts completed steady-state churn rounds
	// (Options.Continuous); ContinuousChecked the subset whose quiescent
	// point was convergence-checked against ground truth (only loss-free
	// scenarios are checkable — injected loss leaves the FM legitimately
	// stale until the audit); ContinuousErrs records every invariant
	// violated at a quiescent point.
	ContinuousRounds  int
	ContinuousChecked int
	ContinuousErrs    []string

	// Audit is the forced post-quiescence rediscovery.
	AuditRequested bool
	AuditRan       bool
	Audit          core.Result
	AuditErr       error

	// DBFingerprint hashes the final database topology; Fingerprint
	// hashes the whole run's observable metrics. Two executions of the
	// same scenario must produce identical fingerprints.
	DBFingerprint uint64
	Fingerprint   uint64

	// Processed is the total simulation event count (summed over regions
	// when sharded); Counters the final fabric accounting. Regions is the
	// region count the run actually used (1 = sequential, including any
	// silent fallback from Options.Regions). It is deliberately excluded
	// from the fingerprint: event counts differ across region counts, so
	// the cross-R identity contract is DBFingerprint plus the oracle, not
	// the full metrics fingerprint.
	Processed uint64
	Regions   int
	Counters  fabric.Counters
	// Telemetry and Spans are present only when requested in Options.
	Telemetry *telemetry.Snapshot
	Spans     *span.Log
}

// pi5Filter wraps the manager's packet handler and swallows the first N
// PI-5 reports (Options.SkipPI5). The fabric has already counted the
// delivery by the time the handler runs, which is exactly the asymmetry
// the oracle exploits to catch the lost assimilation.
type pi5Filter struct {
	inner fabric.Handler
	skip  int
}

func (p *pi5Filter) HandlePacket(port int, pkt *asi.Packet) {
	if p.skip > 0 && pkt.Header.PI == asi.PI5EventReporting {
		p.skip--
		return
	}
	p.inner.HandlePacket(port, pkt)
}

// Execute runs one scenario to completion and reports everything the
// oracle checks. The error return covers scenario construction problems
// only (invalid scenario, unbuildable topology); anomalies of the run
// itself land in the Report for the Oracle to judge.
func Execute(sc Scenario, opt Options) (*Report, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	kind, err := sc.Kind()
	if err != nil {
		return nil, err
	}
	tp, err := sc.Topology.Build()
	if err != nil {
		return nil, err
	}
	horizon := opt.Horizon
	if horizon <= 0 {
		horizon = DefaultHorizon
	}

	regions := opt.Regions
	if regions > 1 && (len(sc.Events) > 0 || !sc.FaultPlan().Empty() || opt.Telemetry || opt.Spans || opt.Continuous > 0) {
		regions = 1 // sharded fabrics cannot run these; fall back silently
	}

	rep := &Report{Scenario: sc, ChurnRun: -1, Regions: 1}
	var (
		e     *sim.Engine
		group *sim.ShardGroup
		f     *fabric.Fabric

		reg       *telemetry.Registry
		sp        *span.Tracer
		wallStart time.Time
	)
	if opt.Telemetry {
		reg = telemetry.New()
		wallStart = time.Now()
	}
	if opt.Spans {
		sp = span.New(spanCap)
	}
	rng := sim.NewRNG(sc.Seed*2654435761 + 1)
	if regions > 1 {
		part, perr := tp.Partition(regions, tp.Endpoints()[0])
		if perr != nil {
			return nil, perr
		}
		group = sim.NewShardGroup(part.Count, 0) // lookahead set by NewSharded
		group.SeedRNGs(sim.NewRNG(sc.Seed*2654435761 + 2))
		e = group.Engine(0)
		f, err = fabric.NewSharded(group, part, tp, fabric.Config{}, rng)
		rep.Regions = part.Count
	} else {
		e = sim.NewEngine()
		f, err = fabric.New(e, tp, fabric.Config{}, rng)
	}
	if err != nil {
		return nil, err
	}
	if reg != nil {
		f.EnableTelemetry(reg)
	}
	if sp != nil {
		f.SetSpanTracer(sp)
	}
	if err := f.SetFaultPlan(sc.FaultPlan()); err != nil {
		return nil, err
	}
	ep := f.Device(tp.Endpoints()[0])
	mopt := core.Options{
		Algorithm:    kind,
		MaxRetries:   sc.MaxRetries,
		RetryBackoff: sim.Micros(sc.BackoffUS),
		Telemetry:    reg,
		Spans:        sp,
	}
	if opt.Coalesce {
		w := opt.CoalesceWindowUS
		if w <= 0 {
			w = 200
		}
		mopt.AssimWindow = sim.Micros(w)
		mopt.AssimBatchMax = opt.CoalesceBatchMax
	}
	m := core.NewManager(f, ep, mopt)
	if opt.SkipPI5 > 0 {
		ep.SetHandler(&pi5Filter{inner: m, skip: opt.SkipPI5})
	}
	m.OnDiscoveryComplete = func(r core.Result) {
		rep.Results = append(rep.Results, r)
		if opt.OnDiscovery != nil {
			opt.OnDiscovery(m.DB(), r)
		}
	}

	runPhase := func(name string) bool {
		if group != nil {
			group.RunUntil(group.Now().Add(horizon))
			if group.Pending() > 0 {
				rep.Hung = name
				return false
			}
			return true
		}
		e.RunUntil(e.Now().Add(horizon))
		if e.Pending() > 0 {
			rep.Hung = name
			return false
		}
		return true
	}
	finish := func() *Report {
		if group != nil {
			rep.Processed = group.Processed()
		} else {
			rep.Processed = e.Processed
		}
		rep.Counters = f.Counters()
		rep.DBFingerprint = m.DB().Fingerprint()
		if sp != nil {
			l := sp.Log()
			rep.Spans = &l
		}
		if reg != nil {
			f.FinishTelemetry(reg)
			e.RecordTelemetry(reg, time.Since(wallStart))
			s := reg.Snapshot()
			rep.Telemetry = &s
		}
		rep.Fingerprint = rep.fingerprint()
		return rep
	}

	// Transient period: initial discovery, then event-route distribution.
	m.StartDiscovery()
	if !runPhase("initial discovery") {
		return finish(), nil
	}
	if len(rep.Results) >= 1 {
		rep.InitialOK = true
		if rep.Trustworthy(rep.Results[0]) {
			rep.InitialErr = CheckConverged(f, m, rep.Results[0])
		}
	}
	m.DistributeEventRoutes(func(d core.DistResult) { rep.DistFailures = d.Failures })
	if !runPhase("event-route distribution") {
		return finish(), nil
	}
	rep.T0 = e.Now()

	// Event script: schedule every perturbation relative to T0 and note
	// when the last one is fully applied.
	rep.LastChange = rep.T0
	for i, ev := range sc.Events {
		i, ev := i, ev
		at := rep.T0.Add(sim.Micros(ev.AtUS))
		switch ev.Op {
		case OpDown, OpUp:
			if at > rep.LastChange {
				rep.LastChange = at
			}
			e.At(at, func(*sim.Engine) {
				var err error
				if ev.Op == OpDown {
					err = f.SetDeviceDown(topo.NodeID(ev.Node), false)
				} else {
					err = f.SetDeviceUp(topo.NodeID(ev.Node), false)
				}
				if err != nil {
					rep.EventErrs = append(rep.EventErrs,
						fmt.Sprintf("event %d (%s node %d at %v): %v", i, ev.Op, ev.Node, at, err))
				}
			})
		case OpFlap:
			up := at.Add(sim.Micros(ev.DurUS))
			if up > rep.LastChange {
				rep.LastChange = up
			}
			if err := f.FlapLink(ev.Link, at, sim.Micros(ev.DurUS)); err != nil {
				rep.EventErrs = append(rep.EventErrs,
					fmt.Sprintf("event %d (flap link %d at %v): %v", i, ev.Link, at, err))
			}
		}
	}
	pi5Delivered := func() uint64 { return f.Counters().Delivered[asi.PI5EventReporting] }
	var pi5Before uint64
	if rep.LastChange == rep.T0 {
		pi5Before = pi5Delivered()
	} else {
		// PI-5 emission trails any change by the detect delay, so a
		// snapshot at LastChange itself cleanly splits before/after.
		e.At(rep.LastChange, func(*sim.Engine) { pi5Before = pi5Delivered() })
	}
	if !runPhase("event script") {
		return finish(), nil
	}
	rep.PI5AfterLast = pi5Delivered() - pi5Before
	rep.StillDiscovering = m.Discovering()
	for i, r := range rep.Results {
		// A run started after the last change covers it; so does a
		// partial-assimilation run already open at the change, since the
		// partial path folds mid-flight reports straight into the run
		// instead of starting a new one.
		if r.Start >= rep.LastChange ||
			(r.Algorithm == core.Partial && r.Start.Add(r.Duration) >= rep.LastChange) {
			rep.ChurnRun = i
		}
	}
	rep.WantDevices, rep.WantLinks = GroundTruth(f, ep.ID)
	rep.PostChurnDevices, rep.PostChurnLinks = m.DB().NumNodes(), m.DB().NumLinks()
	rep.PostChurnFP = m.DB().Fingerprint()

	// Continuous steady-state churn: Churner rounds against the settled
	// fabric, each run to quiescence and checked there — the referee for
	// the coalescing front-end under sustained PI-5 load.
	if opt.Continuous > 0 && !rep.StillDiscovering {
		ch, cerr := NewChurner(tp, sc.Seed)
		if cerr != nil {
			return nil, cerr
		}
		ops := opt.ContinuousOps
		if ops <= 0 {
			ops = 4
		}
		contErr := func(round int, format string, args ...any) {
			rep.ContinuousErrs = append(rep.ContinuousErrs,
				fmt.Sprintf("round %d: %s", round, fmt.Sprintf(format, args...)))
		}
		applyRound := func(round int, evs []Event) bool {
			base := e.Now()
			for _, ev := range evs {
				ev := ev
				e.At(base.Add(sim.Micros(ev.AtUS)), func(*sim.Engine) {
					var err error
					if ev.Op == OpDown {
						err = f.SetDeviceDown(topo.NodeID(ev.Node), false)
					} else {
						err = f.SetDeviceUp(topo.NodeID(ev.Node), false)
					}
					if err != nil {
						contErr(round, "%s node %d: %v", ev.Op, ev.Node, err)
					}
				})
			}
			return runPhase(fmt.Sprintf("continuous round %d", round))
		}
		totalDrops := func() uint64 {
			var sum uint64
			for _, d := range f.Counters().Drops {
				sum += d
			}
			return sum
		}
		// Convergence at a quiescent point is only guaranteed on a
		// loss-free fabric, and only when the restoration segment itself
		// dropped nothing: a restoration PI-5 whose event route crossed a
		// still-down switch is silently lost, and partial assimilation
		// stops exploring at known devices — the resulting hole is
		// legitimate staleness the next audit repairs. Storm-segment drops
		// are unavoidable (a downed switch's own endpoint can never report
		// its death), so drops are accounted per segment.
		lossFree := sc.Loss == 0 && sc.DropFirst == 0 && sc.FaultPlan().Empty()
		for round := 0; round < opt.Continuous; round++ {
			delivered := pi5Delivered()
			nres := len(rep.Results)
			// One round = a churn storm drained to quiescence, then full
			// restoration drained again, so the quiescent ground truth is
			// the whole fabric.
			if !applyRound(round, ch.Round(ops)) {
				return finish(), nil
			}
			dropsBefore := totalDrops()
			if !applyRound(round, ch.Quiesce()) {
				return finish(), nil
			}
			cleanRestore := totalDrops() == dropsBefore
			rep.ContinuousRounds++
			// Liveness invariants hold unconditionally: the drained queue
			// must leave the manager idle with nothing held back in the
			// debounce window.
			if m.Discovering() {
				contErr(round, "manager still discovering at quiescence")
				continue
			}
			if n := m.AssimPending(); n > 0 {
				contErr(round, "%d reports left pending in the debounce window", n)
			}
			if !lossFree {
				continue
			}
			if pi5Delivered() > delivered && len(rep.Results) == nres {
				contErr(round, "PI-5 reports delivered but no discovery run completed")
				continue
			}
			// With everything restored the database may at worst lag
			// behind the fabric — it must never claim devices or links
			// the fabric does not have.
			wd, wl := GroundTruth(f, ep.ID)
			if m.DB().NumNodes() > wd || m.DB().NumLinks() > wl {
				contErr(round, "database has %d devices / %d links at quiescence, fabric only %d / %d",
					m.DB().NumNodes(), m.DB().NumLinks(), wd, wl)
			}
			if !cleanRestore {
				continue
			}
			rep.ContinuousChecked++
			if m.DB().NumNodes() != wd || m.DB().NumLinks() != wl {
				contErr(round, "database has %d devices / %d links at quiescence, ground truth %d / %d",
					m.DB().NumNodes(), m.DB().NumLinks(), wd, wl)
			}
		}
		rep.StillDiscovering = m.Discovering()
	}

	// Audit: force a full rediscovery of the settled fabric. Whatever the
	// churn did to the database, a trustworthy audit must reconstruct the
	// ground truth exactly.
	if !opt.NoAudit && !rep.StillDiscovering {
		rep.AuditRequested = true
		before := len(rep.Results)
		m.StartDiscovery()
		if !runPhase("audit rediscovery") {
			return finish(), nil
		}
		if len(rep.Results) > before {
			rep.AuditRan = true
			rep.Audit = rep.Results[len(rep.Results)-1]
			if rep.Trustworthy(rep.Audit) {
				rep.AuditErr = CheckConverged(f, m, rep.Audit)
			}
		}
	}
	return finish(), nil
}

// fingerprint folds every deterministic observable of the run into one
// FNV-1a value: the engine's event count, the fabric's accounting, each
// discovery result's measurements, and the final database fingerprint.
// Wall-clock-derived telemetry (events/sec) is deliberately excluded.
func (rep *Report) fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	mix(rep.Processed)
	mix(rep.Counters.TxPackets)
	mix(rep.Counters.TxBytes)
	for pi := asi.PI(0); pi < 16; pi++ {
		mix(rep.Counters.Delivered[pi])
	}
	for _, d := range rep.Counters.Drops {
		mix(d)
	}
	mix(rep.Counters.FaultDelays)
	mix(rep.Counters.LinkFlaps)
	mix(uint64(len(rep.Results)))
	for _, r := range rep.Results {
		mix(uint64(r.Start))
		mix(uint64(r.End))
		mix(uint64(r.PacketsSent))
		mix(uint64(r.BytesSent))
		mix(uint64(r.PacketsReceived))
		mix(uint64(r.BytesReceived))
		mix(uint64(r.TimedOut))
		mix(uint64(r.Retries))
		mix(uint64(r.GaveUp))
		mix(uint64(r.Stale))
		mix(uint64(r.Coalesced))
		mix(uint64(r.Devices))
		mix(uint64(r.Switches))
		mix(uint64(r.Links))
	}
	mix(uint64(rep.T0))
	mix(uint64(rep.LastChange))
	mix(rep.PI5AfterLast)
	mix(uint64(rep.WantDevices))
	mix(uint64(rep.WantLinks))
	mix(uint64(rep.PostChurnDevices))
	mix(uint64(rep.PostChurnLinks))
	mix(rep.PostChurnFP)
	mix(uint64(rep.ContinuousRounds))
	mix(uint64(rep.ContinuousChecked))
	mix(uint64(len(rep.ContinuousErrs)))
	mix(rep.DBFingerprint)
	return h
}

// CrossCheck executes the scenario once per paper algorithm and verifies
// that every run passes the oracle and that all trustworthy audits agree
// on the final topology fingerprint — the serial and parallel algorithms
// must reconstruct the same fabric.
func CrossCheck(sc Scenario, opt Options) error {
	_, err := CrossCheckFingerprint(sc, opt)
	return err
}

// CrossCheckFingerprint is CrossCheck returning a deterministic
// observable too: every mode's full run fingerprint folded together
// (FNV-1a; PaperKinds order, then Partial again with the coalescing
// front-end). Two executions of the same scenario must return the same
// value, which is what the parallel sweep's determinism smoke compares
// across worker counts. Beyond the per-mode oracle, it checks that all
// trustworthy audits agree on the final topology, and that per-event and
// coalesced Partial — when neither was defeated by injected loss — reach
// byte-identical quiescent databases after the scripted churn.
func CrossCheckFingerprint(sc Scenario, opt Options) (uint64, error) {
	type mode struct {
		kind     core.Kind
		coalesce bool
	}
	type agreed struct {
		mode mode
		fp   uint64
	}
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	combined := uint64(offset)
	fold := func(v uint64) {
		for i := 0; i < 8; i++ {
			combined ^= (v >> (8 * i)) & 0xff
			combined *= prime
		}
	}
	modes := make([]mode, 0, len(core.PaperKinds())+1)
	for _, k := range core.PaperKinds() {
		modes = append(modes, mode{kind: k})
	}
	modes = append(modes, mode{kind: core.Partial, coalesce: true})
	name := func(md mode) string {
		if md.coalesce {
			return md.kind.Slug() + "+coalesce"
		}
		return md.kind.Slug()
	}
	var fps []agreed
	var perEvent, coalesced *Report
	for _, md := range modes {
		s := sc
		s.Algorithm = md.kind.Slug()
		o := opt
		o.Coalesce = md.coalesce
		rep, err := Execute(s, o)
		if err != nil {
			return 0, fmt.Errorf("chaos: %s: %w", name(md), err)
		}
		if err := (Oracle{}).Check(rep); err != nil {
			return 0, fmt.Errorf("chaos: %s: %w", name(md), err)
		}
		fold(rep.Fingerprint)
		if rep.AuditRan && rep.Trustworthy(rep.Audit) {
			fps = append(fps, agreed{md, rep.DBFingerprint})
		}
		if md.kind == core.Partial {
			if md.coalesce {
				coalesced = rep
			} else {
				perEvent = rep
			}
		}
	}
	for i := 1; i < len(fps); i++ {
		if fps[i].fp != fps[0].fp {
			return 0, fmt.Errorf("chaos: algorithms disagree on final topology: %s=%#x, %s=%#x",
				name(fps[0].mode), fps[0].fp, name(fps[i].mode), fps[i].fp)
		}
	}
	// The equivalence property: batched-coalesced assimilation must land
	// on the same quiescent database as per-event assimilation, unless
	// injected loss defeated a run in either mode (a gave-up or timed-out
	// run may legitimately truncate a subtree).
	if perEvent != nil && coalesced != nil &&
		allTrustworthy(perEvent) && allTrustworthy(coalesced) &&
		perEvent.PostChurnFP != coalesced.PostChurnFP {
		return 0, fmt.Errorf("chaos: partial assimilation modes disagree post-churn: per-event=%#x, coalesced=%#x",
			perEvent.PostChurnFP, coalesced.PostChurnFP)
	}
	return combined, nil
}

// allTrustworthy reports whether every completed run in the report was
// undefeated by injected loss (see Report.Trustworthy).
func allTrustworthy(rep *Report) bool {
	for _, r := range rep.Results {
		if !rep.Trustworthy(r) {
			return false
		}
	}
	return true
}
