package chaos

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestSweepParallelDeterminism is the tentpole invariant: a sweep's
// results are a pure function of (seed, profile, options), never of the
// worker count. Per-run fingerprints, vacuity, and verdicts must match
// byte-for-byte between a sequential and a parallel pool.
func TestSweepParallelDeterminism(t *testing.T) {
	for _, profile := range []string{"quick", "lossy", "churn", "dragonfly", "autofat"} {
		p, ok := ProfileByName(profile)
		if !ok {
			t.Fatalf("missing profile %q", profile)
		}
		o := SweepOptions{Seed: 42, Runs: 6, Profile: p, Exec: Options{Telemetry: true}}
		o.Workers = 1
		seq := Sweep(o)
		o.Workers = 4
		par := Sweep(o)
		if len(seq) != len(par) {
			t.Fatalf("%s: %d sequential results vs %d parallel", profile, len(seq), len(par))
		}
		for i := range seq {
			if seq[i].Scenario.Name != par[i].Scenario.Name {
				t.Errorf("%s run %d: scenario %q vs %q", profile, i, seq[i].Scenario.Name, par[i].Scenario.Name)
			}
			if seq[i].Fingerprint != par[i].Fingerprint {
				t.Errorf("%s run %d (%s): fingerprint %#x sequential vs %#x parallel",
					profile, i, seq[i].Scenario.Name, seq[i].Fingerprint, par[i].Fingerprint)
			}
			if seq[i].Vacuous != par[i].Vacuous {
				t.Errorf("%s run %d: vacuous %v vs %v", profile, i, seq[i].Vacuous, par[i].Vacuous)
			}
			if fmt.Sprint(seq[i].Err) != fmt.Sprint(par[i].Err) {
				t.Errorf("%s run %d: verdict %v vs %v", profile, i, seq[i].Err, par[i].Err)
			}
		}
	}
}

// TestSweepCrossCheckDeterminism repeats the invariant on the
// every-algorithm path, whose fingerprint folds all paper algorithms.
func TestSweepCrossCheckDeterminism(t *testing.T) {
	p, _ := ProfileByName("quick")
	o := SweepOptions{Seed: 7, Runs: 4, Profile: p, CrossCheck: true, Workers: 1}
	seq := Sweep(o)
	o.Workers = 4
	par := Sweep(o)
	for i := range seq {
		if seq[i].Fingerprint != par[i].Fingerprint || fmt.Sprint(seq[i].Err) != fmt.Sprint(par[i].Err) {
			t.Errorf("run %d: (%#x, %v) sequential vs (%#x, %v) parallel",
				i, seq[i].Fingerprint, seq[i].Err, par[i].Fingerprint, par[i].Err)
		}
		if seq[i].Fingerprint == 0 && seq[i].Err == nil {
			t.Errorf("run %d: cross-check returned a zero fingerprint without error", i)
		}
	}
}

// TestFamilyProfilesGenerateValid checks the parametric family profiles:
// every generated scenario names a buildable instance of the right
// family and survives its own Validate.
func TestFamilyProfilesGenerateValid(t *testing.T) {
	for _, tc := range []struct {
		profile, prefix string
		maxSwitches     int
	}{
		{"dragonfly", "dragonfly ", 60},
		{"autofat", "autofat ", 0},
	} {
		p, ok := ProfileByName(tc.profile)
		if !ok {
			t.Fatalf("missing profile %q", tc.profile)
		}
		for seed := uint64(1); seed <= 25; seed++ {
			sc := Generate(seed, p)
			if !strings.HasPrefix(sc.Topology.Catalogue, tc.prefix) {
				t.Fatalf("%s seed %d: topology %q, want %q instance",
					tc.profile, seed, sc.Topology.Catalogue, strings.TrimSpace(tc.prefix))
			}
			if err := sc.Validate(); err != nil {
				t.Fatalf("%s seed %d (%s): %v", tc.profile, seed, sc.Topology.Catalogue, err)
			}
			tp, err := sc.Topology.Build()
			if err != nil {
				t.Fatalf("%s seed %d: %v", tc.profile, seed, err)
			}
			if err := tp.Validate(); err != nil {
				t.Fatalf("%s seed %d (%s): %v", tc.profile, seed, sc.Topology.Catalogue, err)
			}
			if tc.maxSwitches > 0 && tp.NumSwitches() > tc.maxSwitches {
				t.Errorf("%s seed %d: %d switches exceeds the profile bound %d",
					tc.profile, seed, tp.NumSwitches(), tc.maxSwitches)
			}
		}
	}
}

// TestScaleDragonflyOracle runs a full discovery on a moderate dragonfly
// (256 switches, beyond anything in Table 1) and requires a clean,
// non-vacuous oracle verdict — the scale experiment's correctness
// anchor, kept small enough for the regular test suite.
func TestScaleDragonflyOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("256-switch discovery run")
	}
	sc := Scenario{
		Name:      "scale-dragonfly",
		Seed:      1,
		Algorithm: core.PaperKinds()[0].Slug(),
	}
	sc.Topology.Catalogue = "dragonfly 8x32"
	rep, err := Execute(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := (Oracle{}).Check(rep); err != nil {
		t.Fatal(err)
	}
	if rep.Vacuous() {
		t.Fatal("scale run was vacuous — no trustworthy convergence comparison")
	}
	if rep.WantDevices != 2*256 {
		t.Fatalf("ground truth %d devices, want %d", rep.WantDevices, 2*256)
	}
}
