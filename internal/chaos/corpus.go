package chaos

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/topo"
)

// CorpusScenarios returns the committed regression corpus: one scenario
// per Table 1 topology (paper profile), plus lossy and churn variants on
// random fabrics. The function is pure — the corpus files under
// testdata/corpus are exactly these scenarios' canonical encodings, and
// the corpus test regenerates and byte-compares them, so any change to
// the generator that would silently alter the corpus fails loudly.
func CorpusScenarios() []Scenario {
	var out []Scenario
	for i, name := range topo.Names() {
		p := Profile{Name: "paper", Fixed: name, Algorithms: core.PaperKinds(), MaxEvents: 3}
		sc := Generate(uint64(i+1), p)
		sc.Name = fmt.Sprintf("paper-%02d-%s", i+1, slugName(name))
		out = append(out, sc)
	}
	lossy, _ := ProfileByName("lossy")
	for s := uint64(1); s <= 3; s++ {
		sc := Generate(s, lossy)
		sc.Name = fmt.Sprintf("lossy-%d", s)
		out = append(out, sc)
	}
	churn, _ := ProfileByName("churn")
	for s := uint64(1); s <= 3; s++ {
		sc := Generate(s, churn)
		sc.Name = fmt.Sprintf("churn-%d", s)
		out = append(out, sc)
	}
	return out
}

// CorpusFilename is the canonical corpus file name of a scenario.
func CorpusFilename(sc Scenario) string { return sc.Name + ".json" }
