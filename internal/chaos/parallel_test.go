package chaos

import "testing"

// TestParallelRegionsIdentity is the cross-region identity contract of
// the parallel simulation path: for every generator family, discovery on
// the region-sharded executor at R in {2, 4, 8} must reconstruct exactly
// the topology the sequential referee run does (equal database
// fingerprints) and satisfy the convergence oracle, audit included.
// Event counts and timing may differ — cross-region credit returns ride
// the wire with the propagation delay — which is precisely why the
// contract is database fingerprint plus oracle, not the full metrics
// fingerprint.
func TestParallelRegionsIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-switch discovery runs")
	}
	families := []string{"6x6 torus", "8-port 3-tree", "dragonfly 4x8", "autofat 16x64"}
	for _, name := range families {
		sc := Scenario{Name: "par " + name, Seed: 3, Algorithm: "parallel"}
		sc.Topology.Catalogue = name
		seq, err := Execute(sc, Options{})
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		if err := (Oracle{}).Check(seq); err != nil {
			t.Fatalf("%s sequential oracle: %v", name, err)
		}
		if seq.Regions != 1 {
			t.Fatalf("%s sequential: reports %d regions", name, seq.Regions)
		}
		for _, r := range []int{2, 4, 8} {
			par, err := Execute(sc, Options{Regions: r})
			if err != nil {
				t.Fatalf("%s R=%d: %v", name, r, err)
			}
			if par.Regions < 2 {
				t.Fatalf("%s R=%d: fell back to sequential (regions=%d)", name, r, par.Regions)
			}
			if err := (Oracle{}).Check(par); err != nil {
				t.Fatalf("%s R=%d oracle: %v", name, r, err)
			}
			if par.DBFingerprint != seq.DBFingerprint {
				t.Fatalf("%s R=%d: database fingerprint %#x, sequential %#x",
					name, r, par.DBFingerprint, seq.DBFingerprint)
			}
			if !par.AuditRan || !seq.AuditRan {
				t.Fatalf("%s R=%d: audit ran par=%v seq=%v", name, r, par.AuditRan, seq.AuditRan)
			}
			if len(par.Results) != len(seq.Results) {
				t.Fatalf("%s R=%d: %d discovery runs, sequential %d",
					name, r, len(par.Results), len(seq.Results))
			}
			p0, s0 := par.Results[0], seq.Results[0]
			if p0.Devices != s0.Devices || p0.Switches != s0.Switches || p0.Links != s0.Links {
				t.Fatalf("%s R=%d: discovered %d/%d/%d devices/switches/links, sequential %d/%d/%d",
					name, r, p0.Devices, p0.Switches, p0.Links, s0.Devices, s0.Switches, s0.Links)
			}
		}
	}
}

// TestParallelRegionsFallback pins the silent sequential fallback:
// scenarios the sharded fabric cannot execute (scripted events, fault
// plans) and observation options that pin one engine (telemetry, spans)
// run sequentially and say so in Report.Regions.
func TestParallelRegionsFallback(t *testing.T) {
	base := Scenario{Seed: 11, Algorithm: "parallel"}
	base.Topology.Catalogue = "3x3 mesh"

	events := base
	events.Events = []Event{{Op: OpDown, Node: 1, AtUS: 5}}
	lossy := base
	lossy.Loss = 0.05
	lossy.MaxRetries = 3
	lossy.BackoffUS = 50

	cases := []struct {
		name string
		sc   Scenario
		opt  Options
	}{
		{"scripted events", events, Options{Regions: 4}},
		{"fault plan", lossy, Options{Regions: 4}},
		{"telemetry", base, Options{Regions: 4, Telemetry: true}},
		{"spans", base, Options{Regions: 4, Spans: true}},
	}
	for _, c := range cases {
		rep, err := Execute(c.sc, c.opt)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if rep.Regions != 1 {
			t.Fatalf("%s: ran with %d regions, want sequential fallback", c.name, rep.Regions)
		}
		if err := (Oracle{}).Check(rep); err != nil {
			t.Fatalf("%s oracle: %v", c.name, err)
		}
	}
}
