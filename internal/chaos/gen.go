package chaos

import (
	"fmt"

	"repro/internal/asi"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Profile shapes what Generate produces. Profiles trade breadth for
// focus: quick random fabrics for smoke runs, the paper's Table 1
// catalogue, lossy fabrics exercising the retry machinery, and tight
// churn bursts landing mid-assimilation.
type Profile struct {
	Name string
	// Fixed pins the topology to one catalogue entry; Catalogue draws one
	// at random; Family draws a random instance of one parametric
	// generator family ("dragonfly" or "autofat"); otherwise a random
	// connected topology of up to MaxSwitches switches with up to
	// MaxExtra extra links is generated.
	Fixed       string
	Catalogue   bool
	Family      string
	MaxSwitches int
	MaxExtra    int
	// Algorithms is the pool the scenario's algorithm is drawn from.
	Algorithms []core.Kind
	// MaxEvents bounds the perturbation script length (>= 1 event).
	MaxEvents int
	// Lossy adds probabilistic loss plus a retry budget; Churn clusters
	// event times within a few microseconds so later events land while
	// the assimilation of earlier ones is still in flight.
	Lossy bool
	Churn bool
}

// Profiles returns the built-in generation profiles.
func Profiles() []Profile {
	paperAlgs := core.PaperKinds()
	return []Profile{
		{Name: "quick", MaxSwitches: 10, MaxExtra: 8, Algorithms: paperAlgs, MaxEvents: 4},
		{Name: "paper", Catalogue: true, Algorithms: paperAlgs, MaxEvents: 3},
		{Name: "lossy", MaxSwitches: 8, MaxExtra: 6, Algorithms: paperAlgs, MaxEvents: 3, Lossy: true},
		{Name: "churn", MaxSwitches: 10, MaxExtra: 8, Algorithms: paperAlgs, MaxEvents: 6, Churn: true},
		{Name: "dragonfly", Family: "dragonfly", MaxSwitches: 60, Algorithms: paperAlgs, MaxEvents: 4},
		{Name: "autofat", Family: "autofat", Algorithms: paperAlgs, MaxEvents: 4},
	}
}

// ProfileByName resolves a built-in profile.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// ProfileNames lists the built-in profile names.
func ProfileNames() []string {
	var out []string
	for _, p := range Profiles() {
		out = append(out, p.Name)
	}
	return out
}

// Generate derives one scenario from (seed, profile), deterministically:
// the same pair always yields the byte-identical scenario. The
// generation RNG is separate from the scenario's own execution seed so
// that regenerating a scenario never perturbs its replay.
func Generate(seed uint64, p Profile) Scenario {
	rng := sim.NewRNG(seed*0x9e3779b97f4a7c15 + hashString(p.Name))
	sc := Scenario{
		Name: fmt.Sprintf("%s-%d", p.Name, seed),
		Seed: seed,
	}
	switch {
	case p.Fixed != "":
		sc.Topology.Catalogue = p.Fixed
	case p.Catalogue:
		names := topo.Names()
		sc.Topology.Catalogue = names[rng.Intn(len(names))]
	case p.Family != "":
		sc.Topology.Catalogue = generateFamily(rng, p)
	default:
		maxSw := p.MaxSwitches
		if maxSw < 3 {
			maxSw = 3
		}
		sc.Topology.Switches = 3 + rng.Intn(maxSw-2)
		sc.Topology.ExtraLinks = rng.Intn(p.MaxExtra + 1)
		sc.Topology.Seed = rng.Uint64()
	}
	algs := p.Algorithms
	if len(algs) == 0 {
		algs = core.PaperKinds()
	}
	sc.Algorithm = algs[rng.Intn(len(algs))].Slug()
	if p.Lossy {
		losses := []float64{0.001, 0.002, 0.005, 0.01, 0.02}
		sc.Loss = losses[rng.Intn(len(losses))]
		sc.MaxRetries = 2 + rng.Intn(3)
		sc.BackoffUS = float64(50 * (1 + rng.Intn(4)))
	}
	sc.Events = generateEvents(rng, sc.Topology, p)
	return sc
}

// generateFamily draws one parametric instance of a generator family as
// a catalogue name — topo.ByName resolves these through ParseName, so
// the scenario JSON stays a plain string and replays without the profile.
func generateFamily(rng *sim.RNG, p Profile) string {
	switch p.Family {
	case "dragonfly":
		maxSw := p.MaxSwitches
		if maxSw < 8 {
			maxSw = 8
		}
		k := 3 + rng.Intn(4) // group size 3..6
		maxM := maxSw / k
		if maxM < 2 {
			maxM = 2
		}
		m := 2 + rng.Intn(maxM-1)
		return fmt.Sprintf("dragonfly %dx%d", k, m)
	case "autofat":
		radixes := []int{8, 12, 16}
		ports := radixes[rng.Intn(len(radixes))]
		// Two-layer designs exist from ports+1 hosts (below that the
		// designer degenerates to a single switch) up to ports^2/2.
		capacity := ports * ports / 2
		eps := ports + 1 + rng.Intn(capacity-ports)
		return fmt.Sprintf("autofat %dx%d", ports, eps)
	default:
		panic(fmt.Sprintf("chaos: unknown generator family %q", p.Family))
	}
}

// generateEvents scripts 1..MaxEvents valid perturbations against the
// scenario's topology: hot removals and re-additions of non-host
// switches (correctly alternating per node) and link flaps.
func generateEvents(rng *sim.RNG, ts TopologySpec, p Profile) []Event {
	tp, err := ts.Build()
	if err != nil {
		panic(err) // generator specs are buildable by construction
	}
	host := hostSwitch(tp)
	var switches []int
	for _, n := range tp.Nodes {
		if n.Type == asi.DeviceSwitch && n.ID != host {
			switches = append(switches, int(n.ID))
		}
	}
	maxEvents := p.MaxEvents
	if maxEvents < 1 {
		maxEvents = 1
	}
	k := 1 + rng.Intn(maxEvents)
	var (
		events []Event
		downed []int
		at     float64
	)
	for len(events) < k {
		if p.Churn {
			// Tight spacing: the detect delay is 1us and assimilation of
			// the previous change takes tens of microseconds, so 0..6us
			// gaps pile changes onto a manager that is still absorbing.
			at += float64(rng.Intn(7))
		} else {
			at += float64(30 + rng.Intn(270))
		}
		roll := rng.Intn(10)
		switch {
		case roll < 6 && len(switches) > 0:
			i := rng.Intn(len(switches))
			node := switches[i]
			switches = append(switches[:i], switches[i+1:]...)
			downed = append(downed, node)
			events = append(events, Event{AtUS: at, Op: OpDown, Node: node})
		case roll < 8 && len(downed) > 0:
			i := rng.Intn(len(downed))
			node := downed[i]
			downed = append(downed[:i], downed[i+1:]...)
			switches = append(switches, node)
			events = append(events, Event{AtUS: at, Op: OpUp, Node: node})
		case len(tp.Links) > 0:
			events = append(events, Event{
				AtUS:  at,
				Op:    OpFlap,
				Link:  rng.Intn(len(tp.Links)),
				DurUS: float64(5 + rng.Intn(196)),
			})
		default:
			return events // degenerate topology; keep what we have
		}
	}
	return events
}

// hashString is FNV-1a, mixing a profile name into a generation seed.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
