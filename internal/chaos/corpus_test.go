package chaos

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestCorpus is the committed-corpus regression gate. For every file
// under testdata/corpus it checks three things: the file is byte-for-byte
// the canonical encoding of the generator's scenario (same seed =>
// byte-identical scenario), two in-process executions produce identical
// metrics fingerprints, and the oracle's verdict is clean both times.
func TestCorpus(t *testing.T) {
	scenarios := CorpusScenarios()
	if len(scenarios) < 10 {
		t.Fatalf("corpus has %d scenarios, want >= 10", len(scenarios))
	}
	byName := map[string]Scenario{}
	for _, sc := range scenarios {
		byName[CorpusFilename(sc)] = sc
	}
	dir := filepath.Join("testdata", "corpus")
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(scenarios) {
		t.Errorf("testdata/corpus has %d files, CorpusScenarios %d; regenerate with asichaos -emit-corpus",
			len(files), len(scenarios))
	}
	for _, fe := range files {
		fe := fe
		t.Run(fe.Name(), func(t *testing.T) {
			sc, ok := byName[fe.Name()]
			if !ok {
				t.Fatalf("no generated scenario for corpus file %s", fe.Name())
			}
			disk, err := os.ReadFile(filepath.Join(dir, fe.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(disk, sc.EncodeJSON()) {
				t.Fatalf("corpus file %s is not the generator's canonical encoding; regenerate with asichaos -emit-corpus", fe.Name())
			}
			if err := sc.Validate(); err != nil {
				t.Fatal(err)
			}
			opt := Options{Telemetry: true, Spans: true}
			a, err := Execute(sc, opt)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Execute(sc, opt)
			if err != nil {
				t.Fatal(err)
			}
			if a.Fingerprint != b.Fingerprint {
				t.Errorf("two executions fingerprint %#x and %#x", a.Fingerprint, b.Fingerprint)
			}
			if err := (Oracle{}).Check(a); err != nil {
				t.Errorf("oracle: %v", err)
			}
			if err := (Oracle{}).Check(b); err != nil {
				t.Errorf("oracle (second run): %v", err)
			}
		})
	}
}
