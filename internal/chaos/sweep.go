package chaos

import (
	"runtime"
	"sync"
)

// SweepOptions configures a seeded batch of generated scenarios.
type SweepOptions struct {
	// Seed is the base seed; run i executes Generate(Seed+i, Profile).
	Seed    uint64
	Runs    int
	Profile Profile
	// Exec is passed through to Execute for every run.
	Exec Options
	// CrossCheck runs every paper algorithm per scenario instead of the
	// scenario's own.
	CrossCheck bool
	// Workers bounds concurrent executions; <= 0 means GOMAXPROCS.
	Workers int
}

// SweepResult is one run's deterministic outcome. Everything here
// depends only on (Scenario, Exec options) — never on worker count or
// scheduling — so a sweep's results can be byte-compared across
// parallelism levels.
type SweepResult struct {
	Scenario Scenario
	// Fingerprint is the run's combined observable hash:
	// Report.Fingerprint for a single-algorithm run, the
	// CrossCheckFingerprint fold otherwise. Zero when the scenario could
	// not execute at all (oracle verdicts still fingerprint the run).
	Fingerprint uint64
	// Vacuous reports a run with no trustworthy convergence comparison
	// (single-algorithm runs only).
	Vacuous bool
	// SpanCount/SpanDropped summarize the run's span log when spans were
	// requested; the log itself is discarded so a long sweep at scale
	// holds at most Workers logs in memory at once.
	SpanCount   int
	SpanDropped int
	Err         error
}

// Sweep generates and executes Runs scenarios across a bounded worker
// pool, preserving run order in the returned slice. Execute is pure —
// each run owns its engine, fabric, and seed-derived RNG, and the chaos
// package keeps no mutable package state — so the same SweepOptions
// yield identical results at any Workers setting; parallelism only buys
// wall-clock time.
func Sweep(o SweepOptions) []SweepResult {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]SweepResult, o.Runs)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < o.Runs; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = sweepOne(Generate(o.Seed+uint64(i), o.Profile), o)
		}(i)
	}
	wg.Wait()
	return out
}

// sweepOne executes a single generated scenario under the sweep's
// options.
func sweepOne(sc Scenario, o SweepOptions) SweepResult {
	res := SweepResult{Scenario: sc}
	if o.CrossCheck {
		res.Fingerprint, res.Err = CrossCheckFingerprint(sc, o.Exec)
		return res
	}
	rep, err := Execute(sc, o.Exec)
	if err != nil {
		res.Err = err
		return res
	}
	res.Fingerprint = rep.Fingerprint
	res.Vacuous = rep.Vacuous()
	if rep.Spans != nil {
		res.SpanCount = len(rep.Spans.Spans)
		res.SpanDropped = rep.Spans.Dropped
	}
	res.Err = (Oracle{}).Check(rep)
	return res
}
