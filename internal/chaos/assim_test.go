package chaos

import (
	"testing"

	"repro/internal/asi"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
)

// TestCorpusAssimilationEquivalence is the equivalence property over the
// committed corpus: for every scenario, batched-coalesced assimilation
// must reach the same quiescent database fingerprint as per-event Partial
// assimilation, and — when the audit ran undefeated — the same database a
// full rediscovery of the settled fabric rebuilds from scratch. Scenarios
// where injected loss defeated a run in either mode are excluded (a
// gave-up run legitimately truncates a subtree), but the suite fails if
// that exclusion leaves nothing compared.
func TestCorpusAssimilationEquivalence(t *testing.T) {
	compared := 0
	for _, sc := range CorpusScenarios() {
		sc := sc
		t.Run(CorpusFilename(sc), func(t *testing.T) {
			s := sc
			s.Algorithm = core.Partial.Slug()
			perEvent, err := Execute(s, Options{})
			if err != nil {
				t.Fatal(err)
			}
			coalesced, err := Execute(s, Options{Coalesce: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := (Oracle{}).Check(perEvent); err != nil {
				t.Errorf("per-event oracle: %v", err)
			}
			if err := (Oracle{}).Check(coalesced); err != nil {
				t.Errorf("coalesced oracle: %v", err)
			}
			if !allTrustworthy(perEvent) || !allTrustworthy(coalesced) {
				t.Logf("excluded: a run was defeated by injected loss")
				return
			}
			compared++
			if perEvent.PostChurnFP != coalesced.PostChurnFP {
				t.Errorf("post-churn databases differ: per-event %#x, coalesced %#x",
					perEvent.PostChurnFP, coalesced.PostChurnFP)
			}
			// The audit rediscovered the same settled fabric from scratch;
			// its database is the full-rediscovery reference.
			if coalesced.AuditRan && coalesced.PostChurnFP != coalesced.DBFingerprint {
				t.Errorf("coalesced post-churn database %#x differs from full-rediscovery audit %#x",
					coalesced.PostChurnFP, coalesced.DBFingerprint)
			}
		})
	}
	if compared == 0 {
		t.Error("loss exclusions left no corpus scenario compared; the property checked nothing")
	}
}

// TestContinuousSteadyState drives the steady-state chaos mode: Churner
// rounds against the coalescing FM, with convergence asserted at every
// quiescent point by the executor and judged by the oracle.
func TestContinuousSteadyState(t *testing.T) {
	sc := Scenario{
		Name:     "continuous-4x4",
		Seed:     7,
		Topology: TopologySpec{Catalogue: "4x4 mesh"},
	}
	for _, coalesce := range []bool{false, true} {
		sc.Algorithm = core.Partial.Slug()
		opt := Options{Continuous: 6, ContinuousOps: 3, Coalesce: coalesce, Telemetry: true}
		rep, err := Execute(sc, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := (Oracle{}).Check(rep); err != nil {
			t.Errorf("coalesce=%v: oracle: %v", coalesce, err)
		}
		if rep.ContinuousRounds != 6 {
			t.Errorf("coalesce=%v: %d continuous rounds completed, want 6", coalesce, rep.ContinuousRounds)
		}
		if rep.ContinuousChecked == 0 {
			t.Errorf("coalesce=%v: no quiescent point was convergence-checkable; pick a friendlier seed", coalesce)
		}
		events, _ := rep.Telemetry.Counter(core.MetricFMAssimEvents)
		flushes, _ := rep.Telemetry.Counter(core.MetricFMAssimFlushes)
		if coalesce {
			if events == 0 || flushes == 0 {
				t.Errorf("coalescing on: %d assim events, %d flushes; want both nonzero", events, flushes)
			}
		} else if events != 0 || flushes != 0 {
			t.Errorf("coalescing off: %d assim events, %d flushes; want both zero", events, flushes)
		}
	}
}

// pi5Recorder captures every PI-5 packet delivered to the FM so the fuzz
// target can re-deliver verbatim copies as stale-sequence duplicates.
type pi5Recorder struct {
	inner fabric.Handler
	pkts  []asi.Packet
}

func (r *pi5Recorder) HandlePacket(port int, pkt *asi.Packet) {
	if pkt.Header.PI == asi.PI5EventReporting {
		r.pkts = append(r.pkts, *pkt)
	}
	r.inner.HandlePacket(port, pkt)
}

// FuzzCoalesce interleaves switch toggles, partial drains and verbatim
// stale PI-5 re-deliveries against the coalescing front-end. Whatever the
// interleaving, the FM must never panic, never strand accepted reports
// (idle manager, empty debounce window at quiescence), and converge to
// the live ground truth once the fabric is restored and drained.
func FuzzCoalesce(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0})                               // down/up the same switch back to back
	f.Add([]byte{0, 2, 0, 2})                         // toggles separated by drains
	f.Add([]byte{0, 4, 3, 2, 8, 0, 3})                // toggles, stale dup, drain, more churn
	f.Add([]byte{0, 8, 16, 24, 32, 40, 48, 56, 2, 3}) // storm across many switches, then dup
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			data = data[:256]
		}
		tp := topo.Mesh(3, 3)
		e := sim.NewEngine()
		fb, err := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		ep := fb.Device(tp.Endpoints()[0])
		m := core.NewManager(fb, ep, core.Options{
			Algorithm:     core.Partial,
			AssimWindow:   200 * sim.Microsecond,
			AssimBatchMax: 8,
		})
		var results []core.Result
		m.OnDiscoveryComplete = func(r core.Result) { results = append(results, r) }
		rec := &pi5Recorder{inner: m}
		ep.SetHandler(rec)
		m.StartDiscovery()
		e.Run()
		m.DistributeEventRoutes(nil)
		e.Run()
		if m.Discovering() {
			t.Fatal("setup: initial discovery did not complete")
		}

		// Churnable switches: everything but the FM's uplink switch.
		host := hostSwitch(tp)
		var switches []topo.NodeID
		for _, n := range tp.Nodes {
			if n.Type == asi.DeviceSwitch && n.ID != host {
				switches = append(switches, n.ID)
			}
		}
		down := make(map[topo.NodeID]bool)
		for _, b := range data {
			arg := int(b / 4)
			switch b % 4 {
			case 0, 1: // toggle a switch, honoring its current state
				sw := switches[arg%len(switches)]
				if down[sw] {
					err = fb.SetDeviceUp(sw, false)
				} else {
					err = fb.SetDeviceDown(sw, false)
				}
				if err != nil {
					t.Fatalf("toggle %v: %v", sw, err)
				}
				down[sw] = !down[sw]
			case 2: // advance simulated time without fully draining
				e.RunUntil(e.Now().Add(sim.Duration(arg) * 20 * sim.Microsecond))
			case 3: // re-deliver a recorded PI-5 verbatim: a stale duplicate
				if len(rec.pkts) > 0 {
					pkt := rec.pkts[arg%len(rec.pkts)]
					m.HandlePacket(0, &pkt)
				}
			}
		}

		// Restore every downed switch and drain to quiescence.
		for _, sw := range switches {
			if down[sw] {
				if err := fb.SetDeviceUp(sw, false); err != nil {
					t.Fatalf("restore %v: %v", sw, err)
				}
			}
		}
		e.Run()

		if m.Discovering() {
			t.Fatal("manager still discovering after full drain")
		}
		if n := m.AssimPending(); n != 0 {
			t.Fatalf("%d reports stranded in the debounce window after full drain", n)
		}
		// A run defeated by a timeout (a request in flight to a switch
		// that died under it) may have truncated the database; a clean
		// audit over the restored, loss-free fabric must repair it.
		trusted := true
		for _, r := range results {
			if r.TimedOut > 0 || r.GaveUp > 0 {
				trusted = false
				break
			}
		}
		if !trusted {
			m.StartDiscovery()
			e.Run()
		}
		wantDev, wantLinks := GroundTruth(fb, ep.ID)
		db := m.DB()
		if db.NumNodes() != wantDev || db.NumLinks() != wantLinks {
			t.Fatalf("database has %d devices / %d links at quiescence, ground truth %d / %d",
				db.NumNodes(), db.NumLinks(), wantDev, wantLinks)
		}
		reach := db.ReachableFromHost()
		for _, n := range db.Nodes() {
			if !reach[n.DSN] {
				t.Fatalf("node %v unreachable in the FM's own database", n.DSN)
			}
		}
	})
}
