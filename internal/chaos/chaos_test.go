package chaos

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/asi"
	"repro/internal/core"
	"repro/internal/topo"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, p := range Profiles() {
		a := Generate(7, p)
		b := Generate(7, p)
		if !bytes.Equal(a.EncodeJSON(), b.EncodeJSON()) {
			t.Errorf("%s: Generate(7) not deterministic", p.Name)
		}
		c := Generate(8, p)
		if bytes.Equal(a.EncodeJSON(), c.EncodeJSON()) {
			t.Errorf("%s: seeds 7 and 8 generated identical scenarios", p.Name)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("%s: generated scenario invalid: %v", p.Name, err)
		}
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	for _, p := range Profiles() {
		sc := Generate(3, p)
		enc := sc.EncodeJSON()
		dec, err := DecodeJSON(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", p.Name, err)
		}
		if !bytes.Equal(enc, dec.EncodeJSON()) {
			t.Errorf("%s: round trip changed the scenario", p.Name)
		}
	}
	if _, err := DecodeJSON([]byte(`{"seed": 1, "bogus": true}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() Scenario {
		return Scenario{
			Seed:      1,
			Topology:  TopologySpec{Switches: 4, Seed: 5},
			Algorithm: core.Parallel.Slug(),
		}
	}
	tp, err := base().Topology.Build()
	if err != nil {
		t.Fatal(err)
	}
	host := int(hostSwitch(tp))
	leaf := -1
	for _, n := range tp.Nodes {
		if n.Type == asi.DeviceSwitch && int(n.ID) != host {
			leaf = int(n.ID)
			break
		}
	}
	cases := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"unknown algorithm", func(s *Scenario) { s.Algorithm = "bogus" }},
		{"distributed needs a team", func(s *Scenario) { s.Algorithm = core.Distributed.Slug() }},
		{"loss out of range", func(s *Scenario) { s.Loss = 1.5 }},
		{"unknown op", func(s *Scenario) { s.Events = []Event{{AtUS: 1, Op: "explode"}} }},
		{"down on endpoint", func(s *Scenario) { s.Events = []Event{{AtUS: 1, Op: OpDown, Node: int(tp.Endpoints()[0])}} }},
		{"down on host switch", func(s *Scenario) { s.Events = []Event{{AtUS: 1, Op: OpDown, Node: host}} }},
		{"double down", func(s *Scenario) {
			s.Events = []Event{{AtUS: 1, Op: OpDown, Node: leaf}, {AtUS: 2, Op: OpDown, Node: leaf}}
		}},
		{"up before down", func(s *Scenario) { s.Events = []Event{{AtUS: 1, Op: OpUp, Node: leaf}} }},
		{"times out of order", func(s *Scenario) {
			s.Events = []Event{{AtUS: 9, Op: OpDown, Node: leaf}, {AtUS: 3, Op: OpUp, Node: leaf}}
		}},
		{"flap on missing link", func(s *Scenario) { s.Events = []Event{{AtUS: 1, Op: OpFlap, Link: 999, DurUS: 5}} }},
		{"flap without duration", func(s *Scenario) { s.Events = []Event{{AtUS: 1, Op: OpFlap, Link: 0}} }},
	}
	for _, tc := range cases {
		sc := base()
		tc.mut(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Errorf("base scenario rejected: %v", err)
	}
}

func TestSanitizeAlwaysValidates(t *testing.T) {
	f := func(seed uint64, sw, extra int, alg string, loss, delayProb float64, retries int,
		atA, atB float64, nodeA, nodeB, link int, durUS float64) bool {
		sc := Scenario{
			Seed:       seed,
			Topology:   TopologySpec{Switches: sw, ExtraLinks: extra, Seed: seed},
			Algorithm:  alg,
			Loss:       loss,
			DelayProb:  delayProb,
			MaxRetries: retries,
			Events: []Event{
				{AtUS: atA, Op: OpDown, Node: nodeA},
				{AtUS: atB, Op: OpUp, Node: nodeB},
				{AtUS: atA, Op: OpFlap, Link: link, DurUS: durUS},
				{AtUS: atB, Op: "bogus"},
			},
		}
		return Sanitize(sc).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExecuteDeterministic(t *testing.T) {
	for _, p := range Profiles() {
		sc := Generate(2, p)
		a, err := Execute(sc, Options{Telemetry: true})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		b, err := Execute(sc, Options{Telemetry: true})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if a.Fingerprint != b.Fingerprint {
			t.Errorf("%s: two executions fingerprint %#x and %#x", p.Name, a.Fingerprint, b.Fingerprint)
		}
		errA, errB := (Oracle{}).Check(a), (Oracle{}).Check(b)
		if (errA == nil) != (errB == nil) {
			t.Errorf("%s: oracle verdicts differ: %v vs %v", p.Name, errA, errB)
		}
	}
}

func TestSmokeAllProfiles(t *testing.T) {
	for _, p := range Profiles() {
		for seed := uint64(1); seed <= 5; seed++ {
			sc := Generate(seed, p)
			rep, err := Execute(sc, Options{Telemetry: true, Spans: true})
			if err != nil {
				t.Fatalf("%s seed %d: %v", p.Name, seed, err)
			}
			if err := (Oracle{}).Check(rep); err != nil {
				t.Errorf("%s seed %d (%s): %v", p.Name, seed, sc.Name, err)
			}
		}
	}
}

func TestCrossCheckAgreement(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		sc := Generate(seed, mustProfile(t, "quick"))
		if err := CrossCheck(sc, Options{Telemetry: true}); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestOracleCatchesSkippedPI5AndShrinks breaks the system on purpose:
// the executor's pi5Filter swallows the one PI-5 report of a leaf-switch
// removal, so the fabric counts a delivery the manager never assimilates.
// The oracle must notice (PI-5 after the last change with no discovery
// run following it), and the shrinker must cut the reproducer down to a
// handful of switches and at most two script events.
func TestOracleCatchesSkippedPI5AndShrinks(t *testing.T) {
	opt := Options{Telemetry: true, SkipPI5: 1}
	fails := func(sc Scenario) bool {
		rep, err := Execute(sc, opt)
		return err == nil && (Oracle{}).Check(rep) != nil
	}
	spec := TopologySpec{Switches: 12, Seed: 11}
	tp, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	host := hostSwitch(tp)
	for _, n := range tp.Nodes {
		// A leaf switch has exactly one switch neighbour, so its removal
		// produces exactly one deliverable PI-5 (the one the filter eats:
		// its own endpoint's report dies inside the dead region).
		if n.Type != asi.DeviceSwitch || n.ID == host || switchNeighbors(tp, n.ID) != 1 {
			continue
		}
		sc := Scenario{
			Seed:      5,
			Topology:  spec,
			Algorithm: core.Parallel.Slug(),
			Events: []Event{
				{AtUS: 20, Op: OpFlap, Link: 0, DurUS: 30},
				{AtUS: 400, Op: OpDown, Node: int(n.ID)},
			},
		}
		if !fails(sc) {
			continue
		}
		rep, err := Execute(sc, opt)
		if err != nil {
			t.Fatal(err)
		}
		oerr := (Oracle{}).Check(rep)
		if oerr == nil || !strings.Contains(oerr.Error(), "PI-5") {
			t.Fatalf("oracle error does not name the lost PI-5: %v", oerr)
		}
		min := Shrink(sc, fails)
		if !fails(min) {
			t.Fatal("shrunk scenario no longer fails")
		}
		mtp, err := min.Topology.Build()
		if err != nil {
			t.Fatal(err)
		}
		if sw := mtp.NumSwitches(); sw > 6 || len(min.Events) > 2 {
			t.Fatalf("shrunk to %d switches / %d events, want <= 6 / <= 2\n%s",
				sw, len(min.Events), min.EncodeJSON())
		}
		// And the same scenario with the filter removed is healthy.
		repOK, err := Execute(min, Options{Telemetry: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := (Oracle{}).Check(repOK); err != nil {
			t.Fatalf("minimal scenario fails even without the injected fault: %v", err)
		}
		return
	}
	t.Fatal("no leaf-switch scenario tripped the oracle")
}

// switchNeighbors counts distinct switch nodes cabled to n.
func switchNeighbors(tp *topo.Topology, id topo.NodeID) int {
	seen := map[topo.NodeID]bool{}
	n := tp.Nodes[id]
	for p := 0; p < n.Ports; p++ {
		peer, _, ok := tp.Peer(id, p)
		if ok && tp.Nodes[peer].Type == asi.DeviceSwitch && !seen[peer] {
			seen[peer] = true
		}
	}
	return len(seen)
}

func mustProfile(t *testing.T, name string) Profile {
	t.Helper()
	p, ok := ProfileByName(name)
	if !ok {
		t.Fatalf("missing profile %q", name)
	}
	return p
}
