package chaos

import "bytes"

// maxShrinkEvals bounds the number of predicate evaluations a shrink may
// spend; each evaluation replays a full scenario. Greedy shrinking
// converges long before this in practice — the cap is a backstop against
// a pathologically slow predicate.
const maxShrinkEvals = 300

// Shrink greedily minimises a failing scenario while keeping it failing:
// it drops script events (last first), shrinks the topology, and weakens
// the fault model, re-running the predicate on every candidate, until a
// whole pass makes no progress. The returned scenario still satisfies
// fails (it is the last candidate that did) and always validates.
//
// fails must be deterministic — with a deterministic executor behind it,
// any scenario either always fails or never does, which is what makes
// greedy shrinking sound here.
func Shrink(sc Scenario, fails func(Scenario) bool) Scenario {
	cur := sc
	cur.Name = ""
	evals := 0
	try := func(cand Scenario) bool {
		if evals >= maxShrinkEvals {
			return false
		}
		if cand.Validate() != nil {
			return false
		}
		if bytes.Equal(cand.EncodeJSON(), cur.EncodeJSON()) {
			return false
		}
		evals++
		if !fails(cand) {
			return false
		}
		cur = cand
		return true
	}
	for {
		improved := false
		// Drop script events, last first; re-filter the survivors so
		// orphaned ups (whose down was removed) go too.
		for i := len(cur.Events) - 1; i >= 0; i-- {
			if i >= len(cur.Events) {
				continue // an accepted candidate shrank the script under us
			}
			cand := cur
			events := make([]Event, 0, len(cur.Events)-1)
			events = append(events, cur.Events[:i]...)
			events = append(events, cur.Events[i+1:]...)
			cand.Events = events
			if try(refitEvents(cand)) {
				improved = true
			}
		}
		// Shrink the topology; events are refitted against the smaller
		// graph (out-of-range targets drop out).
		for _, cand := range topologyCandidates(cur) {
			if try(refitEvents(cand)) {
				improved = true
				break
			}
		}
		// Weaken the fault model and retry policy.
		for _, cand := range faultCandidates(cur) {
			if try(cand) {
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// refitEvents re-validates a candidate's event script against its
// (possibly changed) topology, keeping the valid subsequence.
func refitEvents(sc Scenario) Scenario {
	tp, err := sc.Topology.Build()
	if err != nil {
		return sc // unbuildable candidates are rejected by Validate
	}
	sc.Events = normalizeEvents(sc.Events, tp)
	return sc
}

// topologyCandidates proposes strictly smaller fabrics.
func topologyCandidates(sc Scenario) []Scenario {
	var out []Scenario
	add := func(spec TopologySpec) {
		cand := sc
		cand.Topology = spec
		out = append(out, cand)
	}
	ts := sc.Topology
	if ts.Catalogue != "" {
		// Replace a catalogue fabric with small random ones seeded off
		// the scenario itself.
		add(TopologySpec{Switches: 6, ExtraLinks: 2, Seed: sc.Seed})
		add(TopologySpec{Switches: 4, Seed: sc.Seed})
		add(TopologySpec{Switches: 3, Seed: sc.Seed})
		return out
	}
	if ts.Switches > 2 {
		half := ts.Switches / 2
		if half < 2 {
			half = 2
		}
		if half < ts.Switches {
			add(TopologySpec{Switches: half, ExtraLinks: min(ts.ExtraLinks, half), Seed: ts.Seed})
		}
		add(TopologySpec{Switches: ts.Switches - 1, ExtraLinks: min(ts.ExtraLinks, ts.Switches-1), Seed: ts.Seed})
	}
	if ts.ExtraLinks > 0 {
		add(TopologySpec{Switches: ts.Switches, Seed: ts.Seed})
	}
	return out
}

// faultCandidates proposes weaker fault models and retry policies.
func faultCandidates(sc Scenario) []Scenario {
	var out []Scenario
	add := func(mut func(*Scenario)) {
		cand := sc
		mut(&cand)
		out = append(out, cand)
	}
	if sc.Loss > 0 {
		add(func(c *Scenario) { c.Loss = 0 })
	}
	if sc.DropFirst > 0 {
		add(func(c *Scenario) { c.DropFirst = 0 })
	}
	if sc.DelayProb > 0 || sc.DelayUS > 0 {
		add(func(c *Scenario) { c.DelayProb, c.DelayUS = 0, 0 })
	}
	if sc.MaxRetries > 0 {
		add(func(c *Scenario) { c.MaxRetries, c.BackoffUS = 0, 0 })
	}
	if sc.BackoffUS > 0 {
		add(func(c *Scenario) { c.BackoffUS = 0 })
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
