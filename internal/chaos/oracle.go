package chaos

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/span"
	"repro/internal/telemetry"
	"repro/internal/topo"
)

// GroundTruth computes the alive-reachable fabric as seen from start:
// the number of devices reachable from it over live links through active
// ports, and the number of topology links with both ends in that alive
// set. It is the reference every discovery result is compared against
// (promoted here from core's property tests so the chaos harness, the
// property tests and external tools share one definition).
func GroundTruth(f *fabric.Fabric, start topo.NodeID) (devices, links int) {
	if !f.Alive(start) {
		return 0, 0
	}
	alive := map[topo.NodeID]bool{}
	seen := map[topo.NodeID]bool{start: true}
	queue := []topo.NodeID{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		alive[n] = true
		for p := 0; p < f.Device(n).Ports(); p++ {
			peer, _, ok := f.Topo.Peer(n, p)
			if !ok || !f.Alive(peer) || seen[peer] {
				continue
			}
			if !f.Device(n).PortActive(p) {
				continue
			}
			seen[peer] = true
			queue = append(queue, peer)
		}
	}
	for _, l := range f.Topo.Links {
		if alive[l.A] && alive[l.B] {
			links++
		}
	}
	return len(alive), links
}

// CheckConverged verifies that one completed discovery result matches the
// fabric's current alive-reachable ground truth and that the manager's
// database is internally consistent: node and link counts agree with the
// result, and every stored node is reachable over the database's own
// links from the host endpoint. Property tests and the executor's audit
// phase share this check.
func CheckConverged(f *fabric.Fabric, m *core.Manager, res core.Result) error {
	wantDev, wantLinks := GroundTruth(f, m.Device().ID)
	if res.Devices != wantDev || res.Links != wantLinks {
		return fmt.Errorf("chaos: result has %d devices / %d links, ground truth %d / %d",
			res.Devices, res.Links, wantDev, wantLinks)
	}
	db := m.DB()
	if db.NumNodes() != wantDev || db.NumLinks() != wantLinks {
		return fmt.Errorf("chaos: database has %d devices / %d links, ground truth %d / %d",
			db.NumNodes(), db.NumLinks(), wantDev, wantLinks)
	}
	// One BFS covers every node: db.PathTo(n) is non-nil exactly when n
	// is in the host's reachable set (endpoints hold a single cable, so
	// switch-only forwarding and plain reachability agree). The previous
	// per-node PathTo loop was O(V^2 * L) and took hours at 10k switches.
	reach := db.ReachableFromHost()
	for _, n := range db.Nodes() {
		if !reach[n.DSN] {
			return fmt.Errorf("chaos: node %v unreachable in the FM's own database", n.DSN)
		}
	}
	return nil
}

// Oracle checks a chaos run report against the harness invariants. The
// zero value checks everything the report carries.
type Oracle struct{}

// Check returns nil when every invariant holds, or an error joining
// every violated one:
//
//  1. Termination: no phase exhausted its horizon with events still
//     pending, and the manager is idle once the script quiesces.
//  2. Setup: the initial discovery completed, trustworthily, matching
//     ground truth, and every scripted event applied cleanly.
//  3. Convergence: if any PI-5 reached the FM at or after the last
//     scripted change, a discovery run must have started after that
//     change, and — when that run was not defeated by injected loss —
//     the post-churn database must equal the alive-fabric ground truth.
//     Steady-state continuous rounds (Options.Continuous) must record
//     no quiescent-point violations.
//  4. Audit: the executor's forced post-quiescence rediscovery (when
//     enabled and not defeated by loss) must equal ground truth, with a
//     path-consistent database.
//  5. Generations: superseded discovery generations never corrupt the
//     database — enforced via the audit/post-churn equality plus the
//     stale-completion counter being consistent with telemetry.
//  6. Conservation: lifetime telemetry counters obey the manager's
//     retry-state machine (timeouts = retries + giveups when retrying;
//     no retries or giveups otherwise) and fabric fault accounting
//     (per-link fault-drop vector sums to the drop counter; flap
//     counter matches).
//  7. Spans: when span tracing was on, the causal span log validates.
func (o Oracle) Check(rep *Report) error {
	var errs []error
	fail := func(format string, a ...any) { errs = append(errs, fmt.Errorf(format, a...)) }

	// 1. Termination.
	if rep.Hung != "" {
		fail("chaos: %s phase did not terminate within the horizon", rep.Hung)
	}
	if rep.StillDiscovering {
		fail("chaos: manager still mid-discovery after the event script quiesced")
	}

	// 2. Setup.
	if !rep.InitialOK {
		fail("chaos: initial discovery did not complete")
	} else if err := rep.InitialErr; err != nil {
		fail("chaos: initial discovery diverged: %w", err)
	}
	// Distribution writes may legitimately fail when the fault model can
	// exhaust the retry budget; on a loss-free fabric they may not.
	if rep.DistFailures > 0 && rep.Scenario.Loss == 0 && rep.Scenario.DropFirst == 0 {
		fail("chaos: %d event-route distribution failures on a loss-free fabric", rep.DistFailures)
	}
	for _, ev := range rep.EventErrs {
		fail("chaos: %s", ev)
	}

	// 3. Post-churn convergence, gated on observable PI-5 delivery.
	if rep.PI5AfterLast > 0 {
		if rep.ChurnRun < 0 {
			fail("chaos: %d PI-5 reports reached the FM after the last change but no discovery started after it",
				rep.PI5AfterLast)
		} else if r := rep.Results[rep.ChurnRun]; rep.Trustworthy(r) {
			if rep.PostChurnDevices != rep.WantDevices || rep.PostChurnLinks != rep.WantLinks {
				fail("chaos: post-churn database has %d devices / %d links, ground truth %d / %d",
					rep.PostChurnDevices, rep.PostChurnLinks, rep.WantDevices, rep.WantLinks)
			}
		}
	}

	// 3b. Steady-state churn: every quiescent point between continuous
	// rounds already judged itself; any recorded violation fails the run.
	for _, e := range rep.ContinuousErrs {
		fail("chaos: continuous churn: %s", e)
	}

	// 4 + 5. Audit rediscovery.
	if rep.AuditRan && rep.Trustworthy(rep.Audit) {
		if err := rep.AuditErr; err != nil {
			fail("chaos: audit rediscovery diverged: %w", err)
		}
	}

	// 6. Conservation.
	if rep.Telemetry != nil {
		errs = append(errs, o.checkConservation(rep)...)
	}

	// 7. Spans.
	if rep.Spans != nil {
		if err := span.Validate(*rep.Spans); err != nil {
			fail("chaos: span log invalid: %w", err)
		}
	}
	return errors.Join(errs...)
}

// checkConservation verifies the telemetry counter invariants.
func (o Oracle) checkConservation(rep *Report) []error {
	var errs []error
	fail := func(format string, a ...any) { errs = append(errs, fmt.Errorf(format, a...)) }
	s := rep.Telemetry
	timeouts, _ := s.Counter(core.MetricFMTimeouts)
	retries, _ := s.Counter(core.MetricFMRetries)
	giveups, _ := s.Counter(core.MetricFMGiveups)
	if rep.Scenario.MaxRetries > 0 {
		if timeouts != retries+giveups {
			fail("chaos: timeout conservation violated: %d timeouts != %d retries + %d giveups",
				timeouts, retries, giveups)
		}
	} else if retries != 0 || giveups != 0 {
		fail("chaos: retries disabled but telemetry has %d retries / %d giveups", retries, giveups)
	}
	// Results already includes the audit run (it completes last), so a
	// plain sum is the per-run total.
	var perRun uint64
	for _, r := range rep.Results {
		perRun += uint64(r.TimedOut)
	}
	if perRun > timeouts {
		fail("chaos: per-run results report %d timeouts, lifetime telemetry only %d", perRun, timeouts)
	}
	faultDrops := vecSum(s, fabric.MetricLinkFault)
	if got := rep.Counters.Drops[fabric.DropFaultInjected]; faultDrops != got {
		fail("chaos: per-link fault drops sum to %d, fabric counter says %d", faultDrops, got)
	}
	if flaps, _ := s.Counter(fabric.MetricLinkFlaps); flaps != rep.Counters.LinkFlaps {
		fail("chaos: telemetry counted %d link flaps, fabric %d", flaps, rep.Counters.LinkFlaps)
	}
	return errs
}

// Trustworthy reports whether a completed run's convergence claim is
// meaningful under the scenario's fault model: with retries enabled a
// run that never gave a request up must have self-healed every loss,
// while without retries any timeout may legitimately truncate the view.
func (rep *Report) Trustworthy(r core.Result) bool {
	if rep.Scenario.MaxRetries > 0 {
		return r.GaveUp == 0
	}
	return r.TimedOut == 0
}

// Vacuous reports whether the run exercised no meaningful convergence
// comparison at all — no trustworthy post-churn run and no trustworthy
// audit. Vacuous runs still check termination and conservation, but a
// fuzzing campaign should know how often the strong oracle actually ran.
func (rep *Report) Vacuous() bool {
	if rep.AuditRan && rep.Trustworthy(rep.Audit) {
		return false
	}
	if rep.PI5AfterLast > 0 && rep.ChurnRun >= 0 && rep.Trustworthy(rep.Results[rep.ChurnRun]) {
		return false
	}
	return true
}

// vecSum adds every slot of a counter-vector family.
func vecSum(s *telemetry.Snapshot, name string) uint64 {
	var sum uint64
	for _, v := range s.Vectors {
		if v.Name == name {
			sum += v.Value
		}
	}
	return sum
}
