// Package chaos is the deterministic chaos harness for the discovery
// process: a seeded scenario generator, an executor that drives a
// scenario through sim/fabric/core, an oracle that checks convergence
// and conservation invariants on every run, and a greedy shrinker that
// minimises failing scenarios before they are reported.
//
// A Scenario is a pure, reproducible value: a topology (Table 1
// catalogue entry or seeded random graph), a discovery algorithm, a
// fault model (loss, delay, deterministic first-N drops), a retry
// policy, and a timed event script of mid-run perturbations — device
// hot-removal and re-addition, link flaps, and back-to-back changes
// injected while a prior run is still assimilating. Equal scenarios
// replay bit-identically; the compact JSON form is the corpus and
// repro-exchange format (testdata/corpus, asichaos -replay, go fuzz).
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/asi"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Event ops. Each event perturbs the fabric at a scripted offset after
// the transient period (initial discovery + event-route distribution).
const (
	// OpDown hot-removes a switch (loud: neighbours report PI-5).
	OpDown = "down"
	// OpUp restores a previously removed switch.
	OpUp = "up"
	// OpFlap takes a link down for DurUS and back up (no PI-5 is emitted
	// for flaps; only discovery traffic notices).
	OpFlap = "flap"
)

// Event is one scripted perturbation.
type Event struct {
	// AtUS is the event's offset in microseconds after the transient
	// period ends (T0).
	AtUS float64 `json:"at_us"`
	// Op is one of OpDown, OpUp, OpFlap.
	Op string `json:"op"`
	// Node is the topology node ID targeted by down/up.
	Node int `json:"node,omitempty"`
	// Link is the topology link index targeted by flap.
	Link int `json:"link,omitempty"`
	// DurUS is the flap outage length in microseconds.
	DurUS float64 `json:"dur_us,omitempty"`
}

// TopologySpec selects the fabric under test: a Table 1 catalogue name,
// or a seeded random connected topology.
type TopologySpec struct {
	Catalogue  string `json:"catalogue,omitempty"`
	Switches   int    `json:"switches,omitempty"`
	ExtraLinks int    `json:"extra_links,omitempty"`
	Seed       uint64 `json:"seed,omitempty"`
}

// Build instantiates the described topology.
func (ts TopologySpec) Build() (*topo.Topology, error) {
	if ts.Catalogue != "" {
		return topo.ByName(ts.Catalogue)
	}
	if ts.Switches < 2 {
		return nil, fmt.Errorf("chaos: random topology needs >= 2 switches, have %d", ts.Switches)
	}
	return topo.Random(ts.Switches, ts.ExtraLinks, sim.NewRNG(ts.Seed)), nil
}

// Scenario is one reproducible chaos run description.
type Scenario struct {
	Name     string       `json:"name,omitempty"`
	Seed     uint64       `json:"seed"`
	Topology TopologySpec `json:"topology"`
	// Algorithm is a core.Kind slug (serial-packet, serial-device,
	// parallel, partial).
	Algorithm string `json:"algorithm"`
	// MaxRetries and BackoffUS configure the FM's timeout-retry policy.
	MaxRetries int     `json:"max_retries,omitempty"`
	BackoffUS  float64 `json:"backoff_us,omitempty"`
	// Loss, DropFirst, DelayProb and DelayUS populate the default rule of
	// the run's fabric.FaultPlan.
	Loss      float64 `json:"loss,omitempty"`
	DropFirst int     `json:"drop_first,omitempty"`
	DelayProb float64 `json:"delay_prob,omitempty"`
	DelayUS   float64 `json:"delay_us,omitempty"`
	// Events is the timed perturbation script.
	Events []Event `json:"events,omitempty"`
}

// Kind resolves the scenario's algorithm slug.
func (sc Scenario) Kind() (core.Kind, error) {
	k, ok := core.KindBySlug(sc.Algorithm)
	if !ok {
		return 0, fmt.Errorf("chaos: unknown algorithm %q", sc.Algorithm)
	}
	if k == core.Distributed {
		return 0, fmt.Errorf("chaos: algorithm %q needs a multi-FM team", sc.Algorithm)
	}
	return k, nil
}

// FaultPlan returns the scenario's fault model. Scripted flaps are NOT
// part of the plan — the executor schedules them relative to the end of
// the transient period, which is only known at run time.
func (sc Scenario) FaultPlan() fabric.FaultPlan {
	return fabric.FaultPlan{Default: fabric.LinkFaults{
		Loss:      sc.Loss,
		DropFirst: sc.DropFirst,
		DelayProb: sc.DelayProb,
		Delay:     sim.Micros(sc.DelayUS),
	}}
}

// EncodeJSON renders the scenario in its canonical byte form: indented
// JSON with a trailing newline. Equal scenarios encode byte-identically,
// which is what corpus regression and determinism tests compare.
func (sc Scenario) EncodeJSON() []byte {
	b, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		panic(err) // plain-data struct; cannot fail
	}
	return append(b, '\n')
}

// DecodeJSON parses a scenario, rejecting unknown fields so corpus files
// cannot silently rot.
func DecodeJSON(b []byte) (Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("chaos: decode scenario: %w", err)
	}
	return sc, nil
}

// Validate checks that the scenario is executable exactly as written:
// the topology builds, the algorithm resolves, fault fields are in
// range, and the event script is well-formed — every down/up alternates
// correctly per node, targets a switch other than the FM's host switch,
// and every flap names a real link.
func (sc Scenario) Validate() error {
	tp, err := sc.Topology.Build()
	if err != nil {
		return err
	}
	if _, err := sc.Kind(); err != nil {
		return err
	}
	if sc.Loss < 0 || sc.Loss >= 1 || sc.DelayProb < 0 || sc.DelayProb > 1 {
		return fmt.Errorf("chaos: fault probabilities out of range (loss=%v, delay_prob=%v)", sc.Loss, sc.DelayProb)
	}
	if sc.DropFirst < 0 || sc.DelayUS < 0 || sc.BackoffUS < 0 || sc.MaxRetries < 0 {
		return fmt.Errorf("chaos: negative fault/retry field")
	}
	host := hostSwitch(tp)
	down := map[int]bool{}
	prev := 0.0
	for i, ev := range sc.Events {
		if ev.AtUS < 0 || math.IsNaN(ev.AtUS) {
			return fmt.Errorf("chaos: event %d: bad time %v", i, ev.AtUS)
		}
		// Script order must be time order: the per-node alternation
		// check below (and the executor's same-time tie-breaking)
		// assume it.
		if ev.AtUS < prev {
			return fmt.Errorf("chaos: event %d: time %v before event %d's %v", i, ev.AtUS, i-1, prev)
		}
		prev = ev.AtUS
		switch ev.Op {
		case OpDown, OpUp:
			if ev.Node < 0 || ev.Node >= len(tp.Nodes) || tp.Nodes[ev.Node].Type != asi.DeviceSwitch {
				return fmt.Errorf("chaos: event %d: node %d is not a switch", i, ev.Node)
			}
			if topo.NodeID(ev.Node) == host {
				return fmt.Errorf("chaos: event %d: node %d hosts the FM's only uplink", i, ev.Node)
			}
			if (ev.Op == OpDown) == down[ev.Node] {
				return fmt.Errorf("chaos: event %d: %s on node %d out of order", i, ev.Op, ev.Node)
			}
			down[ev.Node] = ev.Op == OpDown
		case OpFlap:
			if ev.Link < 0 || ev.Link >= len(tp.Links) {
				return fmt.Errorf("chaos: event %d: link %d of %d", i, ev.Link, len(tp.Links))
			}
			if ev.DurUS <= 0 || math.IsNaN(ev.DurUS) {
				return fmt.Errorf("chaos: event %d: bad flap duration %v", i, ev.DurUS)
			}
		default:
			return fmt.Errorf("chaos: event %d: unknown op %q", i, ev.Op)
		}
	}
	return nil
}

// hostSwitch returns the switch cabled to the FM's host endpoint; taking
// it down would sever the manager from the whole fabric, so scripts are
// not allowed to target it (the paper's experiments exclude it too).
func hostSwitch(tp *topo.Topology) topo.NodeID {
	sw, _, _ := tp.Peer(tp.Endpoints()[0], 0)
	return sw
}

// Sanitize clamps an arbitrary decoded scenario (fuzz input) into an
// executable one: bounds every numeric field, falls back to a random
// topology / the parallel algorithm when names do not resolve, and
// rewrites the event script through a per-node state machine so that
// down/up alternate, targets are non-host switches and flaps name real
// links. Sanitize(sc) always validates.
func Sanitize(sc Scenario) Scenario {
	sc.Name = ""
	if sc.Topology.Catalogue != "" {
		if _, err := topo.ByName(sc.Topology.Catalogue); err != nil {
			sc.Topology.Catalogue = ""
		} else {
			sc.Topology.Switches, sc.Topology.ExtraLinks = 0, 0
		}
	}
	if sc.Topology.Catalogue == "" {
		sc.Topology.Switches = clampInt(sc.Topology.Switches, 2, 12)
		sc.Topology.ExtraLinks = clampInt(sc.Topology.ExtraLinks, 0, 16)
	}
	if k, err := (Scenario{Algorithm: sc.Algorithm}).Kind(); err != nil || !containsKind(ExecutableKinds(), k) {
		sc.Algorithm = core.Parallel.Slug()
	}
	sc.Loss = clampFloat(sc.Loss, 0, 0.1)
	sc.DropFirst = clampInt(sc.DropFirst, 0, 8)
	sc.DelayProb = clampFloat(sc.DelayProb, 0, 1)
	sc.DelayUS = clampFloat(sc.DelayUS, 0, 500)
	sc.MaxRetries = clampInt(sc.MaxRetries, 0, 5)
	sc.BackoffUS = clampFloat(sc.BackoffUS, 0, 1000)
	if len(sc.Events) > 8 {
		sc.Events = sc.Events[:8]
	}
	tp, err := sc.Topology.Build()
	if err != nil {
		panic(err) // clamps above guarantee a buildable spec
	}
	sc.Events = normalizeEvents(sc.Events, tp)
	return sc
}

// normalizeEvents filters an event script down to the subsequence that
// is valid against tp: in-range non-host switch targets with correct
// down/up alternation, in-range flap links, clamped times and durations.
func normalizeEvents(events []Event, tp *topo.Topology) []Event {
	host := hostSwitch(tp)
	down := map[int]bool{}
	var out []Event
	clamped := make([]Event, len(events))
	for i, ev := range events {
		ev.AtUS = clampFloat(ev.AtUS, 0, 2000)
		clamped[i] = ev
	}
	// Time order before the alternation state machine: script order must
	// be execution order.
	sort.SliceStable(clamped, func(i, j int) bool { return clamped[i].AtUS < clamped[j].AtUS })
	for _, ev := range clamped {
		switch ev.Op {
		case OpDown, OpUp:
			if ev.Node < 0 || ev.Node >= len(tp.Nodes) {
				continue
			}
			if tp.Nodes[ev.Node].Type != asi.DeviceSwitch || topo.NodeID(ev.Node) == host {
				continue
			}
			if (ev.Op == OpDown) == down[ev.Node] {
				continue
			}
			down[ev.Node] = ev.Op == OpDown
			ev.Link, ev.DurUS = 0, 0
		case OpFlap:
			if len(tp.Links) == 0 {
				continue
			}
			if ev.Link < 0 || ev.Link >= len(tp.Links) {
				ev.Link = ev.Link & 0x7fffffff % len(tp.Links)
			}
			ev.DurUS = clampFloat(ev.DurUS, 1, 500)
			ev.Node = 0
		default:
			continue
		}
		out = append(out, ev)
	}
	return out
}

// ExecutableKinds lists the algorithms the single-manager executor can
// drive: the paper's three variants plus partial assimilation.
func ExecutableKinds() []core.Kind {
	return []core.Kind{core.SerialPacket, core.SerialDevice, core.Parallel, core.Partial}
}

func containsKind(ks []core.Kind, k core.Kind) bool {
	for _, x := range ks {
		if x == k {
			return true
		}
	}
	return false
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampFloat(v, lo, hi float64) float64 {
	if math.IsNaN(v) || v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// slugName renders a topology name as a filename-safe slug.
func slugName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}, name)
}
