package chaos

import (
	"fmt"

	"repro/internal/asi"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Churner generates an endless, deterministic stream of valid churn
// rounds against one topology: switch hot-removals and re-additions that
// alternate correctly per node and never target the switch hosting the
// FM's only uplink. It is the daemon's steady-state load source — where
// a Scenario carries a finite scripted event list, a Churner keeps a
// long-running fabric perturbed for as many rounds as the daemon asks.
type Churner struct {
	host     topo.NodeID
	switches []topo.NodeID
	down     map[topo.NodeID]bool
	rng      *sim.RNG
	rounds   uint64
}

// NewChurner builds a churner for the topology. It fails on fabrics with
// fewer than two switches — with only the host switch there is nothing
// legal to churn.
func NewChurner(tp *topo.Topology, seed uint64) (*Churner, error) {
	host := hostSwitch(tp)
	c := &Churner{
		host: host,
		down: make(map[topo.NodeID]bool),
		rng:  sim.NewRNG(seed*2654435761 + 5),
	}
	for _, n := range tp.Nodes {
		if n.Type == asi.DeviceSwitch && n.ID != host {
			c.switches = append(c.switches, n.ID)
		}
	}
	if len(c.switches) == 0 {
		return nil, fmt.Errorf("chaos: topology %q has no churnable switch (host switch excluded)", tp.Name)
	}
	return c, nil
}

// Round produces the next churn round: ops events spaced eventGapUS
// apart, each toggling a uniformly chosen non-host switch (down if up,
// up if down). The stream is a pure function of the seed and the call
// sequence, so a daemon restarted with the same config replays the same
// churn.
func (c *Churner) Round(ops int) []Event {
	const eventGapUS = 50
	c.rounds++
	events := make([]Event, 0, ops)
	for i := 0; i < ops; i++ {
		sw := c.switches[c.rng.Intn(len(c.switches))]
		op := OpDown
		if c.down[sw] {
			op = OpUp
		}
		c.down[sw] = !c.down[sw]
		events = append(events, Event{AtUS: float64(i * eventGapUS), Op: op, Node: int(sw)})
	}
	return events
}

// Quiesce returns the events restoring every switch the churner left
// down, in node order — applied before a final audit, it makes the
// fabric's ground truth the full topology again.
func (c *Churner) Quiesce() []Event {
	var downs []topo.NodeID
	for sw, d := range c.down {
		if d {
			downs = append(downs, sw)
		}
	}
	// Map order is random; node order keeps the stream deterministic.
	for i := 1; i < len(downs); i++ {
		for j := i; j > 0 && downs[j] < downs[j-1]; j-- {
			downs[j], downs[j-1] = downs[j-1], downs[j]
		}
	}
	events := make([]Event, 0, len(downs))
	for i, sw := range downs {
		c.down[sw] = false
		events = append(events, Event{AtUS: float64(i * 50), Op: OpUp, Node: int(sw)})
	}
	return events
}

// Rounds returns how many rounds have been generated.
func (c *Churner) Rounds() uint64 { return c.rounds }

// Down returns how many switches the churner currently holds down.
func (c *Churner) Down() int {
	n := 0
	for _, d := range c.down {
		if d {
			n++
		}
	}
	return n
}
