package chaos

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzScenario feeds arbitrary bytes through the scenario decoder, the
// sanitizer and the full executor + oracle. The committed corpus seeds
// it. Any input that decodes is clamped into an executable scenario;
// from there, every harness invariant must hold — a crash, hang or
// oracle violation is a real finding, and `asichaos -replay` on the
// sanitized scenario (printed by `go test -run Fuzz.../<id> -v`)
// reproduces it outside the fuzzer.
func FuzzScenario(f *testing.F) {
	files, err := os.ReadDir(filepath.Join("testdata", "corpus"))
	if err != nil {
		f.Fatal(err)
	}
	for _, fe := range files {
		b, err := os.ReadFile(filepath.Join("testdata", "corpus", fe.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		raw, err := DecodeJSON(data)
		if err != nil {
			t.Skip() // not a scenario; nothing to check
		}
		sc := Sanitize(raw)
		if err := sc.Validate(); err != nil {
			t.Fatalf("Sanitize produced an invalid scenario: %v\n%s", err, sc.EncodeJSON())
		}
		rep, err := Execute(sc, Options{Telemetry: true})
		if err != nil {
			t.Fatalf("sanitized scenario failed to execute: %v\n%s", err, sc.EncodeJSON())
		}
		if err := (Oracle{}).Check(rep); err != nil {
			min := Shrink(sc, func(c Scenario) bool {
				r, e := Execute(c, Options{Telemetry: true})
				return e == nil && (Oracle{}).Check(r) != nil
			})
			t.Fatalf("oracle violation: %v\nminimal reproducer:\n%s", err, min.EncodeJSON())
		}
	})
}

// FuzzGenerated fuzzes the generator itself: every (seed, profile
// index) pair must yield a valid scenario whose execution satisfies the
// oracle. This hunts for generator/executor disagreements the byte-level
// fuzzer is unlikely to reach (catalogue fabrics, clustered churn).
func FuzzGenerated(f *testing.F) {
	f.Add(uint64(1), uint8(0))
	f.Add(uint64(42), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, pidx uint8) {
		profiles := Profiles()
		p := profiles[int(pidx)%len(profiles)]
		sc := Generate(seed, p)
		if err := sc.Validate(); err != nil {
			t.Fatalf("Generate(%d, %s) invalid: %v", seed, p.Name, err)
		}
		rep, err := Execute(sc, Options{Telemetry: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := (Oracle{}).Check(rep); err != nil {
			t.Fatalf("oracle violation on %s:\n%v\n%s", sc.Name, err, sc.EncodeJSON())
		}
	})
}
