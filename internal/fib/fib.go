// Package fib derives forwarding state from one topology-RIB generation,
// the second stage of the daemon's installers → RIB → FIB → streaming
// server pipeline (modeled on production routing daemons, where the RIB
// holds what was learned and the FIB holds what is programmed).
//
// The derivation is a pure function of the database snapshot: for every
// discovered device it recomputes the FM's shortest source route over the
// recorded links (the unicast route table) and the turn-pool encoding the
// device must use to source PI-5 event reports back toward the FM (the
// event-route table). Deriving from the snapshot — rather than reusing
// the discovery-time paths — means a FIB generation is reproducible from
// its RIB generation alone, which is what lets subscribers verify a
// replayed stream against the live state.
package fib

import (
	"sort"

	"repro/internal/asi"
	"repro/internal/core"
	"repro/internal/route"
)

// Hop is one switch traversal of a source route, with JSON names for the
// streaming leaf encoding.
type Hop struct {
	Ports int `json:"ports"`
	In    int `json:"in"`
	Out   int `json:"out"`
}

// Route is the FM's source route to one device: the unicast entry the FM
// would use to address the device's configuration space.
type Route struct {
	DSN asi.DSN `json:"dsn"`
	// Hops is the switch-by-switch walk; empty means the device is
	// cabled directly to the FM's endpoint.
	Hops []Hop `json:"hops"`
	// ArrivalPort is the device port requests arrive on along Hops.
	ArrivalPort int `json:"arrival_port"`
}

// EventRoute is the turn-pool encoding a device uses to source PI-5
// event reports toward the FM (what DistributeEventRoutes programs).
type EventRoute struct {
	DSN asi.DSN `json:"dsn"`
	// Pool is the packed turn pool, Ptr the initial turn pointer.
	Pool uint64 `json:"pool"`
	Ptr  uint8  `json:"ptr"`
}

// Table is the forwarding state derived from one RIB generation.
type Table struct {
	// Host is the FM's endpoint, the root of every route.
	Host asi.DSN
	// Routes maps every other discovered device to the FM's source
	// route; EventRoutes to the device's PI-5 route back.
	Routes      map[asi.DSN]Route
	EventRoutes map[asi.DSN]EventRoute
	// Unrouted counts devices present in the database but unreachable
	// over its recorded links (mid-churn generations can carry them),
	// and Unencodable event routes whose turn pool overflowed.
	Unrouted    int
	Unencodable int
}

// Derive computes the FIB for one database generation. The database is
// read-only during the call; Derive never mutates it.
func Derive(db *core.DB) *Table {
	t := &Table{
		Host:        db.HostDSN,
		Routes:      make(map[asi.DSN]Route, db.NumNodes()),
		EventRoutes: make(map[asi.DSN]EventRoute, db.NumNodes()),
	}
	for _, n := range db.Nodes() {
		if n.DSN == db.HostDSN {
			continue
		}
		p, arrival := db.PathTo(n.DSN)
		if p == nil {
			t.Unrouted++
			continue
		}
		hops := make([]Hop, len(p))
		for i, h := range p {
			hops[i] = Hop{Ports: h.Ports, In: h.In, Out: h.Out}
		}
		t.Routes[n.DSN] = Route{DSN: n.DSN, Hops: hops, ArrivalPort: arrival}
		// The event route derives from the same recomputed path, so a
		// FIB generation is self-consistent even when the node's stored
		// discovery path predates a link change.
		pool, ptr, err := core.EventRouteFor(&core.Node{
			DSN: n.DSN, Type: n.Type, Ports: n.Ports,
			Path: p, ArrivalPort: arrival,
		})
		if err != nil {
			t.Unencodable++
			continue
		}
		t.EventRoutes[n.DSN] = EventRoute{DSN: n.DSN, Pool: pool, Ptr: ptr}
	}
	return t
}

// DSNs returns the route table's destinations in ascending order, the
// iteration order of every serialization.
func (t *Table) DSNs() []asi.DSN {
	out := make([]asi.DSN, 0, len(t.Routes))
	for dsn := range t.Routes {
		out = append(out, dsn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PathOf reconstructs the route.Path of a table entry (the inverse of the
// Hop flattening), for callers that want to re-encode or validate it.
func (r Route) PathOf() route.Path {
	p := make(route.Path, len(r.Hops))
	for i, h := range r.Hops {
		p[i] = route.Hop{Ports: h.Ports, In: h.In, Out: h.Out}
	}
	return p
}
