package fib

import (
	"testing"

	"repro/internal/asi"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/route"
	"repro/internal/sim"
	"repro/internal/topo"
)

// discover runs one full discovery and returns the manager (whose DB is
// the derivation input) and the fabric.
func discover(t *testing.T, topoName string) (*core.Manager, *fabric.Fabric) {
	t.Helper()
	tp, err := topo.ByName(topoName)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	f, err := fabric.New(e, tp, fabric.Config{}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewManager(f, f.Device(tp.Endpoints()[0]), core.Options{Algorithm: core.Parallel})
	done := false
	m.OnDiscoveryComplete = func(core.Result) { done = true }
	m.StartDiscovery()
	e.Run()
	if !done {
		t.Fatal("discovery did not complete")
	}
	return m, f
}

// The derived route table covers every non-host device, and every event
// route matches what the manager itself would program.
func TestDeriveCoversFabric(t *testing.T) {
	m, _ := discover(t, "4x4 mesh")
	db := m.DB()
	tab := Derive(db)
	if tab.Host != db.HostDSN {
		t.Errorf("host = %v, want %v", tab.Host, db.HostDSN)
	}
	if want := db.NumNodes() - 1; len(tab.Routes) != want {
		t.Errorf("%d routes, want %d (unrouted %d)", len(tab.Routes), want, tab.Unrouted)
	}
	if tab.Unrouted != 0 || tab.Unencodable != 0 {
		t.Errorf("unrouted=%d unencodable=%d on a healthy fabric", tab.Unrouted, tab.Unencodable)
	}
	for _, dsn := range tab.DSNs() {
		r := tab.Routes[dsn]
		// The recomputed path must encode and must match the node's
		// event route when re-derived through the manager's code path.
		if _, _, err := route.Encode(r.PathOf()); err != nil {
			t.Fatalf("route to %v does not encode: %v", dsn, err)
		}
		ev, ok := tab.EventRoutes[dsn]
		if !ok {
			t.Fatalf("no event route for %v", dsn)
		}
		n := db.Node(dsn)
		wantPool, wantPtr, err := m.EventRouteFor(&core.Node{
			DSN: n.DSN, Type: n.Type, Ports: n.Ports,
			Path: r.PathOf(), ArrivalPort: r.ArrivalPort,
		})
		if err != nil {
			t.Fatalf("manager refuses event route for %v: %v", dsn, err)
		}
		if ev.Pool != wantPool || ev.Ptr != wantPtr {
			t.Errorf("%v: event route (%#x,%d), manager derives (%#x,%d)",
				dsn, ev.Pool, ev.Ptr, wantPool, wantPtr)
		}
	}
}

// A device present in the database but cut off from the recorded links
// counts as unrouted instead of failing the derivation.
func TestDeriveUnroutedDevice(t *testing.T) {
	m, _ := discover(t, "3x3 mesh")
	db := m.DB().Clone()
	// Orphan one endpoint by deleting its only link.
	var orphan asi.DSN
	for _, n := range db.Nodes() {
		if n.Type == asi.DeviceEndpoint && n.DSN != db.HostDSN {
			orphan = n.DSN
			break
		}
	}
	if l, ok := db.LinkAt(orphan, 0); ok {
		db.RemoveLink(l)
	} else {
		t.Fatalf("endpoint %v has no recorded link", orphan)
	}
	tab := Derive(db)
	if tab.Unrouted != 1 {
		t.Errorf("unrouted = %d, want 1", tab.Unrouted)
	}
	if _, ok := tab.Routes[orphan]; ok {
		t.Errorf("orphaned %v still has a route", orphan)
	}
}

// Derivation is a pure function: the same database yields identical
// tables, and deriving never mutates the input.
func TestDeriveDeterministic(t *testing.T) {
	m, _ := discover(t, "4-port 2-tree")
	db := m.DB()
	before := db.Fingerprint()
	a, b := Derive(db), Derive(db)
	if db.Fingerprint() != before {
		t.Fatal("Derive mutated the database")
	}
	if len(a.Routes) != len(b.Routes) || len(a.EventRoutes) != len(b.EventRoutes) {
		t.Fatalf("table sizes differ: %d/%d vs %d/%d",
			len(a.Routes), len(a.EventRoutes), len(b.Routes), len(b.EventRoutes))
	}
	for dsn, ra := range a.Routes {
		rb := b.Routes[dsn]
		if ra.ArrivalPort != rb.ArrivalPort || len(ra.Hops) != len(rb.Hops) {
			t.Errorf("%v: routes differ: %+v vs %+v", dsn, ra, rb)
		}
	}
}
