package topo

import (
	"fmt"
	"testing"

	"repro/internal/asi"
	"repro/internal/sim"
)

// TestEveryFamilyValidates is the table-driven generator property suite:
// every family must produce a Validate-clean topology across a parameter
// grid plus seeded random sizes.
func TestEveryFamilyValidates(t *testing.T) {
	type instance struct {
		name  string
		build func() *Topology
	}
	var cases []instance
	for r := 2; r <= 5; r++ {
		for c := 2; c <= 6; c += 2 {
			r, c := r, c
			cases = append(cases,
				instance{fmt.Sprintf("mesh-%dx%d", r, c), func() *Topology { return Mesh(r, c) }},
				instance{fmt.Sprintf("torus-%dx%d", r, c), func() *Topology { return Torus(r, c) }},
			)
		}
	}
	for _, p := range []struct{ m, n int }{{4, 2}, {4, 3}, {6, 2}, {8, 2}, {8, 3}} {
		p := p
		cases = append(cases, instance{
			fmt.Sprintf("fattree-%d-%d", p.m, p.n),
			func() *Topology { return FatTree(p.m, p.n) },
		})
	}
	for _, p := range []struct{ k, m int }{{2, 2}, {3, 5}, {4, 9}, {5, 13}, {8, 17}, {16, 40}} {
		p := p
		cases = append(cases, instance{
			fmt.Sprintf("dragonfly-%dx%d", p.k, p.m),
			func() *Topology { return Dragonfly(p.k, p.m) },
		})
	}
	for _, p := range []struct{ ports, eps int }{{8, 8}, {8, 32}, {16, 100}, {24, 288}, {32, 500}, {64, 2048}} {
		p := p
		cases = append(cases, instance{
			fmt.Sprintf("autofat-%dx%d", p.ports, p.eps),
			func() *Topology { return AutoFatTree(AutoFatTreeSpec{Ports: p.ports, Endpoints: p.eps}) },
		})
	}
	rng := sim.NewRNG(7)
	for i := 0; i < 8; i++ {
		nsw := 2 + rng.Intn(300)
		extra := rng.Intn(64)
		seed := rng.Uint64()
		cases = append(cases, instance{
			fmt.Sprintf("random-%d+%d", nsw, extra),
			func() *Topology { return Random(nsw, extra, sim.NewRNG(seed)) },
		})
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			tp := c.build()
			if err := tp.Validate(); err != nil {
				t.Fatal(err)
			}
			if tp.NumSwitches() == 0 || tp.NumEndpoints() == 0 {
				t.Fatalf("%s: %d switches, %d endpoints", tp.Name, tp.NumSwitches(), tp.NumEndpoints())
			}
		})
	}
}

// switchDiameter computes the diameter of the switch-to-switch graph by
// BFS from every switch (endpoints excluded: they hang one hop off their
// switch and would add a constant 2).
func switchDiameter(tp *Topology) int {
	var switches []NodeID
	for _, n := range tp.Nodes {
		if n.Type == asi.DeviceSwitch {
			switches = append(switches, n.ID)
		}
	}
	diameter := 0
	dist := make(map[NodeID]int, len(switches))
	for _, start := range switches {
		for k := range dist {
			delete(dist, k)
		}
		dist[start] = 0
		queue := []NodeID{start}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for p := 0; p < tp.Nodes[n].Ports; p++ {
				peer, _, ok := tp.Peer(n, p)
				if !ok || tp.Nodes[peer].Type != asi.DeviceSwitch {
					continue
				}
				if _, seen := dist[peer]; seen {
					continue
				}
				dist[peer] = dist[n] + 1
				if dist[peer] > diameter {
					diameter = dist[peer]
				}
				queue = append(queue, peer)
			}
		}
		if len(dist) != len(switches) {
			return -1 // disconnected switch graph
		}
	}
	return diameter
}

// TestDragonflyDiameter checks the family's defining property on sampled
// (K, M): the switch graph has diameter <= 3 — one hop to the gateway,
// one global hop, one hop inside the destination group.
func TestDragonflyDiameter(t *testing.T) {
	for _, p := range []struct{ k, m int }{
		{2, 2}, {2, 9}, {3, 4}, {4, 6}, {4, 16}, {5, 11}, {8, 17}, {8, 30}, {16, 40},
	} {
		tp := Dragonfly(p.k, p.m)
		if d := switchDiameter(tp); d < 0 || d > 3 {
			t.Errorf("dragonfly %dx%d: switch-graph diameter %d, want <= 3", p.k, p.m, d)
		}
	}
}

// TestDragonflyStructure pins the construction: counts, the global-link
// budget, and the radix formula.
func TestDragonflyStructure(t *testing.T) {
	for _, p := range []struct{ k, m int }{{4, 6}, {8, 17}, {3, 10}} {
		tp := Dragonfly(p.k, p.m)
		if tp.NumSwitches() != p.k*p.m || tp.NumEndpoints() != p.k*p.m {
			t.Errorf("dragonfly %dx%d: %d switches / %d endpoints",
				p.k, p.m, tp.NumSwitches(), tp.NumEndpoints())
		}
		// Links: M complete graphs + one link per group pair + one
		// endpoint per switch.
		want := p.m*p.k*(p.k-1)/2 + p.m*(p.m-1)/2 + p.k*p.m
		if len(tp.Links) != want {
			t.Errorf("dragonfly %dx%d: %d links, want %d", p.k, p.m, len(tp.Links), want)
		}
		h := (p.m - 2 + p.k) / p.k
		wantPorts := p.k - 1 + h + EndpointReserve
		for _, n := range tp.Nodes {
			if n.Type == asi.DeviceSwitch && n.Ports != wantPorts {
				t.Fatalf("dragonfly %dx%d: switch radix %d, want %d", p.k, p.m, n.Ports, wantPorts)
			}
		}
	}
}

func TestDragonflyRejectsBadParams(t *testing.T) {
	for _, p := range []struct{ k, m int }{{1, 5}, {0, 2}, {4, 1}, {2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Dragonfly(%d,%d) did not panic", p.k, p.m)
				}
			}()
			Dragonfly(p.k, p.m)
		}()
	}
}

// TestAutoFatTreeDesign checks the designer's arithmetic: solved splits,
// the single-switch degenerate case, oversubscription, and infeasible
// specs.
func TestAutoFatTreeDesign(t *testing.T) {
	cases := []struct {
		in   AutoFatTreeSpec
		want Design
	}{
		{in: AutoFatTreeSpec{Ports: 8, Endpoints: 32}, want: Design{Down: 4, Up: 4, Leaves: 8, Spines: 4}},
		{in: AutoFatTreeSpec{Ports: 16, Endpoints: 100}, want: Design{Down: 8, Up: 8, Leaves: 13, Spines: 8}},
		{in: AutoFatTreeSpec{Ports: 8, Endpoints: 5}, want: Design{Down: 5, Up: 0, Leaves: 1, Spines: 0}},
		// Oversubscription 2:1 halves the uplink budget: down=10, up=5
		// fits radix 16 and needs fewer switches than non-blocking.
		{in: AutoFatTreeSpec{Ports: 16, Endpoints: 150, Oversub: 2}, want: Design{Down: 10, Up: 5, Leaves: 15, Spines: 5}},
	}
	for _, c := range cases {
		got, err := c.in.Design()
		if err != nil {
			t.Errorf("Design(%+v): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Design(%+v) = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, bad := range []AutoFatTreeSpec{
		{Ports: 4, Endpoints: 9},                // beyond two-layer capacity
		{Ports: 16, Endpoints: 129},             // 16^2/2 = 128 is the cap
		{Ports: 1, Endpoints: 1},                // radix too small
		{Ports: 8, Endpoints: 0},                // no hosts
		{Ports: 8, Endpoints: 16, Oversub: 0.5}, // under-subscription rejected
	} {
		if _, err := bad.Design(); err == nil {
			t.Errorf("Design(%+v) accepted an infeasible spec", bad)
		}
	}
	// Capacity boundary: exactly 128 endpoints on radix 16 must solve.
	if _, err := (AutoFatTreeSpec{Ports: 16, Endpoints: 128}).Design(); err != nil {
		t.Errorf("Design at exact capacity failed: %v", err)
	}
}

// TestAutoFatTreeStructure checks the built cabling: uplink fan-out, host
// attachment, and that spines carry no endpoints.
func TestAutoFatTreeStructure(t *testing.T) {
	spec := AutoFatTreeSpec{Ports: 8, Endpoints: 30} // partially filled last leaf
	tp := AutoFatTree(spec)
	d, err := spec.Design()
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumSwitches() != d.Switches() || tp.NumEndpoints() != spec.Endpoints {
		t.Fatalf("%s: %d switches / %d endpoints, want %d / %d",
			tp.Name, tp.NumSwitches(), tp.NumEndpoints(), d.Switches(), spec.Endpoints)
	}
	// Every leaf uplink port is cabled to a spine; spine ports beyond the
	// leaf count are free.
	for l := 0; l < d.Leaves; l++ {
		for j := 0; j < d.Up; j++ {
			peer, port, ok := tp.Peer(NodeID(l), d.Down+j)
			if !ok || int(peer) != d.Leaves+j || port != l {
				t.Fatalf("leaf %d uplink %d cabled to (%d,%d,%v), want spine %d port %d",
					l, j, peer, port, ok, d.Leaves+j, l)
			}
		}
	}
	for s := 0; s < d.Spines; s++ {
		for p := d.Leaves; p < spec.Ports; p++ {
			if _, _, ok := tp.Peer(NodeID(d.Leaves+s), p); ok {
				t.Fatalf("spine %d port %d unexpectedly cabled", s, p)
			}
		}
	}
}

// TestExtendedCatalogueCounts mirrors TestTable1CountsMatchPaper for the
// extended families.
func TestExtendedCatalogueCounts(t *testing.T) {
	for _, s := range Extended() {
		tp := s.Build()
		if err := tp.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
			continue
		}
		if tp.NumSwitches() != s.Switches || tp.NumEndpoints() != s.Endpoints {
			t.Errorf("%s: built %d switches / %d endpoints, catalogue says %d / %d",
				s.Name, tp.NumSwitches(), tp.NumEndpoints(), s.Switches, s.Endpoints)
		}
		// Catalogue names must round-trip through ByName.
		if _, err := ByName(s.Name); err != nil {
			t.Errorf("ByName(%q): %v", s.Name, err)
		}
	}
}
