package topo

import (
	"fmt"
	"math"
)

// AutoFatTreeSpec sizes a two-layer fat-tree from a switch port count and
// a required endpoint count, after Solnushkin's "Automated Design of
// Two-Layer Fat-Tree Networks": instead of fixing the geometry up front
// (as the paper's m-port n-trees do), the designer enumerates every
// feasible down/up split of the leaf radix and keeps the cheapest design
// — fewest switches — that still attaches Endpoints hosts within the
// oversubscription budget.
type AutoFatTreeSpec struct {
	// Ports is the switch radix, identical in both layers.
	Ports int
	// Endpoints is the number of hosts the tree must attach.
	Endpoints int
	// Oversub bounds the leaf oversubscription ratio down/up; zero means
	// 1 (non-blocking), the default the automated-design paper optimizes
	// first.
	Oversub float64
}

// Design is a solved two-layer geometry: Leaves edge switches, each with
// Down host ports and Up uplinks (one to each of the Spines spine
// switches, whose ports all face down).
type Design struct {
	Down, Up       int
	Leaves, Spines int
}

// Switches is the design's total switch count, the cost the designer
// minimizes.
func (d Design) Switches() int { return d.Leaves + d.Spines }

// Design solves the spec. It returns an error when no two-layer tree of
// this radix can attach the required endpoints: the family's capacity is
// down*Leaves with Leaves <= Ports (every spine needs one down port per
// leaf), which tops out at Ports^2/2 hosts for a non-blocking tree.
func (s AutoFatTreeSpec) Design() (Design, error) {
	if s.Ports < 2 {
		return Design{}, fmt.Errorf("topo: autofat radix %d must be >= 2", s.Ports)
	}
	if s.Endpoints < 1 {
		return Design{}, fmt.Errorf("topo: autofat needs >= 1 endpoint, have %d", s.Endpoints)
	}
	ov := s.Oversub
	if ov == 0 {
		ov = 1
	}
	if ov < 1 || math.IsNaN(ov) {
		return Design{}, fmt.Errorf("topo: autofat oversubscription %v must be >= 1", ov)
	}
	// Degenerate single-switch "tree": all hosts fit one leaf, no spine
	// layer needed.
	if s.Endpoints <= s.Ports {
		return Design{Down: s.Endpoints, Up: 0, Leaves: 1, Spines: 0}, nil
	}
	var best Design
	found := false
	for down := 1; down < s.Ports; down++ {
		up := int(math.Ceil(float64(down) / ov))
		if down+up > s.Ports {
			continue // split exceeds the leaf radix
		}
		leaves := (s.Endpoints + down - 1) / down
		if leaves > s.Ports {
			continue // spine radix cannot reach every leaf
		}
		d := Design{Down: down, Up: up, Leaves: leaves, Spines: up}
		if !found || d.Switches() < best.Switches() ||
			(d.Switches() == best.Switches() && d.Up > best.Up) {
			best, found = d, true
		}
	}
	if !found {
		return Design{}, fmt.Errorf(
			"topo: no two-layer fat-tree of radix %d attaches %d endpoints at oversubscription <= %g (capacity %d)",
			s.Ports, s.Endpoints, ov, s.Ports*s.Ports/2)
	}
	return best, nil
}

// AutoFatTree builds the spec's solved design. Port layout: a leaf's
// ports 0..Down-1 face hosts (the last leaf may be partially populated),
// ports Down..Down+Up-1 are uplinks (uplink j to spine j); spine ports
// all face down, port l toward leaf l. Endpoints terminate on dedicated
// leaf down ports, which satisfies the EndpointReserve invariant by
// construction. It panics when the spec is infeasible, like the other
// generators do on bad parameters; use Design to probe feasibility.
func AutoFatTree(spec AutoFatTreeSpec) *Topology {
	d, err := spec.Design()
	if err != nil {
		panic(err)
	}
	t := New(fmt.Sprintf("autofat %dx%d", spec.Ports, spec.Endpoints))
	leaves := make([]NodeID, d.Leaves)
	for i := range leaves {
		leaves[i] = t.AddSwitch(spec.Ports, fmt.Sprintf("leaf%d", i))
	}
	spines := make([]NodeID, d.Spines)
	for i := range spines {
		spines[i] = t.AddSwitch(spec.Ports, fmt.Sprintf("spine%d", i))
	}
	for l := range leaves {
		for j := range spines {
			t.mustConnect(leaves[l], d.Down+j, spines[j], l)
		}
	}
	for i := 0; i < spec.Endpoints; i++ {
		ep := t.AddEndpoint(fmt.Sprintf("ep%d", i))
		t.mustConnect(leaves[i/d.Down], i%d.Down, ep, 0)
	}
	if err := t.Validate(); err != nil {
		panic(err) // the solved design is valid by construction
	}
	return t
}
