// Package topo builds and validates the fabric topologies the paper
// evaluates: 2-D meshes and tori of 16-port switches with one endpoint per
// switch, and m-port n-trees (fat-trees) built with the methodology the
// paper cites from Lin, Chung and Huang. It also provides random connected
// topologies for stress testing and the full Table 1 catalogue.
//
// A Topology is a pure description — nodes, port counts and cabling. The
// executable fabric model in internal/fabric instantiates devices from it.
package topo

import (
	"fmt"

	"repro/internal/asi"
	"repro/internal/sim"
)

// NodeID names a node within a Topology; IDs are dense indices.
type NodeID int

// Node describes one fabric device to be instantiated.
type Node struct {
	ID    NodeID
	Type  asi.DeviceType
	Ports int
	Label string
}

// Link is a cable between two device ports.
type Link struct {
	A     NodeID
	APort int
	B     NodeID
	BPort int
}

// end identifies one side of a link for the occupancy index.
type end struct {
	node NodeID
	port int
}

// Topology is a description of a fabric: its devices and cabling.
type Topology struct {
	Name  string
	Nodes []Node
	Links []Link

	peers map[end]end
}

// New returns an empty topology with the given name.
func New(name string) *Topology {
	return &Topology{Name: name, peers: make(map[end]end)}
}

// AddSwitch appends a switch node with the given port count.
func (t *Topology) AddSwitch(ports int, label string) NodeID {
	id := NodeID(len(t.Nodes))
	t.Nodes = append(t.Nodes, Node{ID: id, Type: asi.DeviceSwitch, Ports: ports, Label: label})
	return id
}

// AddEndpoint appends a 1-port endpoint node.
func (t *Topology) AddEndpoint(label string) NodeID {
	id := NodeID(len(t.Nodes))
	t.Nodes = append(t.Nodes, Node{ID: id, Type: asi.DeviceEndpoint, Ports: 1, Label: label})
	return id
}

// Connect cables port aPort of a to port bPort of b. It rejects dangling
// node IDs, out-of-range ports, self-links and double-cabled ports.
func (t *Topology) Connect(a NodeID, aPort int, b NodeID, bPort int) error {
	if a == b {
		return fmt.Errorf("topo: self-link on node %d", a)
	}
	for _, e := range []end{{a, aPort}, {b, bPort}} {
		if int(e.node) < 0 || int(e.node) >= len(t.Nodes) {
			return fmt.Errorf("topo: unknown node %d", e.node)
		}
		if e.port < 0 || e.port >= t.Nodes[e.node].Ports {
			return fmt.Errorf("topo: node %d (%s) has no port %d",
				e.node, t.Nodes[e.node].Label, e.port)
		}
		if peer, busy := t.peers[e]; busy {
			return fmt.Errorf("topo: node %d port %d already cabled to node %d",
				e.node, e.port, peer.node)
		}
	}
	t.Links = append(t.Links, Link{A: a, APort: aPort, B: b, BPort: bPort})
	t.peers[end{a, aPort}] = end{b, bPort}
	t.peers[end{b, bPort}] = end{a, aPort}
	return nil
}

// mustConnect is the generator-internal Connect; generators construct
// well-formed cabling by design, so a failure is a bug in the generator.
func (t *Topology) mustConnect(a NodeID, aPort int, b NodeID, bPort int) {
	if err := t.Connect(a, aPort, b, bPort); err != nil {
		panic(err)
	}
}

// Peer reports what is cabled to the given port.
func (t *Topology) Peer(n NodeID, port int) (NodeID, int, bool) {
	p, ok := t.peers[end{n, port}]
	return p.node, p.port, ok
}

// NumSwitches counts switch nodes.
func (t *Topology) NumSwitches() int {
	c := 0
	for _, n := range t.Nodes {
		if n.Type == asi.DeviceSwitch {
			c++
		}
	}
	return c
}

// NumEndpoints counts endpoint nodes.
func (t *Topology) NumEndpoints() int {
	return len(t.Nodes) - t.NumSwitches()
}

// Endpoints returns the IDs of all endpoint nodes in ID order.
func (t *Topology) Endpoints() []NodeID {
	var out []NodeID
	for _, n := range t.Nodes {
		if n.Type == asi.DeviceEndpoint {
			out = append(out, n.ID)
		}
	}
	return out
}

// ReachableFrom returns the set of nodes connected to start, including
// start itself, following cables.
func (t *Topology) ReachableFrom(start NodeID) map[NodeID]bool {
	seen := map[NodeID]bool{start: true}
	queue := []NodeID{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for p := 0; p < t.Nodes[n].Ports; p++ {
			if peer, _, ok := t.Peer(n, p); ok && !seen[peer] {
				seen[peer] = true
				queue = append(queue, peer)
			}
		}
	}
	return seen
}

// Validate checks structural invariants: endpoints have exactly one cable,
// no endpoint-to-endpoint links, and the fabric is connected.
func (t *Topology) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("topo %s: empty", t.Name)
	}
	for _, n := range t.Nodes {
		if n.Type == asi.DeviceEndpoint {
			cabled := 0
			for p := 0; p < n.Ports; p++ {
				if _, _, ok := t.Peer(n.ID, p); ok {
					cabled++
				}
			}
			if cabled != 1 {
				return fmt.Errorf("topo %s: endpoint %s has %d cables, want 1", t.Name, n.Label, cabled)
			}
		}
	}
	for _, l := range t.Links {
		if t.Nodes[l.A].Type == asi.DeviceEndpoint && t.Nodes[l.B].Type == asi.DeviceEndpoint {
			return fmt.Errorf("topo %s: endpoint-to-endpoint link %v", t.Name, l)
		}
	}
	if got := len(t.ReachableFrom(0)); got != len(t.Nodes) {
		return fmt.Errorf("topo %s: disconnected: %d of %d nodes reachable from node 0",
			t.Name, got, len(t.Nodes))
	}
	return nil
}

// String summarizes the topology.
func (t *Topology) String() string {
	return fmt.Sprintf("%s: %d switches, %d endpoints, %d links",
		t.Name, t.NumSwitches(), t.NumEndpoints(), len(t.Links))
}

// EndpointReserve is the number of ports every generator keeps free on
// each switch for its local endpoint. Generators that cable switches
// incrementally (Random, Dragonfly's global links) must consult
// SwitchPortFree before adding an inter-switch link so the endpoint can
// always be attached afterwards; grid generators reserve PortHost and
// fat-trees terminate endpoints on dedicated leaf down ports, which is
// the same invariant by construction.
const EndpointReserve = 1

// SwitchPortFree reports whether a switch of the given radix can take one
// more inter-switch cable while keeping EndpointReserve ports free; used
// counts the ports already cabled. This is the single port-reservation
// rule shared by every generator, so the guard cannot drift between them.
func SwitchPortFree(used, ports int) bool {
	return used < ports-EndpointReserve
}

// Random returns a random connected topology of nSwitches 16-port switches
// with extraLinks additional random cables and one endpoint per switch. It
// is used by stress and property tests, not by the paper's experiments.
func Random(nSwitches, extraLinks int, rng *sim.RNG) *Topology {
	t := New(fmt.Sprintf("random-%d+%d", nSwitches, extraLinks))
	const ports = 16
	sws := make([]NodeID, nSwitches)
	next := make([]int, nSwitches) // next free port per switch
	for i := range sws {
		sws[i] = t.AddSwitch(ports, fmt.Sprintf("sw%d", i))
	}
	// Random spanning tree keeps it connected. When nSwitches outgrows the
	// radix, a hub switch can saturate; the connecting edge must then be
	// re-picked onto a switch with a free fabric port, never dropped (a
	// dropped edge disconnects the tree), and every switch keeps
	// EndpointReserve ports free so the endpoint loop below cannot run out.
	// A tree over i switches has i-1 edges, far fewer than i*(ports-1)/2,
	// so a switch with a free port always exists.
	perm := rng.Perm(nSwitches)
	for i := 1; i < nSwitches; i++ {
		a, b := perm[rng.Intn(i)], perm[i]
		if !SwitchPortFree(next[a], ports) {
			// One extra draw picks the scan start, keeping the re-pick
			// deterministic and bounded (and leaving the RNG stream of
			// non-saturated topologies untouched).
			j := rng.Intn(i)
			for k := 0; k < i; k++ {
				if cand := perm[(j+k)%i]; SwitchPortFree(next[cand], ports) {
					a = cand
					break
				}
			}
		}
		t.mustConnect(sws[a], next[a], sws[b], next[b])
		next[a]++
		next[b]++
	}
	for i := 0; i < extraLinks; i++ {
		a, b := rng.Intn(nSwitches), rng.Intn(nSwitches)
		if a == b || !SwitchPortFree(next[a], ports) || !SwitchPortFree(next[b], ports) {
			continue // extra links are optional; skipping keeps the reserve
		}
		t.mustConnect(sws[a], next[a], sws[b], next[b])
		next[a]++
		next[b]++
	}
	for i, sw := range sws {
		ep := t.AddEndpoint(fmt.Sprintf("ep%d", i))
		t.mustConnect(sw, next[i], ep, 0)
		next[i]++
	}
	if err := t.Validate(); err != nil {
		panic(err) // the construction above guarantees a valid topology
	}
	return t
}
