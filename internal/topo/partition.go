package topo

import (
	"fmt"

	"repro/internal/asi"
)

// Partition assigns every node of a topology to exactly one region for
// the conservative parallel simulation path. Region 0 always contains the
// fabric-manager host, so the FM and its host endpoint share an event
// queue and never cross a shard boundary.
type Partition struct {
	// Count is the number of regions actually produced; it may be lower
	// than requested when the fabric has fewer switches.
	Count int
	// Region maps NodeID to region index. Endpoints inherit the region of
	// the switch they attach to.
	Region []int
	// CutLinks indexes into Topology.Links: the links whose two ends live
	// in different regions. Only these links carry cross-region traffic.
	CutLinks []int
}

// Partition splits the topology into up to regions regions by
// farthest-point seeding followed by multi-source BFS over the
// switch-to-switch adjacency (a balanced edge-cut heuristic). The switch
// cabled to host's endpoint seeds region 0, so the FM is always
// co-located with its host. The result is a pure function of the
// topology and arguments — no randomness — so identical inputs partition
// identically on every run.
func (t *Topology) Partition(regions int, host NodeID) (*Partition, error) {
	if regions < 1 {
		return nil, fmt.Errorf("topo %s: partition into %d regions", t.Name, regions)
	}
	if int(host) < 0 || int(host) >= len(t.Nodes) || t.Nodes[host].Type != asi.DeviceEndpoint {
		return nil, fmt.Errorf("topo %s: partition host %d is not an endpoint", t.Name, host)
	}
	hostSwitch, _, ok := t.Peer(host, 0)
	if !ok || t.Nodes[hostSwitch].Type != asi.DeviceSwitch {
		return nil, fmt.Errorf("topo %s: host %d is not cabled to a switch", t.Name, host)
	}
	if regions > t.NumSwitches() {
		regions = t.NumSwitches()
	}

	// Switch-to-switch adjacency in Links order, so traversal order — and
	// therefore the partition — is deterministic.
	adj := make([][]NodeID, len(t.Nodes))
	for _, l := range t.Links {
		if t.Nodes[l.A].Type == asi.DeviceSwitch && t.Nodes[l.B].Type == asi.DeviceSwitch {
			adj[l.A] = append(adj[l.A], l.B)
			adj[l.B] = append(adj[l.B], l.A)
		}
	}

	// Farthest-point seeding: region 0 grows from the host's switch; each
	// subsequent seed is the switch farthest (in hops) from all previous
	// seeds, lowest NodeID on ties.
	seeds := []NodeID{hostSwitch}
	distToSeeds := make([]int, len(t.Nodes))
	for i := range distToSeeds {
		distToSeeds[i] = -1 // unreached
	}
	relax := func(from NodeID) {
		distToSeeds[from] = 0
		queue := []NodeID{from}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, m := range adj[n] {
				if distToSeeds[m] < 0 || distToSeeds[n]+1 < distToSeeds[m] {
					distToSeeds[m] = distToSeeds[n] + 1
					queue = append(queue, m)
				}
			}
		}
	}
	relax(hostSwitch)
	for len(seeds) < regions {
		far, farDist := NodeID(-1), -1
		for _, n := range t.Nodes {
			if n.Type != asi.DeviceSwitch {
				continue
			}
			if distToSeeds[n.ID] > farDist {
				far, farDist = n.ID, distToSeeds[n.ID]
			}
		}
		if farDist <= 0 {
			break // every switch is already a seed or adjacent-equivalent
		}
		seeds = append(seeds, far)
		relax(far)
	}

	// Multi-source BFS from all seeds at once: each switch joins the
	// region of the first seed wave to reach it, with lower region index
	// winning same-step ties via queue order.
	region := make([]int, len(t.Nodes))
	for i := range region {
		region[i] = -1
	}
	var queue []NodeID
	for r, s := range seeds {
		region[s] = r
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range adj[n] {
			if region[m] < 0 {
				region[m] = region[n]
				queue = append(queue, m)
			}
		}
	}
	for _, n := range t.Nodes {
		if n.Type == asi.DeviceSwitch && region[n.ID] < 0 {
			return nil, fmt.Errorf("topo %s: switch %d unreached by partition BFS", t.Name, n.ID)
		}
	}

	// Endpoints ride with their switch.
	for _, n := range t.Nodes {
		if n.Type != asi.DeviceEndpoint {
			continue
		}
		sw, _, ok := t.Peer(n.ID, 0)
		if !ok {
			return nil, fmt.Errorf("topo %s: endpoint %d has no cable", t.Name, n.ID)
		}
		region[n.ID] = region[sw]
	}

	p := &Partition{Count: len(seeds), Region: region}
	for i, l := range t.Links {
		if region[l.A] != region[l.B] {
			p.CutLinks = append(p.CutLinks, i)
		}
	}
	return p, nil
}

// RegionDistances returns the hop-distance matrix of the region graph
// induced by the partition's cut links: d[i][j] is the minimum number of
// cross-region link traversals on any region path from i to j. Regions
// unreachable from one another (impossible in a connected fabric) are
// reported at the conservative minimum of 1. The parallel scheduler uses
// the matrix to widen execution horizons for far-apart regions.
func (p *Partition) RegionDistances(t *Topology) [][]int32 {
	n := p.Count
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for _, li := range p.CutLinks {
		l := t.Links[li]
		a, b := p.Region[l.A], p.Region[l.B]
		adj[a][b] = true
		adj[b][a] = true
	}
	d := make([][]int32, n)
	for i := 0; i < n; i++ {
		d[i] = make([]int32, n)
		for j := range d[i] {
			if j != i {
				d[i][j] = -1
			}
		}
		queue := []int{i}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for v := 0; v < n; v++ {
				if adj[u][v] && d[i][v] < 0 {
					d[i][v] = d[i][u] + 1
					queue = append(queue, v)
				}
			}
		}
		for j := range d[i] {
			if j != i && d[i][j] < 0 {
				d[i][j] = 1
			}
		}
	}
	return d
}
