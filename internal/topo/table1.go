package topo

import "fmt"

// Spec identifies one topology from the paper's Table 1 together with its
// expected device counts, which double as a regression check on the
// generators.
type Spec struct {
	Name      string
	Switches  int
	Endpoints int
	Build     func() *Topology
}

// Total returns the expected total device count.
func (s Spec) Total() int { return s.Switches + s.Endpoints }

// Table1 returns the paper's Table 1 catalogue of evaluated topologies, in
// the paper's order: meshes and tori from 3x3 to 8x8, the 10x10 torus, and
// the four fat-trees.
func Table1() []Spec {
	specs := []Spec{
		{"3x3 mesh", 9, 9, func() *Topology { return Mesh(3, 3) }},
		{"3x3 torus", 9, 9, func() *Topology { return Torus(3, 3) }},
		{"4x4 mesh", 16, 16, func() *Topology { return Mesh(4, 4) }},
		{"4x4 torus", 16, 16, func() *Topology { return Torus(4, 4) }},
		{"6x6 mesh", 36, 36, func() *Topology { return Mesh(6, 6) }},
		{"6x6 torus", 36, 36, func() *Topology { return Torus(6, 6) }},
		{"8x8 mesh", 64, 64, func() *Topology { return Mesh(8, 8) }},
		{"8x8 torus", 64, 64, func() *Topology { return Torus(8, 8) }},
		{"10x10 torus", 100, 100, func() *Topology { return Torus(10, 10) }},
		{"4-port 2-tree", 6, 8, func() *Topology { return FatTree(4, 2) }},
		{"4-port 3-tree", 20, 16, func() *Topology { return FatTree(4, 3) }},
		{"4-port 4-tree", 56, 32, func() *Topology { return FatTree(4, 4) }},
		{"8-port 2-tree", 12, 32, func() *Topology { return FatTree(8, 2) }},
	}
	return specs
}

// Extended returns the post-paper generator families' representative
// catalogue entries: dragonfly D3(K,M) fabrics and auto-designed
// two-layer fat-trees. Like Table1, the listed device counts double as a
// regression check on the generators; the chaos corpus executes every
// catalogue entry.
func Extended() []Spec {
	return []Spec{
		{"dragonfly 4x6", 24, 24, func() *Topology { return Dragonfly(4, 6) }},
		{"dragonfly 8x17", 136, 136, func() *Topology { return Dragonfly(8, 17) }},
		{"autofat 8x32", 12, 32, func() *Topology {
			return AutoFatTree(AutoFatTreeSpec{Ports: 8, Endpoints: 32})
		}},
		{"autofat 24x288", 36, 288, func() *Topology {
			return AutoFatTree(AutoFatTreeSpec{Ports: 24, Endpoints: 288})
		}},
	}
}

// Catalogue returns every named topology: the paper's Table 1 followed by
// the extended generator families.
func Catalogue() []Spec {
	return append(Table1(), Extended()...)
}

// ByName builds the named topology: an exact catalogue entry, or any
// parametric family name (see ParseName).
func ByName(name string) (*Topology, error) {
	for _, s := range Catalogue() {
		if s.Name == name {
			return s.Build(), nil
		}
	}
	return ParseName(name)
}

// ParseName builds a topology from a parametric family name, so tools and
// scenario specs can reference arbitrary instances without a catalogue
// entry:
//
//	"RxC mesh"        Mesh(R, C), R and C >= 2
//	"RxC torus"       Torus(R, C), R and C >= 2
//	"M-port N-tree"   FatTree(M, N), M even >= 2, N >= 2
//	"dragonfly KxM"   Dragonfly(K, M), K and M >= 2
//	"autofat PxN"     AutoFatTree of radix P attaching N endpoints
func ParseName(name string) (*Topology, error) {
	var a, b int
	if n, _ := fmt.Sscanf(name, "dragonfly %dx%d", &a, &b); n == 2 {
		if a < 2 || b < 2 {
			return nil, fmt.Errorf("topo: dragonfly %dx%d needs K >= 2 and M >= 2", a, b)
		}
		return Dragonfly(a, b), nil
	}
	if n, _ := fmt.Sscanf(name, "autofat %dx%d", &a, &b); n == 2 {
		spec := AutoFatTreeSpec{Ports: a, Endpoints: b}
		if _, err := spec.Design(); err != nil {
			return nil, err
		}
		return AutoFatTree(spec), nil
	}
	if n, _ := fmt.Sscanf(name, "%d-port %d-tree", &a, &b); n == 2 {
		if a < 2 || a%2 != 0 || b < 2 {
			return nil, fmt.Errorf("topo: fat-tree %q needs an even port count >= 2 and depth >= 2", name)
		}
		return FatTree(a, b), nil
	}
	var kind string
	if n, _ := fmt.Sscanf(name, "%dx%d %s", &a, &b, &kind); n == 3 && (kind == "mesh" || kind == "torus") {
		if a < 2 || b < 2 {
			return nil, fmt.Errorf("topo: grid %q needs both dimensions >= 2", name)
		}
		if kind == "mesh" {
			return Mesh(a, b), nil
		}
		return Torus(a, b), nil
	}
	return nil, fmt.Errorf("topo: unknown topology %q (catalogue names, or parametric: %q, %q, %q, %q, %q)",
		name, "RxC mesh", "RxC torus", "M-port N-tree", "dragonfly KxM", "autofat PxN")
}

// Names lists the catalogue topology names in order: Table 1 first, then
// the extended families.
func Names() []string {
	specs := Catalogue()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}
