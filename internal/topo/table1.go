package topo

import "fmt"

// Spec identifies one topology from the paper's Table 1 together with its
// expected device counts, which double as a regression check on the
// generators.
type Spec struct {
	Name      string
	Switches  int
	Endpoints int
	Build     func() *Topology
}

// Total returns the expected total device count.
func (s Spec) Total() int { return s.Switches + s.Endpoints }

// Table1 returns the paper's Table 1 catalogue of evaluated topologies, in
// the paper's order: meshes and tori from 3x3 to 8x8, the 10x10 torus, and
// the four fat-trees.
func Table1() []Spec {
	specs := []Spec{
		{"3x3 mesh", 9, 9, func() *Topology { return Mesh(3, 3) }},
		{"3x3 torus", 9, 9, func() *Topology { return Torus(3, 3) }},
		{"4x4 mesh", 16, 16, func() *Topology { return Mesh(4, 4) }},
		{"4x4 torus", 16, 16, func() *Topology { return Torus(4, 4) }},
		{"6x6 mesh", 36, 36, func() *Topology { return Mesh(6, 6) }},
		{"6x6 torus", 36, 36, func() *Topology { return Torus(6, 6) }},
		{"8x8 mesh", 64, 64, func() *Topology { return Mesh(8, 8) }},
		{"8x8 torus", 64, 64, func() *Topology { return Torus(8, 8) }},
		{"10x10 torus", 100, 100, func() *Topology { return Torus(10, 10) }},
		{"4-port 2-tree", 6, 8, func() *Topology { return FatTree(4, 2) }},
		{"4-port 3-tree", 20, 16, func() *Topology { return FatTree(4, 3) }},
		{"4-port 4-tree", 56, 32, func() *Topology { return FatTree(4, 4) }},
		{"8-port 2-tree", 12, 32, func() *Topology { return FatTree(8, 2) }},
	}
	return specs
}

// ByName builds the named Table 1 topology.
func ByName(name string) (*Topology, error) {
	for _, s := range Table1() {
		if s.Name == name {
			return s.Build(), nil
		}
	}
	return nil, fmt.Errorf("topo: unknown topology %q (see Table 1 names)", name)
}

// Names lists the Table 1 topology names in order.
func Names() []string {
	specs := Table1()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}
