package topo

import (
	"testing"
	"testing/quick"

	"repro/internal/asi"
	"repro/internal/sim"
)

func TestConnectValidation(t *testing.T) {
	tp := New("t")
	a := tp.AddSwitch(4, "a")
	b := tp.AddSwitch(4, "b")
	if err := tp.Connect(a, 0, a, 1); err == nil {
		t.Error("self-link accepted")
	}
	if err := tp.Connect(a, 0, NodeID(99), 0); err == nil {
		t.Error("unknown node accepted")
	}
	if err := tp.Connect(a, 4, b, 0); err == nil {
		t.Error("out-of-range port accepted")
	}
	if err := tp.Connect(a, 0, b, 0); err != nil {
		t.Fatalf("valid connect failed: %v", err)
	}
	if err := tp.Connect(a, 0, b, 1); err == nil {
		t.Error("double-cabled port accepted")
	}
}

func TestPeerSymmetry(t *testing.T) {
	tp := New("t")
	a := tp.AddSwitch(4, "a")
	b := tp.AddSwitch(4, "b")
	if err := tp.Connect(a, 2, b, 3); err != nil {
		t.Fatal(err)
	}
	if n, p, ok := tp.Peer(a, 2); !ok || n != b || p != 3 {
		t.Errorf("Peer(a,2) = (%d,%d,%v)", n, p, ok)
	}
	if n, p, ok := tp.Peer(b, 3); !ok || n != a || p != 2 {
		t.Errorf("Peer(b,3) = (%d,%d,%v)", n, p, ok)
	}
	if _, _, ok := tp.Peer(a, 0); ok {
		t.Error("uncabled port reports a peer")
	}
}

func TestValidateCatchesBrokenTopologies(t *testing.T) {
	// Disconnected.
	tp := New("disc")
	tp.AddSwitch(4, "a")
	tp.AddSwitch(4, "b")
	if err := tp.Validate(); err == nil {
		t.Error("disconnected topology validated")
	}
	// Endpoint with no cable.
	tp2 := New("dangling")
	s := tp2.AddSwitch(4, "s")
	e1 := tp2.AddEndpoint("e1")
	tp2.AddEndpoint("e2")
	if err := tp2.Connect(s, 0, e1, 0); err != nil {
		t.Fatal(err)
	}
	if err := tp2.Validate(); err == nil {
		t.Error("dangling endpoint validated")
	}
	// Empty.
	if err := New("empty").Validate(); err == nil {
		t.Error("empty topology validated")
	}
}

func TestMeshStructure(t *testing.T) {
	m := Mesh(3, 3)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumSwitches() != 9 || m.NumEndpoints() != 9 {
		t.Errorf("3x3 mesh has %d switches, %d endpoints", m.NumSwitches(), m.NumEndpoints())
	}
	// Mesh links: 2*rows*cols - rows - cols switch links + one per endpoint.
	wantLinks := 2*9 - 3 - 3 + 9
	if len(m.Links) != wantLinks {
		t.Errorf("3x3 mesh has %d links, want %d", len(m.Links), wantLinks)
	}
	// Corner switch (node 0) has exactly E, S and host cabled.
	cabled := 0
	for p := 0; p < GridPorts; p++ {
		if _, _, ok := m.Peer(0, p); ok {
			cabled++
		}
	}
	if cabled != 3 {
		t.Errorf("corner switch has %d cables, want 3", cabled)
	}
}

func TestTorusStructure(t *testing.T) {
	tr := Torus(4, 4)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every switch in a torus has degree 4 (plus host).
	for _, n := range tr.Nodes {
		if n.Type != asi.DeviceSwitch {
			continue
		}
		cabled := 0
		for p := 0; p < n.Ports; p++ {
			if _, _, ok := tr.Peer(n.ID, p); ok {
				cabled++
			}
		}
		if cabled != 5 {
			t.Errorf("torus switch %s has %d cables, want 5", n.Label, cabled)
		}
	}
	wantLinks := 2*16 + 16 // 2N wrap links + N host links
	if len(tr.Links) != wantLinks {
		t.Errorf("4x4 torus has %d links, want %d", len(tr.Links), wantLinks)
	}
}

func TestTorusWidth2HasNoDuplicateWrap(t *testing.T) {
	tr := Torus(2, 4)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rows of height 2: vertical wrap would duplicate the mesh link, so
	// vertical degree is 1, horizontal 2.
	cabled := 0
	for p := 0; p < GridPorts; p++ {
		if _, _, ok := tr.Peer(0, p); ok {
			cabled++
		}
	}
	if cabled != 4 { // E, W, S, host
		t.Errorf("2x4 torus corner switch has %d cables, want 4", cabled)
	}
}

func TestFatTreeDegrees(t *testing.T) {
	for _, c := range []struct{ m, n int }{{4, 2}, {4, 3}, {4, 4}, {8, 2}, {8, 3}} {
		ft := FatTree(c.m, c.n)
		if err := ft.Validate(); err != nil {
			t.Fatalf("%s: %v", ft.Name, err)
		}
		h := c.m / 2
		wantEP := 2 * pow(h, c.n)
		wantSW := (2*c.n - 1) * pow(h, c.n-1)
		if ft.NumEndpoints() != wantEP || ft.NumSwitches() != wantSW {
			t.Errorf("%s: %d switches %d endpoints, want %d/%d",
				ft.Name, ft.NumSwitches(), ft.NumEndpoints(), wantSW, wantEP)
		}
		// Every switch port must be cabled in a fat-tree.
		for _, n := range ft.Nodes {
			for p := 0; p < n.Ports; p++ {
				if _, _, ok := ft.Peer(n.ID, p); !ok {
					t.Fatalf("%s: node %s port %d uncabled", ft.Name, n.Label, p)
				}
			}
		}
	}
}

func TestFatTreeRejectsBadParams(t *testing.T) {
	for _, c := range []struct{ m, n int }{{3, 2}, {0, 2}, {4, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FatTree(%d,%d) did not panic", c.m, c.n)
				}
			}()
			FatTree(c.m, c.n)
		}()
	}
}

func TestGridRejectsTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mesh(1,5) did not panic")
		}
	}()
	Mesh(1, 5)
}

func TestTable1CountsMatchPaper(t *testing.T) {
	for _, s := range Table1() {
		tp := s.Build()
		if err := tp.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
			continue
		}
		if tp.NumSwitches() != s.Switches || tp.NumEndpoints() != s.Endpoints {
			t.Errorf("%s: built %d switches / %d endpoints, Table 1 says %d / %d",
				s.Name, tp.NumSwitches(), tp.NumEndpoints(), s.Switches, s.Endpoints)
		}
	}
}

func TestByName(t *testing.T) {
	tp, err := ByName("3x3 mesh")
	if err != nil || tp.NumSwitches() != 9 {
		t.Errorf("ByName: %v %v", tp, err)
	}
	if _, err := ByName("17x17 hypercube"); err == nil {
		t.Error("unknown name accepted")
	}
	if len(Names()) != len(Table1())+len(Extended()) {
		t.Error("Names length mismatch")
	}
}

func TestByNameParametric(t *testing.T) {
	good := map[string]struct{ sw, ep int }{
		"12x12 torus":     {144, 144},
		"5x4 mesh":        {20, 20},
		"6-port 2-tree":   {9, 18},
		"dragonfly 6x13":  {78, 78},
		"autofat 16x100":  {21, 100}, // down=8 -> 13 leaves + 8 spines
		"dragonfly 16x65": {1040, 1040},
	}
	for name, want := range good {
		tp, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if err := tp.Validate(); err != nil {
			t.Errorf("%q: %v", name, err)
		}
		if tp.NumSwitches() != want.sw || tp.NumEndpoints() != want.ep {
			t.Errorf("%q: %d switches / %d endpoints, want %d / %d",
				name, tp.NumSwitches(), tp.NumEndpoints(), want.sw, want.ep)
		}
	}
	for _, name := range []string{
		"1x5 mesh", "dragonfly 1x9", "3-port 2-tree", "autofat 4x9",
		"0x0 torus", "dragonfly four by six",
	} {
		if _, err := ByName(name); err == nil {
			t.Errorf("ByName(%q) accepted a bad parametric name", name)
		}
	}
}

// TestRandomPortExhaustionRegression pins the hub-saturation bug: at
// these sizes the random spanning tree drives one switch's degree past
// the 16-port radix. The seed-state generator then both dropped the
// connecting edge (disconnecting the topology) and left no port for the
// endpoint (panicking in mustConnect); the fixed generator must re-pick
// a partner with a free port and keep the endpoint reservation.
func TestRandomPortExhaustionRegression(t *testing.T) {
	cases := []struct {
		n, extra int
		seed     uint64
	}{
		{1000, 0, 203}, // max tree degree 16 pre-fix
		{2000, 0, 108}, // max tree degree 18 pre-fix
		{2000, 64, 29},
		{500, 32, 466}, // degree 15: legal pre-fix, must stay legal
	}
	for _, c := range cases {
		tp := Random(c.n, c.extra, sim.NewRNG(c.seed)) // panicked pre-fix
		if err := tp.Validate(); err != nil {
			t.Errorf("Random(%d,%d,seed=%d): %v", c.n, c.extra, c.seed, err)
		}
		if tp.NumSwitches() != c.n || tp.NumEndpoints() != c.n {
			t.Errorf("Random(%d,%d,seed=%d): %d switches / %d endpoints",
				c.n, c.extra, c.seed, tp.NumSwitches(), tp.NumEndpoints())
		}
		// The endpoint reservation must hold on every switch: at most
		// ports-EndpointReserve inter-switch cables.
		for _, n := range tp.Nodes {
			if n.Type != asi.DeviceSwitch {
				continue
			}
			interSwitch := 0
			for p := 0; p < n.Ports; p++ {
				if peer, _, ok := tp.Peer(n.ID, p); ok && tp.Nodes[peer].Type == asi.DeviceSwitch {
					interSwitch++
				}
			}
			if !SwitchPortFree(interSwitch-1, n.Ports) {
				t.Fatalf("Random(%d,%d,seed=%d): switch %s has %d inter-switch cables, radix %d",
					c.n, c.extra, c.seed, n.Label, interSwitch, n.Ports)
			}
		}
	}
}

func TestEndpointsList(t *testing.T) {
	m := Mesh(3, 3)
	eps := m.Endpoints()
	if len(eps) != 9 {
		t.Fatalf("Endpoints() returned %d", len(eps))
	}
	for _, id := range eps {
		if m.Nodes[id].Type != asi.DeviceEndpoint {
			t.Errorf("node %d is not an endpoint", id)
		}
	}
}

func TestRandomTopologyProperty(t *testing.T) {
	f := func(seed uint64, n, extra uint8) bool {
		nsw := int(n%20) + 2
		tp := Random(nsw, int(extra%16), sim.NewRNG(seed))
		return tp.Validate() == nil &&
			tp.NumSwitches() == nsw && tp.NumEndpoints() == nsw
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestReachableFromSubset(t *testing.T) {
	tp := New("two-islands")
	a := tp.AddSwitch(4, "a")
	b := tp.AddSwitch(4, "b")
	c := tp.AddSwitch(4, "c")
	if err := tp.Connect(a, 0, b, 0); err != nil {
		t.Fatal(err)
	}
	seen := tp.ReachableFrom(a)
	if !seen[a] || !seen[b] || seen[c] {
		t.Errorf("ReachableFrom = %v", seen)
	}
}

func TestStringOutputs(t *testing.T) {
	if Mesh(3, 3).String() == "" || Table1()[0].Total() != 18 {
		t.Error("String/Total broken")
	}
}
