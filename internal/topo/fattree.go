package topo

import "fmt"

// FatTree builds an m-port n-tree following the construction the paper
// cites from Lin, Chung and Huang ("A multiple LID routing scheme for
// fat-tree-based InfiniBand networks"). With h = m/2:
//
//   - processing nodes (endpoints): 2·h^n
//   - switches: (2n-1)·h^(n-1) — levels 1..n-1 have 2·h^(n-1) switches of
//     radix m (h down ports, h up ports); the root level n has h^(n-1)
//     switches with all m ports facing down.
//
// Switch coordinates: a non-root switch at level l is (l; w₁,…,w₍ₙ₋₁₎) with
// w₁ ∈ [0,2h) and wᵢ ∈ [0,h) for i ≥ 2; a root is (n; v₁,…,v₍ₙ₋₁₎) with all
// digits in [0,h). Up port j of a level-l switch connects to the switch one
// level up whose free digit is replaced by j (digit l+1 below the root,
// digit 1 at the root boundary), and the parent's down port toward it is
// the replaced digit value. Port numbering on every switch: down ports
// first, then up ports.
func FatTree(m, n int) *Topology {
	if m < 2 || m%2 != 0 {
		panic(fmt.Sprintf("topo: fat-tree port count %d must be even and >= 2", m))
	}
	if n < 2 {
		panic(fmt.Sprintf("topo: fat-tree depth %d must be >= 2", n))
	}
	h := m / 2
	t := New(fmt.Sprintf("%d-port %d-tree", m, n))

	// digitsBelow = h^(n-2): count of (w₂..w₍ₙ₋₁₎) combinations.
	digitsBelow := pow(h, n-2)

	// Switch IDs by (level, flattened coordinate).
	// Non-root levels: coord = w₁*digitsBelow + rest, w₁ ∈ [0,2h).
	// Root level: coord = v₁*digitsBelow + rest, v₁ ∈ [0,h).
	ids := make([][]NodeID, n+1)
	for l := 1; l < n; l++ {
		ids[l] = make([]NodeID, 2*h*digitsBelow)
		for c := range ids[l] {
			ids[l][c] = t.AddSwitch(m, fmt.Sprintf("sw(l%d,%s)", l, coordString(c, h, n, false)))
		}
	}
	ids[n] = make([]NodeID, h*digitsBelow)
	for c := range ids[n] {
		ids[n][c] = t.AddSwitch(m, fmt.Sprintf("sw(l%d,%s)", n, coordString(c, h, n, true)))
	}

	// Inter-switch links. Levels 1..n-2: up port j of (l; w) connects to
	// (l+1; w with digit position l+1 set to j); parent down port = old
	// digit value. Digit position i (1-based) maps into the flattened
	// coordinate as described in digitAt/withDigit.
	for l := 1; l <= n-2; l++ {
		for c, id := range ids[l] {
			for j := 0; j < h; j++ {
				parentCoord := withDigit(c, l+1, j, h, n)
				parent := ids[l+1][parentCoord]
				downPort := digitAt(c, l+1, h, n)
				t.mustConnect(id, h+j, parent, downPort)
			}
		}
	}
	// Level n-1 to roots: up port j of (n-1; w₁,…) connects to root
	// (n; j, w₂, …); the root's down port is w₁ ∈ [0,2h).
	for c, id := range ids[n-1] {
		w1 := c / digitsBelow
		rest := c % digitsBelow
		for j := 0; j < h; j++ {
			root := ids[n][j*digitsBelow+rest]
			t.mustConnect(id, h+j, root, w1)
		}
	}

	// Endpoints: p = (p₁,…,pₙ) attaches to leaf (1; p₁,…,p₍ₙ₋₁₎) at down
	// port pₙ.
	for c, id := range ids[1] {
		for p := 0; p < h; p++ {
			ep := t.AddEndpoint(fmt.Sprintf("ep(%s.%d)", coordString(c, h, n, false), p))
			t.mustConnect(id, p, ep, 0)
		}
	}
	return t
}

// pow computes integer b^e for small non-negative e.
func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

// digitAt extracts digit position i (1-based) from a flattened non-root
// coordinate: digit 1 has radix 2h, digits 2..n-1 radix h, stored
// big-endian (digit 1 most significant).
func digitAt(coord, i, h, n int) int {
	below := pow(h, n-1-i)
	if i == 1 {
		return coord / pow(h, n-2)
	}
	return coord / below % h
}

// withDigit returns the flattened coordinate with digit position i
// (2-based positions only; digit 1 changes only at the root boundary)
// replaced by v.
func withDigit(coord, i, v, h, n int) int {
	below := pow(h, n-1-i)
	old := coord / below % h
	return coord + (v-old)*below
}

// coordString renders a flattened coordinate's digits for labels.
func coordString(coord, h, n int, root bool) string {
	_ = root // digit 1's radix differs, but rendering is radix-agnostic
	digits := make([]int, n-1)
	rest := coord
	below := pow(h, n-2)
	digits[0] = rest / below
	rest %= below
	for i := 1; i < n-1; i++ {
		below /= h
		digits[i] = rest / below
		rest %= below
	}
	s := ""
	for i, d := range digits {
		if i > 0 {
			s += "."
		}
		s += fmt.Sprint(d)
	}
	return s
}
