package topo

import "fmt"

// Dragonfly builds a diameter-3 dragonfly fabric D3(K, M) after Draper's
// "The Swapped Dragonfly": M groups of K switches each, every group a
// complete graph, and every pair of groups joined by exactly one global
// link. The family is linearly scalable in M: doubling M doubles the
// switch count while the intra-group wiring is untouched, only the
// per-switch global-port budget h = ceil((M-1)/K) grows.
//
// Any switch reaches any other in at most three hops — one intra-group
// hop to the gateway holding the global link, the global hop, and one
// intra-group hop inside the destination group — which is the property
// the scale experiments lean on: discovery path length stays flat as the
// fabric grows to tens of thousands of switches.
//
// Port layout on every switch (radix K-1+h+EndpointReserve):
//
//   - ports 0..K-2: intra-group links. The link between group members
//     i < j uses port j-1 on i and port i on j.
//   - ports K-1..K-2+h: global links. Group g's connection number
//     j (0-based, to group (g+1+j) mod M) is carried by member j%K on
//     global port j/K.
//   - last port: the switch's endpoint (one per switch, as everywhere in
//     this repo).
func Dragonfly(K, M int) *Topology {
	if K < 2 || M < 2 {
		panic(fmt.Sprintf("topo: dragonfly %dx%d needs K >= 2 and M >= 2", K, M))
	}
	h := (M - 2 + K) / K // ceil((M-1)/K) global ports per switch
	ports := (K - 1) + h + EndpointReserve
	t := New(fmt.Sprintf("dragonfly %dx%d", K, M))

	sws := make([]NodeID, K*M)
	for g := 0; g < M; g++ {
		for s := 0; s < K; s++ {
			sws[g*K+s] = t.AddSwitch(ports, fmt.Sprintf("sw(g%d.%d)", g, s))
		}
	}

	// Intra-group complete graphs.
	for g := 0; g < M; g++ {
		for i := 0; i < K; i++ {
			for j := i + 1; j < K; j++ {
				t.mustConnect(sws[g*K+i], j-1, sws[g*K+j], i)
			}
		}
	}

	// Global links: one per unordered group pair. Each side derives its
	// own (member, port) from its connection number; creating the link
	// from the lower group covers both directions.
	globalPort := func(j int) (member, port int) { return j % K, K - 1 + j/K }
	for a := 0; a < M; a++ {
		for b := a + 1; b < M; b++ {
			ma, pa := globalPort(b - a - 1)
			mb, pb := globalPort(M - (b - a) - 1)
			t.mustConnect(sws[a*K+ma], pa, sws[b*K+mb], pb)
		}
	}

	for g := 0; g < M; g++ {
		for s := 0; s < K; s++ {
			ep := t.AddEndpoint(fmt.Sprintf("ep(g%d.%d)", g, s))
			t.mustConnect(sws[g*K+s], ports-1, ep, 0)
		}
	}
	if err := t.Validate(); err != nil {
		panic(err) // the construction above is valid for all K, M >= 2
	}
	return t
}
