package topo

import "fmt"

// Grid port conventions for mesh/torus switches. Every grid switch is a
// 16-port device (as in the paper's OPNET model); the first five ports
// carry the four compass links and the local endpoint, the rest stay free
// for hot-added devices.
const (
	// GridPorts is the switch radix used in meshes and tori.
	GridPorts = 16
	// PortEast..PortNorth are the compass ports.
	PortEast  = 0
	PortWest  = 1
	PortSouth = 2
	PortNorth = 3
	// PortHost attaches the switch's local endpoint. Grid switches
	// satisfy the EndpointReserve invariant statically: the compass links
	// are pinned to ports 0..3, so PortHost can never be stolen by an
	// inter-switch cable.
	PortHost = 4
)

// Mesh builds a rows x cols 2-D mesh of 16-port switches with one endpoint
// attached to each switch (so a 3x3 mesh has 9 switches and 9 endpoints,
// matching Table 1).
func Mesh(rows, cols int) *Topology {
	return grid(fmt.Sprintf("%dx%d mesh", rows, cols), rows, cols, false)
}

// Torus builds a rows x cols 2-D torus: a mesh with wraparound links.
func Torus(rows, cols int) *Topology {
	return grid(fmt.Sprintf("%dx%d torus", rows, cols), rows, cols, true)
}

func grid(name string, rows, cols int, wrap bool) *Topology {
	if rows < 2 || cols < 2 {
		panic(fmt.Sprintf("topo: grid %dx%d too small", rows, cols))
	}
	t := New(name)
	sw := make([][]NodeID, rows)
	for r := range sw {
		sw[r] = make([]NodeID, cols)
		for c := range sw[r] {
			sw[r][c] = t.AddSwitch(GridPorts, fmt.Sprintf("sw(%d,%d)", r, c))
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			// East link (and wraparound on the last column). A 2-wide
			// wrapped ring would duplicate the mesh link, so skip it.
			if c+1 < cols {
				t.mustConnect(sw[r][c], PortEast, sw[r][c+1], PortWest)
			} else if wrap && cols > 2 {
				t.mustConnect(sw[r][c], PortEast, sw[r][0], PortWest)
			}
			// South link (and wraparound on the last row).
			if r+1 < rows {
				t.mustConnect(sw[r][c], PortSouth, sw[r+1][c], PortNorth)
			} else if wrap && rows > 2 {
				t.mustConnect(sw[r][c], PortSouth, sw[0][c], PortNorth)
			}
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			ep := t.AddEndpoint(fmt.Sprintf("ep(%d,%d)", r, c))
			t.mustConnect(sw[r][c], PortHost, ep, 0)
		}
	}
	return t
}
