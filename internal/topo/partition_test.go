package topo

import (
	"reflect"
	"testing"

	"repro/internal/asi"
)

// partitionFamilies spans every generator family the parallel path is
// exercised on: grid/torus, paper fat-tree, dragonfly, and the
// auto-designed two-layer fat-tree.
var partitionFamilies = []string{
	"6x6 torus",
	"8-port 3-tree",
	"dragonfly 4x8",
	"autofat 16x64",
}

// TestPartitionInvariants checks the structural contract of the
// partitioner on every family at several region counts: every node lands
// in exactly one live region, the FM host is co-located with its switch
// in region 0, the cut-link set is exactly the region-crossing links, and
// the result is a pure function of its inputs.
func TestPartitionInvariants(t *testing.T) {
	for _, name := range partitionFamilies {
		tp, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		host := tp.Endpoints()[0]
		for _, regions := range []int{1, 2, 4, 8} {
			p, err := tp.Partition(regions, host)
			if err != nil {
				t.Fatalf("%s R=%d: %v", name, regions, err)
			}
			if p.Count < 1 || p.Count > regions {
				t.Fatalf("%s R=%d: produced %d regions", name, regions, p.Count)
			}
			if len(p.Region) != len(tp.Nodes) {
				t.Fatalf("%s R=%d: region map covers %d of %d nodes", name, regions, len(p.Region), len(tp.Nodes))
			}

			// Every node is in exactly one region, and every region index
			// is inhabited by at least one switch.
			switchesIn := make([]int, p.Count)
			for _, n := range tp.Nodes {
				r := p.Region[n.ID]
				if r < 0 || r >= p.Count {
					t.Fatalf("%s R=%d: node %d in region %d of %d", name, regions, n.ID, r, p.Count)
				}
				if n.Type == asi.DeviceSwitch {
					switchesIn[r]++
				}
			}
			for r, c := range switchesIn {
				if c == 0 {
					t.Fatalf("%s R=%d: region %d holds no switch", name, regions, r)
				}
			}

			// The FM host seeds region 0 and rides with its switch, so the
			// manager never crosses a shard boundary to reach its endpoint.
			if p.Region[host] != 0 {
				t.Fatalf("%s R=%d: host endpoint in region %d, want 0", name, regions, p.Region[host])
			}
			hostSwitch, _, _ := tp.Peer(host, 0)
			if p.Region[hostSwitch] != 0 {
				t.Fatalf("%s R=%d: host switch in region %d, want 0", name, regions, p.Region[hostSwitch])
			}
			for _, n := range tp.Nodes {
				if n.Type != asi.DeviceEndpoint {
					continue
				}
				sw, _, ok := tp.Peer(n.ID, 0)
				if ok && p.Region[n.ID] != p.Region[sw] {
					t.Fatalf("%s R=%d: endpoint %d in region %d but its switch %d in %d",
						name, regions, n.ID, p.Region[n.ID], sw, p.Region[sw])
				}
			}

			// CutLinks is exactly the set of links whose ends disagree.
			want := map[int]bool{}
			for i, l := range tp.Links {
				if p.Region[l.A] != p.Region[l.B] {
					want[i] = true
				}
			}
			if len(want) != len(p.CutLinks) {
				t.Fatalf("%s R=%d: %d cut links labeled, want %d", name, regions, len(p.CutLinks), len(want))
			}
			for _, li := range p.CutLinks {
				if !want[li] {
					t.Fatalf("%s R=%d: link %d labeled cut but both ends in region %d",
						name, regions, li, p.Region[tp.Links[li].A])
				}
			}
			if regions == 1 && len(p.CutLinks) != 0 {
				t.Fatalf("%s R=1: %d cut links in a single-region partition", name, len(p.CutLinks))
			}

			// Purity: identical inputs partition identically.
			p2, err := tp.Partition(regions, host)
			if err != nil {
				t.Fatalf("%s R=%d rerun: %v", name, regions, err)
			}
			if !reflect.DeepEqual(p, p2) {
				t.Fatalf("%s R=%d: partition differs across identical calls", name, regions)
			}

			// Region-distance matrix: square, zero diagonal, positive and
			// symmetric off-diagonal (cut links are bidirectional).
			d := p.RegionDistances(tp)
			if len(d) != p.Count {
				t.Fatalf("%s R=%d: distance matrix has %d rows for %d regions", name, regions, len(d), p.Count)
			}
			for i := range d {
				if len(d[i]) != p.Count {
					t.Fatalf("%s R=%d: distance row %d has %d entries", name, regions, i, len(d[i]))
				}
				for j := range d[i] {
					switch {
					case i == j && d[i][j] != 0:
						t.Fatalf("%s R=%d: d[%d][%d] = %d, want 0", name, regions, i, j, d[i][j])
					case i != j && d[i][j] < 1:
						t.Fatalf("%s R=%d: d[%d][%d] = %d, want >= 1", name, regions, i, j, d[i][j])
					case d[i][j] != d[j][i]:
						t.Fatalf("%s R=%d: d[%d][%d] = %d but d[%d][%d] = %d",
							name, regions, i, j, d[i][j], j, i, d[j][i])
					}
				}
			}
		}
	}
}

// TestPartitionClamp pins the small-fabric behaviour: requesting more
// regions than switches clamps to the switch count.
func TestPartitionClamp(t *testing.T) {
	tp := Mesh(2, 2)
	p, err := tp.Partition(64, tp.Endpoints()[0])
	if err != nil {
		t.Fatal(err)
	}
	if p.Count > tp.NumSwitches() {
		t.Fatalf("%d regions from %d switches", p.Count, tp.NumSwitches())
	}
}

// TestPartitionRejectsBadHost pins the host validation: the host must be
// an endpoint cabled to a switch.
func TestPartitionRejectsBadHost(t *testing.T) {
	tp := Mesh(3, 3)
	if _, err := tp.Partition(2, NodeID(len(tp.Nodes))); err == nil {
		t.Fatal("out-of-range host accepted")
	}
	var sw NodeID = -1
	for _, n := range tp.Nodes {
		if n.Type == asi.DeviceSwitch {
			sw = n.ID
			break
		}
	}
	if _, err := tp.Partition(2, sw); err == nil {
		t.Fatal("switch host accepted")
	}
	if _, err := tp.Partition(0, tp.Endpoints()[0]); err == nil {
		t.Fatal("zero regions accepted")
	}
}
