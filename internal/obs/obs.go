// Package obs is the continuous observability plane layered on the
// zero-alloc telemetry registry: where internal/telemetry answers "what
// happened during this run", obs answers "what is happening right now"
// for a long-running process (cmd/asifmd).
//
// A periodic scraper feeds Samples — a frozen telemetry.Snapshot plus
// the serving layer's rib.Stats, stamped with wall time, simulation time
// and RIB generation — into a fixed-capacity ring-buffer time-series
// store. Successive samples are diffed into windowed statistics:
// counter deltas become per-second rates, gauge values become
// trajectories, and histogram-count deltas become windowed distributions
// whose p50/p90/p99 are estimated by linear interpolation over the fixed
// buckets (telemetry.HistogramSnap.Quantile).
//
// Three HTTP views are derived from the store, all dependency-free:
//
//	GET /metrics   Prometheus text exposition (cumulative metrics,
//	               windowed rates, staleness SLO, deliver latency)
//	GET /events    bounded structured NDJSON event log tail
//	GET /obs.json  the dashboard document cmd/asitop renders
//
// The plane never touches the simulation hot path: scraping calls
// Registry.Snapshot (a cold path by design), and the producer decides
// when that is safe — the daemon serializes scrapes against simulation
// work with its own mutex. All Plane methods are safe for concurrent
// use.
package obs

import (
	"sync"
	"time"

	"repro/internal/rib"
	"repro/internal/telemetry"
)

// Config sizes the plane.
type Config struct {
	// Capacity bounds the sample ring (default DefaultCapacity). At the
	// daemon's default 1s scrape interval the default ring holds ~4
	// minutes of history.
	Capacity int
	// Window is the number of most-recent samples a windowed statistic
	// (rate, histogram quantile) spans, capped by what the ring holds
	// (default DefaultWindow).
	Window int
	// EventCapacity bounds the event log (default DefaultEventCapacity).
	EventCapacity int
}

// Sizing defaults.
const (
	DefaultCapacity      = 256
	DefaultWindow        = 60
	DefaultEventCapacity = 1024
)

// Sample is one scrape: everything the plane knows about one instant.
type Sample struct {
	// Wall is the scrape's wall-clock instant (stamped by Scrape when
	// zero).
	Wall time.Time
	// SimPS is the simulation clock in picoseconds.
	SimPS int64
	// Gen is the RIB generation current at the scrape.
	Gen uint64
	// Telemetry is the frozen registry snapshot.
	Telemetry telemetry.Snapshot
	// Serving is the RIB serving-layer view (staleness SLO included).
	Serving rib.Stats
}

// Plane is the observability plane: sample ring + event log + derived
// HTTP views.
type Plane struct {
	window int

	mu      sync.RWMutex
	ring    []Sample
	head    int // next write position
	n       int // samples stored
	scrapes uint64

	events *eventLog
}

// New builds a plane.
func New(cfg Config) *Plane {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	window := cfg.Window
	if window <= 0 {
		window = DefaultWindow
	}
	evCap := cfg.EventCapacity
	if evCap <= 0 {
		evCap = DefaultEventCapacity
	}
	return &Plane{
		window: window,
		ring:   make([]Sample, capacity),
		events: newEventLog(evCap),
	}
}

// Scrape stores one sample, evicting the oldest when the ring is full.
func (p *Plane) Scrape(s Sample) {
	if s.Wall.IsZero() {
		s.Wall = time.Now()
	}
	p.mu.Lock()
	p.ring[p.head] = s
	p.head = (p.head + 1) % len(p.ring)
	if p.n < len(p.ring) {
		p.n++
	}
	p.scrapes++
	p.mu.Unlock()
}

// Scrapes returns the number of samples ever stored.
func (p *Plane) Scrapes() uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.scrapes
}

// latest returns the newest sample; ok is false before the first scrape.
// Caller must hold p.mu (read side suffices).
func (p *Plane) latest() (Sample, bool) {
	if p.n == 0 {
		return Sample{}, false
	}
	return p.ring[(p.head-1+len(p.ring))%len(p.ring)], true
}

// windowBase returns the oldest sample inside the rate window (at most
// p.window-1 steps behind the newest). Caller must hold p.mu.
func (p *Plane) windowBase() (Sample, bool) {
	if p.n < 2 {
		return Sample{}, false
	}
	back := p.window - 1
	if back > p.n-1 {
		back = p.n - 1
	}
	return p.ring[(p.head-1-back+len(p.ring))%len(p.ring)], true
}

// Window returns the plane's current rate window: the newest sample, the
// window-base sample it is diffed against, and the wall seconds between
// them. ok is false until two samples exist.
func (p *Plane) Window() (cur, base Sample, seconds float64, ok bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	cur, okCur := p.latest()
	base, okBase := p.windowBase()
	if !okCur || !okBase {
		return Sample{}, Sample{}, 0, false
	}
	seconds = cur.Wall.Sub(base.Wall).Seconds()
	return cur, base, seconds, seconds > 0
}

// Rates computes the per-second rate of every counter (and the summed
// rate of every counter-vector family) over the current window, sorted
// by name. Nil until two samples span a positive wall interval.
func (p *Plane) Rates() []Rate {
	cur, base, sec, ok := p.Window()
	if !ok {
		return nil
	}
	d := cur.Telemetry.Delta(base.Telemetry)
	var out []Rate
	for _, c := range d.Counters {
		out = append(out, Rate{Name: c.Name, PerSec: float64(c.Value) / sec})
	}
	vecTotals := map[string]uint64{}
	var vecNames []string
	for _, v := range d.Vectors {
		if _, seen := vecTotals[v.Name]; !seen {
			vecNames = append(vecNames, v.Name)
		}
		vecTotals[v.Name] += v.Value
	}
	for _, name := range vecNames {
		out = append(out, Rate{Name: name, PerSec: float64(vecTotals[name]) / sec})
	}
	sortRates(out)
	return out
}

// Rate is one windowed counter rate.
type Rate struct {
	Name   string  `json:"name"`
	PerSec float64 `json:"per_sec"`
}

func sortRates(rs []Rate) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Name < rs[j-1].Name; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// Quantiles estimates windowed p50/p90/p99 for every histogram with
// observations inside the window, sorted by name.
func (p *Plane) Quantiles() []HistQuantiles {
	cur, base, _, ok := p.Window()
	if !ok {
		return nil
	}
	d := cur.Telemetry.Delta(base.Telemetry)
	var out []HistQuantiles
	for _, h := range d.Histograms {
		if h.Count == 0 {
			continue
		}
		out = append(out, HistQuantiles{
			Name:  h.Name,
			Unit:  h.Unit,
			Count: h.Count,
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
		})
	}
	return out // Delta preserves snapshot order, already name-sorted
}

// HistQuantiles is one histogram's windowed quantile estimate.
type HistQuantiles struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit,omitempty"`
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Log appends one structured event to the bounded event log.
func (p *Plane) Log(kind string, gen uint64, simPS int64, detail string) {
	p.events.append(Event{Wall: time.Now(), SimPS: simPS, Gen: gen, Kind: kind, Detail: detail})
}

// Events returns the newest-last tail of the event log, at most n
// entries (n <= 0 means everything retained).
func (p *Plane) Events(n int) []Event {
	return p.events.tail(n)
}

// EventsLogged returns how many events were ever appended; EventsDropped
// how many the bounded log has evicted.
func (p *Plane) EventsLogged() uint64  { return p.events.logged() }
func (p *Plane) EventsDropped() uint64 { return p.events.dropped() }
