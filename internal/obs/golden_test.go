package obs_test

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/rib"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// collectNames extracts every metric name from a snapshot.
func collectNames(s telemetry.Snapshot, into map[string]struct{}) {
	for _, c := range s.Counters {
		into[c.Name] = struct{}{}
	}
	for _, g := range s.Gauges {
		into[g.Name] = struct{}{}
	}
	for _, v := range s.Vectors {
		into[v.Name] = struct{}{}
	}
	for _, h := range s.Histograms {
		into[h.Name] = struct{}{}
	}
}

// Every metric name the system registers is part of the observability
// contract: dashboards, alerts and the asitop tool key on them. This
// golden pins the full sorted list; an unintentional rename fails here.
// Refresh deliberately with `go test ./internal/obs -run Golden -update`.
func TestMetricNamesGolden(t *testing.T) {
	names := map[string]struct{}{}

	// A telemetry-enabled sequential run registers the FM, fabric and
	// engine metrics.
	o := experiment.RunConfig(experiment.MustConfig(
		"3x3 mesh", core.Parallel,
		experiment.WithSeed(1),
		experiment.WithTelemetry(),
		experiment.WithChange(experiment.RemoveSwitch),
	))
	if o.Err != nil {
		t.Fatalf("telemetry run failed: %v", o.Err)
	}
	collectNames(*o.Telemetry, names)

	// The sharded engine contributes the shard/region counters.
	g := sim.NewShardGroup(2, sim.Duration(sim.Microsecond))
	g.Engine(0).At(sim.Time(sim.Microsecond), func(*sim.Engine) {
		g.Post(0, 1, sim.Time(2*sim.Microsecond), func(*sim.Engine, any) {}, nil)
	})
	g.Engine(1).At(sim.Time(sim.Microsecond), func(*sim.Engine) {})
	g.Run()
	reg := telemetry.New()
	g.RecordTelemetry(reg)
	collectNames(reg.Snapshot(), names)

	// The serving layer hosts its own deliver-latency histogram.
	names[rib.MetricDeliverLatency] = struct{}{}

	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	got := strings.Join(sorted, "\n") + "\n"

	path := filepath.Join("testdata", "metric_names.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden: %v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("registered metric names drifted from %s:\n got:\n%s\nwant:\n%s\n"+
			"(rename metrics deliberately with -update, and update dashboards)",
			path, got, want)
	}
}
