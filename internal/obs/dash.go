package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"repro/internal/rib"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// DashDoc is the /obs.json document: one self-contained frame of the
// dashboard cmd/asitop renders. Everything in it is derived from the
// sample ring — serving it never touches the registry or the RIB.
type DashDoc struct {
	// Wall is the newest sample's wall-clock instant; WindowSec the wall
	// span of the rate window behind it.
	Wall      time.Time `json:"wall"`
	WindowSec float64   `json:"window_sec"`
	// SimPS is the simulation clock in picoseconds; Gen the RIB
	// generation — both at the newest sample.
	SimPS int64  `json:"sim_ps"`
	Gen   uint64 `json:"gen"`
	// Scrapes counts samples ever stored.
	Scrapes uint64 `json:"scrapes"`
	// Rates are the windowed counter rates; Gauges the instantaneous
	// gauge values; Quantiles the windowed histogram percentiles.
	Rates     []Rate          `json:"rates,omitempty"`
	Gauges    []GaugeValue    `json:"gauges,omitempty"`
	Quantiles []HistQuantiles `json:"quantiles,omitempty"`
	// Regions is the per-region event split (from the sharded
	// simulation's sim.region.events vector), cumulative and windowed.
	Regions []RegionLoad `json:"regions,omitempty"`
	// Serving is the RIB serving-layer view including the staleness SLO.
	Serving rib.Stats `json:"serving"`
	// Events is the tail of the structured event log, oldest first.
	Events        []Event `json:"events,omitempty"`
	EventsLogged  uint64  `json:"events_logged"`
	EventsDropped uint64  `json:"events_dropped"`
}

// GaugeValue is one instantaneous gauge reading.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// RegionLoad is one simulation region's share of the event load.
type RegionLoad struct {
	Region int     `json:"region"`
	Events uint64  `json:"events"`
	PerSec float64 `json:"per_sec"`
}

// Dash assembles the current dashboard document.
func (p *Plane) Dash(eventTail int) DashDoc {
	p.mu.RLock()
	cur, okCur := p.latest()
	base, okBase := p.windowBase()
	scrapes := p.scrapes
	p.mu.RUnlock()

	doc := DashDoc{
		Scrapes:       scrapes,
		Events:        p.Events(eventTail),
		EventsLogged:  p.EventsLogged(),
		EventsDropped: p.EventsDropped(),
	}
	if !okCur {
		return doc
	}
	doc.Wall = cur.Wall
	doc.SimPS = cur.SimPS
	doc.Gen = cur.Gen
	doc.Serving = cur.Serving
	for _, g := range cur.Telemetry.Gauges {
		doc.Gauges = append(doc.Gauges, GaugeValue{Name: g.Name, Value: g.Value})
	}

	var delta telemetry.Snapshot
	if okBase {
		if doc.WindowSec = cur.Wall.Sub(base.Wall).Seconds(); doc.WindowSec > 0 {
			delta = cur.Telemetry.Delta(base.Telemetry)
			for _, c := range delta.Counters {
				doc.Rates = append(doc.Rates, Rate{Name: c.Name, PerSec: float64(c.Value) / doc.WindowSec})
			}
			vecTotals := map[string]uint64{}
			var vecNames []string
			for _, v := range delta.Vectors {
				if _, seen := vecTotals[v.Name]; !seen {
					vecNames = append(vecNames, v.Name)
				}
				vecTotals[v.Name] += v.Value
			}
			for _, name := range vecNames {
				doc.Rates = append(doc.Rates, Rate{Name: name, PerSec: float64(vecTotals[name]) / doc.WindowSec})
			}
			sortRates(doc.Rates)
			for _, h := range delta.Histograms {
				if h.Count == 0 {
					continue
				}
				doc.Quantiles = append(doc.Quantiles, HistQuantiles{
					Name: h.Name, Unit: h.Unit, Count: h.Count,
					P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
				})
			}
		}
	}

	// Per-region split: cumulative events from the newest sample, the
	// windowed rate from the delta (when a window exists).
	deltaRegion := map[int]uint64{}
	for _, v := range delta.Vectors {
		if v.Name == sim.MetricRegionEvents {
			deltaRegion[v.Index] = v.Value
		}
	}
	for _, v := range cur.Telemetry.Vector(sim.MetricRegionEvents) {
		rl := RegionLoad{Region: v.Index, Events: v.Value}
		if doc.WindowSec > 0 {
			rl.PerSec = float64(deltaRegion[v.Index]) / doc.WindowSec
		}
		doc.Regions = append(doc.Regions, rl)
	}
	return doc
}

// DashHandler serves the dashboard document as JSON. ?events= bounds the
// event tail (default 20).
func (p *Plane) DashHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		tail := 20
		if q := req.URL.Query().Get("events"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "bad events: want a non-negative integer", http.StatusBadRequest)
				return
			}
			tail = v
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(p.Dash(tail))
	})
}
