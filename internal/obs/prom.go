package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

// Prometheus text-format exposition (version 0.0.4), written without any
// client library: the metric model here is small enough that the format
// is just careful fmt.Fprintf. Naming scheme:
//
//	telemetry "fm.rtt.port-read"  ->  asi_fm_rtt_port_read
//
// Counters expose their cumulative value plus a "<name>_rate" gauge (the
// windowed per-second rate, so dashboards get rates even without a
// Prometheus server computing them); counter vectors expose one sample
// per non-zero index under an index="i" label; histograms expose the
// standard _bucket/_sum/_count triple plus windowed _p50/_p99 gauges.
// The serving layer contributes the staleness SLO (generation-lag
// percentiles) and the install→deliver latency histogram.

// MetricsContentType is the exposition content type.
const MetricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// MetricsHandler serves the Prometheus exposition of the latest sample.
func (p *Plane) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", MetricsContentType)
		p.WriteProm(w)
	})
}

// WriteProm renders the exposition document.
func (p *Plane) WriteProm(w io.Writer) {
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	p.mu.RLock()
	cur, okCur := p.latest()
	base, okBase := p.windowBase()
	scrapes := p.scrapes
	p.mu.RUnlock()

	writeMeta(bw, "asi_up", "gauge", "whether the observability plane is serving")
	writeSample(bw, "asi_up", "", 1)
	writeMeta(bw, "asi_obs_scrapes_total", "counter", "telemetry samples stored")
	writeSample(bw, "asi_obs_scrapes_total", "", float64(scrapes))
	writeMeta(bw, "asi_obs_events_logged_total", "counter", "structured events appended to the bounded log")
	writeSample(bw, "asi_obs_events_logged_total", "", float64(p.EventsLogged()))
	writeMeta(bw, "asi_obs_events_dropped_total", "counter", "structured events evicted from the bounded log")
	writeSample(bw, "asi_obs_events_dropped_total", "", float64(p.EventsDropped()))
	if !okCur {
		return
	}

	var sec float64
	var delta telemetry.Snapshot
	windowed := false
	if okBase {
		if sec = cur.Wall.Sub(base.Wall).Seconds(); sec > 0 {
			delta = cur.Telemetry.Delta(base.Telemetry)
			windowed = true
		}
	}
	writeMeta(bw, "asi_obs_window_seconds", "gauge", "wall span of the rate window")
	writeSample(bw, "asi_obs_window_seconds", "", sec)
	writeMeta(bw, "asi_sim_time_ps", "gauge", "simulation clock, picoseconds")
	writeSample(bw, "asi_sim_time_ps", "", float64(cur.SimPS))

	deltaC := map[string]uint64{}
	deltaH := map[string]telemetry.HistogramSnap{}
	if windowed {
		for _, c := range delta.Counters {
			deltaC[c.Name] = c.Value
		}
		for _, v := range delta.Vectors {
			deltaC[v.Name] += v.Value
		}
		for _, h := range delta.Histograms {
			deltaH[h.Name] = h
		}
	}

	for _, c := range cur.Telemetry.Counters {
		name := promName(c.Name)
		writeMeta(bw, name, "counter", "telemetry counter "+c.Name)
		writeSample(bw, name, "", float64(c.Value))
		if windowed {
			writeMeta(bw, name+"_rate", "gauge", "windowed per-second rate of "+c.Name)
			writeSample(bw, name+"_rate", "", float64(deltaC[c.Name])/sec)
		}
	}
	for _, g := range cur.Telemetry.Gauges {
		name := promName(g.Name)
		writeMeta(bw, name, "gauge", "telemetry gauge "+g.Name)
		writeSample(bw, name, "", float64(g.Value))
	}
	lastVec := ""
	for _, v := range cur.Telemetry.Vectors {
		name := promName(v.Name)
		if v.Name != lastVec {
			writeMeta(bw, name, "counter", "telemetry counter family "+v.Name)
			lastVec = v.Name
			if windowed {
				writeMeta(bw, name+"_rate", "gauge", "windowed per-second rate of "+v.Name+" (all indices)")
				writeSample(bw, name+"_rate", "", float64(deltaC[v.Name])/sec)
			}
		}
		writeSample(bw, name, fmt.Sprintf(`index="%d"`, v.Index), float64(v.Value))
	}
	for _, h := range cur.Telemetry.Histograms {
		writeHistogram(bw, promName(h.Name), "telemetry histogram "+h.Name, h)
		if dh, ok := deltaH[h.Name]; ok && dh.Count > 0 {
			name := promName(h.Name)
			writeMeta(bw, name+"_p50", "gauge", "windowed p50 of "+h.Name)
			writeSample(bw, name+"_p50", "", dh.Quantile(0.50))
			writeMeta(bw, name+"_p99", "gauge", "windowed p99 of "+h.Name)
			writeSample(bw, name+"_p99", "", dh.Quantile(0.99))
		}
	}

	// Serving layer: generations, subscribers, the staleness SLO.
	sv := cur.Serving
	writeMeta(bw, "asi_rib_generation", "gauge", "current RIB generation")
	writeSample(bw, "asi_rib_generation", "", float64(sv.Gen))
	writeMeta(bw, "asi_rib_installs_total", "counter", "RIB generations installed")
	writeSample(bw, "asi_rib_installs_total", "", float64(sv.Installs))
	writeMeta(bw, "asi_rib_leaves", "gauge", "served leaves in the current generation")
	writeSample(bw, "asi_rib_leaves", "", float64(sv.Leaves))
	writeMeta(bw, "asi_rib_subscribers", "gauge", "live subscriptions")
	writeSample(bw, "asi_rib_subscribers", "", float64(sv.Subscribers))
	writeMeta(bw, "asi_rib_resyncs_total", "counter", "full-state resyncs forced by subscriber overflow")
	writeSample(bw, "asi_rib_resyncs_total", "", float64(sv.Resyncs))
	writeMeta(bw, "asi_rib_deliveries_total", "counter", "batches consumed by subscriber readers")
	writeSample(bw, "asi_rib_deliveries_total", "", float64(sv.Deliveries))
	writeMeta(bw, "asi_rib_staleness_generations", "gauge", "subscriber generation-lag percentiles (staleness SLO)")
	writeSample(bw, "asi_rib_staleness_generations", `quantile="0.5"`, float64(sv.Staleness.P50))
	writeSample(bw, "asi_rib_staleness_generations", `quantile="0.99"`, float64(sv.Staleness.P99))
	writeSample(bw, "asi_rib_staleness_generations", `quantile="1"`, float64(sv.Staleness.Max))
	if sv.DeliverLatency.Count > 0 || len(sv.DeliverLatency.Bounds) > 0 {
		writeHistogram(bw, "asi_rib_deliver_latency_ns", "install-to-deliver wall latency, nanoseconds", sv.DeliverLatency)
	}
}

// writeMeta emits the HELP/TYPE preamble of one metric.
func writeMeta(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// writeSample emits one sample line.
func writeSample(w io.Writer, name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(v))
}

// writeHistogram emits the _bucket/_sum/_count exposition of one
// fixed-bucket histogram snapshot.
func writeHistogram(w io.Writer, name, help string, h telemetry.HistogramSnap) {
	writeMeta(w, name, "histogram", help)
	cum := uint64(0)
	for i, b := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(float64(b)), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(float64(h.Sum)))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promName converts a telemetry metric name to a Prometheus-legal one:
// the asi_ namespace prefix plus every non-[a-zA-Z0-9_] rune mapped to
// '_' ("fm.rtt.port-read" -> "asi_fm_rtt_port_read").
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 4)
	b.WriteString("asi_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// PromPoint is one parsed exposition sample.
type PromPoint struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseProm is a strict-enough parser for the exposition format this
// package writes (and the subset Prometheus itself accepts): HELP/TYPE
// comments and name{labels} value samples. It returns every sample plus
// the declared type per metric name, or an error naming the offending
// line. The smoke tests and external tooling use it to assert the
// endpoint stays machine-readable.
func ParseProm(r io.Reader) (points []PromPoint, types map[string]string, err error) {
	types = make(map[string]string)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
					types[fields[2]] = fields[3]
				default:
					return nil, nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
			}
			continue
		}
		pt, perr := parseSample(line)
		if perr != nil {
			return nil, nil, fmt.Errorf("line %d: %w", lineNo, perr)
		}
		points = append(points, pt)
	}
	return points, types, sc.Err()
}

// parseSample parses `name{l1="v1",...} value`.
func parseSample(line string) (PromPoint, error) {
	pt := PromPoint{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return pt, fmt.Errorf("no value in %q", line)
	} else {
		pt.Name = rest[:i]
		rest = rest[i:]
	}
	if pt.Name == "" || !validPromName(pt.Name) {
		return pt, fmt.Errorf("bad metric name in %q", line)
	}
	rest = strings.TrimSpace(rest)
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return pt, fmt.Errorf("unterminated labels in %q", line)
		}
		for _, kv := range splitLabels(rest[1:end]) {
			eq := strings.Index(kv, "=")
			if eq < 0 {
				return pt, fmt.Errorf("bad label %q", kv)
			}
			val := strings.TrimSpace(kv[eq+1:])
			uq, err := strconv.Unquote(val)
			if err != nil {
				return pt, fmt.Errorf("bad label value %q: %v", val, err)
			}
			pt.Labels[strings.TrimSpace(kv[:eq])] = uq
		}
		rest = strings.TrimSpace(rest[end+1:])
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return pt, fmt.Errorf("no value in %q", line)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return pt, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	pt.Value = v
	return pt, nil
}

// splitLabels splits "a=\"x\",b=\"y\"" on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// parsePromValue accepts the exposition's float syntax.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// validPromName checks [a-zA-Z_:][a-zA-Z0-9_:]*.
func validPromName(name string) bool {
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return name != ""
}
