package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Event kinds the daemon logs. The serving layer's own kinds
// (rib.EventOverflow, rib.EventResync) pass through verbatim.
const (
	// EventDiscoveryStart marks the FM starting a discovery run (the
	// bootstrap, or a forced audit).
	EventDiscoveryStart = "discovery.start"
	// EventDiscoveryConverge marks a discovery run completing and its
	// database installing into the RIB.
	EventDiscoveryConverge = "discovery.converge"
	// EventChurnApply marks one churn round's toggles entering the
	// fabric.
	EventChurnApply = "churn.apply"
	// EventAudit marks a forced full rediscovery being scheduled.
	EventAudit = "audit"
)

// Event is one structured entry of the bounded NDJSON event log.
type Event struct {
	// Wall is the wall-clock instant the event was logged.
	Wall time.Time `json:"wall"`
	// SimPS is the simulation clock at the event, in picoseconds (0
	// when the producer had no simulation context).
	SimPS int64 `json:"sim_ps,omitempty"`
	// Gen is the RIB generation current at the event.
	Gen uint64 `json:"gen"`
	// Kind names the event (the constants above, or a rib.Event*).
	Kind string `json:"kind"`
	// Detail is an optional human-readable elaboration.
	Detail string `json:"detail,omitempty"`
}

// eventLog is a bounded ring of events. Appends never block and never
// grow memory past the capacity; old entries are evicted and counted.
type eventLog struct {
	mu   sync.Mutex
	ring []Event
	head int
	n    int
	seen uint64
}

func newEventLog(capacity int) *eventLog {
	return &eventLog{ring: make([]Event, capacity)}
}

func (l *eventLog) append(e Event) {
	l.mu.Lock()
	l.ring[l.head] = e
	l.head = (l.head + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	l.seen++
	l.mu.Unlock()
}

// tail returns the most recent min(n, retained) events, oldest first.
func (l *eventLog) tail(n int) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > l.n {
		n = l.n
	}
	out := make([]Event, 0, n)
	for i := l.n - n; i < l.n; i++ {
		out = append(out, l.ring[(l.head-l.n+i+2*len(l.ring))%len(l.ring)])
	}
	return out
}

func (l *eventLog) logged() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seen
}

func (l *eventLog) dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seen - uint64(l.n)
}

// EventsHandler serves the event-log tail as NDJSON: one JSON event per
// line, oldest first. ?n= bounds the tail (default 100).
func (p *Plane) EventsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 100
		if q := req.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "bad n: want a non-negative integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, e := range p.Events(n) {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
	})
}
