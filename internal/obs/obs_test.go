package obs_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/asi"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rib"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// lineDB builds a synthetic discovery database: a chain of n switches
// hanging off host endpoint DSN 1, with the last tail switches omitted.
func lineDB(n, tail int) *core.DB {
	db := core.NewDB(1)
	db.AddNode(&core.Node{DSN: 1, Type: asi.DeviceEndpoint, Ports: 1})
	for i := 0; i < n-tail; i++ {
		dsn := asi.DSN(2 + i)
		db.AddNode(&core.Node{DSN: dsn, Type: asi.DeviceSwitch, Ports: 4})
		if i == 0 {
			db.AddLink(core.Link{A: 1, APort: 0, B: dsn, BPort: 0})
		} else {
			db.AddLink(core.Link{A: dsn - 1, APort: 1, B: dsn, BPort: 0})
		}
	}
	return db
}

// sampleAt snapshots reg into a Sample stamped at wall.
func sampleAt(reg *telemetry.Registry, wall time.Time, gen uint64, serving rib.Stats) obs.Sample {
	return obs.Sample{
		Wall:      wall,
		SimPS:     int64(gen) * 1000,
		Gen:       gen,
		Telemetry: reg.Snapshot(),
		Serving:   serving,
	}
}

func TestWindowRatesAndQuantiles(t *testing.T) {
	reg := telemetry.New()
	c := reg.Counter("a.count")
	v := reg.CounterVec("v.per", 3)
	h := reg.Histogram("h.lat", "ns", []int64{10, 100, 1000})
	c.Add(10)
	v.Inc(0)
	h.Observe(5)

	p := obs.New(obs.Config{})
	t0 := time.Unix(1000, 0)
	p.Scrape(sampleAt(reg, t0, 1, rib.Stats{}))

	c.Add(20) // +20 over 2s -> 10/s
	v.Inc(1)
	v.Inc(2) // +2 family-wide -> 1/s
	for i := 0; i < 10; i++ {
		h.Observe(50) // all in (10,100]
	}
	p.Scrape(sampleAt(reg, t0.Add(2*time.Second), 2, rib.Stats{}))

	cur, base, sec, ok := p.Window()
	if !ok || sec != 2 || cur.Gen != 2 || base.Gen != 1 {
		t.Fatalf("window = gen %d..%d over %vs ok=%v", base.Gen, cur.Gen, sec, ok)
	}

	rates := map[string]float64{}
	for _, r := range p.Rates() {
		rates[r.Name] = r.PerSec
	}
	if rates["a.count"] != 10 {
		t.Errorf("a.count rate %v, want 10/s", rates["a.count"])
	}
	if rates["v.per"] != 1 {
		t.Errorf("v.per family rate %v, want 1/s", rates["v.per"])
	}

	qs := p.Quantiles()
	if len(qs) != 1 || qs[0].Name != "h.lat" || qs[0].Count != 10 {
		t.Fatalf("quantiles = %+v, want one h.lat entry with 10 windowed observations", qs)
	}
	if qs[0].P50 <= 10 || qs[0].P50 > 100 {
		t.Errorf("windowed p50 %v outside the (10,100] bucket", qs[0].P50)
	}
}

func TestRingEvictionAndWindowClamp(t *testing.T) {
	reg := telemetry.New()
	p := obs.New(obs.Config{Capacity: 4, Window: 100})
	t0 := time.Unix(2000, 0)
	for i := 0; i < 10; i++ {
		p.Scrape(sampleAt(reg, t0.Add(time.Duration(i)*time.Second), uint64(i+1), rib.Stats{}))
	}
	if p.Scrapes() != 10 {
		t.Errorf("scrapes %d, want 10", p.Scrapes())
	}
	cur, base, sec, ok := p.Window()
	if !ok {
		t.Fatal("no window after 10 scrapes")
	}
	// Only 4 samples retained: the window clamps to 3 steps back.
	if cur.Gen != 10 || base.Gen != 7 || sec != 3 {
		t.Errorf("window = gen %d..%d over %vs, want 7..10 over 3s", base.Gen, cur.Gen, sec)
	}
}

func TestEventLogBoundedTail(t *testing.T) {
	p := obs.New(obs.Config{EventCapacity: 4})
	for i := 1; i <= 10; i++ {
		p.Log(obs.EventChurnApply, uint64(i), int64(i), "")
	}
	if p.EventsLogged() != 10 || p.EventsDropped() != 6 {
		t.Errorf("logged %d dropped %d, want 10/6", p.EventsLogged(), p.EventsDropped())
	}
	evs := p.Events(0)
	if len(evs) != 4 || evs[0].Gen != 7 || evs[3].Gen != 10 {
		t.Fatalf("tail = %+v, want gens 7..10 oldest first", evs)
	}
	if got := p.Events(2); len(got) != 2 || got[0].Gen != 9 {
		t.Errorf("tail(2) = %+v, want gens 9,10", got)
	}

	ts := httptest.NewServer(p.EventsHandler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "?n=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	var lines int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e obs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d did not parse: %v", lines, err)
		}
		if e.Kind != obs.EventChurnApply {
			t.Errorf("kind %q", e.Kind)
		}
		lines++
	}
	if lines != 3 {
		t.Errorf("served %d NDJSON lines, want 3", lines)
	}
	if resp, err = http.Get(ts.URL + "?n=bogus"); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n: %v %v", err, resp.Status)
	}
	resp.Body.Close()
}

// servingStats builds a rib.Stats with non-trivial staleness and deliver
// latency by driving a real RIB.
func servingStats(t *testing.T) rib.Stats {
	t.Helper()
	r := rib.New(rib.Config{})
	r.Install(lineDB(4, 0))
	sub := r.Subscribe("/")
	defer sub.Close()
	<-sub.Updates()
	stalled := r.Subscribe("/")
	defer stalled.Close()
	for i := 1; i <= 3; i++ {
		r.Install(lineDB(4, i))
		<-sub.Updates()
	}
	return r.Stats()
}

func TestPromExpositionParses(t *testing.T) {
	reg := telemetry.New()
	c := reg.Counter("fm.fake-total")
	reg.Gauge("fm.queue.depth").Set(7)
	v := reg.CounterVec(sim.MetricRegionEvents, 2)
	h := reg.Histogram("fm.rtt.fake", "ps", []int64{100, 200})
	c.Add(4)
	v.Inc(0)
	h.Observe(150)

	p := obs.New(obs.Config{})
	t0 := time.Unix(3000, 0)
	p.Scrape(sampleAt(reg, t0, 1, rib.Stats{}))
	c.Add(6)
	v.Inc(1)
	h.Observe(50)
	p.Scrape(sampleAt(reg, t0.Add(2*time.Second), 2, servingStats(t)))
	p.Log(obs.EventAudit, 2, 0, "")

	var buf bytes.Buffer
	p.WriteProm(&buf)
	text := buf.String()
	points, types, err := obs.ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition did not parse: %v\n%s", err, text)
	}

	byName := map[string][]obs.PromPoint{}
	for _, pt := range points {
		if math.IsNaN(pt.Value) || math.IsInf(pt.Value, 0) {
			t.Errorf("non-finite sample %s = %v", pt.Name, pt.Value)
		}
		byName[pt.Name] = append(byName[pt.Name], pt)
	}

	checks := []struct {
		name string
		typ  string
		want float64
	}{
		{"asi_up", "gauge", 1},
		{"asi_obs_scrapes_total", "counter", 2},
		{"asi_obs_events_logged_total", "counter", 1},
		{"asi_obs_window_seconds", "gauge", 2},
		{"asi_fm_fake_total", "counter", 10},
		{"asi_fm_fake_total_rate", "gauge", 3}, // +6 over 2s
		{"asi_fm_queue_depth", "gauge", 7},
		{"asi_sim_region_events_rate", "gauge", 0.5}, // +1 family-wide over 2s
		{"asi_rib_generation", "gauge", 4},
		{"asi_rib_installs_total", "counter", 4},
	}
	for _, ck := range checks {
		pts := byName[ck.name]
		if len(pts) == 0 {
			t.Errorf("%s missing from exposition", ck.name)
			continue
		}
		if types[ck.name] != ck.typ {
			t.Errorf("%s typed %q, want %q", ck.name, types[ck.name], ck.typ)
		}
		if pts[0].Value != ck.want {
			t.Errorf("%s = %v, want %v", ck.name, pts[0].Value, ck.want)
		}
	}

	// Vector indices carry labels.
	if pts := byName["asi_sim_region_events"]; len(pts) != 2 ||
		pts[0].Labels["index"] != "0" || pts[1].Labels["index"] != "1" {
		t.Errorf("region vector exposition wrong: %+v", pts)
	}

	// Histogram triple: final bucket equals count; sum sane.
	if types["asi_fm_rtt_fake"] != "histogram" {
		t.Errorf("histogram typed %q", types["asi_fm_rtt_fake"])
	}
	var inf, count float64
	for _, pt := range byName["asi_fm_rtt_fake_bucket"] {
		if pt.Labels["le"] == "+Inf" {
			inf = pt.Value
		}
	}
	if pts := byName["asi_fm_rtt_fake_count"]; len(pts) == 1 {
		count = pts[0].Value
	}
	if inf != 2 || count != 2 {
		t.Errorf("histogram +Inf bucket %v / count %v, want 2/2", inf, count)
	}
	// Windowed quantile gauges exist (one observation in window).
	if len(byName["asi_fm_rtt_fake_p50"]) == 0 || len(byName["asi_fm_rtt_fake_p99"]) == 0 {
		t.Error("windowed histogram quantile gauges missing")
	}

	// Staleness SLO series with quantile labels, ordered.
	sl := map[string]float64{}
	for _, pt := range byName["asi_rib_staleness_generations"] {
		sl[pt.Labels["quantile"]] = pt.Value
	}
	if len(sl) != 3 {
		t.Fatalf("staleness series %v, want quantiles 0.5/0.99/1", sl)
	}
	if sl["1"] < sl["0.99"] || sl["0.99"] < sl["0.5"] {
		t.Errorf("staleness quantiles out of order: %v", sl)
	}
	if sl["1"] == 0 {
		t.Error("stalled subscriber shows zero max staleness")
	}
	// Deliver latency histogram made it through.
	if types["asi_rib_deliver_latency_ns"] != "histogram" {
		t.Errorf("deliver latency typed %q", types["asi_rib_deliver_latency_ns"])
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		"1leading_digit 4\n",
		"name{unterminated=\"x\" 4\n",
		"name{l=unquoted} 4\n",
		"name notafloat\n",
		"# TYPE x sometype\n",
	} {
		if _, _, err := obs.ParseProm(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseProm accepted %q", bad)
		}
	}
	// Prometheus-style edge values pass.
	pts, _, err := obs.ParseProm(strings.NewReader("x +Inf\ny{a=\"b\",c=\"d\"} 1e3\n"))
	if err != nil || len(pts) != 2 || !math.IsInf(pts[0].Value, 1) || pts[1].Labels["c"] != "d" {
		t.Errorf("edge parse: %+v, %v", pts, err)
	}
}

func TestMetricsAndDashHandlers(t *testing.T) {
	reg := telemetry.New()
	reg.Counter("a.count").Add(2)
	reg.CounterVec(sim.MetricRegionEvents, 2).Inc(1)
	p := obs.New(obs.Config{})
	t0 := time.Unix(4000, 0)
	p.Scrape(sampleAt(reg, t0, 1, rib.Stats{}))
	reg.Counter("a.count").Add(2)
	p.Scrape(sampleAt(reg, t0.Add(time.Second), 2, rib.Stats{Gen: 2, Installs: 2}))
	p.Log(obs.EventDiscoveryConverge, 2, 2000, "8 leaves")

	mts := httptest.NewServer(p.MetricsHandler())
	defer mts.Close()
	resp, err := http.Get(mts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.MetricsContentType {
		t.Errorf("metrics content type %q", ct)
	}
	if _, _, err := obs.ParseProm(resp.Body); err != nil {
		t.Errorf("served exposition did not parse: %v", err)
	}
	resp.Body.Close()

	dts := httptest.NewServer(p.DashHandler())
	defer dts.Close()
	resp, err = http.Get(dts.URL + "?events=5")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var doc obs.DashDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("dash doc did not parse: %v\n%s", err, body)
	}
	if doc.Gen != 2 || doc.Serving.Installs != 2 || doc.Scrapes != 2 {
		t.Errorf("dash header wrong: gen %d installs %d scrapes %d", doc.Gen, doc.Serving.Installs, doc.Scrapes)
	}
	if len(doc.Rates) == 0 || doc.Rates[0].Name != "a.count" || doc.Rates[0].PerSec != 2 {
		t.Errorf("dash rates %+v", doc.Rates)
	}
	// Zero vector slots are omitted from snapshots: only region 1 shows.
	if len(doc.Regions) != 1 || doc.Regions[0].Region != 1 || doc.Regions[0].Events != 1 {
		t.Errorf("dash regions %+v", doc.Regions)
	}
	if len(doc.Events) != 1 || doc.Events[0].Kind != obs.EventDiscoveryConverge {
		t.Errorf("dash events %+v", doc.Events)
	}
	if resp, err = http.Get(dts.URL + "?events=-1"); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad events param: %v %v", err, resp.Status)
	}
	resp.Body.Close()
}

// Before any scrape the plane serves degenerate but valid documents.
func TestEmptyPlaneServes(t *testing.T) {
	p := obs.New(obs.Config{})
	var buf bytes.Buffer
	p.WriteProm(&buf)
	if _, _, err := obs.ParseProm(&buf); err != nil {
		t.Errorf("empty exposition did not parse: %v", err)
	}
	doc := p.Dash(10)
	if doc.Gen != 0 || doc.Scrapes != 0 || len(doc.Rates) != 0 {
		t.Errorf("empty dash doc %+v", doc)
	}
}
