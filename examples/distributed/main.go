// Distributed demonstrates the paper's future-work collaborative
// discovery: several fabric managers partition the fabric by atomic
// ownership claims, discover their regions concurrently, and ship their
// views to the primary for merging.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
)

func run(teamSize int) {
	tp := topo.Torus(8, 8)
	engine := sim.NewEngine()
	fab, err := fabric.New(engine, tp, fabric.DefaultConfig(), sim.NewRNG(11))
	if err != nil {
		log.Fatal(err)
	}
	eps := tp.Endpoints()
	members := make([]*core.Manager, teamSize)
	for i := range members {
		// Spread the collaborators across the fabric.
		ep := eps[i*len(eps)/teamSize]
		members[i] = core.NewManager(fab, fab.Device(ep), core.Options{Algorithm: core.Distributed})
	}
	team := core.NewTeam(members)

	// Bootstrap: the primary discovers alone once, so the team knows the
	// report routes (in deployment this state exists from normal
	// operation).
	done := false
	members[0].OnDiscoveryComplete = func(core.Result) { done = true }
	members[0].StartDiscovery()
	engine.Run()
	if !done {
		log.Fatal("bootstrap discovery failed")
	}
	team.RestoreMemberCallbacks()
	team.Prepare()

	var res core.TeamResult
	team.OnComplete = func(r core.TeamResult) { res = r }
	team.StartDiscovery()
	engine.Run()

	fmt.Printf("%d FM(s): %v  devices=%d links=%d  total pkts=%d (sync %d)\n",
		teamSize, res.Duration, res.Devices, res.Links, res.TotalPacketsSent, res.SyncPackets)
	for i, r := range res.PerMember {
		fmt.Printf("   member %d: local %v, %d pkts\n", i, r.Duration, r.PacketsSent)
	}
}

func main() {
	fmt.Println("collaborative discovery on an 8x8 torus (128 devices):")
	for _, k := range []int{1, 2, 4} {
		run(k)
	}
}
