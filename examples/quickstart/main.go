// Quickstart: build an ASI fabric, run the Parallel discovery process,
// and print what the fabric manager learned.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
)

func main() {
	// A discrete-event engine drives everything.
	engine := sim.NewEngine()

	// Build the paper's smallest topology: a 3x3 mesh of 16-port
	// switches, one endpoint per switch.
	tp := topo.Mesh(3, 3)
	fab, err := fabric.New(engine, tp, fabric.DefaultConfig(), sim.NewRNG(42))
	if err != nil {
		log.Fatal(err)
	}

	// Attach a fabric manager to the first endpoint and discover.
	fm := core.NewManager(fab, fab.Device(tp.Endpoints()[0]), core.Options{
		Algorithm: core.Parallel,
	})
	var result core.Result
	fm.OnDiscoveryComplete = func(r core.Result) { result = r }
	fm.StartDiscovery()
	engine.Run()

	fmt.Printf("discovered %s in %v using %d management packets\n",
		tp, result.Duration, result.PacketsSent)
	fmt.Printf("average FM processing per packet: %v\n\n", result.AvgFMProcessing())

	fmt.Println("topology database:")
	for _, n := range fm.DB().Nodes() {
		fmt.Printf("  %-9s %s  path=[%s]\n", n.Type, n.DSN, n.Path)
	}
	fmt.Printf("\nlinks (%d):\n", fm.DB().NumLinks())
	for _, l := range fm.DB().Links() {
		fmt.Printf("  %s.%d -- %s.%d\n", l.A, l.APort, l.B, l.BPort)
	}
}
