// Fattree compares the three discovery algorithms of the paper on its
// fat-tree topologies (m-port n-trees), printing discovery time,
// management traffic, and the FM processing average for each.
//
//	go run ./examples/fattree
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
)

func main() {
	trees := []string{"4-port 2-tree", "4-port 3-tree", "4-port 4-tree", "8-port 2-tree"}
	fmt.Printf("%-14s %-14s %12s %10s %12s\n",
		"Topology", "Algorithm", "Time", "Packets", "FM avg")
	for _, name := range trees {
		for _, kind := range core.PaperKinds() {
			tp, err := topo.ByName(name)
			if err != nil {
				log.Fatal(err)
			}
			engine := sim.NewEngine()
			fab, err := fabric.New(engine, tp, fabric.DefaultConfig(), sim.NewRNG(1))
			if err != nil {
				log.Fatal(err)
			}
			fm := core.NewManager(fab, fab.Device(tp.Endpoints()[0]), core.Options{Algorithm: kind})
			var res core.Result
			fm.OnDiscoveryComplete = func(r core.Result) { res = r }
			fm.StartDiscovery()
			engine.Run()
			if res.Devices != len(tp.Nodes) {
				log.Fatalf("%s/%v: found %d of %d devices", name, kind, res.Devices, len(tp.Nodes))
			}
			fmt.Printf("%-14s %-14s %12v %10d %12v\n",
				name, kind, res.Duration, res.PacketsSent, res.AvgFMProcessing())
		}
		fmt.Println()
	}
}
