// Multicast demonstrates ASI multicast group management: after discovery
// the fabric manager computes a shared distribution tree over its
// topology database and programs the switches' multicast forwarding
// tables with PI-4 writes; any member endpoint can then source packets to
// the group over the MVC virtual channel.
//
//	go run ./examples/multicast
package main

import (
	"fmt"
	"log"

	"repro/internal/asi"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
)

func main() {
	engine := sim.NewEngine()
	tp := topo.Torus(4, 4)
	fab, err := fabric.New(engine, tp, fabric.DefaultConfig(), sim.NewRNG(17))
	if err != nil {
		log.Fatal(err)
	}
	fm := core.NewManager(fab, fab.Device(tp.Endpoints()[0]), core.Options{Algorithm: core.Parallel})
	fm.OnDiscoveryComplete = func(r core.Result) {
		fmt.Printf("discovered: %v\n", r)
	}
	fm.StartDiscovery()
	engine.Run()

	// A group of four endpoints at the corners.
	eps := tp.Endpoints()
	members := []asi.DSN{
		fab.Device(eps[0]).DSN, fab.Device(eps[3]).DSN,
		fab.Device(eps[12]).DSN, fab.Device(eps[15]).DSN,
	}
	const mgid = 5
	tree, err := fm.ComputeMulticastTree(mgid, members)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngroup %d spans %d switches:\n", mgid, len(tree.SwitchMasks))
	for dsn, mask := range tree.SwitchMasks {
		fmt.Printf("  %v ports %#06b\n", dsn, mask)
	}
	if err := fm.ProgramMulticastGroup(mgid, members, func(d core.DistResult) {
		fmt.Printf("programmed %d MFT entries in %v\n", d.Writes, d.Duration)
	}); err != nil {
		log.Fatal(err)
	}
	engine.Run()

	// Count deliveries per endpoint, then send from one member.
	counts := map[string]int{}
	for _, id := range eps {
		d := fab.Device(id)
		d.SetHandler(fabric.HandlerFunc(func(port int, pkt *asi.Packet) {
			if pkt.Header.Multicast {
				counts[d.Label]++
			}
		}))
	}
	sender := fab.Device(eps[0])
	fmt.Printf("\n%s sends one packet to group %d...\n", sender.Label, mgid)
	sender.Inject(&asi.Packet{
		Header:  asi.RouteHeader{Multicast: true, MGID: mgid, PI: asi.PIApplication},
		Payload: asi.AppData{Bytes: 256},
	})
	engine.Run()
	for label, c := range counts {
		fmt.Printf("  %-9s received %d\n", label, c)
	}
}
