// Failover demonstrates fabric-management failover (paper section 2:
// "If the primary FM fails, the secondary one takes over"): the primary
// streams heartbeats to the secondary; when the primary's endpoint dies,
// the secondary's watchdog fires, it rediscovers the fabric and
// reprograms the event routes toward itself, after which it assimilates
// further changes as the acting manager.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
)

func main() {
	engine := sim.NewEngine()
	tp := topo.Torus(4, 4)
	fab, err := fabric.New(engine, tp, fabric.DefaultConfig(), sim.NewRNG(21))
	if err != nil {
		log.Fatal(err)
	}
	eps := tp.Endpoints()
	primary := core.NewManager(fab, fab.Device(eps[0]), core.Options{Algorithm: core.Parallel})
	secondary := core.NewManager(fab, fab.Device(eps[8]), core.Options{Algorithm: core.Parallel})

	// The primary discovers and configures the fabric.
	primary.OnDiscoveryComplete = func(r core.Result) {
		fmt.Printf("[%-9v] primary discovery: %v\n", engine.Now(), r)
		primary.DistributeEventRoutes(nil)
	}
	primary.StartDiscovery()
	engine.Run()

	// Liveness protocol between the two managers.
	primary.StartHeartbeats(secondary.Device().DSN, 300*sim.Microsecond)
	watchdog := secondary.WatchPrimary(300*sim.Microsecond, 3, func() {
		fmt.Printf("[%-9v] watchdog fired: secondary %s takes over\n",
			engine.Now(), secondary.Device().Label)
	})
	secondary.OnDiscoveryComplete = func(r core.Result) {
		fmt.Printf("[%-9v] new primary discovery: %v\n", engine.Now(), r)
	}

	engine.RunUntil(engine.Now().Add(2 * sim.Millisecond))
	fmt.Printf("[%-9v] %d heartbeats received; primary healthy\n", engine.Now(), watchdog.Received)

	// Kill the primary's endpoint.
	fmt.Printf("\n[%-9v] *** primary endpoint %s fails ***\n", engine.Now(), primary.Device().Label)
	if err := fab.SetDeviceDown(primary.Device().ID, true); err != nil {
		log.Fatal(err)
	}
	engine.RunUntil(engine.Now().Add(20 * sim.Millisecond))
	engine.Run()

	if !watchdog.TookOver() {
		log.Fatal("failover did not happen")
	}
	fmt.Printf("[%-9v] fabric now managed by %s: %v\n",
		engine.Now(), secondary.Device().Label, secondary.DB())

	// Prove the new primary owns change assimilation: remove a switch.
	fmt.Printf("\n[%-9v] *** removing a switch under the new primary ***\n", engine.Now())
	if err := fab.SetDeviceDown(6, false); err != nil {
		log.Fatal(err)
	}
	engine.Run()
	fmt.Printf("[%-9v] assimilated: %v\n", engine.Now(), secondary.DB())
}
