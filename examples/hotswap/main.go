// Hotswap walks the full ASI fabric-management lifecycle of the paper:
// primary/secondary FM election, initial topology discovery, event-route
// distribution, a live switch removal detected via PI-5 and assimilated
// by rediscovery, and finally the switch's hot re-addition.
//
//	go run ./examples/hotswap
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
)

func main() {
	engine := sim.NewEngine()
	tp := topo.Torus(4, 4)
	fab, err := fabric.New(engine, tp, fabric.DefaultConfig(), sim.NewRNG(7))
	if err != nil {
		log.Fatal(err)
	}
	eps := tp.Endpoints()

	// Two FM-capable endpoints contend; priorities decide.
	candidates := []*core.Manager{
		core.NewManager(fab, fab.Device(eps[0]), core.Options{Algorithm: core.Parallel, ElectionPriority: 3}),
		core.NewManager(fab, fab.Device(eps[10]), core.Options{Algorithm: core.Parallel, ElectionPriority: 8}),
	}

	var primary *core.Manager
	for _, m := range candidates {
		m := m
		m.OnDiscoveryComplete = func(r core.Result) {
			fmt.Printf("[%-9v] discovery: %v\n", engine.Now(), r)
			// After every discovery, (re)program event routes so
			// devices can report the next change.
			m.DistributeEventRoutes(func(d core.DistResult) {
				fmt.Printf("[%-9v] event routes: %d writes, %d failures, %v\n",
					engine.Now(), d.Writes, d.Failures, d.Duration)
			})
		}
		m.StartElection(0, func(o core.ElectionOutcome) {
			fmt.Printf("[%-9v] election at %s: role=%v primary=%v candidates=%d\n",
				engine.Now(), m.Device().Label, o.Role, o.Primary, o.Candidates)
			if o.Role == core.RolePrimary {
				primary = m
				m.StartDiscovery()
			}
		})
	}
	engine.Run()
	if primary == nil {
		log.Fatal("no primary elected")
	}

	// Hot-remove a switch: its neighbours detect the dead ports and
	// report via PI-5; the primary coalesces the burst and rediscovers.
	victim := topo.NodeID(5)
	fmt.Printf("\n[%-9v] *** hot-removing %s ***\n", engine.Now(), fab.Device(victim).Label)
	if err := fab.SetDeviceDown(victim, false); err != nil {
		log.Fatal(err)
	}
	engine.Run()
	fmt.Printf("[%-9v] database now: %v\n", engine.Now(), primary.DB())

	// Hot-add it back.
	fmt.Printf("\n[%-9v] *** hot-adding %s back ***\n", engine.Now(), fab.Device(victim).Label)
	if err := fab.SetDeviceUp(victim, false); err != nil {
		log.Fatal(err)
	}
	engine.Run()
	fmt.Printf("[%-9v] database now: %v\n", engine.Now(), primary.DB())
}
