# Tier-1 verification for the asifabric reproduction.
#
#   make          - build + vet + test (the default gate)
#   make verify   - the full gate: build, vet, test, race-detector test,
#                   1-iteration benchmark smoke
#   make race     - go test -race ./...
#   make bench    - figure + engine benchmarks -> BENCH_sim.json
#                   (benchstat-compatible raw lines plus parsed metrics,
#                   with results/bench_baseline.txt embedded as the
#                   before/baseline section)

GO ?= go
BENCHTIME ?= 3x
BENCH_BASELINE ?= results/bench_baseline.txt

.PHONY: all build vet test race verify bench bench-smoke

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke proves every benchmark still runs (one iteration each)
# without paying for stable measurements; part of the verify gate.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./... > /dev/null

verify: build vet test race bench-smoke

bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) . ./internal/sim \
		| $(GO) run ./cmd/benchjson -tee -baseline $(BENCH_BASELINE) -o BENCH_sim.json
