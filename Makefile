# Tier-1 verification for the asifabric reproduction.
#
#   make          - build + vet + test (the default gate)
#   make verify   - the full gate: build, vet, test, race-detector test
#   make race     - go test -race ./...
#   make bench    - simulated-metric benchmarks

GO ?= go

.PHONY: all build vet test race verify bench

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

verify: build vet test race

bench:
	$(GO) test -bench=. -benchmem
