# Tier-1 verification for the asifabric reproduction.
#
#   make          - build + vet + test (the default gate)
#   make verify   - the full gate: gofmt check, build, vet, test,
#                   race-detector test, 1-iteration benchmark smoke,
#                   JSON run-report schema smoke, span pipeline smoke,
#                   spans-disabled zero-alloc regression, chaos smoke,
#                   parallel-sweep determinism smoke, region-sharded
#                   parallel-path identity smoke, FM-daemon serving-layer
#                   smoke (1000-subscriber replay identity), observability
#                   plane smoke (Prometheus /metrics + staleness SLO),
#                   continuous-assimilation smoke (keeper-driven coalesced
#                   churn), benchmark regression diff against BENCH_sim.json
#   make race     - go test -race ./...
#   make fuzz     - bounded native-fuzzing burst on the chaos harness
#   make bench    - figure + engine benchmarks -> BENCH_sim.json
#                   (benchstat-compatible raw lines plus parsed metrics,
#                   with results/bench_baseline.txt embedded as the
#                   before/baseline section)

GO ?= go
BENCHTIME ?= 3x
# Each benchmark runs BENCHCOUNT times; benchjson -diff compares the
# per-benchmark minimum, which keeps the regression gate stable on busy
# or single-core hosts despite the short BENCHTIME.
BENCHCOUNT ?= 5
BENCH_BASELINE ?= results/bench_baseline.txt

.PHONY: all build vet test race verify bench bench-smoke bench-diff fmt-check json-smoke span-smoke alloc-check chaos-smoke chaos-par-smoke par-smoke daemon-smoke obs-smoke assim-smoke fuzz

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke proves every benchmark still runs (one iteration each)
# without paying for stable measurements; part of the verify gate.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./... > /dev/null

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# json-smoke proves the machine-readable pipeline end to end: a telemetry
# run's report must decode against the run-report schema.
json-smoke:
	$(GO) run ./cmd/asidisc -topo "3x3 mesh" -alg parallel -telemetry -json \
		| $(GO) run ./cmd/reportjson > /dev/null

# span-smoke proves the causal-trace pipeline end to end: a traced run's
# Chrome trace-event file must load back through asitrace, and a traced
# run report (spans section, v2 envelope) must decode.
span-smoke:
	$(GO) run ./cmd/asidisc -topo "3x3 mesh" -alg parallel \
		-spans-out $${TMPDIR:-/tmp}/asi_span_smoke.json > /dev/null
	$(GO) run ./cmd/asitrace $${TMPDIR:-/tmp}/asi_span_smoke.json > /dev/null
	$(GO) run ./cmd/asidisc -topo "3x3 mesh" -alg parallel -spans -json \
		| $(GO) run ./cmd/reportjson > /dev/null
	rm -f $${TMPDIR:-/tmp}/asi_span_smoke.json

# alloc-check pins the instrumentation hooks' disabled cost at zero
# allocations on the fabric hot path.
alloc-check:
	$(GO) test -run 'ZeroAlloc' ./internal/fabric/

# chaos-smoke sweeps generated chaos scenarios through every paper
# algorithm (cross-checked topology fingerprints) and the convergence
# oracle; any failure prints a shrunk minimal reproducer.
chaos-smoke:
	$(GO) run ./cmd/asichaos -runs 25 -algs all

# chaos-par-smoke proves the parallel sweep is deterministic: the same
# sweep at -workers 1 and -workers 8 must print byte-identical verbose
# output, per-scenario fingerprints included.
chaos-par-smoke:
	$(GO) run ./cmd/asichaos -runs 16 -workers 1 -v > $${TMPDIR:-/tmp}/asi_sweep_w1.txt
	$(GO) run ./cmd/asichaos -runs 16 -workers 8 -v > $${TMPDIR:-/tmp}/asi_sweep_w8.txt
	diff $${TMPDIR:-/tmp}/asi_sweep_w1.txt $${TMPDIR:-/tmp}/asi_sweep_w8.txt
	rm -f $${TMPDIR:-/tmp}/asi_sweep_w1.txt $${TMPDIR:-/tmp}/asi_sweep_w8.txt

# fuzz gives each native fuzz target a short bounded burst; the committed
# corpus under internal/chaos/testdata/corpus seeds FuzzScenario.
FUZZTIME ?= 20s
fuzz:
	$(GO) test ./internal/chaos -run '^$$' -fuzz '^FuzzScenario$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/chaos -run '^$$' -fuzz '^FuzzGenerated$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/chaos -run '^$$' -fuzz '^FuzzCoalesce$$' -fuzztime $(FUZZTIME)

# par-smoke proves the region-sharded parallel simulation path: one
# scenario per topology family (torus, fat-tree, dragonfly, autofat) at
# R in {2,4,8} must reconstruct the sequential referee's exact database
# fingerprint and pass the convergence oracle.
par-smoke:
	$(GO) test -run 'TestParallelRegions' ./internal/chaos/

# daemon-smoke proves the FM daemon's serving layer end to end: asifmd
# manages a fat-tree under scripted churn while 1000 in-process plus 8
# HTTP subscribers replay the diff stream; every reconstructed snapshot
# must be byte-identical to the live RIB and fingerprint-identical to
# core.DB.Fingerprint.
daemon-smoke:
	$(GO) run ./cmd/asifmd -smoke 1000

# obs-smoke proves the continuous observability plane end to end: an
# in-process asifmd under churn is scraped twice over HTTP; the
# Prometheus text must parse, every windowed rate must be finite, the
# staleness percentiles must be populated, and the sharded variant must
# expose the per-region event split.
obs-smoke:
	$(GO) test -run 'TestObsSmoke' -count=1 ./cmd/asifmd/

# assim-smoke proves the continuous-assimilation engine end to end: 12
# keeper-driven churn rounds against the coalescing partial FM must
# converge to ground truth at quiescence, leave nothing stranded in the
# debounce window, and publish the fm.assim.* counters plus the
# DB-staleness gauges over /metrics.
assim-smoke:
	$(GO) run ./cmd/asifmd -assim-smoke 12

# bench-diff re-runs the benchmark suite and gates it against the
# committed BENCH_sim.json: an allocs/op increase beyond max(2, 0.1%)
# rounding/GC slack fails; ns/op may regress at most 10% plus the noise
# both runs measured across their -count repeats. Regenerate the
# baseline with `make bench` when a change legitimately moves the
# numbers.
bench-diff:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) -count $(BENCHCOUNT) . ./internal/sim \
		| $(GO) run ./cmd/benchjson -diff BENCH_sim.json

verify: fmt-check build vet test race bench-smoke json-smoke span-smoke alloc-check chaos-smoke chaos-par-smoke par-smoke daemon-smoke obs-smoke assim-smoke bench-diff

bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) -count $(BENCHCOUNT) . ./internal/sim \
		| $(GO) run ./cmd/benchjson -tee -baseline $(BENCH_BASELINE) -o BENCH_sim.json
