// Command benchjson converts `go test -bench` text output into a JSON
// document suitable for machine comparison, while preserving the raw
// benchstat-compatible lines verbatim.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH_sim.json
//	benchjson -baseline results/bench_baseline.txt -o BENCH_sim.json < bench.txt
//
// The -baseline flag parses a second benchmark text file (typically the
// pre-optimization run committed under results/) into a "baseline"
// section of the same shape, so BENCH_sim.json carries before/after
// numbers side by side. With -tee the input text is echoed to stderr as
// it streams, keeping interactive `make bench` output visible.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (sim-s/run, pkts/run,
	// events/s, fm-us/pkt, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Suite is a parsed benchmark run: context lines plus results.
type Suite struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Packages   []string    `json:"packages,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Raw preserves the exact input lines; feeding them back to
	// benchstat reproduces its analysis.
	Raw []string `json:"raw"`
}

// Output is the document benchjson writes.
type Output struct {
	Current  Suite  `json:"current"`
	Baseline *Suite `json:"baseline,omitempty"`
}

func main() {
	baseline := flag.String("baseline", "", "benchmark text file to embed as the before/baseline section")
	out := flag.String("o", "", "output file (default stdout)")
	tee := flag.Bool("tee", false, "echo input lines to stderr while parsing")
	flag.Parse()

	var echo io.Writer
	if *tee {
		echo = os.Stderr
	}
	cur, err := parse(os.Stdin, echo)
	if err != nil {
		fatal(err)
	}
	doc := Output{Current: cur}
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fatal(err)
		}
		base, err := parse(f, nil)
		f.Close()
		if err != nil {
			fatal(err)
		}
		doc.Baseline = &base
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse reads `go test -bench` output. Unrecognized lines (PASS, ok,
// FAIL, test logs) are kept in Raw but produce no Benchmark entry.
func parse(r io.Reader, echo io.Writer) (Suite, error) {
	var s Suite
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		s.Raw = append(s.Raw, line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			s.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			s.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			s.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			s.Packages = append(s.Packages, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseResult(line); ok {
				s.Benchmarks = append(s.Benchmarks, b)
			}
		}
	}
	return s, sc.Err()
}

// parseResult decodes one result line:
//
//	BenchmarkName-8   100   123 ns/op   45 B/op   6 allocs/op   7.8 sim-s/run
func parseResult(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}
