// Command benchjson converts `go test -bench` text output into a JSON
// document suitable for machine comparison, while preserving the raw
// benchstat-compatible lines verbatim.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH_sim.json
//	benchjson -baseline results/bench_baseline.txt -o BENCH_sim.json < bench.txt
//	go test -run '^$' -bench . -benchmem ./... | benchjson -diff BENCH_sim.json
//
// The -baseline flag parses a second benchmark text file (typically the
// pre-optimization run committed under results/) into a "baseline"
// section of the same shape, so BENCH_sim.json carries before/after
// numbers side by side. With -tee the input text is echoed to stderr as
// it streams, keeping interactive `make bench` output visible.
//
// The -diff flag turns benchjson into a regression gate: the fresh run on
// stdin is compared against the "current" section of a committed
// benchjson document, and the process exits non-zero when any benchmark
// allocates more per op than the committed run — beyond max(2, 0.1%)
// slack for go test's integer rounding and GC-timing artifacts like
// sync.Pool refills; a real hot-path regression allocates per event or
// per packet and lands orders of magnitude past that — or slows down by
// more than -ns-tolerance
// (default 10%) beyond the measured noise: both sides fold `-count N`
// repeats by minimum, and the time gate widens by each side's observed
// (max-min)/min spread, so a quiet multicore host gets the pure 10% gate
// while a contended single-core host is not failed on scheduler noise.
// Benchmarks faster than 1µs/op are exempt from the time gate — at that
// scale short `-benchtime` runs measure timer quantization, not the
// code — but never from the allocation gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (sim-s/run, pkts/run,
	// events/s, fm-us/pkt, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Suite is a parsed benchmark run: context lines plus results.
type Suite struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Packages   []string    `json:"packages,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Raw preserves the exact input lines; feeding them back to
	// benchstat reproduces its analysis.
	Raw []string `json:"raw"`
}

// Output is the document benchjson writes.
type Output struct {
	Current  Suite  `json:"current"`
	Baseline *Suite `json:"baseline,omitempty"`
}

func main() {
	baseline := flag.String("baseline", "", "benchmark text file to embed as the before/baseline section")
	out := flag.String("o", "", "output file (default stdout)")
	tee := flag.Bool("tee", false, "echo input lines to stderr while parsing")
	diff := flag.String("diff", "", "committed benchjson document to gate the fresh run on stdin against")
	nsTol := flag.Float64("ns-tolerance", 0.10, "allowed fractional ns/op regression in -diff mode")
	flag.Parse()

	var echo io.Writer
	if *tee {
		echo = os.Stderr
	}
	cur, err := parse(os.Stdin, echo)
	if err != nil {
		fatal(err)
	}
	if *diff != "" {
		if err := diffAgainst(cur, *diff, *nsTol); err != nil {
			fatal(err)
		}
		return
	}
	doc := Output{Current: cur}
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fatal(err)
		}
		base, err := parse(f, nil)
		f.Close()
		if err != nil {
			fatal(err)
		}
		doc.Baseline = &base
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// allocSlack is the allowed allocs/op increase before the gate fails:
// go test rounds to an integer at tiny b.N, and GC timing perturbs
// sync.Pool refills by a handful of allocations in the macro
// benchmarks. Real hot-path regressions allocate per event or per
// packet and exceed 0.1% of the baseline by orders of magnitude.
func allocSlack(baseline float64) float64 {
	if s := 0.001 * baseline; s > 2 {
		return s
	}
	return 2
}

// nsGateFloor exempts sub-microsecond benchmarks from the time gate:
// with the short -benchtime the verify target uses, their ns/op is
// dominated by timer quantization. The allocation gate still applies.
const nsGateFloor = 1000.0

// diffAgainst gates a fresh run against the "current" section of a
// committed benchjson document. An allocs/op increase beyond
// allocSlack fails (allocation counts are otherwise deterministic);
// ns/op may regress by at most
// nsTol plus the noise both runs measured about themselves (the
// (max-min)/min spread of their -count repeats). Benchmarks present on
// only one side are reported but never fail the gate — new benchmarks
// land before their baseline is regenerated. Both sides are aggregated
// by min over repeated results (`go test -count N`) first: the minimum
// is the standard noise-robust benchmark statistic, and short -benchtime
// runs on a busy host need it.
func diffAgainst(cur Suite, path string, nsTol float64) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc Output
	if err := json.Unmarshal(b, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	base, _ := aggregate(doc.Current.Benchmarks)
	freshByName, order := aggregate(cur.Benchmarks)
	regressions := 0
	compared := 0
	for _, name := range order {
		fresh := freshByName[name]
		prev, ok := base[name]
		if !ok {
			fmt.Printf("NEW   %-55s %12.0f ns/op %8.0f allocs/op (no committed baseline)\n",
				name, fresh.NsPerOp, fresh.AllocsPerOp)
			continue
		}
		delete(base, name)
		compared++
		status := "ok"
		effTol := nsTol + fresh.nsSpread() + prev.nsSpread()
		if fresh.AllocsPerOp > prev.AllocsPerOp+allocSlack(prev.AllocsPerOp) {
			status = fmt.Sprintf("FAIL allocs/op %0.f -> %0.f", prev.AllocsPerOp, fresh.AllocsPerOp)
			regressions++
		} else if prev.NsPerOp >= nsGateFloor && fresh.NsPerOp > prev.NsPerOp*(1+effTol) {
			status = fmt.Sprintf("FAIL ns/op %+.1f%% (limit %+.0f%% incl. measured noise)",
				100*(fresh.NsPerOp/prev.NsPerOp-1), 100*effTol)
			regressions++
		}
		fmt.Printf("%-5s %-55s %12.0f ns/op (was %12.0f) %6.0f allocs/op (was %6.0f)\n",
			strings.Fields(status)[0], name, fresh.NsPerOp, prev.NsPerOp,
			fresh.AllocsPerOp, prev.AllocsPerOp)
		if strings.HasPrefix(status, "FAIL") {
			fmt.Printf("      ^ %s\n", status)
		}
	}
	for name := range base {
		fmt.Printf("GONE  %-55s (in %s but not in this run)\n", name, path)
	}
	if regressions > 0 {
		return fmt.Errorf("%d of %d benchmarks regressed vs %s", regressions, compared, path)
	}
	fmt.Printf("bench-diff: %d benchmarks within gate (allocs/op +max(2, 0.1%%), ns/op +%.0f%% + measured noise)\n", compared, 100*nsTol)
	return nil
}

// aggregated is one benchmark folded across `-count N` repeats: the
// Benchmark holds the per-field minimum, nsMax the slowest repeat, so
// the fold knows its own measurement noise.
type aggregated struct {
	Benchmark
	nsMax float64
}

// nsSpread is the fold's relative noise, (max-min)/min across repeats.
// A single sample (or a pre-noise-tracking baseline) reports 0.
func (a aggregated) nsSpread() float64 {
	if a.NsPerOp <= 0 || a.nsMax <= a.NsPerOp {
		return 0
	}
	return a.nsMax/a.NsPerOp - 1
}

// aggregate folds repeated results for the same (normalized) benchmark
// name into one entry holding the minimum ns/op and allocs/op observed
// (plus the max ns/op for the spread), returning the fold and first-seen
// name order for stable output.
func aggregate(benchmarks []Benchmark) (map[string]aggregated, []string) {
	agg := make(map[string]aggregated, len(benchmarks))
	var order []string
	for _, bm := range benchmarks {
		name := normalizeName(bm.Name)
		prev, seen := agg[name]
		if !seen {
			order = append(order, name)
			agg[name] = aggregated{Benchmark: bm, nsMax: bm.NsPerOp}
			continue
		}
		if bm.NsPerOp < prev.NsPerOp {
			prev.NsPerOp = bm.NsPerOp
		}
		if bm.NsPerOp > prev.nsMax {
			prev.nsMax = bm.NsPerOp
		}
		if bm.AllocsPerOp < prev.AllocsPerOp {
			prev.AllocsPerOp = bm.AllocsPerOp
		}
		agg[name] = prev
	}
	return agg, order
}

// normalizeName strips the -GOMAXPROCS suffix so runs from machines with
// different core counts compare by benchmark identity.
func normalizeName(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// parse reads `go test -bench` output. Unrecognized lines (PASS, ok,
// FAIL, test logs) are kept in Raw but produce no Benchmark entry.
func parse(r io.Reader, echo io.Writer) (Suite, error) {
	var s Suite
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		s.Raw = append(s.Raw, line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			s.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			s.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			s.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			s.Packages = append(s.Packages, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseResult(line); ok {
				s.Benchmarks = append(s.Benchmarks, b)
			}
		}
	}
	return s, sc.Err()
}

// parseResult decodes one result line:
//
//	BenchmarkName-8   100   123 ns/op   45 B/op   6 allocs/op   7.8 sim-s/run
func parseResult(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}
