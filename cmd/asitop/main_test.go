package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// frameDoc is a synthetic dashboard document with the assimilation
// series a coalescing asifmd publishes.
func frameDoc() *obs.DashDoc {
	return &obs.DashDoc{
		Wall:      time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		WindowSec: 2,
		SimPS:     int64(3 * sim.Millisecond),
		Gen:       9,
		Scrapes:   4,
		Rates: []obs.Rate{
			{Name: "fm.assim.events", PerSec: 120.5},
			{Name: "fm.assim.events.coalesced", PerSec: 110.25},
			{Name: "fm.assim.flushes", PerSec: 8},
		},
		Gauges: []obs.GaugeValue{
			{Name: "fm.db.staleness.p50", Value: int64(40 * sim.Microsecond)},
			{Name: "fm.db.staleness.p99", Value: int64(900 * sim.Microsecond)},
			{Name: "fm.db.staleness.max", Value: int64(2 * sim.Millisecond)},
		},
		Quantiles: []obs.HistQuantiles{
			{Name: "fm.assim.batch.size", Unit: "events", Count: 16, P50: 6, P90: 12, P99: 14},
		},
	}
}

// TestRenderAssimBlock pins the assimilation block of the frame: the
// staleness gauges and the coalesced PI-5 rates must both render.
func TestRenderAssimBlock(t *testing.T) {
	frame := render(frameDoc(), map[string][]float64{}, "http://test")
	for _, want := range []string{
		"db-stale",
		"p50 40.000us",
		"max 2.000ms",
		"assim     120.5 PI-5/s assimilated",
		"110.2/s coalesced",
		"8.0 flushes/s",
		"batch p50 6 p99 14",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
}

// TestRenderNoAssim checks the block degrades cleanly: no staleness
// gauges and no PI-5 flow leave the frame free of assimilation lines.
func TestRenderNoAssim(t *testing.T) {
	doc := frameDoc()
	doc.Rates = []obs.Rate{{Name: "fm.assim.events", PerSec: 0}}
	doc.Gauges = nil
	doc.Quantiles = nil
	frame := render(doc, map[string][]float64{}, "http://test")
	for _, absent := range []string{"db-stale", "assimilated"} {
		if strings.Contains(frame, absent) {
			t.Errorf("idle frame still shows %q:\n%s", absent, frame)
		}
	}
}

// TestOnceFrame exercises the -once pipeline end to end: fetch a
// served /obs.json document and render one frame from it.
func TestOnceFrame(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/obs.json" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(frameDoc())
	}))
	defer ts.Close()

	doc, err := fetch(&http.Client{Timeout: time.Second}, ts.URL, 8)
	if err != nil {
		t.Fatal(err)
	}
	hist := map[string][]float64{}
	push(hist, doc.Rates)
	frame := render(doc, hist, ts.URL)
	if !strings.Contains(frame, "gen 9") || !strings.Contains(frame, "assimilated") {
		t.Errorf("fetched frame incomplete:\n%s", frame)
	}
}
